package repro

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// smokePackages are every main package in the repo; the smoke test keeps
// them compiling (they otherwise have zero test coverage).
var smokePackages = []string{
	"./cmd/backupdemo",
	"./cmd/experiments",
	"./examples/quickstart",
	"./examples/ecommerce",
	"./examples/analytics",
	"./examples/disaster",
	"./examples/ransomware",
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

// TestSmokeBuildAllBinaries builds every cmd and example binary.
func TestSmokeBuildAllBinaries(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	args := append([]string{"build", "-o", dir + string(os.PathSeparator)}, smokePackages...)
	cmd := exec.Command("go", args...)
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(smokePackages) {
		t.Fatalf("built %d binaries, want %d", len(entries), len(smokePackages))
	}
}

// TestSmokeQuickstartDeterministic runs examples/quickstart twice and
// requires byte-identical, successful output — the determinism the whole
// reproduction rests on, exercised through a real binary.
func TestSmokeQuickstartDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "quickstart")
	build := exec.Command("go", "build", "-o", bin, "./examples/quickstart")
	build.Dir = repoRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build quickstart: %v\n%s", err, out)
	}
	run := func() []byte {
		t.Helper()
		out, err := exec.Command(bin).CombinedOutput()
		if err != nil {
			t.Fatalf("quickstart: %v\n%s", err, out)
		}
		return out
	}
	out1 := run()
	out2 := run()
	if !bytes.Equal(out1, out2) {
		t.Fatalf("quickstart output differs across runs:\n--- run 1\n%s\n--- run 2\n%s", out1, out2)
	}
	for _, want := range []string{
		"backup is consistent",
		"simulation finished at virtual time",
	} {
		if !strings.Contains(string(out1), want) {
			t.Fatalf("quickstart output missing %q:\n%s", want, out1)
		}
	}
}
