# Build-gate entry points.
#
# Local:  `make ci` is the full gate contributors run before pushing —
#         format check, vet, build, full tests (plain and -race: the sim
#         kernel and the fabric dispatchers move work across goroutines),
#         and `bench-check`, the bench-regression gate: every experiment
#         harness (E1-E17) runs at -benchtime 3x -benchmem and FAILS the
#         build if any harness's ns/op regressed more than 25% against the
#         committed BENCH_baseline.json (alloc regressions warn; new
#         benches are allowed and reported). `make bench-smoke` is the
#         cheaper 1x-iteration harness check when you only want "does it
#         still run". `make telemetry-smoke` runs the E16 observability
#         experiment end-to-end and writes its telemetry export
#         (telemetry.json, Chrome trace-event JSON viewable in Perfetto);
#         CI archives it next to bench-report.json so a churn run's RPO
#         timelines and span trace can be inspected from the run page.
#         `make autopilot-smoke` runs the E17 SLO-autopilot experiment
#         end-to-end and writes its decision log (e17-decisions.log) —
#         the byte-exact audit trail of every reshard/derate/restore/
#         placement the control loop actuated; CI archives it too.
#         `make chaos-smoke` sweeps 25 seeded random fault schedules
#         against the invariant checkers under -race; failures print a
#         one-line repro and a shrunk minimal schedule, and the replay log
#         (chaos-repro.log) is archived. `make chaos` is the long sweep.
# CI:     .github/workflows/ci.yml runs exactly `make ci` on push/PR with
#         Go module caching, so the same gate holds outside laptops.
# Update: `make baseline` regenerates BENCH_baseline.json (ns/op, B/op,
#         allocs/op per harness) — rerun it, eyeball the diff, and commit
#         it whenever a PR intentionally moves the wall-cost needle.
#
# The committed baseline records absolute wall costs and is therefore
# machine-specific: the gate is meaningful on hardware comparable to
# where the baseline was recorded. On a slower runner class, either
# regenerate the baseline there or loosen the gate for that run with
# `make bench-check BENCH_THRESHOLD=0.5`.

GO ?= go
# Blocking ns/op regression threshold for bench-check (fraction over the
# committed baseline).
BENCH_THRESHOLD ?= 0.25

.PHONY: ci fmt vet build test test-race bench-smoke bench-check baseline telemetry-smoke autopilot-smoke chaos-smoke chaos

ci: fmt vet build test test-race bench-check telemetry-smoke autopilot-smoke chaos-smoke

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# One iteration of every experiment benchmark: catches harness regressions
# without paying for a statistically meaningful measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# The bench-regression gate: run the harnesses 3 times, then compare each
# harness's best (minimum ns/op) run against the committed baseline with
# cmd/benchcheck (fails >25% ns/op regressions, warns on alloc
# regressions). Two steps so a bench failure isn't masked by the pipe.
# The comparison is also written to bench-report.json — CI archives it as a
# build artifact so regressions can be inspected without re-running.
bench-check:
	@$(GO) test -run '^$$' -bench . -benchtime 3x -benchmem -count 3 . > bench.out || \
		{ cat bench.out; rm -f bench.out; exit 1; }
	@$(GO) run ./cmd/benchcheck -baseline BENCH_baseline.json -threshold $(BENCH_THRESHOLD) \
		-json bench-report.json < bench.out; \
		status=$$?; rm -f bench.out; exit $$status

# E16 smoke: run the observability experiment (churning fleet with the full
# telemetry plane on, probed RPO cross-validated against the fleet sampler)
# and write the telemetry export. Fails if the export or the cross-check
# fails; CI uploads telemetry.json as a build artifact.
telemetry-smoke:
	$(GO) run ./cmd/experiments -run e16 -quick -telemetry telemetry.json

# E17 smoke: run the SLO-autopilot experiment (diurnal load, closed loop
# from probed RPO to reshard/admission/placement) and write the decision
# log. The experiment's own acceptance shape — static violates, autopilot
# holds — is asserted inside the harness; CI uploads e17-decisions.log as a
# build artifact so the control loop's audit trail ships with every run.
autopilot-smoke:
	$(GO) run ./cmd/experiments -run e17 -decisions e17-decisions.log

# Chaos smoke: a fixed short sweep of seeded fault schedules against the
# global invariant checkers, under the race detector (the sweep fans seeds
# out across worker goroutines, each with its own kernel). Any failing seed
# prints a one-line repro (`go run ./cmd/chaos -steps short -seed N`), the
# shrunk minimal schedule, and writes the full deterministic replay log to
# chaos-repro.log — CI uploads it as a build artifact on failure.
chaos-smoke:
	$(GO) run -race ./cmd/chaos -steps short -seeds 25 -log chaos-repro.log

# The long sweep: not part of `make ci` — run it after changes to the
# replication engines, recovery paths, or the declarative surface.
chaos:
	$(GO) run ./cmd/chaos -steps medium -seeds 500 -log chaos-repro.log

# Record the bench numbers as JSON (one entry per harness, with -benchmem
# allocation columns; minimum ns/op over -count 3, matching what
# bench-check measures). cmd/benchcheck -update does the parsing and
# aggregation — the exact same code path bench-check compares with — so the
# recorded numbers are like-for-like by construction.
baseline:
	$(GO) test -run '^$$' -bench . -benchtime 3x -benchmem -count 3 . | \
		$(GO) run ./cmd/benchcheck -update -baseline BENCH_baseline.json
	@cat BENCH_baseline.json
