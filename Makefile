# CI entry points. `make ci` is what the build gate runs: format check,
# vet, build, full tests (plain and -race: the sim kernel and the fabric
# dispatchers move work across goroutines), and a 1x-iteration bench smoke
# across every experiment harness (E1-E12, including
# BenchmarkE12_Interference). `make baseline` regenerates
# BENCH_baseline.json.

GO ?= go

.PHONY: ci fmt vet build test test-race bench-smoke baseline

ci: fmt vet build test test-race bench-smoke

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# One iteration of every experiment benchmark: catches harness regressions
# without paying for a statistically meaningful measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Record the bench numbers as JSON (one entry per harness). Compare against
# the committed BENCH_baseline.json to spot wall-cost regressions.
baseline:
	$(GO) test -run '^$$' -bench . -benchtime 3x . | awk ' \
		BEGIN { print "["; first = 1 } \
		/^Benchmark/ { \
			if (!first) printf(",\n"); first = 0; \
			printf("  {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s}", $$1, $$2, $$3) \
		} \
		END { print "\n]" }' > BENCH_baseline.json
	@cat BENCH_baseline.json
