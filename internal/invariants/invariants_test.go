package invariants

import (
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/consistency"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/storage"
)

// stamped writes the big-endian sequence stamp seq into block b of v — the
// E13/E15 write-heavy-tenant block format StampedPrefix scans for.
func stamped(t *testing.T, env *sim.Env, v *storage.Volume, b int64, seq uint64) {
	t.Helper()
	buf := make([]byte, v.BlockSize())
	binary.BigEndian.PutUint64(buf, seq)
	env.Process("w", func(p *sim.Proc) {
		if _, err := v.Write(p, b, buf); err != nil {
			t.Error(err)
		}
	})
	env.Run(0)
}

func TestStampedPrefixExactAndLeaked(t *testing.T) {
	env := sim.NewEnv(1)
	a := storage.NewArray(env, "m", storage.Config{})
	v1, _ := a.CreateVolume("v1", 16)
	v2, _ := a.CreateVolume("v2", 16)
	stamped(t, env, v1, 0, 1)
	stamped(t, env, v2, 0, 2)
	stamped(t, env, v1, 1, 3)
	if k, exact := StampedPrefix([]*storage.Volume{v1, v2}); k != 3 || !exact {
		t.Fatalf("prefix = %d exact=%v, want 3 exact", k, exact)
	}
	// A leaked write past a hole: {1,2,3,5} is a prefix of 3 but NOT exact.
	stamped(t, env, v2, 1, 5)
	if k, exact := StampedPrefix([]*storage.Volume{v1, v2}); k != 3 || exact {
		t.Fatalf("leaked image: prefix = %d exact=%v, want 3 inexact", k, exact)
	}
}

// txnSet is a minimal consistency.CommitSet for building Reports.
type txnSet []uint64

func (s txnSet) HasCommitted(tx uint64) bool {
	for _, x := range s {
		if x == tx {
			return true
		}
	}
	return false
}
func (s txnSet) CommittedTxns() []uint64 { return s }

func TestCheckConsistentCut(t *testing.T) {
	order := []uint64{1, 2, 3}
	// Clean lost tail: no violations.
	rep := consistency.Verify(txnSet{1, 2}, txnSet{1}, order, order)
	if vs := CheckConsistentCut("t0", rep); len(vs) != 0 {
		t.Fatalf("clean cut flagged: %v", vs)
	}
	// Orphan stock commit: the paper's collapse.
	rep = consistency.Verify(txnSet{1}, txnSet{1, 2}, order, order)
	vs := CheckConsistentCut("t0", rep)
	if len(vs) != 1 || !strings.Contains(vs[0].String(), "collapsed") {
		t.Fatalf("collapse not reported: %v", vs)
	}
	if vs[0].Tenant != "t0" {
		t.Fatalf("tenant = %q", vs[0].Tenant)
	}
	// Hole in the sales prefix.
	rep = consistency.Verify(txnSet{1, 3}, txnSet{1, 3}, order, order)
	vs = CheckConsistentCut("t0", rep)
	if len(vs) == 0 {
		t.Fatal("prefix hole not reported")
	}
}

func TestCheckZeroResidue(t *testing.T) {
	if vs := CheckZeroResidue("t0", nil); len(vs) != 0 {
		t.Fatalf("clean residue flagged: %v", vs)
	}
	vs := CheckZeroResidue("t0", []string{"main/volume/t0-sales", "main/journal/t0-cg"})
	if len(vs) != 2 {
		t.Fatalf("want one violation per leak, got %v", vs)
	}
}

func TestCheckFailClosedPlainJournal(t *testing.T) {
	env := sim.NewEnv(1)
	a := storage.NewArray(env, "m", storage.Config{})
	if _, err := a.CreateVolume("v", 16); err != nil {
		t.Fatal(err)
	}
	j, err := a.CreateConsistencyGroup("cg", []storage.VolumeID{"v"})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := a.Volume("v")
	stamped(t, env, v, 0, 1) // one pending record in the journal
	if vs := CheckFailClosed("t0", a, j); len(vs) != 0 {
		t.Fatalf("unbounded journal flagged: %v", vs)
	}
	// Squeeze the capacity under the backlog: must fail closed immediately,
	// members tracking — and then the checker is clean again.
	j.SetCapacityBytes(1)
	if !j.Overflowed() {
		t.Fatal("squeeze under backlog did not overflow")
	}
	if !v.TrackingChanges() {
		t.Fatal("overflowed member not change tracking")
	}
	if vs := CheckFailClosed("t0", a, j); len(vs) != 0 {
		t.Fatalf("fail-closed overflow flagged: %v", vs)
	}
	// Break the contract behind the checker's back: member stops tracking.
	v.StopChangeTracking()
	vs := CheckFailClosed("t0", a, j)
	if len(vs) != 1 || !strings.Contains(vs[0].Detail, "not change tracking") {
		t.Fatalf("broken tracking not reported: %v", vs)
	}
}

func TestCheckFailClosedShardedAllOrNone(t *testing.T) {
	env := sim.NewEnv(1)
	a := storage.NewArray(env, "m", storage.Config{})
	for _, id := range []storage.VolumeID{"v0", "v1", "v2", "v3"} {
		if _, err := a.CreateVolume(id, 16); err != nil {
			t.Fatal(err)
		}
	}
	sj, err := a.CreateShardedConsistencyGroup("cg", []storage.VolumeID{"v0", "v1", "v2", "v3"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range []storage.VolumeID{"v0", "v1", "v2", "v3"} {
		v, _ := a.Volume(id)
		stamped(t, env, v, 0, uint64(i+1))
	}
	if vs := CheckFailClosedSharded("t0", a, sj); len(vs) != 0 {
		t.Fatalf("healthy group flagged: %v", vs)
	}
	// Squeeze: the whole group fails closed even though per-shard backlogs
	// differ, and the checker stays clean.
	sj.SetCapacityPerShard(1)
	if !sj.Overflowed() {
		t.Fatal("squeeze under backlog did not overflow the group")
	}
	for _, sh := range sj.Shards() {
		if !sh.Overflowed() {
			t.Fatalf("shard %s escaped the group overflow", sh.ID())
		}
	}
	if vs := CheckFailClosedSharded("t0", a, sj); len(vs) != 0 {
		t.Fatalf("all-or-none overflow flagged: %v", vs)
	}
	// Violate all-or-none: clear one shard while the group stays overflowed.
	sj.Shards()[0].ClearOverflow()
	vs := CheckFailClosedSharded("t0", a, sj)
	found := false
	for _, v := range vs {
		if strings.Contains(v.Detail, "all-or-none") {
			found = true
		}
	}
	if !found {
		t.Fatalf("partial overflow not reported: %v", vs)
	}
}

// fakeRep satisfies replication.Replicator via interface embedding; only
// Name() is ever called by CheckNoOrphanGroups.
type fakeRep struct {
	replication.Replicator
	name string
}

func (f fakeRep) Name() string { return f.name }

func TestCheckNoOrphanGroups(t *testing.T) {
	owner := map[string]string{"g-a": "ns-a", "g-b": "ns-b"}
	groups := []replication.Replicator{fakeRep{name: "g-b"}, fakeRep{name: "g-a"}, fakeRep{name: "g-c"}}
	nsOf := func(g replication.Replicator) string { return owner[g.Name()] }
	live := func(ns string) bool { return ns == "ns-a" }
	vs := CheckNoOrphanGroups(groups, nsOf, live)
	// g-a is owned and live; g-b outlived its tenant; g-c is unowned.
	// The checker sorts by name, so g-b's violation precedes g-c's.
	if len(vs) != 2 {
		t.Fatalf("violations = %v", vs)
	}
	if !strings.Contains(vs[0].String(), "g-b") || !strings.Contains(vs[1].String(), "g-c") {
		t.Fatalf("order/content wrong: %v", vs)
	}
}
