// Package invariants is the shared library of global correctness checks —
// the properties every experiment asserts by hand today (E13's exact
// ack-order failover prefix, E14's zero-residue decommission, E12/E15's
// consistent cuts) extracted into one implementation that both the
// experiment harnesses and the seeded chaos sweep (internal/chaos) call.
//
// Each checker is a pure function over the modelled state: it takes the
// objects to inspect and returns a slice of Violations (empty = invariant
// holds). Checkers never advance simulation time and never mutate what they
// inspect, so the chaos runner can assert them after every recovery point
// without perturbing the schedule it would need to replay.
//
// The invariants:
//
//   - consistent cut: a recovered sales/stock pair has no orphan stock
//     commits (the paper's collapse) and each volume's image is an exact
//     prefix of its ack order;
//   - stamped prefix: a failed-over volume set holds exactly the blocks
//     {1..K} of the sequence-stamped write order (E13/E15's write-heavy
//     tenants) — nothing leaked past the barrier;
//   - epoch boundary: a sharded group's backup image never exposes a
//     record from an epoch newer than the last committed barrier;
//   - zero residue: a decommissioned tenant left nothing behind on either
//     array (volumes, journals, snapshots);
//   - fail-closed overflow: a journal over its declared capacity has
//     overflowed, a sharded group overflows all-or-none, and every member
//     volume of an overflowed journal is change tracking (the resync delta
//     is being accumulated);
//   - no orphan groups: every registered replication engine belongs to a
//     live tenant;
//   - no leaked watches: an API server has no watch registrations left
//     after its controllers stop.
package invariants

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/consistency"
	"repro/internal/platform"
	"repro/internal/replication"
	"repro/internal/storage"
)

// Violation is one broken invariant, carrying enough context to print a
// useful one-line diagnosis in a chaos repro log or an experiment failure.
type Violation struct {
	// Invariant names the checker that fired (e.g. "consistent-cut").
	Invariant string
	// Tenant is the namespace the violation belongs to ("" for global
	// checks like orphan groups or leaked watches).
	Tenant string
	// Detail is the human-readable specifics.
	Detail string
}

func (v Violation) String() string {
	if v.Tenant == "" {
		return fmt.Sprintf("%s: %s", v.Invariant, v.Detail)
	}
	return fmt.Sprintf("%s[%s]: %s", v.Invariant, v.Tenant, v.Detail)
}

// violate is the one constructor, so every Detail is formatted the same way.
func violate(invariant, tenant, format string, args ...any) Violation {
	return Violation{Invariant: invariant, Tenant: tenant, Detail: fmt.Sprintf(format, args...)}
}

// StampedPrefix scans a failed-over volume set for its sequence-stamped
// blocks and reports the highest K with {1..K} all present — plus whether
// the image is EXACTLY that prefix (a consistent cross-volume cut: nothing
// newer leaked past the barrier). This is the E13/E15 write-heavy-tenant
// check: each block's first 8 bytes carry the big-endian ack sequence of
// the write that produced it.
func StampedPrefix(vols []*storage.Volume) (int, bool) {
	present := make(map[uint64]bool)
	for _, v := range vols {
		for _, b := range v.WrittenBlocks() {
			present[binary.BigEndian.Uint64(v.Peek(b))] = true
		}
	}
	k := uint64(0)
	for present[k+1] {
		k++
	}
	return int(k), len(present) == int(k)
}

// CheckConsistentCut asserts the paper's core recovery invariant over a
// verified sales/stock pair: the cut did not collapse (no stock commit
// whose sales commit is missing) and each volume recovered an exact prefix
// of its ack order. Lost tails are fine — asynchronous replication loses
// recent commits — but holes and orphans are not.
func CheckConsistentCut(tenant string, rep consistency.Report) []Violation {
	var out []Violation
	if rep.Collapsed() {
		out = append(out, violate("consistent-cut", tenant,
			"collapsed: %d stock commits have no sales commit (first %v)",
			len(rep.OrphanStock), rep.OrphanStock[0]))
	}
	if !rep.SalesPrefixOK {
		out = append(out, violate("consistent-cut", tenant,
			"sales image is not an ack-order prefix (%d txns recovered)", rep.SalesTxns))
	}
	if !rep.StockPrefixOK {
		out = append(out, violate("consistent-cut", tenant,
			"stock image is not an ack-order prefix (%d txns recovered)", rep.StockTxns))
	}
	return out
}

// CheckEpochBoundary asserts that a sharded group's backup image is bounded
// by its epoch barrier: no applied record carries an epoch newer than the
// last committed one. Installs and the committed-epoch advance happen in
// the same scheduler step (replication.ShardedGroup.commitEpoch), so this
// holds at every step boundary — a violation means the barrier leaked.
func CheckEpochBoundary(tenant string, sg *replication.ShardedGroup) []Violation {
	committed := sg.CommittedEpoch()
	maxApplied := int64(0)
	for _, r := range sg.ApplyLog() {
		if r.Epoch > maxApplied {
			maxApplied = r.Epoch
		}
	}
	if maxApplied > committed {
		return []Violation{violate("epoch-boundary", tenant,
			"%s applied a record from epoch %d past committed barrier %d",
			sg.Name(), maxApplied, committed)}
	}
	return nil
}

// CheckZeroResidue asserts a decommissioned tenant reclaimed everything:
// one violation per object still carrying the tenant's prefix on either
// array (the core.System.TenantResidue listing), so len(violations) counts
// leaks exactly the way E14 tallies them.
func CheckZeroResidue(tenant string, residue []string) []Violation {
	out := make([]Violation, 0, len(residue))
	for _, r := range residue {
		out = append(out, violate("zero-residue", tenant, "leaked %s", r))
	}
	return out
}

// CheckFailClosed asserts the overflow contract on a plain (unsharded)
// journal: the backlog never silently exceeds a declared capacity, and once
// overflowed, every member volume is change tracking so a resync can copy
// exactly the delta.
func CheckFailClosed(tenant string, a *storage.Array, j *storage.Journal) []Violation {
	var out []Violation
	if capacity := j.CapacityBytes(); capacity > 0 && !j.Overflowed() && j.PendingBytes() > capacity {
		out = append(out, violate("fail-closed", tenant,
			"journal %s backlog %dB exceeds capacity %dB without overflowing",
			j.ID(), j.PendingBytes(), capacity))
	}
	if j.Overflowed() {
		out = append(out, checkMembersTracking(tenant, a, j)...)
	}
	return out
}

// CheckFailClosedSharded asserts the overflow contract on a sharded
// consistency-group journal: shards overflow all-or-none (a partially
// journaling group cannot replay a consistent cross-shard cut), per-shard
// backlogs respect a declared capacity, and an overflowed group has every
// member volume change tracking.
func CheckFailClosedSharded(tenant string, a *storage.Array, sj *storage.ShardedJournal) []Violation {
	var out []Violation
	for _, j := range sj.Shards() {
		if j.Overflowed() != sj.Overflowed() {
			out = append(out, violate("fail-closed", tenant,
				"shard %s overflowed=%v but group %s overflowed=%v (must fail closed all-or-none)",
				j.ID(), j.Overflowed(), sj.ID(), sj.Overflowed()))
		}
		if capacity := j.CapacityBytes(); capacity > 0 && !j.Overflowed() && j.PendingBytes() > capacity {
			out = append(out, violate("fail-closed", tenant,
				"shard %s backlog %dB exceeds capacity %dB without overflowing",
				j.ID(), j.PendingBytes(), capacity))
		}
		if sj.Overflowed() {
			out = append(out, checkMembersTracking(tenant, a, j)...)
		}
	}
	return out
}

func checkMembersTracking(tenant string, a *storage.Array, j *storage.Journal) []Violation {
	var out []Violation
	for _, id := range j.Members() {
		v, err := a.Volume(id)
		if err != nil {
			out = append(out, violate("fail-closed", tenant,
				"overflowed journal %s member %s: %v", j.ID(), id, err))
			continue
		}
		if !v.TrackingChanges() {
			out = append(out, violate("fail-closed", tenant,
				"overflowed journal %s member %s is not change tracking", j.ID(), id))
		}
	}
	return out
}

// CheckNoOrphanGroups asserts every registered replication engine still
// belongs to a live tenant: nsOf maps an engine to its owning namespace
// ("" = unowned), live reports whether that namespace is still managed.
// Engines are examined in Name() order so the violation list is
// deterministic regardless of registry iteration order.
func CheckNoOrphanGroups(groups []replication.Replicator, nsOf func(replication.Replicator) string, live func(string) bool) []Violation {
	sorted := make([]replication.Replicator, len(groups))
	copy(sorted, groups)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name() < sorted[j].Name() })
	var out []Violation
	for _, g := range sorted {
		ns := nsOf(g)
		if ns == "" {
			out = append(out, violate("no-orphan-groups", "",
				"engine %s is registered but owned by no tenant", g.Name()))
			continue
		}
		if !live(ns) {
			out = append(out, violate("no-orphan-groups", ns,
				"engine %s outlived its tenant", g.Name()))
		}
	}
	return out
}

// CheckNoWatches asserts an API server has no watch registrations left —
// every controller unregistered on Stop. Meaningful only after the system
// quiesced; site labels the server in the violation.
func CheckNoWatches(site string, api *platform.APIServer) []Violation {
	if n := api.WatchCount(); n != 0 {
		return []Violation{violate("no-leaked-watches", "",
			"%s API server still holds %d watches after stop", site, n)}
	}
	return nil
}
