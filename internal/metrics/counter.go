package metrics

import (
	"fmt"
	"sort"
	"time"
)

// Counter is a monotonically increasing event count with a helper for
// converting to a rate over a simulated interval.
type Counter struct {
	n int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds delta (delta may not be negative).
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: negative Counter.Add")
	}
	c.n += delta
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// RatePerSec returns the count divided by elapsed, in events per second.
// Returns 0 when elapsed is not positive.
func (c *Counter) RatePerSec(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.n) / elapsed.Seconds()
}

// Gauge tracks an instantaneous value along with its observed extremes.
type Gauge struct {
	v, max, min int64
	set         bool
}

// Set records a new value.
func (g *Gauge) Set(v int64) {
	g.v = v
	if !g.set || v > g.max {
		g.max = v
	}
	if !g.set || v < g.min {
		g.min = v
	}
	g.set = true
}

// Value returns the last value set.
func (g *Gauge) Value() int64 { return g.v }

// Max returns the largest value ever set (0 if never set).
func (g *Gauge) Max() int64 { return g.max }

// Min returns the smallest value ever set (0 if never set).
func (g *Gauge) Min() int64 { return g.min }

// Series is a time-ordered sequence of (virtual time, value) points, used
// for journal backlog and RPO traces.
type Series struct {
	name   string
	points []Point
}

// Point is one sample in a Series.
type Point struct {
	At    time.Duration
	Value float64
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{name: name} }

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Append records a point. Points must be appended in nondecreasing time
// order; out-of-order appends panic because they indicate a harness bug.
func (s *Series) Append(at time.Duration, v float64) {
	if n := len(s.points); n > 0 && at < s.points[n-1].At {
		panic(fmt.Sprintf("metrics: series %q time went backwards: %v < %v", s.name, at, s.points[n-1].At))
	}
	s.points = append(s.points, Point{At: at, Value: v})
}

// Points returns the recorded points (not a copy; callers must not mutate).
func (s *Series) Points() []Point { return s.points }

// Len returns the number of points.
func (s *Series) Len() int { return len(s.points) }

// Max returns the maximum value in the series, or 0 when empty.
func (s *Series) Max() float64 {
	var m float64
	for i, p := range s.points {
		if i == 0 || p.Value > m {
			m = p.Value
		}
	}
	return m
}

// Mean returns the arithmetic mean of the values, or 0 when empty.
func (s *Series) Mean() float64 {
	if len(s.points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.points {
		sum += p.Value
	}
	return sum / float64(len(s.points))
}

// Window returns the sub-slice of points with from <= At <= to (not a
// copy; callers must not mutate). It is the query primitive behind
// per-tenant RPO timelines clipped to a tenant's active interval.
func (s *Series) Window(from, to time.Duration) []Point {
	lo := sort.Search(len(s.points), func(i int) bool { return s.points[i].At >= from })
	hi := sort.Search(len(s.points), func(i int) bool { return s.points[i].At > to })
	if lo >= hi {
		return nil
	}
	return s.points[lo:hi]
}

// At returns the value at the latest point with time <= at, or 0 when none.
func (s *Series) At(at time.Duration) float64 {
	i := sort.Search(len(s.points), func(i int) bool { return s.points[i].At > at })
	if i == 0 {
		return 0
	}
	return s.points[i-1].Value
}
