// Package metrics provides the measurement types used by the experiment
// harness: latency histograms with percentile queries, throughput counters,
// and plain-text table rendering for regenerating the paper's figures.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Histogram records duration samples and answers percentile queries. It
// keeps exact samples (experiments here record at most a few hundred
// thousand points, so exactness is cheaper than HDR bucketing and removes a
// source of error when comparing ADC vs SDC tails).
type Histogram struct {
	samples []time.Duration
	sorted  bool
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64}
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	h.samples = append(h.samples, d)
	h.sorted = false
	h.sum += d
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Sum returns the total of all samples.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Mean returns the arithmetic mean, or 0 when empty.
func (h *Histogram) Mean() time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / time.Duration(len(h.samples))
}

// Min returns the smallest sample, or 0 when empty.
func (h *Histogram) Min() time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample, or 0 when empty.
func (h *Histogram) Max() time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	return h.max
}

// Percentile returns the p-th percentile (0 < p <= 100) using
// nearest-rank on the sorted samples. It returns 0 when empty.
func (h *Histogram) Percentile(p float64) time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	if p <= 0 {
		return h.samples[0]
	}
	rank := int(math.Ceil(p / 100 * float64(len(h.samples))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(h.samples) {
		rank = len(h.samples)
	}
	return h.samples[rank-1]
}

// Median is Percentile(50).
func (h *Histogram) Median() time.Duration { return h.Percentile(50) }

// P99 is Percentile(99).
func (h *Histogram) P99() time.Duration { return h.Percentile(99) }

// Stddev returns the sample standard deviation, or 0 with fewer than two
// samples.
func (h *Histogram) Stddev() time.Duration {
	n := len(h.samples)
	if n < 2 {
		return 0
	}
	mean := float64(h.sum) / float64(n)
	var ss float64
	for _, s := range h.samples {
		d := float64(s) - mean
		ss += d * d
	}
	return time.Duration(math.Sqrt(ss / float64(n-1)))
}

// Merge folds other's samples into h without touching other. Per-tenant
// histograms aggregate into fleet totals this way; the merged samples stay
// exact, so percentile queries after a merge answer over the union.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || len(other.samples) == 0 {
		return
	}
	h.samples = append(h.samples, other.samples...)
	h.sorted = false
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.samples = h.samples[:0]
	h.sorted = false
	h.sum = 0
	h.min = math.MaxInt64
	h.max = 0
}

// Summary renders a one-line digest.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Median(), h.P99(), h.Max())
}
