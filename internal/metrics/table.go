package metrics

import (
	"fmt"
	"strings"
)

// Table renders experiment results as an aligned plain-text table, the
// format cmd/experiments uses to regenerate the paper's figures.
type Table struct {
	title   string
	headers []string
	rows    [][]string
	notes   []string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// AddNote appends a footnote line rendered under the table.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// Rows returns the formatted rows (for assertions in tests).
func (t *Table) Rows() [][]string { return t.rows }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
