package metrics

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != time.Millisecond || h.Max() != 100*time.Millisecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if got := h.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("mean = %v, want 50.5ms", got)
	}
	if got := h.Percentile(50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v, want 50ms", got)
	}
	if got := h.Percentile(99); got != 99*time.Millisecond {
		t.Fatalf("p99 = %v, want 99ms", got)
	}
	if got := h.Percentile(100); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v, want 100ms", got)
	}
}

func TestHistogramRecordAfterPercentile(t *testing.T) {
	h := NewHistogram()
	h.Record(5 * time.Millisecond)
	_ = h.Median()
	h.Record(time.Millisecond) // must re-sort
	if got := h.Percentile(1); got != time.Millisecond {
		t.Fatalf("p1 = %v after late record", got)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear")
	}
	h.Record(2 * time.Millisecond)
	if h.Min() != 2*time.Millisecond {
		t.Fatalf("min after reset = %v", h.Min())
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram()
	b := NewHistogram()
	for i := 1; i <= 50; i++ {
		a.Record(time.Duration(i) * time.Millisecond)
	}
	for i := 51; i <= 100; i++ {
		b.Record(time.Duration(i) * time.Millisecond)
	}
	a.Merge(b)
	if a.Count() != 100 {
		t.Fatalf("count after merge = %d", a.Count())
	}
	if a.Min() != time.Millisecond || a.Max() != 100*time.Millisecond {
		t.Fatalf("min/max after merge = %v/%v", a.Min(), a.Max())
	}
	if got := a.Sum(); got != 5050*time.Millisecond {
		t.Fatalf("sum after merge = %v, want 5.05s", got)
	}
	if got := a.Percentile(50); got != 50*time.Millisecond {
		t.Fatalf("p50 after merge = %v, want 50ms", got)
	}
	if got := a.Percentile(99); got != 99*time.Millisecond {
		t.Fatalf("p99 after merge = %v, want 99ms", got)
	}
	// b is untouched by the merge.
	if b.Count() != 50 || b.Min() != 51*time.Millisecond {
		t.Fatalf("merge mutated other: n=%d min=%v", b.Count(), b.Min())
	}
}

func TestHistogramMergeIntoEmpty(t *testing.T) {
	a := NewHistogram()
	b := NewHistogram()
	b.Record(7 * time.Millisecond)
	b.Record(3 * time.Millisecond)
	a.Merge(b)
	if a.Min() != 3*time.Millisecond || a.Max() != 7*time.Millisecond {
		t.Fatalf("min/max = %v/%v", a.Min(), a.Max())
	}
	// Merging an empty (or nil) histogram is a no-op.
	a.Merge(NewHistogram())
	a.Merge(nil)
	if a.Count() != 2 || a.Min() != 3*time.Millisecond {
		t.Fatalf("no-op merge changed state: n=%d min=%v", a.Count(), a.Min())
	}
}

func TestHistogramMergeResortsLazily(t *testing.T) {
	a := NewHistogram()
	a.Record(10 * time.Millisecond)
	_ = a.Median() // force sorted state
	b := NewHistogram()
	b.Record(time.Millisecond)
	a.Merge(b)
	if got := a.Percentile(1); got != time.Millisecond {
		t.Fatalf("p1 after merge = %v, want 1ms (merge must invalidate sort)", got)
	}
}

func TestHistogramPercentileMonotonic(t *testing.T) {
	// Property: percentiles are nondecreasing in p, and bounded by min/max.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram()
		n := rng.Intn(500) + 1
		for i := 0; i < n; i++ {
			h.Record(time.Duration(rng.Int63n(int64(time.Second))))
		}
		last := time.Duration(-1)
		for p := 1.0; p <= 100; p += 7 {
			v := h.Percentile(p)
			if v < last || v < h.Min() || v > h.Max() {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramStddev(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Millisecond)
	if h.Stddev() != 0 {
		t.Fatal("stddev with one sample should be 0")
	}
	h.Record(3 * time.Millisecond)
	// Sample stddev of {1,3}ms is sqrt(2) ms ≈ 1.414ms.
	got := h.Stddev()
	if got < 1410*time.Microsecond || got > 1419*time.Microsecond {
		t.Fatalf("stddev = %v, want ~1.414ms", got)
	}
}

func TestCounterRate(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("value = %d", c.Value())
	}
	if got := c.RatePerSec(2 * time.Second); got != 5 {
		t.Fatalf("rate = %v, want 5", got)
	}
	if got := c.RatePerSec(0); got != 0 {
		t.Fatalf("rate at zero elapsed = %v", got)
	}
}

func TestCounterNegativeAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestGaugeExtremes(t *testing.T) {
	var g Gauge
	g.Set(5)
	g.Set(-2)
	g.Set(3)
	if g.Value() != 3 || g.Max() != 5 || g.Min() != -2 {
		t.Fatalf("gauge = %d max=%d min=%d", g.Value(), g.Max(), g.Min())
	}
}

func TestSeriesAtAndMax(t *testing.T) {
	s := NewSeries("backlog")
	s.Append(time.Millisecond, 1)
	s.Append(2*time.Millisecond, 5)
	s.Append(4*time.Millisecond, 2)
	if s.Max() != 5 {
		t.Fatalf("max = %v", s.Max())
	}
	if got := s.At(0); got != 0 {
		t.Fatalf("At(0) = %v", got)
	}
	if got := s.At(3 * time.Millisecond); got != 5 {
		t.Fatalf("At(3ms) = %v, want 5 (latest <= 3ms)", got)
	}
	if got := s.At(time.Hour); got != 2 {
		t.Fatalf("At(1h) = %v, want 2", got)
	}
	if got := s.Mean(); got < 2.66 || got > 2.67 {
		t.Fatalf("mean = %v, want 8/3", got)
	}
}

func TestSeriesWindow(t *testing.T) {
	s := NewSeries("rpo")
	for i := 0; i < 10; i++ {
		s.Append(time.Duration(i)*time.Second, float64(i))
	}
	w := s.Window(2*time.Second, 5*time.Second)
	if len(w) != 4 || w[0].Value != 2 || w[3].Value != 5 {
		t.Fatalf("window [2s,5s] = %+v", w)
	}
	if w := s.Window(time.Minute, 2*time.Minute); w != nil {
		t.Fatalf("out-of-range window = %+v", w)
	}
	if w := s.Window(5*time.Second, 2*time.Second); w != nil {
		t.Fatalf("inverted window = %+v", w)
	}
	if w := s.Window(0, time.Hour); len(w) != 10 {
		t.Fatalf("full window len = %d", len(w))
	}
}

func TestSeriesBackwardsTimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := NewSeries("x")
	s.Append(time.Second, 1)
	s.Append(time.Millisecond, 2)
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("E5 slowdown", "rtt", "mode", "p50")
	tb.AddRow("1ms", "ADC", 0.5)
	tb.AddRow("1ms", "SDC", 2.25)
	tb.AddNote("ADC ~ baseline")
	out := tb.String()
	for _, want := range []string{"E5 slowdown", "rtt", "ADC", "2.250", "note: ADC ~ baseline"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	if len(tb.Rows()) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows()))
	}
}
