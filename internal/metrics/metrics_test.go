package metrics

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != time.Millisecond || h.Max() != 100*time.Millisecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if got := h.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("mean = %v, want 50.5ms", got)
	}
	if got := h.Percentile(50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v, want 50ms", got)
	}
	if got := h.Percentile(99); got != 99*time.Millisecond {
		t.Fatalf("p99 = %v, want 99ms", got)
	}
	if got := h.Percentile(100); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v, want 100ms", got)
	}
}

func TestHistogramRecordAfterPercentile(t *testing.T) {
	h := NewHistogram()
	h.Record(5 * time.Millisecond)
	_ = h.Median()
	h.Record(time.Millisecond) // must re-sort
	if got := h.Percentile(1); got != time.Millisecond {
		t.Fatalf("p1 = %v after late record", got)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear")
	}
	h.Record(2 * time.Millisecond)
	if h.Min() != 2*time.Millisecond {
		t.Fatalf("min after reset = %v", h.Min())
	}
}

func TestHistogramPercentileMonotonic(t *testing.T) {
	// Property: percentiles are nondecreasing in p, and bounded by min/max.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram()
		n := rng.Intn(500) + 1
		for i := 0; i < n; i++ {
			h.Record(time.Duration(rng.Int63n(int64(time.Second))))
		}
		last := time.Duration(-1)
		for p := 1.0; p <= 100; p += 7 {
			v := h.Percentile(p)
			if v < last || v < h.Min() || v > h.Max() {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramStddev(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Millisecond)
	if h.Stddev() != 0 {
		t.Fatal("stddev with one sample should be 0")
	}
	h.Record(3 * time.Millisecond)
	// Sample stddev of {1,3}ms is sqrt(2) ms ≈ 1.414ms.
	got := h.Stddev()
	if got < 1410*time.Microsecond || got > 1419*time.Microsecond {
		t.Fatalf("stddev = %v, want ~1.414ms", got)
	}
}

func TestCounterRate(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("value = %d", c.Value())
	}
	if got := c.RatePerSec(2 * time.Second); got != 5 {
		t.Fatalf("rate = %v, want 5", got)
	}
	if got := c.RatePerSec(0); got != 0 {
		t.Fatalf("rate at zero elapsed = %v", got)
	}
}

func TestCounterNegativeAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestGaugeExtremes(t *testing.T) {
	var g Gauge
	g.Set(5)
	g.Set(-2)
	g.Set(3)
	if g.Value() != 3 || g.Max() != 5 || g.Min() != -2 {
		t.Fatalf("gauge = %d max=%d min=%d", g.Value(), g.Max(), g.Min())
	}
}

func TestSeriesAtAndMax(t *testing.T) {
	s := NewSeries("backlog")
	s.Append(time.Millisecond, 1)
	s.Append(2*time.Millisecond, 5)
	s.Append(4*time.Millisecond, 2)
	if s.Max() != 5 {
		t.Fatalf("max = %v", s.Max())
	}
	if got := s.At(0); got != 0 {
		t.Fatalf("At(0) = %v", got)
	}
	if got := s.At(3 * time.Millisecond); got != 5 {
		t.Fatalf("At(3ms) = %v, want 5 (latest <= 3ms)", got)
	}
	if got := s.At(time.Hour); got != 2 {
		t.Fatalf("At(1h) = %v, want 2", got)
	}
	if got := s.Mean(); got < 2.66 || got > 2.67 {
		t.Fatalf("mean = %v, want 8/3", got)
	}
}

func TestSeriesBackwardsTimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := NewSeries("x")
	s.Append(time.Second, 1)
	s.Append(time.Millisecond, 2)
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("E5 slowdown", "rtt", "mode", "p50")
	tb.AddRow("1ms", "ADC", 0.5)
	tb.AddRow("1ms", "SDC", 2.25)
	tb.AddNote("ADC ~ baseline")
	out := tb.String()
	for _, want := range []string{"E5 slowdown", "rtt", "ADC", "2.250", "note: ADC ~ baseline"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	if len(tb.Rows()) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows()))
	}
}
