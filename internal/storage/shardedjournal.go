package storage

import (
	"fmt"
	"hash/fnv"

	"repro/internal/sim"
)

// ShardedJournal is a consistency-group journal split across N shard
// journals so the replication engine can drain the group on N independent
// lanes. The pieces of the ordering contract:
//
//   - placement: every volume is pinned to one shard by a stable hash of
//     its ID (ShardFor), so all writes to a volume share one shard and the
//     per-volume write order is a per-shard sequence order;
//   - per-shard sequence: each shard is a real Journal with its own Seq;
//   - group epoch: every record is stamped with the epoch open at ack time.
//     SealEpoch atomically closes the epoch, so "all records with epoch <= E"
//     is an exact prefix of the group's cross-volume ack order. The
//     multi-lane drain commits whole epochs at the target — its cross-shard
//     ordering barrier — which is what keeps consistency cuts correct even
//     though lanes drain concurrently.
//
// A sharded journal with one shard degenerates to a plain consistency group
// (one lane, one sequence), but the control plane keeps using Journal
// directly for that case so the single-journal path stays byte-for-byte
// unchanged.
type ShardedJournal struct {
	env     *sim.Env
	array   *Array
	id      string
	shards  []*Journal
	byVol   map[VolumeID]int // volume -> shard index
	members []VolumeID       // attach order
	epoch   int64            // current open epoch (starts at 1)
	ackSeq  int64            // group-wide ack order (Config.IsolatedVolumes)

	// capacityPerShard is inherited by shards added in a reshard.
	capacityPerShard int

	// retired holds shard journals dropped by a shrink reshard, kept until
	// their last in-flight records are accounted for and DecommissionRetired
	// releases them back to the array.
	retired []*Journal

	// Reshard counters: lifetime transitions and migrated work. A
	// shard-count-unchanged reconcile must leave all three untouched — the
	// zero-migration invariant E15 verifies.
	reshards     int64
	movedVolumes int64
	movedRecords int64

	overflowed bool
	overflows  int64
}

// ShardFor places a volume on one of shards journal shards. The placement
// is a stable hash (FNV-1a) of the volume ID alone — never attach order or
// map iteration — so identically-configured groups place volumes
// identically, run after run.
func ShardFor(id VolumeID, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(id))
	return int(h.Sum64() % uint64(shards))
}

// shardJournalID names one shard's backing journal volume.
func shardJournalID(id string, shard int) string { return fmt.Sprintf("%s#s%d", id, shard) }

// CreateShardedConsistencyGroup provisions a consistency group whose
// journal is split across shards unbounded shard journals and attaches
// every listed volume to its hash-placed shard.
func (a *Array) CreateShardedConsistencyGroup(id string, vols []VolumeID, shards int) (*ShardedJournal, error) {
	return a.CreateShardedConsistencyGroupSized(id, vols, shards, 0)
}

// CreateShardedConsistencyGroupSized is CreateShardedConsistencyGroup with
// a per-shard capacity in bytes (0 = unlimited). When any shard's backlog
// would exceed its capacity the WHOLE group overflows — all shards suspend
// and every member volume starts change tracking — because a group with
// some shards journaling and some not could never replay a consistent
// cross-shard cut.
func (a *Array) CreateShardedConsistencyGroupSized(id string, vols []VolumeID, shards int, capacityPerShard int) (*ShardedJournal, error) {
	if shards < 1 {
		return nil, fmt.Errorf("storage: sharded journal %s: shards must be >= 1", id)
	}
	if _, ok := a.sharded[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrJournalExists, id)
	}
	for k := 0; k < shards; k++ {
		if _, ok := a.journals[shardJournalID(id, k)]; ok {
			return nil, fmt.Errorf("%w: %s", ErrJournalExists, shardJournalID(id, k))
		}
	}
	sj := &ShardedJournal{
		env:              a.env,
		array:            a,
		id:               id,
		byVol:            make(map[VolumeID]int, len(vols)),
		epoch:            1,
		capacityPerShard: capacityPerShard,
	}
	for k := 0; k < shards; k++ {
		j := newJournal(a.env, a, shardJournalID(id, k), capacityPerShard)
		j.group = sj
		a.journals[j.id] = j
		sj.shards = append(sj.shards, j)
	}
	rollback := func() {
		for _, v := range sj.members {
			_ = a.DetachJournal(v)
		}
		for _, j := range sj.shards {
			delete(a.journals, j.id)
		}
	}
	for _, v := range vols {
		k := ShardFor(v, shards)
		if err := a.AttachJournal(v, shardJournalID(id, k)); err != nil {
			rollback()
			return nil, err
		}
		sj.byVol[v] = k
		sj.members = append(sj.members, v)
	}
	a.sharded[id] = sj
	return sj, nil
}

// ShardedJournal returns the sharded journal with the given ID.
func (a *Array) ShardedJournal(id string) (*ShardedJournal, error) {
	sj, ok := a.sharded[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchJournal, id)
	}
	return sj, nil
}

// DeleteShardedJournal detaches every member volume and removes the group's
// shard journals, including shards retired by a reshard but not yet
// decommissioned (a teardown racing a live reshard must not leak them).
func (a *Array) DeleteShardedJournal(id string) error {
	sj, ok := a.sharded[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchJournal, id)
	}
	for _, j := range sj.shards {
		if err := a.DeleteJournal(j.id); err != nil {
			return err
		}
	}
	for _, j := range sj.retired {
		if err := a.DeleteJournal(j.id); err != nil {
			return err
		}
	}
	sj.retired = nil
	delete(a.sharded, id)
	return nil
}

// ConvertToSharded wraps an existing plain consistency-group journal as a
// single-shard sharded journal with the same ID, adopting its members and
// pending backlog in place. The adopted shard keeps its identifier (no
// "#s0" suffix — shard IDs are labels, not structure). Records already
// pending carry epoch 0, which every sealed epoch exceeds, so a multi-lane
// drain commits the pre-conversion backlog ahead of post-conversion epochs.
// This is the entry point for live 1→N resharding of a group that started
// on the paper's plain single-journal path.
func (a *Array) ConvertToSharded(journalID string) (*ShardedJournal, error) {
	j, ok := a.journals[journalID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchJournal, journalID)
	}
	if j.group != nil {
		return nil, fmt.Errorf("storage: journal %s is already a shard of group %s", journalID, j.group.id)
	}
	if _, ok := a.sharded[journalID]; ok {
		return nil, fmt.Errorf("%w: %s", ErrJournalExists, journalID)
	}
	sj := &ShardedJournal{
		env:              a.env,
		array:            a,
		id:               journalID,
		shards:           []*Journal{j},
		byVol:            make(map[VolumeID]int, len(j.members)),
		epoch:            1,
		capacityPerShard: j.capacityBytes,
		overflowed:       j.overflowed,
		overflows:        j.overflows,
	}
	for _, v := range j.members {
		sj.byVol[v] = 0
		sj.members = append(sj.members, v)
	}
	j.group = sj
	a.sharded[journalID] = sj
	return sj, nil
}

// ID returns the group journal identifier.
func (sj *ShardedJournal) ID() string { return sj.id }

// Shards returns the shard journals in shard-index order. The replication
// engine runs one drain lane per entry.
func (sj *ShardedJournal) Shards() []*Journal {
	out := make([]*Journal, len(sj.shards))
	copy(out, sj.shards)
	return out
}

// ShardCount returns the number of shards.
func (sj *ShardedJournal) ShardCount() int { return len(sj.shards) }

// Members returns the attached volume IDs (the consistency-group
// membership), in attach order across all shards.
func (sj *ShardedJournal) Members() []VolumeID {
	out := make([]VolumeID, len(sj.members))
	copy(out, sj.members)
	return out
}

// ShardIndexOf returns the shard a member volume is placed on (-1 for
// non-members).
func (sj *ShardedJournal) ShardIndexOf(id VolumeID) int {
	k, ok := sj.byVol[id]
	if !ok {
		return -1
	}
	return k
}

// Epoch returns the current open epoch.
func (sj *ShardedJournal) Epoch() int64 { return sj.epoch }

// SealEpoch atomically closes the open epoch and opens the next, returning
// the sealed epoch. Every record acked before the call carries an epoch <=
// the sealed value and every later ack a greater one, so the sealed set is
// an exact prefix of the group's cross-volume ack order — the barrier the
// multi-lane drain converges on before declaring a consistency cut.
func (sj *ShardedJournal) SealEpoch() int64 {
	sealed := sj.epoch
	sj.epoch++
	return sealed
}

// Pending returns the backlog across all shards.
func (sj *ShardedJournal) Pending() int {
	var n int
	for _, j := range sj.shards {
		n += j.Pending()
	}
	return n
}

// ShardPending returns each shard's backlog record count in shard-index
// order — the telemetry plane's per-shard backlog probe reads this to
// expose lane imbalance that the group-wide Pending() sum hides.
func (sj *ShardedJournal) ShardPending() []int {
	out := make([]int, len(sj.shards))
	for k, j := range sj.shards {
		out[k] = j.Pending()
	}
	return out
}

// PendingBytes returns the wire size of the backlog across all shards.
func (sj *ShardedJournal) PendingBytes() int {
	var n int
	for _, j := range sj.shards {
		n += j.PendingBytes()
	}
	return n
}

// Appended returns the lifetime record count across all shards.
func (sj *ShardedJournal) Appended() int64 {
	var n int64
	for _, j := range sj.shards {
		n += j.Appended()
	}
	return n
}

// Drained returns the lifetime drained count across all shards.
func (sj *ShardedJournal) Drained() int64 {
	var n int64
	for _, j := range sj.shards {
		n += j.Drained()
	}
	return n
}

// Overflowed reports whether the group has overflowed (pair suspended).
func (sj *ShardedJournal) Overflowed() bool { return sj.overflowed }

// Overflows returns how many times the group has overflowed.
func (sj *ShardedJournal) Overflows() int64 { return sj.overflows }

// CapacityPerShard returns the per-shard capacity bound (0 = unlimited).
func (sj *ShardedJournal) CapacityPerShard() int { return sj.capacityPerShard }

// SetCapacityPerShard re-declares every shard's capacity at runtime (0 =
// unlimited); shards created by later reshards inherit it. If any shard's
// backlog already exceeds the new bound the whole group fails closed
// immediately — same all-or-none rule as an append-time overflow.
func (sj *ShardedJournal) SetCapacityPerShard(n int) {
	sj.capacityPerShard = n
	squeeze := false
	for _, j := range sj.shards {
		j.capacityBytes = n
		if n > 0 && j.PendingBytes() > n {
			squeeze = true
		}
	}
	if squeeze && !sj.overflowed {
		sj.overflow()
	}
}

// ClearOverflow re-enables journaling on every shard after a resync.
func (sj *ShardedJournal) ClearOverflow() {
	sj.overflowed = false
	for _, j := range sj.shards {
		j.ClearOverflow()
	}
}

// overflow fails the whole group closed: every shard suspends and starts
// change tracking on its members, even if only one shard hit its capacity.
func (sj *ShardedJournal) overflow() {
	sj.overflowed = true
	sj.overflows++
	for _, j := range sj.shards {
		if !j.overflowed {
			j.overflowLocal()
		}
	}
}

// ReshardStats describes one shard-set transition.
type ReshardStats struct {
	// BarrierEpoch is the group epoch sealed as the migration barrier:
	// every record acked before the reshard carries an epoch <= it, every
	// later ack a greater one. Zero for a no-op (unchanged count).
	BarrierEpoch int64
	// From and To are the shard counts before and after.
	From, To int
	// MovedVolumes counts members whose stable-hash placement changed.
	MovedVolumes int
	// MovedRecords counts pending records migrated onto their volume's new
	// shard.
	MovedRecords int
}

// Reshard transitions the group to newCount shard journals in one atomic
// (zero virtual time) step — the storage half of a live reshard:
//
//   - the open epoch is sealed as the migration barrier, so the old and the
//     new placement are separated by an exact cross-volume cut;
//   - volumes are re-placed by the same stable hash over the new count;
//     only members whose assignment changes migrate, and their pending
//     (undrained) records move with them, merged into the destination
//     shard's backlog by GlobalSeq — the array-wide ack order — which keeps
//     every shard's backlog epoch-monotone for the drain's barrier math;
//   - a grow creates the added shard journals (inheriting the group's
//     per-shard capacity); a shrink retires the dropped ones, which are
//     empty of backlog after migration and wait in Retired() until the
//     replication engine confirms their lanes idle and decommissions them.
//
// Resharding to the current count is a structural no-op: no epoch is
// sealed, nothing migrates, no counter moves. An overflowed group refuses
// to reshard — resync first, a suspended pair has no live drain to migrate
// under.
func (sj *ShardedJournal) Reshard(newCount int) (ReshardStats, error) {
	cur := len(sj.shards)
	stats := ReshardStats{From: cur, To: newCount}
	if newCount < 1 {
		return stats, fmt.Errorf("storage: sharded journal %s: reshard to %d shards", sj.id, newCount)
	}
	if newCount == cur {
		return stats, nil
	}
	if sj.overflowed {
		return stats, fmt.Errorf("storage: sharded journal %s: cannot reshard while overflowed (resync first)", sj.id)
	}
	a := sj.array
	for k := cur; k < newCount; k++ {
		if _, ok := a.journals[shardJournalID(sj.id, k)]; ok {
			return stats, fmt.Errorf("%w: %s", ErrJournalExists, shardJournalID(sj.id, k))
		}
	}
	if sj.capacityPerShard > 0 {
		// Sized shards model finite journal regions: a migration that would
		// land more backlog on a destination than its region holds is
		// refused BEFORE any side effects — the fail-closed overflow
		// invariant must not be bypassable by re-placement. The caller
		// (controller backoff) retries once the drain has made room.
		dest := make([]int, newCount)
		for k := 0; k < newCount && k < cur; k++ {
			dest[k] = sj.shards[k].PendingBytes()
		}
		for _, v := range sj.members {
			oldIdx, newIdx := sj.byVol[v], ShardFor(v, newCount)
			if oldIdx == newIdx {
				continue
			}
			moved := sj.shards[oldIdx].pendingBytesOf(v)
			if oldIdx < newCount {
				dest[oldIdx] -= moved
			}
			dest[newIdx] += moved
		}
		for k, b := range dest {
			if b > sj.capacityPerShard {
				return stats, fmt.Errorf("storage: sharded journal %s: reshard to %d would put %dB on shard %d (capacity %dB); drain first",
					sj.id, newCount, b, k, sj.capacityPerShard)
			}
		}
	}
	stats.BarrierEpoch = sj.SealEpoch()
	for k := cur; k < newCount; k++ {
		j := newJournal(a.env, a, shardJournalID(sj.id, k), sj.capacityPerShard)
		j.group = sj
		a.journals[j.id] = j
		sj.shards = append(sj.shards, j)
	}
	for _, v := range sj.members {
		oldIdx := sj.byVol[v]
		newIdx := ShardFor(v, newCount)
		if oldIdx == newIdx {
			continue
		}
		moved := sj.shards[oldIdx].takeVolume(v)
		if err := a.DetachJournal(v); err != nil {
			return stats, err
		}
		if err := a.AttachJournal(v, sj.shards[newIdx].id); err != nil {
			return stats, err
		}
		sj.shards[newIdx].mergeIn(moved)
		sj.byVol[v] = newIdx
		stats.MovedVolumes++
		stats.MovedRecords += len(moved)
	}
	if newCount < cur {
		sj.retired = append(sj.retired, sj.shards[newCount:]...)
		sj.shards = sj.shards[:newCount]
	}
	sj.reshards++
	sj.movedVolumes += int64(stats.MovedVolumes)
	sj.movedRecords += int64(stats.MovedRecords)
	return stats, nil
}

// Retired returns the shard journals dropped by shrink reshards and not yet
// decommissioned.
func (sj *ShardedJournal) Retired() []*Journal {
	out := make([]*Journal, len(sj.retired))
	copy(out, sj.retired)
	return out
}

// DecommissionRetired releases every retired shard journal that is fully
// drained (no backlog, no members) back to the array, returning how many
// were removed. The replication engine calls it once a retiring lane's last
// staged records are committed; leftover backlog keeps a shard parked here.
func (sj *ShardedJournal) DecommissionRetired() int {
	kept := sj.retired[:0]
	for _, j := range sj.retired {
		if j.Pending() == 0 && len(j.members) == 0 {
			delete(sj.array.journals, j.id)
		} else {
			kept = append(kept, j)
		}
	}
	n := len(sj.retired) - len(kept)
	for i := len(kept); i < len(sj.retired); i++ {
		sj.retired[i] = nil
	}
	sj.retired = kept
	return n
}

// Reshards returns the lifetime count of shard-set transitions.
func (sj *ShardedJournal) Reshards() int64 { return sj.reshards }

// MovedVolumes returns the lifetime count of migrated member placements.
func (sj *ShardedJournal) MovedVolumes() int64 { return sj.movedVolumes }

// MovedRecords returns the lifetime count of migrated pending records.
func (sj *ShardedJournal) MovedRecords() int64 { return sj.movedRecords }

func (sj *ShardedJournal) String() string {
	return fmt.Sprintf("ShardedJournal(%s){shards=%d members=%d pending=%d epoch=%d}",
		sj.id, len(sj.shards), len(sj.members), sj.Pending(), sj.epoch)
}
