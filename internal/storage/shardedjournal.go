package storage

import (
	"fmt"
	"hash/fnv"

	"repro/internal/sim"
)

// ShardedJournal is a consistency-group journal split across N shard
// journals so the replication engine can drain the group on N independent
// lanes. The pieces of the ordering contract:
//
//   - placement: every volume is pinned to one shard by a stable hash of
//     its ID (ShardFor), so all writes to a volume share one shard and the
//     per-volume write order is a per-shard sequence order;
//   - per-shard sequence: each shard is a real Journal with its own Seq;
//   - group epoch: every record is stamped with the epoch open at ack time.
//     SealEpoch atomically closes the epoch, so "all records with epoch <= E"
//     is an exact prefix of the group's cross-volume ack order. The
//     multi-lane drain commits whole epochs at the target — its cross-shard
//     ordering barrier — which is what keeps consistency cuts correct even
//     though lanes drain concurrently.
//
// A sharded journal with one shard degenerates to a plain consistency group
// (one lane, one sequence), but the control plane keeps using Journal
// directly for that case so the single-journal path stays byte-for-byte
// unchanged.
type ShardedJournal struct {
	env     *sim.Env
	array   *Array
	id      string
	shards  []*Journal
	byVol   map[VolumeID]int // volume -> shard index
	members []VolumeID       // attach order
	epoch   int64            // current open epoch (starts at 1)

	overflowed bool
	overflows  int64
}

// ShardFor places a volume on one of shards journal shards. The placement
// is a stable hash (FNV-1a) of the volume ID alone — never attach order or
// map iteration — so identically-configured groups place volumes
// identically, run after run.
func ShardFor(id VolumeID, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(id))
	return int(h.Sum64() % uint64(shards))
}

// shardJournalID names one shard's backing journal volume.
func shardJournalID(id string, shard int) string { return fmt.Sprintf("%s#s%d", id, shard) }

// CreateShardedConsistencyGroup provisions a consistency group whose
// journal is split across shards unbounded shard journals and attaches
// every listed volume to its hash-placed shard.
func (a *Array) CreateShardedConsistencyGroup(id string, vols []VolumeID, shards int) (*ShardedJournal, error) {
	return a.CreateShardedConsistencyGroupSized(id, vols, shards, 0)
}

// CreateShardedConsistencyGroupSized is CreateShardedConsistencyGroup with
// a per-shard capacity in bytes (0 = unlimited). When any shard's backlog
// would exceed its capacity the WHOLE group overflows — all shards suspend
// and every member volume starts change tracking — because a group with
// some shards journaling and some not could never replay a consistent
// cross-shard cut.
func (a *Array) CreateShardedConsistencyGroupSized(id string, vols []VolumeID, shards int, capacityPerShard int) (*ShardedJournal, error) {
	if shards < 1 {
		return nil, fmt.Errorf("storage: sharded journal %s: shards must be >= 1", id)
	}
	if _, ok := a.sharded[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrJournalExists, id)
	}
	for k := 0; k < shards; k++ {
		if _, ok := a.journals[shardJournalID(id, k)]; ok {
			return nil, fmt.Errorf("%w: %s", ErrJournalExists, shardJournalID(id, k))
		}
	}
	sj := &ShardedJournal{
		env:   a.env,
		array: a,
		id:    id,
		byVol: make(map[VolumeID]int, len(vols)),
		epoch: 1,
	}
	for k := 0; k < shards; k++ {
		j := newJournal(a.env, a, shardJournalID(id, k), capacityPerShard)
		j.group = sj
		a.journals[j.id] = j
		sj.shards = append(sj.shards, j)
	}
	rollback := func() {
		for _, v := range sj.members {
			_ = a.DetachJournal(v)
		}
		for _, j := range sj.shards {
			delete(a.journals, j.id)
		}
	}
	for _, v := range vols {
		k := ShardFor(v, shards)
		if err := a.AttachJournal(v, shardJournalID(id, k)); err != nil {
			rollback()
			return nil, err
		}
		sj.byVol[v] = k
		sj.members = append(sj.members, v)
	}
	a.sharded[id] = sj
	return sj, nil
}

// ShardedJournal returns the sharded journal with the given ID.
func (a *Array) ShardedJournal(id string) (*ShardedJournal, error) {
	sj, ok := a.sharded[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchJournal, id)
	}
	return sj, nil
}

// DeleteShardedJournal detaches every member volume and removes the group's
// shard journals.
func (a *Array) DeleteShardedJournal(id string) error {
	sj, ok := a.sharded[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchJournal, id)
	}
	for _, j := range sj.shards {
		if err := a.DeleteJournal(j.id); err != nil {
			return err
		}
	}
	delete(a.sharded, id)
	return nil
}

// ID returns the group journal identifier.
func (sj *ShardedJournal) ID() string { return sj.id }

// Shards returns the shard journals in shard-index order. The replication
// engine runs one drain lane per entry.
func (sj *ShardedJournal) Shards() []*Journal {
	out := make([]*Journal, len(sj.shards))
	copy(out, sj.shards)
	return out
}

// ShardCount returns the number of shards.
func (sj *ShardedJournal) ShardCount() int { return len(sj.shards) }

// Members returns the attached volume IDs (the consistency-group
// membership), in attach order across all shards.
func (sj *ShardedJournal) Members() []VolumeID {
	out := make([]VolumeID, len(sj.members))
	copy(out, sj.members)
	return out
}

// ShardIndexOf returns the shard a member volume is placed on (-1 for
// non-members).
func (sj *ShardedJournal) ShardIndexOf(id VolumeID) int {
	k, ok := sj.byVol[id]
	if !ok {
		return -1
	}
	return k
}

// Epoch returns the current open epoch.
func (sj *ShardedJournal) Epoch() int64 { return sj.epoch }

// SealEpoch atomically closes the open epoch and opens the next, returning
// the sealed epoch. Every record acked before the call carries an epoch <=
// the sealed value and every later ack a greater one, so the sealed set is
// an exact prefix of the group's cross-volume ack order — the barrier the
// multi-lane drain converges on before declaring a consistency cut.
func (sj *ShardedJournal) SealEpoch() int64 {
	sealed := sj.epoch
	sj.epoch++
	return sealed
}

// Pending returns the backlog across all shards.
func (sj *ShardedJournal) Pending() int {
	var n int
	for _, j := range sj.shards {
		n += j.Pending()
	}
	return n
}

// PendingBytes returns the wire size of the backlog across all shards.
func (sj *ShardedJournal) PendingBytes() int {
	var n int
	for _, j := range sj.shards {
		n += j.PendingBytes()
	}
	return n
}

// Appended returns the lifetime record count across all shards.
func (sj *ShardedJournal) Appended() int64 {
	var n int64
	for _, j := range sj.shards {
		n += j.Appended()
	}
	return n
}

// Drained returns the lifetime drained count across all shards.
func (sj *ShardedJournal) Drained() int64 {
	var n int64
	for _, j := range sj.shards {
		n += j.Drained()
	}
	return n
}

// Overflowed reports whether the group has overflowed (pair suspended).
func (sj *ShardedJournal) Overflowed() bool { return sj.overflowed }

// Overflows returns how many times the group has overflowed.
func (sj *ShardedJournal) Overflows() int64 { return sj.overflows }

// ClearOverflow re-enables journaling on every shard after a resync.
func (sj *ShardedJournal) ClearOverflow() {
	sj.overflowed = false
	for _, j := range sj.shards {
		j.ClearOverflow()
	}
}

// overflow fails the whole group closed: every shard suspends and starts
// change tracking on its members, even if only one shard hit its capacity.
func (sj *ShardedJournal) overflow() {
	sj.overflowed = true
	sj.overflows++
	for _, j := range sj.shards {
		if !j.overflowed {
			j.overflowLocal()
		}
	}
}

func (sj *ShardedJournal) String() string {
	return fmt.Sprintf("ShardedJournal(%s){shards=%d members=%d pending=%d epoch=%d}",
		sj.id, len(sj.shards), len(sj.members), sj.Pending(), sj.epoch)
}
