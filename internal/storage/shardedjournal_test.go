package storage

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/sim"
)

func shardedFixture(t *testing.T, shards, vols, capacityPerShard int) (*sim.Env, *Array, *ShardedJournal) {
	t.Helper()
	env := sim.NewEnv(1)
	a := NewArray(env, "main", Config{})
	ids := make([]VolumeID, vols)
	for i := range ids {
		ids[i] = VolumeID(fmt.Sprintf("vol-%02d", i))
		if _, err := a.CreateVolume(ids[i], 256); err != nil {
			t.Fatal(err)
		}
	}
	sj, err := a.CreateShardedConsistencyGroupSized("cg", ids, shards, capacityPerShard)
	if err != nil {
		t.Fatal(err)
	}
	return env, a, sj
}

// TestShardPlacementIsStableHash pins the determinism requirement: placement
// is a function of the volume ID alone, so two identically-configured groups
// — even with members attached in a different order, on different arrays —
// place every volume on the same shard.
func TestShardPlacementIsStableHash(t *testing.T) {
	const shards = 4
	mk := func(seed int64, order []VolumeID) *ShardedJournal {
		env := sim.NewEnv(seed)
		a := NewArray(env, "arr", Config{})
		for _, id := range order {
			if _, err := a.CreateVolume(id, 64); err != nil {
				t.Fatal(err)
			}
		}
		sj, err := a.CreateShardedConsistencyGroup("cg", order, shards)
		if err != nil {
			t.Fatal(err)
		}
		return sj
	}
	fwd := make([]VolumeID, 16)
	for i := range fwd {
		fwd[i] = VolumeID(fmt.Sprintf("vol-%02d", i))
	}
	rev := make([]VolumeID, len(fwd))
	for i := range rev {
		rev[i] = fwd[len(fwd)-1-i]
	}
	a, b := mk(1, fwd), mk(99, rev)
	for _, id := range fwd {
		if a.ShardIndexOf(id) != b.ShardIndexOf(id) {
			t.Errorf("%s placed on shard %d vs %d — placement depends on attach order",
				id, a.ShardIndexOf(id), b.ShardIndexOf(id))
		}
		if got := a.ShardIndexOf(id); got != ShardFor(id, shards) {
			t.Errorf("%s: ShardIndexOf=%d, ShardFor=%d", id, got, ShardFor(id, shards))
		}
	}
	// Placement actually spreads: a 16-volume group must use > 1 shard.
	used := map[int]bool{}
	for _, id := range fwd {
		used[a.ShardIndexOf(id)] = true
	}
	if len(used) < 2 {
		t.Errorf("all 16 volumes hashed onto one shard: %v", used)
	}
}

// TestShardedWritesRouteToPlacedShard checks the write path: a journaled
// write lands on exactly the volume's placed shard, with that shard's own
// sequence and the group's open epoch.
func TestShardedWritesRouteToPlacedShard(t *testing.T) {
	env, a, sj := shardedFixture(t, 4, 8, 0)
	env.Process("w", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			v, _ := a.Volume(VolumeID(fmt.Sprintf("vol-%02d", i)))
			if _, err := v.Write(p, 0, block(a, byte(i))); err != nil {
				t.Error(err)
				return
			}
		}
	})
	env.Run(0)
	if sj.Pending() != 8 {
		t.Fatalf("pending = %d, want 8", sj.Pending())
	}
	for k, shard := range sj.Shards() {
		for _, r := range shard.PendingRecords() {
			if sj.ShardIndexOf(r.Volume) != k {
				t.Errorf("record for %s on shard %d, placed on %d", r.Volume, k, sj.ShardIndexOf(r.Volume))
			}
			if r.Epoch != 1 {
				t.Errorf("record epoch = %d, want open epoch 1", r.Epoch)
			}
		}
	}
	if sealed := sj.SealEpoch(); sealed != 1 {
		t.Fatalf("sealed = %d, want 1", sealed)
	}
	env.Process("w2", func(p *sim.Proc) {
		v, _ := a.Volume("vol-00")
		if _, err := v.Write(p, 1, block(a, 0xEE)); err != nil {
			t.Error(err)
		}
	})
	env.Run(0)
	shard := sj.Shards()[sj.ShardIndexOf("vol-00")]
	recs := shard.PendingRecords()
	if got := recs[len(recs)-1].Epoch; got != 2 {
		t.Fatalf("post-seal record epoch = %d, want 2", got)
	}
}

// TestShardOverflowFailsWholeGroupClosed extends the WAL-boundary fail-closed
// pattern to sharded journals: when ONE shard's backlog would exceed its
// capacity, the entire group suspends — every shard stops journaling and
// every member volume change-tracks — because a group journaling on some
// shards only cannot replay a consistent cross-shard cut.
func TestShardOverflowFailsWholeGroupClosed(t *testing.T) {
	// Capacity fits exactly two 4KiB records per shard.
	env, a, sj := shardedFixture(t, 2, 4, 2*(4096+recordHeaderBytes))
	var victim VolumeID // any volume on a populated shard
	for _, shard := range sj.Shards() {
		if ms := shard.Members(); len(ms) > 0 {
			victim = ms[0]
			break
		}
	}
	env.Process("w", func(p *sim.Proc) {
		v, _ := a.Volume(victim)
		for i := int64(0); i < 3; i++ { // third append would exceed shard 0
			if _, err := v.Write(p, i, block(a, 0x77)); err != nil {
				t.Error(err)
				return
			}
		}
	})
	env.Run(0)
	if !sj.Overflowed() || sj.Overflows() != 1 {
		t.Fatalf("group overflowed=%v overflows=%d, want true/1", sj.Overflowed(), sj.Overflows())
	}
	for k, shard := range sj.Shards() {
		if !shard.Overflowed() {
			t.Errorf("shard %d not suspended after sibling overflow", k)
		}
	}
	appended := sj.Appended()
	env.Process("w2", func(p *sim.Proc) {
		// Writes anywhere in the group are tracked, not journaled.
		for _, id := range sj.Members() {
			v, _ := a.Volume(id)
			if _, err := v.Write(p, 10, block(a, 0x78)); err != nil {
				t.Error(err)
				return
			}
		}
	})
	env.Run(0)
	if sj.Appended() != appended {
		t.Fatalf("suspended group still journaled: appended %d -> %d", appended, sj.Appended())
	}
	for _, id := range sj.Members() {
		v, _ := a.Volume(id)
		if len(v.ChangedBlocks()) == 0 {
			t.Errorf("%s not change-tracking while suspended", id)
		}
	}
}

// TestShardedTryTakeIntoBuffersAreIndependent pins that per-shard drains can
// reuse one scratch buffer per lane: a batch taken from one shard must not
// alias another shard's buffer or pending state (run under -race in CI).
func TestShardedTryTakeIntoBuffersAreIndependent(t *testing.T) {
	env, a, sj := shardedFixture(t, 2, 4, 0)
	env.Process("w", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			v, _ := a.Volume(VolumeID(fmt.Sprintf("vol-%02d", i)))
			for b := int64(0); b < 4; b++ {
				if _, err := v.Write(p, b, block(a, byte(16*i+int(b)))); err != nil {
					t.Error(err)
					return
				}
			}
		}
	})
	env.Run(0)
	s0, s1 := sj.Shards()[0], sj.Shards()[1]
	if s0.Pending() == 0 || s1.Pending() == 0 {
		t.Fatalf("fixture degenerate: shard pendings %d/%d", s0.Pending(), s1.Pending())
	}
	var buf0, buf1 []Record
	b0 := s0.TryTakeInto(buf0, 4)
	b1 := s1.TryTakeInto(buf1, 4)
	snapshot := append([]Record(nil), b1...)
	// Overwrite lane 0's batch wholesale; lane 1's batch must be untouched.
	for i := range b0 {
		b0[i] = Record{Seq: -1, Volume: "poison"}
	}
	for i := range b1 {
		if b1[i].Seq != snapshot[i].Seq || b1[i].Volume != snapshot[i].Volume {
			t.Fatalf("shard 1 batch mutated by shard 0 write at %d: %+v", i, b1[i])
		}
	}
	// And the next take on shard 0 reuses ITS buffer without touching b1.
	_ = s0.TryTakeInto(b0, 4)
	for i := range b1 {
		if b1[i].Seq != snapshot[i].Seq {
			t.Fatalf("shard 1 batch mutated by shard 0 re-take at %d", i)
		}
	}
}

// TestShardedGroupLifecycleGuards covers creation/deletion error paths.
func TestShardedGroupLifecycleGuards(t *testing.T) {
	env := sim.NewEnv(1)
	a := NewArray(env, "main", Config{})
	for i := 0; i < 2; i++ {
		if _, err := a.CreateVolume(VolumeID(fmt.Sprintf("vol-%02d", i)), 64); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.CreateShardedConsistencyGroup("cg", []VolumeID{"vol-00"}, 0); err == nil {
		t.Fatal("zero shards accepted")
	}
	sj, err := a.CreateShardedConsistencyGroup("cg", []VolumeID{"vol-00", "vol-01"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.CreateShardedConsistencyGroup("cg", []VolumeID{"vol-00"}, 2); !errors.Is(err, ErrJournalExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	// Attaching an already-grouped volume elsewhere fails and rolls back.
	if _, err := a.CreateShardedConsistencyGroup("cg2", []VolumeID{"vol-01"}, 2); !errors.Is(err, ErrJournalAttached) {
		t.Fatalf("re-attach: %v", err)
	}
	if _, err := a.ShardedJournal("cg2"); err == nil {
		t.Fatal("failed create left a registered group")
	}
	if _, err := a.Journal(shardJournalID("cg2", 0)); err == nil {
		t.Fatal("failed create left shard journals behind")
	}
	if err := a.DeleteShardedJournal("cg"); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < sj.ShardCount(); k++ {
		if _, err := a.Journal(shardJournalID("cg", k)); err == nil {
			t.Fatalf("shard %d survives group deletion", k)
		}
	}
	v, _ := a.Volume("vol-00")
	if v.Journal() != nil {
		t.Fatal("member still attached after group deletion")
	}
}
