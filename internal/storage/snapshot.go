package storage

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/sim"
)

// Snapshot is a copy-on-write duplicate of a volume frozen at creation time.
// Reading a block returns the content the parent had at the snapshot
// instant: the preserved original if the parent has since overwritten it,
// otherwise the parent's (unchanged) current content.
type Snapshot struct {
	id      string
	parent  *Volume
	takenAt time.Duration
	saved   map[int64][]byte // block -> original content (nil = was unwritten)
	group   string           // owning snapshot group, "" for standalone
	reads   int64
}

// CreateSnapshot freezes a point-in-time image of the volume. Creation is
// instantaneous (arrays only install COW metadata), so within one simulated
// instant the image is exact.
func (a *Array) CreateSnapshot(id string, vol VolumeID) (*Snapshot, error) {
	if _, ok := a.snapshots[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrSnapshotExists, id)
	}
	v, ok := a.volumes[vol]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchVolume, vol)
	}
	s := &Snapshot{
		id:      id,
		parent:  v,
		takenAt: a.env.Now(),
		saved:   make(map[int64][]byte),
	}
	v.snapshots = append(v.snapshots, s)
	a.snapshots[id] = s
	return s, nil
}

// Snapshot returns the snapshot with the given ID.
func (a *Array) Snapshot(id string) (*Snapshot, error) {
	s, ok := a.snapshots[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchSnapshot, id)
	}
	return s, nil
}

// DeleteSnapshot releases a snapshot and its preserved blocks.
func (a *Array) DeleteSnapshot(id string) error {
	s, ok := a.snapshots[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchSnapshot, id)
	}
	v := s.parent
	for i, ps := range v.snapshots {
		if ps == s {
			v.snapshots = append(v.snapshots[:i], v.snapshots[i+1:]...)
			break
		}
	}
	delete(a.snapshots, id)
	return nil
}

// DeleteVolumeSnapshots releases every snapshot of the volume, shrinking
// (and, once empty, removing) any snapshot groups they belong to — the
// cleanup step tenant decommissioning runs before deleting the volume.
func (a *Array) DeleteVolumeSnapshots(id VolumeID) error {
	v, ok := a.volumes[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchVolume, id)
	}
	for _, s := range append([]*Snapshot(nil), v.snapshots...) {
		if g, ok := a.groups[s.group]; ok {
			for i, gs := range g.snaps {
				if gs == s {
					g.snaps = append(g.snaps[:i], g.snaps[i+1:]...)
					break
				}
			}
			if len(g.snaps) == 0 {
				delete(a.groups, s.group)
			}
		}
		if err := a.DeleteSnapshot(s.id); err != nil {
			return err
		}
	}
	return nil
}

// ListSnapshots returns all snapshot IDs in lexical order.
func (a *Array) ListSnapshots() []string {
	out := make([]string, 0, len(a.snapshots))
	for id := range a.snapshots {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// ID returns the snapshot identifier.
func (s *Snapshot) ID() string { return s.id }

// Parent returns the snapped volume.
func (s *Snapshot) Parent() *Volume { return s.parent }

// TakenAt returns the snapshot creation instant.
func (s *Snapshot) TakenAt() time.Duration { return s.takenAt }

// SizeBlocks returns the parent volume's size in blocks.
func (s *Snapshot) SizeBlocks() int64 { return s.parent.sizeBlocks }

// BlockSize returns the array's block size in bytes.
func (s *Snapshot) BlockSize() int { return s.parent.array.cfg.BlockSize }

// Group returns the owning snapshot group name, or "" if standalone.
func (s *Snapshot) Group() string { return s.group }

// SavedBlocks returns how many original blocks the snapshot preserves (its
// COW space cost).
func (s *Snapshot) SavedBlocks() int { return len(s.saved) }

// Read returns the block content as of the snapshot instant, consuming the
// array's read service time.
func (s *Snapshot) Read(p *sim.Proc, block int64) ([]byte, error) {
	if block < 0 || block >= s.parent.sizeBlocks {
		return nil, fmt.Errorf("%w: snapshot %s[%d]", ErrOutOfRange, s.id, block)
	}
	a := s.parent.array
	a.controller.Acquire(p)
	p.Sleep(a.cfg.ReadLatency)
	a.controller.Release()
	s.reads++
	a.readOps.Add(1)
	return s.peek(block), nil
}

// ReadRange returns copies of count consecutive snapshot blocks starting at
// start — one fused sequential scan, like Volume.ReadRange: the controller
// is held once and the service time of count reads is charged in one step.
func (s *Snapshot) ReadRange(p *sim.Proc, start int64, count int) ([][]byte, error) {
	if count < 0 || start < 0 || start+int64(count) > s.parent.sizeBlocks {
		return nil, fmt.Errorf("%w: snapshot %s[%d..%d)", ErrOutOfRange, s.id, start, start+int64(count))
	}
	a := s.parent.array
	a.controller.Acquire(p)
	p.Sleep(time.Duration(count) * a.cfg.ReadLatency)
	a.controller.Release()
	s.reads += int64(count)
	a.readOps.Add(int64(count))
	// One contiguous backing buffer for the range (see Volume.ReadRange).
	bs := a.cfg.BlockSize
	backing := make([]byte, count*bs)
	out := make([][]byte, count)
	for i := range out {
		dst := backing[i*bs : (i+1)*bs : (i+1)*bs]
		s.peekInto(dst, start+int64(i))
		out[i] = dst
	}
	return out, nil
}

// Peek returns the snapshot-time block content without consuming simulated
// time (verification helper).
func (s *Snapshot) Peek(block int64) []byte { return s.peek(block) }

func (s *Snapshot) peek(block int64) []byte {
	out := make([]byte, s.parent.array.cfg.BlockSize)
	s.peekInto(out, block)
	return out
}

// peekInto writes the snapshot-time block content into dst (assumed zeroed).
func (s *Snapshot) peekInto(dst []byte, block int64) {
	if orig, saved := s.saved[block]; saved {
		copy(dst, orig) // nil orig = zeroes, already satisfied
		return
	}
	if cur, ok := s.parent.blocks[block]; ok {
		copy(dst, cur)
	}
}

// SnapshotGroup is a set of snapshots created atomically across multiple
// volumes — the array's snapshot-group function (§III-A2). Because creation
// happens at a single simulated instant, the images are mutually consistent
// whenever the underlying volumes are.
type SnapshotGroup struct {
	name    string
	takenAt time.Duration
	snaps   []*Snapshot
}

// CreateSnapshotGroup snapshots every listed volume at the same instant.
// On any failure no snapshots are left behind.
func (a *Array) CreateSnapshotGroup(name string, vols []VolumeID) (*SnapshotGroup, error) {
	if _, ok := a.groups[name]; ok {
		return nil, fmt.Errorf("%w: group %s", ErrSnapshotExists, name)
	}
	g := &SnapshotGroup{name: name, takenAt: a.env.Now()}
	for _, vol := range vols {
		id := fmt.Sprintf("%s/%s", name, vol)
		s, err := a.CreateSnapshot(id, vol)
		if err != nil {
			for _, done := range g.snaps {
				_ = a.DeleteSnapshot(done.id)
			}
			return nil, err
		}
		s.group = name
		g.snaps = append(g.snaps, s)
	}
	a.groups[name] = g
	return g, nil
}

// SnapshotGroupByName returns a previously created group.
func (a *Array) SnapshotGroupByName(name string) (*SnapshotGroup, error) {
	g, ok := a.groups[name]
	if !ok {
		return nil, fmt.Errorf("%w: group %s", ErrNoSuchSnapshot, name)
	}
	return g, nil
}

// DeleteSnapshotGroup removes the group and all member snapshots.
func (a *Array) DeleteSnapshotGroup(name string) error {
	g, ok := a.groups[name]
	if !ok {
		return fmt.Errorf("%w: group %s", ErrNoSuchSnapshot, name)
	}
	for _, s := range g.snaps {
		_ = a.DeleteSnapshot(s.id)
	}
	delete(a.groups, name)
	return nil
}

// Name returns the group name.
func (g *SnapshotGroup) Name() string { return g.name }

// TakenAt returns the group creation instant.
func (g *SnapshotGroup) TakenAt() time.Duration { return g.takenAt }

// Snapshots returns the member snapshots in creation order.
func (g *SnapshotGroup) Snapshots() []*Snapshot {
	out := make([]*Snapshot, len(g.snaps))
	copy(out, g.snaps)
	return out
}

// Snapshot returns the member snapshot of the given volume, or nil.
func (g *SnapshotGroup) Snapshot(vol VolumeID) *Snapshot {
	for _, s := range g.snaps {
		if s.parent.id == vol {
			return s
		}
	}
	return nil
}
