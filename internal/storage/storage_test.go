package storage

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
)

func block(a *Array, fill byte) []byte {
	b := make([]byte, a.Config().BlockSize)
	for i := range b {
		b[i] = fill
	}
	return b
}

func newTestArray(t *testing.T) (*sim.Env, *Array) {
	t.Helper()
	env := sim.NewEnv(1)
	return env, NewArray(env, "main", Config{})
}

func TestCreateAndListVolumes(t *testing.T) {
	_, a := newTestArray(t)
	if _, err := a.CreateVolume("sales", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := a.CreateVolume("stock", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := a.CreateVolume("sales", 1); !errors.Is(err, ErrVolumeExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if _, err := a.CreateVolume("bad", 0); err == nil {
		t.Fatal("zero-size volume accepted")
	}
	ids := a.ListVolumes()
	if len(ids) != 2 || ids[0] != "sales" || ids[1] != "stock" {
		t.Fatalf("list = %v", ids)
	}
	if _, err := a.Volume("nope"); !errors.Is(err, ErrNoSuchVolume) {
		t.Fatalf("lookup missing: %v", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	env, a := newTestArray(t)
	v, _ := a.CreateVolume("v", 10)
	data := block(a, 0xAB)
	var got []byte
	env.Process("io", func(p *sim.Proc) {
		if _, err := v.Write(p, 3, data); err != nil {
			t.Error(err)
			return
		}
		var err error
		got, err = v.Read(p, 3)
		if err != nil {
			t.Error(err)
		}
	})
	env.Run(0)
	if !bytes.Equal(got, data) {
		t.Fatal("read != written")
	}
	// Defensive copy: mutating the caller's buffer must not change the volume.
	data[0] = 0xFF
	if v.Peek(3)[0] != 0xAB {
		t.Fatal("volume aliased caller buffer")
	}
}

func TestUnwrittenBlocksReadZero(t *testing.T) {
	env, a := newTestArray(t)
	v, _ := a.CreateVolume("v", 4)
	var got []byte
	env.Process("io", func(p *sim.Proc) { got, _ = v.Read(p, 2) })
	env.Run(0)
	if !bytes.Equal(got, make([]byte, a.Config().BlockSize)) {
		t.Fatal("unwritten block not zero")
	}
}

func TestWriteValidation(t *testing.T) {
	env, a := newTestArray(t)
	v, _ := a.CreateVolume("v", 4)
	env.Process("io", func(p *sim.Proc) {
		if _, err := v.Write(p, 4, block(a, 1)); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("out of range: %v", err)
		}
		if _, err := v.Write(p, -1, block(a, 1)); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("negative: %v", err)
		}
		if _, err := v.Write(p, 0, []byte{1, 2}); !errors.Is(err, ErrBadBlockSize) {
			t.Errorf("short write: %v", err)
		}
		v.SetReadOnly(true)
		if _, err := v.Write(p, 0, block(a, 1)); !errors.Is(err, ErrReadOnly) {
			t.Errorf("read-only: %v", err)
		}
	})
	env.Run(0)
}

func TestWriteConsumesServiceTime(t *testing.T) {
	env := sim.NewEnv(1)
	a := NewArray(env, "m", Config{WriteLatency: time.Millisecond, Parallelism: 1})
	v, _ := a.CreateVolume("v", 10)
	env.Process("io", func(p *sim.Proc) {
		for i := int64(0); i < 5; i++ {
			if _, err := v.Write(p, i, block(a, byte(i))); err != nil {
				t.Error(err)
			}
		}
	})
	end := env.Run(0)
	if end != 5*time.Millisecond {
		t.Fatalf("5 writes took %v, want 5ms", end)
	}
}

func TestJournaledWritePaysJournalLatency(t *testing.T) {
	env := sim.NewEnv(1)
	a := NewArray(env, "m", Config{WriteLatency: time.Millisecond, JournalLatency: 100 * time.Microsecond})
	v, _ := a.CreateVolume("v", 10)
	if _, err := a.CreateJournal("j"); err != nil {
		t.Fatal(err)
	}
	if err := a.AttachJournal("v", "j"); err != nil {
		t.Fatal(err)
	}
	env.Process("io", func(p *sim.Proc) { v.Write(p, 0, block(a, 1)) })
	end := env.Run(0)
	if end != 1100*time.Microsecond {
		t.Fatalf("journaled write took %v, want 1.1ms", end)
	}
}

func TestGlobalSeqIsMonotonicAcrossVolumes(t *testing.T) {
	env, a := newTestArray(t)
	v1, _ := a.CreateVolume("a", 10)
	v2, _ := a.CreateVolume("b", 10)
	var acks []Ack
	env.Process("io", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			ack1, _ := v1.Write(p, int64(i), block(a, 1))
			ack2, _ := v2.Write(p, int64(i), block(a, 2))
			acks = append(acks, ack1, ack2)
		}
	})
	env.Run(0)
	for i := 1; i < len(acks); i++ {
		if acks[i].GlobalSeq != acks[i-1].GlobalSeq+1 {
			t.Fatalf("global seq not dense-monotonic: %v then %v", acks[i-1], acks[i])
		}
	}
}

func TestConsistencyGroupSharesOneOrder(t *testing.T) {
	env, a := newTestArray(t)
	a.CreateVolume("sales", 10)
	a.CreateVolume("stock", 10)
	j, err := a.CreateConsistencyGroup("cg", []VolumeID{"sales", "stock"})
	if err != nil {
		t.Fatal(err)
	}
	if m := j.Members(); len(m) != 2 {
		t.Fatalf("members = %v", m)
	}
	sales, _ := a.Volume("sales")
	stock, _ := a.Volume("stock")
	env.Process("io", func(p *sim.Proc) {
		sales.Write(p, 0, block(a, 1))
		stock.Write(p, 0, block(a, 2))
		sales.Write(p, 1, block(a, 3))
	})
	env.Run(0)
	var recs []Record
	env.Process("drain", func(p *sim.Proc) { recs = j.Take(p, 0) })
	env.Run(0)
	if len(recs) != 3 {
		t.Fatalf("drained %d records", len(recs))
	}
	wantVols := []VolumeID{"sales", "stock", "sales"}
	for i, r := range recs {
		if r.Seq != int64(i+1) {
			t.Fatalf("seq %d at %d", r.Seq, i)
		}
		if r.Volume != wantVols[i] {
			t.Fatalf("record %d volume = %s, want %s", i, r.Volume, wantVols[i])
		}
	}
}

func TestCreateConsistencyGroupRollsBackOnFailure(t *testing.T) {
	_, a := newTestArray(t)
	a.CreateVolume("a", 10)
	if _, err := a.CreateConsistencyGroup("cg", []VolumeID{"a", "missing"}); err == nil {
		t.Fatal("expected failure")
	}
	v, _ := a.Volume("a")
	if v.Journal() != nil {
		t.Fatal("rollback left volume attached")
	}
	if _, err := a.Journal("cg"); !errors.Is(err, ErrNoSuchJournal) {
		t.Fatal("rollback left journal")
	}
}

func TestAttachJournalTwiceFails(t *testing.T) {
	_, a := newTestArray(t)
	a.CreateVolume("v", 10)
	a.CreateJournal("j1")
	a.CreateJournal("j2")
	if err := a.AttachJournal("v", "j1"); err != nil {
		t.Fatal(err)
	}
	if err := a.AttachJournal("v", "j2"); !errors.Is(err, ErrJournalAttached) {
		t.Fatalf("double attach: %v", err)
	}
	if err := a.DetachJournal("v"); err != nil {
		t.Fatal(err)
	}
	if err := a.AttachJournal("v", "j2"); err != nil {
		t.Fatalf("attach after detach: %v", err)
	}
}

func TestDeleteVolumeGuardrails(t *testing.T) {
	env, a := newTestArray(t)
	a.CreateVolume("v", 10)
	a.CreateJournal("j")
	a.AttachJournal("v", "j")
	if err := a.DeleteVolume("v"); err == nil {
		t.Fatal("deleted journal-attached volume")
	}
	a.DetachJournal("v")
	a.CreateSnapshot("s", "v")
	if err := a.DeleteVolume("v"); err == nil {
		t.Fatal("deleted snapped volume")
	}
	a.DeleteSnapshot("s")
	if err := a.DeleteVolume("v"); err != nil {
		t.Fatal(err)
	}
	_ = env
}

func TestJournalTakeBlocksUntilAppend(t *testing.T) {
	env, a := newTestArray(t)
	v, _ := a.CreateVolume("v", 10)
	j, _ := a.CreateJournal("j")
	a.AttachJournal("v", "j")
	var recs []Record
	var takeAt time.Duration
	env.Process("drain", func(p *sim.Proc) {
		recs = j.Take(p, 10)
		takeAt = p.Now()
	})
	env.Process("io", func(p *sim.Proc) {
		p.Sleep(5 * time.Millisecond)
		v.Write(p, 0, block(a, 1))
	})
	env.Run(0)
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	if takeAt < 5*time.Millisecond {
		t.Fatalf("take returned at %v before any append", takeAt)
	}
}

func TestJournalTakeTimeout(t *testing.T) {
	env, a := newTestArray(t)
	j, _ := a.CreateJournal("j")
	var recs []Record
	var at time.Duration
	env.Process("drain", func(p *sim.Proc) {
		recs = j.TakeTimeout(p, 10, 3*time.Millisecond)
		at = p.Now()
	})
	env.Run(0)
	if recs != nil {
		t.Fatal("expected nil on timeout")
	}
	if at != 3*time.Millisecond {
		t.Fatalf("timed out at %v", at)
	}
}

func TestJournalTakeMaxBatches(t *testing.T) {
	env, a := newTestArray(t)
	v, _ := a.CreateVolume("v", 100)
	j, _ := a.CreateJournal("j")
	a.AttachJournal("v", "j")
	env.Process("io", func(p *sim.Proc) {
		for i := int64(0); i < 10; i++ {
			v.Write(p, i, block(a, byte(i)))
		}
	})
	env.Run(0)
	if j.Pending() != 10 {
		t.Fatalf("pending = %d", j.Pending())
	}
	env.Process("drain", func(p *sim.Proc) {
		b1 := j.Take(p, 4)
		if len(b1) != 4 || b1[0].Seq != 1 || b1[3].Seq != 4 {
			t.Errorf("batch1 = %v", b1)
		}
		b2 := j.Take(p, 100)
		if len(b2) != 6 || b2[0].Seq != 5 {
			t.Errorf("batch2 len=%d", len(b2))
		}
	})
	env.Run(0)
	if j.Pending() != 0 || j.Drained() != 10 {
		t.Fatalf("pending=%d drained=%d", j.Pending(), j.Drained())
	}
}

func TestJournalRPOBookkeeping(t *testing.T) {
	env, a := newTestArray(t)
	v, _ := a.CreateVolume("v", 10)
	j, _ := a.CreateJournal("j")
	a.AttachJournal("v", "j")
	if _, ok := j.OldestPendingAck(); ok {
		t.Fatal("empty journal reported an oldest ack")
	}
	env.Process("io", func(p *sim.Proc) {
		v.Write(p, 0, block(a, 1))
		p.Sleep(10 * time.Millisecond)
		v.Write(p, 1, block(a, 2))
	})
	env.Run(0)
	oldest, ok := j.OldestPendingAck()
	if !ok || oldest >= 10*time.Millisecond {
		t.Fatalf("oldest = %v ok=%v, want first write's ack time", oldest, ok)
	}
	if j.PendingBytes() != 2*(a.Config().BlockSize+recordHeaderBytes) {
		t.Fatalf("pending bytes = %d", j.PendingBytes())
	}
}

func TestSnapshotCopyOnWrite(t *testing.T) {
	env, a := newTestArray(t)
	v, _ := a.CreateVolume("v", 10)
	env.Process("setup", func(p *sim.Proc) { v.Write(p, 0, block(a, 0x01)) })
	env.Run(0)
	s, err := a.CreateSnapshot("s", "v")
	if err != nil {
		t.Fatal(err)
	}
	env.Process("overwrite", func(p *sim.Proc) {
		v.Write(p, 0, block(a, 0x02)) // overwrite snapped content
		v.Write(p, 1, block(a, 0x03)) // new block after snapshot
	})
	env.Run(0)
	var snap0, snap1, cur0 []byte
	env.Process("read", func(p *sim.Proc) {
		snap0, _ = s.Read(p, 0)
		snap1, _ = s.Read(p, 1)
		cur0, _ = v.Read(p, 0)
	})
	env.Run(0)
	if snap0[0] != 0x01 {
		t.Fatalf("snapshot sees %x, want pre-overwrite 01", snap0[0])
	}
	if snap1[0] != 0x00 {
		t.Fatalf("snapshot sees %x for block written after snap, want zeroes", snap1[0])
	}
	if cur0[0] != 0x02 {
		t.Fatalf("volume sees %x, want 02", cur0[0])
	}
	if s.SavedBlocks() != 2 { // block 0 original + block 1 was-unwritten marker
		t.Fatalf("saved = %d", s.SavedBlocks())
	}
	if v.COWCopies() != 2 {
		t.Fatalf("cow copies = %d", v.COWCopies())
	}
}

func TestSnapshotRepeatedOverwritePreservesFirstOriginal(t *testing.T) {
	env, a := newTestArray(t)
	v, _ := a.CreateVolume("v", 4)
	env.Process("w", func(p *sim.Proc) { v.Write(p, 0, block(a, 0xAA)) })
	env.Run(0)
	s, _ := a.CreateSnapshot("s", "v")
	env.Process("w", func(p *sim.Proc) {
		v.Write(p, 0, block(a, 0xBB))
		v.Write(p, 0, block(a, 0xCC))
	})
	env.Run(0)
	if got := s.Peek(0)[0]; got != 0xAA {
		t.Fatalf("snapshot block = %x, want AA", got)
	}
	if v.COWCopies() != 1 {
		t.Fatalf("cow copies = %d, want 1 (only first overwrite copies)", v.COWCopies())
	}
}

func TestSnapshotGroupAtomicAndRollback(t *testing.T) {
	env, a := newTestArray(t)
	a.CreateVolume("sales", 4)
	a.CreateVolume("stock", 4)
	if _, err := a.CreateSnapshotGroup("g1", []VolumeID{"sales", "missing"}); err == nil {
		t.Fatal("expected failure for missing volume")
	}
	if len(a.ListSnapshots()) != 0 {
		t.Fatalf("rollback left snapshots: %v", a.ListSnapshots())
	}
	g, err := a.CreateSnapshotGroup("g2", []VolumeID{"sales", "stock"})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Snapshots()) != 2 {
		t.Fatalf("group has %d snaps", len(g.Snapshots()))
	}
	if g.Snapshot("sales") == nil || g.Snapshot("stock") == nil || g.Snapshot("x") != nil {
		t.Fatal("group member lookup broken")
	}
	for _, s := range g.Snapshots() {
		if s.TakenAt() != g.TakenAt() {
			t.Fatal("group members taken at different instants")
		}
		if s.Group() != "g2" {
			t.Fatalf("snapshot group tag = %q", s.Group())
		}
	}
	if err := a.DeleteSnapshotGroup("g2"); err != nil {
		t.Fatal(err)
	}
	if len(a.ListSnapshots()) != 0 {
		t.Fatal("group delete left member snapshots")
	}
	_ = env
}

func TestApplyPathDoesNotJournal(t *testing.T) {
	env, a := newTestArray(t)
	v, _ := a.CreateVolume("v", 10)
	j, _ := a.CreateJournal("j")
	a.AttachJournal("v", "j")
	env.Process("apply", func(p *sim.Proc) {
		if err := v.Apply(p, 0, block(a, 9)); err != nil {
			t.Error(err)
		}
	})
	env.Run(0)
	if j.Pending() != 0 {
		t.Fatal("Apply leaked into the journal")
	}
	if v.Peek(0)[0] != 9 {
		t.Fatal("Apply did not store data")
	}
}

func TestApplyRespectsSnapshotCOW(t *testing.T) {
	env, a := newTestArray(t)
	v, _ := a.CreateVolume("v", 4)
	env.Process("w", func(p *sim.Proc) { v.Write(p, 0, block(a, 0x11)) })
	env.Run(0)
	s, _ := a.CreateSnapshot("s", "v")
	env.Process("apply", func(p *sim.Proc) { v.Apply(p, 0, block(a, 0x22)) })
	env.Run(0)
	if got := s.Peek(0)[0]; got != 0x11 {
		t.Fatalf("snapshot lost original under Apply: %x", got)
	}
}

func TestPokeBypassesTimeButKeepsCOW(t *testing.T) {
	env, a := newTestArray(t)
	v, _ := a.CreateVolume("v", 4)
	if err := v.Poke(0, block(a, 0x01)); err != nil {
		t.Fatal(err)
	}
	a.CreateSnapshot("s", "v")
	if err := v.Poke(0, block(a, 0x02)); err != nil {
		t.Fatal(err)
	}
	s, _ := a.Snapshot("s")
	if s.Peek(0)[0] != 0x01 {
		t.Fatal("Poke skipped snapshot COW")
	}
	if env.Now() != 0 {
		t.Fatal("Poke consumed simulated time")
	}
}

func TestReadOnlyVolumeStillAppliesReplication(t *testing.T) {
	env, a := newTestArray(t)
	v, _ := a.CreateVolume("v", 4)
	v.SetReadOnly(true)
	env.Process("apply", func(p *sim.Proc) {
		if err := v.Apply(p, 0, block(a, 5)); err != nil {
			t.Errorf("apply on read-only target: %v", err)
		}
	})
	env.Run(0)
}

func TestArrayStats(t *testing.T) {
	env, a := newTestArray(t)
	v, _ := a.CreateVolume("v", 10)
	env.Process("io", func(p *sim.Proc) {
		v.Write(p, 0, block(a, 1))
		v.Read(p, 0)
	})
	env.Run(0)
	if a.WriteOps() != 1 || a.ReadOps() != 1 {
		t.Fatalf("ops = %d/%d", a.WriteOps(), a.ReadOps())
	}
	if a.BytesWritten() != int64(a.Config().BlockSize) {
		t.Fatalf("bytes = %d", a.BytesWritten())
	}
	if v.Writes() != 1 || v.Reads() != 1 {
		t.Fatalf("vol ops = %d/%d", v.Writes(), v.Reads())
	}
}

func TestWrittenBlocksSorted(t *testing.T) {
	env, a := newTestArray(t)
	v, _ := a.CreateVolume("v", 100)
	env.Process("io", func(p *sim.Proc) {
		for _, b := range []int64{42, 7, 99, 0} {
			v.Write(p, b, block(a, 1))
		}
	})
	env.Run(0)
	got := v.WrittenBlocks()
	want := []int64{0, 7, 42, 99}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("blocks = %v", got)
		}
	}
}

// TestUsageAndResidueTrackAllocations pins the accounting the tenant
// decommission invariant is built on: Usage counts every allocated object
// and block, Residue finds everything tied to an ID prefix, and a full
// teardown returns both to their prior values.
func TestUsageAndResidueTrackAllocations(t *testing.T) {
	env, a := newTestArray(t)
	empty := a.Usage()
	if empty != (Usage{}) {
		t.Fatalf("fresh array usage = %+v", empty)
	}
	for _, id := range []VolumeID{"pvc-shop-sales", "pvc-shop-stock", "pvc-other-db"} {
		if _, err := a.CreateVolume(id, 64); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.CreateShardedConsistencyGroup("jnl-backup-shop-0",
		[]VolumeID{"pvc-shop-sales", "pvc-shop-stock"}, 2); err != nil {
		t.Fatal(err)
	}
	env.Process("write", func(p *sim.Proc) {
		v, _ := a.Volume("pvc-shop-sales")
		if _, err := v.Write(p, 0, block(a, 1)); err != nil {
			t.Error(err)
		}
	})
	env.Run(0)
	if _, err := a.CreateSnapshotGroup("shop-final", []VolumeID{"pvc-shop-sales", "pvc-shop-stock"}); err != nil {
		t.Fatal(err)
	}

	u := a.Usage()
	if u.Volumes != 3 || u.ShardedJournals != 1 || u.Journals != 2 ||
		u.Snapshots != 2 || u.SnapshotGroups != 1 || u.AttachedVolumes != 2 {
		t.Fatalf("usage = %+v", u)
	}
	if u.StoredBlocks != 1 || u.PendingRecords != 1 {
		t.Fatalf("usage blocks/records = %+v", u)
	}
	if res := a.Residue("pvc-shop-"); len(res) == 0 {
		t.Fatal("residue missed the shop objects")
	}
	if res := a.Residue("pvc-missing-"); len(res) != 0 {
		t.Fatalf("phantom residue: %v", res)
	}

	// Full teardown of the shop tenant.
	if err := a.DeleteShardedJournal("jnl-backup-shop-0"); err != nil {
		t.Fatal(err)
	}
	for _, id := range []VolumeID{"pvc-shop-sales", "pvc-shop-stock"} {
		if err := a.DeleteVolumeSnapshots(id); err != nil {
			t.Fatal(err)
		}
		if err := a.DeleteVolume(id); err != nil {
			t.Fatal(err)
		}
	}
	if res := a.Residue("pvc-shop-"); len(res) != 0 {
		t.Fatalf("residue after teardown: %v", res)
	}
	if res := a.Residue("jnl-backup-shop-"); len(res) != 0 {
		t.Fatalf("journal residue after teardown: %v", res)
	}
	want := Usage{Volumes: 1}
	if got := a.Usage(); got != want {
		t.Fatalf("usage after teardown = %+v, want %+v", got, want)
	}
}

// TestDeleteVolumeSnapshotsShrinksGroups pins the group bookkeeping: a
// per-volume snapshot deletion removes the member from its group and drops
// the group when the last member goes.
func TestDeleteVolumeSnapshotsShrinksGroups(t *testing.T) {
	_, a := newTestArray(t)
	for _, id := range []VolumeID{"va", "vb"} {
		if _, err := a.CreateVolume(id, 16); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.CreateSnapshotGroup("g", []VolumeID{"va", "vb"}); err != nil {
		t.Fatal(err)
	}
	if err := a.DeleteVolumeSnapshots("va"); err != nil {
		t.Fatal(err)
	}
	g, err := a.SnapshotGroupByName("g")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Snapshots()) != 1 {
		t.Fatalf("group members = %d, want 1", len(g.Snapshots()))
	}
	if err := a.DeleteVolumeSnapshots("vb"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.SnapshotGroupByName("g"); err == nil {
		t.Fatal("empty snapshot group survived")
	}
	if u := a.Usage(); u.Snapshots != 0 || u.SnapshotGroups != 0 {
		t.Fatalf("usage after deletes = %+v", u)
	}
}
