// Package storage models an enterprise external storage array of the kind
// the paper demonstrates on (Hitachi VSP G370): block volumes behind a
// controller, journal volumes feeding asynchronous replication, consistency
// groups that share one journal across volumes, and copy-on-write snapshots
// with group-atomic snapshot creation.
//
// The properties the paper's claims rest on are modelled exactly:
//
//   - every write is acknowledged in a global order (the "order of acks");
//   - a journal records writes in ack order, per journal;
//   - a consistency group shares one journal across many volumes, so the
//     backup site can replay the exact cross-volume order;
//   - snapshot groups capture all member volumes at a single instant.
package storage

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// Common management-API errors.
var (
	ErrNoSuchVolume    = errors.New("storage: no such volume")
	ErrVolumeExists    = errors.New("storage: volume already exists")
	ErrNoSuchJournal   = errors.New("storage: no such journal")
	ErrJournalExists   = errors.New("storage: journal already exists")
	ErrJournalAttached = errors.New("storage: volume already attached to a journal")
	ErrNoSuchSnapshot  = errors.New("storage: no such snapshot")
	ErrSnapshotExists  = errors.New("storage: snapshot already exists")
	ErrOutOfRange      = errors.New("storage: block index out of range")
	ErrBadBlockSize    = errors.New("storage: data length must equal the block size")
	ErrReadOnly        = errors.New("storage: volume is read-only")
)

// VolumeID names a volume within one array.
type VolumeID string

// Config holds array service-time parameters. Zero values take defaults.
type Config struct {
	// BlockSize is the bytes per block (default 4096).
	BlockSize int
	// WriteLatency is the media service time per block write (default 200µs).
	WriteLatency time.Duration
	// ReadLatency is the media service time per block read (default 100µs).
	ReadLatency time.Duration
	// JournalLatency is the extra cost of appending a record to a journal
	// volume; arrays stage journal writes in battery-backed cache, so this
	// is small (default 20µs).
	JournalLatency time.Duration
	// Parallelism is the controller's concurrent operation limit (default 8).
	Parallelism int
	// IsolatedVolumes gives every volume its own single-slot service queue
	// instead of funnelling all I/O through the shared controller resource,
	// and scopes write-ack numbering to the volume's consistency group (its
	// journal — group-wide for a sharded journal — or the volume itself when
	// unjournaled). Within a group, ack order is still total — which is all
	// consistency-group replication relies on — but GlobalSeq values are not
	// comparable ACROSS groups in this mode. The fleet experiments enable it
	// so per-tenant I/O shares no mutable array state with other tenants,
	// which is what lets sim.RunParallel execute tenants concurrently.
	// Management-plane paths (ApplyDeltaSet, snapshots) keep using the shared
	// controller.
	IsolatedVolumes bool
}

func (c Config) withDefaults() Config {
	if c.BlockSize <= 0 {
		c.BlockSize = 4096
	}
	if c.WriteLatency <= 0 {
		c.WriteLatency = 200 * time.Microsecond
	}
	if c.ReadLatency <= 0 {
		c.ReadLatency = 100 * time.Microsecond
	}
	if c.JournalLatency <= 0 {
		c.JournalLatency = 20 * time.Microsecond
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 8
	}
	return c
}

// Array is one storage system (one site has exactly one).
type Array struct {
	env        *sim.Env
	name       string
	cfg        Config
	controller *sim.Resource
	volumes    map[VolumeID]*Volume
	journals   map[string]*Journal
	sharded    map[string]*ShardedJournal
	snapshots  map[string]*Snapshot
	groups     map[string]*SnapshotGroup
	globalSeq  int64 // global ack counter across all volumes

	// Stats. Atomic because isolated-volume writes may execute inside
	// parallel scheduler rounds (concurrent tenant steps).
	writeOps, readOps atomic.Int64
	bytesWritten      atomic.Int64
}

// NewArray returns an empty array attached to the simulation environment.
func NewArray(env *sim.Env, name string, cfg Config) *Array {
	cfg = cfg.withDefaults()
	return &Array{
		env:        env,
		name:       name,
		cfg:        cfg,
		controller: env.NewResource(cfg.Parallelism),
		volumes:    make(map[VolumeID]*Volume),
		journals:   make(map[string]*Journal),
		sharded:    make(map[string]*ShardedJournal),
		snapshots:  make(map[string]*Snapshot),
		groups:     make(map[string]*SnapshotGroup),
	}
}

// Name returns the array name.
func (a *Array) Name() string { return a.name }

// Config returns the effective (defaulted) configuration.
func (a *Array) Config() Config { return a.cfg }

// Env returns the simulation environment the array runs in.
func (a *Array) Env() *sim.Env { return a.env }

// CreateVolume provisions a volume of sizeBlocks blocks.
func (a *Array) CreateVolume(id VolumeID, sizeBlocks int64) (*Volume, error) {
	if _, ok := a.volumes[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrVolumeExists, id)
	}
	if sizeBlocks <= 0 {
		return nil, fmt.Errorf("storage: volume %s: size must be positive", id)
	}
	v := &Volume{
		id:         id,
		array:      a,
		sizeBlocks: sizeBlocks,
		blocks:     make(map[int64][]byte),
	}
	if a.cfg.IsolatedVolumes {
		v.queue = a.env.NewResource(1)
	}
	a.volumes[id] = v
	return v, nil
}

// DeleteVolume removes a volume. It fails while the volume is attached to a
// journal or has snapshots, mirroring real array guardrails.
func (a *Array) DeleteVolume(id VolumeID) error {
	v, ok := a.volumes[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchVolume, id)
	}
	if v.journal != nil {
		return fmt.Errorf("storage: volume %s is attached to journal %s", id, v.journal.id)
	}
	if len(v.snapshots) > 0 {
		return fmt.Errorf("storage: volume %s has %d snapshots", id, len(v.snapshots))
	}
	delete(a.volumes, id)
	return nil
}

// Volume returns the volume with the given ID.
func (a *Array) Volume(id VolumeID) (*Volume, error) {
	v, ok := a.volumes[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchVolume, id)
	}
	return v, nil
}

// ListVolumes returns all volume IDs in lexical order.
func (a *Array) ListVolumes() []VolumeID {
	ids := make([]VolumeID, 0, len(a.volumes))
	for id := range a.volumes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// CreateJournal provisions an unbounded journal volume. Replication
// engines drain it.
func (a *Array) CreateJournal(id string) (*Journal, error) {
	return a.CreateJournalSized(id, 0)
}

// CreateJournalSized provisions a journal volume with a finite capacity in
// bytes (0 = unlimited). When the backlog would exceed the capacity the
// journal overflows and the pair suspends — the real-array behaviour an
// undersized journal volume causes under link outages.
func (a *Array) CreateJournalSized(id string, capacityBytes int) (*Journal, error) {
	if _, ok := a.journals[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrJournalExists, id)
	}
	j := newJournal(a.env, a, id, capacityBytes)
	a.journals[id] = j
	return j, nil
}

// Journal returns the journal with the given ID.
func (a *Array) Journal(id string) (*Journal, error) {
	j, ok := a.journals[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchJournal, id)
	}
	return j, nil
}

// DeleteJournal removes a journal after detaching all member volumes.
func (a *Array) DeleteJournal(id string) error {
	j, ok := a.journals[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchJournal, id)
	}
	for _, v := range a.volumes {
		if v.journal == j {
			v.journal = nil
		}
	}
	delete(a.journals, id)
	return nil
}

// AttachJournal routes a volume's future writes into the journal. Attaching
// several volumes to one journal is exactly the array's consistency-group
// function: the shared journal serializes their writes in ack order.
func (a *Array) AttachJournal(vol VolumeID, journalID string) error {
	v, ok := a.volumes[vol]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchVolume, vol)
	}
	j, ok := a.journals[journalID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchJournal, journalID)
	}
	if v.journal != nil {
		return fmt.Errorf("%w: %s -> %s", ErrJournalAttached, vol, v.journal.id)
	}
	v.journal = j
	j.members = append(j.members, vol)
	return nil
}

// DetachJournal removes a volume from its journal.
func (a *Array) DetachJournal(vol VolumeID) error {
	v, ok := a.volumes[vol]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchVolume, vol)
	}
	if v.journal == nil {
		return nil
	}
	j := v.journal
	for i, m := range j.members {
		if m == vol {
			j.members = append(j.members[:i], j.members[i+1:]...)
			break
		}
	}
	v.journal = nil
	return nil
}

// CreateConsistencyGroup is the convenience management call the replication
// plugin uses: it provisions one journal and attaches every listed volume.
func (a *Array) CreateConsistencyGroup(journalID string, vols []VolumeID) (*Journal, error) {
	j, err := a.CreateJournal(journalID)
	if err != nil {
		return nil, err
	}
	for _, id := range vols {
		if err := a.AttachJournal(id, journalID); err != nil {
			// Roll back so a failed call leaves no partial group.
			for _, done := range vols {
				if done == id {
					break
				}
				_ = a.DetachJournal(done)
			}
			delete(a.journals, journalID)
			return nil, err
		}
	}
	return j, nil
}

// ApplyDeltaSet consumes the service time of applying an n-block
// replication delta set: the blocks pipeline across the controller's
// parallelism, and one controller slot is held for the span so concurrent
// work on this array observes the load. The caller installs the blocks
// afterwards (atomically, via Volume.InstallDelta) — see the sharded
// replication engine's epoch commit.
func (a *Array) ApplyDeltaSet(p *sim.Proc, n int) {
	if n <= 0 {
		return
	}
	a.controller.Acquire(p)
	d := time.Duration(n) * a.cfg.WriteLatency / time.Duration(a.cfg.Parallelism)
	if d < a.cfg.WriteLatency {
		d = a.cfg.WriteLatency
	}
	p.Sleep(d)
	a.controller.Release()
}

// nextGlobalSeq stamps one write ack in the array-wide order.
func (a *Array) nextGlobalSeq() int64 {
	a.globalSeq++
	return a.globalSeq
}

// Usage summarizes the array's allocated state — the free-list invariant
// tenant decommissioning is checked against: after a tenant is provisioned
// and fully decommissioned, every counter returns to its prior value (no
// leaked volumes, journals, shards, snapshots, or blocks).
type Usage struct {
	Volumes         int
	Journals        int // includes each sharded journal's member shards
	ShardedJournals int
	Snapshots       int
	SnapshotGroups  int
	AttachedVolumes int   // volumes currently routed into a journal
	StoredBlocks    int64 // blocks holding data across all volumes
	PendingRecords  int   // undrained journal records across all journals
	SavedBlocks     int64 // COW blocks preserved across all snapshots
}

// Usage returns the current allocation snapshot.
func (a *Array) Usage() Usage {
	var u Usage
	u.Volumes = len(a.volumes)
	u.Journals = len(a.journals)
	u.ShardedJournals = len(a.sharded)
	u.Snapshots = len(a.snapshots)
	u.SnapshotGroups = len(a.groups)
	for _, v := range a.volumes {
		if v.journal != nil {
			u.AttachedVolumes++
		}
		u.StoredBlocks += int64(len(v.blocks))
	}
	for _, j := range a.journals {
		u.PendingRecords += j.Pending()
	}
	for _, s := range a.snapshots {
		u.SavedBlocks += int64(len(s.saved))
	}
	return u
}

// Residue lists every array object still tied to the given ID prefix: a
// volume whose ID starts with it, a journal (plain or sharded) named with
// it or still carrying a matching member, a snapshot of a matching volume,
// or a snapshot group with a matching member. A fully decommissioned
// tenant's prefixes must report nothing — the array-level leak check.
func (a *Array) Residue(prefix string) []string {
	var out []string
	for id := range a.volumes {
		if strings.HasPrefix(string(id), prefix) {
			out = append(out, "volume "+string(id))
		}
	}
	for id, j := range a.journals {
		if strings.HasPrefix(id, prefix) {
			out = append(out, "journal "+id)
			continue
		}
		for _, m := range j.members {
			if strings.HasPrefix(string(m), prefix) {
				out = append(out, fmt.Sprintf("journal %s member %s", id, m))
				break
			}
		}
	}
	for id, sj := range a.sharded {
		if strings.HasPrefix(id, prefix) {
			out = append(out, "sharded journal "+id)
			continue
		}
		for _, m := range sj.members {
			if strings.HasPrefix(string(m), prefix) {
				out = append(out, fmt.Sprintf("sharded journal %s member %s", id, m))
				break
			}
		}
	}
	for id, s := range a.snapshots {
		if strings.HasPrefix(string(s.parent.id), prefix) {
			out = append(out, fmt.Sprintf("snapshot %s of %s", id, s.parent.id))
		}
	}
	for name, g := range a.groups {
		for _, s := range g.snaps {
			if strings.HasPrefix(string(s.parent.id), prefix) {
				out = append(out, fmt.Sprintf("snapshot group %s member of %s", name, s.parent.id))
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// WriteOps returns the total number of block writes served.
func (a *Array) WriteOps() int64 { return a.writeOps.Load() }

// ReadOps returns the total number of block reads served.
func (a *Array) ReadOps() int64 { return a.readOps.Load() }

// BytesWritten returns the total bytes written to volumes.
func (a *Array) BytesWritten() int64 { return a.bytesWritten.Load() }

func (a *Array) String() string {
	return fmt.Sprintf("Array(%s){vols=%d journals=%d snaps=%d}", a.name, len(a.volumes), len(a.journals), len(a.snapshots))
}
