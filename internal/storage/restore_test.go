package storage

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestRestoreSnapshotRewindsDamage(t *testing.T) {
	env, a := newTestArray(t)
	v, _ := a.CreateVolume("v", 16)
	env.Process("setup", func(p *sim.Proc) {
		v.Write(p, 0, block(a, 0x01))
		v.Write(p, 1, block(a, 0x02))
	})
	env.Run(0)
	if _, err := a.CreateSnapshot("good", "v"); err != nil {
		t.Fatal(err)
	}
	env.Process("attack", func(p *sim.Proc) {
		v.Write(p, 0, block(a, 0xEE)) // "encrypted" by the attacker
		v.Write(p, 2, block(a, 0xEE)) // new damage on a fresh block
	})
	env.Run(0)
	env.Process("restore", func(p *sim.Proc) {
		if err := a.RestoreSnapshot(p, "good"); err != nil {
			t.Error(err)
		}
	})
	env.Run(0)
	if v.Peek(0)[0] != 0x01 || v.Peek(1)[0] != 0x02 {
		t.Fatal("restore did not rewind overwritten blocks")
	}
	if v.Peek(2)[0] != 0x00 {
		t.Fatal("restore did not erase post-snapshot block")
	}
}

func TestRestoreRefusesJournalAttachedVolume(t *testing.T) {
	env, a := newTestArray(t)
	a.CreateVolume("v", 8)
	a.CreateSnapshot("s", "v")
	a.CreateJournal("j")
	a.AttachJournal("v", "j")
	var err error
	env.Process("restore", func(p *sim.Proc) { err = a.RestoreSnapshot(p, "s") })
	env.Run(0)
	if err == nil {
		t.Fatal("restore allowed on replication source")
	}
}

func TestRestoreMissingSnapshot(t *testing.T) {
	env, a := newTestArray(t)
	var err error
	env.Process("restore", func(p *sim.Proc) { err = a.RestoreSnapshot(p, "ghost") })
	env.Run(0)
	if err == nil {
		t.Fatal("restore of missing snapshot succeeded")
	}
}

func TestRestoreConsumesTimeProportionalToDamage(t *testing.T) {
	env, a := newTestArray(t)
	v, _ := a.CreateVolume("v", 64)
	a.CreateSnapshot("s", "v")
	env.Process("damage", func(p *sim.Proc) {
		for i := int64(0); i < 10; i++ {
			v.Write(p, i, block(a, 0xFF))
		}
	})
	env.Run(0)
	before := env.Now()
	env.Process("restore", func(p *sim.Proc) { a.RestoreSnapshot(p, "s") })
	env.Run(0)
	took := env.Now() - before
	if want := 10 * a.Config().WriteLatency; took != want {
		t.Fatalf("restore took %v, want %v (10 damaged blocks)", took, want)
	}
}

func TestRestoreKeepsOtherSnapshotsCorrect(t *testing.T) {
	env, a := newTestArray(t)
	v, _ := a.CreateVolume("v", 8)
	env.Process("w", func(p *sim.Proc) { v.Write(p, 0, block(a, 0x01)) })
	env.Run(0)
	a.CreateSnapshot("old", "v")
	env.Process("w", func(p *sim.Proc) { v.Write(p, 0, block(a, 0x02)) })
	env.Run(0)
	// A later snapshot captures the damaged state.
	a.CreateSnapshot("damaged", "v")
	env.Process("restore", func(p *sim.Proc) {
		if err := a.RestoreSnapshot(p, "old"); err != nil {
			t.Error(err)
		}
	})
	env.Run(0)
	dmg, _ := a.Snapshot("damaged")
	if dmg.Peek(0)[0] != 0x02 {
		t.Fatal("restore corrupted the later snapshot's image")
	}
	if v.Peek(0)[0] != 0x01 {
		t.Fatal("restore wrong")
	}
}

func TestCloneVolumeMatchesSnapshotImage(t *testing.T) {
	env, a := newTestArray(t)
	v, _ := a.CreateVolume("v", 16)
	env.Process("w", func(p *sim.Proc) {
		v.Write(p, 0, block(a, 0x0A))
		v.Write(p, 5, block(a, 0x0B))
	})
	env.Run(0)
	a.CreateSnapshot("s", "v")
	env.Process("w", func(p *sim.Proc) { v.Write(p, 0, block(a, 0xFF)) })
	env.Run(0)
	var clone *Volume
	env.Process("clone", func(p *sim.Proc) {
		var err error
		clone, err = a.CloneVolume(p, "s", "v-clone")
		if err != nil {
			t.Error(err)
		}
	})
	env.Run(0)
	if clone.Peek(0)[0] != 0x0A || clone.Peek(5)[0] != 0x0B {
		t.Fatal("clone missing snapshot content")
	}
	// Clone is independent of the parent.
	env.Process("w", func(p *sim.Proc) { clone.Write(p, 1, block(a, 0x77)) })
	env.Run(0)
	if v.Peek(1)[0] != 0 {
		t.Fatal("clone writes leaked to parent")
	}
}

func TestCloneValidation(t *testing.T) {
	env, a := newTestArray(t)
	a.CreateVolume("v", 8)
	a.CreateSnapshot("s", "v")
	env.Process("t", func(p *sim.Proc) {
		if _, err := a.CloneVolume(p, "ghost", "c"); err == nil {
			t.Error("clone of missing snapshot succeeded")
		}
		if _, err := a.CloneVolume(p, "s", "v"); err == nil {
			t.Error("clone onto existing volume succeeded")
		}
	})
	env.Run(0)
}

// TestSnapshotPropertyFrozenImage is the core COW invariant: under any
// random sequence of writes, snapshots, and restores, every live snapshot
// always reads exactly the parent content at its creation instant.
func TestSnapshotPropertyFrozenImage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := sim.NewEnv(seed)
		a := NewArray(env, "a", Config{})
		const nBlocks = 16
		v, _ := a.CreateVolume("v", nBlocks)

		// model: the volume's logical content and each snapshot's frozen copy.
		model := make([][]byte, nBlocks)
		type frozen struct {
			id    string
			image [][]byte
		}
		var snaps []frozen
		copyModel := func() [][]byte {
			out := make([][]byte, nBlocks)
			for i, b := range model {
				if b != nil {
					out[i] = append([]byte(nil), b...)
				}
			}
			return out
		}

		ok := true
		env.Process("ops", func(p *sim.Proc) {
			for step := 0; step < 60; step++ {
				switch op := rng.Intn(10); {
				case op < 6: // write
					b := int64(rng.Intn(nBlocks))
					data := block(a, byte(rng.Intn(256)))
					if _, err := v.Write(p, b, data); err != nil {
						ok = false
						return
					}
					model[b] = append([]byte(nil), data...)
				case op < 8: // snapshot
					id := string(rune('A' + len(snaps)))
					if _, err := a.CreateSnapshot(id, "v"); err != nil {
						ok = false
						return
					}
					snaps = append(snaps, frozen{id: id, image: copyModel()})
				default: // verify all snapshots against their frozen model
					for _, s := range snaps {
						snap, err := a.Snapshot(s.id)
						if err != nil {
							ok = false
							return
						}
						for b := int64(0); b < nBlocks; b++ {
							want := s.image[b]
							if want == nil {
								want = make([]byte, a.Config().BlockSize)
							}
							if !bytes.Equal(snap.Peek(b), want) {
								ok = false
								return
							}
						}
					}
				}
			}
		})
		env.Run(0)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
