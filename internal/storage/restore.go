package storage

import (
	"fmt"

	"repro/internal/sim"
)

// RestoreSnapshot rolls a volume back to a snapshot's point-in-time image —
// the array-side recovery the paper's §I motivates for cyber-attacks and
// misoperations: mount yesterday's snapshot group, discard today's damage.
// The volume must not be attached to a journal (detach before rewinding a
// replication source, or the rewind itself would replicate as new writes).
// The restore consumes media time proportional to the blocks that changed
// since the snapshot.
func (a *Array) RestoreSnapshot(p *sim.Proc, snapID string) error {
	s, ok := a.snapshots[snapID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchSnapshot, snapID)
	}
	v := s.parent
	if v.journal != nil {
		return fmt.Errorf("storage: restore %s: volume %s is journal-attached; detach first", snapID, v.id)
	}
	// Only blocks preserved by COW differ from the snapshot image; rewind
	// exactly those. Other snapshots of the volume observe the rewind as
	// ordinary overwrites (their COW fires), so they stay correct.
	blocks := make([]int64, 0, len(s.saved))
	for b := range s.saved {
		blocks = append(blocks, b)
	}
	sortBlocks(blocks)
	for _, b := range blocks {
		a.controller.Acquire(p)
		p.Sleep(a.cfg.WriteLatency)
		a.controller.Release()
		orig := s.saved[b]
		v.preserveForSnapshots(b)
		if orig == nil {
			delete(v.blocks, b) // block was unwritten at snapshot time
		} else {
			buf := make([]byte, len(orig))
			copy(buf, orig)
			v.blocks[b] = buf
		}
		v.writes++
		a.writeOps.Add(1)
	}
	// The snapshot now matches the parent again; its COW set resets.
	s.saved = make(map[int64][]byte)
	return nil
}

// CloneVolume provisions a new volume containing a snapshot's image — the
// "development from snapshot" pattern (mount backup data for test systems).
// The clone is a full copy and consumes media time per copied block.
func (a *Array) CloneVolume(p *sim.Proc, snapID string, newID VolumeID) (*Volume, error) {
	s, ok := a.snapshots[snapID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchSnapshot, snapID)
	}
	clone, err := a.CreateVolume(newID, s.parent.sizeBlocks)
	if err != nil {
		return nil, err
	}
	// The snapshot image = preserved originals overlaid on parent blocks
	// that were never overwritten.
	seen := make(map[int64]bool)
	write := func(b int64, data []byte) {
		a.controller.Acquire(p)
		p.Sleep(a.cfg.WriteLatency)
		a.controller.Release()
		buf := make([]byte, len(data))
		copy(buf, data)
		clone.blocks[b] = buf
		clone.writes++
		a.writeOps.Add(1)
		a.bytesWritten.Add(int64(len(data)))
	}
	for b, orig := range s.saved {
		seen[b] = true
		if orig != nil {
			write(b, orig)
		}
	}
	for b, cur := range s.parent.blocks {
		if !seen[b] {
			write(b, cur)
		}
	}
	return clone, nil
}

func sortBlocks(s []int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
