package storage

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Record is one update log entry in a journal volume: which block of which
// volume was written, the data, and where the write fell in the journal's
// ack order (Seq) and the array-wide ack order (GlobalSeq). Records written
// through a sharded consistency-group journal additionally carry the group
// Epoch open at ack time — the cross-shard ordering barrier the multi-lane
// drain commits on. Plain journals leave Epoch zero.
type Record struct {
	Seq       int64
	GlobalSeq int64
	Epoch     int64
	Volume    VolumeID
	Block     int64
	Data      []byte
	AckedAt   time.Duration // main-site ack time, used for RPO measurement
}

// SizeBytes returns the wire size of the record: payload plus a fixed
// header, used by the replication engine to charge link bandwidth.
func (r Record) SizeBytes() int { return len(r.Data) + recordHeaderBytes }

const recordHeaderBytes = 64

// Journal is an update-log volume. Volumes attached to the same journal form
// a consistency group: the journal's Seq numbers define one total order over
// all their writes, and the backup site applies records strictly in that
// order.
type Journal struct {
	env      *sim.Env
	array    *Array
	id       string
	members  []VolumeID
	pending  []Record
	nextSeq  int64
	ackSeq   int64 // scoped ack order (isolated mode, ungrouped journals)
	appended int64
	drained  int64
	notEmpty *sim.Event

	// capacityBytes bounds the backlog (0 = unlimited). When an append
	// would exceed it, the journal overflows: the pair suspends (writes
	// stop journaling), the member volumes start change tracking, and the
	// target stays frozen at a consistent prefix until a resync.
	capacityBytes int
	overflowed    bool
	overflows     int64

	// group is non-nil when this journal is one shard of a sharded
	// consistency-group journal: appends are stamped with the group epoch,
	// and an overflow fails the whole group closed, not just this shard.
	group *ShardedJournal
}

func newJournal(env *sim.Env, a *Array, id string, capacityBytes int) *Journal {
	return &Journal{env: env, array: a, id: id, capacityBytes: capacityBytes, notEmpty: env.NewEvent()}
}

// ID returns the journal identifier.
func (j *Journal) ID() string { return j.id }

// Members returns the volume IDs attached to the journal (the consistency
// group membership), in attach order.
func (j *Journal) Members() []VolumeID {
	out := make([]VolumeID, len(j.members))
	copy(out, j.members)
	return out
}

// Overflowed reports whether the journal has overflowed (pair suspended).
func (j *Journal) Overflowed() bool { return j.overflowed }

// Overflows returns how many times the journal has overflowed.
func (j *Journal) Overflows() int64 { return j.overflows }

// CapacityBytes returns the configured capacity (0 = unlimited).
func (j *Journal) CapacityBytes() int { return j.capacityBytes }

// SetCapacityBytes re-declares the journal capacity at runtime (0 =
// unlimited) — the management-API knob a capacity squeeze turns. If the
// pending backlog already exceeds the new bound the journal overflows
// immediately: capacity is a promise about the backlog, so shrinking it
// under an oversized backlog must fail closed rather than leave a journal
// silently over its declared bound.
func (j *Journal) SetCapacityBytes(n int) {
	j.capacityBytes = n
	if n > 0 && !j.overflowed && j.PendingBytes() > n {
		j.overflow()
	}
}

// ClearOverflow re-enables journaling after a resync has reconciled the
// target. The replication engine calls it; see replication.Group.Resync.
func (j *Journal) ClearOverflow() {
	j.overflowed = false
	for _, id := range j.members {
		if v, ok := j.array.volumes[id]; ok {
			v.StopChangeTracking()
		}
	}
}

// overflow suspends the pair: journaling stops and member volumes begin
// change tracking so a later resync can copy exactly the delta. A shard of a
// sharded group escalates to the whole group — a partially-journaling group
// could not replay a consistent cross-shard cut, so it fails closed.
func (j *Journal) overflow() {
	if j.group != nil {
		j.group.overflow()
		return
	}
	j.overflowLocal()
}

func (j *Journal) overflowLocal() {
	j.overflowed = true
	j.overflows++
	for _, id := range j.members {
		if v, ok := j.array.volumes[id]; ok {
			v.StartChangeTracking()
		}
	}
}

// append adds a record in ack order and returns its sequence number. The
// not-empty wakeup is attributed to the acking process p (when given) so a
// drain blocked on NotEmpty resumes in the right slot of the (at, seq)
// order even when the append ran inside a parallel scheduler round.
func (j *Journal) append(p *sim.Proc, vol VolumeID, block int64, data []byte, globalSeq int64, now time.Duration) int64 {
	j.nextSeq++
	var epoch int64
	if j.group != nil {
		epoch = j.group.epoch
	}
	j.pending = append(j.pending, Record{
		Seq:       j.nextSeq,
		GlobalSeq: globalSeq,
		Epoch:     epoch,
		Volume:    vol,
		Block:     block,
		Data:      data,
		AckedAt:   now,
	})
	j.appended++
	if p != nil {
		p.Trigger(j.notEmpty)
	} else {
		j.notEmpty.Trigger()
	}
	return j.nextSeq
}

// nextAckSeq stamps one member write in the journal's scoped ack order
// (Config.IsolatedVolumes): group-wide for a shard of a sharded journal —
// cross-shard merges rely on one ascending order per group — else local to
// this journal.
func (j *Journal) nextAckSeq() int64 {
	if j.group != nil {
		j.group.ackSeq++
		return j.group.ackSeq
	}
	j.ackSeq++
	return j.ackSeq
}

// Pending returns the number of records awaiting drain (the backlog).
func (j *Journal) Pending() int { return len(j.pending) }

// PendingBytes returns the wire size of the backlog.
func (j *Journal) PendingBytes() int {
	var n int
	for _, r := range j.pending {
		n += r.SizeBytes()
	}
	return n
}

// OldestPendingAck returns the ack time of the oldest undrained record and
// whether one exists; the replication engine derives RPO from it.
func (j *Journal) OldestPendingAck() (time.Duration, bool) {
	if len(j.pending) == 0 {
		return 0, false
	}
	return j.pending[0].AckedAt, true
}

// OldestPendingEpoch returns the epoch of the oldest undrained record and
// whether one exists. Epochs in a journal are non-decreasing, so the
// multi-lane drain reads this as "every record of epochs < e is drained".
func (j *Journal) OldestPendingEpoch() (int64, bool) {
	if len(j.pending) == 0 {
		return 0, false
	}
	return j.pending[0].Epoch, true
}

// PendingRecords returns a copy of the undrained records in sequence
// order. Failback reads them to learn which source blocks diverged (they
// carry updates the backup never received).
func (j *Journal) PendingRecords() []Record {
	out := make([]Record, len(j.pending))
	copy(out, j.pending)
	return out
}

// Appended returns the lifetime count of records written to the journal.
func (j *Journal) Appended() int64 { return j.appended }

// Drained returns the lifetime count of records taken by Take.
func (j *Journal) Drained() int64 { return j.drained }

// NotEmpty returns an event that triggers when the journal next becomes
// non-empty (or immediately if it already is). Replication drains use it
// together with sim.Proc.WaitAny to block on "records or stop".
func (j *Journal) NotEmpty() *sim.Event {
	if len(j.pending) > 0 {
		if !j.notEmpty.Triggered() {
			j.notEmpty.Trigger()
		}
		return j.notEmpty
	}
	if j.notEmpty.Triggered() {
		j.notEmpty = j.env.NewEvent()
	}
	return j.notEmpty
}

// TryTake removes and returns up to max pending records without blocking;
// it returns nil when the journal is empty.
func (j *Journal) TryTake(max int) []Record {
	if len(j.pending) == 0 {
		return nil
	}
	return j.takeReady(max)
}

// TryTakeInto is TryTake reusing buf's backing storage for the returned
// batch. The replication drain calls it in a loop with one scratch buffer
// so steady-state draining allocates nothing; callers must be done with the
// previous batch before taking the next one into the same buffer.
func (j *Journal) TryTakeInto(buf []Record, max int) []Record {
	if len(j.pending) == 0 {
		return nil
	}
	return j.takeReadyInto(buf[:0], max)
}

// Take removes and returns up to max pending records in sequence order,
// blocking the process until at least one record is available.
func (j *Journal) Take(p *sim.Proc, max int) []Record {
	for len(j.pending) == 0 {
		if j.notEmpty.Triggered() {
			j.notEmpty = j.env.NewEvent()
		}
		p.Wait(j.notEmpty)
	}
	return j.takeReady(max)
}

// TakeTimeout is Take with a deadline; it returns nil when the timeout
// expires with the journal still empty.
func (j *Journal) TakeTimeout(p *sim.Proc, max int, d time.Duration) []Record {
	deadline := p.Now() + d
	for len(j.pending) == 0 {
		remain := deadline - p.Now()
		if remain <= 0 {
			return nil
		}
		if j.notEmpty.Triggered() {
			j.notEmpty = j.env.NewEvent()
		}
		if !p.WaitTimeout(j.notEmpty, remain) && len(j.pending) == 0 {
			return nil
		}
	}
	return j.takeReady(max)
}

func (j *Journal) takeReady(max int) []Record { return j.takeReadyInto(nil, max) }

// pendingBytesOf returns the wire size of one volume's share of the
// backlog (the reshard capacity check sums these per destination shard).
func (j *Journal) pendingBytesOf(vol VolumeID) int {
	var n int
	for _, r := range j.pending {
		if r.Volume == vol {
			n += r.SizeBytes()
		}
	}
	return n
}

// takeVolume extracts every pending record of one volume, preserving the
// relative order of both the extracted and the remaining records. The
// sharded-journal reshard uses it to migrate a re-placed volume's backlog
// onto its new shard; counters are untouched (the records were appended
// once and will still be drained once, just elsewhere).
func (j *Journal) takeVolume(vol VolumeID) []Record {
	var out []Record
	kept := j.pending[:0]
	for _, r := range j.pending {
		if r.Volume == vol {
			out = append(out, r)
		} else {
			kept = append(kept, r)
		}
	}
	for i := len(kept); i < len(j.pending); i++ {
		j.pending[i] = Record{}
	}
	j.pending = kept
	return out
}

// mergeIn splices records into the pending backlog by GlobalSeq — the
// array-wide ack order. Both the backlog and recs are GlobalSeq-ascending
// (append order is ack order), so the merge keeps the result ascending,
// which in turn keeps epochs non-decreasing: the invariant
// OldestPendingEpoch readers (the multi-lane drain's barrier math) rely on.
func (j *Journal) mergeIn(recs []Record) {
	if len(recs) == 0 {
		return
	}
	merged := make([]Record, 0, len(j.pending)+len(recs))
	a, b := j.pending, recs
	for len(a) > 0 && len(b) > 0 {
		if a[0].GlobalSeq <= b[0].GlobalSeq {
			merged = append(merged, a[0])
			a = a[1:]
		} else {
			merged = append(merged, b[0])
			b = b[1:]
		}
	}
	merged = append(merged, a...)
	merged = append(merged, b...)
	j.pending = merged
	j.notEmpty.Trigger()
}

func (j *Journal) takeReadyInto(buf []Record, max int) []Record {
	if max <= 0 || max > len(j.pending) {
		max = len(j.pending)
	}
	buf = append(buf, j.pending[:max]...)
	rest := len(j.pending) - max
	copy(j.pending, j.pending[max:])
	for i := rest; i < len(j.pending); i++ {
		j.pending[i] = Record{}
	}
	j.pending = j.pending[:rest]
	j.drained += int64(max)
	return buf
}

func (j *Journal) String() string {
	return fmt.Sprintf("Journal(%s){members=%d pending=%d}", j.id, len(j.members), len(j.pending))
}
