package storage

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// reshardWrite pushes n writes round-robin across the group's members so
// every shard accumulates backlog, returning the per-volume write counts.
func reshardWrite(t *testing.T, env *sim.Env, a *Array, sj *ShardedJournal, n int) map[VolumeID]int {
	t.Helper()
	counts := make(map[VolumeID]int)
	members := sj.Members()
	env.Process("writer", func(p *sim.Proc) {
		buf := make([]byte, a.Config().BlockSize)
		for i := 0; i < n; i++ {
			id := members[i%len(members)]
			v, err := a.Volume(id)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := v.Write(p, int64(counts[id]), buf); err != nil {
				t.Error(err)
				return
			}
			counts[id]++
		}
	})
	env.Run(0)
	return counts
}

// checkShardInvariants verifies, for every shard, that the backlog is
// GlobalSeq-ascending (ack order) and epoch-monotone, and that every record
// sits on the shard its volume is currently placed on.
func checkShardInvariants(t *testing.T, sj *ShardedJournal) {
	t.Helper()
	for k, shard := range sj.shards {
		var lastSeq, lastEpoch int64
		for _, r := range shard.PendingRecords() {
			if r.GlobalSeq <= lastSeq {
				t.Fatalf("shard %d backlog not GlobalSeq-ascending (%d after %d)", k, r.GlobalSeq, lastSeq)
			}
			if r.Epoch < lastEpoch {
				t.Fatalf("shard %d backlog epoch regressed (%d after %d)", k, r.Epoch, lastEpoch)
			}
			lastSeq, lastEpoch = r.GlobalSeq, r.Epoch
			if sj.byVol[r.Volume] != k {
				t.Fatalf("shard %d holds record of %s, placed on shard %d", k, r.Volume, sj.byVol[r.Volume])
			}
		}
	}
}

func TestReshardGrowMigratesOnlyChangedPlacements(t *testing.T) {
	env, a, sj := shardedFixture(t, 1, 16, 0)
	reshardWrite(t, env, a, sj, 64)
	preEpoch := sj.Epoch()
	prePending := sj.Pending()

	stats, err := sj.Reshard(4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.From != 1 || stats.To != 4 || stats.BarrierEpoch != preEpoch {
		t.Fatalf("stats = %+v, want 1->4 with barrier %d", stats, preEpoch)
	}
	if sj.Epoch() != preEpoch+1 {
		t.Fatalf("open epoch = %d, want %d (barrier sealed)", sj.Epoch(), preEpoch+1)
	}
	// Placement must equal the stable hash over the new count, and only
	// volumes whose assignment changed may have moved.
	wantMoved := 0
	for _, v := range sj.Members() {
		if got, want := sj.ShardIndexOf(v), ShardFor(v, 4); got != want {
			t.Fatalf("%s on shard %d, want %d", v, got, want)
		}
		if ShardFor(v, 4) != 0 {
			wantMoved++
		}
	}
	if stats.MovedVolumes != wantMoved {
		t.Fatalf("moved %d volumes, want %d", stats.MovedVolumes, wantMoved)
	}
	if sj.Pending() != prePending {
		t.Fatalf("pending %d after reshard, want %d (migration must not lose records)", sj.Pending(), prePending)
	}
	checkShardInvariants(t, sj)

	// Post-barrier writes land on the new placement with epoch > barrier.
	reshardWrite(t, env, a, sj, 32)
	checkShardInvariants(t, sj)
	for k, shard := range sj.shards {
		for _, r := range shard.PendingRecords() {
			if r.Epoch > stats.BarrierEpoch && ShardFor(r.Volume, 4) != k {
				t.Fatalf("post-barrier record of %s on shard %d, want %d", r.Volume, k, ShardFor(r.Volume, 4))
			}
		}
	}
}

func TestReshardShrinkRetiresEmptiedShards(t *testing.T) {
	env, a, sj := shardedFixture(t, 4, 16, 0)
	reshardWrite(t, env, a, sj, 64)
	prePending := sj.Pending()

	stats, err := sj.Reshard(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sj.Shards()) != 2 {
		t.Fatalf("shards = %d, want 2", len(sj.Shards()))
	}
	if sj.Pending() != prePending {
		t.Fatalf("pending %d, want %d", sj.Pending(), prePending)
	}
	checkShardInvariants(t, sj)
	retired := sj.Retired()
	if len(retired) != 2 {
		t.Fatalf("retired = %d shards, want 2", len(retired))
	}
	for _, j := range retired {
		if j.Pending() != 0 || len(j.Members()) != 0 {
			t.Fatalf("retired shard %s still has pending=%d members=%d", j.ID(), j.Pending(), len(j.Members()))
		}
	}
	if stats.MovedRecords == 0 || stats.MovedVolumes == 0 {
		t.Fatalf("shrink moved nothing: %+v", stats)
	}
	if n := sj.DecommissionRetired(); n != 2 {
		t.Fatalf("decommissioned %d, want 2", n)
	}
	if len(sj.Retired()) != 0 {
		t.Fatal("retired list not emptied")
	}
	_ = env
}

// TestReshardUsageReturnsToSnapshot is the leak regression the satellite
// asks for: growing and shrinking back, then decommissioning the retired
// shards, must return Array.Usage to the pre-reshard snapshot (no leaked
// journal regions) and leave no reshard residue behind.
func TestReshardUsageReturnsToSnapshot(t *testing.T) {
	env, a, sj := shardedFixture(t, 2, 16, 0)
	reshardWrite(t, env, a, sj, 48)
	before := a.Usage()

	if _, err := sj.Reshard(4); err != nil {
		t.Fatal(err)
	}
	if mid := a.Usage(); mid.Journals != before.Journals+2 {
		t.Fatalf("journals after grow = %d, want %d", mid.Journals, before.Journals+2)
	}
	if _, err := sj.Reshard(2); err != nil {
		t.Fatal(err)
	}
	sj.DecommissionRetired()
	after := a.Usage()
	if after != before {
		t.Fatalf("usage after reshard round-trip = %+v, want pre-reshard %+v", after, before)
	}
	for _, k := range []int{2, 3} {
		id := fmt.Sprintf("cg#s%d", k)
		if res := a.Residue(id); len(res) != 0 {
			t.Fatalf("residue for %s: %v", id, res)
		}
	}
	checkShardInvariants(t, sj)
	_ = env
}

func TestReshardSameCountIsStructuralNoop(t *testing.T) {
	env, a, sj := shardedFixture(t, 4, 8, 0)
	reshardWrite(t, env, a, sj, 16)
	epoch, pending := sj.Epoch(), sj.Pending()
	stats, err := sj.Reshard(4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BarrierEpoch != 0 || stats.MovedRecords != 0 || stats.MovedVolumes != 0 {
		t.Fatalf("no-op reshard did work: %+v", stats)
	}
	if sj.Epoch() != epoch || sj.Pending() != pending {
		t.Fatal("no-op reshard disturbed epoch or backlog")
	}
	if sj.Reshards() != 0 || sj.MovedRecords() != 0 {
		t.Fatalf("no-op reshard bumped counters: reshards=%d moved=%d", sj.Reshards(), sj.MovedRecords())
	}
	_, _ = env, a
}

func TestReshardRefusedWhileOverflowed(t *testing.T) {
	env, a, sj := shardedFixture(t, 2, 8, 256)
	// Overflow the group: tiny per-shard capacity, enough writes.
	reshardWrite(t, env, a, sj, 32)
	if !sj.Overflowed() {
		t.Fatal("fixture never overflowed")
	}
	if _, err := sj.Reshard(4); err == nil {
		t.Fatal("reshard on an overflowed group must refuse")
	}
}

func TestConvertToShardedAdoptsPlainJournal(t *testing.T) {
	env := sim.NewEnv(1)
	a := NewArray(env, "main", Config{})
	vols := make([]VolumeID, 8)
	for i := range vols {
		vols[i] = VolumeID(fmt.Sprintf("vol-%02d", i))
		if _, err := a.CreateVolume(vols[i], 128); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.CreateConsistencyGroup("cg", vols); err != nil {
		t.Fatal(err)
	}
	env.Process("writer", func(p *sim.Proc) {
		buf := make([]byte, a.Config().BlockSize)
		for i, id := range vols {
			v, _ := a.Volume(id)
			if _, err := v.Write(p, int64(i), buf); err != nil {
				t.Error(err)
			}
		}
	})
	env.Run(0)

	sj, err := a.ConvertToSharded("cg")
	if err != nil {
		t.Fatal(err)
	}
	if sj.ShardCount() != 1 || sj.Pending() != len(vols) {
		t.Fatalf("converted group: shards=%d pending=%d, want 1/%d", sj.ShardCount(), sj.Pending(), len(vols))
	}
	if got := sj.Members(); len(got) != len(vols) {
		t.Fatalf("members = %d, want %d", len(got), len(vols))
	}
	// Pre-conversion records carry epoch 0 — below every sealed epoch, so
	// the drain's barrier math commits them first.
	for _, r := range sj.Shards()[0].PendingRecords() {
		if r.Epoch != 0 {
			t.Fatalf("pre-conversion record has epoch %d, want 0", r.Epoch)
		}
	}
	// The adopted group reshards live like a born-sharded one.
	stats, err := sj.Reshard(4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.From != 1 || stats.To != 4 {
		t.Fatalf("stats = %+v", stats)
	}
	checkShardInvariants(t, sj)
	// Converting twice, or converting a shard, must refuse.
	if _, err := a.ConvertToSharded("cg"); err == nil {
		t.Fatal("double conversion must refuse")
	}
}

// TestReshardRespectsShardCapacity pins the sized-group guard: a shrink
// whose migration would overfill a destination's journal region is refused
// with no side effects (the fail-closed overflow invariant cannot be
// bypassed by re-placement), and succeeds once the backlog drains.
func TestReshardRespectsShardCapacity(t *testing.T) {
	env, a, sj := shardedFixture(t, 4, 16, 32*4096)
	// Fill well past one shard's capacity in aggregate, but under per-shard.
	reshardWrite(t, env, a, sj, 64)
	if sj.Overflowed() {
		t.Fatal("fixture overflowed; writes exceed per-shard capacity")
	}
	epoch, pending := sj.Epoch(), sj.Pending()
	if _, err := sj.Reshard(1); err == nil {
		t.Fatal("shrink past destination capacity must refuse")
	}
	// Refusal has zero side effects: no barrier sealed, nothing migrated,
	// no shards created or retired.
	if sj.Epoch() != epoch || sj.Pending() != pending || sj.ShardCount() != 4 ||
		len(sj.Retired()) != 0 || sj.Reshards() != 0 {
		t.Fatalf("refused reshard left side effects: epoch=%d pending=%d shards=%d",
			sj.Epoch(), sj.Pending(), sj.ShardCount())
	}
	if _, err := a.Journal("cg#s4"); err == nil {
		t.Fatal("refused reshard registered a shard journal")
	}
	// Drain the backlog; the same reshard now fits and succeeds.
	for _, j := range sj.Shards() {
		for j.TryTake(16) != nil {
		}
	}
	if _, err := sj.Reshard(1); err != nil {
		t.Fatalf("reshard after drain: %v", err)
	}
	if sj.ShardCount() != 1 {
		t.Fatalf("shards = %d, want 1", sj.ShardCount())
	}
}
