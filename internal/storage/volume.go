package storage

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/sim"
)

// Volume is a block-addressed logical device. Blocks not yet written read as
// zeroes. Writes are acknowledged only after the controller has stored the
// data and, when the volume belongs to a journal (replication is enabled),
// appended the update log — this is the ack-order guarantee §I relies on.
type Volume struct {
	id         VolumeID
	array      *Array
	sizeBlocks int64
	blocks     map[int64][]byte
	journal    *Journal
	snapshots  []*Snapshot
	readOnly   bool

	// queue is the volume's own service queue (Config.IsolatedVolumes);
	// nil when the shared array controller serializes I/O.
	queue *sim.Resource
	// localSeq numbers acks of an unjournaled volume in isolated mode.
	localSeq int64

	writes, reads int64
	cowCopies     int64 // blocks preserved for snapshots (write amplification)

	// changed records blocks written since StartChangeTracking — the
	// delta-resync bitmap real arrays keep for failback. nil = off.
	changed map[int64]bool
}

// StartChangeTracking begins recording written block indexes (resets any
// previous record). Replication failover turns this on for its targets so
// failback can resynchronize only the delta.
func (v *Volume) StartChangeTracking() { v.changed = make(map[int64]bool) }

// StopChangeTracking discards the change record.
func (v *Volume) StopChangeTracking() { v.changed = nil }

// TrackingChanges reports whether the volume is currently change tracking —
// the fail-closed invariant checkers use it to assert that every member of
// an overflowed journal is accumulating its resync delta.
func (v *Volume) TrackingChanges() bool { return v.changed != nil }

// ChangedBlocks returns the blocks written since StartChangeTracking, in
// ascending order.
func (v *Volume) ChangedBlocks() []int64 {
	out := make([]int64, 0, len(v.changed))
	for b := range v.changed {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (v *Volume) noteChange(block int64) {
	if v.changed != nil {
		v.changed[block] = true
	}
}

// ID returns the volume's identifier.
func (v *Volume) ID() VolumeID { return v.id }

// SizeBlocks returns the provisioned size in blocks.
func (v *Volume) SizeBlocks() int64 { return v.sizeBlocks }

// BlockSize returns the array's block size in bytes.
func (v *Volume) BlockSize() int { return v.array.cfg.BlockSize }

// Journal returns the attached journal, or nil when replication is off.
func (v *Volume) Journal() *Journal { return v.journal }

// SetReadOnly toggles write protection (used on backup-site volumes while
// they are replication targets).
func (v *Volume) SetReadOnly(ro bool) { v.readOnly = ro }

// ReadOnly reports whether writes are rejected.
func (v *Volume) ReadOnly() bool { return v.readOnly }

// Writes returns the number of block writes served.
func (v *Volume) Writes() int64 { return v.writes }

// Reads returns the number of block reads served.
func (v *Volume) Reads() int64 { return v.reads }

// COWCopies returns how many original blocks were preserved for snapshots —
// the snapshot write amplification measured in experiment E3.
func (v *Volume) COWCopies() int64 { return v.cowCopies }

// Ack describes a completed write as seen by the host.
type Ack struct {
	Volume    VolumeID
	Block     int64
	GlobalSeq int64         // array-wide ack order
	GroupSeq  int64         // journal (consistency-group) order; 0 if unjournaled
	AckedAt   time.Duration // virtual time of the ack
}

// Write stores one block, consuming simulated controller and media time, and
// returns the ack. Data length must equal the array block size.
func (v *Volume) Write(p *sim.Proc, block int64, data []byte) (Ack, error) {
	if v.readOnly {
		return Ack{}, fmt.Errorf("%w: %s", ErrReadOnly, v.id)
	}
	if block < 0 || block >= v.sizeBlocks {
		return Ack{}, fmt.Errorf("%w: %s[%d]", ErrOutOfRange, v.id, block)
	}
	if len(data) != v.array.cfg.BlockSize {
		return Ack{}, fmt.Errorf("%w: got %d want %d", ErrBadBlockSize, len(data), v.array.cfg.BlockSize)
	}
	// One fused sleep: media plus (when journaled) journal staging. The ack
	// time is identical to charging the two legs separately; fusing them
	// halves the scheduler steps per journaled write.
	lat := v.array.cfg.WriteLatency
	if v.journal != nil {
		lat += v.array.cfg.JournalLatency
	}
	v.acquireService(p)
	p.Sleep(lat)
	v.releaseService()
	return v.commit(p, p.Now(), block, data), nil
}

// acquireService claims the volume's service queue: its own queue in
// isolated mode, otherwise the array's shared controller.
func (v *Volume) acquireService(p *sim.Proc) {
	if v.queue != nil {
		v.queue.Acquire(p)
		return
	}
	v.array.controller.Acquire(p)
}

func (v *Volume) releaseService() {
	if v.queue != nil {
		v.queue.Release()
		return
	}
	v.array.controller.Release()
}

// ackSeq stamps one write ack: array-wide by default, scoped to the
// volume's consistency group (or the volume itself) in isolated mode.
func (v *Volume) ackSeq() int64 {
	if !v.array.cfg.IsolatedVolumes {
		return v.array.nextGlobalSeq()
	}
	if v.journal != nil {
		return v.journal.nextAckSeq()
	}
	v.localSeq++
	return v.localSeq
}

// commit applies a write without consuming time; Write and the replication
// apply path share it. The caller has already paid the service time. p is
// the acking process — journal appends attribute their not-empty trigger to
// it so the wakeup merges correctly under the parallel scheduler.
func (v *Volume) commit(p *sim.Proc, now time.Duration, block int64, data []byte) Ack {
	v.preserveForSnapshots(block)
	buf := make([]byte, len(data))
	copy(buf, data)
	v.blocks[block] = buf
	v.noteChange(block)
	v.writes++
	v.array.writeOps.Add(1)
	v.array.bytesWritten.Add(int64(len(data)))
	ack := Ack{
		Volume:    v.id,
		Block:     block,
		GlobalSeq: v.ackSeq(),
		AckedAt:   now,
	}
	if v.journal != nil {
		switch {
		case v.journal.overflowed:
			// Pair suspended: the write is not journaled; change tracking
			// (started at overflow) records it for the eventual resync.
		case v.journal.capacityBytes > 0 &&
			v.journal.PendingBytes()+len(buf)+recordHeaderBytes > v.journal.capacityBytes:
			v.journal.overflow()
			v.noteChange(block) // tracking started just now; cover this write
		default:
			ack.GroupSeq = v.journal.append(p, v.id, block, buf, ack.GlobalSeq, now)
		}
	}
	return ack
}

// preserveForSnapshots copies the current block content into every snapshot
// that has not yet saved it (copy-on-write).
func (v *Volume) preserveForSnapshots(block int64) {
	for _, s := range v.snapshots {
		if _, saved := s.saved[block]; saved {
			continue
		}
		cur := v.blocks[block]
		var orig []byte
		if cur != nil {
			orig = make([]byte, len(cur))
			copy(orig, cur)
		}
		s.saved[block] = orig // nil means "was unwritten (zeroes)"
		v.cowCopies++
	}
}

// Read returns a copy of one block, consuming simulated read service time.
// Unwritten blocks read as zeroes.
func (v *Volume) Read(p *sim.Proc, block int64) ([]byte, error) {
	if block < 0 || block >= v.sizeBlocks {
		return nil, fmt.Errorf("%w: %s[%d]", ErrOutOfRange, v.id, block)
	}
	v.acquireService(p)
	p.Sleep(v.array.cfg.ReadLatency)
	v.releaseService()
	v.reads++
	v.array.readOps.Add(1)
	return v.copyBlock(block), nil
}

// ReadRange returns copies of count consecutive blocks starting at start —
// one fused sequential scan: the service queue is held once for the whole
// range and the service time of count reads is charged in a single step.
// The completion time matches count back-to-back Reads on an uncontended
// queue while costing one scheduler step instead of count.
func (v *Volume) ReadRange(p *sim.Proc, start int64, count int) ([][]byte, error) {
	if count < 0 || start < 0 || start+int64(count) > v.sizeBlocks {
		return nil, fmt.Errorf("%w: %s[%d..%d)", ErrOutOfRange, v.id, start, start+int64(count))
	}
	v.acquireService(p)
	p.Sleep(time.Duration(count) * v.array.cfg.ReadLatency)
	v.releaseService()
	v.reads += int64(count)
	v.array.readOps.Add(int64(count))
	// One contiguous backing buffer for the whole range: a fleet-scale scan
	// otherwise allocates count small blocks, and the allocator/GC cost of
	// those dominated host profiles.
	bs := v.array.cfg.BlockSize
	backing := make([]byte, count*bs)
	out := make([][]byte, count)
	for i := range out {
		dst := backing[i*bs : (i+1)*bs : (i+1)*bs]
		if cur, ok := v.blocks[start+int64(i)]; ok {
			copy(dst, cur)
		}
		out[i] = dst
	}
	return out, nil
}

// copyBlock returns a defensive copy of the block (zeroes if unwritten).
func (v *Volume) copyBlock(block int64) []byte {
	out := make([]byte, v.array.cfg.BlockSize)
	if cur, ok := v.blocks[block]; ok {
		copy(out, cur)
	}
	return out
}

// Peek returns the block contents without consuming simulated time. It is
// the verification back door used by the consistency checker; production
// code paths must use Read.
func (v *Volume) Peek(block int64) []byte { return v.copyBlock(block) }

// Poke installs block contents without consuming time or journaling; the
// replication initial-copy path and test fixtures use it. Snapshots still
// observe the overwrite (COW fires) so backup-site snapshots stay correct.
func (v *Volume) Poke(block int64, data []byte) error {
	if block < 0 || block >= v.sizeBlocks {
		return fmt.Errorf("%w: %s[%d]", ErrOutOfRange, v.id, block)
	}
	if len(data) != v.array.cfg.BlockSize {
		return fmt.Errorf("%w: got %d want %d", ErrBadBlockSize, len(data), v.array.cfg.BlockSize)
	}
	v.preserveForSnapshots(block)
	buf := make([]byte, len(data))
	copy(buf, data)
	v.blocks[block] = buf
	v.noteChange(block)
	return nil
}

// InstallDelta stores a block as part of a replication delta-set commit.
// No service time passes here — the engine charges the whole set's apply
// time up front via Array.ApplyDeltaSet — but write accounting matches the
// Apply path so backup-array counters see the traffic.
func (v *Volume) InstallDelta(block int64, data []byte) error {
	if err := v.Poke(block, data); err != nil {
		return err
	}
	v.writes++
	v.array.writeOps.Add(1)
	v.array.bytesWritten.Add(int64(len(data)))
	return nil
}

// Apply is the replication-target write path: it stores the block after the
// media service time but never journals (targets do not re-replicate) and
// ignores read-only protection (the replication engine owns the target).
func (v *Volume) Apply(p *sim.Proc, block int64, data []byte) error {
	if block < 0 || block >= v.sizeBlocks {
		return fmt.Errorf("%w: %s[%d]", ErrOutOfRange, v.id, block)
	}
	if len(data) != v.array.cfg.BlockSize {
		return fmt.Errorf("%w: got %d want %d", ErrBadBlockSize, len(data), v.array.cfg.BlockSize)
	}
	v.acquireService(p)
	p.Sleep(v.array.cfg.WriteLatency)
	v.releaseService()
	v.preserveForSnapshots(block)
	buf := make([]byte, len(data))
	copy(buf, data)
	v.blocks[block] = buf
	v.noteChange(block)
	v.writes++
	v.array.writeOps.Add(1)
	v.array.bytesWritten.Add(int64(len(data)))
	return nil
}

// WrittenBlocks returns the indexes of blocks that have been written, in
// ascending order (verification helper).
func (v *Volume) WrittenBlocks() []int64 {
	out := make([]int64, 0, len(v.blocks))
	for b := range v.blocks {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (v *Volume) String() string {
	return fmt.Sprintf("Volume(%s/%s){%d blocks, %d written}", v.array.name, v.id, v.sizeBlocks, len(v.blocks))
}
