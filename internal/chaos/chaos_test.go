package chaos

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestChaosSmokeSeeds runs a fixed handful of short schedules clean — the
// in-tree half of `make chaos-smoke` (the Makefile target drives the same
// seeds through cmd/chaos under -race).
func TestChaosSmokeSeeds(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		sch, err := Generate(seed, "short")
		if err != nil {
			t.Fatal(err)
		}
		res := Run(sch)
		if res.Failed() {
			t.Errorf("seed %d failed:\n%s", seed, res.LogText())
		}
		if res.Orders == 0 {
			t.Errorf("seed %d placed no orders", seed)
		}
		if res.Checks == 0 && len(sch.Faults) > 0 {
			t.Errorf("seed %d ran no checkpoints over %d faults", seed, len(sch.Faults))
		}
	}
}

// TestChaosReplayByteIdentical is the repro guarantee: generating and
// running the same seed twice yields byte-identical replay artifacts —
// schedule, fault log, violations, everything.
func TestChaosReplayByteIdentical(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		sch1, err := Generate(seed, "short")
		if err != nil {
			t.Fatal(err)
		}
		sch2, _ := Generate(seed, "short")
		a, b := Run(sch1).LogText(), Run(sch2).LogText()
		if a != b {
			t.Fatalf("seed %d replay diverged:\n--- first\n%s\n--- second\n%s", seed, a, b)
		}
	}
}

func TestGenerateDeterministicAndValid(t *testing.T) {
	a, err := Generate(99, "medium")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(99, "medium")
	if a.String() != b.String() {
		t.Fatal("same seed generated different schedules")
	}
	if len(a.Tenants) == 0 || len(a.Faults) == 0 {
		t.Fatalf("degenerate schedule: %s", a)
	}
	for i, f := range a.Faults {
		if f.Seq != i {
			t.Fatalf("fault %d carries Seq %d", i, f.Seq)
		}
		if i > 0 && f.At < a.Faults[i-1].At {
			t.Fatalf("fault times not monotone: %s", a)
		}
	}
	if _, err := Generate(1, "bogus"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

// TestChaosPlantCaughtAndShrunk proves the detection pipeline end to end: a
// deliberately planted backup corruption is caught by the invariant
// checkers, reported as a one-line repro, and shrunk to the minimal failing
// schedule — the plant alone.
func TestChaosPlantCaughtAndShrunk(t *testing.T) {
	sch, err := Generate(7, "short")
	if err != nil {
		t.Fatal(err)
	}
	planted := sch.PlantCorruption()
	res := Run(planted)
	if !res.Failed() {
		t.Fatalf("planted corruption not caught:\n%s", res.LogText())
	}
	found := false
	for _, v := range res.Violations {
		if v.Invariant == "consistent-cut" && strings.Contains(v.Detail, "collapsed") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a collapsed consistent-cut violation, got %v", res.Violations)
	}
	if want := fmt.Sprintf("-seed %d", sch.Seed); !strings.Contains(res.ReproLine(), want) {
		t.Fatalf("repro line %q does not name the seed", res.ReproLine())
	}

	sr := Shrink(planted, 100)
	if len(sr.Minimal.Faults) != 1 || sr.Minimal.Faults[0].Kind != FaultPlant {
		t.Fatalf("want shrink to the plant alone, got %v (trace %v)", sr.Minimal.Faults, sr.Trace)
	}
	if !Run(sr.Minimal).Failed() {
		t.Fatal("minimal schedule does not fail")
	}
}

// TestChaosShrinkDeterministic: shrinking the same failing schedule twice
// takes the same decisions and lands on the same minimal subset.
func TestChaosShrinkDeterministic(t *testing.T) {
	sch, err := Generate(11, "short")
	if err != nil {
		t.Fatal(err)
	}
	planted := sch.PlantCorruption()
	if !Run(planted).Failed() {
		t.Fatalf("planted schedule did not fail:\n%s", Run(planted).LogText())
	}
	a := Shrink(planted, 100)
	b := Shrink(planted, 100)
	if a.Runs != b.Runs || strings.Join(a.Trace, ";") != strings.Join(b.Trace, ";") {
		t.Fatalf("shrink diverged:\n%v (%d runs)\n%v (%d runs)", a.Trace, a.Runs, b.Trace, b.Runs)
	}
	if a.Minimal.String() != b.Minimal.String() {
		t.Fatalf("minimal schedules differ:\n%s\n%s", a.Minimal, b.Minimal)
	}
}

// TestChaosFailbackRefusal is the regression for the typed sharded-failback
// refusal: a failback fault after a sharded tenant's failover must surface
// core.ErrShardedFailback immediately (zero simulated time — a registry
// scan), not burn a wait timeout, and must not count as a run failure.
func TestChaosFailbackRefusal(t *testing.T) {
	sch := &Schedule{
		Seed:  42,
		Steps: "short",
		Links: 2,
		Tenants: []TenantPlan{
			{Orders: 60, ThinkTime: 2 * time.Millisecond, Shards: 2},
		},
		Faults: []Fault{
			{Seq: 0, At: 120 * time.Millisecond, Kind: FaultFailover, Tenant: 0},
			{Seq: 1, At: 160 * time.Millisecond, Kind: FaultFailback, Tenant: -1},
		},
	}
	res := Run(sch)
	if res.Failed() {
		t.Fatalf("refusal treated as failure:\n%s", res.LogText())
	}
	refused := ""
	for _, l := range res.Log {
		if strings.Contains(l, "failback: refused") {
			refused = l
		}
	}
	if refused == "" {
		t.Fatalf("no refusal logged:\n%s", res.LogText())
	}
	// Prompt means zero virtual time: the refusal happens in the registry
	// scan before anything is touched.
	if !strings.Contains(refused, "refused in 0s") {
		t.Fatalf("refusal burned simulated time: %q", refused)
	}
	if !strings.Contains(refused, "sharded") {
		t.Fatalf("refusal is not the typed sharded error: %q", refused)
	}
}

// TestChaosWithFaultsIsolated: WithFaults copies, so shrink probes cannot
// mutate the schedule they minimize.
func TestChaosWithFaultsIsolated(t *testing.T) {
	sch, err := Generate(3, "short")
	if err != nil {
		t.Fatal(err)
	}
	if len(sch.Faults) < 2 {
		t.Skip("schedule too small to exercise isolation")
	}
	orig := sch.Faults[0].Kind
	sub := sch.WithFaults(sch.Faults[:1])
	sub.Faults[0].Kind = FaultPlant
	if sch.Faults[0].Kind != orig {
		t.Fatal("WithFaults aliased the original fault slice")
	}
}

// TestChaosLinkLossDegradesAndRecovers: a hand-built schedule with one
// loss/jitter burst on a forward member link must retransmit (the burst
// really bit), pass every invariant checkpoint, and clear back to a clean
// link — with the pipelined (window > 1) dispatchers in flight throughout.
func TestChaosLinkLossDegradesAndRecovers(t *testing.T) {
	sch := &Schedule{
		Seed:  42,
		Steps: "short",
		Links: 2,
		Tenants: []TenantPlan{
			{Orders: 80, ThinkTime: time.Millisecond, Shards: 2},
		},
		Faults: []Fault{
			{Seq: 0, At: 60 * time.Millisecond, Kind: FaultLinkLoss, Tenant: -1,
				Link: 0, Loss: 0.5, Jitter: 2 * time.Millisecond, Dur: 150 * time.Millisecond},
		},
	}
	res := Run(sch)
	if res.Failed() {
		t.Fatalf("linkloss burst failed invariants:\n%s", res.LogText())
	}
	cleared := ""
	for _, l := range res.Log {
		if strings.Contains(l, "linkloss: cleared") {
			cleared = l
		}
	}
	if cleared == "" {
		t.Fatalf("burst never cleared:\n%s", res.LogText())
	}
	if strings.Contains(cleared, "(0 retransmits)") {
		t.Fatalf("burst caused no retransmits at 50%% loss: %q", cleared)
	}
}

// TestGenerateIncludesLinkLoss: the new fault is part of the generated
// alphabet, not just the hand-built path.
func TestGenerateIncludesLinkLoss(t *testing.T) {
	found := false
	for seed := int64(1); seed <= 20 && !found; seed++ {
		sch, err := Generate(seed, "medium")
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range sch.Faults {
			if f.Kind == FaultLinkLoss {
				if f.Loss <= 0 || f.Dur <= 0 {
					t.Fatalf("degenerate linkloss fault: %s", f)
				}
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no seed in 1..20 generated a linkloss fault")
	}
}
