package chaos

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/csiplugin"
	"repro/internal/db"
	"repro/internal/fabric"
	"repro/internal/invariants"
	"repro/internal/netlink"
	"repro/internal/platform"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Result is one schedule execution's outcome. Two runs of the same
// schedule produce byte-identical LogText — that property is itself
// asserted by cmd/chaos in single-seed mode and by TestChaosReplay.
type Result struct {
	Schedule   *Schedule
	Log        []string
	Violations []invariants.Violation
	Checks     int           // invariant checkpoints executed
	Orders     int64         // orders placed across all tenants
	SimTime    time.Duration // virtual span of the run
	Err        error         // infrastructure failure (distinct from a violation)
}

// Failed reports whether the run found a violation or died on an error.
func (r *Result) Failed() bool { return len(r.Violations) > 0 || r.Err != nil }

// ReproLine is the one-line command that replays this run exactly.
func (r *Result) ReproLine() string {
	return fmt.Sprintf("go run ./cmd/chaos -steps %s -seed %d", r.Schedule.Steps, r.Schedule.Seed)
}

// LogText renders the full deterministic replay artifact: schedule header,
// per-fault driver log, and any violations.
func (r *Result) LogText() string {
	var b strings.Builder
	b.WriteString(r.Schedule.String())
	for _, l := range r.Log {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "VIOLATION %s\n", v)
	}
	if r.Err != nil {
		fmt.Fprintf(&b, "ERROR %v\n", r.Err)
	}
	return b.String()
}

// runTenant is the runner's live state for one tenant plan.
type runTenant struct {
	idx  int
	ns   string
	plan TenantPlan

	bp   *core.BusinessProcess
	shop *workload.Shop

	alive      bool // provisioned and not yet left
	left       bool
	failedOver bool

	// workload loop state
	stop    bool
	running bool
	done    *sim.Event
	gen     int // workload restarts, for unique process names
	placed  int
}

type runner struct {
	sch *Schedule
	sys *core.System
	res *Result
	ten []*runTenant
}

// Run executes the schedule on a fresh system and returns the outcome.
// Everything inside is driven by the deterministic kernel: same schedule in,
// same Result out, byte for byte.
func Run(sch *Schedule) *Result {
	res := &Result{Schedule: sch}
	links := make([]netlink.Config, sch.Links)
	for i := range links {
		links[i] = netlink.Config{Propagation: 2 * time.Millisecond, BandwidthBps: 8e6}
	}
	sys := core.NewSystem(core.Config{
		Seed: sch.Seed,
		// WindowPerLink 4 runs the sweep against the pipelined dispatchers,
		// so linkdown/linkloss bursts land while frames are genuinely in
		// flight (partition-with-in-flight-frames, retransmission under
		// pipelining) on every seed.
		Fabric:       fabric.Config{Links: links, WindowPerLink: 4},
		Storage:      storage.Config{IsolatedVolumes: true},
		VolumeBlocks: 4096,
	})
	r := &runner{sch: sch, sys: sys, res: res}
	for i, plan := range sch.Tenants {
		r.ten = append(r.ten, &runTenant{idx: i, ns: fmt.Sprintf("chaos-%02d", i), plan: plan})
	}

	sys.Env.Process("chaos-driver", r.drive)
	sys.Env.Run(0)
	// Quiesce so repeated runs (sweeps, shrink replays) do not accumulate
	// parked simulation processes.
	sys.Stop()
	sys.Env.Run(0)
	res.SimTime = sys.Env.Now()
	for _, t := range r.ten {
		res.Orders += int64(t.placed)
	}
	// Leaked watches are only checkable after the controllers stopped.
	res.Violations = append(res.Violations,
		invariants.CheckNoWatches("main", sys.Main.API)...)
	res.Violations = append(res.Violations,
		invariants.CheckNoWatches("backup", sys.Backup.API)...)
	return res
}

func (r *runner) logf(p *sim.Proc, format string, args ...any) {
	r.res.Log = append(r.res.Log, fmt.Sprintf("[%10v] ", p.Now())+fmt.Sprintf(format, args...))
}

func (r *runner) fail(p *sim.Proc, err error) {
	if r.res.Err == nil {
		r.res.Err = err
	}
	r.logf(p, "ERROR %v", err)
}

func (r *runner) violations(p *sim.Proc, vs []invariants.Violation) {
	for _, v := range vs {
		r.logf(p, "violation %s", v)
	}
	r.res.Violations = append(r.res.Violations, vs...)
}

// drive is the single serialized chaos process: provision the initial
// roster, fire each fault at its scheduled time, run the invariant
// checkpoint after its recovery point, then drain and decommission.
func (r *runner) drive(p *sim.Proc) {
	for _, t := range r.ten {
		if t.plan.JoinAt == 0 {
			if err := r.provision(p, t); err != nil {
				r.fail(p, fmt.Errorf("provision %s: %w", t.ns, err))
				return
			}
		}
	}
	for _, t := range r.ten {
		if t.alive {
			r.startWorkload(t)
		}
	}
	r.logf(p, "roster up: %d tenants, %d links", len(r.sch.Tenants), r.sch.Links)

	for _, f := range r.sch.Faults {
		if f.At > p.Now() {
			p.Sleep(f.At - p.Now())
		}
		if r.res.Err != nil {
			return
		}
		r.fire(p, f)
		r.checkpoint(p, fmt.Sprintf("after #%02d %s", f.Seq, f.Kind))
		if r.res.Err != nil {
			return
		}
	}

	r.finish(p)
}

func (r *runner) provision(p *sim.Proc, t *runTenant) error {
	bp, err := r.sys.ProvisionTenant(p, platform.TenantSpec{
		Namespace:     t.ns,
		PVCNames:      []string{"sales", "stock"},
		Backup:        true,
		JournalShards: t.plan.Shards,
		Profile:       "oltp-external", // chaos attaches its own seeded shop
	})
	if err != nil {
		return err
	}
	t.bp = bp
	t.alive = true
	// Think time and the read mix are paced by the runner's own order loop
	// (startWorkload), so the shop only needs its item-selection seed.
	t.shop = workload.NewShop(r.sys.Env, bp.Sales, bp.Stock, workload.Config{
		Seed: r.sch.Seed + int64(t.idx)*7919,
	})
	return nil
}

// startWorkload launches (or relaunches) the tenant's order loop. The loop
// checks the stop flag at order boundaries only, so a stop always leaves
// the shop's commit orders at a transaction boundary.
func (r *runner) startWorkload(t *runTenant) {
	if t.running || t.placed >= t.plan.Orders || !t.alive || t.failedOver {
		return
	}
	t.gen++
	t.stop = false
	t.running = true
	done := r.sys.Env.NewEvent()
	t.done = done
	r.sys.Env.Process(fmt.Sprintf("wl:%s#%d", t.ns, t.gen), func(p *sim.Proc) {
		for !t.stop && t.placed < t.plan.Orders {
			if _, err := t.shop.PlaceOrder(p); err != nil {
				r.fail(p, fmt.Errorf("workload %s: %w", t.ns, err))
				break
			}
			t.placed++
			if t.placed%4 == 0 && t.plan.ReadFraction > 0 {
				if err := t.shop.CheckOrder(p); err != nil {
					r.fail(p, fmt.Errorf("workload read %s: %w", t.ns, err))
					break
				}
			}
			if t.plan.ThinkTime > 0 {
				p.Sleep(t.plan.ThinkTime)
			}
		}
		t.running = false
		p.Trigger(done)
	})
}

// stopWorkload halts the tenant's order loop at the next order boundary and
// waits for it to park.
func (r *runner) stopWorkload(p *sim.Proc, t *runTenant) {
	t.stop = true
	if t.done != nil {
		p.Wait(t.done)
	}
}

func (r *runner) fire(p *sim.Proc, f Fault) {
	switch f.Kind {
	case FaultLinkDown:
		r.linkDown(p, f)
	case FaultLinkLoss:
		r.linkLoss(p, f)
	case FaultSiteCut:
		r.siteCut(p, f)
	case FaultFailover:
		r.failover(p, f)
	case FaultFailback:
		r.failback(p, f)
	case FaultJoin:
		r.join(p, f)
	case FaultLeave:
		r.leave(p, f)
	case FaultReshard:
		r.reshard(p, f)
	case FaultSqueeze:
		r.squeeze(p, f)
	case FaultPlant:
		r.plant(p, f)
	default:
		r.logf(p, "fault #%02d: unknown kind %v, skipped", f.Seq, f.Kind)
	}
}

// target resolves a tenant-level fault's target, logging the skip when the
// tenant is not in a state the fault applies to (its join was shrunk away,
// it already left, it failed over).
func (r *runner) target(p *sim.Proc, f Fault) *runTenant {
	if f.Tenant < 0 || f.Tenant >= len(r.ten) {
		r.logf(p, "fault #%02d %s: no such tenant %d, skipped", f.Seq, f.Kind, f.Tenant)
		return nil
	}
	t := r.ten[f.Tenant]
	if !t.alive || t.left || t.failedOver {
		r.logf(p, "fault #%02d %s: tenant %s not eligible (alive=%v left=%v failedover=%v), skipped",
			f.Seq, f.Kind, t.ns, t.alive, t.left, t.failedOver)
		return nil
	}
	return t
}

func (r *runner) linkDown(p *sim.Proc, f Fault) {
	links := r.sys.Fabric.Forward.Links()
	l := links[f.Link%len(links)]
	r.logf(p, "fault #%02d linkdown: partition member link %d for %v", f.Seq, f.Link%len(links), f.Dur)
	l.Partition()
	p.Sleep(f.Dur)
	l.Heal()
	r.logf(p, "fault #%02d linkdown: healed", f.Seq)
}

func (r *runner) linkLoss(p *sim.Proc, f Fault) {
	links := r.sys.Fabric.Forward.Links()
	l := links[f.Link%len(links)]
	before := l.Retransmits()
	r.logf(p, "fault #%02d linkloss: degrade member link %d loss=%.2f jitter=%v for %v",
		f.Seq, f.Link%len(links), f.Loss, f.Jitter, f.Dur)
	l.SetFault(f.Loss, f.Jitter)
	p.Sleep(f.Dur)
	l.SetFault(0, 0)
	r.logf(p, "fault #%02d linkloss: cleared (%d retransmits)", f.Seq, l.Retransmits()-before)
}

func (r *runner) siteCut(p *sim.Proc, f Fault) {
	r.logf(p, "fault #%02d sitecut: partition all links for %v", f.Seq, f.Dur)
	for _, l := range r.sys.Fabric.Forward.Links() {
		l.Partition()
	}
	for _, l := range r.sys.Fabric.Reverse.Links() {
		l.Partition()
	}
	p.Sleep(f.Dur)
	for _, l := range r.sys.Fabric.Forward.Links() {
		l.Heal()
	}
	for _, l := range r.sys.Fabric.Reverse.Links() {
		l.Heal()
	}
	r.logf(p, "fault #%02d sitecut: healed", f.Seq)
}

func (r *runner) failover(p *sim.Proc, f Fault) {
	t := r.target(p, f)
	if t == nil {
		return
	}
	// A disaster takes the workload with it: stop the loop first so the
	// shop's commit orders are the complete ground truth for the verify.
	r.stopWorkload(p, t)
	fo, err := r.sys.Failover(p, t.ns)
	if err != nil {
		r.fail(p, fmt.Errorf("failover %s: %w", t.ns, err))
		return
	}
	t.failedOver = true
	rep := consistency.Verify(fo.Sales, fo.Stock, t.shop.SalesCommitOrder(), t.shop.StockCommitOrder())
	r.violations(p, invariants.CheckConsistentCut(t.ns, rep))
	r.logf(p, "fault #%02d failover %s: recovery=%v recovered=%d/%d sales txns lost=%d",
		f.Seq, t.ns, fo.RecoveryTime, rep.SalesTxns, len(t.shop.SalesCommitOrder()), rep.LostSalesTxns)
}

func (r *runner) failback(p *sim.Proc, f Fault) {
	start := p.Now()
	fb, err := r.sys.Failback(p)
	elapsed := p.Now() - start
	switch {
	case errors.Is(err, core.ErrShardedFailback):
		// The typed refusal must be prompt — a registry scan, not a burned
		// wait timeout. TestChaosFailbackRefusal pins this.
		r.logf(p, "fault #%02d failback: refused in %v: %v", f.Seq, elapsed, err)
	case err != nil:
		r.logf(p, "fault #%02d failback: no-op (%v)", f.Seq, err)
	default:
		r.logf(p, "fault #%02d failback: %d reverse groups, resync %v (delta %d / full %d blocks)",
			f.Seq, len(fb.Reverse), fb.ResyncTime, fb.DeltaBlocks, fb.FullBlocks)
	}
}

func (r *runner) join(p *sim.Proc, f Fault) {
	if f.Tenant < 0 || f.Tenant >= len(r.ten) {
		r.logf(p, "fault #%02d join: no such tenant %d, skipped", f.Seq, f.Tenant)
		return
	}
	t := r.ten[f.Tenant]
	if t.alive || t.left {
		r.logf(p, "fault #%02d join: tenant %s already joined, skipped", f.Seq, t.ns)
		return
	}
	start := p.Now()
	if err := r.provision(p, t); err != nil {
		r.fail(p, fmt.Errorf("join %s: %w", t.ns, err))
		return
	}
	r.startWorkload(t)
	r.logf(p, "fault #%02d join %s: ready in %v", f.Seq, t.ns, p.Now()-start)
}

func (r *runner) leave(p *sim.Proc, f Fault) {
	t := r.target(p, f)
	if t == nil {
		return
	}
	r.stopWorkload(p, t)
	// Drain, prove the backup complete and consistent, then decommission
	// and hold the zero-residue invariant.
	r.sys.CatchUp(p, t.ns)
	rep, err := r.verifyTenant(p, t, fmt.Sprintf("leave%02d", f.Seq))
	if err != nil {
		r.fail(p, fmt.Errorf("leave verify %s: %w", t.ns, err))
		return
	}
	r.violations(p, invariants.CheckConsistentCut(t.ns, rep))
	if err := r.sys.DecommissionTenant(p, t.ns); err != nil {
		r.fail(p, fmt.Errorf("leave %s: %w", t.ns, err))
		return
	}
	t.left = true
	t.alive = false
	r.violations(p, invariants.CheckZeroResidue(t.ns, r.sys.TenantResidue(t.ns)))
	r.logf(p, "fault #%02d leave %s: decommissioned after %d orders", f.Seq, t.ns, t.placed)
}

func (r *runner) reshard(p *sim.Proc, f Fault) {
	t := r.target(p, f)
	if t == nil {
		return
	}
	if err := r.sys.UpdateTenantSpec(p, t.ns, func(s *platform.TenantSpec) {
		s.JournalShards = f.Shards
	}); err != nil {
		r.fail(p, fmt.Errorf("reshard %s: %w", t.ns, err))
		return
	}
	start := p.Now()
	err := r.sys.WaitTenantCondition(p, t.ns, core.CondResharded(f.Shards), 60*time.Second)
	switch {
	case errors.Is(err, core.ErrNotReshardable):
		r.logf(p, "fault #%02d reshard %s: not reshardable (%v), skipped", f.Seq, t.ns, err)
	case err != nil:
		r.fail(p, fmt.Errorf("reshard %s to %d: %w", t.ns, f.Shards, err))
	default:
		r.logf(p, "fault #%02d reshard %s -> %d lanes in %v", f.Seq, t.ns, f.Shards, p.Now()-start)
	}
}

func (r *runner) squeeze(p *sim.Proc, f Fault) {
	t := r.target(p, f)
	if t == nil {
		return
	}
	gs := r.sys.Groups(t.ns)
	if len(gs) != 1 {
		r.logf(p, "fault #%02d squeeze %s: %d engines, skipped", f.Seq, t.ns, len(gs))
		return
	}
	r.logf(p, "fault #%02d squeeze %s: capacity -> %dB for %v", f.Seq, t.ns, f.Bytes, f.Dur)
	switch eng := gs[0].(type) {
	case *replication.ShardedGroup:
		sj := eng.Journal()
		sj.SetCapacityPerShard(f.Bytes)
		p.Sleep(f.Dur)
		r.stopWorkload(p, t)
		if sj.Overflowed() {
			// The group froze: the fail-closed invariant must hold NOW.
			r.violations(p, invariants.CheckFailClosedSharded(t.ns, r.sys.Main.Array, sj))
			sj.SetCapacityPerShard(0)
			r.sys.CatchUp(p, t.ns) // drain what was journaled before the freeze
			if err := eng.InitialCopy(p, r.sys.Main.Array); err != nil {
				r.fail(p, fmt.Errorf("squeeze recovery %s: %w", t.ns, err))
				return
			}
			sj.ClearOverflow()
			r.logf(p, "fault #%02d squeeze %s: overflowed (x%d), recovered by full re-copy", f.Seq, t.ns, sj.Overflows())
		} else {
			sj.SetCapacityPerShard(0)
			r.logf(p, "fault #%02d squeeze %s: backlog stayed under capacity", f.Seq, t.ns)
		}
	case *replication.Group:
		j, err := r.sys.Main.Array.Journal(eng.JournalID())
		if err != nil {
			r.fail(p, fmt.Errorf("squeeze %s: %w", t.ns, err))
			return
		}
		j.SetCapacityBytes(f.Bytes)
		p.Sleep(f.Dur)
		r.stopWorkload(p, t)
		if j.Overflowed() {
			r.violations(p, invariants.CheckFailClosed(t.ns, r.sys.Main.Array, j))
			j.SetCapacityBytes(0)
			if err := eng.Resync(p, r.sys.Main.Array, 10); err != nil {
				r.fail(p, fmt.Errorf("squeeze resync %s: %w", t.ns, err))
				return
			}
			r.logf(p, "fault #%02d squeeze %s: overflowed (x%d), recovered by delta resync", f.Seq, t.ns, j.Overflows())
		} else {
			j.SetCapacityBytes(0)
			r.logf(p, "fault #%02d squeeze %s: backlog stayed under capacity", f.Seq, t.ns)
		}
	default:
		r.logf(p, "fault #%02d squeeze %s: unknown engine type, skipped", f.Seq, t.ns)
		return
	}
	// Recovery must be lossless: the workload was quiesced, capacity is
	// restored, so after a catch-up the backup holds every commit.
	r.sys.CatchUp(p, t.ns)
	rep, err := r.verifyTenant(p, t, fmt.Sprintf("squeeze%02d", f.Seq))
	if err != nil {
		r.fail(p, fmt.Errorf("squeeze verify %s: %w", t.ns, err))
		return
	}
	r.violations(p, invariants.CheckConsistentCut(t.ns, rep))
	if rep.LostSalesTxns != 0 || rep.LostStockTxns != 0 {
		r.violations(p, []invariants.Violation{{
			Invariant: "fail-closed", Tenant: t.ns,
			Detail: fmt.Sprintf("squeeze recovery lost %d sales / %d stock txns", rep.LostSalesTxns, rep.LostStockTxns),
		}})
	}
	r.startWorkload(t)
}

// plant is the test-only violation: corrupt the backup sales volume after a
// catch-up, so the next consistency cut MUST collapse (stock commits whose
// sales rows were destroyed). It proves the detection and shrinking
// pipeline end to end.
func (r *runner) plant(p *sim.Proc, f Fault) {
	t := r.target(p, f)
	if t == nil {
		return
	}
	r.stopWorkload(p, t)
	r.sys.CatchUp(p, t.ns)
	v, err := r.sys.Backup.Array.Volume(csiplugin.VolumeIDForClaim(t.ns, "sales"))
	if err != nil {
		r.fail(p, fmt.Errorf("plant %s: %w", t.ns, err))
		return
	}
	zero := make([]byte, v.BlockSize())
	wiped := 0
	for _, b := range v.WrittenBlocks() {
		if b == 0 {
			continue // keep the DB header so the view still opens
		}
		if err := v.Poke(b, zero); err != nil {
			r.fail(p, fmt.Errorf("plant %s: %w", t.ns, err))
			return
		}
		wiped++
	}
	r.logf(p, "fault #%02d plant %s: wiped %d backup sales blocks", f.Seq, t.ns, wiped)
}

// verifyTenant snapshots the tenant's backup volumes, opens crash-recovered
// analytics views on the snapshot, and verifies them against the shop's
// commit orders. The snapshot group is deleted afterwards so the check
// leaves no residue behind.
func (r *runner) verifyTenant(p *sim.Proc, t *runTenant, tag string) (consistency.Report, error) {
	name := t.ns + "-" + tag
	group, err := r.sys.SnapshotBackup(p, t.ns, name)
	if err != nil {
		return consistency.Report{}, fmt.Errorf("snapshot: %w", err)
	}
	defer func() {
		if derr := r.sys.Backup.Array.DeleteSnapshotGroup(name); derr != nil {
			r.fail(p, fmt.Errorf("snapshot cleanup %s: %w", name, derr))
		}
	}()
	sales, err := r.openSide(p, t.ns, group, "sales")
	if err != nil {
		return consistency.Report{}, err
	}
	stock, err := r.openSide(p, t.ns, group, "stock")
	if err != nil {
		return consistency.Report{}, err
	}
	return consistency.Verify(sales, stock, t.shop.SalesCommitOrder(), t.shop.StockCommitOrder()), nil
}

// openSide opens one crash-recovered view of the snapshot. A backup volume
// whose DB header has not drained yet (a fresh joiner mid-initial-drain) is
// a legitimate empty image, not an error: it reads as zero commits, and the
// consistency checker will still flag the cut if the OTHER side has commits
// that would make emptiness inconsistent.
func (r *runner) openSide(p *sim.Proc, ns string, group *storage.SnapshotGroup, claim string) (consistency.CommitSet, error) {
	snap := group.Snapshot(csiplugin.VolumeIDForClaim(ns, claim))
	if snap == nil {
		return nil, fmt.Errorf("snapshot group %s missing %s", group.Name(), claim)
	}
	v, err := db.OpenView(p, ns+"/"+claim+"@chk", snap, r.sys.Cfg.DB)
	if errors.Is(err, db.ErrNotFormatted) {
		return emptySet{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("view %s/%s: %w", ns, claim, err)
	}
	return v, nil
}

// emptySet is the zero-commit CommitSet an unformatted backup reads as.
type emptySet struct{}

func (emptySet) HasCommitted(uint64) bool { return false }
func (emptySet) CommittedTxns() []uint64  { return nil }

// checkpoint asserts every invariant that must hold at a recovery point:
// per-tenant fail-closed journal state, epoch boundaries, an any-instant
// consistent cut on every live tenant's backup, zero residue for everyone
// who left, and no orphan replication engines.
func (r *runner) checkpoint(p *sim.Proc, label string) {
	r.res.Checks++
	before := len(r.res.Violations)
	for _, t := range r.ten {
		if !t.alive || t.failedOver {
			continue
		}
		for _, g := range r.sys.Groups(t.ns) {
			switch eng := g.(type) {
			case *replication.ShardedGroup:
				r.violations(p, invariants.CheckEpochBoundary(t.ns, eng))
				r.violations(p, invariants.CheckFailClosedSharded(t.ns, r.sys.Main.Array, eng.Journal()))
			case *replication.Group:
				if j, err := r.sys.Main.Array.Journal(eng.JournalID()); err == nil {
					r.violations(p, invariants.CheckFailClosed(t.ns, r.sys.Main.Array, j))
				}
			}
		}
		rep, err := r.verifyTenant(p, t, fmt.Sprintf("chk%03d", r.res.Checks))
		if err != nil {
			r.fail(p, fmt.Errorf("checkpoint %q %s: %w", label, t.ns, err))
			return
		}
		r.violations(p, invariants.CheckConsistentCut(t.ns, rep))
	}
	for _, t := range r.ten {
		if t.left {
			r.violations(p, invariants.CheckZeroResidue(t.ns, r.sys.TenantResidue(t.ns)))
		}
	}
	r.violations(p, r.orphanCheck())
	r.logf(p, "checkpoint %q: %d new violations", label, len(r.res.Violations)-before)
}

func (r *runner) orphanCheck() []invariants.Violation {
	live := func(ns string) bool {
		for _, t := range r.ten {
			if t.ns == ns {
				return t.alive || t.failedOver
			}
		}
		return false
	}
	return invariants.CheckNoOrphanGroups(r.sys.Replication.AllGroups(), r.sys.Replication.NamespaceOf, live)
}

// finish drains and decommissions every remaining tenant, then runs the
// final global checks. Failed-over tenants stay: their groups legitimately
// outlive the workload (the DR story), so they are only orphan-checked.
func (r *runner) finish(p *sim.Proc) {
	for _, t := range r.ten {
		if t.alive && !t.failedOver {
			r.stopWorkload(p, t)
		}
	}
	for _, t := range r.ten {
		if !t.alive || t.failedOver {
			continue
		}
		r.sys.CatchUp(p, t.ns)
		rep, err := r.verifyTenant(p, t, "final")
		if err != nil {
			r.fail(p, fmt.Errorf("final verify %s: %w", t.ns, err))
			return
		}
		r.violations(p, invariants.CheckConsistentCut(t.ns, rep))
		if err := r.sys.DecommissionTenant(p, t.ns); err != nil {
			r.fail(p, fmt.Errorf("final decommission %s: %w", t.ns, err))
			return
		}
		t.left = true
		t.alive = false
		r.violations(p, invariants.CheckZeroResidue(t.ns, r.sys.TenantResidue(t.ns)))
	}
	r.violations(p, r.orphanCheck())
	total := 0
	for _, t := range r.ten {
		total += t.placed
	}
	r.logf(p, "done: %d orders, %d checkpoints, %d violations", total, r.res.Checks, len(r.res.Violations))
}
