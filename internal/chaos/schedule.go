// Package chaos is the seeded fault-schedule sweep: from a single int64
// seed it generates a randomized schedule of faults (link partitions, site
// cuts, failovers, failbacks, tenant joins/leaves, live reshards,
// journal-capacity squeezes) layered over randomized per-tenant OLTP
// workloads, executes the schedule on the deterministic simulation kernel
// through the declarative tenant surface, and asserts the shared
// internal/invariants checkers after every recovery point.
//
// Because the kernel is deterministic, a seed IS the repro: re-running
// `cmd/chaos -seed=N` replays the identical schedule, byte-identical fault
// log included. A failing seed is automatically shrunk (Shrink) to a
// minimal failing sub-schedule by prefix bisection plus greedy fault
// removal — both exact, not probabilistic, for the same reason.
package chaos

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// FaultKind enumerates the schedule generator's fault grammar.
type FaultKind int

const (
	// FaultLinkDown partitions one fabric member link for Dur, then heals.
	FaultLinkDown FaultKind = iota
	// FaultSiteCut partitions every inter-site link (forward and reverse)
	// for Dur, then heals them all — the full site isolation.
	FaultSiteCut
	// FaultFailover fails the tenant over to the backup site mid-workload
	// (no catch-up first: whatever is in flight is lost) and verifies the
	// recovered image is a consistent cut.
	FaultFailover
	// FaultFailback attempts core.Failback for every failed-over group.
	// Against a sharded tenant this must refuse promptly with the typed
	// core.ErrShardedFailback, not burn a wait timeout.
	FaultFailback
	// FaultJoin provisions a new tenant (its plan is already in
	// Schedule.Tenants) and starts its workload under everyone else's load.
	FaultJoin
	// FaultLeave drains and decommissions the tenant, then asserts zero
	// array residue.
	FaultLeave
	// FaultReshard declares a new JournalShards count on the tenant spec
	// and waits for the live migration to settle.
	FaultReshard
	// FaultSqueeze drops the tenant's journal capacity to Bytes for Dur so
	// the backlog overflows, asserts the fail-closed invariant, then
	// restores capacity and recovers (resync or full re-copy) with zero
	// loss verified.
	FaultSqueeze
	// FaultLinkLoss degrades one fabric member link for Dur with a
	// transient loss/jitter burst (frames retransmit instead of being cut
	// off), then clears it — the degraded-but-alive sibling of
	// FaultLinkDown, exercising retransmission under pipelined dispatch.
	FaultLinkLoss
	// FaultPlant is the test-only violation hook: it corrupts the tenant's
	// backup sales volume behind the replication engine's back, so the next
	// checkpoint's consistency cut MUST collapse. Never generated — only
	// appended explicitly (Schedule.PlantCorruption) to prove the sweep
	// detects, reports, and shrinks real violations.
	FaultPlant
)

func (k FaultKind) String() string {
	switch k {
	case FaultLinkDown:
		return "linkdown"
	case FaultSiteCut:
		return "sitecut"
	case FaultFailover:
		return "failover"
	case FaultFailback:
		return "failback"
	case FaultJoin:
		return "join"
	case FaultLeave:
		return "leave"
	case FaultReshard:
		return "reshard"
	case FaultSqueeze:
		return "squeeze"
	case FaultLinkLoss:
		return "linkloss"
	case FaultPlant:
		return "plant"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Fault is one scheduled fault. Seq is the fault's position in the
// originally generated schedule and survives shrinking, so a minimal
// failing subset still names the original faults.
type Fault struct {
	Seq    int
	At     time.Duration // sim time the driver fires it
	Kind   FaultKind
	Tenant int           // target tenant index; -1 for link-level faults
	Link   int           // member-link index (FaultLinkDown, FaultLinkLoss)
	Dur    time.Duration // partition / squeeze / loss-burst hold time
	Shards int           // reshard target shard count
	Bytes  int           // squeeze capacity in bytes
	Loss   float64       // loss probability during a FaultLinkLoss burst
	Jitter time.Duration // added propagation jitter during a FaultLinkLoss burst
}

func (f Fault) String() string {
	switch f.Kind {
	case FaultLinkDown:
		return fmt.Sprintf("#%02d @%v linkdown link=%d dur=%v", f.Seq, f.At, f.Link, f.Dur)
	case FaultLinkLoss:
		return fmt.Sprintf("#%02d @%v linkloss link=%d loss=%.2f jitter=%v dur=%v", f.Seq, f.At, f.Link, f.Loss, f.Jitter, f.Dur)
	case FaultSiteCut:
		return fmt.Sprintf("#%02d @%v sitecut dur=%v", f.Seq, f.At, f.Dur)
	case FaultReshard:
		return fmt.Sprintf("#%02d @%v reshard tenant=%d shards=%d", f.Seq, f.At, f.Tenant, f.Shards)
	case FaultSqueeze:
		return fmt.Sprintf("#%02d @%v squeeze tenant=%d cap=%dB dur=%v", f.Seq, f.At, f.Tenant, f.Bytes, f.Dur)
	case FaultFailback:
		return fmt.Sprintf("#%02d @%v failback", f.Seq, f.At)
	default:
		return fmt.Sprintf("#%02d @%v %s tenant=%d", f.Seq, f.At, f.Kind, f.Tenant)
	}
}

// TenantPlan is one tenant's randomized workload shape. JoinAt zero means
// the tenant is provisioned before the schedule starts; nonzero means a
// FaultJoin provisions it mid-run.
type TenantPlan struct {
	Orders       int
	ThinkTime    time.Duration
	ReadFraction float64
	Shards       int // initial JournalShards (1 = plain shared journal)
	JoinAt       time.Duration
}

func (t TenantPlan) String() string {
	s := fmt.Sprintf("orders=%d think=%v reads=%.1f shards=%d", t.Orders, t.ThinkTime, t.ReadFraction, t.Shards)
	if t.JoinAt > 0 {
		s += fmt.Sprintf(" join@%v", t.JoinAt)
	}
	return s
}

// Schedule is a complete, self-contained chaos scenario: replaying it (same
// seed, same fault subset) reproduces the run exactly.
type Schedule struct {
	Seed    int64
	Steps   string // generator preset name ("short", "medium", "long")
	Links   int    // fabric member links
	Tenants []TenantPlan
	Faults  []Fault
}

// WithFaults returns a copy of the schedule running only the given fault
// subset — the shrinker's replay unit. Tenant plans are kept whole: a fault
// whose join was removed simply finds its target absent and is skipped,
// deterministically.
func (s *Schedule) WithFaults(sub []Fault) *Schedule {
	out := *s
	out.Faults = make([]Fault, len(sub))
	copy(out.Faults, sub)
	return &out
}

// PlantCorruption adds the test-only FaultPlant to the schedule — the hook
// cmd/chaos -plant and the shrinker tests use to demonstrate a real
// violation being caught and minimized. The victim must be alive and not
// failed over when the plant fires (the checkers stop watching a tenant's
// backup after failover), so: prefer an initial-roster tenant no failover
// or leave fault touches and plant after every scheduled fault; when every
// initial tenant is targeted, pick the one targeted LATEST and slot the
// plant just before its first targeting fault.
func (s *Schedule) PlantCorruption() *Schedule {
	at := 100 * time.Millisecond
	seq := 0
	firstHit := make(map[int]time.Duration)
	for _, f := range s.Faults {
		if f.At+f.Dur >= at {
			at = f.At + f.Dur + 50*time.Millisecond
		}
		if f.Seq >= seq {
			seq = f.Seq + 1
		}
		if f.Kind == FaultFailover || f.Kind == FaultLeave {
			if _, hit := firstHit[f.Tenant]; !hit {
				firstHit[f.Tenant] = f.At
			}
		}
	}
	victim, untargeted := -1, false
	for i, t := range s.Tenants {
		if t.JoinAt != 0 {
			continue
		}
		if _, hit := firstHit[i]; !hit {
			victim, untargeted = i, true
			break
		}
		if victim < 0 || firstHit[i] > firstHit[victim] {
			victim = i
		}
	}
	plant := Fault{Seq: seq, Kind: FaultPlant, Tenant: victim}
	out := s.WithFaults(s.Faults)
	if untargeted {
		plant.At = at
		out.Faults = append(out.Faults, plant)
		return out
	}
	// Every initial tenant is eventually hit: fire just before the victim's
	// first targeting fault, keeping the list time-ordered. The generator's
	// inter-fault gaps are >= 15ms, so 1ms clearance cannot reorder.
	plant.At = firstHit[victim] - time.Millisecond
	for i, f := range out.Faults {
		if f.At > plant.At {
			out.Faults = append(out.Faults[:i], append([]Fault{plant}, out.Faults[i:]...)...)
			return out
		}
	}
	out.Faults = append(out.Faults, plant)
	return out
}

// String renders the schedule header — the first section of every repro log.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule seed=%d steps=%s links=%d tenants=%d faults=%d\n",
		s.Seed, s.Steps, s.Links, len(s.Tenants), len(s.Faults))
	for i, t := range s.Tenants {
		fmt.Fprintf(&b, "  tenant %d: %s\n", i, t)
	}
	for _, f := range s.Faults {
		fmt.Fprintf(&b, "  fault %s\n", f)
	}
	return b.String()
}

// genConfig is one preset's generator envelope.
type genConfig struct {
	tenants    int // initial roster
	maxTenants int // roster cap (joins stop here)
	links      int
	faults     int // fault slots drawn (ineligible draws are dropped)
	minOrders  int
	maxOrders  int
}

var presets = map[string]genConfig{
	"short":  {tenants: 2, maxTenants: 4, links: 3, faults: 4, minOrders: 40, maxOrders: 120},
	"medium": {tenants: 3, maxTenants: 6, links: 4, faults: 10, minOrders: 80, maxOrders: 200},
	"long":   {tenants: 4, maxTenants: 8, links: 4, faults: 24, minOrders: 100, maxOrders: 320},
}

// Steps lists the generator preset names.
func Steps() []string { return []string{"short", "medium", "long"} }

// genTenant is the generator's model of a tenant's lifecycle state, kept in
// lockstep with the runner's eligibility rules so most drawn faults apply.
type genTenant struct {
	joined     bool
	left       bool
	failedOver bool
}

// Generate draws a schedule from the seed. All randomness comes from one
// rand.Source seeded with exactly `seed`, so the schedule is a pure
// function of (seed, steps).
func Generate(seed int64, steps string) (*Schedule, error) {
	cfg, ok := presets[steps]
	if !ok {
		return nil, fmt.Errorf("chaos: unknown steps preset %q (want one of %s)", steps, strings.Join(Steps(), "/"))
	}
	rng := rand.New(rand.NewSource(seed))
	sch := &Schedule{Seed: seed, Steps: steps, Links: cfg.links}

	state := make([]genTenant, 0, cfg.maxTenants)
	newPlan := func(joinAt time.Duration) {
		sch.Tenants = append(sch.Tenants, TenantPlan{
			Orders:       cfg.minOrders + rng.Intn(cfg.maxOrders-cfg.minOrders+1),
			ThinkTime:    time.Duration(1+rng.Intn(6)) * time.Millisecond,
			ReadFraction: 0.1 * float64(rng.Intn(4)),
			Shards:       []int{1, 1, 2, 4}[rng.Intn(4)],
			JoinAt:       joinAt,
		})
		state = append(state, genTenant{joined: joinAt == 0})
	}
	for i := 0; i < cfg.tenants; i++ {
		newPlan(0)
	}

	// Tenants the generator may currently target with a tenant-level fault.
	eligible := func() []int {
		var out []int
		for i, t := range state {
			if t.joined && !t.left && !t.failedOver {
				out = append(out, i)
			}
		}
		return out
	}
	anyFailedOver := func() bool {
		for _, t := range state {
			if t.failedOver {
				return true
			}
		}
		return false
	}

	at := 30 * time.Millisecond
	for slot := 0; slot < cfg.faults; slot++ {
		at += time.Duration(15+rng.Intn(106)) * time.Millisecond
		// Weighted kind draw; redraw a bounded number of times when the
		// drawn kind has no eligible target so schedules stay dense.
		var f Fault
		ok := false
		for try := 0; try < 8 && !ok; try++ {
			f = Fault{Seq: len(sch.Faults), At: at, Tenant: -1}
			switch pick(rng, []weighted{
				{FaultLinkDown, 3}, {FaultSiteCut, 1}, {FaultFailover, 2},
				{FaultFailback, 1}, {FaultJoin, 1}, {FaultLeave, 1},
				{FaultReshard, 2}, {FaultSqueeze, 2}, {FaultLinkLoss, 2},
			}) {
			case FaultLinkDown:
				f.Kind = FaultLinkDown
				f.Link = rng.Intn(cfg.links)
				f.Dur = time.Duration(10+rng.Intn(111)) * time.Millisecond
				ok = true
			case FaultLinkLoss:
				// Always eligible, like linkdown: the burst needs no live
				// tenant, only a member link.
				f.Kind = FaultLinkLoss
				f.Link = rng.Intn(cfg.links)
				f.Loss = 0.05 * float64(1+rng.Intn(6)) // 5%..30%
				f.Jitter = time.Duration(rng.Intn(3)) * time.Millisecond
				f.Dur = time.Duration(30+rng.Intn(101)) * time.Millisecond
				ok = true
			case FaultSiteCut:
				f.Kind = FaultSiteCut
				f.Dur = time.Duration(10+rng.Intn(91)) * time.Millisecond
				ok = true
			case FaultFailover:
				if el := eligible(); len(el) > 0 {
					f.Kind = FaultFailover
					f.Tenant = el[rng.Intn(len(el))]
					state[f.Tenant].failedOver = true
					ok = true
				}
			case FaultFailback:
				if anyFailedOver() {
					f.Kind = FaultFailback
					ok = true
				}
			case FaultJoin:
				if len(state) < cfg.maxTenants {
					f.Kind = FaultJoin
					f.Tenant = len(state)
					newPlan(at)
					state[f.Tenant].joined = true
					ok = true
				}
			case FaultLeave:
				if el := eligible(); len(el) >= 2 {
					f.Kind = FaultLeave
					f.Tenant = el[rng.Intn(len(el))]
					state[f.Tenant].left = true
					ok = true
				}
			case FaultReshard:
				if el := eligible(); len(el) > 0 {
					f.Kind = FaultReshard
					f.Tenant = el[rng.Intn(len(el))]
					f.Shards = []int{1, 2, 4}[rng.Intn(3)]
					ok = true
				}
			case FaultSqueeze:
				if el := eligible(); len(el) > 0 {
					f.Kind = FaultSqueeze
					f.Tenant = el[rng.Intn(len(el))]
					f.Bytes = 2048 * (1 + rng.Intn(4))
					f.Dur = time.Duration(30+rng.Intn(71)) * time.Millisecond
					ok = true
				}
			}
		}
		if ok {
			sch.Faults = append(sch.Faults, f)
		}
	}
	return sch, nil
}

type weighted struct {
	kind   FaultKind
	weight int
}

func pick(rng *rand.Rand, choices []weighted) FaultKind {
	total := 0
	for _, c := range choices {
		total += c.weight
	}
	n := rng.Intn(total)
	for _, c := range choices {
		if n < c.weight {
			return c.kind
		}
		n -= c.weight
	}
	return choices[len(choices)-1].kind
}
