package chaos

import "fmt"

// ShrinkResult describes a minimization: the minimal failing schedule, the
// replays it took, and a deterministic trace of each decision.
type ShrinkResult struct {
	Minimal *Schedule
	Runs    int
	Trace   []string
}

// Shrink minimizes a failing schedule to a minimal failing sub-schedule in
// two exact phases:
//
//  1. prefix bisection — binary search for the shortest failing prefix of
//     the fault list (a failure caused by fault K never needs faults > K);
//  2. greedy single-fault removal — drop each remaining fault in turn,
//     keeping the removal whenever the schedule still fails (the one-pass
//     flavor of ddmin; with deterministic replays every probe is exact).
//
// The result is 1-minimal: removing any single remaining fault makes the
// failure disappear. maxRuns bounds the replay budget; if it runs out the
// best schedule found so far is returned (still failing, maybe not
// minimal). Shrink assumes sch itself fails — callers pass a schedule whose
// Run already produced a failed Result.
func Shrink(sch *Schedule, maxRuns int) ShrinkResult {
	res := ShrinkResult{Minimal: sch}
	fails := func(sub []Fault) bool {
		if res.Runs >= maxRuns {
			return false
		}
		res.Runs++
		return Run(sch.WithFaults(sub)).Failed()
	}

	faults := sch.Faults
	// Phase 1: shortest failing prefix. Invariant: faults[:hi] fails.
	lo, hi := 1, len(faults)
	for lo < hi {
		mid := (lo + hi) / 2
		if fails(faults[:mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	cur := append([]Fault(nil), faults[:hi]...)
	res.Trace = append(res.Trace, fmt.Sprintf("prefix: %d -> %d faults", len(faults), len(cur)))

	// Phase 2: greedy removal of single faults.
	for i := 0; i < len(cur); {
		if len(cur) == 1 {
			break // a failing singleton is minimal by definition
		}
		trial := append(append([]Fault(nil), cur[:i]...), cur[i+1:]...)
		if fails(trial) {
			res.Trace = append(res.Trace, fmt.Sprintf("dropped fault #%02d (%s)", cur[i].Seq, cur[i].Kind))
			cur = trial
		} else {
			i++
		}
	}
	res.Trace = append(res.Trace, fmt.Sprintf("minimal: %d faults in %d replays", len(cur), res.Runs))
	res.Minimal = sch.WithFaults(cur)
	return res
}
