// Package workload generates the e-commerce business process the paper's
// use case is built around (§II): each order is one business transaction
// touching two resources — an order row committed to the sales database and
// a stock decrement committed to the stock database. The application
// commits sales first and issues the stock commit only after the sales
// commit is acknowledged, so the storage-level ack order always contains
// "sales(tx) before stock(tx)". That ordering is exactly what a consistency
// group preserves at the backup site and what independent per-volume
// replication can invert — the collapse experiment E6 measures it.
package workload

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/db"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Config tunes the generator.
type Config struct {
	// Items is the size of the stock catalogue (default 100).
	Items int
	// ItemsPerOrder is how many stock lines each order touches (default 2).
	ItemsPerOrder int
	// ZipfS skews item popularity; 0 disables skew (uniform). Values > 1
	// concentrate demand on few items (default 1.2).
	ZipfS float64
	// ThinkTime is the client's pause between orders (default 0: closed
	// loop, back to back).
	ThinkTime time.Duration
	// ReadFraction is the share of operations that are customer reads
	// (order status + stock check) instead of orders, in [0,1). Reads
	// never touch the journal, so they dilute the replication load the
	// way real mixed traffic does. Default 0.
	ReadFraction float64
	// Seed offsets the environment RNG stream for item selection.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Items <= 0 {
		c.Items = 100
	}
	if c.ItemsPerOrder <= 0 {
		c.ItemsPerOrder = 2
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.2
	}
	return c
}

// Shop drives orders against a sales DB and a stock DB.
type Shop struct {
	env   *sim.Env
	sales *db.DB
	stock *db.DB
	cfg   Config
	rng   *rand.Rand
	zipf  *rand.Zipf

	nextTx uint64
	// Commit sequences in ack order, per database — the ground truth the
	// consistency verifier compares recovered images against.
	salesOrder []uint64
	stockOrder []uint64

	Latency     *metrics.Histogram // per-order end-to-end commit latency
	ReadLatency *metrics.Histogram // per-read latency
	Completed   metrics.Counter
	Reads       metrics.Counter
	Failed      metrics.Counter
}

// NewShop wires the generator to its two databases.
func NewShop(env *sim.Env, sales, stock *db.DB, cfg Config) *Shop {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 0x5eed))
	s := &Shop{
		env:         env,
		sales:       sales,
		stock:       stock,
		cfg:         cfg,
		rng:         rng,
		Latency:     metrics.NewHistogram(),
		ReadLatency: metrics.NewHistogram(),
		nextTx:      1,
	}
	if cfg.ZipfS > 1 {
		s.zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Items-1))
	}
	return s
}

// pickItem returns a stock item key in [1, Items].
func (s *Shop) pickItem() uint64 {
	if s.zipf != nil {
		return s.zipf.Uint64() + 1
	}
	return uint64(s.rng.Intn(s.cfg.Items)) + 1
}

// PlaceOrder runs one business transaction: commit the order into sales,
// then commit the stock decrements. It returns the business transaction ID.
func (s *Shop) PlaceOrder(p *sim.Proc) (uint64, error) {
	txid := s.nextTx
	s.nextTx++
	start := p.Now()

	// Resource 1: the sales database records the order.
	st := s.sales.BeginWithID(txid)
	val := make([]byte, 16)
	binary.LittleEndian.PutUint64(val[0:8], txid)
	binary.LittleEndian.PutUint64(val[8:16], uint64(start))
	if err := st.Put(orderKey(txid), val); err != nil {
		s.Failed.Inc()
		return 0, fmt.Errorf("workload: order %d sales put: %w", txid, err)
	}
	if err := st.Commit(p); err != nil {
		s.Failed.Inc()
		return 0, fmt.Errorf("workload: order %d sales commit: %w", txid, err)
	}
	s.salesOrder = append(s.salesOrder, txid)

	// Resource 2: the stock database, only after the sales ack (app order).
	kt := s.stock.BeginWithID(txid)
	for i := 0; i < s.cfg.ItemsPerOrder; i++ {
		item := s.pickItem()
		qty := make([]byte, 16)
		binary.LittleEndian.PutUint64(qty[0:8], txid)
		binary.LittleEndian.PutUint64(qty[8:16], item)
		if err := kt.Put(item, qty); err != nil {
			s.Failed.Inc()
			return 0, fmt.Errorf("workload: order %d stock put: %w", txid, err)
		}
	}
	if err := kt.Commit(p); err != nil {
		s.Failed.Inc()
		return 0, fmt.Errorf("workload: order %d stock commit: %w", txid, err)
	}
	s.stockOrder = append(s.stockOrder, txid)

	s.Latency.Record(p.Now() - start)
	s.Completed.Inc()
	return txid, nil
}

// orderKey spreads order rows over the sales DB's pages.
func orderKey(txid uint64) uint64 { return txid }

// CheckOrder runs one customer read: look up an existing order and the
// stock level of one item. Reads pay media time but never journal.
func (s *Shop) CheckOrder(p *sim.Proc) error {
	start := p.Now()
	if s.nextTx > 1 {
		orderID := uint64(s.rng.Int63n(int64(s.nextTx-1))) + 1
		if _, _, err := s.sales.Get(p, orderKey(orderID)); err != nil {
			s.Failed.Inc()
			return fmt.Errorf("workload: order lookup: %w", err)
		}
	}
	if _, _, err := s.stock.Get(p, s.pickItem()); err != nil {
		s.Failed.Inc()
		return fmt.Errorf("workload: stock lookup: %w", err)
	}
	s.ReadLatency.Record(p.Now() - start)
	s.Reads.Inc()
	return nil
}

// step performs one operation according to the read/write mix.
func (s *Shop) step(p *sim.Proc) error {
	if s.cfg.ReadFraction > 0 && s.rng.Float64() < s.cfg.ReadFraction {
		return s.CheckOrder(p)
	}
	_, err := s.PlaceOrder(p)
	return err
}

// Run places n orders back to back (with ThinkTime pauses and the
// configured read mix interleaved). It stops early and returns the error
// if an operation fails.
func (s *Shop) Run(p *sim.Proc, n int) error {
	placed := int64(0)
	for placed < int64(n) {
		before := s.Completed.Value()
		if err := s.step(p); err != nil {
			return err
		}
		placed += s.Completed.Value() - before
		if s.cfg.ThinkTime > 0 {
			p.Sleep(s.cfg.ThinkTime)
		}
	}
	return nil
}

// RunUntil performs operations until the virtual deadline passes.
func (s *Shop) RunUntil(p *sim.Proc, deadline time.Duration) error {
	for p.Now() < deadline {
		if err := s.step(p); err != nil {
			return err
		}
		if s.cfg.ThinkTime > 0 {
			p.Sleep(s.cfg.ThinkTime)
		}
	}
	return nil
}

// SalesCommitOrder returns the business transaction IDs in sales-commit ack
// order (a copy).
func (s *Shop) SalesCommitOrder() []uint64 {
	out := make([]uint64, len(s.salesOrder))
	copy(out, s.salesOrder)
	return out
}

// StockCommitOrder returns the business transaction IDs in stock-commit ack
// order (a copy).
func (s *Shop) StockCommitOrder() []uint64 {
	out := make([]uint64, len(s.stockOrder))
	copy(out, s.stockOrder)
	return out
}

// Throughput returns completed orders per second of simulated time.
func (s *Shop) Throughput(elapsed time.Duration) float64 {
	return s.Completed.RatePerSec(elapsed)
}
