package workload

import (
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/sim"
	"repro/internal/storage"
)

// fixture: array with sales+stock volumes and open DBs, run fn in a process.
func withShop(t *testing.T, cfg Config, fn func(p *sim.Proc, s *Shop)) *sim.Env {
	t.Helper()
	env := sim.NewEnv(1)
	a := storage.NewArray(env, "main", storage.Config{})
	a.CreateVolume("sales", 512)
	a.CreateVolume("stock", 512)
	sv, _ := a.Volume("sales")
	kv, _ := a.Volume("stock")
	env.Process("shop", func(p *sim.Proc) {
		sales, err := db.Open(p, "sales", sv, db.Config{})
		if err != nil {
			t.Error(err)
			return
		}
		stock, err := db.Open(p, "stock", kv, db.Config{})
		if err != nil {
			t.Error(err)
			return
		}
		fn(p, NewShop(env, sales, stock, cfg))
	})
	env.Run(0)
	return env
}

func TestPlaceOrderCommitsBothResources(t *testing.T) {
	withShop(t, Config{}, func(p *sim.Proc, s *Shop) {
		txid, err := s.PlaceOrder(p)
		if err != nil {
			t.Fatal(err)
		}
		if !s.sales.HasCommitted(txid) {
			t.Fatal("sales missing the order txn")
		}
		if !s.stock.HasCommitted(txid) {
			t.Fatal("stock missing the order txn")
		}
		if v, found, _ := s.sales.Get(p, txid); !found || len(v) != 16 {
			t.Fatalf("order row: found=%v len=%d", found, len(v))
		}
	})
}

func TestRunPlacesNOrders(t *testing.T) {
	withShop(t, Config{Items: 20}, func(p *sim.Proc, s *Shop) {
		if err := s.Run(p, 50); err != nil {
			t.Fatal(err)
		}
		if s.Completed.Value() != 50 {
			t.Fatalf("completed = %d", s.Completed.Value())
		}
		if s.Latency.Count() != 50 {
			t.Fatalf("latency samples = %d", s.Latency.Count())
		}
		if got := len(s.SalesCommitOrder()); got != 50 {
			t.Fatalf("sales order len = %d", got)
		}
		if got := len(s.StockCommitOrder()); got != 50 {
			t.Fatalf("stock order len = %d", got)
		}
	})
}

func TestCommitOrdersAreSequentialTxnIDs(t *testing.T) {
	withShop(t, Config{}, func(p *sim.Proc, s *Shop) {
		s.Run(p, 10)
		for i, tx := range s.SalesCommitOrder() {
			if tx != uint64(i+1) {
				t.Fatalf("sales order %v", s.SalesCommitOrder())
			}
		}
		// Single client: stock order matches sales order.
		for i, tx := range s.StockCommitOrder() {
			if tx != uint64(i+1) {
				t.Fatalf("stock order %v", s.StockCommitOrder())
			}
		}
	})
}

func TestSalesAlwaysCommitsBeforeStock(t *testing.T) {
	// The invariant every consistency claim rests on: at any instant, the
	// set of stock commits is a subset of sales commits.
	withShop(t, Config{}, func(p *sim.Proc, s *Shop) {
		for i := 0; i < 20; i++ {
			s.PlaceOrder(p)
			for _, tx := range s.stock.CommittedTxns() {
				if !s.sales.HasCommitted(tx) {
					t.Fatalf("stock committed %d before sales", tx)
				}
			}
		}
	})
}

func TestThinkTimePacesOrders(t *testing.T) {
	env := withShop(t, Config{ThinkTime: 10 * time.Millisecond}, func(p *sim.Proc, s *Shop) {
		s.Run(p, 10)
	})
	if env.Now() < 100*time.Millisecond {
		t.Fatalf("10 paced orders finished in %v, want >= 100ms", env.Now())
	}
}

func TestZipfSkewConcentratesDemand(t *testing.T) {
	counts := map[uint64]int{}
	withShop(t, Config{Items: 50, ZipfS: 1.5, ItemsPerOrder: 1}, func(p *sim.Proc, s *Shop) {
		for i := 0; i < 300; i++ {
			counts[s.pickItem()]++
		}
	})
	if counts[1] == 0 {
		t.Fatal("zipf never picked the hottest item")
	}
	hot := counts[1]
	var total int
	for _, c := range counts {
		total += c
	}
	if float64(hot)/float64(total) < 0.2 {
		t.Fatalf("hottest item got %d/%d picks; zipf not skewed", hot, total)
	}
}

func TestUniformWhenZipfDisabled(t *testing.T) {
	seen := map[uint64]bool{}
	withShop(t, Config{Items: 10, ZipfS: -1}, func(p *sim.Proc, s *Shop) {
		for i := 0; i < 200; i++ {
			k := s.pickItem()
			if k < 1 || k > 10 {
				t.Fatalf("item %d out of range", k)
			}
			seen[k] = true
		}
	})
	if len(seen) < 8 {
		t.Fatalf("uniform picker covered only %d/10 items", len(seen))
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (int64, time.Duration) {
		env := sim.NewEnv(7)
		a := storage.NewArray(env, "m", storage.Config{})
		a.CreateVolume("sales", 512)
		a.CreateVolume("stock", 512)
		sv, _ := a.Volume("sales")
		kv, _ := a.Volume("stock")
		var completed int64
		env.Process("shop", func(p *sim.Proc) {
			sales, _ := db.Open(p, "sales", sv, db.Config{})
			stock, _ := db.Open(p, "stock", kv, db.Config{})
			s := NewShop(env, sales, stock, Config{Seed: 7})
			s.Run(p, 40)
			completed = s.Completed.Value()
		})
		end := env.Run(0)
		return completed, end
	}
	c1, e1 := run()
	c2, e2 := run()
	if c1 != c2 || e1 != e2 {
		t.Fatalf("runs diverged: (%d,%v) vs (%d,%v)", c1, e1, c2, e2)
	}
}

func TestCheckOrderReads(t *testing.T) {
	withShop(t, Config{}, func(p *sim.Proc, s *Shop) {
		s.Run(p, 10)
		for i := 0; i < 20; i++ {
			if err := s.CheckOrder(p); err != nil {
				t.Fatal(err)
			}
		}
		if s.Reads.Value() != 20 || s.ReadLatency.Count() != 20 {
			t.Fatalf("reads=%d samples=%d", s.Reads.Value(), s.ReadLatency.Count())
		}
	})
}

func TestReadMixStillPlacesNOrders(t *testing.T) {
	withShop(t, Config{ReadFraction: 0.5}, func(p *sim.Proc, s *Shop) {
		if err := s.Run(p, 30); err != nil {
			t.Fatal(err)
		}
		if s.Completed.Value() != 30 {
			t.Fatalf("completed = %d, want exactly 30 despite read mix", s.Completed.Value())
		}
		if s.Reads.Value() == 0 {
			t.Fatal("read mix produced no reads")
		}
	})
}

func TestReadsDoNotJournal(t *testing.T) {
	// Reads must not generate replication traffic — part of why analytics
	// and status checks are free under ADC.
	env := sim.NewEnv(1)
	a := storage.NewArray(env, "m", storage.Config{})
	a.CreateVolume("sales", 512)
	a.CreateVolume("stock", 512)
	j, _ := a.CreateConsistencyGroup("cg", []storage.VolumeID{"sales", "stock"})
	sv, _ := a.Volume("sales")
	kv, _ := a.Volume("stock")
	env.Process("t", func(p *sim.Proc) {
		sales, _ := db.Open(p, "sales", sv, db.Config{})
		stock, _ := db.Open(p, "stock", kv, db.Config{})
		s := NewShop(env, sales, stock, Config{})
		s.Run(p, 5)
		before := j.Appended()
		for i := 0; i < 10; i++ {
			if err := s.CheckOrder(p); err != nil {
				t.Error(err)
				return
			}
		}
		if j.Appended() != before {
			t.Errorf("reads appended %d journal records", j.Appended()-before)
		}
	})
	env.Run(0)
}

func TestThroughput(t *testing.T) {
	withShop(t, Config{}, func(p *sim.Proc, s *Shop) {
		s.Run(p, 25)
		if tput := s.Throughput(p.Now()); tput <= 0 {
			t.Fatalf("throughput = %v", tput)
		}
	})
}
