package sim

// Event is a one-shot condition processes can wait on. The zero value is not
// usable; create events with Env.NewEvent. Triggering an already-triggered
// event is a no-op, which makes completion signalling idempotent.
type Event struct {
	env       *Env
	triggered bool
	waiters   []waiter
}

// waiter pairs a blocked process with its optional timeout entry so that a
// trigger can cancel the pending timer (0 = no timer; refs are only valid
// while the entry is pending, which holds because the process stays blocked
// until either the timer pops or the trigger cancels it). For WaitAny, group
// lists the sibling events the process is simultaneously registered on, so
// the first trigger can deregister the rest and prevent double resumption.
type waiter struct {
	proc  *Proc
	timer entryRef
	group []*Event
}

// NewEvent returns an untriggered event bound to the environment.
func (e *Env) NewEvent() *Event { return &Event{env: e} }

// Triggered reports whether the event has fired.
func (ev *Event) Triggered() bool { return ev.triggered }

// Trigger fires the event, scheduling every waiter to resume at the current
// virtual time. Waiters resume in the order they began waiting.
//
// Trigger must not be called with waiters from inside a parallel round —
// the kernel cannot attribute the resumes to a step, so the merged order
// would be undefined; such call sites use Proc.Trigger instead. (A
// waiterless Trigger only flips the flag and is always safe.)
func (ev *Event) Trigger() {
	if ev.triggered {
		return
	}
	if ev.env.inRound && len(ev.waiters) > 0 {
		panic("sim: Event.Trigger with waiters during a parallel round; use Proc.Trigger")
	}
	ev.triggered = true
	for _, w := range ev.waiters {
		if w.timer != 0 {
			ev.env.cancelEntry(w.timer)
		}
		for _, other := range w.group {
			if other != ev {
				other.remove(w.proc)
			}
		}
		ev.env.schedule(w.proc, ev.env.now)
	}
	ev.waiters = nil
}

// triggerVia is Trigger with every kernel effect (timer cancels, waiter
// resumes) attributed to p's current effect segment; Proc.Trigger routes
// here during parallel rounds.
func (ev *Event) triggerVia(p *Proc) {
	if ev.triggered {
		return
	}
	ev.triggered = true
	for _, w := range ev.waiters {
		if w.timer != 0 {
			ev.env.cancelVia(p, w.timer)
		}
		for _, other := range w.group {
			if other != ev {
				other.remove(w.proc)
			}
		}
		ev.env.scheduleVia(p, w.proc, ev.env.now)
	}
	ev.waiters = nil
}

// remove deregisters p from the waiter list (used after a timeout fires so a
// later Trigger does not resume a process that already moved on).
func (ev *Event) remove(p *Proc) {
	for i, w := range ev.waiters {
		if w.proc == p {
			ev.waiters = append(ev.waiters[:i], ev.waiters[i+1:]...)
			return
		}
	}
}
