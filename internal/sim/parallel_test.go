package sim

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// TestWaitTimeoutReclaimsTimerEntry is the regression test for the timer
// leak: when the event wins, the loser timer entry must leave the heap
// immediately instead of squatting there until its original deadline.
func TestWaitTimeoutReclaimsTimerEntry(t *testing.T) {
	env := NewEnv(1)
	const rounds = 1000
	high := 0
	env.Process("watcher", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			ev := env.NewEvent()
			env.Process("firer", func(q *Proc) {
				q.Sleep(time.Microsecond)
				q.Trigger(ev)
			})
			// Far deadline: a leaked timer would stay pending ~forever.
			if !p.WaitTimeout(ev, time.Hour) {
				t.Errorf("round %d: timeout fired, want event", i)
			}
			if n := env.Pending(); n > high {
				high = n
			}
		}
	})
	env.Run(0)
	// Each round keeps at most a handful of entries live (the firer's
	// wakeup, the watcher's resume). 1000 leaked hour-long timers would
	// push this into the hundreds.
	if high > 8 {
		t.Fatalf("live entries peaked at %d, want <= 8 (timer entries leaking)", high)
	}
	if got := env.Stats().TimerCancels; got < rounds {
		t.Fatalf("TimerCancels = %d, want >= %d", got, rounds)
	}
	if n := env.Pending(); n != 0 {
		t.Fatalf("%d entries still pending after run", n)
	}
}

// TestWaitTimeoutStillTimesOut guards the other half of the contract after
// the eager-cancel change.
func TestWaitTimeoutStillTimesOut(t *testing.T) {
	env := NewEnv(1)
	var fired bool
	env.Process("waiter", func(p *Proc) {
		fired = p.WaitTimeout(env.NewEvent(), 5*time.Millisecond)
	})
	end := env.Run(0)
	if fired {
		t.Fatal("WaitTimeout reported the event, want timeout")
	}
	if end != 5*time.Millisecond {
		t.Fatalf("run ended at %v, want 5ms", end)
	}
}

func TestInlineStepsRunWithoutHandoff(t *testing.T) {
	env := NewEnv(1)
	var order []string
	env.Process("p", func(p *Proc) {
		p.Sleep(time.Millisecond)
		order = append(order, "proc@1ms")
	})
	env.After(time.Millisecond, func() { order = append(order, "fn@1ms") })
	env.After(0, func() {
		order = append(order, "fn@0")
		env.Immediate(func() { order = append(order, "fn@0b") })
	})
	base := env.Stats().Handoffs
	env.Run(0)
	// The 1ms fn was scheduled before the process's sleep resume, so its
	// seq — and therefore its turn — comes first.
	want := []string{"fn@0", "fn@0b", "fn@1ms", "proc@1ms"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	st := env.Stats()
	if st.InlineSteps != 3 {
		t.Fatalf("InlineSteps = %d, want 3", st.InlineSteps)
	}
	if st.Handoffs-base != 2 {
		t.Fatalf("Handoffs = %d, want 2 (one start, one sleep resume)", st.Handoffs-base)
	}
}

func TestProcDoCountsInlineWork(t *testing.T) {
	env := NewEnv(1)
	ran := 0
	env.Process("p", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Do(func() { ran++ })
		}
	})
	env.Run(0)
	if ran != 5 {
		t.Fatalf("ran = %d, want 5", ran)
	}
	if got := env.Stats().InlineSteps; got != 5 {
		t.Fatalf("InlineSteps = %d, want 5", got)
	}
}

// buildRandomWorld wires a randomized multi-domain workload: nDomains
// domain processes doing random sleeps and cross-waking a same-domain
// helper through attributed triggers, plus a shared domain-0 collector the
// domains signal through a channel-like event handshake. Every observable
// (per-domain logs, collector log, finish times) is returned for
// equivalence checking.
func buildRandomWorld(env *Env, seed int64, nDomains, steps int) (logs [][]string, collected *[]string) {
	logs = make([][]string, nDomains)
	var shared atomic.Int64
	collector := &[]string{}
	done := env.NewEvent()
	var finished atomic.Int64
	for d := 0; d < nDomains; d++ {
		d := d
		rng := rand.New(rand.NewSource(seed + int64(d)*997))
		env.Process(fmt.Sprintf("dom%d", d), func(p *Proc) {
			p.SetDomain(d + 1)
			local := env.NewEvent()
			env.Process(fmt.Sprintf("helper%d", d), func(q *Proc) {
				q.SetDomain(d + 1)
				q.Wait(local)
				logs[d] = append(logs[d], fmt.Sprintf("helper@%v", q.Now()))
			})
			for i := 0; i < steps; i++ {
				p.Sleep(time.Duration(rng.Intn(5)) * time.Millisecond)
				logs[d] = append(logs[d], fmt.Sprintf("s%d@%v", i, p.Now()))
				if i == steps/2 {
					p.Trigger(local)
				}
				if rng.Intn(3) == 0 {
					ev := env.NewEvent()
					if p.WaitTimeout(ev, time.Duration(rng.Intn(3))*time.Millisecond) {
						logs[d] = append(logs[d], "impossible")
					}
				}
				shared.Add(1)
			}
			p.SetDomain(0)
			p.Sleep(0) // step boundary: the next step runs outside the round
			*collector = append(*collector, fmt.Sprintf("d%d@%v", d, p.Now()))
			if finished.Add(1) == int64(nDomains) {
				p.Trigger(done)
			}
		})
	}
	env.Process("collector", func(p *Proc) {
		p.Wait(done)
		*collector = append(*collector, fmt.Sprintf("all@%v n=%d", p.Now(), shared.Load()))
	})
	return logs, collector
}

// TestParallelSchedulerMatchesSequential is the kernel-level golden-trace
// test: 100 random seeds, each world run under Run and RunParallel, with
// byte-identical (at, seq) traces and identical observable outcomes.
func TestParallelSchedulerMatchesSequential(t *testing.T) {
	for seed := int64(1); seed <= 100; seed++ {
		nDomains := 2 + int(seed%7)
		steps := 4 + int(seed%11)

		seqEnv := NewEnv(seed)
		seqEnv.StartTrace()
		seqLogs, seqCol := buildRandomWorld(seqEnv, seed, nDomains, steps)
		seqEnd := seqEnv.Run(0)

		parEnv := NewEnv(seed)
		parEnv.StartTrace()
		parLogs, parCol := buildRandomWorld(parEnv, seed, nDomains, steps)
		parEnd := parEnv.RunParallel(0, 4)

		if seqEnd != parEnd {
			t.Fatalf("seed %d: end time %v (seq) vs %v (par)", seed, seqEnd, parEnd)
		}
		st, pt := seqEnv.Trace(), parEnv.Trace()
		if len(st) != len(pt) {
			t.Fatalf("seed %d: trace length %d (seq) vs %d (par)", seed, len(st), len(pt))
		}
		for i := range st {
			if st[i] != pt[i] {
				t.Fatalf("seed %d: trace[%d] = %+v (seq) vs %+v (par)", seed, i, st[i], pt[i])
			}
		}
		if fmt.Sprint(seqLogs) != fmt.Sprint(parLogs) {
			t.Fatalf("seed %d: domain logs differ:\nseq: %v\npar: %v", seed, seqLogs, parLogs)
		}
		if fmt.Sprint(*seqCol) != fmt.Sprint(*parCol) {
			t.Fatalf("seed %d: collector differs:\nseq: %v\npar: %v", seed, *seqCol, *parCol)
		}
		if seed == 1 {
			if r := parEnv.Stats().ParallelRounds; r == 0 {
				t.Fatalf("parallel run executed no rounds — the test exercises nothing")
			}
		}
	}
}

// TestParallelRoundsActuallyForm pins that same-instant distinct-domain
// steps group into rounds (not just degenerate size-1 runs).
func TestParallelRoundsActuallyForm(t *testing.T) {
	env := NewEnv(1)
	const n = 8
	for d := 0; d < n; d++ {
		d := d
		env.Process(fmt.Sprintf("d%d", d), func(p *Proc) {
			p.SetDomain(d + 1)
			for i := 0; i < 10; i++ {
				p.Sleep(time.Millisecond) // all domains due at the same instants
			}
		})
	}
	env.RunParallel(0, 4)
	st := env.Stats()
	if st.ParallelRounds == 0 || st.ParallelSteps < 50 {
		t.Fatalf("rounds=%d steps=%d; want many multi-step rounds", st.ParallelRounds, st.ParallelSteps)
	}
}

// TestBareTriggerWithWaitersPanicsInRound pins the discipline check that
// catches unattributed triggers during parallel rounds.
func TestBareTriggerWithWaitersPanicsInRound(t *testing.T) {
	env := NewEnv(1)
	ev := env.NewEvent()
	env.Process("waiter", func(p *Proc) { p.Wait(ev) })
	var recovered atomic.Bool
	for d := 0; d < 2; d++ {
		d := d
		env.Process(fmt.Sprintf("d%d", d), func(p *Proc) {
			p.SetDomain(d + 1)
			p.Sleep(time.Millisecond)
			if d == 0 {
				defer func() {
					if recover() != nil {
						recovered.Store(true)
						p.Trigger(ev) // release the waiter so the run drains
					}
				}()
				ev.Trigger() // bare: must panic inside a round
			} else {
				p.Sleep(time.Millisecond)
			}
		})
	}
	env.RunParallel(0, 2)
	if !recovered.Load() {
		t.Fatal("bare Event.Trigger with waiters did not panic during a round")
	}
}
