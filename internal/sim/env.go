// Package sim provides a deterministic discrete-event simulation kernel.
//
// All components of the backup system (storage arrays, network links,
// databases, workloads) execute as simulated processes on a shared virtual
// clock. Processes are ordinary goroutines that cooperate with the scheduler:
// in the sequential scheduler exactly one process runs at a time, and time
// advances only when every process is blocked in Sleep or Wait. Given a fixed
// RNG seed, runs are fully reproducible, which is what lets the experiment
// harness regenerate the paper's figures deterministically.
//
// The kernel has a two-tier step model. Ordinary steps resume a process
// goroutine (one resume+yield channel round trip — a "handoff"); inline
// steps (Env.Immediate, Env.After, Proc.Do) run a plain function on the
// scheduler goroutine with no handoff at all, which is what makes
// zero-duration bookkeeping work (apply a replicated record, requeue a
// controller key) nearly free. RunParallel additionally executes runs of
// same-instant steps whose processes belong to pairwise-distinct domains
// concurrently on a bounded worker pool, committing their kernel effects in
// step order afterwards so the (at, seq) total order — and therefore every
// simulation outcome — is byte-identical to the sequential scheduler's.
package sim

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Env is a simulation environment: a virtual clock plus an event queue.
// Create one with NewEnv, start processes with Process, then call Run.
//
// The event queue is a binary heap of indexes into a slab of scheduled
// entries. Entries are recycled through a free-list, so steady-state
// scheduling allocates nothing — the kernel hot path is what bounds how
// large a scenario (e.g. the E11 tenant fleet) is affordable.
//
// Same-timestamp resumes are batched: an entry scheduled AT the current
// instant while the loop is running (the bulk of event traffic — every
// Event.Trigger resumes its waiters "now") bypasses the heap into a FIFO
// that drains before time advances. Entries created during an instant
// always carry larger seqs than every heap entry due at that instant, so
// processing heap-due-now first and then the FIFO preserves the exact
// (at, seq) total order the heap alone would produce — batching changes
// the cost per resume, never the schedule.
type Env struct {
	now       time.Duration
	slab      []scheduled // entry storage; index 0 is a reserved sentinel
	heap      []int32     // heap of slab indexes ordered by (at, seq)
	today     []int32     // FIFO of entries due at the current instant
	todayHead int         // next today entry to pop
	free      []int32     // recycled slab indexes
	seq       int64       // tiebreaker for events at the same timestamp
	rng       *rand.Rand
	yield     chan struct{} // signalled by a process when it blocks or exits
	running   bool
	blocked   atomic.Int64 // processes waiting on an untriggered Event
	procs     atomic.Int64 // live (started, unfinished) processes

	// Parallel-round state (RunParallel). inRound is true while a round's
	// processes execute concurrently; allocMu serializes their slab
	// allocations; held parks the entry that terminated round collection.
	inRound    bool
	allocMu    sync.Mutex
	held       entryRef
	round      []entryRef
	roundProcs []*Proc
	segs       []stepSeg
	domSeen    map[int]int64
	domEpoch   int64

	stats   statCounters
	traceOn bool
	trace   []TraceEntry

	// advance holds the registered OnAdvance observers, called in
	// registration order whenever virtual time moves forward.
	advance []func(from, to time.Duration)
}

// statCounters is the internal, partly-atomic form of Stats. Fields mutated
// only by the scheduler goroutine (or under the handoff protocol's
// happens-before chain) are plain; InlineSteps is atomic because Proc.Do
// runs on process goroutines that execute concurrently during rounds.
type statCounters struct {
	heapPushes     int64
	fifoBypasses   int64
	handoffs       int64
	inlineSteps    atomic.Int64
	timerCancels   int64
	parallelRounds int64
	parallelSteps  int64
}

// Stats is a snapshot of the kernel's scheduling counters — the measured
// form of the execution-model claims (how many steps the heap actually
// ordered, how many bypassed it, how many avoided a goroutine handoff
// entirely, how much ran in parallel rounds).
type Stats struct {
	HeapPushes     int64 // entries ordered through the binary heap
	FifoBypasses   int64 // same-instant entries that skipped the heap
	Handoffs       int64 // process resumes (resume+yield channel round trips)
	InlineSteps    int64 // zero-duration steps run with no handoff
	TimerCancels   int64 // timer entries removed from the heap eagerly
	ParallelRounds int64 // rounds of same-instant steps run concurrently
	ParallelSteps  int64 // steps executed inside those rounds
	ParallelMerges int64 // round commits merged back into the (at,seq) order
}

// Stats returns a snapshot of the kernel counters.
func (e *Env) Stats() Stats {
	return Stats{
		HeapPushes:     e.stats.heapPushes,
		FifoBypasses:   e.stats.fifoBypasses,
		Handoffs:       e.stats.handoffs,
		InlineSteps:    e.stats.inlineSteps.Load(),
		TimerCancels:   e.stats.timerCancels,
		ParallelRounds: e.stats.parallelRounds,
		ParallelSteps:  e.stats.parallelSteps,
		ParallelMerges: e.stats.parallelRounds,
	}
}

// TraceEntry is one executed step in the kernel's total order.
type TraceEntry struct {
	At  time.Duration
	Seq int64
}

// StartTrace begins recording the (at, seq) pair of every executed step.
// The golden-trace determinism test uses it to prove the parallel scheduler
// replays the sequential order exactly.
func (e *Env) StartTrace() {
	e.trace = e.trace[:0]
	e.traceOn = true
}

// Trace returns the steps recorded since StartTrace.
func (e *Env) Trace() []TraceEntry { return e.trace }

// OnAdvance registers fn to be called every time virtual time advances: just
// before the clock moves from `from` to `to` (to > from), including the final
// cut to the horizon. Observers run on the scheduler goroutine between
// instants — every process is parked, no step is executing, and (under
// RunParallel) no round is in flight — so they may freely READ simulation
// state. They must not schedule events, start processes, trigger events, or
// touch the RNG: an observer consumes no seqs and adds no steps, which is
// what lets the telemetry plane sample on the virtual clock without
// perturbing the (at, seq) total order.
func (e *Env) OnAdvance(fn func(from, to time.Duration)) {
	e.advance = append(e.advance, fn)
}

// advanceTo moves the clock to `to`, notifying OnAdvance observers first
// (they observe the fully-drained state of the instant being left).
func (e *Env) advanceTo(to time.Duration) {
	if to > e.now {
		for _, fn := range e.advance {
			fn(e.now, to)
		}
	}
	e.now = to
}

// NewEnv returns an environment whose random source is seeded with seed.
// The same seed always yields the same execution.
func NewEnv(seed int64) *Env {
	return &Env{
		rng:     rand.New(rand.NewSource(seed)),
		yield:   make(chan struct{}),
		slab:    make([]scheduled, 1), // slab[0] reserved so ref 0 means "none"
		domSeen: make(map[int]int64),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() time.Duration { return e.now }

// Rand returns the environment's deterministic random source.
func (e *Env) Rand() *rand.Rand { return e.rng }

// scheduled is one entry in the event queue: resume a process (or run an
// inline function) at time at. Entries can be canceled in place (e.g. a
// timeout superseded by its event); heap-resident entries are removed
// eagerly on cancel, FIFO-resident ones are dropped when popped. Entries
// live in the environment's slab and are addressed by index (entryRef)
// because the slab reallocates as it grows. pos is the entry's index in the
// heap (-1 when it is not heap-resident) so cancellation can remove it
// without a scan. seq 0 marks a round-buffered entry whose position in the
// total order is assigned at round commit.
type scheduled struct {
	at       time.Duration
	seq      int64
	proc     *Proc
	fn       func()
	pos      int32
	canceled bool
}

// entryRef addresses a slab entry; 0 means "no entry" (slab[0] is reserved).
type entryRef = int32

// allocEntry returns a fresh or recycled slab index.
func (e *Env) allocEntry() entryRef {
	if n := len(e.free); n > 0 {
		id := e.free[n-1]
		e.free = e.free[:n-1]
		return id
	}
	e.slab = append(e.slab, scheduled{})
	return entryRef(len(e.slab) - 1)
}

// freeEntry recycles a popped entry. Callers must not hold its ref after
// this; cancellation refs are only ever used while an entry is pending.
func (e *Env) freeEntry(id entryRef) {
	e.slab[id] = scheduled{pos: -1} // drop the proc pointer
	e.free = append(e.free, id)
}

// cancelEntry cancels a pending entry. Heap-resident entries are removed
// and recycled immediately — a canceled timer must not occupy heap space
// for its full original duration. FIFO-resident (or round-buffered)
// entries are marked and dropped when they surface.
func (e *Env) cancelEntry(id entryRef) {
	ent := &e.slab[id]
	if ent.pos >= 0 {
		e.heapRemoveAt(int(ent.pos))
		e.freeEntry(id)
		e.stats.timerCancels++
		return
	}
	ent.canceled = true
}

func (e *Env) schedule(p *Proc, at time.Duration) { e.scheduleEntry(p, at) }

func (e *Env) scheduleEntry(p *Proc, at time.Duration) entryRef {
	e.seq++
	id := e.allocEntry()
	e.slab[id] = scheduled{at: at, seq: e.seq, proc: p, pos: -1}
	// Same-instant fast path: while the loop is draining the current
	// instant, a resume due "now" skips both heap sifts — FIFO order is seq
	// order because seq only grows. Outside Run the heap keeps everything,
	// so pre-run setup entries order with scheduled ones as before.
	if e.running && at == e.now {
		e.today = append(e.today, id)
		e.stats.fifoBypasses++
	} else {
		e.heapPush(id)
		e.stats.heapPushes++
	}
	return id
}

// scheduleFn queues fn to run inline on the scheduler goroutine at time at:
// a step in the (at, seq) order with no process and no handoff.
func (e *Env) scheduleFn(at time.Duration, fn func()) {
	if e.inRound {
		panic("sim: Immediate/After called during a parallel round")
	}
	e.seq++
	id := e.allocEntry()
	e.slab[id] = scheduled{at: at, seq: e.seq, fn: fn, pos: -1}
	if e.running && at == e.now {
		e.today = append(e.today, id)
		e.stats.fifoBypasses++
	} else {
		e.heapPush(id)
		e.stats.heapPushes++
	}
}

// Immediate queues fn as an inline step at the current instant, ordered
// after everything already scheduled. It is the no-handoff replacement for
// spawning a throwaway process to run zero-duration work.
func (e *Env) Immediate(fn func()) { e.scheduleFn(e.now, fn) }

// After queues fn as an inline step d from now (d < 0 is treated as zero).
func (e *Env) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.scheduleFn(e.now+d, fn)
}

// entryLess orders heap entries by (at, seq).
func (e *Env) entryLess(a, b entryRef) bool {
	ea, eb := &e.slab[a], &e.slab[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

func (e *Env) heapPush(id entryRef) {
	e.heap = append(e.heap, id)
	i := len(e.heap) - 1
	e.slab[id].pos = int32(i)
	e.siftUp(i)
}

func (e *Env) heapPop() entryRef {
	top := e.heap[0]
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap = e.heap[:n]
	e.slab[top].pos = -1
	if n > 0 {
		e.slab[e.heap[0]].pos = 0
		if n > 1 {
			e.siftDown(0)
		}
	}
	return top
}

// heapRemoveAt deletes the entry at heap index i, restoring heap order.
func (e *Env) heapRemoveAt(i int) {
	n := len(e.heap) - 1
	id := e.heap[i]
	e.slab[id].pos = -1
	if i != n {
		moved := e.heap[n]
		e.heap[i] = moved
		e.slab[moved].pos = int32(i)
		e.heap = e.heap[:n]
		e.siftDown(i)
		if int(e.slab[moved].pos) == i {
			e.siftUp(i)
		}
	} else {
		e.heap = e.heap[:n]
	}
}

func (e *Env) siftUp(i int) {
	h := e.heap
	for i > 0 {
		parent := (i - 1) / 2
		if !e.entryLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		e.slab[h[i]].pos = int32(i)
		e.slab[h[parent]].pos = int32(parent)
		i = parent
	}
}

func (e *Env) siftDown(i int) {
	h := e.heap
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && e.entryLess(h[right], h[left]) {
			least = right
		}
		if !e.entryLess(h[least], h[i]) {
			return
		}
		h[i], h[least] = h[least], h[i]
		e.slab[h[i]].pos = int32(i)
		e.slab[h[least]].pos = int32(least)
		i = least
	}
}

// popDue pops the next live entry due at the current instant — heap
// entries due now first (their seqs precede every FIFO entry, which was
// created during this instant), then the same-timestamp FIFO — dropping
// canceled entries and entries of finished processes. It returns 0 when
// the instant is fully drained.
func (e *Env) popDue() entryRef {
	for {
		var top entryRef
		switch {
		case len(e.heap) > 0 && e.slab[e.heap[0]].at <= e.now:
			top = e.heapPop()
		case e.todayHead < len(e.today):
			top = e.today[e.todayHead]
			e.todayHead++
		case e.todayHead > 0:
			// Instant fully drained: recycle the FIFO backing storage.
			e.today = e.today[:0]
			e.todayHead = 0
			continue
		default:
			return 0
		}
		if e.slab[top].canceled || (e.slab[top].proc != nil && e.slab[top].proc.done) {
			e.freeEntry(top)
			continue
		}
		return top
	}
}

// takeDue returns the next due entry, preferring the one a round collection
// parked (it was popped before the round flushed and is next in seq order —
// everything the round scheduled carries a later seq).
func (e *Env) takeDue() entryRef {
	if e.held != 0 {
		top := e.held
		e.held = 0
		return top
	}
	return e.popDue()
}

// Run executes scheduled events until the queue drains or virtual time would
// pass horizon (horizon <= 0 means no limit). It returns the virtual time at
// which the simulation stopped.
func (e *Env) Run(horizon time.Duration) time.Duration { return e.run(horizon, 1) }

// RunParallel is Run with same-instant steps of pairwise-distinct process
// domains (see Proc.SetDomain) executed concurrently on up to workers
// goroutines. Kernel effects of concurrent steps are buffered and committed
// in step order, so the resulting (at, seq) total order — and every
// simulation outcome — is identical to Run's. workers < 2 degenerates to
// the sequential scheduler.
func (e *Env) RunParallel(horizon time.Duration, workers int) time.Duration {
	if workers < 1 {
		workers = 1
	}
	return e.run(horizon, workers)
}

func (e *Env) run(horizon time.Duration, workers int) time.Duration {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for {
		top := e.takeDue()
		if top == 0 {
			// Advance time to the next live entry — canceled timers and
			// finished procs are dropped first so they never move the clock.
			if len(e.heap) == 0 {
				return e.now
			}
			next := e.heap[0]
			if e.slab[next].canceled || (e.slab[next].proc != nil && e.slab[next].proc.done) {
				e.heapPop()
				e.freeEntry(next)
				continue
			}
			if horizon > 0 && e.slab[next].at > horizon {
				e.advanceTo(horizon)
				return e.now
			}
			e.advanceTo(e.slab[next].at)
			continue
		}
		if workers > 1 {
			if d := e.entryDomain(top); d != 0 {
				e.collectRound(top, d)
				if len(e.round) > 1 {
					e.execRound(workers)
					continue
				}
				top = e.round[0]
			}
		}
		e.execOne(top)
	}
}

// entryDomain returns the parallel domain of an entry's step: the process's
// domain, or 0 (never concurrent) for inline-function steps.
func (e *Env) entryDomain(id entryRef) int {
	if p := e.slab[id].proc; p != nil {
		return p.domain
	}
	return 0
}

// execOne runs a single step sequentially: copy out, recycle the slot, and
// either run the inline function or hand off to the process goroutine.
func (e *Env) execOne(top entryRef) {
	ent := e.slab[top]
	e.freeEntry(top)
	if e.traceOn {
		e.trace = append(e.trace, TraceEntry{At: ent.at, Seq: ent.seq})
	}
	if ent.fn != nil {
		e.stats.inlineSteps.Add(1)
		ent.fn()
		return
	}
	e.step(ent.proc)
}

// collectRound gathers the maximal run of due entries, starting at top,
// whose processes have pairwise-distinct non-zero domains. Collection stops
// at (and parks in e.held) the first entry that must observe the round's
// effects sequentially: an inline step, a domain-0 process, or a second
// step of a domain already in the round. Pre-popping is sound because every
// entry a round step schedules carries a later seq than every entry that
// was already due — the collected run is exactly the next len(round)
// sequential steps.
func (e *Env) collectRound(top entryRef, domain int) {
	e.domEpoch++
	e.round = e.round[:0]
	e.round = append(e.round, top)
	e.domSeen[domain] = e.domEpoch
	for {
		next := e.popDue()
		if next == 0 {
			return
		}
		d := e.entryDomain(next)
		if d == 0 || e.domSeen[d] == e.domEpoch {
			e.held = next
			return
		}
		e.domSeen[d] = e.domEpoch
		e.round = append(e.round, next)
	}
}

// execRound runs the collected round: dispatch up to workers steps at a
// time, then commit each step's buffered kernel effects in step (= seq)
// order, which reproduces exactly the seq assignments the sequential
// scheduler would have made.
func (e *Env) execRound(workers int) {
	k := len(e.round)
	if cap(e.roundProcs) < k {
		e.roundProcs = make([]*Proc, 0, k*2)
		e.segs = make([]stepSeg, k*2)
	}
	e.roundProcs = e.roundProcs[:0]
	for _, ref := range e.round {
		ent := e.slab[ref]
		if e.traceOn {
			e.trace = append(e.trace, TraceEntry{At: ent.at, Seq: ent.seq})
		}
		e.roundProcs = append(e.roundProcs, ent.proc)
		e.freeEntry(ref)
	}
	for i, p := range e.roundProcs {
		seg := &e.segs[i]
		seg.effs = seg.effs[:0]
		p.seg = seg
	}
	e.inRound = true
	next, inflight := 0, 0
	for next < k && inflight < workers {
		e.stats.handoffs++
		e.roundProcs[next].resume <- struct{}{}
		next++
		inflight++
	}
	for done := 0; done < k; done++ {
		<-e.yield
		if next < k {
			e.stats.handoffs++
			e.roundProcs[next].resume <- struct{}{}
			next++
		}
	}
	e.inRound = false
	for _, p := range e.roundProcs {
		p.seg = nil
	}
	for i := 0; i < k; i++ {
		e.commitSeg(&e.segs[i])
	}
	e.stats.parallelRounds++
	e.stats.parallelSteps += int64(k)
}

// step resumes one process and waits for it to block or finish.
func (e *Env) step(p *Proc) {
	e.stats.handoffs++
	p.resume <- struct{}{}
	<-e.yield
}

// effect is one deferred kernel mutation recorded by a round step. A
// schedule effect's entry already sits in the slab (allocated eagerly so
// its ref is usable for timer registration); commit assigns its seq and
// queues it. A cancel effect targets an entry committed earlier.
type effect struct {
	ref      entryRef
	isCancel bool
}

// stepSeg buffers one round step's kernel effects in program order.
type stepSeg struct {
	effs []effect
}

// scheduleVia schedules target to resume at time at on behalf of p: directly
// when p runs sequentially, buffered into p's segment during a round.
func (e *Env) scheduleVia(p *Proc, target *Proc, at time.Duration) entryRef {
	if p == nil || p.seg == nil {
		return e.scheduleEntry(target, at)
	}
	e.allocMu.Lock()
	id := e.allocEntry()
	e.slab[id] = scheduled{at: at, proc: target, pos: -1}
	e.allocMu.Unlock()
	p.seg.effs = append(p.seg.effs, effect{ref: id})
	return id
}

// cancelVia cancels a pending entry on behalf of p (see scheduleVia).
func (e *Env) cancelVia(p *Proc, ref entryRef) {
	if p == nil || p.seg == nil {
		e.cancelEntry(ref)
		return
	}
	p.seg.effs = append(p.seg.effs, effect{ref: ref, isCancel: true})
}

// commitSeg replays one round step's effects: schedules take the next seqs
// (exactly the values the sequential scheduler would have assigned, since
// segment order is step order and effects are in program order) and enter
// the FIFO or heap under the usual same-instant rule; cancels resolve
// against entries committed by earlier segments.
func (e *Env) commitSeg(seg *stepSeg) {
	for _, eff := range seg.effs {
		ent := &e.slab[eff.ref]
		if eff.isCancel {
			if ent.seq == 0 {
				ent.canceled = true // uncommitted: dropped by its own commit
				continue
			}
			e.cancelEntry(eff.ref)
			continue
		}
		e.seq++
		ent.seq = e.seq
		if ent.canceled {
			// Canceled within the round: the seq is consumed (as it would be
			// sequentially) but the entry never queues.
			e.freeEntry(eff.ref)
			continue
		}
		if ent.at == e.now {
			e.today = append(e.today, eff.ref)
			e.stats.fifoBypasses++
		} else {
			e.heapPush(eff.ref)
			e.stats.heapPushes++
		}
	}
}

// queued returns the number of pending entries across the heap and the
// same-instant FIFO.
func (e *Env) queued() int { return len(e.heap) + len(e.today) - e.todayHead }

// Pending returns the number of live queue entries (canceled FIFO entries
// not yet dropped still count). The timer-leak regression test watches it.
func (e *Env) Pending() int { return e.queued() }

// Idle reports whether no events are pending. Processes blocked on
// untriggered events do not count as pending work.
func (e *Env) Idle() bool { return e.queued() == 0 }

// Blocked returns the number of live processes waiting on events that have
// not triggered. A nonzero value after Run returns usually indicates a
// modelling bug (a deadlocked process), unless those processes are servers
// intentionally parked on demand queues.
func (e *Env) Blocked() int { return int(e.blocked.Load()) }

// Procs returns the number of live processes.
func (e *Env) Procs() int { return int(e.procs.Load()) }

func (e *Env) String() string {
	return fmt.Sprintf("sim.Env{now=%v queued=%d procs=%d blocked=%d}", e.now, e.queued(), e.Procs(), e.Blocked())
}
