// Package sim provides a deterministic discrete-event simulation kernel.
//
// All components of the backup system (storage arrays, network links,
// databases, workloads) execute as simulated processes on a shared virtual
// clock. Processes are ordinary goroutines that cooperate with the scheduler:
// exactly one process runs at a time, and time advances only when every
// process is blocked in Sleep or Wait. Given a fixed RNG seed, runs are fully
// reproducible, which is what lets the experiment harness regenerate the
// paper's figures deterministically.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Env is a simulation environment: a virtual clock plus an event queue.
// Create one with NewEnv, start processes with Process, then call Run.
type Env struct {
	now     time.Duration
	queue   eventQueue
	seq     int64 // tiebreaker for events at the same timestamp
	rng     *rand.Rand
	yield   chan struct{} // signalled by a process when it blocks or exits
	running bool
	blocked int // processes waiting on an untriggered Event
	procs   int // live (started, unfinished) processes
}

// NewEnv returns an environment whose random source is seeded with seed.
// The same seed always yields the same execution.
func NewEnv(seed int64) *Env {
	return &Env{
		rng:   rand.New(rand.NewSource(seed)),
		yield: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() time.Duration { return e.now }

// Rand returns the environment's deterministic random source.
func (e *Env) Rand() *rand.Rand { return e.rng }

// scheduled is one entry in the event queue: resume a process at time at.
// Entries can be canceled in place (e.g. a timeout superseded by its event);
// the scheduler skips canceled entries when it pops them.
type scheduled struct {
	at       time.Duration
	seq      int64
	proc     *Proc
	canceled bool
}

type eventQueue []*scheduled

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*scheduled)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

func (e *Env) schedule(p *Proc, at time.Duration) { e.scheduleEntry(p, at) }

func (e *Env) scheduleEntry(p *Proc, at time.Duration) *scheduled {
	e.seq++
	it := &scheduled{at: at, seq: e.seq, proc: p}
	heap.Push(&e.queue, it)
	return it
}

// Run executes scheduled events until the queue drains or virtual time would
// pass horizon (horizon <= 0 means no limit). It returns the virtual time at
// which the simulation stopped.
func (e *Env) Run(horizon time.Duration) time.Duration {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 {
		next := e.queue[0]
		if horizon > 0 && next.at > horizon {
			e.now = horizon
			return e.now
		}
		heap.Pop(&e.queue)
		if next.canceled || next.proc.done {
			continue
		}
		if next.at > e.now {
			e.now = next.at
		}
		e.step(next.proc)
	}
	return e.now
}

// step resumes one process and waits for it to block or finish.
func (e *Env) step(p *Proc) {
	p.resume <- struct{}{}
	<-e.yield
}

// Idle reports whether no events are pending. Processes blocked on
// untriggered events do not count as pending work.
func (e *Env) Idle() bool { return len(e.queue) == 0 }

// Blocked returns the number of live processes waiting on events that have
// not triggered. A nonzero value after Run returns usually indicates a
// modelling bug (a deadlocked process), unless those processes are servers
// intentionally parked on demand queues.
func (e *Env) Blocked() int { return e.blocked }

// Procs returns the number of live processes.
func (e *Env) Procs() int { return e.procs }

func (e *Env) String() string {
	return fmt.Sprintf("sim.Env{now=%v queued=%d procs=%d blocked=%d}", e.now, len(e.queue), e.procs, e.blocked)
}
