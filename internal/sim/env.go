// Package sim provides a deterministic discrete-event simulation kernel.
//
// All components of the backup system (storage arrays, network links,
// databases, workloads) execute as simulated processes on a shared virtual
// clock. Processes are ordinary goroutines that cooperate with the scheduler:
// exactly one process runs at a time, and time advances only when every
// process is blocked in Sleep or Wait. Given a fixed RNG seed, runs are fully
// reproducible, which is what lets the experiment harness regenerate the
// paper's figures deterministically.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Env is a simulation environment: a virtual clock plus an event queue.
// Create one with NewEnv, start processes with Process, then call Run.
//
// The event queue is a binary heap of indexes into a slab of scheduled
// entries. Entries are recycled through a free-list, so steady-state
// scheduling allocates nothing — the kernel hot path is what bounds how
// large a scenario (e.g. the E11 tenant fleet) is affordable.
//
// Same-timestamp resumes are batched: an entry scheduled AT the current
// instant while the loop is running (the bulk of event traffic — every
// Event.Trigger resumes its waiters "now") bypasses the heap into a FIFO
// that drains before time advances. Entries created during an instant
// always carry larger seqs than every heap entry due at that instant, so
// processing heap-due-now first and then the FIFO preserves the exact
// (at, seq) total order the heap alone would produce — batching changes
// the cost per resume, never the schedule.
type Env struct {
	now       time.Duration
	slab      []scheduled // entry storage; index 0 is a reserved sentinel
	heap      []int32     // heap of slab indexes ordered by (at, seq)
	today     []int32     // FIFO of entries due at the current instant
	todayHead int         // next today entry to pop
	free      []int32     // recycled slab indexes
	seq       int64       // tiebreaker for events at the same timestamp
	rng       *rand.Rand
	yield     chan struct{} // signalled by a process when it blocks or exits
	running   bool
	blocked   int // processes waiting on an untriggered Event
	procs     int // live (started, unfinished) processes
}

// NewEnv returns an environment whose random source is seeded with seed.
// The same seed always yields the same execution.
func NewEnv(seed int64) *Env {
	return &Env{
		rng:   rand.New(rand.NewSource(seed)),
		yield: make(chan struct{}),
		slab:  make([]scheduled, 1), // slab[0] reserved so ref 0 means "none"
	}
}

// Now returns the current virtual time.
func (e *Env) Now() time.Duration { return e.now }

// Rand returns the environment's deterministic random source.
func (e *Env) Rand() *rand.Rand { return e.rng }

// scheduled is one entry in the event queue: resume a process at time at.
// Entries can be canceled in place (e.g. a timeout superseded by its event);
// the scheduler skips canceled entries when it pops them. Entries live in
// the environment's slab and are addressed by index (entryRef) because the
// slab reallocates as it grows.
type scheduled struct {
	at       time.Duration
	seq      int64
	proc     *Proc
	canceled bool
}

// entryRef addresses a slab entry; 0 means "no entry" (slab[0] is reserved).
type entryRef = int32

// allocEntry returns a fresh or recycled slab index.
func (e *Env) allocEntry() entryRef {
	if n := len(e.free); n > 0 {
		id := e.free[n-1]
		e.free = e.free[:n-1]
		return id
	}
	e.slab = append(e.slab, scheduled{})
	return entryRef(len(e.slab) - 1)
}

// freeEntry recycles a popped entry. Callers must not hold its ref after
// this; cancellation refs are only ever used while an entry is pending.
func (e *Env) freeEntry(id entryRef) {
	e.slab[id] = scheduled{} // drop the proc pointer
	e.free = append(e.free, id)
}

// cancelEntry marks a pending entry canceled; the scheduler drops it on pop.
func (e *Env) cancelEntry(id entryRef) { e.slab[id].canceled = true }

func (e *Env) schedule(p *Proc, at time.Duration) { e.scheduleEntry(p, at) }

func (e *Env) scheduleEntry(p *Proc, at time.Duration) entryRef {
	e.seq++
	id := e.allocEntry()
	e.slab[id] = scheduled{at: at, seq: e.seq, proc: p}
	// Same-instant fast path: while the loop is draining the current
	// instant, a resume due "now" skips both heap sifts — FIFO order is seq
	// order because seq only grows. Outside Run the heap keeps everything,
	// so pre-run setup entries order with scheduled ones as before.
	if e.running && at == e.now {
		e.today = append(e.today, id)
	} else {
		e.heapPush(id)
	}
	return id
}

// entryLess orders heap entries by (at, seq).
func (e *Env) entryLess(a, b entryRef) bool {
	ea, eb := &e.slab[a], &e.slab[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

func (e *Env) heapPush(id entryRef) {
	e.heap = append(e.heap, id)
	e.siftUp(len(e.heap) - 1)
}

func (e *Env) heapPop() entryRef {
	top := e.heap[0]
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap = e.heap[:n]
	if n > 1 {
		e.siftDown(0)
	}
	return top
}

func (e *Env) siftUp(i int) {
	h := e.heap
	for i > 0 {
		parent := (i - 1) / 2
		if !e.entryLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (e *Env) siftDown(i int) {
	h := e.heap
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && e.entryLess(h[right], h[left]) {
			least = right
		}
		if !e.entryLess(h[least], h[i]) {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// Run executes scheduled events until the queue drains or virtual time would
// pass horizon (horizon <= 0 means no limit). It returns the virtual time at
// which the simulation stopped.
func (e *Env) Run(horizon time.Duration) time.Duration {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for {
		// Drain the current instant: heap entries due now first (their seqs
		// precede every FIFO entry, which was created during this instant),
		// then the same-timestamp FIFO, which may grow as processes resume.
		var top entryRef
		switch {
		case len(e.heap) > 0 && e.slab[e.heap[0]].at <= e.now:
			top = e.heapPop()
		case e.todayHead < len(e.today):
			top = e.today[e.todayHead]
			e.todayHead++
		case e.todayHead > 0:
			// Instant fully drained: recycle the FIFO backing storage.
			e.today = e.today[:0]
			e.todayHead = 0
			continue
		case len(e.heap) > 0:
			// Advance time to the next live entry — canceled timers and
			// finished procs are dropped first so they never move the clock.
			next := e.heap[0]
			if e.slab[next].canceled || e.slab[next].proc.done {
				e.heapPop()
				e.freeEntry(next)
				continue
			}
			if horizon > 0 && e.slab[next].at > horizon {
				e.now = horizon
				return e.now
			}
			e.now = e.slab[next].at
			continue
		default:
			return e.now
		}
		// Copy out before recycling: step() may schedule and reuse this slot.
		ent := e.slab[top]
		e.freeEntry(top)
		if ent.canceled || ent.proc.done {
			continue
		}
		e.step(ent.proc)
	}
}

// step resumes one process and waits for it to block or finish.
func (e *Env) step(p *Proc) {
	p.resume <- struct{}{}
	<-e.yield
}

// queued returns the number of pending entries across the heap and the
// same-instant FIFO.
func (e *Env) queued() int { return len(e.heap) + len(e.today) - e.todayHead }

// Idle reports whether no events are pending. Processes blocked on
// untriggered events do not count as pending work.
func (e *Env) Idle() bool { return e.queued() == 0 }

// Blocked returns the number of live processes waiting on events that have
// not triggered. A nonzero value after Run returns usually indicates a
// modelling bug (a deadlocked process), unless those processes are servers
// intentionally parked on demand queues.
func (e *Env) Blocked() int { return e.blocked }

// Procs returns the number of live processes.
func (e *Env) Procs() int { return e.procs }

func (e *Env) String() string {
	return fmt.Sprintf("sim.Env{now=%v queued=%d procs=%d blocked=%d}", e.now, e.queued(), e.procs, e.blocked)
}
