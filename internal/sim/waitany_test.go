package sim

import (
	"testing"
	"time"
)

func TestWaitAnyFirstTriggeredWins(t *testing.T) {
	env := NewEnv(1)
	a, b := env.NewEvent(), env.NewEvent()
	var idx int
	var at time.Duration
	env.Process("w", func(p *Proc) {
		idx = p.WaitAny(a, b)
		at = p.Now()
	})
	env.Process("t", func(p *Proc) {
		p.Sleep(4 * time.Millisecond)
		b.Trigger()
	})
	env.Run(0)
	if idx != 1 || at != 4*time.Millisecond {
		t.Fatalf("idx=%d at=%v, want 1 at 4ms", idx, at)
	}
}

func TestWaitAnyAlreadyTriggered(t *testing.T) {
	env := NewEnv(1)
	a, b := env.NewEvent(), env.NewEvent()
	b.Trigger()
	var idx = -1
	env.Process("w", func(p *Proc) { idx = p.WaitAny(a, b) })
	env.Run(0)
	if idx != 1 {
		t.Fatalf("idx = %d", idx)
	}
}

func TestWaitAnyNoDoubleResume(t *testing.T) {
	env := NewEnv(1)
	a, b := env.NewEvent(), env.NewEvent()
	resumes := 0
	env.Process("w", func(p *Proc) {
		p.WaitAny(a, b)
		resumes++
		p.Sleep(50 * time.Millisecond) // stay alive while the other fires
	})
	env.Process("t", func(p *Proc) {
		p.Sleep(time.Millisecond)
		a.Trigger()
		p.Sleep(time.Millisecond)
		b.Trigger() // must not resume w again
	})
	env.Run(0)
	if resumes != 1 {
		t.Fatalf("resumes = %d, want 1", resumes)
	}
}

func TestWaitAnySimultaneousTriggerSingleResume(t *testing.T) {
	env := NewEnv(1)
	a, b := env.NewEvent(), env.NewEvent()
	resumes := 0
	env.Process("w", func(p *Proc) {
		p.WaitAny(a, b)
		resumes++
	})
	env.Process("t", func(p *Proc) {
		p.Sleep(time.Millisecond)
		a.Trigger()
		b.Trigger() // same instant, before w resumes
	})
	env.Run(0)
	if resumes != 1 {
		t.Fatalf("resumes = %d, want 1", resumes)
	}
}

func TestWaitAnyReusableAcrossRounds(t *testing.T) {
	env := NewEnv(1)
	stop := env.NewEvent()
	data := env.NewEvent()
	rounds := 0
	env.Process("loop", func(p *Proc) {
		for {
			if p.WaitAny(data, stop) == 1 {
				return
			}
			rounds++
			data = env.NewEvent() // fresh condition each round
		}
	})
	env.Process("driver", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(time.Millisecond)
			data.Trigger()
		}
		p.Sleep(time.Millisecond)
		stop.Trigger()
	})
	env.Run(0)
	if rounds != 3 {
		t.Fatalf("rounds = %d, want 3", rounds)
	}
}
