package sim

import "time"

// Proc is a simulated process: a goroutine that advances only when the
// scheduler resumes it. Inside the process function, call Sleep and Wait to
// let virtual time pass; both must be called from the process's own
// goroutine.
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
	done   bool
	// domain is the process's parallel-execution domain. Steps of processes
	// in pairwise-distinct non-zero domains that fall due at the same
	// instant may run concurrently under RunParallel; domain 0 (the
	// default) never runs concurrently with anything.
	domain int
	// seg is non-nil exactly while the process executes inside a parallel
	// round: kernel effects are buffered here and committed in step order.
	seg *stepSeg
	// Done triggers when the process function returns; other processes can
	// Wait on it to join.
	Done *Event
}

func (e *Env) newProc(name string) *Proc {
	p := &Proc{
		env:    e,
		name:   name,
		resume: make(chan struct{}),
	}
	p.Done = e.NewEvent()
	return p
}

func (e *Env) startProc(p *Proc, at time.Duration, fn func(p *Proc)) {
	if e.inRound {
		// The initial schedule cannot be attributed to the spawning step, so
		// spawning inside a round would mutate the queue concurrently.
		panic("sim: Process/ProcessAt called during a parallel round")
	}
	e.procs.Add(1)
	go func() {
		<-p.resume
		fn(p)
		p.done = true
		e.procs.Add(-1)
		p.Trigger(p.Done)
		e.yield <- struct{}{}
	}()
	if at < e.now {
		at = e.now
	}
	e.schedule(p, at)
}

// Process starts fn as a new simulated process scheduled to begin at the
// current virtual time. The name is used in diagnostics only.
func (e *Env) Process(name string, fn func(p *Proc)) *Proc {
	p := e.newProc(name)
	e.startProc(p, e.now, fn)
	return p
}

// ProcessAt is Process but with the first resumption delayed until time at.
func (e *Env) ProcessAt(name string, at time.Duration, fn func(p *Proc)) *Proc {
	p := e.newProc(name)
	e.startProc(p, at, fn)
	return p
}

// Name returns the process name given at creation.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.env.now }

// SetDomain assigns the process to a parallel-execution domain. Two steps
// due at the same instant run concurrently under RunParallel only if their
// processes carry distinct non-zero domains — a domain is a promise that
// the process, while in it, touches no simulation state shared with any
// other domain except through attributed kernel operations (Sleep, Wait,
// Proc.Trigger) and data-race-free application state. Domain 0 revokes the
// promise; steps of domain-0 processes always run alone.
//
// The domain is read when a step is collected, so a change takes effect
// from the process's NEXT step. A process leaving a domain (SetDomain(0))
// must pass a step boundary — p.Sleep(0) — before touching shared state:
// the step it is currently in was collected under the old domain and may be
// running inside a round.
func (p *Proc) SetDomain(d int) { p.domain = d }

// Domain returns the process's parallel-execution domain.
func (p *Proc) Domain() int { return p.domain }

// Do runs fn inline as zero-duration work attributed to the process. It
// exists so call sites can make "this is deliberately instantaneous — no
// scheduler round trip" explicit, and so the kernel can count how much
// work the batch-grained code paths perform without a handoff.
func (p *Proc) Do(fn func()) {
	p.env.stats.inlineSteps.Add(1)
	fn()
}

// Trigger fires ev on behalf of the process. Outside a parallel round it is
// exactly Event.Trigger; inside one it attributes the waiter resumes (and
// timer cancels) to the process's effect segment, which is what keeps the
// merged (at, seq) order identical to the sequential scheduler's. Any code
// that can trigger an event with waiters from inside a domain's step must
// use this instead of Event.Trigger.
func (p *Proc) Trigger(ev *Event) {
	if p.seg == nil {
		ev.Trigger()
		return
	}
	ev.triggerVia(p)
}

// Sleep suspends the process for d of virtual time. Negative durations are
// treated as zero (yield to same-time events scheduled earlier).
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.env.scheduleVia(p, p, p.env.now+d)
	p.block()
}

// block yields control to the scheduler and waits to be resumed.
func (p *Proc) block() {
	p.env.yield <- struct{}{}
	<-p.resume
}

// Wait suspends the process until ev triggers. If ev has already triggered,
// Wait returns immediately without advancing time.
func (p *Proc) Wait(ev *Event) {
	if ev.triggered {
		return
	}
	ev.waiters = append(ev.waiters, waiter{proc: p})
	p.env.blocked.Add(1)
	p.block()
	p.env.blocked.Add(-1)
}

// WaitAny suspends the process until any of the given events triggers and
// returns the index of a triggered event (the lowest-indexed one when
// several fire at once). Events already triggered return immediately.
func (p *Proc) WaitAny(evs ...*Event) int {
	for i, ev := range evs {
		if ev.triggered {
			return i
		}
	}
	for _, ev := range evs {
		ev.waiters = append(ev.waiters, waiter{proc: p, group: evs})
	}
	p.env.blocked.Add(1)
	p.block()
	p.env.blocked.Add(-1)
	for i, ev := range evs {
		if ev.triggered {
			return i
		}
	}
	panic("sim: WaitAny resumed with no triggered event")
}

// WaitTimeout waits for ev or until d elapses, whichever comes first. It
// reports whether the event triggered (true) or the timeout fired (false).
func (p *Proc) WaitTimeout(ev *Event, d time.Duration) bool {
	if ev.triggered {
		return true
	}
	timer := p.env.scheduleVia(p, p, p.env.now+d)
	ev.waiters = append(ev.waiters, waiter{proc: p, timer: timer})
	p.env.blocked.Add(1)
	p.block()
	p.env.blocked.Add(-1)
	// Exactly one of the two sources resumed us: a trigger (which canceled
	// the timer while it was still pending) or the timer pop (which can only
	// happen while the event is untriggered — a later trigger cannot run
	// before this check because no other process runs in between). So the
	// event state alone identifies the winner; the timer entry has been
	// recycled if it popped and must not be read here.
	if ev.triggered {
		return true
	}
	ev.remove(p)
	return false
}
