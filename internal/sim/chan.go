package sim

import "time"

// Chan is an unbounded FIFO queue carrying values between simulated
// processes. Put never blocks; Get blocks the calling process until an item
// is available. Items are delivered in insertion order, and blocked getters
// are served in arrival order.
type Chan struct {
	env   *Env
	items []interface{}
	avail *Event // triggered whenever items transitions from empty
}

// NewChan returns an empty channel bound to the environment.
func (e *Env) NewChan() *Chan {
	return &Chan{env: e, avail: e.NewEvent()}
}

// Put appends v to the queue and wakes one round of waiters.
func (c *Chan) Put(v interface{}) {
	c.items = append(c.items, v)
	c.avail.Trigger()
}

// Len returns the number of queued items.
func (c *Chan) Len() int { return len(c.items) }

// Avail returns an event that triggers when the channel next becomes
// non-empty (already triggered if it is now). Use with Proc.WaitAny to
// select between data arrival and other conditions.
func (c *Chan) Avail() *Event {
	if len(c.items) > 0 {
		if !c.avail.Triggered() {
			c.avail.Trigger()
		}
		return c.avail
	}
	if c.avail.Triggered() {
		c.avail = c.env.NewEvent()
	}
	return c.avail
}

// Get removes and returns the head item, blocking the process until one is
// available.
func (c *Chan) Get(p *Proc) interface{} {
	for len(c.items) == 0 {
		if c.avail.Triggered() {
			c.avail = c.env.NewEvent()
		}
		p.Wait(c.avail)
	}
	v := c.items[0]
	c.items[0] = nil
	c.items = c.items[1:]
	return v
}

// GetTimeout is Get with a deadline; ok is false when the timeout fired
// before an item arrived.
func (c *Chan) GetTimeout(p *Proc, d time.Duration) (v interface{}, ok bool) {
	deadline := p.Now() + d
	for len(c.items) == 0 {
		remain := deadline - p.Now()
		if remain <= 0 {
			return nil, false
		}
		if c.avail.Triggered() {
			c.avail = c.env.NewEvent()
		}
		if !p.WaitTimeout(c.avail, remain) {
			if len(c.items) == 0 {
				return nil, false
			}
		}
	}
	v = c.items[0]
	c.items[0] = nil
	c.items = c.items[1:]
	return v, true
}
