package sim

import (
	"fmt"
	"testing"
	"time"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	env := NewEnv(1)
	var at time.Duration
	env.Process("sleeper", func(p *Proc) {
		p.Sleep(42 * time.Millisecond)
		at = p.Now()
	})
	end := env.Run(0)
	if at != 42*time.Millisecond {
		t.Fatalf("woke at %v, want 42ms", at)
	}
	if end != 42*time.Millisecond {
		t.Fatalf("run ended at %v, want 42ms", end)
	}
}

func TestProcessesInterleaveDeterministically(t *testing.T) {
	env := NewEnv(1)
	var order []string
	env.Process("a", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		order = append(order, "a10")
		p.Sleep(20 * time.Millisecond)
		order = append(order, "a30")
	})
	env.Process("b", func(p *Proc) {
		p.Sleep(20 * time.Millisecond)
		order = append(order, "b20")
	})
	env.Run(0)
	want := []string{"a10", "b20", "a30"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSameTimeEventsRunInScheduleOrder(t *testing.T) {
	env := NewEnv(1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		env.Process("p", func(p *Proc) {
			p.Sleep(time.Millisecond)
			order = append(order, i)
		})
	}
	env.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestEventWakesAllWaiters(t *testing.T) {
	env := NewEnv(1)
	ev := env.NewEvent()
	woke := 0
	for i := 0; i < 3; i++ {
		env.Process("waiter", func(p *Proc) {
			p.Wait(ev)
			woke++
		})
	}
	env.Process("trigger", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		ev.Trigger()
	})
	env.Run(0)
	if woke != 3 {
		t.Fatalf("woke = %d, want 3", woke)
	}
	if env.Blocked() != 0 {
		t.Fatalf("blocked = %d, want 0", env.Blocked())
	}
}

func TestWaitOnTriggeredEventReturnsImmediately(t *testing.T) {
	env := NewEnv(1)
	ev := env.NewEvent()
	ev.Trigger()
	var at time.Duration = -1
	env.Process("w", func(p *Proc) {
		p.Wait(ev)
		at = p.Now()
	})
	env.Run(0)
	if at != 0 {
		t.Fatalf("waited until %v, want 0", at)
	}
}

func TestWaitTimeoutFires(t *testing.T) {
	env := NewEnv(1)
	ev := env.NewEvent()
	var ok bool
	var at time.Duration
	env.Process("w", func(p *Proc) {
		ok = p.WaitTimeout(ev, 7*time.Millisecond)
		at = p.Now()
	})
	env.Run(0)
	if ok {
		t.Fatal("WaitTimeout reported event, want timeout")
	}
	if at != 7*time.Millisecond {
		t.Fatalf("timed out at %v, want 7ms", at)
	}
}

func TestWaitTimeoutEventWins(t *testing.T) {
	env := NewEnv(1)
	ev := env.NewEvent()
	var ok bool
	var at time.Duration
	env.Process("w", func(p *Proc) {
		ok = p.WaitTimeout(ev, 100*time.Millisecond)
		at = p.Now()
	})
	env.Process("t", func(p *Proc) {
		p.Sleep(3 * time.Millisecond)
		ev.Trigger()
	})
	end := env.Run(0)
	if !ok {
		t.Fatal("WaitTimeout reported timeout, want event")
	}
	if at != 3*time.Millisecond {
		t.Fatalf("woke at %v, want 3ms", at)
	}
	// The canceled timer must not extend the run.
	if end != 3*time.Millisecond {
		t.Fatalf("run ended at %v, want 3ms", end)
	}
}

func TestLateTriggerAfterTimeoutDoesNotResume(t *testing.T) {
	env := NewEnv(1)
	ev := env.NewEvent()
	resumed := 0
	env.Process("w", func(p *Proc) {
		p.WaitTimeout(ev, time.Millisecond)
		resumed++
	})
	env.Process("t", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		ev.Trigger()
	})
	env.Run(0)
	if resumed != 1 {
		t.Fatalf("process body ran %d times past the wait, want 1", resumed)
	}
}

func TestRunHorizonStopsEarly(t *testing.T) {
	env := NewEnv(1)
	ran := false
	env.Process("late", func(p *Proc) {
		p.Sleep(time.Second)
		ran = true
	})
	end := env.Run(100 * time.Millisecond)
	if ran {
		t.Fatal("event past horizon ran")
	}
	if end != 100*time.Millisecond {
		t.Fatalf("end = %v, want horizon", end)
	}
	// Resuming the run completes the pending work.
	env.Run(0)
	if !ran {
		t.Fatal("event did not run after horizon lifted")
	}
}

func TestChanFIFO(t *testing.T) {
	env := NewEnv(1)
	ch := env.NewChan()
	var got []int
	env.Process("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, ch.Get(p).(int))
		}
	})
	env.Process("producer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(time.Millisecond)
			ch.Put(i)
		}
	})
	env.Run(0)
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("got = %v, want [0 1 2]", got)
	}
}

func TestChanGetBeforePut(t *testing.T) {
	env := NewEnv(1)
	ch := env.NewChan()
	var v interface{}
	env.Process("c", func(p *Proc) { v = ch.Get(p) })
	env.Process("p", func(p *Proc) {
		p.Sleep(time.Millisecond)
		ch.Put("x")
	})
	env.Run(0)
	if v != "x" {
		t.Fatalf("v = %v, want x", v)
	}
}

func TestChanGetTimeout(t *testing.T) {
	env := NewEnv(1)
	ch := env.NewChan()
	var ok bool
	env.Process("c", func(p *Proc) { _, ok = ch.GetTimeout(p, 5*time.Millisecond) })
	env.Run(0)
	if ok {
		t.Fatal("GetTimeout returned ok on empty channel")
	}
}

func TestResourceLimitsParallelism(t *testing.T) {
	env := NewEnv(1)
	r := env.NewResource(2)
	maxInUse := 0
	for i := 0; i < 6; i++ {
		env.Process("u", func(p *Proc) {
			r.Acquire(p)
			if r.InUse() > maxInUse {
				maxInUse = r.InUse()
			}
			p.Sleep(10 * time.Millisecond)
			r.Release()
		})
	}
	end := env.Run(0)
	if maxInUse != 2 {
		t.Fatalf("max in use = %d, want 2", maxInUse)
	}
	// 6 jobs of 10ms over 2 servers = 30ms makespan.
	if end != 30*time.Millisecond {
		t.Fatalf("makespan = %v, want 30ms", end)
	}
	if r.InUse() != 0 {
		t.Fatalf("in use after run = %d, want 0", r.InUse())
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	env := NewEnv(1)
	r := env.NewResource(1)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		env.ProcessAt("u", time.Duration(i)*time.Microsecond, func(p *Proc) {
			r.Acquire(p)
			order = append(order, i)
			p.Sleep(time.Millisecond)
			r.Release()
		})
	}
	env.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("service order = %v, want FIFO", order)
		}
	}
}

func TestProcDoneJoin(t *testing.T) {
	env := NewEnv(1)
	var joined time.Duration
	worker := env.Process("w", func(p *Proc) { p.Sleep(9 * time.Millisecond) })
	env.Process("j", func(p *Proc) {
		p.Wait(worker.Done)
		joined = p.Now()
	})
	env.Run(0)
	if joined != 9*time.Millisecond {
		t.Fatalf("joined at %v, want 9ms", joined)
	}
}

func TestDeterministicRand(t *testing.T) {
	runOnce := func() []int64 {
		env := NewEnv(99)
		var out []int64
		env.Process("r", func(p *Proc) {
			for i := 0; i < 5; i++ {
				out = append(out, env.Rand().Int63n(1000))
				p.Sleep(time.Millisecond)
			}
		})
		env.Run(0)
		return out
	}
	a, b := runOnce(), runOnce()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged: %v vs %v", a, b)
		}
	}
}

func TestProcessAtDelaysStart(t *testing.T) {
	env := NewEnv(1)
	var started time.Duration = -1
	env.ProcessAt("late", 50*time.Millisecond, func(p *Proc) { started = p.Now() })
	env.Run(0)
	if started != 50*time.Millisecond {
		t.Fatalf("started at %v, want 50ms", started)
	}
}

// TestSameInstantFIFOOrdersAfterHeapDue pins the same-timestamp batching
// contract: entries already scheduled FOR an instant (via the heap) run
// before entries created AT that instant (the FIFO fast path), and FIFO
// entries run in creation order — the exact (at, seq) total order the heap
// alone would produce.
func TestSameInstantFIFOOrdersAfterHeapDue(t *testing.T) {
	env := NewEnv(1)
	var order []string
	ev := env.NewEvent()
	// Three waiters park on ev; the trigger resumes them through the FIFO.
	for i := 0; i < 3; i++ {
		i := i
		env.Process("w", func(p *Proc) {
			p.Wait(ev)
			order = append(order, fmt.Sprintf("w%d", i))
		})
	}
	// Two sleepers due at the trigger instant but scheduled earlier: they
	// carry smaller seqs, so they must run before every resumed waiter.
	env.Process("trigger", func(p *Proc) {
		p.Sleep(time.Millisecond)
		ev.Trigger()
		order = append(order, "trigger")
	})
	env.Process("due", func(p *Proc) {
		p.Sleep(time.Millisecond)
		order = append(order, "due")
	})
	env.Run(0)
	want := []string{"trigger", "due", "w0", "w1", "w2"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

// TestSameInstantChainDrainsBeforeTimeAdvances checks that a chain of
// processes resuming each other at one instant all run before the clock
// moves, and that Idle accounts for FIFO entries.
func TestSameInstantChainDrainsBeforeTimeAdvances(t *testing.T) {
	env := NewEnv(1)
	const depth = 50
	evs := make([]*Event, depth+1)
	for i := range evs {
		evs[i] = env.NewEvent()
	}
	var ats []time.Duration
	for i := 0; i < depth; i++ {
		i := i
		env.Process("link", func(p *Proc) {
			p.Wait(evs[i])
			ats = append(ats, p.Now())
			evs[i+1].Trigger()
		})
	}
	var lastAt time.Duration
	env.Process("tail", func(p *Proc) {
		p.Sleep(3 * time.Millisecond)
		lastAt = p.Now()
	})
	env.Process("head", func(p *Proc) {
		p.Sleep(time.Millisecond)
		evs[0].Trigger()
	})
	env.Run(0)
	if len(ats) != depth {
		t.Fatalf("chain ran %d links, want %d", len(ats), depth)
	}
	for _, at := range ats {
		if at != time.Millisecond {
			t.Fatalf("chain link ran at %v, want 1ms", at)
		}
	}
	if lastAt != 3*time.Millisecond {
		t.Fatalf("tail ran at %v, want 3ms", lastAt)
	}
	if !env.Idle() {
		t.Fatalf("env not idle after run: %v", env)
	}
}
