package sim

// Resource is a counted resource (semaphore) with FIFO admission. It models
// service stations with limited parallelism: disk heads, controller CPUs,
// replication apply slots. Acquire blocks the process until a unit is free.
type Resource struct {
	env      *Env
	capacity int
	inUse    int
	waitq    []*Event
}

// NewResource returns a resource with the given capacity (>= 1).
func (e *Env) NewResource(capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{env: e, capacity: capacity}
}

// Acquire obtains one unit, blocking in FIFO order when none are free.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity && len(r.waitq) == 0 {
		r.inUse++
		return
	}
	ev := r.env.NewEvent()
	r.waitq = append(r.waitq, ev)
	p.Wait(ev)
	// Ownership was transferred by Release; inUse already accounts for us.
}

// Release returns one unit, handing it directly to the longest waiter if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release without Acquire")
	}
	if len(r.waitq) > 0 {
		next := r.waitq[0]
		r.waitq = r.waitq[1:]
		next.Trigger() // unit stays in use, transferred to the waiter
		return
	}
	r.inUse--
}

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting for a unit.
func (r *Resource) QueueLen() int { return len(r.waitq) }
