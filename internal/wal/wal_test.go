package wal

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := Record{Type: TypeUpdate, Epoch: 3, TxID: 42, Key: 7, Val: []byte("hello")}
	buf := AppendEncode(nil, r)
	if len(buf) != r.EncodedSize() {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(buf), r.EncodedSize())
	}
	got, n, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d", n, len(buf))
	}
	if got.Type != r.Type || got.Epoch != r.Epoch || got.TxID != r.TxID || got.Key != r.Key || !bytes.Equal(got.Val, r.Val) {
		t.Fatalf("round trip: got %+v want %+v", got, r)
	}
}

func TestDecodePropertyRoundTrip(t *testing.T) {
	f := func(typ bool, epoch uint32, txid, key uint64, val []byte) bool {
		if len(val) > 1000 {
			val = val[:1000]
		}
		r := Record{Type: TypeUpdate, Epoch: epoch, TxID: txid, Key: key, Val: val}
		if typ {
			r.Type = TypeCommit
		}
		got, n, err := Decode(AppendEncode(nil, r))
		return err == nil && n == r.EncodedSize() &&
			got.Type == r.Type && got.Epoch == r.Epoch &&
			got.TxID == r.TxID && got.Key == r.Key && bytes.Equal(got.Val, r.Val)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeEndOfLog(t *testing.T) {
	if _, _, err := Decode(nil); !errors.Is(err, ErrEndOfLog) {
		t.Fatalf("nil buf: %v", err)
	}
	if _, _, err := Decode(make([]byte, 100)); !errors.Is(err, ErrEndOfLog) {
		t.Fatalf("zero buf: %v", err)
	}
}

func TestDecodeCorruptions(t *testing.T) {
	r := Record{Type: TypeCommit, Epoch: 1, TxID: 9}
	good := AppendEncode(nil, r)

	bad := append([]byte(nil), good...)
	bad[0] = 0x77
	if _, _, err := Decode(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: %v", err)
	}

	bad = append([]byte(nil), good...)
	bad[1] = 99
	if _, _, err := Decode(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad type: %v", err)
	}

	// Flip a payload byte: checksum must catch it.
	bad = append([]byte(nil), good...)
	bad[10] ^= 0xFF
	if _, _, err := Decode(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("checksum: %v", err)
	}

	// Torn write: only half the record present.
	if _, _, err := Decode(good[:len(good)-3]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn: %v", err)
	}
	if _, _, err := Decode(good[:5]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn header: %v", err)
	}
}

func TestDecodeCorruptionPropertyNeverPanics(t *testing.T) {
	// Property: arbitrary mutations are either decoded (if they miss the
	// record) or rejected, never mis-decoded into a wrong payload.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := Record{Type: TypeUpdate, Epoch: 5, TxID: rng.Uint64(), Key: rng.Uint64(), Val: []byte("payload")}
		buf := AppendEncode(nil, r)
		i := rng.Intn(len(buf))
		delta := byte(rng.Intn(255) + 1)
		buf[i] ^= delta
		got, _, err := Decode(buf)
		if err != nil {
			return true // rejected, fine
		}
		// Astronomically unlikely (CRC collision); treat as failure so we
		// hear about it.
		return got.TxID == r.TxID && bytes.Equal(got.Val, r.Val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockHeaderRoundTrip(t *testing.T) {
	blk := make([]byte, 64)
	PutBlockHeader(blk, 7, 42)
	e, s, ok := ReadBlockHeader(blk)
	if !ok || e != 7 || s != 42 {
		t.Fatalf("header = %d/%d ok=%v", e, s, ok)
	}
	if _, _, ok := ReadBlockHeader(make([]byte, 64)); ok {
		t.Fatal("zero block parsed as WAL block")
	}
	if _, _, ok := ReadBlockHeader([]byte{1}); ok {
		t.Fatal("short block parsed as WAL block")
	}
}

func TestBlockBuilderPacksAndPads(t *testing.T) {
	b := NewBlockBuilder(128, 1, 0)
	r := Record{Type: TypeUpdate, Epoch: 1, TxID: 1, Key: 1, Val: make([]byte, 20)} // 48 bytes
	for i := 0; i < 3; i++ {                                                        // 144 bytes > 116 usable: third spills
		if err := b.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	blocks := b.Blocks()
	if len(blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(blocks))
	}
	recs0, ok, err := ScanBlock(blocks[0], 1, 0)
	if err != nil || len(recs0) != 2 || !ok {
		t.Fatalf("block0: %d recs ok=%v err=%v", len(recs0), ok, err)
	}
	recs1, ok, err := ScanBlock(blocks[1], 1, 1)
	if err != nil || len(recs1) != 1 || !ok {
		t.Fatalf("block1: %d recs ok=%v err=%v", len(recs1), ok, err)
	}
	if b.Pending() {
		t.Fatal("builder not reset")
	}
	if b.NextSeq() != 2 {
		t.Fatalf("next seq = %d", b.NextSeq())
	}
}

func TestBlockBuilderRejectsOversized(t *testing.T) {
	b := NewBlockBuilder(64, 1, 0)
	err := b.Append(Record{Type: TypeUpdate, Val: make([]byte, 100)})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestScanBlockStopsAtStaleEpochRecord(t *testing.T) {
	var buf []byte
	buf = AppendEncode(buf, Record{Type: TypeUpdate, Epoch: 2, TxID: 1, Key: 1})
	buf = AppendEncode(buf, Record{Type: TypeUpdate, Epoch: 1, TxID: 9, Key: 9}) // stale
	block := make([]byte, 4096)
	PutBlockHeader(block, 2, 0)
	copy(block[BlockHeaderSize:], buf)
	recs, ok, err := ScanBlock(block, 2, 0)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if len(recs) != 1 || recs[0].TxID != 1 {
		t.Fatalf("recs = %+v", recs)
	}
}

func TestScanBlockRejectsWrongSeq(t *testing.T) {
	b := NewBlockBuilder(256, 1, 5)
	b.Append(Record{Type: TypeCommit, Epoch: 1, TxID: 1})
	blk := b.Blocks()[0]
	if _, ok, _ := ScanBlock(blk, 1, 0); ok {
		t.Fatal("accepted block with wrong seq")
	}
	if _, ok, _ := ScanBlock(blk, 2, 5); ok {
		t.Fatal("accepted block with wrong epoch")
	}
	if recs, ok, _ := ScanBlock(blk, 1, 5); !ok || len(recs) != 1 {
		t.Fatal("rejected correct block")
	}
}

func TestScanLogAcrossBlocks(t *testing.T) {
	b := NewBlockBuilder(256, 1, 0)
	for i := uint64(0); i < 20; i++ {
		b.Append(Record{Type: TypeUpdate, Epoch: 1, TxID: i, Key: i, Val: make([]byte, 30)})
	}
	blocks := b.Blocks()
	// Pad the region with zero blocks like a fresh WAL area.
	region := append(blocks, make([]byte, 256), make([]byte, 256))
	recs, err := ScanLog(region, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 20 {
		t.Fatalf("scanned %d records, want 20", len(recs))
	}
	for i, r := range recs {
		if r.TxID != uint64(i) {
			t.Fatalf("order broken at %d: %+v", i, r)
		}
	}
}

func TestScanLogStopsAtStaleGeneration(t *testing.T) {
	// Blocks from an earlier epoch sitting past the head must not be
	// scanned, even though their records are individually valid.
	head := NewBlockBuilder(256, 2, 0)
	head.Append(Record{Type: TypeCommit, Epoch: 2, TxID: 1})
	stale := NewBlockBuilder(256, 1, 1)
	for i := 0; i < 5; i++ {
		stale.Append(Record{Type: TypeCommit, Epoch: 1, TxID: 99})
	}
	region := append(head.Blocks(), stale.Blocks()...)
	recs, err := ScanLog(region, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].TxID != 1 {
		t.Fatalf("recs = %+v, stale generation leaked into scan", recs)
	}
}

func TestScanLogReportsTornTail(t *testing.T) {
	b := NewBlockBuilder(4096, 1, 0)
	first := Record{Type: TypeUpdate, Epoch: 1, TxID: 1, Key: 1, Val: []byte("ok")}
	b.Append(first)
	b.Append(Record{Type: TypeUpdate, Epoch: 1, TxID: 2, Key: 2, Val: []byte("torn")})
	blk := b.Blocks()[0]
	// Corrupt the second record's payload.
	blk[BlockHeaderSize+first.EncodedSize()+10] ^= 0xFF
	recs, err := ScanLog([][]byte{blk}, 1)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want corrupt", err)
	}
	if len(recs) != 1 || recs[0].TxID != 1 {
		t.Fatalf("prefix before tear = %+v", recs)
	}
}

func TestScanLogEmptyRegion(t *testing.T) {
	recs, err := ScanLog([][]byte{make([]byte, 512), make([]byte, 512)}, 1)
	if err != nil || len(recs) != 0 {
		t.Fatalf("recs=%d err=%v", len(recs), err)
	}
}

func TestBlockBuilderPropertyNoRecordLoss(t *testing.T) {
	// Property: every appended record comes back from ScanLog, in order.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBlockBuilder(512, 7, 0)
		n := rng.Intn(100) + 1
		for i := 0; i < n; i++ {
			r := Record{Type: TypeUpdate, Epoch: 7, TxID: uint64(i), Key: rng.Uint64(), Val: make([]byte, rng.Intn(100))}
			if err := b.Append(r); err != nil {
				return false
			}
		}
		recs, err := ScanLog(b.Blocks(), 7)
		if err != nil || len(recs) != n {
			return false
		}
		for i, r := range recs {
			if r.TxID != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
