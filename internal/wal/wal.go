// Package wal defines the write-ahead-log record format used by the
// transactional database (internal/db). Records are redo-only: every update
// of a transaction is logged before its commit record, and recovery replays
// updates of committed transactions in log order. The format is
// self-delimiting, checksummed, and epoch-stamped so a scanner can walk a
// log region and stop at the first torn, never-written, or stale record —
// exactly the "valid prefix" semantics that storage-level consistency
// preserves.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// RecordType discriminates log records.
type RecordType uint8

// Record types.
const (
	// TypeUpdate logs one key/value change of a transaction.
	TypeUpdate RecordType = 1
	// TypeCommit marks a transaction durable; recovery replays only
	// transactions whose commit record is in the valid prefix.
	TypeCommit RecordType = 2
)

func (t RecordType) String() string {
	switch t {
	case TypeUpdate:
		return "update"
	case TypeCommit:
		return "commit"
	default:
		return fmt.Sprintf("RecordType(%d)", uint8(t))
	}
}

// Errors returned by Decode and the scanners.
var (
	// ErrEndOfLog reports a clean end: a zeroed or never-written region.
	ErrEndOfLog = errors.New("wal: end of log")
	// ErrCorrupt reports a malformed or checksum-failing record, e.g. a
	// torn write at the very end of the valid prefix.
	ErrCorrupt = errors.New("wal: corrupt record")
	// ErrTooLarge reports a record that cannot fit in one block.
	ErrTooLarge = errors.New("wal: record larger than block")
)

const (
	magic = 0xA5
	// headerSize is magic(1) + type(1) + epoch(4) + txid(8) + key(8) +
	// vallen(2).
	headerSize = 24
	// crcSize trails every record.
	crcSize = 4
	// Overhead is the per-record framing cost in bytes.
	Overhead = headerSize + crcSize
)

// Record is one log entry.
type Record struct {
	Type RecordType
	// Epoch is the log generation; checkpointing bumps it so records left
	// over from a previous generation terminate the scan instead of being
	// replayed.
	Epoch uint32
	TxID  uint64
	Key   uint64
	Val   []byte // empty for TypeCommit
}

// EncodedSize returns the record's on-disk size in bytes.
func (r Record) EncodedSize() int { return Overhead + len(r.Val) }

// AppendEncode appends the encoded record to dst and returns the result.
func AppendEncode(dst []byte, r Record) []byte {
	start := len(dst)
	dst = append(dst, magic, byte(r.Type))
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], r.Epoch)
	dst = append(dst, u32[:]...)
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], r.TxID)
	dst = append(dst, u64[:]...)
	binary.LittleEndian.PutUint64(u64[:], r.Key)
	dst = append(dst, u64[:]...)
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(len(r.Val)))
	dst = append(dst, u16[:]...)
	dst = append(dst, r.Val...)
	sum := crc32.ChecksumIEEE(dst[start:])
	var c [4]byte
	binary.LittleEndian.PutUint32(c[:], sum)
	return append(dst, c[:]...)
}

// Decode reads one record from the front of buf, returning the record and
// the number of bytes consumed. A zero first byte yields ErrEndOfLog; any
// framing or checksum violation yields ErrCorrupt.
func Decode(buf []byte) (Record, int, error) {
	if len(buf) == 0 || buf[0] == 0 {
		return Record{}, 0, ErrEndOfLog
	}
	if buf[0] != magic {
		return Record{}, 0, fmt.Errorf("%w: bad magic %#x", ErrCorrupt, buf[0])
	}
	if len(buf) < headerSize {
		return Record{}, 0, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	typ := RecordType(buf[1])
	if typ != TypeUpdate && typ != TypeCommit {
		return Record{}, 0, fmt.Errorf("%w: unknown type %d", ErrCorrupt, buf[1])
	}
	epoch := binary.LittleEndian.Uint32(buf[2:6])
	txid := binary.LittleEndian.Uint64(buf[6:14])
	key := binary.LittleEndian.Uint64(buf[14:22])
	vlen := int(binary.LittleEndian.Uint16(buf[22:24]))
	total := headerSize + vlen + crcSize
	if len(buf) < total {
		return Record{}, 0, fmt.Errorf("%w: truncated body", ErrCorrupt)
	}
	want := binary.LittleEndian.Uint32(buf[headerSize+vlen : total])
	if crc32.ChecksumIEEE(buf[:headerSize+vlen]) != want {
		return Record{}, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	val := make([]byte, vlen)
	copy(val, buf[headerSize:headerSize+vlen])
	return Record{Type: typ, Epoch: epoch, TxID: txid, Key: key, Val: val}, total, nil
}

// Block header layout: magic(2) + epoch(4) + seq(4) + pad(2). Every WAL
// block starts with one; the scanner follows consecutive seq numbers within
// one epoch, which is what lets it distinguish the live log from stale
// blocks left over by earlier generations or by in-place head rewrites.
const (
	// BlockHeaderSize is the per-block framing cost in bytes.
	BlockHeaderSize = 12
	blockMagic      = 0x5741 // "WA"
)

// PutBlockHeader stamps a block's header in place. The block must be at
// least BlockHeaderSize long.
func PutBlockHeader(block []byte, epoch, seq uint32) {
	binary.LittleEndian.PutUint16(block[0:2], blockMagic)
	binary.LittleEndian.PutUint32(block[2:6], epoch)
	binary.LittleEndian.PutUint32(block[6:10], seq)
	block[10], block[11] = 0, 0
}

// ReadBlockHeader parses a block header; ok is false for anything that is
// not a WAL block (zeroed space, data pages, garbage).
func ReadBlockHeader(block []byte) (epoch, seq uint32, ok bool) {
	if len(block) < BlockHeaderSize {
		return 0, 0, false
	}
	if binary.LittleEndian.Uint16(block[0:2]) != blockMagic {
		return 0, 0, false
	}
	return binary.LittleEndian.Uint32(block[2:6]), binary.LittleEndian.Uint32(block[6:10]), true
}

// BlockBuilder packs records into fixed-size, header-stamped blocks.
// Records never span blocks: when one does not fit in the remaining space,
// the block is padded with zeroes (which scan as end-of-block) and the
// record starts the next block.
type BlockBuilder struct {
	blockSize int
	epoch     uint32
	nextSeq   uint32
	cur       []byte // record bytes only; header added at seal
	full      [][]byte
}

// NewBlockBuilder returns a builder that stamps blocks with the given epoch,
// numbering them from startSeq.
func NewBlockBuilder(blockSize int, epoch, startSeq uint32) *BlockBuilder {
	return &BlockBuilder{blockSize: blockSize, epoch: epoch, nextSeq: startSeq}
}

// Append adds a record, sealing the current block first when the record
// does not fit. It fails with ErrTooLarge when the record can never fit in
// one block.
func (b *BlockBuilder) Append(r Record) error {
	n := r.EncodedSize()
	if n > b.blockSize-BlockHeaderSize {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, n, b.blockSize-BlockHeaderSize)
	}
	if BlockHeaderSize+len(b.cur)+n > b.blockSize {
		b.seal()
	}
	b.cur = AppendEncode(b.cur, r)
	return nil
}

func (b *BlockBuilder) seal() {
	blk := make([]byte, b.blockSize)
	PutBlockHeader(blk, b.epoch, b.nextSeq)
	b.nextSeq++
	copy(blk[BlockHeaderSize:], b.cur)
	b.full = append(b.full, blk)
	b.cur = b.cur[:0]
}

// Blocks seals any partial block and returns every block built so far. The
// builder keeps counting seq numbers, so further appends continue the log.
func (b *BlockBuilder) Blocks() [][]byte {
	if len(b.cur) > 0 {
		b.seal()
	}
	out := b.full
	b.full = nil
	return out
}

// Pending reports whether any un-returned data is buffered.
func (b *BlockBuilder) Pending() bool { return len(b.cur) > 0 || len(b.full) > 0 }

// NextSeq returns the sequence number the next sealed block will carry.
func (b *BlockBuilder) NextSeq() uint32 { return b.nextSeq }

// ScanBlock decodes the records of one block after validating its header
// against the wanted epoch and sequence number. ok reports whether the
// header matched (if not, the live log ends before this block).
func ScanBlock(block []byte, epoch, seq uint32) (recs []Record, ok bool, err error) {
	e, s, hdrOK := ReadBlockHeader(block)
	if !hdrOK || e != epoch || s != seq {
		return nil, false, nil
	}
	off := BlockHeaderSize
	for off < len(block) {
		r, n, derr := Decode(block[off:])
		if errors.Is(derr, ErrEndOfLog) {
			return recs, true, nil
		}
		if derr != nil {
			return recs, true, derr
		}
		if r.Epoch != epoch {
			return recs, true, nil
		}
		recs = append(recs, r)
		off += n
	}
	return recs, true, nil
}

// ScanLog decodes current-epoch records across consecutive blocks until the
// valid prefix ends: a block whose header does not carry the expected epoch
// and consecutive sequence number, or a torn record. It returns all records
// in the valid prefix; the error is nil for a clean end and ErrCorrupt when
// the prefix ends in a torn record (the records before the tear are still
// returned — recovery uses them).
func ScanLog(blocks [][]byte, epoch uint32) ([]Record, error) {
	var out []Record
	for i, blk := range blocks {
		recs, ok, err := ScanBlock(blk, epoch, uint32(i))
		if !ok {
			break
		}
		out = append(out, recs...)
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
