package fleet

import (
	"testing"
	"time"

	"repro/internal/core"
)

func testConfig(tenants, orders int) Config {
	return Config{
		Tenants:         tenants,
		OrdersPerTenant: orders,
		System:          core.Config{Seed: 42, VolumeBlocks: 256},
	}
}

func TestFleetRolesInterleaveAndCover(t *testing.T) {
	f := New(testConfig(16, 4))
	var fail, ana, plain int
	for _, tn := range f.Tenants {
		switch {
		case tn.Failover && tn.Analytics:
			t.Fatalf("%s has both roles", tn.Namespace)
		case tn.Failover:
			fail++
		case tn.Analytics:
			ana++
		default:
			plain++
		}
	}
	if fail != 4 || ana != 4 || plain != 8 {
		t.Fatalf("roles fail=%d ana=%d plain=%d, want 4/4/8", fail, ana, plain)
	}
}

func TestFleetMixedWorkloadAllTenantsConsistent(t *testing.T) {
	f := New(testConfig(12, 6))
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	tot := f.Totals()
	if tot.Verified != 12 || tot.Collapsed != 0 {
		t.Fatalf("verified=%d collapsed=%d: %+v", tot.Verified, tot.Collapsed, tot)
	}
	if tot.FailedOver == 0 || tot.Analytics == 0 {
		t.Fatalf("mixed workload degenerate: %+v", tot)
	}
	for _, tn := range f.Tenants {
		if tn.OrdersPlaced == 0 {
			t.Fatalf("%s placed no orders", tn.Namespace)
		}
		if tn.Analytics && tn.AnalyticsOrders < 0 {
			t.Fatalf("%s never ran analytics", tn.Namespace)
		}
		if tn.Failover && tn.RecoveryTime <= 0 {
			t.Fatalf("%s failed over with zero recovery time", tn.Namespace)
		}
	}
}

// TestFleetFailoverTenantsLoseOnlyTail pins the disaster semantics: failover
// without catch-up may lose in-flight commits (RPO) but each lost set is a
// tail — the recovered image is a consistent prefix, never a collapse.
func TestFleetFailoverTenantsLoseOnlyTail(t *testing.T) {
	cfg := testConfig(8, 10)
	// A slow, thin link keeps a real backlog in flight at the cut.
	cfg.System.Link.Propagation = 20 * time.Millisecond
	cfg.System.Link.BandwidthBps = 2e5
	f := New(cfg)
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	var lost int
	for _, tn := range f.Tenants {
		if !tn.Failover {
			continue
		}
		if tn.Report.Collapsed() || !tn.Report.OrderingOK() {
			t.Fatalf("%s: inconsistent image: %v", tn.Namespace, tn.Report)
		}
		lost += tn.Report.LostSalesTxns + tn.Report.LostStockTxns
	}
	if lost == 0 {
		t.Fatal("slow link produced no in-flight loss; disaster path untested")
	}
}

func TestFleetDeterministicAcrossRuns(t *testing.T) {
	run := func() (int64, time.Duration) {
		f := New(testConfig(6, 4))
		if err := f.Run(); err != nil {
			t.Fatal(err)
		}
		return f.Totals().OrdersPlaced, f.Sys.Env.Now()
	}
	o1, t1 := run()
	o2, t2 := run()
	if o1 != o2 || t1 != t2 {
		t.Fatalf("nondeterministic: (%d,%v) vs (%d,%v)", o1, t1, o2, t2)
	}
}
