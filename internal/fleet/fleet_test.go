package fleet

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/netlink"
	"repro/internal/replication"
)

func testConfig(tenants, orders int) Config {
	return Config{
		Tenants:         tenants,
		OrdersPerTenant: orders,
		System:          core.Config{Seed: 42, VolumeBlocks: 256},
	}
}

func TestFleetRolesInterleaveAndCover(t *testing.T) {
	f := New(testConfig(16, 4))
	var fail, ana, plain int
	for _, tn := range f.Tenants {
		switch {
		case tn.Failover && tn.Analytics:
			t.Fatalf("%s has both roles", tn.Namespace)
		case tn.Failover:
			fail++
		case tn.Analytics:
			ana++
		default:
			plain++
		}
	}
	if fail != 4 || ana != 4 || plain != 8 {
		t.Fatalf("roles fail=%d ana=%d plain=%d, want 4/4/8", fail, ana, plain)
	}
}

func TestFleetMixedWorkloadAllTenantsConsistent(t *testing.T) {
	f := New(testConfig(12, 6))
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	tot := f.Totals()
	if tot.Verified != 12 || tot.Collapsed != 0 {
		t.Fatalf("verified=%d collapsed=%d: %+v", tot.Verified, tot.Collapsed, tot)
	}
	if tot.FailedOver == 0 || tot.Analytics == 0 {
		t.Fatalf("mixed workload degenerate: %+v", tot)
	}
	for _, tn := range f.Tenants {
		if tn.OrdersPlaced == 0 {
			t.Fatalf("%s placed no orders", tn.Namespace)
		}
		if tn.Analytics && tn.AnalyticsOrders < 0 {
			t.Fatalf("%s never ran analytics", tn.Namespace)
		}
		if tn.Failover && tn.RecoveryTime <= 0 {
			t.Fatalf("%s failed over with zero recovery time", tn.Namespace)
		}
	}
}

// TestFleetFailoverTenantsLoseOnlyTail pins the disaster semantics: failover
// without catch-up may lose in-flight commits (RPO) but each lost set is a
// tail — the recovered image is a consistent prefix, never a collapse.
func TestFleetFailoverTenantsLoseOnlyTail(t *testing.T) {
	cfg := testConfig(8, 10)
	// A slow, thin link keeps a real backlog in flight at the cut.
	cfg.System.Link.Propagation = 20 * time.Millisecond
	cfg.System.Link.BandwidthBps = 2e5
	f := New(cfg)
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	var lost int
	for _, tn := range f.Tenants {
		if !tn.Failover {
			continue
		}
		if tn.Report.Collapsed() || !tn.Report.OrderingOK() {
			t.Fatalf("%s: inconsistent image: %v", tn.Namespace, tn.Report)
		}
		lost += tn.Report.LostSalesTxns + tn.Report.LostStockTxns
	}
	if lost == 0 {
		t.Fatal("slow link produced no in-flight loss; disaster path untested")
	}
}

// TestFleetPerTenantQoSOnMultiLinkFabric drives the whole platform stack —
// operator, replication plugin, drains — over a two-member fabric with
// weighted QoS classes, every tenant assigned a class. The run must stay
// consistent and the per-tenant fabric counters must show each class
// actually carried that tenant's drain traffic.
func TestFleetPerTenantQoSOnMultiLinkFabric(t *testing.T) {
	cfg := testConfig(8, 6)
	member := netlink.Config{Propagation: 2 * time.Millisecond, BandwidthBps: 1e7}
	cfg.System.Fabric = fabric.Config{
		Links: []netlink.Config{member, member},
		Classes: []fabric.ClassConfig{
			{Name: "gold", Weight: 4},
			{Name: "bulk", Weight: 1},
		},
	}
	cfg.ClassOf = func(i int) string {
		if i%2 == 0 {
			return "gold"
		}
		return "bulk"
	}
	f := New(cfg)
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	tot := f.Totals()
	if tot.Verified != 8 || tot.Collapsed != 0 {
		t.Fatalf("fleet on QoS fabric inconsistent: %+v", tot)
	}
	if tot.FabricBytes == 0 {
		t.Fatal("no drain traffic crossed the fabric")
	}
	for _, tn := range f.Tenants {
		want := "gold"
		if tn.Index%2 == 1 {
			want = "bulk"
		}
		if tn.Class != want {
			t.Fatalf("%s class = %q, want %q", tn.Namespace, tn.Class, want)
		}
		tp := f.Sys.TenantPath(tn.Namespace)
		if tp == nil || tp.Class() != want {
			t.Fatalf("%s path missing or misclassed", tn.Namespace)
		}
		if tn.FabricBytes == 0 {
			t.Fatalf("%s moved no bytes through the fabric", tn.Namespace)
		}
	}
	// Both members must carry forward traffic.
	links := f.Sys.Fabric.Forward.Links()
	if links[0].SentBytes() == 0 || links[1].SentBytes() == 0 {
		t.Fatalf("fabric members unbalanced: %d / %d", links[0].SentBytes(), links[1].SentBytes())
	}
}

func TestFleetDeterministicAcrossRuns(t *testing.T) {
	run := func() (int64, time.Duration) {
		f := New(testConfig(6, 4))
		if err := f.Run(); err != nil {
			t.Fatal(err)
		}
		return f.Totals().OrdersPlaced, f.Sys.Env.Now()
	}
	o1, t1 := run()
	o2, t2 := run()
	if o1 != o2 || t1 != t2 {
		t.Fatalf("nondeterministic: (%d,%v) vs (%d,%v)", o1, t1, o2, t2)
	}
}

// TestFleetShardedJournals runs the mixed workload with every tenant's
// consistency-group journal sharded across two drain lanes: the
// JournalShards knob threads fleet -> core -> operator -> replication
// plugin, every tenant's image stays a consistent cut (the epoch barrier at
// DB granularity), and the per-lane fabric counters surface on the tenants.
func TestFleetShardedJournals(t *testing.T) {
	cfg := testConfig(8, 6)
	cfg.JournalShards = 2
	f := New(cfg)
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	tot := f.Totals()
	if tot.Verified != 8 || tot.Collapsed != 0 {
		t.Fatalf("verdicts: %+v", tot)
	}
	if tot.FabricBytes == 0 {
		t.Fatal("no lane-path bytes counted — sharded drains not on fabric paths")
	}
	for _, tn := range f.Tenants {
		for _, g := range f.Sys.Groups(tn.Namespace) {
			if _, ok := g.(*replication.ShardedGroup); !ok {
				t.Fatalf("%s engine is %T, want sharded", tn.Namespace, g)
			}
		}
	}
}

// TestFleetChurnJoinsAndLeaves drives the elasticity path directly: a join
// provisioned mid-run under the fleet's load, a leave that decommissions a
// verified tenant, and the reclamation invariant on both.
func TestFleetChurnJoinsAndLeaves(t *testing.T) {
	cfg := testConfig(8, 6)
	cfg.RPOSample = 5 * time.Millisecond
	cfg.Joins = []JoinSpec{{After: 30 * time.Millisecond}}
	cfg.Leaves = []LeaveSpec{{Tenant: 3, After: 60 * time.Millisecond}}
	f := New(cfg)
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	tot := f.Totals()
	if tot.Tenants != 9 || tot.Verified != 9 || tot.Collapsed != 0 {
		t.Fatalf("verdicts: %+v", tot)
	}
	if tot.Joined != 1 || tot.Left != 1 || tot.ReclaimFailures != 0 {
		t.Fatalf("churn outcomes: %+v", tot)
	}
	if tot.MaxJoinReady <= 0 {
		t.Fatalf("join time-to-ready not measured: %+v", tot)
	}
	leaver := f.Tenants[3]
	if !leaver.Left || !leaver.ReclaimOK || leaver.Failover || leaver.Analytics {
		t.Fatalf("leaver state: %+v", leaver)
	}
	if res := f.Sys.TenantResidue(leaver.Namespace); len(res) != 0 {
		t.Fatalf("leaver residue: %v", res)
	}
	joiner := f.Tenants[8]
	if !joiner.Join || joiner.JoinedAt < cfg.Joins[0].After {
		t.Fatalf("joiner state: %+v", joiner)
	}
	if joiner.FabricBytes == 0 {
		t.Fatal("joiner moved no bytes through the fabric")
	}
	if tot.MaxTenantRPO <= 0 {
		t.Fatal("RPO sampler recorded nothing")
	}
}

// TestFleetChurnDeterministicAcrossSeeds pins determinism under churn: the
// same seed reproduces the identical run (orders, virtual time, join
// readiness), and different seeds still converge to all-verified.
func TestFleetChurnDeterministicAcrossSeeds(t *testing.T) {
	run := func(seed int64) (int64, time.Duration, time.Duration) {
		cfg := testConfig(6, 4)
		cfg.System.Seed = seed
		cfg.RPOSample = 5 * time.Millisecond
		cfg.Joins = []JoinSpec{{After: 20 * time.Millisecond}, {After: 50 * time.Millisecond}}
		cfg.Leaves = []LeaveSpec{{Tenant: 2, After: 40 * time.Millisecond}}
		f := New(cfg)
		if err := f.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tot := f.Totals()
		if tot.Verified != tot.Tenants || tot.Collapsed != 0 || tot.ReclaimFailures != 0 {
			t.Fatalf("seed %d verdicts: %+v", seed, tot)
		}
		return tot.OrdersPlaced, f.Sys.Env.Now(), tot.MaxJoinReady
	}
	for _, seed := range []int64{7, 99} {
		o1, t1, j1 := run(seed)
		o2, t2, j2 := run(seed)
		if o1 != o2 || t1 != t2 || j1 != j2 {
			t.Fatalf("seed %d nondeterministic: (%d,%v,%v) vs (%d,%v,%v)", seed, o1, t1, j1, o2, t2, j2)
		}
	}
}

// TestFleetMidRunReshard drives the Reshards churn schedule: one tenant is
// widened 1->4 and another narrowed 2->1 mid-run while the whole fleet
// serves OLTP load; both settle, the fleet stays fully consistent, and the
// widened tenant ends on a multi-lane engine.
func TestFleetMidRunReshard(t *testing.T) {
	cfg := testConfig(8, 8)
	cfg.JournalShards = 2
	// Tenants 0-1 carry the failover role and 6-7 analytics; pick plain
	// OLTP tenants so the reshard exercises a live drain, not a dead one.
	cfg.Reshards = []ReshardSpec{
		{Tenant: 2, After: 30 * time.Millisecond, Shards: 4},
		{Tenant: 5, After: 40 * time.Millisecond, Shards: 1},
	}
	f := New(cfg)
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	tot := f.Totals()
	if tot.Verified != 8 || tot.Collapsed != 0 {
		t.Fatalf("verdicts: %+v", tot)
	}
	if tot.Resharded != 2 || tot.MaxReshardTime <= 0 {
		t.Fatalf("reshard outcomes: %+v (errs: %v, %v)", tot, f.Tenants[2].ReshardErr, f.Tenants[5].ReshardErr)
	}
	wide := f.Tenants[2]
	if !wide.Resharded || wide.ReshardTo != 4 {
		t.Fatalf("widened tenant: %+v", wide)
	}
	if gs := f.Sys.Groups(wide.Namespace); len(gs) != 1 || gs[0].Lanes() != 4 {
		t.Fatalf("widened tenant lanes: %v", gs)
	}
	narrow := f.Tenants[5]
	if !narrow.Resharded || narrow.ReshardTo != 1 {
		t.Fatalf("narrowed tenant: %+v", narrow)
	}
	if gs := f.Sys.Groups(narrow.Namespace); len(gs) != 1 || gs[0].Lanes() != 1 {
		t.Fatalf("narrowed tenant lanes: %v", gs)
	}
}

// TestFleetReshardSkipsDepartedTenant pins the schedule's guard: a reshard
// aimed at a tenant that decommissioned first is recorded as skipped, not a
// fleet failure.
func TestFleetReshardSkipsDepartedTenant(t *testing.T) {
	cfg := testConfig(6, 4)
	cfg.Leaves = []LeaveSpec{{Tenant: 2, After: 10 * time.Millisecond}}
	cfg.Reshards = []ReshardSpec{{Tenant: 2, After: 4 * time.Second, Shards: 4}}
	f := New(cfg)
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	tn := f.Tenants[2]
	if !tn.Left {
		t.Fatalf("leaver never left: %+v", tn)
	}
	if tn.Resharded || tn.ReshardErr == nil {
		t.Fatalf("reshard of departed tenant: resharded=%v err=%v", tn.Resharded, tn.ReshardErr)
	}
}
