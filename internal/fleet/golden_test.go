package fleet

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/workload"
)

// tenantOutcome is the per-tenant result surface compared between the
// sequential and parallel schedulers. Every field a fleet caller (E11/E14/
// E15) reads is represented.
type tenantOutcome struct {
	Namespace       string
	OrdersPlaced    int64
	Verified        bool
	AnalyticsOrders int
	TimeToReady     time.Duration
	RecoveryTime    time.Duration
	FailoverAt      time.Duration
	JoinedAt        time.Duration
	Left            bool
	LeftAt          time.Duration
	ReclaimOK       bool
	Resharded       bool
	ReshardTime     time.Duration
	MaxRPO          time.Duration
	SalesTxns       int
	StockTxns       int
	Err             string
}

func outcomeOf(t *Tenant) tenantOutcome {
	o := tenantOutcome{
		Namespace:       t.Namespace,
		OrdersPlaced:    t.OrdersPlaced,
		Verified:        t.Verified,
		AnalyticsOrders: t.AnalyticsOrders,
		TimeToReady:     t.TimeToReady,
		RecoveryTime:    t.RecoveryTime,
		FailoverAt:      t.FailoverAt,
		JoinedAt:        t.JoinedAt,
		Left:            t.Left,
		LeftAt:          t.LeftAt,
		ReclaimOK:       t.ReclaimOK,
		Resharded:       t.Resharded,
		ReshardTime:     t.ReshardTime,
		MaxRPO:          t.MaxRPO,
		SalesTxns:       t.Report.SalesTxns,
		StockTxns:       t.Report.StockTxns,
	}
	if t.Err != nil {
		o.Err = t.Err.Error()
	}
	return o
}

// goldenConfig derives a randomized fleet schedule from one seed: roster
// size, load, shard counts, and churn (joins, leaves, reshards) all vary.
func goldenConfig(seed int64) Config {
	rng := rand.New(rand.NewSource(seed * 977))
	cfg := Config{
		Tenants:         3 + rng.Intn(4),
		OrdersPerTenant: 4 + rng.Intn(5),
		Workload:        workload.Config{Items: 20, ItemsPerOrder: 2},
		RPOSample:       time.Duration(1+rng.Intn(4)) * time.Minute,
	}
	cfg.System.Seed = seed
	cfg.System.VolumeBlocks = 256
	if rng.Intn(2) == 0 {
		cfg.JournalShards = 2
	}
	if rng.Intn(2) == 0 {
		cfg.Joins = append(cfg.Joins, JoinSpec{After: time.Duration(1+rng.Intn(5)) * time.Minute})
	}
	if rng.Intn(2) == 0 {
		cfg.Leaves = append(cfg.Leaves, LeaveSpec{Tenant: rng.Intn(cfg.Tenants), After: time.Duration(2+rng.Intn(5)) * time.Minute})
	}
	if rng.Intn(2) == 0 {
		cfg.Reshards = append(cfg.Reshards, ReshardSpec{
			Tenant: rng.Intn(cfg.Tenants),
			After:  time.Duration(1+rng.Intn(3)) * time.Minute,
			Shards: 1 + rng.Intn(3),
		})
	}
	// Half the schedules start OLTP at a fleet-wide barrier (E11's
	// load-then-measure shape, where same-instant tenant rounds are dense),
	// half free-run so the skewed-start path stays covered too.
	cfg.StartBarrier = rng.Intn(2) == 0
	return cfg
}

func runGoldenFleet(t *testing.T, cfg Config, workers int) ([]sim.TraceEntry, []tenantOutcome, time.Duration, sim.Stats) {
	t.Helper()
	cfg.Workers = workers
	f := New(cfg)
	f.Sys.Env.StartTrace()
	err := f.Run()
	outs := make([]tenantOutcome, len(f.Tenants))
	for i, tn := range f.Tenants {
		outs[i] = outcomeOf(tn)
	}
	if err != nil {
		t.Fatalf("fleet run (workers=%d): %v\noutcomes: %+v", workers, err, outs)
	}
	return f.Sys.Env.Trace(), outs, f.Sys.Env.Now(), f.Sys.Env.Stats()
}

// TestFleetGoldenTraceParallelMatchesSequential runs randomized fleet
// schedules twice — sequential scheduler vs parallel subgraph scheduler —
// and requires byte-identical (at, seq) execution traces and identical
// per-tenant outcomes. This is the fleet-level half of the determinism
// proof; internal/sim's golden test covers the kernel on 100 random worlds.
func TestFleetGoldenTraceParallelMatchesSequential(t *testing.T) {
	parallelSeen := false
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := goldenConfig(seed)
			seqTrace, seqOuts, seqEnd, _ := runGoldenFleet(t, cfg, 1)
			parTrace, parOuts, parEnd, stats := runGoldenFleet(t, cfg, 4)
			if stats.ParallelRounds > 0 {
				parallelSeen = true
			}
			if seqEnd != parEnd {
				t.Fatalf("end time diverged: sequential %v, parallel %v", seqEnd, parEnd)
			}
			if len(seqTrace) != len(parTrace) {
				t.Fatalf("trace length diverged: sequential %d, parallel %d", len(seqTrace), len(parTrace))
			}
			for i := range seqTrace {
				if seqTrace[i] != parTrace[i] {
					t.Fatalf("trace diverged at step %d: sequential %+v, parallel %+v",
						i, seqTrace[i], parTrace[i])
				}
			}
			if len(seqOuts) != len(parOuts) {
				t.Fatalf("tenant count diverged: %d vs %d", len(seqOuts), len(parOuts))
			}
			for i := range seqOuts {
				if seqOuts[i] != parOuts[i] {
					t.Fatalf("tenant %s outcome diverged:\nsequential: %+v\nparallel:   %+v",
						seqOuts[i].Namespace, seqOuts[i], parOuts[i])
				}
			}
		})
	}
	if !parallelSeen {
		t.Fatalf("no schedule ever formed a parallel round; the parallel path went untested")
	}
}
