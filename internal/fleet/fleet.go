// Package fleet scales the two-site demonstration system of internal/core
// from one business process to many tenant namespaces sharing one simulated
// infrastructure: one main array, one backup array, one inter-site link, one
// operator. Each tenant gets its own namespace, its own sales/stock
// databases, its own shared-journal consistency group, and its own ADC
// drain. The fleet then runs a mixed workload — OLTP commits on every
// tenant, snapshot analytics on a subset, and a mid-run site failover for
// another subset — and verifies per-tenant cross-volume consistency, which
// is the paper's central claim pushed to production-fleet scale (E11).
package fleet

import (
	"fmt"
	"time"

	"repro/internal/analytics"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/operator"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Config tunes a fleet run. Zero values take scale-appropriate defaults.
type Config struct {
	// Tenants is the number of tenant namespaces (default 16).
	Tenants int
	// OrdersPerTenant is the OLTP load per tenant (default 10). Half is
	// placed before the mid-run events, half after.
	OrdersPerTenant int
	// FailoverFraction is the share of tenants hit by the mid-run site
	// failover (default 0.25, at least one tenant).
	FailoverFraction float64
	// AnalyticsFraction is the share of tenants that run snapshot analytics
	// mid-run (default 0.25, at least one tenant).
	AnalyticsFraction float64
	// ReadyTimeout bounds each tenant's wait for replication Ready; fleets
	// enable backup concurrently, so this scales with Tenants (default 5m).
	ReadyTimeout time.Duration
	// Horizon bounds the simulation (default 4h of virtual time).
	Horizon time.Duration
	// Workload tunes each tenant's shop (seed is offset per tenant).
	Workload workload.Config
	// ClassOf assigns each tenant index a fabric QoS class (configure the
	// classes themselves via System.Fabric.Classes). nil leaves every
	// tenant on the default class — the pre-fabric single-queue behavior.
	ClassOf func(tenant int) string
	// JournalShards, when > 1, shards every tenant's consistency-group
	// journal across that many drain lanes (overrides System.JournalShards).
	// 0 leaves System.JournalShards as configured.
	JournalShards int
	// System configures the shared two-site system (including the
	// inter-site fabric's member links and QoS classes).
	System core.Config
}

func (c Config) withDefaults() Config {
	if c.Tenants <= 0 {
		c.Tenants = 16
	}
	if c.OrdersPerTenant <= 0 {
		c.OrdersPerTenant = 10
	}
	if c.FailoverFraction <= 0 {
		c.FailoverFraction = 0.25
	}
	if c.AnalyticsFraction <= 0 {
		c.AnalyticsFraction = 0.25
	}
	if c.ReadyTimeout <= 0 {
		c.ReadyTimeout = 5 * time.Minute
	}
	if c.Horizon <= 0 {
		c.Horizon = 4 * time.Hour
	}
	return c
}

// Tenant is one namespace's state and verdicts.
type Tenant struct {
	Namespace string
	Index     int
	BP        *core.BusinessProcess

	// Roles in the mixed workload.
	Failover  bool   // hit by the mid-run site failover
	Analytics bool   // runs snapshot analytics mid-run
	Class     string // fabric QoS class the tenant's drain rides

	// Outcomes.
	TimeToReady     time.Duration
	OrdersPlaced    int64
	AnalyticsOrders int  // orders the mid-run snapshot analytics saw (-1 = none ran)
	Verified        bool // final consistency verification ran and passed
	Report          consistency.Report
	RecoveryTime    time.Duration // failover tenants: simulated downtime
	Err             error

	// Fabric outcomes (zero when the tenant never drained): what this
	// tenant's ADC traffic experienced at the shared inter-site fabric.
	FabricBytes      int64
	FabricQueueDelay time.Duration // mean ingress queueing delay
	FabricDrops      int64         // admission drops retried at the ingress
}

// Fleet is a provisioned multi-tenant system.
type Fleet struct {
	Sys     *core.System
	Cfg     Config
	Tenants []*Tenant
}

// New builds the shared system and the tenant roster. Tenant roles are
// assigned round-robin so failover and analytics tenants interleave with
// plain OLTP tenants deterministically.
func New(cfg Config) *Fleet {
	cfg = cfg.withDefaults()
	// Per-tenant QoS: resolve class assignments before the system is built
	// so the replication plugin hands each namespace a path in its class.
	classByNS := make(map[string]string, cfg.Tenants)
	if cfg.ClassOf != nil {
		for i := 0; i < cfg.Tenants; i++ {
			classByNS[fmt.Sprintf("tenant-%03d", i)] = cfg.ClassOf(i)
		}
		cfg.System.PathClass = func(ns string) string { return classByNS[ns] }
	}
	if cfg.JournalShards > 0 {
		cfg.System.JournalShards = cfg.JournalShards
	}
	f := &Fleet{Sys: core.NewSystem(cfg.System), Cfg: cfg}
	nFail := max(1, int(float64(cfg.Tenants)*cfg.FailoverFraction))
	nAna := max(1, int(float64(cfg.Tenants)*cfg.AnalyticsFraction))
	for i := 0; i < cfg.Tenants; i++ {
		t := &Tenant{
			Namespace:       fmt.Sprintf("tenant-%03d", i),
			Index:           i,
			AnalyticsOrders: -1,
			Class:           classByNS[fmt.Sprintf("tenant-%03d", i)],
		}
		// Interleave roles: failover tenants from the front, analytics from
		// the back, so both mix with plain tenants in namespace order.
		t.Failover = i < nFail
		t.Analytics = !t.Failover && i >= cfg.Tenants-nAna
		f.Tenants = append(f.Tenants, t)
	}
	return f
}

// Run provisions every tenant and drives the mixed workload to completion,
// returning the first tenant error (each tenant's own error is also kept on
// the Tenant). It owns the environment: callers must not call Env.Run.
func (f *Fleet) Run() error {
	for _, t := range f.Tenants {
		t := t
		f.Sys.Env.Process("tenant:"+t.Namespace, func(p *sim.Proc) {
			t.Err = f.runTenant(p, t)
		})
	}
	f.Sys.Env.Run(f.Cfg.Horizon)
	if f.Sys.Env.Idle() {
		// Completed run: quiesce controllers, drains, and dispatchers so a
		// discarded fleet leaves no parked simulation goroutines behind
		// (bench iterations would otherwise accumulate them). A run cut off
		// by the horizon skips this — its pending events would replay.
		f.Sys.Stop()
		f.Sys.Env.Run(0)
	}
	for _, t := range f.Tenants {
		if tp := f.Sys.TenantPath(t.Namespace); tp != nil {
			t.FabricBytes = tp.Bytes()
			t.FabricQueueDelay = tp.MeanQueueDelay()
			t.FabricDrops = tp.DropRetries()
		}
		// Sharded tenants drain over per-lane paths instead; aggregate them
		// (bytes and drops sum, queue delay reports the worst lane mean).
		for _, lp := range f.Sys.TenantLanePaths(t.Namespace) {
			if lp == nil {
				continue
			}
			t.FabricBytes += lp.Bytes()
			t.FabricDrops += lp.DropRetries()
			if d := lp.MeanQueueDelay(); d > t.FabricQueueDelay {
				t.FabricQueueDelay = d
			}
		}
		if t.Err != nil {
			return fmt.Errorf("fleet: %s: %w", t.Namespace, t.Err)
		}
		if !t.Verified {
			return fmt.Errorf("fleet: %s: workload never completed (simulation horizon hit?)", t.Namespace)
		}
	}
	return nil
}

// runTenant is one tenant's full life: provision, enable backup, OLTP with
// mid-run analytics or failover, and a final consistency verification.
func (f *Fleet) runTenant(p *sim.Proc, t *Tenant) error {
	bp, err := f.Sys.DeployBusinessProcess(p, t.Namespace)
	if err != nil {
		return fmt.Errorf("deploy: %w", err)
	}
	t.BP = bp
	wcfg := f.Cfg.Workload
	wcfg.Seed = f.Cfg.System.Seed + int64(t.Index)*7919
	bp.Shop = workload.NewShop(f.Sys.Env, bp.Sales, bp.Stock, wcfg)

	start := p.Now()
	if err := f.enableBackup(p, t.Namespace); err != nil {
		return fmt.Errorf("enable backup: %w", err)
	}
	t.TimeToReady = p.Now() - start

	// Phase 1: first half of the OLTP load on every tenant concurrently.
	half := f.Cfg.OrdersPerTenant / 2
	if err := bp.Shop.Run(p, half); err != nil {
		return fmt.Errorf("phase 1: %w", err)
	}

	if t.Analytics {
		// Mid-run snapshot analytics: catch the drain up, group-snapshot the
		// backup volumes, and read the snapshot while OLTP continues on
		// other tenants.
		f.Sys.CatchUp(p, t.Namespace)
		if err := f.verifySnapshot(p, t, "midrun"); err != nil {
			return fmt.Errorf("analytics: %w", err)
		}
		t.AnalyticsOrders = t.Report.SalesTxns
	}

	if t.Failover {
		// Mid-run disaster: NO catch-up — whatever is in flight is lost, and
		// the recovered image must still be a consistent cut.
		fo, err := f.Sys.Failover(p, t.Namespace)
		if err != nil {
			return fmt.Errorf("failover: %w", err)
		}
		t.RecoveryTime = fo.RecoveryTime
		t.Report = consistency.Verify(fo.Sales, fo.Stock, bp.Shop.SalesCommitOrder(), bp.Shop.StockCommitOrder())
		t.Verified = !t.Report.Collapsed() && t.Report.OrderingOK()
		t.OrdersPlaced = bp.Shop.Completed.Value()
		if !t.Verified {
			return fmt.Errorf("failover image inconsistent: %v", t.Report)
		}
		return nil
	}

	// Phase 2: remaining load, then drain and verify the backup image.
	if err := bp.Shop.Run(p, f.Cfg.OrdersPerTenant-half); err != nil {
		return fmt.Errorf("phase 2: %w", err)
	}
	t.OrdersPlaced = bp.Shop.Completed.Value()
	f.Sys.CatchUp(p, t.Namespace)
	if err := f.verifySnapshot(p, t, "final"); err != nil {
		return err
	}
	t.Verified = !t.Report.Collapsed() && t.Report.OrderingOK()
	if !t.Verified {
		return fmt.Errorf("backup image inconsistent: %v", t.Report)
	}
	return nil
}

// enableBackup tags the namespace and waits Ready with the fleet's timeout
// (core.EnableBackup's fixed 30s is too tight when every tenant configures
// replication at once).
func (f *Fleet) enableBackup(p *sim.Proc, namespace string) error {
	obj, err := f.Sys.Main.API.Get(p, platform.ObjectKey{Kind: platform.KindNamespace, Name: namespace})
	if err != nil {
		return err
	}
	ns := obj.(*platform.Namespace)
	if ns.Labels == nil {
		ns.Labels = map[string]string{}
	}
	ns.Labels[operator.Tag] = operator.TagValue
	if err := f.Sys.Main.API.Update(p, ns); err != nil {
		return err
	}
	return f.Sys.WaitBackupReady(p, namespace, f.Cfg.ReadyTimeout)
}

// verifySnapshot group-snapshots the tenant's backup volumes, opens
// analytics views on the snapshot, checks the analytics can actually read
// it, and records the consistency verdict on the tenant.
func (f *Fleet) verifySnapshot(p *sim.Proc, t *Tenant, tag string) error {
	group, err := f.Sys.SnapshotBackup(p, t.Namespace, t.Namespace+"-"+tag)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	salesView, stockView, err := f.Sys.AnalyticsDBs(p, t.Namespace, group)
	if err != nil {
		return fmt.Errorf("analytics views: %w", err)
	}
	if _, err := analytics.Sales(p, salesView); err != nil {
		return fmt.Errorf("analytics read: %w", err)
	}
	t.Report = consistency.Verify(salesView, stockView, t.BP.Shop.SalesCommitOrder(), t.BP.Shop.StockCommitOrder())
	return nil
}

// Totals aggregates fleet-wide outcome counters.
type Totals struct {
	Tenants, FailedOver, Analytics int
	Verified, Collapsed            int
	OrdersPlaced                   int64
	LostTxns                       int // replication lag cut off by failovers
	MaxTimeToReady                 time.Duration
	MeanTimeToReady                time.Duration
	MeanRecovery                   time.Duration // over failover tenants
	FabricBytes                    int64         // ADC bytes through the shared fabric
	FabricDrops                    int64         // ingress admission drops (retried)
	MaxFabricQueueDelay            time.Duration // worst per-tenant mean queueing delay
}

// Totals sums the per-tenant outcomes.
func (f *Fleet) Totals() Totals {
	var tot Totals
	var readySum, recoverySum time.Duration
	for _, t := range f.Tenants {
		tot.Tenants++
		tot.OrdersPlaced += t.OrdersPlaced
		if t.Failover {
			tot.FailedOver++
			recoverySum += t.RecoveryTime
			tot.LostTxns += t.Report.LostSalesTxns + t.Report.LostStockTxns
		}
		if t.Analytics {
			tot.Analytics++
		}
		if t.Verified {
			tot.Verified++
		}
		if t.Report.Collapsed() {
			tot.Collapsed++
		}
		readySum += t.TimeToReady
		if t.TimeToReady > tot.MaxTimeToReady {
			tot.MaxTimeToReady = t.TimeToReady
		}
		tot.FabricBytes += t.FabricBytes
		tot.FabricDrops += t.FabricDrops
		if t.FabricQueueDelay > tot.MaxFabricQueueDelay {
			tot.MaxFabricQueueDelay = t.FabricQueueDelay
		}
	}
	if tot.Tenants > 0 {
		tot.MeanTimeToReady = readySum / time.Duration(tot.Tenants)
	}
	if tot.FailedOver > 0 {
		tot.MeanRecovery = recoverySum / time.Duration(tot.FailedOver)
	}
	return tot
}
