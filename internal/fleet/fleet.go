// Package fleet scales the two-site demonstration system of internal/core
// from one business process to many tenant namespaces sharing one simulated
// infrastructure: one main array, one backup array, one inter-site link, one
// operator. Each tenant is declared as a TenantSpec and provisioned by the
// tenant controller (core.System.ProvisionTenant): its own namespace, its
// own sales/stock databases, its own shared-journal consistency group, its
// own ADC drain. The fleet then runs a mixed workload — OLTP commits on
// every tenant, snapshot analytics on a subset, a mid-run site failover for
// another subset — and verifies per-tenant cross-volume consistency, which
// is the paper's central claim pushed to production-fleet scale (E11).
//
// On top of the steady roster the fleet runs churn (E14 elasticity): Joins
// provision additional tenants mid-run — initial copy under everyone else's
// OLTP load — and Leaves decommission roster tenants mid-run, verifying
// their volumes and journal shards return to the array free lists while the
// survivors' consistency cuts stay untouched. Reshards (E15 dynamic
// resharding) re-declare a tenant's JournalShards mid-run, driving a live
// epoch-barrier shard migration under everyone's load.
package fleet

import (
	"fmt"
	"time"

	"repro/internal/analytics"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Config tunes a fleet run. Zero values take scale-appropriate defaults.
type Config struct {
	// Tenants is the number of tenant namespaces (default 16).
	Tenants int
	// OrdersPerTenant is the OLTP load per tenant (default 10). Half is
	// placed before the mid-run events, half after.
	OrdersPerTenant int
	// FailoverFraction is the share of tenants hit by the mid-run site
	// failover (default 0.25, at least one tenant).
	FailoverFraction float64
	// AnalyticsFraction is the share of tenants that run snapshot analytics
	// mid-run (default 0.25, at least one tenant).
	AnalyticsFraction float64
	// ReadyTimeout bounds each tenant's wait for replication Ready; fleets
	// enable backup concurrently, so this scales with Tenants (default 5m).
	ReadyTimeout time.Duration
	// Horizon bounds the simulation (default 4h of virtual time).
	Horizon time.Duration
	// Workload tunes each tenant's shop (seed is offset per tenant).
	Workload workload.Config
	// ClassOf assigns each tenant index a fabric QoS class (configure the
	// classes themselves via System.Fabric.Classes). nil leaves every
	// tenant on the default class — the pre-fabric single-queue behavior.
	ClassOf func(tenant int) string
	// JournalShards, when > 1, shards every tenant's consistency-group
	// journal across that many drain lanes (overrides System.JournalShards).
	// 0 leaves System.JournalShards as configured.
	JournalShards int
	// FabricWindow, when > 1, lets every scheduled fabric member link carry
	// that many in-flight transfers at once (overrides
	// System.Fabric.WindowPerLink) — propagation-pipelined dispatch for
	// high bandwidth-delay-product member links. 0 leaves the fabric at its
	// configured (default stop-and-wait) window.
	FabricWindow int
	// Joins schedules extra tenants provisioned mid-run: each join submits
	// a TenantSpec at its After time and lives a full tenant life from
	// there. Joined tenants are appended to the roster after the initial
	// set, named in index order.
	Joins []JoinSpec
	// Leaves schedules initial-roster tenants that decommission mid-run
	// after completing (and verifying) their workload. Leaving tenants are
	// excluded from the failover/analytics roles.
	Leaves []LeaveSpec
	// Reshards schedules mid-run shard-count changes: at each spec's After
	// time the target tenant's JournalShards is re-declared and the live
	// reshard (epoch-barrier migration, lanes reconfigured under drain)
	// runs while the tenant — and the rest of the fleet — keeps serving
	// OLTP load. Targets that have already left or failed over are skipped.
	Reshards []ReshardSpec
	// RPOSample, when > 0, records each tenant's worst observed RPO over
	// its active span (Ready until failover/leave/finish) on Tenant.MaxRPO
	// — the victim-disturbance metric the elasticity experiment compares.
	// The observations come from the telemetry plane's probed "rpo" series:
	// if System.Telemetry is unset, it is enabled with this sample period
	// (an explicit System.Telemetry wins, and its period governs).
	RPOSample time.Duration
	// Workers, when > 1, runs the simulation on the parallel scheduler:
	// same-instant steps of distinct tenant domains execute concurrently on
	// up to Workers OS goroutines, merged back into the exact sequential
	// (at, seq) order. 0 or 1 runs the classic sequential scheduler. The
	// simulated outcome is identical either way.
	Workers int
	// StartBarrier, when true, holds every initial-roster tenant at a
	// barrier after provisioning: OLTP begins only once the whole roster is
	// Ready, at one shared instant — the classic load-then-measure benchmark
	// phase split. Besides separating provisioning skew from the measured
	// phase, the shared start instant is what lets the parallel scheduler
	// form large same-instant rounds of independent tenant steps; without it
	// tenant timelines stay offset by their provisioning skew and rarely
	// coincide. Join tenants arrive mid-run and skip the gate.
	StartBarrier bool
	// System configures the shared two-site system (including the
	// inter-site fabric's member links and QoS classes).
	System core.Config
}

// JoinSpec is one mid-run tenant join.
type JoinSpec struct {
	// After is the virtual time the spec is submitted.
	After time.Duration
	// Orders overrides OrdersPerTenant for this tenant (0 = default).
	Orders int
	// JournalShards overrides the fleet's shard count (0 = default).
	JournalShards int
	// Class is the tenant's fabric QoS class ("" = ClassOf / default).
	Class string
	// LaneClasses optionally names a QoS class per drain lane.
	LaneClasses []string
}

// LeaveSpec is one mid-run tenant leave.
type LeaveSpec struct {
	// Tenant is the initial-roster index of the tenant that leaves.
	Tenant int
	// After is the earliest virtual time the leave may begin; the tenant
	// finishes and verifies its workload first, then waits for this.
	After time.Duration
}

// ReshardSpec is one mid-run shard-count change.
type ReshardSpec struct {
	// Tenant is the roster index (initial or joined) to reshard.
	Tenant int
	// After is the virtual time the new shard count is declared.
	After time.Duration
	// Shards is the new drain-lane count (>= 1).
	Shards int
}

func (c Config) withDefaults() Config {
	if c.Tenants <= 0 {
		c.Tenants = 16
	}
	if c.OrdersPerTenant <= 0 {
		c.OrdersPerTenant = 10
	}
	if c.FailoverFraction <= 0 {
		c.FailoverFraction = 0.25
	}
	if c.AnalyticsFraction <= 0 {
		c.AnalyticsFraction = 0.25
	}
	if c.ReadyTimeout <= 0 {
		c.ReadyTimeout = 5 * time.Minute
	}
	if c.Horizon <= 0 {
		c.Horizon = 4 * time.Hour
	}
	return c
}

// Tenant is one namespace's state and verdicts.
type Tenant struct {
	Namespace string
	Index     int
	BP        *core.BusinessProcess

	// Roles in the mixed workload.
	Failover    bool     // hit by the mid-run site failover
	Analytics   bool     // runs snapshot analytics mid-run
	Join        bool     // provisioned mid-run (E14 elasticity)
	Leave       bool     // decommissions mid-run (E14 elasticity)
	Class       string   // fabric QoS class the tenant's drain rides
	LaneClasses []string // optional per-drain-lane QoS classes
	Shards      int      // per-tenant journal shards (0 = fleet default)
	Orders      int      // per-tenant order count (0 = OrdersPerTenant)
	JoinAfter   time.Duration
	LeaveAfter  time.Duration

	// Outcomes.
	TimeToReady     time.Duration // spec submitted -> tenant Ready
	OrdersPlaced    int64
	AnalyticsOrders int  // orders the mid-run snapshot analytics saw (-1 = none ran)
	Verified        bool // final consistency verification ran and passed
	Report          consistency.Report
	RecoveryTime    time.Duration // failover tenants: simulated downtime
	JoinedAt        time.Duration // join tenants: when Ready was reached
	FailoverAt      time.Duration // failover tenants: when the site was cut
	Left            bool          // leave tenants: decommission completed
	LeftAt          time.Duration // leave tenants: when reclamation finished
	ReclaimOK       bool          // leave tenants: zero residue after leaving
	MaxRPO          time.Duration // worst probed RPO over the active span (RPOSample > 0)
	Resharded       bool          // a scheduled mid-run reshard settled
	ReshardTo       int           // lane count the reshard declared
	ReshardAt       time.Duration // when the new shard count was declared
	ReshardTime     time.Duration // declare -> migration settled
	ReshardErr      error         // reshard skipped/failed (tenant gone, failed over)
	Err             error

	// activeFrom/activeTo bound the span MaxRPO is read over: Ready until
	// the tenant fails over, leaves, or finishes (0 = never reached).
	activeFrom, activeTo time.Duration
	// fabricCaptured marks that captureFabric already ran (leavers capture
	// before their paths are reclaimed; Run must not overwrite that).
	fabricCaptured bool

	// Fabric outcomes (zero when the tenant never drained): what this
	// tenant's ADC traffic experienced at the shared inter-site fabric.
	FabricBytes      int64
	FabricQueueDelay time.Duration // mean ingress queueing delay
	FabricDrops      int64         // admission drops retried at the ingress
}

// Fleet is a provisioned multi-tenant system.
type Fleet struct {
	Sys     *core.System
	Cfg     Config
	Tenants []*Tenant

	// Start-barrier state (Config.StartBarrier): gate fires when gateLeft
	// initial-roster tenants have arrived. Touched only on domain 0 (pre-OLTP
	// provisioning), which the scheduler never runs concurrently.
	gate     *sim.Event
	gateLeft int
}

// New builds the shared system and the tenant roster — the Config's scalar
// fields are the initial spec set, Joins append churn tenants after it.
// Tenant roles are assigned round-robin so failover and analytics tenants
// interleave with plain OLTP tenants deterministically; leaving tenants
// take no other role.
func New(cfg Config) *Fleet {
	cfg = cfg.withDefaults()
	if cfg.ReadyTimeout > cfg.System.ProvisionTimeout {
		cfg.System.ProvisionTimeout = cfg.ReadyTimeout
	}
	// Fleet tenants are independent service domains: each volume gets its
	// own service queue and ack numbering scoped to its consistency group.
	// This is both the realistic multi-tenant array model and the property
	// that lets tenant OLTP steps run as parallel subgraphs (no shared
	// controller resource crossing domains). Set for every worker count so
	// sequential and parallel runs simulate the identical world.
	cfg.System.Storage.IsolatedVolumes = true
	// MaxRPO reads the telemetry plane's probed "rpo" series — the fleet
	// has no private sampling loop. RPOSample therefore implies telemetry.
	if cfg.RPOSample > 0 && cfg.System.Telemetry == nil {
		cfg.System.Telemetry = &telemetry.Config{SamplePeriod: cfg.RPOSample}
	}
	if cfg.FabricWindow > 1 {
		cfg.System.Fabric.WindowPerLink = cfg.FabricWindow
	}
	f := &Fleet{Sys: core.NewSystem(cfg.System), Cfg: cfg}
	leaves := make(map[int]LeaveSpec, len(cfg.Leaves))
	for _, l := range cfg.Leaves {
		if l.Tenant >= 0 && l.Tenant < cfg.Tenants {
			leaves[l.Tenant] = l
		}
	}
	for i := 0; i < cfg.Tenants; i++ {
		t := &Tenant{
			Namespace:       fmt.Sprintf("tenant-%03d", i),
			Index:           i,
			AnalyticsOrders: -1,
			Shards:          cfg.JournalShards,
		}
		if cfg.ClassOf != nil {
			t.Class = cfg.ClassOf(i)
		}
		if l, ok := leaves[i]; ok {
			t.Leave, t.LeaveAfter = true, l.After
		}
		f.Tenants = append(f.Tenants, t)
	}
	// Interleave roles: failover tenants from the front, analytics from the
	// back, so both mix with plain tenants in namespace order. Leavers are
	// skipped — a decommission must reclaim a cleanly-drained group, and
	// analytics snapshots are verified before leaving anyway.
	nFail := max(1, int(float64(cfg.Tenants)*cfg.FailoverFraction))
	nAna := max(1, int(float64(cfg.Tenants)*cfg.AnalyticsFraction))
	for i, assigned := 0, 0; i < cfg.Tenants && assigned < nFail; i++ {
		if t := f.Tenants[i]; !t.Leave {
			t.Failover = true
			assigned++
		}
	}
	for i, assigned := cfg.Tenants-1, 0; i >= 0 && assigned < nAna; i-- {
		if t := f.Tenants[i]; !t.Leave && !t.Failover {
			t.Analytics = true
			assigned++
		}
	}
	for j, js := range cfg.Joins {
		idx := cfg.Tenants + j
		t := &Tenant{
			Namespace:       fmt.Sprintf("tenant-%03d", idx),
			Index:           idx,
			AnalyticsOrders: -1,
			Join:            true,
			JoinAfter:       js.After,
			Orders:          js.Orders,
			Class:           js.Class,
			LaneClasses:     js.LaneClasses,
			Shards:          cfg.JournalShards,
		}
		if js.JournalShards > 0 {
			t.Shards = js.JournalShards
		}
		if t.Class == "" && cfg.ClassOf != nil {
			t.Class = cfg.ClassOf(idx)
		}
		f.Tenants = append(f.Tenants, t)
	}
	return f
}

// gateArrive counts one initial-roster tenant reaching (or, on a provision
// failure, abandoning) the start barrier. The last arrival releases every
// waiter at the current instant; join tenants bypass the gate entirely.
func (f *Fleet) gateArrive(p *sim.Proc, t *Tenant, wait bool) {
	if f.gate == nil || t.Join {
		return
	}
	f.gateLeft--
	if f.gateLeft == 0 {
		p.Trigger(f.gate)
	} else if wait {
		p.Wait(f.gate)
	}
}

// Run provisions every tenant and drives the mixed workload to completion,
// returning the first tenant error (each tenant's own error is also kept on
// the Tenant). It owns the environment: callers must not call Env.Run.
func (f *Fleet) Run() error {
	if f.Cfg.StartBarrier {
		f.gate = f.Sys.Env.NewEvent()
		for _, t := range f.Tenants {
			if !t.Join {
				f.gateLeft++
			}
		}
	}
	for _, t := range f.Tenants {
		t := t
		f.Sys.Env.Process("tenant:"+t.Namespace, func(p *sim.Proc) {
			defer func() {
				if t.activeFrom > 0 && t.activeTo == 0 {
					t.activeTo = p.Now()
				}
			}()
			t.Err = f.runTenant(p, t)
		})
	}
	for _, rs := range f.Cfg.Reshards {
		rs := rs
		if rs.Tenant < 0 || rs.Tenant >= len(f.Tenants) || rs.Shards < 1 {
			continue
		}
		t := f.Tenants[rs.Tenant]
		f.Sys.Env.Process("reshard:"+t.Namespace, func(p *sim.Proc) {
			if rs.After > p.Now() {
				p.Sleep(rs.After - p.Now())
			}
			// A tenant that already left or lost its site has no drain to
			// reshape; record the skip instead of failing the fleet.
			if t.Left || (t.Failover && t.FailoverAt > 0 && t.FailoverAt <= p.Now()) {
				t.ReshardErr = fmt.Errorf("fleet: reshard skipped: %s no longer draining", t.Namespace)
				return
			}
			start := p.Now()
			err := f.Sys.UpdateTenantSpec(p, t.Namespace, func(s *platform.TenantSpec) {
				s.JournalShards = rs.Shards
			})
			if err == nil {
				err = f.Sys.WaitTenantCondition(p, t.Namespace, core.CondResharded(rs.Shards), f.Cfg.ReadyTimeout)
			}
			if err != nil {
				t.ReshardErr = err
				return
			}
			t.Resharded, t.ReshardTo = true, rs.Shards
			t.ReshardAt, t.ReshardTime = start, p.Now()-start
		})
	}
	if f.Cfg.Workers > 1 {
		f.Sys.Env.RunParallel(f.Cfg.Horizon, f.Cfg.Workers)
	} else {
		f.Sys.Env.Run(f.Cfg.Horizon)
	}
	if f.Sys.Env.Idle() {
		// Completed run: quiesce controllers, drains, and dispatchers so a
		// discarded fleet leaves no parked simulation goroutines behind
		// (bench iterations would otherwise accumulate them). A run cut off
		// by the horizon skips this — its pending events would replay.
		f.Sys.Stop()
		f.Sys.Env.Run(0)
	}
	if f.Cfg.RPOSample > 0 {
		f.collectMaxRPO()
	}
	for _, t := range f.Tenants {
		if !t.fabricCaptured {
			f.captureFabric(t)
		}
		if t.Err != nil {
			return fmt.Errorf("fleet: %s: %w", t.Namespace, t.Err)
		}
		if !t.Verified {
			return fmt.Errorf("fleet: %s: workload never completed (simulation horizon hit?)", t.Namespace)
		}
	}
	return nil
}

// collectMaxRPO reads each tenant's worst probed RPO over its active span
// from the telemetry plane — the one shared observation path; the fleet
// keeps no sampling loop of its own. The probe records RPO as float64
// nanoseconds and self-gates on engine liveness, so failed-over and
// decommissioned tenants simply stop producing samples.
func (f *Fleet) collectMaxRPO() {
	for _, t := range f.Tenants {
		if t.activeFrom == 0 {
			continue // never reached Ready: nothing was observed
		}
		s := f.Sys.Telemetry.Series("rpo", telemetry.L("tenant", t.Namespace))
		if s == nil {
			continue
		}
		to := t.activeTo
		if to == 0 {
			to = f.Sys.Env.Now() // horizon-truncated run: span still open
		}
		worst := 0.0
		for _, pt := range s.Window(t.activeFrom, to) {
			if pt.Value > worst {
				worst = pt.Value
			}
		}
		t.MaxRPO = time.Duration(worst)
	}
}

// captureFabric records the tenant's view of the shared inter-site fabric.
// Leavers capture before their paths are reclaimed; everyone else after the
// run.
func (f *Fleet) captureFabric(t *Tenant) {
	t.fabricCaptured = true
	t.FabricBytes, t.FabricQueueDelay, t.FabricDrops = 0, 0, 0
	if tp := f.Sys.TenantPath(t.Namespace); tp != nil {
		t.FabricBytes = tp.Bytes()
		t.FabricQueueDelay = tp.MeanQueueDelay()
		t.FabricDrops = tp.DropRetries()
	}
	// Sharded tenants drain over per-lane paths instead; aggregate them
	// (bytes and drops sum, queue delay reports the worst lane mean).
	for _, lp := range f.Sys.TenantLanePaths(t.Namespace) {
		if lp == nil {
			continue
		}
		t.FabricBytes += lp.Bytes()
		t.FabricDrops += lp.DropRetries()
		if d := lp.MeanQueueDelay(); d > t.FabricQueueDelay {
			t.FabricQueueDelay = d
		}
	}
}

// orders returns the tenant's OLTP load.
func (f *Fleet) orders(t *Tenant) int {
	if t.Orders > 0 {
		return t.Orders
	}
	return f.Cfg.OrdersPerTenant
}

// runTenant is one tenant's full life: provision declaratively (join
// tenants first wait for their scheduled time), OLTP with mid-run analytics
// or failover, a final consistency verification — and, for leavers, a full
// decommission with the reclamation invariant checked.
func (f *Fleet) runTenant(p *sim.Proc, t *Tenant) error {
	if t.Join && t.JoinAfter > p.Now() {
		p.Sleep(t.JoinAfter - p.Now())
	}
	start := p.Now()
	var provSpan telemetry.Span
	if tel := f.Sys.Telemetry; tel != nil {
		provSpan = tel.StartSpan("lifecycle", "provision", t.Namespace)
	}
	bp, err := f.Sys.ProvisionTenant(p, platform.TenantSpec{
		Namespace:     t.Namespace,
		PVCNames:      []string{"sales", "stock"},
		Backup:        true,
		QoSClass:      t.Class,
		LaneClasses:   t.LaneClasses,
		JournalShards: t.Shards,
		Profile:       "oltp-external", // the fleet attaches its own seeded shop
	})
	provSpan.End()
	if err != nil {
		f.gateArrive(p, t, false) // don't strand the rest of the roster
		return fmt.Errorf("provision: %w", err)
	}
	t.TimeToReady = p.Now() - start
	t.BP = bp
	if t.Join {
		t.JoinedAt = p.Now()
	}
	t.activeFrom = p.Now()
	wcfg := f.Cfg.Workload
	wcfg.Seed = f.Cfg.System.Seed + int64(t.Index)*7919
	bp.Shop = workload.NewShop(f.Sys.Env, bp.Sales, bp.Stock, wcfg)

	// OLTP phases touch only this tenant's shop, databases, volumes, and
	// journal, so they ride a per-tenant domain: under Config.Workers the
	// scheduler executes same-instant steps of distinct domains
	// concurrently. The domain binds from the step after SetDomain, and
	// leaving one requires crossing a step boundary (Sleep(0)) before
	// touching shared state again — see sim.Proc.SetDomain. Everything else
	// (provision, catch-up, analytics, failover, leave) shares system state
	// and stays on domain 0.
	runShop := func(orders int) error {
		p.SetDomain(t.Index + 1)
		err := bp.Shop.Run(p, orders)
		p.SetDomain(0)
		p.Sleep(0)
		return err
	}

	// Start barrier: the measured mixed-workload phase begins only once the
	// whole initial roster is Ready, at one shared instant.
	f.gateArrive(p, t, true)

	// Phase 1: first half of the OLTP load on every tenant concurrently.
	half := f.orders(t) / 2
	if err := runShop(half); err != nil {
		return fmt.Errorf("phase 1: %w", err)
	}

	if t.Analytics {
		// Mid-run snapshot analytics: catch the drain up, group-snapshot the
		// backup volumes, and read the snapshot while OLTP continues on
		// other tenants.
		f.Sys.CatchUp(p, t.Namespace)
		if err := f.verifySnapshot(p, t, "midrun"); err != nil {
			return fmt.Errorf("analytics: %w", err)
		}
		t.AnalyticsOrders = t.Report.SalesTxns
	}

	if t.Failover {
		// Mid-run disaster: NO catch-up — whatever is in flight is lost, and
		// the recovered image must still be a consistent cut.
		t.FailoverAt = p.Now()
		t.activeTo = p.Now()
		fo, err := f.Sys.Failover(p, t.Namespace)
		if err != nil {
			return fmt.Errorf("failover: %w", err)
		}
		t.RecoveryTime = fo.RecoveryTime
		t.Report = consistency.Verify(fo.Sales, fo.Stock, bp.Shop.SalesCommitOrder(), bp.Shop.StockCommitOrder())
		t.Verified = !t.Report.Collapsed() && t.Report.OrderingOK()
		t.OrdersPlaced = bp.Shop.Completed.Value()
		if !t.Verified {
			return fmt.Errorf("failover image inconsistent: %v", t.Report)
		}
		return nil
	}

	// Phase 2: remaining load, then drain and verify the backup image.
	if err := runShop(f.orders(t) - half); err != nil {
		return fmt.Errorf("phase 2: %w", err)
	}
	t.OrdersPlaced = bp.Shop.Completed.Value()
	f.Sys.CatchUp(p, t.Namespace)
	if err := f.verifySnapshot(p, t, "final"); err != nil {
		return err
	}
	t.Verified = !t.Report.Collapsed() && t.Report.OrderingOK()
	if !t.Verified {
		return fmt.Errorf("backup image inconsistent: %v", t.Report)
	}

	if t.Leave {
		// Mid-run leave: the verified tenant drains, decommissions, and must
		// leave zero residue on either array while the survivors keep
		// serving load.
		if t.LeaveAfter > p.Now() {
			p.Sleep(t.LeaveAfter - p.Now())
		}
		t.activeTo = p.Now()
		// Drain before capturing so the leave's own final backlog bytes are
		// counted (decommission's drain is then a no-op), then capture
		// before teardown reclaims the paths.
		f.Sys.CatchUp(p, t.Namespace)
		f.captureFabric(t)
		var leaveSpan telemetry.Span
		if tel := f.Sys.Telemetry; tel != nil {
			leaveSpan = tel.StartSpan("lifecycle", "decommission", t.Namespace)
		}
		err := f.Sys.DecommissionTenant(p, t.Namespace)
		leaveSpan.End()
		if err != nil {
			return fmt.Errorf("decommission: %w", err)
		}
		t.LeftAt = p.Now()
		t.Left = true
		if res := f.Sys.TenantResidue(t.Namespace); len(res) > 0 {
			return fmt.Errorf("decommission left residue: %v", res)
		}
		t.ReclaimOK = true
	}
	return nil
}

// verifySnapshot group-snapshots the tenant's backup volumes, opens
// analytics views on the snapshot, checks the analytics can actually read
// it, and records the consistency verdict on the tenant.
func (f *Fleet) verifySnapshot(p *sim.Proc, t *Tenant, tag string) error {
	group, err := f.Sys.SnapshotBackup(p, t.Namespace, t.Namespace+"-"+tag)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	salesView, stockView, err := f.Sys.AnalyticsDBs(p, t.Namespace, group)
	if err != nil {
		return fmt.Errorf("analytics views: %w", err)
	}
	if _, err := analytics.Sales(p, salesView); err != nil {
		return fmt.Errorf("analytics read: %w", err)
	}
	t.Report = consistency.Verify(salesView, stockView, t.BP.Shop.SalesCommitOrder(), t.BP.Shop.StockCommitOrder())
	return nil
}

// Totals aggregates fleet-wide outcome counters.
type Totals struct {
	Tenants, FailedOver, Analytics int
	Joined, Left                   int // E14 churn outcomes
	Resharded                      int // mid-run reshards that settled
	MeanReshardTime                time.Duration
	MaxReshardTime                 time.Duration
	ReclaimFailures                int // leavers that left residue behind
	Verified, Collapsed            int
	OrdersPlaced                   int64
	LostTxns                       int // replication lag cut off by failovers
	MaxTimeToReady                 time.Duration
	MeanTimeToReady                time.Duration
	MeanJoinReady                  time.Duration // over joined tenants
	MaxJoinReady                   time.Duration
	MeanRecovery                   time.Duration // over failover tenants
	MaxTenantRPO                   time.Duration // worst sampled RPO (RPOSample > 0)
	FabricBytes                    int64         // ADC bytes through the shared fabric
	FabricDrops                    int64         // ingress admission drops (retried)
	MaxFabricQueueDelay            time.Duration // worst per-tenant mean queueing delay
}

// Totals sums the per-tenant outcomes.
func (f *Fleet) Totals() Totals {
	var tot Totals
	var readySum, recoverySum, joinReadySum, reshardSum time.Duration
	for _, t := range f.Tenants {
		tot.Tenants++
		tot.OrdersPlaced += t.OrdersPlaced
		if t.Failover {
			tot.FailedOver++
			recoverySum += t.RecoveryTime
			tot.LostTxns += t.Report.LostSalesTxns + t.Report.LostStockTxns
		}
		if t.Analytics {
			tot.Analytics++
		}
		if t.Join {
			tot.Joined++
			joinReadySum += t.TimeToReady
			if t.TimeToReady > tot.MaxJoinReady {
				tot.MaxJoinReady = t.TimeToReady
			}
		}
		if t.Left {
			tot.Left++
			if !t.ReclaimOK {
				tot.ReclaimFailures++
			}
		}
		if t.Resharded {
			tot.Resharded++
			reshardSum += t.ReshardTime
			if t.ReshardTime > tot.MaxReshardTime {
				tot.MaxReshardTime = t.ReshardTime
			}
		}
		if t.Verified {
			tot.Verified++
		}
		if t.Report.Collapsed() {
			tot.Collapsed++
		}
		readySum += t.TimeToReady
		if t.TimeToReady > tot.MaxTimeToReady {
			tot.MaxTimeToReady = t.TimeToReady
		}
		if t.MaxRPO > tot.MaxTenantRPO {
			tot.MaxTenantRPO = t.MaxRPO
		}
		tot.FabricBytes += t.FabricBytes
		tot.FabricDrops += t.FabricDrops
		if t.FabricQueueDelay > tot.MaxFabricQueueDelay {
			tot.MaxFabricQueueDelay = t.FabricQueueDelay
		}
	}
	if tot.Tenants > 0 {
		tot.MeanTimeToReady = readySum / time.Duration(tot.Tenants)
	}
	if tot.Joined > 0 {
		tot.MeanJoinReady = joinReadySum / time.Duration(tot.Joined)
	}
	if tot.Resharded > 0 {
		tot.MeanReshardTime = reshardSum / time.Duration(tot.Resharded)
	}
	if tot.FailedOver > 0 {
		tot.MeanRecovery = recoverySum / time.Duration(tot.FailedOver)
	}
	return tot
}
