package fleet

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// runTelemetryFleet runs one churn schedule with the telemetry plane on and
// returns the full export bytes plus the kernel trace.
func runTelemetryFleet(t *testing.T, cfg Config, workers int) ([]byte, []sim.TraceEntry) {
	t.Helper()
	cfg.Workers = workers
	cfg.System.Telemetry = &telemetry.Config{SamplePeriod: 500 * time.Millisecond}
	f := New(cfg)
	f.Sys.Env.StartTrace()
	if err := f.Run(); err != nil {
		t.Fatalf("fleet run (workers=%d): %v", workers, err)
	}
	export, err := f.Sys.Telemetry.ExportJSON()
	if err != nil {
		t.Fatalf("export (workers=%d): %v", workers, err)
	}
	return export, f.Sys.Env.Trace()
}

// TestFleetTelemetryExportParallelMatchesSequential pins the telemetry
// plane's core determinism claim: a churning fleet run on the sequential
// scheduler and on 4 workers produces BYTE-identical telemetry exports —
// every probe sample, span boundary, histogram percentile, and counter, in
// identical order. Probes sample from the scheduler's advance hook (outside
// any instant) and all other recording happens on domain-0 steps, so the
// parallel scheduler cannot reorder any of it.
func TestFleetTelemetryExportParallelMatchesSequential(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := goldenConfig(seed)
			seqExport, _ := runTelemetryFleet(t, cfg, 1)
			parExport, _ := runTelemetryFleet(t, cfg, 4)
			if !bytes.Equal(seqExport, parExport) {
				a, b := seqExport, parExport
				i := 0
				for i < len(a) && i < len(b) && a[i] == b[i] {
					i++
				}
				lo := max(0, i-80)
				t.Fatalf("telemetry export diverged between schedulers at byte %d:\nsequential: ...%s\nparallel:   ...%s",
					i, a[lo:min(len(a), i+80)], b[lo:min(len(b), i+80)])
			}
		})
	}
}

// TestFleetTelemetryDoesNotPerturbTrace pins the zero-cost claim's other
// half: enabling the telemetry plane must not change the simulation. The
// same schedule runs with telemetry off and on; the (at, seq) kernel traces
// and per-tenant outcomes must be identical — sampling happens between
// instants, consumes no sequence numbers, and schedules no events.
func TestFleetTelemetryDoesNotPerturbTrace(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := goldenConfig(seed)
			offTrace, offOuts, offEnd, _ := runGoldenFleet(t, cfg, 1)
			cfgOn := cfg
			cfgOn.System.Telemetry = &telemetry.Config{SamplePeriod: 500 * time.Millisecond}
			onTrace, onOuts, onEnd, _ := runGoldenFleet(t, cfgOn, 1)
			if offEnd != onEnd {
				t.Fatalf("end time diverged: telemetry-off %v, telemetry-on %v", offEnd, onEnd)
			}
			if len(offTrace) != len(onTrace) {
				t.Fatalf("trace length diverged: telemetry-off %d, telemetry-on %d", len(offTrace), len(onTrace))
			}
			for i := range offTrace {
				if offTrace[i] != onTrace[i] {
					t.Fatalf("trace diverged at step %d: off %+v, on %+v", i, offTrace[i], onTrace[i])
				}
			}
			for i := range offOuts {
				if offOuts[i] != onOuts[i] {
					t.Fatalf("tenant %s outcome diverged:\noff: %+v\non:  %+v",
						offOuts[i].Namespace, offOuts[i], onOuts[i])
				}
			}
		})
	}
}
