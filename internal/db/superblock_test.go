package db

import (
	"encoding/binary"
	"hash/crc32"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/storage"
)

// goodSuperblock builds a valid encoded superblock in a block-size buffer.
func goodSuperblock(blockSize int) []byte {
	blk := make([]byte, blockSize)
	binary.LittleEndian.PutUint32(blk[0:4], sbMagic)
	binary.LittleEndian.PutUint16(blk[4:6], sbVersion)
	binary.LittleEndian.PutUint32(blk[6:10], 3)     // epoch
	binary.LittleEndian.PutUint32(blk[10:14], 64)   // walBlocks
	binary.LittleEndian.PutUint64(blk[14:22], 1000) // nextTxID
	binary.LittleEndian.PutUint32(blk[22:26], crc32.ChecksumIEEE(blk[0:22]))
	return blk
}

func TestDecodeSuperblockCorruption(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(blk []byte) []byte
		ok     bool
	}{
		{"valid", func(blk []byte) []byte { return blk }, true},
		{"short block", func(blk []byte) []byte { return blk[:sbSize-1] }, false},
		{"empty block", func(blk []byte) []byte { return nil }, false},
		{"bad magic", func(blk []byte) []byte {
			binary.LittleEndian.PutUint32(blk[0:4], 0xDEADBEEF)
			return blk
		}, false},
		{"zeroed magic (unformatted)", func(blk []byte) []byte {
			clear(blk[0:4])
			return blk
		}, false},
		{"bad crc", func(blk []byte) []byte {
			blk[22] ^= 0xFF
			return blk
		}, false},
		{"payload flipped under valid crc field", func(blk []byte) []byte {
			blk[7] ^= 0x01 // epoch byte; CRC now stale
			return blk
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			blk := tc.mutate(goodSuperblock(4096))
			meta, ok := decodeSuperblock(blk)
			if ok != tc.ok {
				t.Fatalf("ok = %v, want %v", ok, tc.ok)
			}
			if ok && (meta.epoch != 3 || meta.walBlocks != 64 || meta.nextTxID != 1000) {
				t.Fatalf("decoded %+v", meta)
			}
		})
	}
}

// TestOpenCorruptSuperblockReformats pins Open's treatment of a corrupt
// superblock: it is indistinguishable from an unformatted volume, so Open
// formats fresh rather than failing.
func TestOpenCorruptSuperblockReformats(t *testing.T) {
	withVolume(t, 256, func(p *sim.Proc, vol *storage.Volume) {
		blk := goodSuperblock(vol.BlockSize())
		blk[0] ^= 0xFF // bad magic
		if err := vol.Poke(0, blk); err != nil {
			t.Fatal(err)
		}
		d, err := Open(p, "x", vol, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if d.RecoveredTxns() != 0 {
			t.Fatalf("corrupt superblock replayed %d txns", d.RecoveredTxns())
		}
	})
}

// TestOpenWALSizeMismatch pins the config/on-disk WAL-region check.
func TestOpenWALSizeMismatch(t *testing.T) {
	withVolume(t, 256, func(p *sim.Proc, vol *storage.Volume) {
		if _, err := Open(p, "x", vol, Config{WALBlocks: 64}); err != nil {
			t.Fatal(err)
		}
		_, err := Open(p, "x", vol, Config{WALBlocks: 32})
		if err == nil || !strings.Contains(err.Error(), "WAL size mismatch") {
			t.Fatalf("err = %v, want WAL size mismatch", err)
		}
	})
}
