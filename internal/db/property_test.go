package db

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/storage"
)

func TestTxnReadYourWrites(t *testing.T) {
	withVolume(t, 256, func(p *sim.Proc, vol *storage.Volume) {
		d, _ := Open(p, "x", vol, Config{})
		seed := d.Begin()
		seed.Put(1, []byte("committed"))
		seed.Commit(p)

		tx := d.Begin()
		// Sees committed state before writing.
		v, found, _ := tx.Get(p, 1)
		if !found || string(v) != "committed" {
			t.Fatalf("pre-write read: %q %v", v, found)
		}
		tx.Put(1, []byte("mine"))
		tx.Put(2, []byte("new"))
		// Sees its own writes...
		if v, _, _ := tx.Get(p, 1); string(v) != "mine" {
			t.Fatalf("own write invisible: %q", v)
		}
		if v, _, _ := tx.Get(p, 2); string(v) != "new" {
			t.Fatalf("own insert invisible: %q", v)
		}
		// ...while the database does not, until commit.
		if _, found, _ := d.Get(p, 2); found {
			t.Fatal("uncommitted write leaked")
		}
		tx.Abort()
		if _, _, err := tx.Get(p, 1); err == nil {
			t.Fatal("read on finished txn succeeded")
		}
	})
}

// TestCrashRecoveryProperty is the database's central invariant: after a
// crash at ANY point, recovery yields exactly the committed transactions —
// every committed key holds its last committed value, and no uncommitted
// write is visible. The generator interleaves commits, aborts, checkpoints
// and crashes at random.
func TestCrashRecoveryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := sim.NewEnv(seed)
		a := storage.NewArray(env, "arr", storage.Config{})
		vol, _ := a.CreateVolume("v", 300)
		cfg := Config{WALBlocks: 8}

		// model holds the last COMMITTED value per key.
		model := map[uint64][]byte{}
		ok := true
		env.Process("chaos", func(p *sim.Proc) {
			d, err := Open(p, "x", vol, cfg)
			if err != nil {
				ok = false
				return
			}
			steps := 30 + rng.Intn(40)
			for s := 0; s < steps; s++ {
				switch op := rng.Intn(10); {
				case op < 6: // transaction with 1-3 updates
					tx := d.Begin()
					n := 1 + rng.Intn(3)
					staged := map[uint64][]byte{}
					for i := 0; i < n; i++ {
						key := uint64(rng.Intn(40)) + 1
						val := []byte(fmt.Sprintf("s%d-%d", s, i))
						if err := tx.Put(key, val); err != nil {
							ok = false
							return
						}
						staged[key] = val
					}
					if rng.Intn(5) == 0 {
						tx.Abort()
						continue
					}
					if err := tx.Commit(p); err != nil {
						ok = false
						return
					}
					for k, v := range staged {
						model[k] = v
					}
				case op < 7: // explicit checkpoint
					if err := d.Checkpoint(p); err != nil {
						ok = false
						return
					}
				default: // crash: drop the handle, recover, verify
					d2, err := Open(p, "x", vol, cfg)
					if err != nil {
						ok = false
						return
					}
					for k, want := range model {
						got, found, err := d2.Get(p, k)
						if err != nil || !found || !bytes.Equal(got, want) {
							ok = false
							return
						}
					}
					// No phantom keys.
					rows := 0
					d2.Scan(p, func(r Row) bool { rows++; return true })
					if rows != len(model) {
						ok = false
						return
					}
					d = d2
				}
			}
		})
		env.Run(0)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryFromReplicatedImageProperty checks the property E6 depends
// on: for any prefix cut of a volume's journal applied to a twin, opening
// the twin recovers a prefix of the committed transactions (never a
// superset, never a hole).
func TestRecoveryFromReplicatedImageProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := sim.NewEnv(seed)
		a := storage.NewArray(env, "arr", storage.Config{})
		src, _ := a.CreateVolume("src", 300)
		twin, _ := a.CreateVolume("twin", 300)
		j, _ := a.CreateJournal("j")
		a.AttachJournal("src", "j")
		cfg := Config{WALBlocks: 8}

		var commitSeq []uint64
		ok := true
		env.Process("run", func(p *sim.Proc) {
			d, err := Open(p, "x", src, cfg)
			if err != nil {
				ok = false
				return
			}
			nTxns := 5 + rng.Intn(20)
			for i := 0; i < nTxns; i++ {
				tx := d.Begin()
				tx.Put(uint64(rng.Intn(30))+1, []byte{byte(i)})
				if err := tx.Commit(p); err != nil {
					ok = false
					return
				}
				commitSeq = append(commitSeq, tx.ID())
			}
			// Apply a random prefix of the journal to the twin.
			recs := j.TryTake(0)
			cut := rng.Intn(len(recs) + 1)
			for _, rec := range recs[:cut] {
				if err := twin.Apply(p, rec.Block, rec.Data); err != nil {
					ok = false
					return
				}
			}
			// Recover the twin; its committed set must be a prefix.
			view, err := OpenView(p, "twin", twin, cfg)
			if err != nil {
				// An entirely unwritten twin (cut before the superblock
				// write) is legitimately unformatted.
				ok = cut == 0
				return
			}
			recovered := view.CommittedTxns()
			if len(recovered) > len(commitSeq) {
				ok = false
				return
			}
			for i, txid := range recovered {
				if commitSeq[i] != txid {
					ok = false
					return
				}
			}
		})
		env.Run(0)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
