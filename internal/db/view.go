package db

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/sim"
	"repro/internal/wal"
)

// BlockReader is the read-only volume interface. storage.Snapshot satisfies
// it, which is how the data-analytics application (§IV-D) opens the
// databases living on snapshot volumes without mutating them.
type BlockReader interface {
	Read(p *sim.Proc, block int64) ([]byte, error)
	SizeBlocks() int64
	BlockSize() int
}

// blockRangeReader is the optional fused sequential-scan interface
// (storage.Volume and storage.Snapshot implement it). The WAL replay reads
// the whole log region through it in one scheduler step instead of one per
// block.
type blockRangeReader interface {
	ReadRange(p *sim.Proc, start int64, count int) ([][]byte, error)
}

// readBlockRange reads count consecutive blocks, fused when the reader
// supports it.
func readBlockRange(p *sim.Proc, vol BlockReader, start int64, count int) ([][]byte, error) {
	if rr, ok := vol.(blockRangeReader); ok {
		return rr.ReadRange(p, start, count)
	}
	out := make([][]byte, count)
	for i := 0; i < count; i++ {
		blk, err := vol.Read(p, start+int64(i))
		if err != nil {
			return nil, err
		}
		out[i] = blk
	}
	return out, nil
}

// View is a read-only database opened from any BlockReader. It runs the
// same WAL replay as Open but keeps redone pages in a memory overlay, so
// the underlying image (typically a snapshot) is untouched.
type View struct {
	name      string
	vol       BlockReader
	cfg       Config
	blockSize int
	walBase   int64
	dataBase  int64
	dataPages int64
	overlay   map[int64][]byte // replayed pages
	committed map[uint64]bool
	recovered int
	replayDur time.Duration
	torn      bool
	preloaded bool
}

// OpenView attaches read-only to a formatted volume image and replays its
// WAL valid prefix in memory.
func OpenView(p *sim.Proc, name string, vol BlockReader, cfg Config) (*View, error) {
	cfg = cfg.withDefaults()
	v := &View{
		name:      name,
		vol:       vol,
		cfg:       cfg,
		blockSize: vol.BlockSize(),
		walBase:   1,
		dataBase:  int64(1 + cfg.WALBlocks),
		dataPages: vol.SizeBlocks() - int64(1+cfg.WALBlocks),
		overlay:   make(map[int64][]byte),
		committed: make(map[uint64]bool),
	}
	if v.dataPages <= 0 {
		return nil, fmt.Errorf("%w: %d blocks with %d WAL blocks", ErrVolumeTooSmall, vol.SizeBlocks(), cfg.WALBlocks)
	}
	sb, err := vol.Read(p, 0)
	if err != nil {
		return nil, err
	}
	meta, ok := decodeSuperblock(sb)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFormatted, name)
	}
	if meta.walBlocks != uint32(cfg.WALBlocks) {
		return nil, fmt.Errorf("db: view %s: WAL size mismatch: on-disk %d, config %d", name, meta.walBlocks, cfg.WALBlocks)
	}
	start := p.Now()
	blocks, err := readBlockRange(p, vol, v.walBase, cfg.WALBlocks)
	if err != nil {
		return nil, err
	}
	recs, err := wal.ScanLog(blocks, meta.epoch)
	if err != nil && !errors.Is(err, wal.ErrCorrupt) {
		return nil, err
	}
	v.torn = errors.Is(err, wal.ErrCorrupt)
	durable := make(map[uint64]bool)
	for _, r := range recs {
		if r.Type == wal.TypeCommit {
			durable[r.TxID] = true
		}
	}
	for _, r := range recs {
		if r.Type != wal.TypeUpdate || !durable[r.TxID] {
			continue
		}
		page, err := v.loadPage(p, v.pageBlock(r.Key))
		if err != nil {
			return nil, err
		}
		if err := pageUpsert(page, Row{Key: r.Key, TxID: r.TxID, Val: r.Val}); err != nil {
			return nil, fmt.Errorf("db: view %s: redo tx %d: %w", name, r.TxID, err)
		}
	}
	v.committed = durable
	v.recovered = len(durable)
	v.replayDur = p.Now() - start
	return v, nil
}

func (v *View) pageBlock(key uint64) int64 {
	return v.dataBase + int64(key%uint64(v.dataPages))
}

// loadPage returns the overlay page, populating it from the image on miss.
func (v *View) loadPage(p *sim.Proc, block int64) ([]byte, error) {
	if pg, ok := v.overlay[block]; ok {
		return pg, nil
	}
	pg, err := v.vol.Read(p, block)
	if err != nil {
		return nil, err
	}
	v.overlay[block] = pg
	return pg, nil
}

// Name returns the view name.
func (v *View) Name() string { return v.name }

// Get returns the value for key and whether it exists.
func (v *View) Get(p *sim.Proc, key uint64) ([]byte, bool, error) {
	if key == 0 {
		return nil, false, ErrZeroKey
	}
	page, err := v.loadPage(p, v.pageBlock(key))
	if err != nil {
		return nil, false, err
	}
	row, ok := pageLookup(page, key)
	if !ok {
		return nil, false, nil
	}
	return row.Val, true, nil
}

// Scan visits every row in page order; fn returning false stops the scan.
// A scan is sequential by nature, so the data region is preloaded with one
// fused range read (when the image supports it) instead of one random read
// per page.
func (v *View) Scan(p *sim.Proc, fn func(Row) bool) error {
	if err := v.preload(p); err != nil {
		return err
	}
	for b := v.dataBase; b < v.dataBase+v.dataPages; b++ {
		page, err := v.loadPage(p, b)
		if err != nil {
			return err
		}
		for _, row := range pageRows(page) {
			if !fn(row) {
				return nil
			}
		}
	}
	return nil
}

// preload pulls every data page not already in the overlay with one fused
// sequential read. Pages replayed from the WAL keep their overlay content.
func (v *View) preload(p *sim.Proc) error {
	if v.preloaded {
		return nil
	}
	v.preloaded = true
	rr, ok := v.vol.(blockRangeReader)
	if !ok {
		return nil // per-page loads below
	}
	blocks, err := rr.ReadRange(p, v.dataBase, int(v.dataPages))
	if err != nil {
		return err
	}
	for i, blk := range blocks {
		b := v.dataBase + int64(i)
		if _, ok := v.overlay[b]; !ok {
			v.overlay[b] = blk
		}
	}
	return nil
}

// CommittedTxns returns the transaction IDs whose commit record was in the
// image's WAL valid prefix, sorted ascending.
func (v *View) CommittedTxns() []uint64 {
	out := make([]uint64, 0, len(v.committed))
	for id := range v.committed {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasCommitted reports whether the transaction ID committed in this image.
func (v *View) HasCommitted(txid uint64) bool { return v.committed[txid] }

// RecoveredTxns returns how many committed transactions the replay found.
func (v *View) RecoveredTxns() int { return v.recovered }

// ReplayTime returns the simulated time the WAL replay took.
func (v *View) ReplayTime() time.Duration { return v.replayDur }

// SawTornTail reports whether the WAL prefix ended in a torn record.
func (v *View) SawTornTail() bool { return v.torn }
