// Package db is the transactional record store the demonstration's Oracle
// databases are substituted with. One DB instance lives on one storage
// volume (through the replication.BlockWriter interface, so the same code
// runs unreplicated, under ADC, or under SDC).
//
// Durability protocol (redo-only, no-steal/no-force):
//
//   - updates buffer in the transaction until Commit;
//   - Commit writes the transaction's update records plus a commit record
//     to the WAL region and acknowledges after those block writes — commit
//     latency is therefore exactly the volume's write-ack latency, which is
//     what makes the SDC-vs-ADC slowdown measurable at the database level;
//   - data pages are updated in memory and flushed only at Checkpoint, so
//     pages on disk never contain uncommitted data (no undo needed);
//   - Open replays the WAL's valid prefix: transactions with a commit
//     record in the prefix are redone in log order, everything else is
//     discarded.
//
// Volume layout: block 0 superblock | blocks 1..WALBlocks WAL | data pages.
package db

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/wal"
)

// Database-level errors.
var (
	// ErrNotFormatted reports a volume without a valid superblock.
	ErrNotFormatted = errors.New("db: volume is not a formatted database")
	// ErrTxnTooLarge reports a transaction whose WAL footprint exceeds the
	// whole WAL region.
	ErrTxnTooLarge = errors.New("db: transaction exceeds WAL capacity")
	// ErrVolumeTooSmall reports a volume without room for WAL plus data.
	ErrVolumeTooSmall = errors.New("db: volume too small")
	// ErrTxnDone reports reuse of a committed or aborted transaction.
	ErrTxnDone = errors.New("db: transaction already finished")
)

// Config tunes a database instance.
type Config struct {
	// WALBlocks is the size of the WAL region in blocks (default 64).
	WALBlocks int
}

func (c Config) withDefaults() Config {
	if c.WALBlocks <= 0 {
		c.WALBlocks = 64
	}
	return c
}

// DB is one database instance on one volume.
type DB struct {
	name string
	vol  replication.BlockWriter
	cfg  Config

	blockSize int
	walBase   int64 // first WAL block
	dataBase  int64 // first data page block
	dataPages int64

	epoch    uint32
	walSeq   uint32 // sequence (and region offset) of the current head block
	walBuf   []byte // encoded records in the head block (no header)
	nextTxID uint64

	pages     map[int64][]byte // cached data pages by absolute block index
	dirty     map[int64]bool
	committed map[uint64]bool
	mu        *sim.Resource // serializes commits and checkpoints

	// Commit-path scratch, reused under mu so steady-state commits do not
	// allocate per record (the E11 fleet runs hundreds of databases).
	encBuf     []byte   // all of one transaction's encoded records
	encOffs    []int    // record end offsets in encBuf
	encSlices  [][]byte // per-record views into encBuf
	sizeBuf    []int    // per-record encoded sizes
	probeBuf   []byte   // page copy for pre-commit room probing
	blkScratch []byte   // block staging for WAL/superblock writes

	// Stats.
	commits         int64
	walWrites       int64
	pageFlushes     int64
	checkpoints     int64
	recoveredTxns   int
	recoveryTime    time.Duration
	recoveryCorrupt bool
}

// Open attaches to the volume, formatting it on first use and running
// crash recovery otherwise. Recovery cost (reads, page redo, checkpoint) is
// paid in simulated time; RecoveryTime reports it.
func Open(p *sim.Proc, name string, vol replication.BlockWriter, cfg Config) (*DB, error) {
	cfg = cfg.withDefaults()
	d := &DB{
		name:      name,
		vol:       vol,
		cfg:       cfg,
		blockSize: vol.BlockSize(),
		walBase:   1,
		dataBase:  int64(1 + cfg.WALBlocks),
		dataPages: vol.SizeBlocks() - int64(1+cfg.WALBlocks),
		pages:     make(map[int64][]byte),
		dirty:     make(map[int64]bool),
		committed: make(map[uint64]bool),
		nextTxID:  1,
		epoch:     1,
		mu:        p.Env().NewResource(1),
	}
	if d.dataPages <= 0 {
		return nil, fmt.Errorf("%w: %d blocks with %d WAL blocks", ErrVolumeTooSmall, vol.SizeBlocks(), cfg.WALBlocks)
	}
	sb, err := vol.Read(p, 0)
	if err != nil {
		return nil, err
	}
	meta, ok := decodeSuperblock(sb)
	if !ok {
		// Fresh volume: format it.
		if err := d.writeSuperblock(p); err != nil {
			return nil, err
		}
		return d, nil
	}
	if meta.walBlocks != uint32(cfg.WALBlocks) {
		return nil, fmt.Errorf("db: %s: WAL size mismatch: on-disk %d, config %d", name, meta.walBlocks, cfg.WALBlocks)
	}
	d.epoch = meta.epoch
	d.nextTxID = meta.nextTxID
	if err := d.recover(p); err != nil {
		return nil, err
	}
	return d, nil
}

// recover replays the WAL valid prefix and checkpoints the result.
func (d *DB) recover(p *sim.Proc) error {
	start := p.Now()
	blocks, err := readBlockRange(p, d.vol, d.walBase, d.cfg.WALBlocks)
	if err != nil {
		return err
	}
	recs, err := wal.ScanLog(blocks, d.epoch)
	if err != nil && !errors.Is(err, wal.ErrCorrupt) {
		return err
	}
	d.recoveryCorrupt = errors.Is(err, wal.ErrCorrupt)
	// Analysis: find transactions whose commit record survived.
	durable := make(map[uint64]bool)
	for _, r := range recs {
		if r.Type == wal.TypeCommit {
			durable[r.TxID] = true
		}
		if r.TxID >= d.nextTxID {
			d.nextTxID = r.TxID + 1
		}
	}
	// Redo committed transactions' updates in log order.
	for _, r := range recs {
		if r.Type != wal.TypeUpdate || !durable[r.TxID] {
			continue
		}
		page, err := d.loadPage(p, d.pageBlock(r.Key))
		if err != nil {
			return err
		}
		if err := pageUpsert(page, Row{Key: r.Key, TxID: r.TxID, Val: r.Val}); err != nil {
			return fmt.Errorf("db: %s: redo tx %d: %w", d.name, r.TxID, err)
		}
		d.dirty[d.pageBlock(r.Key)] = true
	}
	for id := range durable {
		d.committed[id] = true
	}
	d.recoveredTxns = len(durable)
	// Checkpoint so the replay is durable and the WAL restarts fresh.
	if err := d.Checkpoint(p); err != nil {
		return err
	}
	d.recoveryTime = p.Now() - start
	return nil
}

// Name returns the database name.
func (d *DB) Name() string { return d.name }

// pageBlock maps a key to its home page's absolute block index.
func (d *DB) pageBlock(key uint64) int64 {
	return d.dataBase + int64(key%uint64(d.dataPages))
}

// loadPage returns the cached page, reading it from the volume on miss.
func (d *DB) loadPage(p *sim.Proc, block int64) ([]byte, error) {
	if pg, ok := d.pages[block]; ok {
		return pg, nil
	}
	pg, err := d.vol.Read(p, block)
	if err != nil {
		return nil, err
	}
	d.pages[block] = pg
	return pg, nil
}

// Get returns the value for key and whether it exists.
func (d *DB) Get(p *sim.Proc, key uint64) ([]byte, bool, error) {
	if key == 0 {
		return nil, false, ErrZeroKey
	}
	page, err := d.loadPage(p, d.pageBlock(key))
	if err != nil {
		return nil, false, err
	}
	row, ok := pageLookup(page, key)
	if !ok {
		return nil, false, nil
	}
	return row.Val, true, nil
}

// Scan visits every row in page order; fn returning false stops the scan.
func (d *DB) Scan(p *sim.Proc, fn func(Row) bool) error {
	// Sequential scan: pull any uncached part of the data region with one
	// fused range read instead of one random read per page. Cached (and in
	// particular dirty) pages are kept.
	if rr, ok := d.vol.(blockRangeReader); ok {
		missing := false
		for b := d.dataBase; b < d.dataBase+d.dataPages; b++ {
			if _, ok := d.pages[b]; !ok {
				missing = true
				break
			}
		}
		if missing {
			blocks, err := rr.ReadRange(p, d.dataBase, int(d.dataPages))
			if err != nil {
				return err
			}
			for i, blk := range blocks {
				b := d.dataBase + int64(i)
				if _, ok := d.pages[b]; !ok {
					d.pages[b] = blk
				}
			}
		}
	}
	for b := d.dataBase; b < d.dataBase+d.dataPages; b++ {
		page, err := d.loadPage(p, b)
		if err != nil {
			return err
		}
		for _, row := range pageRows(page) {
			if !fn(row) {
				return nil
			}
		}
	}
	return nil
}

// walCapacity is the usable bytes per WAL block.
func (d *DB) walCapacity() int { return d.blockSize - wal.BlockHeaderSize }

// flushWAL appends encoded records to the log and writes every affected
// block: blocks sealed during this flush in their final full form, then the
// (possibly partial) head block. The head block is rewritten in place as it
// fills across commits; the block header's (epoch, seq) keeps scans honest.
func (d *DB) flushWAL(p *sim.Proc, encodedRecs [][]byte) error {
	// Dry-run the packing before touching any state. The overflow error used
	// to fire mid-seal, leaving walSeq past the region end and walBuf reset —
	// a state in which a later head-block write would have landed on the
	// first data page.
	sizes := d.sizeBuf[:0]
	for _, rec := range encodedRecs {
		sizes = append(sizes, len(rec))
	}
	d.sizeBuf = sizes
	if seq, _ := d.walEndPosition(sizes); seq >= d.cfg.WALBlocks {
		return fmt.Errorf("db: %s: WAL overflow during flush", d.name)
	}
	for _, rec := range encodedRecs {
		if len(d.walBuf)+len(rec) > d.walCapacity() {
			if err := d.writeWALBlock(p, d.walSeq, d.walBuf); err != nil {
				return err
			}
			d.walSeq++
			d.walBuf = d.walBuf[:0]
		}
		d.walBuf = append(d.walBuf, rec...)
	}
	return d.writeWALBlock(p, d.walSeq, d.walBuf)
}

// writeWALBlock stages one WAL block in the reusable scratch and writes it
// (the volume copies the data, so the scratch can be reused immediately).
func (d *DB) writeWALBlock(p *sim.Proc, seq uint32, recs []byte) error {
	blk := d.scratchBlock()
	wal.PutBlockHeader(blk, d.epoch, seq)
	copy(blk[wal.BlockHeaderSize:], recs)
	if _, err := d.vol.Write(p, d.walBase+int64(seq), blk); err != nil {
		return err
	}
	d.walWrites++
	return nil
}

// scratchBlock returns the zeroed block-size staging buffer.
func (d *DB) scratchBlock() []byte {
	if d.blkScratch == nil {
		d.blkScratch = make([]byte, d.blockSize)
	} else {
		clear(d.blkScratch)
	}
	return d.blkScratch
}

// walEndPosition returns the head position (block index within the WAL
// region, bytes used in that block) after packing records of the given
// sizes from the current head, honoring the records-never-span-blocks
// rule. It is the single definition of the packing rule that walFits and
// flushWAL's overflow dry-run share; it does not bounds-check the region.
func (d *DB) walEndPosition(sizes []int) (seq, buf int) {
	seq, buf = int(d.walSeq), len(d.walBuf)
	for _, n := range sizes {
		if buf+n > d.walCapacity() {
			seq++
			buf = 0
		}
		buf += n
	}
	return seq, buf
}

// walFits reports whether records of the given encoded sizes can be packed
// into the remaining WAL region from the current head position.
func (d *DB) walFits(sizes []int) bool {
	if int(d.walSeq) >= d.cfg.WALBlocks {
		// Head already past the region end (cannot happen unless state was
		// corrupted, but the last-block boundary must fail closed here, not
		// pass because no record happens to cross a block boundary).
		return false
	}
	seq, _ := d.walEndPosition(sizes)
	return seq < d.cfg.WALBlocks
}

// Checkpoint flushes dirty pages, bumps the log epoch, and resets the WAL
// head — the no-force flush point.
func (d *DB) Checkpoint(p *sim.Proc) error {
	blocks := make([]int64, 0, len(d.dirty))
	for b := range d.dirty {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	for _, b := range blocks {
		if _, err := d.vol.Write(p, b, d.pages[b]); err != nil {
			return err
		}
		d.pageFlushes++
		delete(d.dirty, b)
	}
	d.epoch++
	d.walSeq = 0
	d.walBuf = d.walBuf[:0]
	if err := d.writeSuperblock(p); err != nil {
		return err
	}
	d.checkpoints++
	return nil
}

// CommittedTxns returns the IDs of every transaction known committed (from
// recovery plus this session), sorted ascending. The consistency verifier
// compares these sets across databases.
func (d *DB) CommittedTxns() []uint64 {
	out := make([]uint64, 0, len(d.committed))
	for id := range d.committed {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasCommitted reports whether the transaction ID is known committed.
func (d *DB) HasCommitted(txid uint64) bool { return d.committed[txid] }

// Commits returns the number of transactions committed this session.
func (d *DB) Commits() int64 { return d.commits }

// WALWrites returns the number of WAL block writes issued.
func (d *DB) WALWrites() int64 { return d.walWrites }

// PageFlushes returns the number of data-page writes issued.
func (d *DB) PageFlushes() int64 { return d.pageFlushes }

// Checkpoints returns the number of checkpoints taken.
func (d *DB) Checkpoints() int64 { return d.checkpoints }

// RecoveredTxns returns how many committed transactions recovery replayed.
func (d *DB) RecoveredTxns() int { return d.recoveredTxns }

// RecoveryTime returns the simulated time recovery took at Open (zero for a
// freshly formatted volume).
func (d *DB) RecoveryTime() time.Duration { return d.recoveryTime }

// RecoverySawTornTail reports whether recovery hit a torn record at the end
// of the WAL prefix (normal after a mid-write crash; the prefix before the
// tear was replayed).
func (d *DB) RecoverySawTornTail() bool { return d.recoveryCorrupt }

// Superblock layout: magic(4) + version(2) + epoch(4) + walBlocks(4) +
// nextTxID(8) + crc(4).
const (
	sbMagic   = 0x5A42_4442 // "ZBDB"
	sbVersion = 1
	sbSize    = 4 + 2 + 4 + 4 + 8 + 4
)

type superblock struct {
	epoch     uint32
	walBlocks uint32
	nextTxID  uint64
}

func (d *DB) writeSuperblock(p *sim.Proc) error {
	blk := d.scratchBlock()
	binary.LittleEndian.PutUint32(blk[0:4], sbMagic)
	binary.LittleEndian.PutUint16(blk[4:6], sbVersion)
	binary.LittleEndian.PutUint32(blk[6:10], d.epoch)
	binary.LittleEndian.PutUint32(blk[10:14], uint32(d.cfg.WALBlocks))
	binary.LittleEndian.PutUint64(blk[14:22], d.nextTxID)
	binary.LittleEndian.PutUint32(blk[22:26], crc32.ChecksumIEEE(blk[0:22]))
	_, err := d.vol.Write(p, 0, blk)
	return err
}

func decodeSuperblock(blk []byte) (superblock, bool) {
	if len(blk) < sbSize {
		return superblock{}, false
	}
	if binary.LittleEndian.Uint32(blk[0:4]) != sbMagic {
		return superblock{}, false
	}
	if binary.LittleEndian.Uint32(blk[22:26]) != crc32.ChecksumIEEE(blk[0:22]) {
		return superblock{}, false
	}
	return superblock{
		epoch:     binary.LittleEndian.Uint32(blk[6:10]),
		walBlocks: binary.LittleEndian.Uint32(blk[10:14]),
		nextTxID:  binary.LittleEndian.Uint64(blk[14:22]),
	}, true
}

func (d *DB) String() string {
	return fmt.Sprintf("DB(%s){epoch=%d commits=%d}", d.name, d.epoch, d.commits)
}
