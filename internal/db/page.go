package db

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Data pages are fixed-slot hash pages: a key hashes to one page, and the
// row occupies the first free slot (or its existing slot on update). Slot
// layout: flags(1) + key(8) + txid(8) + vallen(2) + val[MaxValLen].
const (
	// MaxValLen is the largest value a row can hold.
	MaxValLen = 109
	slotSize  = 1 + 8 + 8 + 2 + MaxValLen // 128 bytes
	slotUsed  = 0x01
)

// Page-level errors.
var (
	// ErrPageFull reports that a key's home page has no free slot.
	ErrPageFull = errors.New("db: page full")
	// ErrValTooLarge reports a value over MaxValLen bytes.
	ErrValTooLarge = errors.New("db: value too large")
	// ErrZeroKey reports key 0, which is reserved.
	ErrZeroKey = errors.New("db: key must be nonzero")
)

// Row is one stored record.
type Row struct {
	Key  uint64
	TxID uint64 // transaction that last wrote the row
	Val  []byte
}

func slotsPerPage(blockSize int) int { return blockSize / slotSize }

// pageLookup scans a page for key; it returns the row and true when found.
func pageLookup(page []byte, key uint64) (Row, bool) {
	n := slotsPerPage(len(page))
	for i := 0; i < n; i++ {
		off := i * slotSize
		if page[off]&slotUsed == 0 {
			continue
		}
		if binary.LittleEndian.Uint64(page[off+1:off+9]) != key {
			continue
		}
		return decodeSlot(page, off), true
	}
	return Row{}, false
}

// pageUpsert writes the row into its existing slot or the first free one.
func pageUpsert(page []byte, row Row) error {
	if row.Key == 0 {
		return ErrZeroKey
	}
	if len(row.Val) > MaxValLen {
		return fmt.Errorf("%w: %d > %d", ErrValTooLarge, len(row.Val), MaxValLen)
	}
	n := slotsPerPage(len(page))
	free := -1
	for i := 0; i < n; i++ {
		off := i * slotSize
		if page[off]&slotUsed == 0 {
			if free < 0 {
				free = off
			}
			continue
		}
		if binary.LittleEndian.Uint64(page[off+1:off+9]) == row.Key {
			encodeSlot(page, off, row)
			return nil
		}
	}
	if free < 0 {
		return fmt.Errorf("%w: key %d", ErrPageFull, row.Key)
	}
	encodeSlot(page, free, row)
	return nil
}

// pageRows returns every occupied row in slot order.
func pageRows(page []byte) []Row {
	n := slotsPerPage(len(page))
	var out []Row
	for i := 0; i < n; i++ {
		off := i * slotSize
		if page[off]&slotUsed == 0 {
			continue
		}
		out = append(out, decodeSlot(page, off))
	}
	return out
}

func encodeSlot(page []byte, off int, row Row) {
	page[off] = slotUsed
	binary.LittleEndian.PutUint64(page[off+1:off+9], row.Key)
	binary.LittleEndian.PutUint64(page[off+9:off+17], row.TxID)
	binary.LittleEndian.PutUint16(page[off+17:off+19], uint16(len(row.Val)))
	copy(page[off+19:off+19+MaxValLen], make([]byte, MaxValLen))
	copy(page[off+19:], row.Val)
}

func decodeSlot(page []byte, off int) Row {
	key := binary.LittleEndian.Uint64(page[off+1 : off+9])
	txid := binary.LittleEndian.Uint64(page[off+9 : off+17])
	vlen := int(binary.LittleEndian.Uint16(page[off+17 : off+19]))
	if vlen > MaxValLen {
		vlen = MaxValLen
	}
	val := make([]byte, vlen)
	copy(val, page[off+19:off+19+vlen])
	return Row{Key: key, TxID: txid, Val: val}
}
