package db

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/storage"
)

// fixture builds a fresh array + volume and runs fn inside one process.
func withVolume(t *testing.T, sizeBlocks int64, fn func(p *sim.Proc, vol *storage.Volume)) {
	t.Helper()
	env := sim.NewEnv(1)
	a := storage.NewArray(env, "arr", storage.Config{})
	vol, err := a.CreateVolume("dbvol", sizeBlocks)
	if err != nil {
		t.Fatal(err)
	}
	failed := false
	env.Process("test", func(p *sim.Proc) {
		defer func() {
			if r := recover(); r != nil {
				failed = true
				t.Errorf("panic in sim process: %v", r)
			}
		}()
		fn(p, vol)
	})
	env.Run(0)
	if failed {
		t.FailNow()
	}
}

func TestOpenFormatsFreshVolume(t *testing.T) {
	withVolume(t, 256, func(p *sim.Proc, vol *storage.Volume) {
		d, err := Open(p, "sales", vol, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if d.RecoveredTxns() != 0 || d.RecoveryTime() != 0 {
			t.Fatalf("fresh open ran recovery: %d txns %v", d.RecoveredTxns(), d.RecoveryTime())
		}
		if _, found, err := d.Get(p, 42); err != nil || found {
			t.Fatalf("fresh db has data: found=%v err=%v", found, err)
		}
	})
}

func TestOpenRejectsTinyVolume(t *testing.T) {
	withVolume(t, 10, func(p *sim.Proc, vol *storage.Volume) {
		if _, err := Open(p, "x", vol, Config{WALBlocks: 64}); !errors.Is(err, ErrVolumeTooSmall) {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestCommitAndGet(t *testing.T) {
	withVolume(t, 256, func(p *sim.Proc, vol *storage.Volume) {
		d, _ := Open(p, "sales", vol, Config{})
		tx := d.Begin()
		if err := tx.Put(1, []byte("order-1")); err != nil {
			t.Fatal(err)
		}
		if err := tx.Put(2, []byte("order-2")); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(p); err != nil {
			t.Fatal(err)
		}
		v, found, err := d.Get(p, 1)
		if err != nil || !found || string(v) != "order-1" {
			t.Fatalf("get: %q %v %v", v, found, err)
		}
		if d.Commits() != 1 || !d.HasCommitted(tx.ID()) {
			t.Fatal("commit bookkeeping wrong")
		}
	})
}

func TestUncommittedInvisible(t *testing.T) {
	withVolume(t, 256, func(p *sim.Proc, vol *storage.Volume) {
		d, _ := Open(p, "sales", vol, Config{})
		tx := d.Begin()
		tx.Put(7, []byte("pending"))
		if _, found, _ := d.Get(p, 7); found {
			t.Fatal("uncommitted update visible")
		}
		tx.Abort()
		if _, found, _ := d.Get(p, 7); found {
			t.Fatal("aborted update visible")
		}
		if err := tx.Commit(p); !errors.Is(err, ErrTxnDone) {
			t.Fatalf("commit after abort: %v", err)
		}
	})
}

func TestTxnValidation(t *testing.T) {
	withVolume(t, 256, func(p *sim.Proc, vol *storage.Volume) {
		d, _ := Open(p, "sales", vol, Config{})
		tx := d.Begin()
		if err := tx.Put(0, []byte("x")); !errors.Is(err, ErrZeroKey) {
			t.Fatalf("zero key: %v", err)
		}
		if err := tx.Put(1, make([]byte, MaxValLen+1)); !errors.Is(err, ErrValTooLarge) {
			t.Fatalf("huge val: %v", err)
		}
		if err := tx.Put(1, make([]byte, MaxValLen)); err != nil {
			t.Fatalf("max val rejected: %v", err)
		}
		if err := tx.Commit(p); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(p); !errors.Is(err, ErrTxnDone) {
			t.Fatalf("double commit: %v", err)
		}
	})
}

func TestUpdateOverwritesInPlace(t *testing.T) {
	withVolume(t, 256, func(p *sim.Proc, vol *storage.Volume) {
		d, _ := Open(p, "sales", vol, Config{})
		for i := 0; i < 3; i++ {
			tx := d.Begin()
			tx.Put(5, []byte(fmt.Sprintf("v%d", i)))
			if err := tx.Commit(p); err != nil {
				t.Fatal(err)
			}
		}
		v, _, _ := d.Get(p, 5)
		if string(v) != "v2" {
			t.Fatalf("v = %q", v)
		}
		// One key = one slot: scanning sees a single row for key 5.
		n := 0
		d.Scan(p, func(r Row) bool {
			if r.Key == 5 {
				n++
			}
			return true
		})
		if n != 1 {
			t.Fatalf("key 5 occupies %d slots", n)
		}
	})
}

func TestCrashRecoveryReplaysCommitted(t *testing.T) {
	withVolume(t, 256, func(p *sim.Proc, vol *storage.Volume) {
		d, _ := Open(p, "sales", vol, Config{})
		tx1 := d.Begin()
		tx1.Put(1, []byte("committed"))
		if err := tx1.Commit(p); err != nil {
			t.Fatal(err)
		}
		tx2 := d.Begin()
		tx2.Put(2, []byte("never-committed"))
		// Crash: drop the DB without checkpoint; tx2 never committed.
		d2, err := Open(p, "sales", vol, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if d2.RecoveredTxns() != 1 {
			t.Fatalf("recovered %d txns, want 1", d2.RecoveredTxns())
		}
		v, found, _ := d2.Get(p, 1)
		if !found || string(v) != "committed" {
			t.Fatalf("lost committed data: %q %v", v, found)
		}
		if _, found, _ := d2.Get(p, 2); found {
			t.Fatal("uncommitted data resurrected")
		}
		if !d2.HasCommitted(tx1.ID()) || d2.HasCommitted(tx2.ID()) {
			t.Fatal("committed-set wrong after recovery")
		}
		if d2.RecoveryTime() <= 0 {
			t.Fatal("recovery consumed no simulated time")
		}
	})
}

func TestRecoveryAfterCheckpointAndMoreCommits(t *testing.T) {
	withVolume(t, 256, func(p *sim.Proc, vol *storage.Volume) {
		d, _ := Open(p, "sales", vol, Config{})
		tx := d.Begin()
		tx.Put(1, []byte("before-ckpt"))
		tx.Commit(p)
		if err := d.Checkpoint(p); err != nil {
			t.Fatal(err)
		}
		tx2 := d.Begin()
		tx2.Put(2, []byte("after-ckpt"))
		tx2.Commit(p)
		// Crash and recover: page data from the checkpoint + WAL delta.
		d2, err := Open(p, "sales", vol, Config{})
		if err != nil {
			t.Fatal(err)
		}
		v1, f1, _ := d2.Get(p, 1)
		v2, f2, _ := d2.Get(p, 2)
		if !f1 || string(v1) != "before-ckpt" {
			t.Fatalf("lost checkpointed data: %q %v", v1, f1)
		}
		if !f2 || string(v2) != "after-ckpt" {
			t.Fatalf("lost WAL delta: %q %v", v2, f2)
		}
		// Only the post-checkpoint txn is replayed from WAL.
		if d2.RecoveredTxns() != 1 {
			t.Fatalf("recovered %d, want 1", d2.RecoveredTxns())
		}
	})
}

func TestRepeatedCrashRecoveryIdempotent(t *testing.T) {
	withVolume(t, 256, func(p *sim.Proc, vol *storage.Volume) {
		d, _ := Open(p, "sales", vol, Config{})
		for i := uint64(1); i <= 5; i++ {
			tx := d.Begin()
			tx.Put(i, []byte{byte(i)})
			tx.Commit(p)
		}
		for round := 0; round < 3; round++ {
			d2, err := Open(p, "sales", vol, Config{})
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			for i := uint64(1); i <= 5; i++ {
				v, found, _ := d2.Get(p, i)
				if !found || v[0] != byte(i) {
					t.Fatalf("round %d key %d: %v %v", round, i, v, found)
				}
			}
		}
	})
}

func TestWALWrapTriggersCheckpoint(t *testing.T) {
	withVolume(t, 300, func(p *sim.Proc, vol *storage.Volume) {
		d, _ := Open(p, "sales", vol, Config{WALBlocks: 4})
		// Each commit logs ~190 bytes; a 4-block WAL (~16KB) fills after
		// enough commits and must checkpoint automatically.
		for i := uint64(1); i <= 400; i++ {
			tx := d.Begin()
			tx.Put(i%50+1, bytes.Repeat([]byte{byte(i)}, 100))
			if err := tx.Commit(p); err != nil {
				t.Fatalf("commit %d: %v", i, err)
			}
		}
		if d.Checkpoints() == 0 {
			t.Fatal("WAL never checkpointed despite wrapping")
		}
		// All data still correct after a crash.
		d2, err := Open(p, "sales", vol, Config{WALBlocks: 4})
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(351); i <= 400; i++ {
			key := i%50 + 1
			v, found, _ := d2.Get(p, key)
			if !found || len(v) != 100 {
				t.Fatalf("key %d: found=%v len=%d", key, found, len(v))
			}
		}
	})
}

func TestTxnTooLargeForWAL(t *testing.T) {
	withVolume(t, 300, func(p *sim.Proc, vol *storage.Volume) {
		d, _ := Open(p, "sales", vol, Config{WALBlocks: 1})
		tx := d.Begin()
		for i := uint64(1); i <= 100; i++ {
			tx.Put(i, bytes.Repeat([]byte{1}, 100))
		}
		if err := tx.Commit(p); !errors.Is(err, ErrTxnTooLarge) {
			t.Fatalf("err = %v, want ErrTxnTooLarge", err)
		}
	})
}

func TestPageFullError(t *testing.T) {
	// Volume sized so all keys land on very few pages; overfill one page.
	withVolume(t, 70, func(p *sim.Proc, vol *storage.Volume) {
		d, err := Open(p, "sales", vol, Config{WALBlocks: 4})
		if err != nil {
			t.Fatal(err)
		}
		// dataPages = 70-5 = 65; key k hits page k%65. Keys 1, 66, 131, ...
		// all map to page 1. A 4096B page holds 32 slots.
		var commitErr error
		for i := 0; i < 40; i++ {
			tx := d.Begin()
			tx.Put(uint64(1+65*i), []byte("x"))
			if commitErr = tx.Commit(p); commitErr != nil {
				break
			}
		}
		if !errors.Is(commitErr, ErrPageFull) {
			t.Fatalf("err = %v, want ErrPageFull", commitErr)
		}
	})
}

func TestCommitLatencyTracksVolumeWriteLatency(t *testing.T) {
	// The E5 mechanism in miniature: commit latency equals WAL block write
	// latency, so a slower (SDC-like) volume slows commits proportionally.
	latency := func(writeLat time.Duration) time.Duration {
		env := sim.NewEnv(1)
		a := storage.NewArray(env, "arr", storage.Config{WriteLatency: writeLat})
		vol, _ := a.CreateVolume("v", 256)
		var took time.Duration
		env.Process("t", func(p *sim.Proc) {
			d, _ := Open(p, "x", vol, Config{})
			tx := d.Begin()
			tx.Put(1, []byte("v"))
			start := p.Now()
			tx.Commit(p)
			took = p.Now() - start
		})
		env.Run(0)
		return took
	}
	fast, slow := latency(100*time.Microsecond), latency(10*time.Millisecond)
	if slow < 50*fast {
		t.Fatalf("commit latency did not track write latency: fast=%v slow=%v", fast, slow)
	}
}

func TestBeginWithIDCoordinatesAcrossDBs(t *testing.T) {
	withVolume(t, 256, func(p *sim.Proc, vol *storage.Volume) {
		d, _ := Open(p, "sales", vol, Config{})
		tx := d.BeginWithID(1000)
		tx.Put(1, []byte("x"))
		tx.Commit(p)
		if !d.HasCommitted(1000) {
			t.Fatal("explicit txid not recorded")
		}
		// Auto IDs continue past explicit ones.
		tx2 := d.Begin()
		if tx2.ID() <= 1000 {
			t.Fatalf("auto ID %d collided with explicit range", tx2.ID())
		}
	})
}

func TestScanVisitsAllRows(t *testing.T) {
	withVolume(t, 256, func(p *sim.Proc, vol *storage.Volume) {
		d, _ := Open(p, "sales", vol, Config{})
		want := map[uint64]string{}
		for i := uint64(1); i <= 30; i++ {
			tx := d.Begin()
			val := fmt.Sprintf("row-%d", i)
			tx.Put(i, []byte(val))
			tx.Commit(p)
			want[i] = val
		}
		got := map[uint64]string{}
		d.Scan(p, func(r Row) bool {
			got[r.Key] = string(r.Val)
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("scan found %d rows, want %d", len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("key %d = %q, want %q", k, got[k], v)
			}
		}
	})
}

func TestScanEarlyStop(t *testing.T) {
	withVolume(t, 256, func(p *sim.Proc, vol *storage.Volume) {
		d, _ := Open(p, "sales", vol, Config{})
		for i := uint64(1); i <= 10; i++ {
			tx := d.Begin()
			tx.Put(i, []byte("x"))
			tx.Commit(p)
		}
		n := 0
		d.Scan(p, func(r Row) bool {
			n++
			return n < 3
		})
		if n != 3 {
			t.Fatalf("visited %d rows after early stop", n)
		}
	})
}

func TestViewReadsSnapshotImage(t *testing.T) {
	env := sim.NewEnv(1)
	a := storage.NewArray(env, "arr", storage.Config{})
	vol, _ := a.CreateVolume("v", 256)
	env.Process("t", func(p *sim.Proc) {
		d, _ := Open(p, "sales", vol, Config{})
		tx := d.Begin()
		tx.Put(1, []byte("at-snap"))
		tx.Commit(p)
		d.Checkpoint(p)

		snap, err := a.CreateSnapshot("s", "v")
		if err != nil {
			t.Error(err)
			return
		}
		// Mutate after the snapshot; the view must not see it.
		tx2 := d.Begin()
		tx2.Put(1, []byte("after-snap"))
		tx2.Put(2, []byte("new"))
		tx2.Commit(p)
		d.Checkpoint(p)

		view, err := OpenView(p, "analytics", snap, Config{})
		if err != nil {
			t.Error(err)
			return
		}
		v, found, _ := view.Get(p, 1)
		if !found || string(v) != "at-snap" {
			t.Errorf("view sees %q, want at-snap", v)
		}
		if _, found, _ := view.Get(p, 2); found {
			t.Error("view sees post-snapshot row")
		}
	})
	env.Run(0)
}

func TestViewReplaysWALFromImage(t *testing.T) {
	// Snapshot taken WITHOUT checkpoint: data only in WAL. The view's
	// replay must surface it.
	env := sim.NewEnv(1)
	a := storage.NewArray(env, "arr", storage.Config{})
	vol, _ := a.CreateVolume("v", 256)
	env.Process("t", func(p *sim.Proc) {
		d, _ := Open(p, "sales", vol, Config{})
		tx := d.Begin()
		tx.Put(9, []byte("wal-only"))
		tx.Commit(p)
		snap, _ := a.CreateSnapshot("s", "v")
		view, err := OpenView(p, "analytics", snap, Config{})
		if err != nil {
			t.Error(err)
			return
		}
		v, found, _ := view.Get(p, 9)
		if !found || string(v) != "wal-only" {
			t.Errorf("view replay missed WAL delta: %q %v", v, found)
		}
		if view.RecoveredTxns() != 1 {
			t.Errorf("recovered = %d", view.RecoveredTxns())
		}
		if view.ReplayTime() <= 0 {
			t.Error("replay consumed no simulated time")
		}
	})
	env.Run(0)
}

func TestViewRejectsUnformattedImage(t *testing.T) {
	env := sim.NewEnv(1)
	a := storage.NewArray(env, "arr", storage.Config{})
	vol, _ := a.CreateVolume("v", 256)
	env.Process("t", func(p *sim.Proc) {
		if _, err := OpenView(p, "x", vol, Config{}); !errors.Is(err, ErrNotFormatted) {
			t.Errorf("err = %v", err)
		}
	})
	env.Run(0)
}

func TestViewDoesNotWriteImage(t *testing.T) {
	env := sim.NewEnv(1)
	a := storage.NewArray(env, "arr", storage.Config{})
	vol, _ := a.CreateVolume("v", 256)
	env.Process("t", func(p *sim.Proc) {
		d, _ := Open(p, "sales", vol, Config{})
		tx := d.Begin()
		tx.Put(1, []byte("x"))
		tx.Commit(p)
		writesBefore := vol.Writes()
		if _, err := OpenView(p, "view", vol, Config{}); err != nil {
			t.Error(err)
		}
		if vol.Writes() != writesBefore {
			t.Error("read-only view wrote to the volume")
		}
	})
	env.Run(0)
}

func TestWALSizeMismatchRejected(t *testing.T) {
	withVolume(t, 256, func(p *sim.Proc, vol *storage.Volume) {
		if _, err := Open(p, "sales", vol, Config{WALBlocks: 16}); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(p, "sales", vol, Config{WALBlocks: 32}); err == nil {
			t.Fatal("mismatched WAL size accepted")
		}
	})
}
