package db

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Regression tests for the overflow/walFits pair at the last WAL block.
// The historical bug: flushWAL sealed a block, bumped walSeq past the region
// end, and only then reported overflow — leaving walSeq == WALBlocks with an
// empty head buffer. In that state walFits (which bounds-checked only when a
// record crossed a block boundary) approved small transactions, and the next
// head-block write would have landed on the first data page.

// TestWALFitsRejectsHeadPastRegion pins the fixed off-by-one: with the head
// at (or past) the region end, walFits must fail closed even for records
// that fit in one block.
func TestWALFitsRejectsHeadPastRegion(t *testing.T) {
	withVolume(t, 256, func(p *sim.Proc, vol *storage.Volume) {
		d, err := Open(p, "x", vol, Config{WALBlocks: 4})
		if err != nil {
			t.Fatal(err)
		}
		d.walSeq = 4 // corrupted/overflowed head position
		if d.walFits([]int{wal.Overhead}) {
			t.Fatal("walFits approved a record with the WAL head past the region end")
		}
	})
}

// TestWALFitsLastBlockBoundary pins the exact boundary: a record set that
// just fills the final block fits; one byte more does not.
func TestWALFitsLastBlockBoundary(t *testing.T) {
	withVolume(t, 256, func(p *sim.Proc, vol *storage.Volume) {
		d, err := Open(p, "x", vol, Config{WALBlocks: 4})
		if err != nil {
			t.Fatal(err)
		}
		d.walSeq = 3 // head on the last block
		cap := d.walCapacity()
		if !d.walFits([]int{cap}) {
			t.Fatal("record exactly filling the last block should fit")
		}
		if d.walFits([]int{cap, 1}) {
			t.Fatal("record past the last block must not fit")
		}
		d.walBuf = append(d.walBuf, make([]byte, cap)...) // last block full
		if d.walFits([]int{1}) {
			t.Fatal("full last block must not fit another record")
		}
	})
}

// TestFlushWALOverflowLeavesStateIntact pins that an overflowing flush is
// rejected up front: no state mutation, no block writes, and the database
// still works afterwards.
func TestFlushWALOverflowLeavesStateIntact(t *testing.T) {
	withVolume(t, 256, func(p *sim.Proc, vol *storage.Volume) {
		d, err := Open(p, "x", vol, Config{WALBlocks: 4})
		if err != nil {
			t.Fatal(err)
		}
		d.walSeq = 3
		d.walBuf = append(d.walBuf, make([]byte, d.walCapacity()-1)...)
		seq, buflen, writes := d.walSeq, len(d.walBuf), d.walWrites
		err = d.flushWAL(p, [][]byte{make([]byte, 2)}) // seals block 3, needs block 4
		if err == nil || !strings.Contains(err.Error(), "WAL overflow") {
			t.Fatalf("err = %v, want WAL overflow", err)
		}
		if d.walSeq != seq || len(d.walBuf) != buflen {
			t.Fatalf("overflow mutated head state: seq %d->%d buf %d->%d", seq, d.walSeq, buflen, len(d.walBuf))
		}
		if d.walWrites != writes {
			t.Fatalf("overflow issued %d block writes", d.walWrites-writes)
		}
		// The database recovers by checkpointing (what Commit does on a
		// failed fit check) and keeps working.
		d.walSeq, d.walBuf = 3, d.walBuf[:0]
		if err := d.Checkpoint(p); err != nil {
			t.Fatal(err)
		}
		tx := d.Begin()
		if err := tx.Put(7, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(p); err != nil {
			t.Fatal(err)
		}
	})
}

// TestCommitsFillingLastWALBlockRecover drives commits across the full WAL
// region with a tiny WAL (forcing checkpoints at the boundary) and verifies
// no WAL block write ever strays into the data region and every committed
// transaction survives a crash-reopen.
func TestCommitsFillingLastWALBlockRecover(t *testing.T) {
	env := sim.NewEnv(7)
	a := storage.NewArray(env, "arr", storage.Config{})
	vol, err := a.CreateVolume("dbvol", 256)
	if err != nil {
		t.Fatal(err)
	}
	const walBlocks = 2
	want := map[uint64]int{} // key -> length of the last committed value
	env.Process("fill", func(p *sim.Proc) {
		d, err := Open(p, "x", vol, Config{WALBlocks: walBlocks})
		if err != nil {
			t.Error(err)
			return
		}
		// Values sized so records pack irregularly against block boundaries.
		for i := 0; i < 300; i++ {
			tx := d.Begin()
			key := uint64(1 + i%40)
			val := make([]byte, 1+i%MaxValLen)
			if err := tx.Put(key, val); err != nil {
				t.Error(err)
				return
			}
			if err := tx.Commit(p); err != nil {
				t.Errorf("commit %d: %v", i, err)
				return
			}
			want[key] = len(val)
		}
		if d.Checkpoints() == 0 {
			t.Error("tiny WAL never wrapped; boundary untested")
			return
		}
		// Crash (no final checkpoint) and reopen: checkpointed pages plus
		// the WAL delta must reproduce every committed value.
		d2, err := Open(p, "x", vol, Config{WALBlocks: walBlocks})
		if err != nil {
			t.Error(err)
			return
		}
		for key, n := range want {
			v, found, err := d2.Get(p, key)
			if err != nil || !found || len(v) != n {
				t.Errorf("key %d after reopen: found=%v len=%d want %d err=%v", key, found, len(v), n, err)
				return
			}
		}
	})
	env.Run(0)
	// The data region must never have been overwritten by a WAL write: the
	// superblock is block 0, WAL is blocks 1..walBlocks, and every data page
	// must still decode (Scan would fail loudly on a WAL header).
	if got := vol.Peek(0); len(got) == 0 {
		t.Fatal("superblock vanished")
	}
}

// TestTxnTooLargeBoundary pins ErrTxnTooLarge for a transaction that can
// never fit even an empty WAL region, measured at the last-block boundary.
func TestTxnTooLargeBoundary(t *testing.T) {
	withVolume(t, 256, func(p *sim.Proc, vol *storage.Volume) {
		d, err := Open(p, "x", vol, Config{WALBlocks: 1})
		if err != nil {
			t.Fatal(err)
		}
		// Each record fits a block, but together they exceed the one-block
		// region even after the checkpoint Commit takes to make room.
		tx := d.Begin()
		for k := uint64(1); k <= 40; k++ {
			if err := tx.Put(k, make([]byte, MaxValLen)); err != nil {
				t.Fatal(err)
			}
		}
		if err := tx.Commit(p); !errors.Is(err, ErrTxnTooLarge) {
			t.Fatalf("err = %v, want ErrTxnTooLarge", err)
		}
	})
}
