package db

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/wal"
)

// Txn buffers a transaction's updates until Commit. Updates are not visible
// to reads (including the transaction's own) until Commit returns — the
// deferred-update discipline that keeps uncommitted data off disk.
type Txn struct {
	db      *DB
	id      uint64
	updates []Row
	done    bool
}

// Begin starts a transaction with a fresh ID.
func (d *DB) Begin() *Txn {
	id := d.nextTxID
	d.nextTxID++
	return &Txn{db: d, id: id}
}

// BeginWithID starts a transaction with a caller-chosen ID. The e-commerce
// workload uses it to stamp the same business transaction ID into both the
// sales and stock databases so the consistency verifier can correlate them.
func (d *DB) BeginWithID(id uint64) *Txn {
	if id >= d.nextTxID {
		d.nextTxID = id + 1
	}
	return &Txn{db: d, id: id}
}

// ID returns the transaction ID.
func (t *Txn) ID() uint64 { return t.id }

// Put buffers an upsert of key to val.
func (t *Txn) Put(key uint64, val []byte) error {
	if t.done {
		return ErrTxnDone
	}
	if key == 0 {
		return ErrZeroKey
	}
	if len(val) > MaxValLen {
		return fmt.Errorf("%w: %d bytes", ErrValTooLarge, len(val))
	}
	v := make([]byte, len(val))
	copy(v, val)
	t.updates = append(t.updates, Row{Key: key, TxID: t.id, Val: v})
	return nil
}

// Get reads a key with read-your-writes semantics: the transaction's own
// buffered update wins over the committed state.
func (t *Txn) Get(p *sim.Proc, key uint64) ([]byte, bool, error) {
	if t.done {
		return nil, false, ErrTxnDone
	}
	for i := len(t.updates) - 1; i >= 0; i-- {
		if t.updates[i].Key == key {
			out := make([]byte, len(t.updates[i].Val))
			copy(out, t.updates[i].Val)
			return out, true, nil
		}
	}
	return t.db.Get(p, key)
}

// Abort discards the transaction. Nothing was written, so it is free.
func (t *Txn) Abort() { t.done = true }

// encode writes the transaction's update and commit records, stamped with
// the database's current epoch, into the DB's reusable encode buffers and
// returns per-record views. Record boundaries are observed while encoding
// (not derived from pre-computed sizes), so the views stay correct even if
// the encoded size of a record ever depends on its content or epoch.
func (t *Txn) encode() [][]byte {
	d := t.db
	d.encBuf = d.encBuf[:0]
	d.encOffs = d.encOffs[:0]
	for _, u := range t.updates {
		d.encBuf = wal.AppendEncode(d.encBuf, wal.Record{
			Type: wal.TypeUpdate, Epoch: d.epoch, TxID: t.id, Key: u.Key, Val: u.Val,
		})
		d.encOffs = append(d.encOffs, len(d.encBuf))
	}
	d.encBuf = wal.AppendEncode(d.encBuf, wal.Record{
		Type: wal.TypeCommit, Epoch: d.epoch, TxID: t.id,
	})
	d.encOffs = append(d.encOffs, len(d.encBuf))
	d.encSlices = d.encSlices[:0]
	start := 0
	for _, end := range d.encOffs {
		d.encSlices = append(d.encSlices, d.encBuf[start:end])
		start = end
	}
	return d.encSlices
}

// Commit makes the transaction durable: WAL records (updates + commit) are
// flushed to the volume, then the updates are applied to the in-memory
// pages. The ack the caller gets back is the database commit ack whose
// latency E5 measures.
func (t *Txn) Commit(p *sim.Proc) error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	d := t.db
	// Commits serialize: interleaved WAL flushes from concurrent clients
	// would corrupt the head-block state.
	d.mu.Acquire(p)
	defer d.mu.Release()
	// Verify each update lands on a page with room, before logging anything.
	// The probe buffer is reused across updates (and commits); each update is
	// probed against a fresh copy of its clean page.
	if d.probeBuf == nil {
		d.probeBuf = make([]byte, d.blockSize)
	}
	for _, u := range t.updates {
		page, err := d.loadPage(p, d.pageBlock(u.Key))
		if err != nil {
			return err
		}
		copy(d.probeBuf, page)
		if err := pageUpsert(d.probeBuf, u); err != nil {
			return err
		}
	}
	// Size the log entries before encoding anything, so the fit check (and
	// any checkpoint it forces) happens first and the records are encoded
	// exactly once, with the final epoch.
	sizes := d.sizeBuf[:0]
	var totalBytes int
	for _, u := range t.updates {
		n := wal.Record{Type: wal.TypeUpdate, TxID: t.id, Key: u.Key, Val: u.Val}.EncodedSize()
		if n > d.walCapacity() {
			return fmt.Errorf("%w: record %d bytes", ErrTxnTooLarge, n)
		}
		sizes = append(sizes, n)
		totalBytes += n
	}
	commitSize := wal.Record{Type: wal.TypeCommit, TxID: t.id}.EncodedSize()
	sizes = append(sizes, commitSize)
	totalBytes += commitSize
	d.sizeBuf = sizes
	// Make room: a checkpoint empties the WAL but must not run between a
	// transaction's records, so take it up front when the packing check
	// says the records will not fit in the remaining region.
	if !d.walFits(sizes) {
		if err := d.Checkpoint(p); err != nil {
			return err
		}
		if !d.walFits(sizes) {
			return fmt.Errorf("%w: %d bytes", ErrTxnTooLarge, totalBytes)
		}
	}
	if err := d.flushWAL(p, t.encode()); err != nil {
		return err
	}
	// The transaction is durable; apply to memory pages (no-force).
	for _, u := range t.updates {
		block := d.pageBlock(u.Key)
		page := d.pages[block] // loaded above
		if err := pageUpsert(page, u); err != nil {
			// The probe above guaranteed room; this indicates a bug.
			panic(fmt.Sprintf("db: %s: post-log upsert failed: %v", d.name, err))
		}
		d.dirty[block] = true
	}
	d.committed[t.id] = true
	d.commits++
	return nil
}
