package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestProbeSamplingOnVirtualClock(t *testing.T) {
	env := sim.NewEnv(1)
	r := New(env, Config{SamplePeriod: 100 * time.Millisecond})
	var depth float64
	r.Probe("queue.depth", func(now time.Duration) (float64, bool) {
		return depth, true
	}, L("dir", "fwd"))
	env.Process("load", func(p *sim.Proc) {
		depth = 3
		p.Sleep(250 * time.Millisecond) // crosses 100ms and 200ms ticks
		depth = 7
		p.Sleep(100 * time.Millisecond) // crosses 300ms tick
	})
	env.Run(0)
	s := r.Series("queue.depth", L("dir", "fwd"))
	if s == nil {
		t.Fatal("series not found")
	}
	pts := s.Points()
	if len(pts) != 3 {
		t.Fatalf("points = %+v, want samples at 100ms/200ms/300ms", pts)
	}
	want := []struct {
		at time.Duration
		v  float64
	}{{100 * time.Millisecond, 3}, {200 * time.Millisecond, 3}, {300 * time.Millisecond, 7}}
	for i, w := range want {
		if pts[i].At != w.at || pts[i].Value != w.v {
			t.Fatalf("point %d = %+v, want %+v", i, pts[i], w)
		}
	}
}

func TestProbeCloseAndOkGate(t *testing.T) {
	env := sim.NewEnv(1)
	r := New(env, Config{SamplePeriod: time.Second})
	pr := r.Probe("x", func(now time.Duration) (float64, bool) {
		return 1, now < 2*time.Second // decline the 2s sample
	})
	env.Process("run", func(p *sim.Proc) {
		p.Sleep(2500 * time.Millisecond)
		pr.Close()
		p.Sleep(2 * time.Second)
	})
	env.Run(0)
	if got := r.Series("x").Len(); got != 1 {
		t.Fatalf("series len = %d, want 1 (1s sample only)", got)
	}
}

// TestProbeRebindContinuesSeries pins the component-replacement contract:
// re-registering a probe key swaps the callback but keeps the series, so a
// tenant's timeline survives its engine being replaced mid-run.
func TestProbeRebindContinuesSeries(t *testing.T) {
	env := sim.NewEnv(1)
	r := New(env, Config{SamplePeriod: time.Second})
	old := r.Probe("rpo", func(time.Duration) (float64, bool) { return 1, true }, L("tenant", "a"))
	env.Process("run", func(p *sim.Proc) {
		p.Sleep(1500 * time.Millisecond)
		old.Close()
		nw := r.Probe("rpo", func(time.Duration) (float64, bool) { return 2, true }, L("tenant", "a"))
		if nw != old {
			t.Error("rebind must return the existing probe")
		}
		p.Sleep(time.Second)
	})
	env.Run(0)
	pts := r.Series("rpo", L("tenant", "a")).Points()
	if len(pts) != 2 || pts[0].Value != 1 || pts[1].Value != 2 {
		t.Fatalf("rebound series = %+v, want [1@1s 2@2s]", pts)
	}
}

func TestProbeKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	env := sim.NewEnv(1)
	r := New(env, Config{})
	r.Counter("dup", L("a", "b"))
	r.Probe("dup", func(time.Duration) (float64, bool) { return 0, true }, L("a", "b"))
}

func TestCounterGetOrCreateAndLabelOrder(t *testing.T) {
	env := sim.NewEnv(1)
	r := New(env, Config{})
	a := r.Counter("hits", L("a", "1"), L("b", "2"))
	b := r.Counter("hits", L("b", "2"), L("a", "1")) // label order canonicalized
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	a.Inc()
	b.Add(2)
	if a.Value() != 3 {
		t.Fatalf("value = %d", a.Value())
	}
}

func TestSpansExportAsChromeTrace(t *testing.T) {
	env := sim.NewEnv(1)
	r := New(env, Config{})
	env.Process("work", func(p *sim.Proc) {
		sp := r.StartSpan("epoch", "drain", "tenant-000")
		p.Sleep(5 * time.Millisecond)
		sp.End()
		r.Instant("failover", "site-cut", "tenant-001")
	})
	env.Run(0)
	ex := r.Snapshot()
	// Two thread_name metadata events (sorted tracks) + two span events.
	if len(ex.TraceEvents) != 4 {
		t.Fatalf("trace events = %+v", ex.TraceEvents)
	}
	meta0, meta1 := ex.TraceEvents[0], ex.TraceEvents[1]
	if meta0.Args["name"] != "tenant-000" || meta1.Args["name"] != "tenant-001" {
		t.Fatalf("track metadata not in sorted order: %+v %+v", meta0, meta1)
	}
	x := ex.TraceEvents[2]
	if x.Ph != "X" || x.Name != "drain" || x.Cat != "epoch" || x.Dur != 5000 || x.Tid != meta0.Tid {
		t.Fatalf("duration event = %+v", x)
	}
	i := ex.TraceEvents[3]
	if i.Ph != "i" || i.Ts != x.Ts+5000 || i.Tid != meta1.Tid {
		t.Fatalf("instant event = %+v", i)
	}
}

func TestOpenSpanClampsToNow(t *testing.T) {
	env := sim.NewEnv(1)
	r := New(env, Config{})
	env.Process("work", func(p *sim.Proc) {
		r.StartSpan("reshard", "migration", "tenant-000") // never ended
		p.Sleep(time.Second)
	})
	env.Run(0)
	ex := r.Snapshot()
	ev := ex.TraceEvents[len(ex.TraceEvents)-1]
	if ev.Dur != micros(time.Second) {
		t.Fatalf("open span dur = %v, want clamped to run end", ev.Dur)
	}
}

func TestTopK(t *testing.T) {
	env := sim.NewEnv(1)
	r := New(env, Config{SamplePeriod: time.Second})
	vals := map[string]float64{"a": 5, "b": 9, "c": 9, "d": 1}
	for name, v := range vals {
		v := v
		r.Probe("rpo", func(now time.Duration) (float64, bool) { return v, true }, L("tenant", name))
	}
	env.Process("run", func(p *sim.Proc) { p.Sleep(3 * time.Second) })
	env.Run(0)
	top := r.TopK("rpo", 3, 0, time.Hour)
	if len(top) != 3 {
		t.Fatalf("topk = %+v", top)
	}
	// b and c tie at 9; key order breaks the tie deterministically.
	if top[0].Key != "rpo{tenant=b}" || top[1].Key != "rpo{tenant=c}" || top[2].Key != "rpo{tenant=a}" {
		t.Fatalf("topk order = %+v", top)
	}
	if top[0].Max != 9 || top[0].At != time.Second {
		t.Fatalf("topk[0] = %+v", top[0])
	}
	// Windowing: nothing sampled before 1s.
	if got := r.TopK("rpo", 3, 0, 500*time.Millisecond); got != nil {
		t.Fatalf("empty-window topk = %+v", got)
	}
}

func TestExportDeterministicBytes(t *testing.T) {
	run := func() []byte {
		env := sim.NewEnv(7)
		r := New(env, Config{SamplePeriod: time.Second})
		c := r.Counter("events", L("kind", "x"))
		h := r.Histogram("lat")
		r.Probe("depth", func(now time.Duration) (float64, bool) { return float64(now / time.Second), true })
		env.Process("w", func(p *sim.Proc) {
			for i := 0; i < 5; i++ {
				sp := r.StartSpan("work", "unit", "w")
				p.Sleep(700 * time.Millisecond)
				sp.End()
				c.Inc()
				h.Record(time.Duration(i+1) * time.Millisecond)
			}
		})
		env.Run(0)
		b, err := r.ExportJSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("export not byte-identical across identical runs:\n%s\n---\n%s", a, b)
	}
	for _, want := range []string{`"traceEvents"`, `"counters"`, `"histograms"`, `"series"`, `"events{kind=x}"`} {
		if !strings.Contains(string(a), want) {
			t.Fatalf("export missing %s:\n%s", want, a)
		}
	}
}

// TestDisabledPathAllocationFree pins the zero-cost-when-disabled claim: all
// hot-path operations on instruments from a nil registry must not allocate.
func TestDisabledPathAllocationFree(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(4)
		h.Record(time.Millisecond)
		sp := r.StartSpan("cat", "name", "track")
		sp.End()
		r.Instant("cat", "name", "track")
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates: %v allocs/op", allocs)
	}
}

func TestNilRegistryQueries(t *testing.T) {
	var r *Registry
	if r.Series("x") != nil || r.TopK("x", 3, 0, time.Hour) != nil || r.SamplePeriod() != 0 {
		t.Fatal("nil registry queries must return zero values")
	}
	if p := r.Probe("x", func(time.Duration) (float64, bool) { return 0, true }); p != nil {
		t.Fatal("nil registry probe must be nil")
	}
	p := (*Probe)(nil)
	p.Close() // must not panic
	ex := r.Snapshot()
	if len(ex.TraceEvents) != 0 || len(ex.Counters) != 0 {
		t.Fatalf("nil snapshot = %+v", ex)
	}
}
