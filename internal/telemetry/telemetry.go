// Package telemetry is the simulation's observability plane: a registry of
// named, labeled instruments (counters, gauges, histograms, probed time
// series) plus sim-time span tracing, shared by every subsystem instead of
// being hand-threaded through one experiment at a time.
//
// Determinism rules (load-bearing — the golden tests enforce them):
//
//   - Instruments may be recorded ONLY from domain-0 steps or from probe
//     callbacks. Domain-0 steps always run alone (never inside a parallel
//     round), so recording needs no locks and happens in the identical
//     total order under the sequential and parallel schedulers.
//   - Probes are sampled by an Env.OnAdvance observer, which fires on the
//     scheduler goroutine between instants: it consumes no sequence
//     numbers and schedules nothing, so enabling telemetry cannot perturb
//     the (at, seq) kernel trace, and exports are byte-identical under
//     Env.RunParallel vs the sequential scheduler.
//   - A nil *Registry is the disabled plane: every constructor returns a
//     nil instrument whose methods no-op without allocating, so the
//     disabled hot path is free.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// DefaultSamplePeriod is the probe sampling period when Config leaves it 0.
const DefaultSamplePeriod = 500 * time.Millisecond

// Config parameterizes a telemetry registry.
type Config struct {
	// SamplePeriod is the virtual-time interval between probe samples.
	// Probes fire at every multiple of the period (P, 2P, ...) the clock
	// crosses. Defaults to DefaultSamplePeriod.
	SamplePeriod time.Duration
}

// Label is one key=value attribute on an instrument.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Registry owns every instrument and span of one simulated system. A nil
// Registry is valid and means telemetry is disabled.
type Registry struct {
	env    *sim.Env
	period time.Duration

	counters   []*Counter
	gauges     []*Gauge
	histograms []*Histogram
	probes     []*Probe
	byKey      map[string]any

	spans []span
}

// New builds a registry sampling probes on env's virtual clock.
func New(env *sim.Env, cfg Config) *Registry {
	if cfg.SamplePeriod <= 0 {
		cfg.SamplePeriod = DefaultSamplePeriod
	}
	r := &Registry{env: env, period: cfg.SamplePeriod, byKey: make(map[string]any)}
	env.OnAdvance(r.sample)
	return r
}

// SamplePeriod returns the probe sampling period (0 when disabled).
func (r *Registry) SamplePeriod() time.Duration {
	if r == nil {
		return 0
	}
	return r.period
}

// key canonicalizes name+labels: labels are sorted by key so registration
// order cannot leak into export order.
func key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a registered monotonic count.
type Counter struct {
	key string
	c   metrics.Counter
}

// Counter returns the counter for name+labels, creating it on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	k := key(name, labels)
	if got, ok := r.byKey[k]; ok {
		if c, ok := got.(*Counter); ok {
			return c
		}
		panic(fmt.Sprintf("telemetry: %q already registered as a different instrument kind", k))
	}
	c := &Counter{key: k}
	r.byKey[k] = c
	r.counters = append(r.counters, c)
	return c
}

// Inc adds one. No-op on a nil (disabled) counter.
func (c *Counter) Inc() {
	if c != nil {
		c.c.Inc()
	}
}

// Add adds delta. No-op on a nil (disabled) counter.
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.c.Add(delta)
	}
}

// Value returns the current count (0 when disabled).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.c.Value()
}

// Gauge is a registered instantaneous value with tracked extremes.
type Gauge struct {
	key string
	g   metrics.Gauge
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	k := key(name, labels)
	if got, ok := r.byKey[k]; ok {
		if g, ok := got.(*Gauge); ok {
			return g
		}
		panic(fmt.Sprintf("telemetry: %q already registered as a different instrument kind", k))
	}
	g := &Gauge{key: k}
	r.byKey[k] = g
	r.gauges = append(r.gauges, g)
	return g
}

// Set records a new value. No-op on a nil (disabled) gauge.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.g.Set(v)
	}
}

// Value returns the last value set (0 when disabled).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.g.Value()
}

// Max returns the largest value ever set (0 when disabled).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.g.Max()
}

// Histogram is a registered duration histogram.
type Histogram struct {
	key string
	h   *metrics.Histogram
}

// Histogram returns the histogram for name+labels, creating it on first use.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	k := key(name, labels)
	if got, ok := r.byKey[k]; ok {
		if h, ok := got.(*Histogram); ok {
			return h
		}
		panic(fmt.Sprintf("telemetry: %q already registered as a different instrument kind", k))
	}
	h := &Histogram{key: k, h: metrics.NewHistogram()}
	r.byKey[k] = h
	r.histograms = append(r.histograms, h)
	return h
}

// Record adds one sample. No-op on a nil (disabled) histogram.
func (h *Histogram) Record(d time.Duration) {
	if h != nil {
		h.h.Record(d)
	}
}

// Snapshot returns the underlying histogram (nil when disabled). Callers
// may Merge it into aggregates but must not Record through it.
func (h *Histogram) Snapshot() *metrics.Histogram {
	if h == nil {
		return nil
	}
	return h.h
}

// Probe is a registered callback sampled into a time series at every
// multiple of the registry's sample period.
type Probe struct {
	key    string
	fn     func(now time.Duration) (float64, bool)
	series *metrics.Series
	closed bool
}

// Probe registers fn to be sampled on the virtual clock. fn returns the
// instantaneous value and whether the sample should be recorded (a probe
// over a stopped component returns false to end its timeline). Close the
// probe when the observed component is torn down.
//
// Re-registering an existing key REBINDS the probe: the new callback
// continues the same series. That is the component-replacement contract —
// when the control plane swaps a tenant's replication engine (the live
// 1→N reshard upgrade, or a reconcile retry after a partial failure), the
// tenant's timeline continues under its key instead of panicking or
// forking.
func (r *Registry) Probe(name string, fn func(now time.Duration) (float64, bool), labels ...Label) *Probe {
	if r == nil {
		return nil
	}
	k := key(name, labels)
	if got, ok := r.byKey[k]; ok {
		p, ok := got.(*Probe)
		if !ok {
			panic(fmt.Sprintf("telemetry: %q already registered as a different instrument kind", k))
		}
		p.fn = fn
		p.closed = false
		return p
	}
	p := &Probe{key: k, fn: fn, series: metrics.NewSeries(k)}
	r.byKey[k] = p
	r.probes = append(r.probes, p)
	return p
}

// Close stops sampling; the series recorded so far stays in the export.
// No-op on a nil (disabled) probe.
func (p *Probe) Close() {
	if p != nil {
		p.closed = true
	}
}

// sample is the Env.OnAdvance observer: it fires every probe at each
// multiple of the period inside (from, to]. It runs on the scheduler
// goroutine while every process is parked, so the sampled state is the
// exact state of the instant being left, and sampling can neither race
// with steps nor perturb the (at, seq) order.
func (r *Registry) sample(from, to time.Duration) {
	p := r.period
	for at := (from/p + 1) * p; at <= to; at += p {
		for _, pr := range r.probes {
			if pr.closed {
				continue
			}
			if v, ok := pr.fn(at); ok {
				pr.series.Append(at, v)
			}
		}
	}
}

// span is one recorded trace interval (or instant, when end == start and
// instant is set).
type span struct {
	cat, name, track string
	start, end       time.Duration
	instant          bool
}

// Span is a handle to an open span. The zero Span (from a nil registry)
// no-ops on End.
type Span struct {
	r   *Registry
	idx int
}

// StartSpan opens a span at the current virtual time. cat groups spans of
// one kind (e.g. "epoch", "reshard"); track names the Perfetto row the
// span renders on (e.g. the tenant namespace). Call End on the returned
// handle from a later domain-0 step.
func (r *Registry) StartSpan(cat, name, track string) Span {
	if r == nil {
		return Span{}
	}
	r.spans = append(r.spans, span{cat: cat, name: name, track: track, start: r.env.Now(), end: -1})
	return Span{r: r, idx: len(r.spans)}
}

// End closes the span at the current virtual time. Ending twice panics.
func (s Span) End() {
	if s.r == nil {
		return
	}
	sp := &s.r.spans[s.idx-1]
	if sp.end >= 0 {
		panic(fmt.Sprintf("telemetry: span %s/%s ended twice", sp.cat, sp.name))
	}
	sp.end = s.r.env.Now()
}

// Instant records a zero-duration marker event at the current virtual time.
func (r *Registry) Instant(cat, name, track string) {
	if r == nil {
		return
	}
	now := r.env.Now()
	r.spans = append(r.spans, span{cat: cat, name: name, track: track, start: now, end: now, instant: true})
}
