package telemetry

import (
	"encoding/json"
	"sort"
	"time"
)

// Export is the serialized registry: a Chrome trace-event object (load the
// JSON straight into Perfetto; it ignores the extra instrument sections)
// with the counters, gauges, histograms, and probed series riding alongside
// under their canonical keys. Marshaling is deterministic: instrument
// sections are maps (encoding/json sorts map keys), trace tracks get ids in
// sorted-name order, and spans appear in record order — which the recording
// rules make identical across schedulers.
type Export struct {
	DisplayTimeUnit string                   `json:"displayTimeUnit"`
	SamplePeriodNS  int64                    `json:"samplePeriodNs"`
	TraceEvents     []TraceEvent             `json:"traceEvents"`
	Counters        map[string]int64         `json:"counters"`
	Gauges          map[string]GaugeExport   `json:"gauges"`
	Histograms      map[string]HistExport    `json:"histograms"`
	Series          map[string][]SeriesPoint `json:"series"`
}

// TraceEvent is one Chrome trace-event record. Times are microseconds of
// virtual time ("ts"/"dur"), per the trace-event format.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// GaugeExport is one gauge's serialized state.
type GaugeExport struct {
	Last int64 `json:"last"`
	Min  int64 `json:"min"`
	Max  int64 `json:"max"`
}

// HistExport is one histogram's serialized digest.
type HistExport struct {
	Count  int   `json:"count"`
	SumNS  int64 `json:"sumNs"`
	MinNS  int64 `json:"minNs"`
	MaxNS  int64 `json:"maxNs"`
	MeanNS int64 `json:"meanNs"`
	P50NS  int64 `json:"p50Ns"`
	P99NS  int64 `json:"p99Ns"`
}

// SeriesPoint is one probed sample.
type SeriesPoint struct {
	AtNS int64   `json:"atNs"`
	V    float64 `json:"v"`
}

func micros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// Snapshot assembles the export structure. Returns the zero Export when the
// registry is disabled.
func (r *Registry) Snapshot() Export {
	ex := Export{
		DisplayTimeUnit: "ms",
		Counters:        map[string]int64{},
		Gauges:          map[string]GaugeExport{},
		Histograms:      map[string]HistExport{},
		Series:          map[string][]SeriesPoint{},
	}
	if r == nil {
		return ex
	}
	ex.SamplePeriodNS = int64(r.period)

	// Spans render one Perfetto row per track; tids go to tracks in sorted
	// name order so the layout is stable across runs.
	tracks := map[string]int{}
	for _, sp := range r.spans {
		tracks[sp.track] = 0
	}
	names := make([]string, 0, len(tracks))
	for n := range tracks {
		names = append(names, n)
	}
	sort.Strings(names)
	for i, n := range names {
		tracks[n] = i + 1
		ex.TraceEvents = append(ex.TraceEvents, TraceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: i + 1,
			Args: map[string]any{"name": n},
		})
	}
	now := r.env.Now()
	for _, sp := range r.spans {
		ev := TraceEvent{
			Name: sp.name, Cat: sp.cat, Pid: 1, Tid: tracks[sp.track],
			Ts: micros(sp.start),
		}
		switch {
		case sp.instant:
			ev.Ph, ev.S = "i", "t"
		default:
			ev.Ph = "X"
			end := sp.end
			if end < 0 { // still open at export time: clamp to now
				end = now
			}
			ev.Dur = micros(end - sp.start)
		}
		ex.TraceEvents = append(ex.TraceEvents, ev)
	}

	for _, c := range r.counters {
		ex.Counters[c.key] = c.c.Value()
	}
	for _, g := range r.gauges {
		ex.Gauges[g.key] = GaugeExport{Last: g.g.Value(), Min: g.g.Min(), Max: g.g.Max()}
	}
	for _, h := range r.histograms {
		ex.Histograms[h.key] = HistExport{
			Count:  h.h.Count(),
			SumNS:  int64(h.h.Sum()),
			MinNS:  int64(h.h.Min()),
			MaxNS:  int64(h.h.Max()),
			MeanNS: int64(h.h.Mean()),
			P50NS:  int64(h.h.Median()),
			P99NS:  int64(h.h.P99()),
		}
	}
	for _, p := range r.probes {
		pts := make([]SeriesPoint, 0, p.series.Len())
		for _, pt := range p.series.Points() {
			pts = append(pts, SeriesPoint{AtNS: int64(pt.At), V: pt.Value})
		}
		ex.Series[p.key] = pts
	}
	return ex
}

// ExportJSON renders the registry deterministically (indented, so the
// export is diffable and the golden tests can compare bytes).
func (r *Registry) ExportJSON() ([]byte, error) {
	return json.MarshalIndent(r.Snapshot(), "", " ")
}
