package telemetry

import (
	"sort"
	"strings"
	"time"

	"repro/internal/metrics"
)

// Series returns the probed series registered under name+labels, or nil.
func (r *Registry) Series(name string, labels ...Label) *metrics.Series {
	if r == nil {
		return nil
	}
	if p, ok := r.byKey[key(name, labels)].(*Probe); ok {
		return p.series
	}
	return nil
}

// SeriesRank is one entry of a TopK answer.
type SeriesRank struct {
	Key string        // full instrument key (name + labels)
	Max float64       // worst value observed in the window
	At  time.Duration // time of the first sample reaching Max
}

// TopK ranks every probed series registered under name (any label set) by
// its maximum value over the window [from, to] and returns the worst k.
// This is the autopilot's sensor query: "which tenants have the worst RPO
// right now". Series with no samples in the window are skipped. Ties break
// on key order so the answer is deterministic.
func (r *Registry) TopK(name string, k int, from, to time.Duration) []SeriesRank {
	if r == nil || k <= 0 {
		return nil
	}
	prefix := name + "{"
	var ranks []SeriesRank
	for _, p := range r.probes {
		if p.key != name && !strings.HasPrefix(p.key, prefix) {
			continue
		}
		var (
			best   float64
			bestAt time.Duration
			seen   bool
		)
		for _, pt := range p.series.Window(from, to) {
			if !seen || pt.Value > best {
				best, bestAt, seen = pt.Value, pt.At, true
			}
		}
		if seen {
			ranks = append(ranks, SeriesRank{Key: p.key, Max: best, At: bestAt})
		}
	}
	sort.Slice(ranks, func(i, j int) bool {
		if ranks[i].Max != ranks[j].Max {
			return ranks[i].Max > ranks[j].Max
		}
		return ranks[i].Key < ranks[j].Key
	})
	if len(ranks) > k {
		ranks = ranks[:k]
	}
	return ranks
}
