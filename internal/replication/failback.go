package replication

import (
	"errors"
	"fmt"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/storage"
)

// ErrNotFailedOver reports a Failback attempt on a group that never failed
// over.
var ErrNotFailedOver = errors.New("replication: group has not failed over")

// FailbackStats describes what a resync moved.
type FailbackStats struct {
	// DeltaBlocks is the number of blocks copied (changed at the backup
	// since failover, plus blocks that had diverged at the old source).
	DeltaBlocks int
	// TotalBlocks is what a full resync would have copied (written blocks
	// on the backup volumes) — the baseline the delta saves against.
	TotalBlocks int
	// Bytes is the payload moved across the reverse link.
	Bytes int64
}

// Failback resynchronizes the original source site from a failed-over
// group's targets and returns a new Group replicating in the reverse
// direction (backup → original source). This is the disaster-recovery step
// after the main site returns (§I's DR context, [6][7]):
//
//  1. the backup volumes' new writes start journaling into a fresh reverse
//     consistency group (so production at the backup site continues
//     un-slowed during the resync);
//  2. the delta — blocks written at the backup since failover, plus blocks
//     the old source had written that never reached the backup (the
//     stranded journal backlog) — is copied back over the reverse link;
//  3. the reverse drain starts, bringing the old source continuously in
//     sync; the operator can later do a planned switchback.
//
// The old source's stranded journal is discarded (that data was lost by
// the disaster; the backup's history won) and its volumes' journal
// attachments are replaced by the reverse group's.
func Failback(p *sim.Proc, old *Group, source *storage.Array, reversePath fabric.Path, cfg Config) (*Group, FailbackStats, error) {
	var stats FailbackStats
	if !old.failedOver {
		return nil, stats, ErrNotFailedOver
	}

	// Capture membership first: detaching below empties the journal's list.
	members := old.journal.Members()

	// Blocks that diverged on the old source: the stranded backlog plus
	// anything abandoned in flight at the split.
	diverged := make(map[storage.VolumeID]map[int64]bool)
	for _, rec := range old.UnappliedRecords() {
		if diverged[rec.Volume] == nil {
			diverged[rec.Volume] = make(map[int64]bool)
		}
		diverged[rec.Volume][rec.Block] = true
	}
	// Drop the stranded journal: the backup's history is authoritative now.
	for _, src := range members {
		if err := source.DetachJournal(src); err != nil {
			return nil, stats, err
		}
	}
	if err := source.DeleteJournal(old.journal.ID()); err != nil {
		return nil, stats, err
	}

	// Reverse consistency group on the backup array, attached before the
	// copy so concurrent production writes are journaled and applied after.
	reverseVols := make([]storage.VolumeID, len(members))
	reverseMapping := make(map[storage.VolumeID]storage.VolumeID, len(members))
	for i, src := range members {
		dst := old.mapping[src]
		reverseVols[i] = dst
		reverseMapping[dst] = src
	}
	journalID := "fb-" + old.name
	rj, err := old.target.CreateConsistencyGroup(journalID, reverseVols)
	if err != nil {
		return nil, stats, err
	}
	reverse, err := NewGroup(old.env, "fb-"+old.name, rj, source, reverseMapping, reversePath, cfg)
	if err != nil {
		return nil, stats, err
	}

	// Delta resync: backup content wins for every block in the union.
	for _, src := range members {
		dst := old.mapping[src]
		bv, err := old.target.Volume(dst)
		if err != nil {
			return nil, stats, err
		}
		sv, err := source.Volume(src)
		if err != nil {
			return nil, stats, err
		}
		stats.TotalBlocks += len(bv.WrittenBlocks())
		delta := make(map[int64]bool)
		for _, b := range bv.ChangedBlocks() {
			delta[b] = true
		}
		for b := range diverged[src] {
			delta[b] = true
		}
		blocks := make([]int64, 0, len(delta))
		for b := range delta {
			blocks = append(blocks, b)
		}
		sortInt64(blocks)
		for _, b := range blocks {
			data := bv.Peek(b)
			reversePath.Transfer(p, len(data)+64)
			if err := sv.Apply(p, b, data); err != nil {
				return nil, stats, fmt.Errorf("replication: failback apply %s[%d]: %w", src, b, err)
			}
			stats.DeltaBlocks++
			stats.Bytes += int64(len(data))
		}
		bv.StopChangeTracking()
		// The old source is now the replication target: protect it.
		sv.SetReadOnly(true)
	}
	reverse.Start()
	return reverse, stats, nil
}

func sortInt64(s []int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
