package replication

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/netlink"
	"repro/internal/sim"
	"repro/internal/storage"
)

// lanePaths builds n independent link-pair paths for a reshard target set.
func lanePaths(env *sim.Env, n int, cfg netlink.Config) []fabric.Path {
	out := make([]fabric.Path, n)
	for k := range out {
		out[k] = netlink.NewPair(env, cfg).Forward
	}
	return out
}

// verifyConverged checks the backup image equals the source image block for
// block after a full drain.
func (r *shardedRig) verifyConverged(t *testing.T) {
	t.Helper()
	for _, id := range r.vols {
		sv, _ := r.main.Volume(id)
		tv, _ := r.backup.Volume(id)
		for _, b := range sv.WrittenBlocks() {
			if !bytes.Equal(sv.Peek(b), tv.Peek(b)) {
				t.Fatalf("volume %s block %d diverged after drain", id, b)
			}
		}
	}
}

// TestLiveReshardGrowUnderLoad reshards 2->4 while the writer keeps
// committing: untouched lanes keep draining, new lanes pick up migrated
// volumes, and the drain converges to the exact source image.
func TestLiveReshardGrowUnderLoad(t *testing.T) {
	link := netlink.Config{Propagation: time.Millisecond, BandwidthBps: 2e7}
	r := newShardedRig(t, 2, 16, link, Config{BatchMax: 8})
	r.g.Start()
	const writes = 192
	var stats storage.ReshardStats
	r.env.Process("writer", func(p *sim.Proc) {
		for i := 0; i < writes; i++ {
			r.seqWrite(p, t, i)
			if i == writes/2 {
				var err error
				stats, err = r.g.Reshard(p, lanePaths(r.env, 4, link))
				if err != nil {
					t.Errorf("reshard: %v", err)
					return
				}
			}
		}
		if !r.g.AwaitReshard(p) {
			t.Error("reshard never settled")
		}
		if !r.g.CatchUp(p) {
			t.Error("catch-up failed")
		}
	})
	r.env.Run(0)
	if t.Failed() {
		return
	}
	if stats.From != 2 || stats.To != 4 || stats.BarrierEpoch == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if r.g.Lanes() != 4 || r.g.Resharding() {
		t.Fatalf("lanes=%d resharding=%v after settle", r.g.Lanes(), r.g.Resharding())
	}
	if n, exact := exactPrefix(r.presentSeqs()); n != writes || !exact {
		t.Fatalf("backup has %d writes (exact=%v), want all %d", n, exact, writes)
	}
	r.verifyConverged(t)
	if r.g.Backlog() != 0 {
		t.Fatalf("backlog %d after catch-up", r.g.Backlog())
	}
}

// TestLiveReshardShrinkReapsRetiredLanes reshards 4->2 mid-load: the two
// retired lanes must commit what they had staged, then disappear along with
// their decommissioned shard journals.
func TestLiveReshardShrinkReapsRetiredLanes(t *testing.T) {
	link := netlink.Config{Propagation: time.Millisecond, BandwidthBps: 2e7}
	r := newShardedRig(t, 4, 16, link, Config{BatchMax: 8})
	r.g.Start()
	const writes = 192
	r.env.Process("writer", func(p *sim.Proc) {
		for i := 0; i < writes; i++ {
			r.seqWrite(p, t, i)
			if i == writes/2 {
				if _, err := r.g.Reshard(p, lanePaths(r.env, 2, link)); err != nil {
					t.Errorf("reshard: %v", err)
					return
				}
			}
		}
		if !r.g.AwaitReshard(p) {
			t.Error("reshard never settled")
		}
		r.g.CatchUp(p)
	})
	r.env.Run(0)
	if t.Failed() {
		return
	}
	if r.g.Lanes() != 2 || len(r.g.retiring) != 0 {
		t.Fatalf("lanes=%d retiring=%d after settle", r.g.Lanes(), len(r.g.retiring))
	}
	for _, k := range []int{2, 3} {
		if _, err := r.main.Journal(fmt.Sprintf("cg#s%d", k)); err == nil {
			t.Fatalf("retired shard journal cg#s%d still on the array", k)
		}
	}
	if len(r.sj.Retired()) != 0 {
		t.Fatal("storage still lists retired shards")
	}
	if n, exact := exactPrefix(r.presentSeqs()); n != writes || !exact {
		t.Fatalf("backup has %d writes (exact=%v), want all %d", n, exact, writes)
	}
	r.verifyConverged(t)
}

// TestMidReshardFailoverIsExactEpochPrefix races a disaster into the open
// migration window: the recovered image must be an exact ack-order prefix —
// entirely pre-barrier or entirely post-barrier state, never a mix.
func TestMidReshardFailoverIsExactEpochPrefix(t *testing.T) {
	for _, d := range []time.Duration{2 * time.Millisecond, 9 * time.Millisecond, 25 * time.Millisecond} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			// Thin links so a deep backlog exists when the reshard hits.
			link := netlink.Config{Propagation: 2 * time.Millisecond, BandwidthBps: 2e6}
			r := newShardedRig(t, 1, 16, link, Config{BatchMax: 8})
			r.g.Start()
			const writes = 256
			resharded := r.env.NewEvent()
			r.env.Process("writer", func(p *sim.Proc) {
				for i := 0; i < writes; i++ {
					r.seqWrite(p, t, i)
					if i == writes/2 {
						if _, err := r.g.Reshard(p, lanePaths(r.env, 4, link)); err != nil {
							t.Errorf("reshard: %v", err)
							return
						}
						resharded.Trigger()
					}
				}
			})
			var racedWindow bool
			r.env.Process("disaster", func(p *sim.Proc) {
				p.Wait(resharded)
				p.Sleep(d)
				racedWindow = r.g.Resharding()
				if _, err := r.g.Failover(); err != nil {
					t.Errorf("failover: %v", err)
				}
			})
			r.env.Run(0)
			if t.Failed() {
				return
			}
			n, exact := exactPrefix(r.presentSeqs())
			if !exact {
				t.Fatalf("failover image is not an exact ack-order prefix (cut=%d, raced window=%v)", n, racedWindow)
			}
			if n > writes {
				t.Fatalf("cut %d beyond writes", n)
			}
		})
	}
}

// TestReshardSameCountIsNoop pins the unchanged-reconcile contract at the
// engine level: zero migration, zero counters, same lanes.
func TestReshardSameCountIsNoop(t *testing.T) {
	link := netlink.Config{Propagation: time.Millisecond, BandwidthBps: 1e8}
	r := newShardedRig(t, 2, 8, link, Config{})
	r.g.Start()
	r.env.Process("driver", func(p *sim.Proc) {
		for i := 0; i < 16; i++ {
			r.seqWrite(p, t, i)
		}
		stats, err := r.g.Reshard(p, lanePaths(r.env, 2, link))
		if err != nil {
			t.Errorf("noop reshard: %v", err)
			return
		}
		if stats.BarrierEpoch != 0 || stats.MovedRecords != 0 || stats.MovedVolumes != 0 {
			t.Errorf("noop reshard did work: %+v", stats)
		}
		r.g.CatchUp(p)
	})
	r.env.Run(0)
	if r.g.Reshards() != 0 || r.sj.Reshards() != 0 || r.sj.MovedRecords() != 0 {
		t.Fatalf("noop reshard bumped counters: engine=%d journal=%d moved=%d",
			r.g.Reshards(), r.sj.Reshards(), r.sj.MovedRecords())
	}
	if r.g.Lanes() != 2 {
		t.Fatalf("lanes = %d", r.g.Lanes())
	}
}

// TestDetachHandsOffWithoutLoss upgrades a plain group mid-drain: Detach
// must finish the in-flight batch (no disaster-split loss), the adopted
// journal plus a fresh sharded engine must then drain the remainder, and
// the final image must be complete.
func TestDetachHandsOffWithoutLoss(t *testing.T) {
	env := sim.NewEnv(1)
	main := storage.NewArray(env, "main", storage.Config{})
	backup := storage.NewArray(env, "backup", storage.Config{})
	var vols []storage.VolumeID
	mapping := make(map[storage.VolumeID]storage.VolumeID)
	for i := 0; i < 8; i++ {
		id := storage.VolumeID(fmt.Sprintf("vol-%02d", i))
		for _, a := range []*storage.Array{main, backup} {
			if _, err := a.CreateVolume(id, 256); err != nil {
				t.Fatal(err)
			}
		}
		vols = append(vols, id)
		mapping[id] = id
	}
	jnl, err := main.CreateConsistencyGroup("cg", vols)
	if err != nil {
		t.Fatal(err)
	}
	link := netlink.Config{Propagation: 2 * time.Millisecond, BandwidthBps: 4e6}
	g, err := NewGroup(env, "cg", jnl, backup, mapping, netlink.NewPair(env, link).Forward, Config{BatchMax: 8})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	const writes = 128
	env.Process("driver", func(p *sim.Proc) {
		buf := make([]byte, main.Config().BlockSize)
		for i := 0; i < writes; i++ {
			v, _ := main.Volume(vols[i%len(vols)])
			if _, err := v.Write(p, int64(i/len(vols)), buf); err != nil {
				t.Error(err)
				return
			}
		}
		// Detach mid-drain: a batch is in flight on the thin link.
		if err := g.Detach(p); err != nil {
			t.Errorf("detach: %v", err)
			return
		}
		if len(g.lost) != 0 {
			t.Errorf("detach lost %d records", len(g.lost))
		}
		if got := g.AppliedRecords() + int64(jnl.Pending()); got != writes {
			t.Errorf("applied %d + pending %d != %d writes", g.AppliedRecords(), jnl.Pending(), writes)
		}
		// Adopt the journal into a sharded engine and drain the rest.
		sj, err := main.ConvertToSharded("cg")
		if err != nil {
			t.Errorf("convert: %v", err)
			return
		}
		sg, err := NewShardedGroup(env, "cg-sharded", sj, backup, mapping, lanePaths(env, 1, link), Config{BatchMax: 8})
		if err != nil {
			t.Errorf("new sharded: %v", err)
			return
		}
		sg.Start()
		if _, err := sg.Reshard(p, lanePaths(env, 4, link)); err != nil {
			t.Errorf("reshard: %v", err)
			return
		}
		if !sg.AwaitReshard(p) || !sg.CatchUp(p) {
			t.Error("adopted engine never caught up")
		}
		sg.Stop()
	})
	env.Run(0)
	if t.Failed() {
		return
	}
	for _, id := range vols {
		sv, _ := main.Volume(id)
		tv, _ := backup.Volume(id)
		if len(sv.WrittenBlocks()) != len(tv.WrittenBlocks()) {
			t.Fatalf("volume %s: %d source blocks, %d backup blocks", id, len(sv.WrittenBlocks()), len(tv.WrittenBlocks()))
		}
	}
	// A second detach is idempotent; a stopped group refuses.
	env.Process("again", func(p *sim.Proc) {
		if err := g.Detach(p); err != nil {
			t.Errorf("second detach: %v", err)
		}
		g.Stop()
		if err := g.Detach(p); !errors.Is(err, ErrStopped) {
			t.Errorf("detach after stop: %v, want ErrStopped", err)
		}
	})
	env.Run(0)
}

// TestReshardGuards covers the refusal surface: failed-over and stopped
// engines, zero lanes, and double reshards mid-window.
func TestReshardGuards(t *testing.T) {
	link := netlink.Config{Propagation: 2 * time.Millisecond, BandwidthBps: 2e6}
	r := newShardedRig(t, 2, 8, link, Config{BatchMax: 4})
	r.g.Start()
	r.env.Process("driver", func(p *sim.Proc) {
		for i := 0; i < 64; i++ {
			r.seqWrite(p, t, i)
		}
		if _, err := r.g.Reshard(p, nil); err == nil {
			t.Error("reshard to 0 lanes must refuse")
		}
		if _, err := r.g.Reshard(p, lanePaths(r.env, 4, link)); err != nil {
			t.Errorf("first reshard: %v", err)
		}
		if r.g.Resharding() {
			if _, err := r.g.Reshard(p, lanePaths(r.env, 8, link)); err == nil {
				t.Error("reshard during open migration window must refuse")
			}
		}
		r.g.AwaitReshard(p)
		r.g.CatchUp(p)
		if _, err := r.g.Failover(); err != nil {
			t.Error(err)
		}
		if _, err := r.g.Reshard(p, lanePaths(r.env, 2, link)); err == nil {
			t.Error("reshard on a failed-over group must refuse")
		}
	})
	r.env.Run(0)
}

// TestMidShrinkFailoverIsExactEpochPrefix is the shrink-direction twin of
// the grow race above, with deliberately lopsided lanes: the surviving
// lane drains fast (staging open-epoch records early) while the retiring
// lane lags with sealed-epoch records still pending at the barrier — so
// migration stages OLDER-epoch records BEHIND newer ones on the surviving
// lane. Every failover offset must still recover an exact ack-order
// prefix.
func TestMidShrinkFailoverIsExactEpochPrefix(t *testing.T) {
	for _, d := range []time.Duration{0, time.Millisecond, 3 * time.Millisecond, 9 * time.Millisecond, 25 * time.Millisecond, 60 * time.Millisecond} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			env := sim.NewEnv(1)
			main := storage.NewArray(env, "main", storage.Config{})
			backup := storage.NewArray(env, "backup", storage.Config{})
			r := &shardedRig{env: env, main: main, backup: backup}
			mapping := make(map[storage.VolumeID]storage.VolumeID)
			for i := 0; i < 16; i++ {
				id := storage.VolumeID(fmt.Sprintf("vol-%02d", i))
				for _, a := range []*storage.Array{main, backup} {
					if _, err := a.CreateVolume(id, 256); err != nil {
						t.Fatal(err)
					}
				}
				r.vols = append(r.vols, id)
				mapping[id] = id
			}
			sj, err := main.CreateShardedConsistencyGroup("cg", r.vols, 2)
			if err != nil {
				t.Fatal(err)
			}
			r.sj = sj
			fast := netlink.Config{Propagation: time.Millisecond, BandwidthBps: 4e7}
			slow := netlink.Config{Propagation: 8 * time.Millisecond, BandwidthBps: 5e5}
			paths := []fabric.Path{
				netlink.NewPair(env, fast).Forward, // lane 0 races ahead
				netlink.NewPair(env, slow).Forward, // lane 1 lags behind the seals
			}
			g, err := NewShardedGroup(env, "cg", sj, backup, mapping, paths, Config{BatchMax: 4})
			if err != nil {
				t.Fatal(err)
			}
			r.g = g
			g.Start()

			const writes = 160
			resharded := env.NewEvent()
			env.Process("writer", func(p *sim.Proc) {
				for i := 0; i < writes; i++ {
					r.seqWrite(p, t, i)
					if i == writes/2 {
						if _, err := g.Reshard(p, paths[:1]); err != nil {
							t.Errorf("reshard: %v", err)
							return
						}
						resharded.Trigger()
					}
				}
			})
			env.Process("disaster", func(p *sim.Proc) {
				p.Wait(resharded)
				p.Sleep(d)
				if _, err := g.Failover(); err != nil {
					t.Errorf("failover: %v", err)
				}
			})
			env.Run(0)
			if t.Failed() {
				return
			}
			n, exact := exactPrefix(r.presentSeqs())
			if !exact {
				t.Fatalf("failover image is not an exact ack-order prefix (cut=%d of %d)", n, writes)
			}
		})
	}
}

// TestShrinkMigrationBehindOpenEpochStillCommitsWhole pins the nastiest
// migration interleaving: the reshard fires at the exact instant the
// surviving lane has already staged OPEN-epoch records while the retiring
// lane still holds SEALED-epoch records pending — so migration appends
// older-epoch records BEHIND newer ones in the surviving lane's staged
// list. Epoch commits during the window must still include every record of
// the sealed epoch (no prefix-scan shortcut), and a failover right after
// the first such commit must recover an exact ack-order prefix.
func TestShrinkMigrationBehindOpenEpochStillCommitsWhole(t *testing.T) {
	env := sim.NewEnv(1)
	main := storage.NewArray(env, "main", storage.Config{})
	backup := storage.NewArray(env, "backup", storage.Config{})
	r := &shardedRig{env: env, main: main, backup: backup}
	mapping := make(map[storage.VolumeID]storage.VolumeID)
	for i := 0; i < 16; i++ {
		id := storage.VolumeID(fmt.Sprintf("vol-%02d", i))
		for _, a := range []*storage.Array{main, backup} {
			if _, err := a.CreateVolume(id, 256); err != nil {
				t.Fatal(err)
			}
		}
		r.vols = append(r.vols, id)
		mapping[id] = id
	}
	sj, err := main.CreateShardedConsistencyGroup("cg", r.vols, 2)
	if err != nil {
		t.Fatal(err)
	}
	r.sj = sj
	fast := netlink.Config{Propagation: 200 * time.Microsecond, BandwidthBps: 1e8}
	slow := netlink.Config{Propagation: 8 * time.Millisecond, BandwidthBps: 5e5}
	paths := []fabric.Path{
		netlink.NewPair(env, fast).Forward,
		netlink.NewPair(env, slow).Forward,
	}
	g, err := NewShardedGroup(env, "cg", sj, backup, mapping, paths, Config{BatchMax: 4})
	if err != nil {
		t.Fatal(err)
	}
	r.g = g
	g.Start()

	const writes = 240
	done := env.NewEvent()
	env.Process("writer", func(p *sim.Proc) {
		defer done.Trigger()
		for i := 0; i < writes; i++ {
			r.seqWrite(p, t, i)
		}
	})
	env.Process("reshard-then-cut", func(p *sim.Proc) {
		// Wait for the hazard: surviving lane 0 staged past the epoch the
		// retiring lane 1 still owes (its oldest pending record).
		deadline := p.Now() + 10*time.Second
		hazard := false
		for p.Now() < deadline {
			l0, l1 := g.lanes[0], g.lanes[1]
			if n := len(l0.staged); n > 0 {
				if e1, ok := l1.journal.OldestPendingEpoch(); ok && e1 < l0.staged[n-1].Epoch {
					hazard = true
					break
				}
			}
			p.Sleep(100 * time.Microsecond)
		}
		if !hazard {
			t.Error("hazard precondition never arose (rig timing changed?)")
			return
		}
		commits0 := g.EpochCommits()
		if _, err := g.Reshard(p, paths[:1]); err != nil {
			t.Errorf("reshard: %v", err)
			return
		}
		// Split the pair right after the FIRST migration-window commit
		// exposes an image — the instant a prefix-scan shortcut over the
		// non-monotone staged list would leave a cross-volume gap.
		for p.Now() < deadline && g.EpochCommits() == commits0 {
			p.Sleep(50 * time.Microsecond)
		}
		if g.EpochCommits() == commits0 {
			t.Error("no epoch commit landed inside the migration window")
			return
		}
		if _, err := g.Failover(); err != nil {
			t.Errorf("failover: %v", err)
		}
	})
	env.Run(0)
	if t.Failed() {
		return
	}
	n, exact := exactPrefix(r.presentSeqs())
	if !exact {
		t.Fatalf("failover image is not an exact ack-order prefix (cut=%d of %d): a migration-window commit skipped staged records of its own epoch", n, writes)
	}
}
