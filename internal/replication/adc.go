// Package replication implements the paper's remote-copy engines:
//
//   - Group — asynchronous data copy (ADC, §III-A1): a drain process moves
//     journal records across the inter-site link in batches and applies them
//     at the backup array strictly in journal-sequence order. When the
//     journal is a consistency group's shared journal, cross-volume ordering
//     is preserved; with one Group per volume it is not (the configuration
//     experiment E6 shows collapses).
//   - SyncVolume — synchronous data copy (SDC, §V baseline): every write
//     waits for the remote apply and the returning ack, putting the link RTT
//     on the business-processing path.
package replication

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/storage"
)

// ErrStopped is returned by operations on a stopped replication group.
var ErrStopped = errors.New("replication: group stopped")

// Config tunes the ADC drain.
type Config struct {
	// BatchMax is the largest number of journal records moved per link
	// transfer (default 64). E9 sweeps it.
	BatchMax int
}

func (c Config) withDefaults() Config {
	if c.BatchMax <= 0 {
		c.BatchMax = 64
	}
	return c
}

// Group replicates one source journal to target volumes asynchronously.
type Group struct {
	env     *sim.Env
	name    string
	journal *storage.Journal
	target  *storage.Array
	mapping map[storage.VolumeID]storage.VolumeID
	path    fabric.Path
	cfg     Config

	stopEv     *sim.Event
	stopped    bool
	caughtUp   *sim.Event
	inflight   int
	detachEv   *sim.Event // requests a batch-boundary drain halt
	detachedEv *sim.Event // acknowledged: drain parked, nothing in flight
	detachReq  bool
	detached   bool

	appliedSeq     int64
	appliedRecords int64
	appliedBytes   int64
	lastAppliedAck time.Duration
	applyLog       []storage.Record // applied at target, for verification
	lost           []storage.Record // abandoned in flight by Stop (disaster split)
	batch          []storage.Record // drain scratch, reused across batches
	failedOver     bool
	drainProc      *sim.Proc
}

// NewGroup wires a source journal to target volumes. mapping translates each
// source volume ID to its backup-site twin; every journal member must be
// mapped and every mapped target must exist on the target array. path is the
// inter-site transfer path — a raw *netlink.Link or a QoS-classed
// fabric.TenantPath are both fine.
func NewGroup(env *sim.Env, name string, journal *storage.Journal, target *storage.Array,
	mapping map[storage.VolumeID]storage.VolumeID, path fabric.Path, cfg Config) (*Group, error) {
	for _, src := range journal.Members() {
		dst, ok := mapping[src]
		if !ok {
			return nil, fmt.Errorf("replication: journal member %s has no target mapping", src)
		}
		if _, err := target.Volume(dst); err != nil {
			return nil, fmt.Errorf("replication: target for %s: %w", src, err)
		}
	}
	m := make(map[storage.VolumeID]storage.VolumeID, len(mapping))
	for k, v := range mapping {
		m[k] = v
	}
	return &Group{
		env:        env,
		name:       name,
		journal:    journal,
		target:     target,
		mapping:    m,
		path:       path,
		cfg:        cfg.withDefaults(),
		stopEv:     env.NewEvent(),
		caughtUp:   env.NewEvent(),
		detachEv:   env.NewEvent(),
		detachedEv: env.NewEvent(),
	}, nil
}

// Name returns the group name.
func (g *Group) Name() string { return g.name }

// Journal returns the source journal being drained.
func (g *Group) Journal() *storage.Journal { return g.journal }

// InitialCopy performs the ADC initialization bulk copy (§III-A1): every
// written block of every source volume is transferred and applied to its
// target. Writes that land during the copy flow through the journal and are
// applied afterwards by the drain, so the target converges to a consistent
// image. sources must live on the array owning the journal volumes.
func (g *Group) InitialCopy(p *sim.Proc, source *storage.Array) error {
	for _, src := range g.journal.Members() {
		sv, err := source.Volume(src)
		if err != nil {
			return err
		}
		tv, err := g.target.Volume(g.mapping[src])
		if err != nil {
			return err
		}
		if err := g.bulkCopy(p, sv, tv, sv.WrittenBlocks()); err != nil {
			return err
		}
	}
	return nil
}

// bulkCopy streams the given blocks of one volume to its target in
// BatchMax-block batches: one link transfer and one delta-set apply per
// batch instead of one scheduling event per block. The initial copy and
// resync share it.
func (g *Group) bulkCopy(p *sim.Proc, sv, tv *storage.Volume, blocks []int64) error {
	for start := 0; start < len(blocks); start += g.cfg.BatchMax {
		chunk := blocks[start:min(start+g.cfg.BatchMax, len(blocks))]
		var bytes int
		for range chunk {
			bytes += sv.BlockSize() + 64
		}
		g.path.Transfer(p, bytes)
		g.target.ApplyDeltaSet(p, len(chunk))
		var err error
		p.Do(func() {
			for _, b := range chunk {
				if err = tv.InstallDelta(b, sv.Peek(b)); err != nil {
					return
				}
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Start launches the drain process. It runs until Stop.
func (g *Group) Start() {
	if g.drainProc != nil {
		return
	}
	g.drainProc = g.env.Process("adc-drain:"+g.name, g.drain)
}

// Stop halts the drain after the in-flight batch. Pending journal records
// stay at the main site — exactly the data a disaster would lose (RPO).
func (g *Group) Stop() {
	if g.stopped {
		return
	}
	g.stopped = true
	g.stopEv.Trigger()
}

// Stopped reports whether Stop was called.
func (g *Group) Stopped() bool { return g.stopped }

func (g *Group) drain(p *sim.Proc) {
	for {
		// A stop lands here — a batch boundary — leaving the backlog pending
		// at the source (the RPO exposure), not lost in flight.
		if g.stopped {
			return
		}
		// A detach lands here — a batch boundary — so nothing is ever in
		// flight when the acknowledgement fires.
		if g.detachReq {
			g.detached = true
			g.detachedEv.Trigger()
			return
		}
		// The batch scratch is reused across iterations; records that
		// outlive the batch (applyLog, lost) are copied out by value below.
		recs := g.journal.TryTakeInto(g.batch, g.cfg.BatchMax)
		if recs != nil {
			g.batch = recs
		}
		if recs == nil {
			if !g.caughtUp.Triggered() {
				g.caughtUp.Trigger()
			}
			switch p.WaitAny(g.journal.NotEmpty(), g.stopEv, g.detachEv) {
			case 1:
				return
			case 2:
				g.detached = true
				g.detachedEv.Trigger()
				return
			}
			if g.stopped {
				return
			}
			continue
		}
		g.inflight = len(recs)
		var batchBytes int
		for _, r := range recs {
			batchBytes += r.SizeBytes()
		}
		g.path.Transfer(p, batchBytes)
		// Stop splits the pair: a batch not yet applied is lost in flight,
		// exactly as a disaster (or operator split) leaves it. The batch is
		// the commit unit — its media time is charged in one delta-set apply
		// and the records then install at zero cost in sequence order — so
		// loss is batch-atomic and the target always holds an exact prefix
		// of batch boundaries.
		if g.stopped {
			g.lost = append(g.lost, recs...)
			g.inflight = 0
			return
		}
		g.target.ApplyDeltaSet(p, len(recs))
		if g.stopped {
			g.lost = append(g.lost, recs...)
			g.inflight = 0
			return
		}
		p.Do(func() {
			for _, r := range recs {
				tv, err := g.target.Volume(g.mapping[r.Volume])
				if err != nil {
					panic(fmt.Sprintf("replication %s: target vanished: %v", g.name, err))
				}
				if err := tv.InstallDelta(r.Block, r.Data); err != nil {
					panic(fmt.Sprintf("replication %s: apply: %v", g.name, err))
				}
				g.appliedSeq = r.Seq
				g.appliedRecords++
				g.appliedBytes += int64(len(r.Data))
				g.lastAppliedAck = r.AckedAt
				g.applyLog = append(g.applyLog, r)
			}
			g.inflight = 0
		})
		// No time passes between the post-apply stop check and here, so a
		// stop cannot slip in; the loop head re-checks detach and stop.
	}
}

// Detach halts the drain at a batch boundary WITHOUT the record loss a
// disaster split (Stop) models: any in-flight batch finishes its transfer
// and apply, then the drain parks and the journal's remaining backlog stays
// pending — ready for another engine to adopt it. This is the planned
// handoff the live 1→N reshard upgrade uses to replace a plain group with a
// sharded one. The group never drains again after Detach returns.
func (g *Group) Detach(p *sim.Proc) error {
	if g.stopped {
		return fmt.Errorf("replication: %s: %w", g.name, ErrStopped)
	}
	if g.detached {
		return nil
	}
	g.detachReq = true
	g.detachEv.Trigger()
	if g.drainProc == nil {
		// Never started: nothing in flight by construction.
		g.detached = true
		return nil
	}
	if p.WaitAny(g.detachedEv, g.stopEv) == 1 {
		return fmt.Errorf("replication: %s: %w", g.name, ErrStopped)
	}
	return nil
}

// Detached reports whether Detach completed.
func (g *Group) Detached() bool { return g.detached }

// CatchUp blocks until the journal is drained and every record applied, or
// the group stops. It reports whether the group fully caught up.
func (g *Group) CatchUp(p *sim.Proc) bool {
	for g.journal.Pending() > 0 || g.inflight > 0 {
		if g.stopped {
			return false
		}
		// A stale triggered marker means the drain caught up some time ago
		// and has not yet seen the new backlog; arm a fresh event so this
		// loop blocks instead of spinning at the current instant.
		if g.caughtUp.Triggered() {
			g.caughtUp = g.env.NewEvent()
		}
		if p.WaitAny(g.caughtUp, g.stopEv) == 1 {
			return false
		}
	}
	return true
}

// RPO returns the recovery-point objective exposure at virtual time now: how
// far the backup image lags the newest main-site ack. Zero when fully
// caught up.
func (g *Group) RPO(now time.Duration) time.Duration {
	if oldest, ok := g.journal.OldestPendingAck(); ok {
		return now - oldest
	}
	if g.inflight > 0 {
		return now - g.lastAppliedAck
	}
	return 0
}

// Backlog returns the number of journal records not yet applied at the
// target (pending + in flight).
func (g *Group) Backlog() int { return g.journal.Pending() + g.inflight }

// AppliedSeq returns the journal sequence applied through.
func (g *Group) AppliedSeq() int64 { return g.appliedSeq }

// AppliedRecords returns the lifetime count of applied records.
func (g *Group) AppliedRecords() int64 { return g.appliedRecords }

// AppliedBytes returns the lifetime payload bytes applied.
func (g *Group) AppliedBytes() int64 { return g.appliedBytes }

// ApplyLog returns the records applied at the target in apply order. The
// consistency verifier reads it; callers must not mutate it.
func (g *Group) ApplyLog() []storage.Record { return g.applyLog }

// UnappliedRecords returns every record acknowledged at the source but
// never applied at the target: the journal backlog plus any batch
// abandoned in flight when the pair was split. Failback derives the
// source-side divergence from it.
func (g *Group) UnappliedRecords() []storage.Record {
	out := append([]storage.Record(nil), g.lost...)
	return append(out, g.journal.PendingRecords()...)
}

// Mapping returns a copy of the source→target volume mapping.
func (g *Group) Mapping() map[storage.VolumeID]storage.VolumeID {
	m := make(map[storage.VolumeID]storage.VolumeID, len(g.mapping))
	for k, v := range g.mapping {
		m[k] = v
	}
	return m
}

// Suspended reports whether the source journal has overflowed (the pair
// is suspended and writes are tracked in the delta bitmap instead).
func (g *Group) Suspended() bool { return g.journal.Overflowed() }

// Resync recovers a suspended pair: it drains the journal's consistent
// remainder, then copies the tracked delta blocks until a full pass finds
// nothing new, and finally re-enables journaling. During the block-level
// copy the target is NOT point-in-time consistent (which is why operators
// snapshot the target before resyncing — exactly the demo's snapshot
// group). maxPasses bounds convergence under continuous write load.
func (g *Group) Resync(p *sim.Proc, source *storage.Array, maxPasses int) error {
	if !g.journal.Overflowed() {
		return nil
	}
	if maxPasses <= 0 {
		maxPasses = 10
	}
	g.CatchUp(p)
	for pass := 0; pass < maxPasses; pass++ {
		copied := false
		for _, src := range g.journal.Members() {
			sv, err := source.Volume(src)
			if err != nil {
				return err
			}
			tv, err := g.target.Volume(g.mapping[src])
			if err != nil {
				return err
			}
			blocks := sv.ChangedBlocks()
			if len(blocks) == 0 {
				continue
			}
			// Reset tracking so writes landing during this copy are
			// caught by the next pass.
			sv.StartChangeTracking()
			if err := g.bulkCopy(p, sv, tv, blocks); err != nil {
				return fmt.Errorf("replication %s: resync %s: %w", g.name, src, err)
			}
			copied = true
		}
		if !copied {
			// Quiet pass: nothing dirtied since the last reset. No time
			// passes between this check and ClearOverflow, so no write
			// can slip between them.
			g.journal.ClearOverflow()
			return nil
		}
	}
	return fmt.Errorf("replication %s: resync did not converge in %d passes", g.name, maxPasses)
}

// Failover stops replication and makes every target volume writable,
// returning the volumes in journal-member order. This is the backup-site
// recovery entry point (§I): the image is whatever has been applied.
func (g *Group) Failover() ([]*storage.Volume, error) {
	g.Stop()
	g.failedOver = true
	var vols []*storage.Volume
	for _, src := range g.journal.Members() {
		tv, err := g.target.Volume(g.mapping[src])
		if err != nil {
			return nil, err
		}
		tv.SetReadOnly(false)
		// Record everything the new production site writes from here on —
		// the delta-resync bitmap Failback copies back.
		tv.StartChangeTracking()
		vols = append(vols, tv)
	}
	return vols, nil
}

// FailedOver reports whether Failover ran.
func (g *Group) FailedOver() bool { return g.failedOver }

func (g *Group) String() string {
	return fmt.Sprintf("ADCGroup(%s){applied=%d backlog=%d}", g.name, g.appliedRecords, g.Backlog())
}
