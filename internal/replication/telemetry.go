package replication

import (
	"fmt"

	"repro/internal/telemetry"
	"time"
)

// Instrument registers the plain engine's telemetry probes: the tenant's
// RPO and drain backlog, sampled on the virtual clock. Probes self-gate —
// they stop reporting once the engine stops or detaches, ending the
// tenant's timeline instead of recording a frozen exposure forever. No-op
// when reg is nil.
func (g *Group) Instrument(reg *telemetry.Registry, tenant string) {
	if reg == nil {
		return
	}
	live := func() bool { return !g.stopped && !g.detached }
	reg.Probe("rpo", func(now time.Duration) (float64, bool) {
		return float64(g.RPO(now)), live()
	}, telemetry.L("tenant", tenant))
	reg.Probe("backlog.records", func(time.Duration) (float64, bool) {
		return float64(g.Backlog()), live()
	}, telemetry.L("tenant", tenant))
}

// Instrument registers the sharded engine's telemetry: the tenant's RPO and
// total backlog, per-lane staged bytes and shard backlog, an epoch
// seal-to-commit latency histogram, and spans over epoch drains and reshard
// migration windows. Lanes added by a later Reshard register their probes
// on creation; retiring lanes stop reporting once reaped. No-op when reg is
// nil.
func (g *ShardedGroup) Instrument(reg *telemetry.Registry, tenant string) {
	if reg == nil {
		return
	}
	g.tel, g.tenant = reg, tenant
	g.laneGen = make(map[int]int)
	g.epochLatency = reg.Histogram("epoch.commit.latency", telemetry.L("tenant", tenant))
	live := func() bool { return !g.stopped && !g.failedOver }
	reg.Probe("rpo", func(now time.Duration) (float64, bool) {
		return float64(g.RPO(now)), live()
	}, telemetry.L("tenant", tenant))
	reg.Probe("backlog.records", func(time.Duration) (float64, bool) {
		return float64(g.backlogRecords()), live()
	}, telemetry.L("tenant", tenant))
	for _, l := range g.lanes {
		g.instrumentLane(l)
	}
}

// instrumentLane registers one lane's probes. A shrink-then-grow reshard
// sequence can re-create a lane index whose retired predecessor already
// owns the probe key, so re-registrations carry a generation suffix — each
// lane object gets its own timeline.
func (g *ShardedGroup) instrumentLane(l *drainLane) {
	if g.tel == nil {
		return
	}
	gen := g.laneGen[l.idx]
	g.laneGen[l.idx] = gen + 1
	laneLabel := fmt.Sprintf("%d", l.idx)
	if gen > 0 {
		laneLabel = fmt.Sprintf("%d#%d", l.idx, gen)
	}
	labels := []telemetry.Label{
		telemetry.L("tenant", g.tenant),
		telemetry.L("lane", laneLabel),
	}
	live := func() bool { return !g.stopped && !l.retire.Triggered() }
	g.tel.Probe("lane.staged.bytes", func(time.Duration) (float64, bool) {
		var b int
		for _, r := range l.staged {
			b += r.SizeBytes()
		}
		return float64(b), live()
	}, labels...)
	g.tel.Probe("lane.pending.records", func(time.Duration) (float64, bool) {
		return float64(l.journal.Pending() + l.inflight), live()
	}, labels...)
}
