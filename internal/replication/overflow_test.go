package replication

import (
	"testing"
	"time"

	"repro/internal/netlink"
	"repro/internal/sim"
	"repro/internal/storage"
)

// overflowRig builds a pair whose journal holds only a few records.
func overflowRig(t *testing.T) (*rig, *Group) {
	t.Helper()
	r := newRig(t, netlink.Config{Propagation: 2 * time.Millisecond})
	blockSize := r.main.Config().BlockSize
	j, err := r.main.CreateJournalSized("cg", 4*(blockSize+64+64)) // ~4 records
	if err != nil {
		t.Fatal(err)
	}
	if err := r.main.AttachJournal("sales", "cg"); err != nil {
		t.Fatal(err)
	}
	if err := r.main.AttachJournal("stock", "cg"); err != nil {
		t.Fatal(err)
	}
	g, err := NewGroup(r.env, "cg", j, r.backup,
		map[storage.VolumeID]storage.VolumeID{"sales": "sales", "stock": "stock"},
		r.links.Forward, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return r, g
}

func TestJournalOverflowSuspendsPair(t *testing.T) {
	r, g := overflowRig(t)
	// No drain running: the journal fills and overflows.
	r.env.Process("io", func(p *sim.Proc) {
		for i := int64(0); i < 20; i++ {
			if _, err := r.sales.Write(p, i, fill(r.main, byte(i))); err != nil {
				t.Error(err)
				return
			}
		}
	})
	r.env.Run(0)
	if !g.Suspended() {
		t.Fatal("journal never overflowed")
	}
	if g.Journal().Overflows() != 1 {
		t.Fatalf("overflows = %d", g.Journal().Overflows())
	}
	// Writes after suspension are tracked, not journaled.
	pendingAtOverflow := g.Journal().Pending()
	r.env.Process("more", func(p *sim.Proc) {
		r.sales.Write(p, 50, fill(r.main, 0xAA))
	})
	r.env.Run(0)
	if g.Journal().Pending() != pendingAtOverflow {
		t.Fatal("suspended journal still accepting records")
	}
	if got := len(r.sales.ChangedBlocks()); got == 0 {
		t.Fatal("suspended writes not tracked")
	}
}

func TestResyncRecoversSuspendedPair(t *testing.T) {
	r, g := overflowRig(t)
	g.Start()
	// Partition so the drain stalls while writes overflow the journal.
	r.links.Partition()
	r.env.Process("io", func(p *sim.Proc) {
		for i := int64(0); i < 20; i++ {
			r.sales.Write(p, i, fill(r.main, byte(i+1)))
		}
		p.Sleep(50 * time.Millisecond)
	})
	r.env.Run(0)
	if !g.Suspended() {
		t.Fatal("pair not suspended")
	}
	r.links.Heal()
	var resyncErr error
	r.env.Process("resync", func(p *sim.Proc) {
		resyncErr = g.Resync(p, r.main, 0)
	})
	r.env.Run(0)
	if resyncErr != nil {
		t.Fatal(resyncErr)
	}
	if g.Suspended() {
		t.Fatal("pair still suspended after resync")
	}
	// Every written block arrived at the backup.
	bs, _ := r.backup.Volume("sales")
	for i := int64(0); i < 20; i++ {
		if bs.Peek(i)[0] != byte(i+1) {
			t.Fatalf("backup block %d = %x, want %x", i, bs.Peek(i)[0], byte(i+1))
		}
	}
	// Journaling works again: a new write replicates normally.
	r.env.Process("after", func(p *sim.Proc) {
		r.sales.Write(p, 99, fill(r.main, 0x77))
		g.CatchUp(p)
	})
	r.env.Run(0)
	if bs.Peek(99)[0] != 0x77 {
		t.Fatal("replication broken after resync")
	}
	g.Stop()
}

func TestResyncConvergesUnderConcurrentWrites(t *testing.T) {
	r, g := overflowRig(t)
	g.Start()
	r.links.Partition()
	r.env.Process("io", func(p *sim.Proc) {
		for i := int64(0); i < 10; i++ {
			r.sales.Write(p, i, fill(r.main, 1))
		}
	})
	r.env.Run(0)
	if !g.Suspended() {
		t.Fatal("not suspended")
	}
	r.links.Heal()
	// A writer keeps dirtying one block while the resync runs; the
	// pass-until-quiet loop must still converge once the writer stops.
	r.env.Process("writer", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			r.sales.Write(p, 3, fill(r.main, byte(0x10+i)))
			p.Sleep(3 * time.Millisecond)
		}
	})
	var resyncErr error
	r.env.Process("resync", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		resyncErr = g.Resync(p, r.main, 0)
	})
	r.env.Run(0)
	if resyncErr != nil {
		t.Fatal(resyncErr)
	}
	bs, _ := r.backup.Volume("sales")
	if bs.Peek(3)[0] != 0x14 {
		t.Fatalf("backup block 3 = %x, want final value 14", bs.Peek(3)[0])
	}
	g.Stop()
}

func TestUnlimitedJournalNeverOverflows(t *testing.T) {
	r := newRig(t, netlink.Config{Propagation: time.Millisecond})
	g := r.newCG(t, Config{}) // CreateConsistencyGroup = unlimited journal
	r.env.Process("io", func(p *sim.Proc) {
		for i := int64(0); i < 200; i++ {
			r.sales.Write(p, i%256, fill(r.main, 1))
		}
	})
	r.env.Run(0)
	if g.Suspended() {
		t.Fatal("unlimited journal overflowed")
	}
	g.Stop()
}
