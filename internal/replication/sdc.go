package replication

import (
	"time"

	"repro/internal/fabric"
	"repro/internal/netlink"
	"repro/internal/sim"
	"repro/internal/storage"
)

// BlockWriter is the host-facing write interface. storage.Volume satisfies
// it for unreplicated and ADC volumes (ADC acks locally); SyncVolume wraps a
// pair for SDC. The database layer writes through this interface so the
// replication mode is a drop-in configuration choice, which is how the E5
// slowdown experiment swaps modes.
type BlockWriter interface {
	Write(p *sim.Proc, block int64, data []byte) (storage.Ack, error)
	Read(p *sim.Proc, block int64) ([]byte, error)
	SizeBlocks() int64
	BlockSize() int
}

// SyncVolume implements synchronous data copy: a write is acknowledged only
// after the data is applied at the remote twin and the ack crosses back.
// The added latency is serialization + one forward propagation + remote
// media time + one reverse propagation — the business-processing impact the
// paper's §V credits SDC with.
type SyncVolume struct {
	source  *storage.Volume
	target  *storage.Volume
	forward fabric.Path
	reverse fabric.Path

	writes       int64
	remoteLag    time.Duration // cumulative remote round-trip overhead
	lastWriteAck storage.Ack
}

// NewSyncVolume pairs a source volume with its remote twin over a link pair.
func NewSyncVolume(source, target *storage.Volume, links *netlink.Pair) *SyncVolume {
	return NewSyncVolumeOnPaths(source, target, links.Forward, links.Reverse)
}

// NewSyncVolumeOnPaths is NewSyncVolume over explicit forward/reverse
// transfer paths — how an SDC pair rides a QoS-classed inter-site fabric.
func NewSyncVolumeOnPaths(source, target *storage.Volume, forward, reverse fabric.Path) *SyncVolume {
	return &SyncVolume{source: source, target: target, forward: forward, reverse: reverse}
}

// Write stores the block locally, mirrors it remotely, and returns after the
// remote ack. The returned Ack is the local one (its GlobalSeq still defines
// the ack order; SDC guarantees the remote has it too).
func (sv *SyncVolume) Write(p *sim.Proc, block int64, data []byte) (storage.Ack, error) {
	ack, err := sv.source.Write(p, block, data)
	if err != nil {
		return storage.Ack{}, err
	}
	start := p.Now()
	sv.forward.Transfer(p, len(data)+64)
	if err := sv.target.Apply(p, block, data); err != nil {
		return storage.Ack{}, err
	}
	sv.reverse.Transfer(p, 64) // ack frame
	sv.remoteLag += p.Now() - start
	sv.writes++
	sv.lastWriteAck = ack
	return ack, nil
}

// Read serves from the local volume (SDC reads are always local).
func (sv *SyncVolume) Read(p *sim.Proc, block int64) ([]byte, error) {
	return sv.source.Read(p, block)
}

// SizeBlocks returns the local volume size.
func (sv *SyncVolume) SizeBlocks() int64 { return sv.source.SizeBlocks() }

// BlockSize returns the local volume's block size.
func (sv *SyncVolume) BlockSize() int { return sv.source.BlockSize() }

// Source returns the local volume.
func (sv *SyncVolume) Source() *storage.Volume { return sv.source }

// Target returns the remote twin.
func (sv *SyncVolume) Target() *storage.Volume { return sv.target }

// Writes returns the number of mirrored writes.
func (sv *SyncVolume) Writes() int64 { return sv.writes }

// MeanRemoteOverhead returns the average per-write latency added by the
// synchronous mirror, or 0 with no writes.
func (sv *SyncVolume) MeanRemoteOverhead() time.Duration {
	if sv.writes == 0 {
		return 0
	}
	return sv.remoteLag / time.Duration(sv.writes)
}

var _ BlockWriter = (*SyncVolume)(nil)
var _ BlockWriter = (*storage.Volume)(nil)
