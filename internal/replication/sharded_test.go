package replication

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/netlink"
	"repro/internal/sim"
	"repro/internal/storage"
)

// shardedRig is a two-site fixture with vols volumes on each side, a
// sharded consistency group over all of them, and one link pair per lane.
type shardedRig struct {
	env    *sim.Env
	main   *storage.Array
	backup *storage.Array
	vols   []storage.VolumeID
	sj     *storage.ShardedJournal
	g      *ShardedGroup
}

func newShardedRig(t *testing.T, shards, vols int, linkCfg netlink.Config, cfg Config) *shardedRig {
	t.Helper()
	env := sim.NewEnv(1)
	main := storage.NewArray(env, "main", storage.Config{})
	backup := storage.NewArray(env, "backup", storage.Config{})
	r := &shardedRig{env: env, main: main, backup: backup}
	mapping := make(map[storage.VolumeID]storage.VolumeID)
	for i := 0; i < vols; i++ {
		id := storage.VolumeID(fmt.Sprintf("vol-%02d", i))
		for _, a := range []*storage.Array{main, backup} {
			if _, err := a.CreateVolume(id, 256); err != nil {
				t.Fatal(err)
			}
		}
		r.vols = append(r.vols, id)
		mapping[id] = id
	}
	sj, err := main.CreateShardedConsistencyGroup("cg", r.vols, shards)
	if err != nil {
		t.Fatal(err)
	}
	r.sj = sj
	paths := make([]fabric.Path, shards)
	for k := range paths {
		paths[k] = netlink.NewPair(env, linkCfg).Forward
	}
	g, err := NewShardedGroup(env, "cg", sj, backup, mapping, paths, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.g = g
	return r
}

// seqWrite writes one block carrying the global write sequence i: volume
// round-robin, ascending blocks, the sequence in the first 8 data bytes.
func (r *shardedRig) seqWrite(p *sim.Proc, t *testing.T, i int) {
	v, _ := r.main.Volume(r.vols[i%len(r.vols)])
	buf := make([]byte, r.main.Config().BlockSize)
	binary.BigEndian.PutUint64(buf, uint64(i+1))
	if _, err := v.Write(p, int64(i/len(r.vols)), buf); err != nil {
		t.Errorf("write %d: %v", i, err)
	}
}

// presentSeqs scans the backup image for sequence-stamped blocks.
func (r *shardedRig) presentSeqs() map[uint64]bool {
	out := map[uint64]bool{}
	for _, id := range r.vols {
		tv, _ := r.backup.Volume(id)
		for _, b := range tv.WrittenBlocks() {
			out[binary.BigEndian.Uint64(tv.Peek(b))] = true
		}
	}
	return out
}

// exactPrefix reports whether seqs == {1..K} and returns K.
func exactPrefix(seqs map[uint64]bool) (int, bool) {
	for k := uint64(1); ; k++ {
		if !seqs[k] {
			return int(k - 1), len(seqs) == int(k-1)
		}
	}
}

// TestShardedDrainConvergesToSourceImage: every record lands, per-shard
// apply order is strict sequence order, and the target content matches the
// source byte for byte after CatchUp.
func TestShardedDrainConvergesToSourceImage(t *testing.T) {
	r := newShardedRig(t, 4, 8, netlink.Config{Propagation: time.Millisecond, BandwidthBps: 1e8}, Config{BatchMax: 8})
	r.g.Start()
	const writes = 96
	r.env.Process("writer", func(p *sim.Proc) {
		for i := 0; i < writes; i++ {
			r.seqWrite(p, t, i)
		}
		if !r.g.CatchUp(p) {
			t.Error("catch-up interrupted")
		}
	})
	r.env.Run(0)
	if r.g.Backlog() != 0 || r.g.AppliedRecords() != writes {
		t.Fatalf("backlog=%d applied=%d, want 0/%d", r.g.Backlog(), r.g.AppliedRecords(), writes)
	}
	if k, ok := exactPrefix(r.presentSeqs()); !ok || k != writes {
		t.Fatalf("target image not the full prefix: k=%d ok=%v", k, ok)
	}
	for _, id := range r.vols {
		sv, _ := r.main.Volume(id)
		tv, _ := r.backup.Volume(id)
		for _, b := range sv.WrittenBlocks() {
			if !bytes.Equal(sv.Peek(b), tv.Peek(b)) {
				t.Fatalf("content diverged at %s[%d]", id, b)
			}
		}
	}
	// Per-shard ordering: committed records of one shard appear in strictly
	// increasing shard-sequence order (the per-volume guarantee).
	lastSeq := make(map[int]int64)
	for _, rec := range r.g.ApplyLog() {
		k := r.sj.ShardIndexOf(rec.Volume)
		if rec.Seq <= lastSeq[k] {
			t.Fatalf("shard %d applied seq %d after %d", k, rec.Seq, lastSeq[k])
		}
		lastSeq[k] = rec.Seq
	}
	if r.g.EpochCommits() == 0 || r.g.CommittedEpoch() == 0 {
		t.Fatalf("no epochs committed: %v", r.g)
	}
	if r.g.RPO(r.env.Now()) != 0 {
		t.Fatalf("RPO nonzero after catch-up: %v", r.g.RPO(r.env.Now()))
	}
}

// TestShardedFailoverImageIsEpochCut pins the barrier protocol: splitting
// the pair mid-drain leaves the backup image exactly at a committed epoch
// boundary — an exact prefix of the cross-volume ack order, never a
// half-applied epoch — and accounts every missing record as unapplied.
func TestShardedFailoverImageIsEpochCut(t *testing.T) {
	// Slow links so a deep backlog is guaranteed when the split hits.
	r := newShardedRig(t, 4, 8, netlink.Config{Propagation: 2 * time.Millisecond, BandwidthBps: 2e6}, Config{BatchMax: 8})
	r.g.Start()
	const writes = 120
	r.env.Process("writer", func(p *sim.Proc) {
		for i := 0; i < writes; i++ {
			r.seqWrite(p, t, i)
		}
	})
	var vols []*storage.Volume
	r.env.Process("disaster", func(p *sim.Proc) {
		p.Sleep(60 * time.Millisecond) // mid-drain: writers done, backlog deep
		var err error
		vols, err = r.g.Failover()
		if err != nil {
			t.Error(err)
		}
	})
	r.env.Run(0)
	if len(vols) != len(r.vols) {
		t.Fatalf("failover returned %d volumes", len(vols))
	}
	seqs := r.presentSeqs()
	k, ok := exactPrefix(seqs)
	if !ok {
		t.Fatalf("failover image is not an exact prefix: %d seqs, prefix %d", len(seqs), k)
	}
	if k == 0 {
		t.Fatal("nothing committed before the split — scenario degenerate")
	}
	if k >= writes {
		t.Fatal("everything committed before the split — scenario degenerate")
	}
	if int(r.g.AppliedRecords()) != k {
		t.Fatalf("applied=%d but image prefix=%d", r.g.AppliedRecords(), k)
	}
	if got := len(r.g.UnappliedRecords()); got != writes-k {
		t.Fatalf("unapplied=%d, want %d", got, writes-k)
	}
	for _, tv := range vols {
		if tv.ReadOnly() {
			t.Fatal("failover target still read-only")
		}
	}
	if !r.g.FailedOver() || !r.g.Stopped() {
		t.Fatal("failover state flags wrong")
	}
}

// TestShardedGroupValidation covers constructor guardrails.
func TestShardedGroupValidation(t *testing.T) {
	env := sim.NewEnv(1)
	main := storage.NewArray(env, "main", storage.Config{})
	backup := storage.NewArray(env, "backup", storage.Config{})
	main.CreateVolume("a", 64)
	backup.CreateVolume("a", 64)
	sj, err := main.CreateShardedConsistencyGroup("cg", []storage.VolumeID{"a"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	pair := netlink.NewPair(env, netlink.Config{})
	if _, err := NewShardedGroup(env, "g", sj, backup, map[storage.VolumeID]storage.VolumeID{"a": "a"},
		[]fabric.Path{pair.Forward}, Config{}); err == nil {
		t.Fatal("path/shard count mismatch accepted")
	}
	if _, err := NewShardedGroup(env, "g", sj, backup, map[storage.VolumeID]storage.VolumeID{},
		[]fabric.Path{pair.Forward, pair.Forward}, Config{}); err == nil {
		t.Fatal("missing mapping accepted")
	}
	if _, err := NewShardedGroup(env, "g", sj, backup, map[storage.VolumeID]storage.VolumeID{"a": "nope"},
		[]fabric.Path{pair.Forward, pair.Forward}, Config{}); err == nil {
		t.Fatal("missing target accepted")
	}
}

// TestShardedLaneScratchIntegrity drives many small batches through all
// lanes and verifies every committed record still carries its own payload —
// the corruption a shared cross-lane scratch buffer would cause.
func TestShardedLaneScratchIntegrity(t *testing.T) {
	r := newShardedRig(t, 4, 8, netlink.Config{Propagation: 500 * time.Microsecond, BandwidthBps: 1e7}, Config{BatchMax: 4})
	r.g.Start()
	const writes = 64
	r.env.Process("writer", func(p *sim.Proc) {
		for i := 0; i < writes; i++ {
			r.seqWrite(p, t, i)
		}
		r.g.CatchUp(p)
	})
	r.env.Run(0)
	for _, rec := range r.g.ApplyLog() {
		seq := binary.BigEndian.Uint64(rec.Data)
		wantVol := r.vols[(seq-1)%uint64(len(r.vols))]
		wantBlock := int64(seq-1) / int64(len(r.vols))
		if rec.Volume != wantVol || rec.Block != wantBlock {
			t.Fatalf("record payload %d landed as %s[%d], want %s[%d]", seq, rec.Volume, rec.Block, wantVol, wantBlock)
		}
	}
}
