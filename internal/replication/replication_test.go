package replication

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/netlink"
	"repro/internal/sim"
	"repro/internal/storage"
)

// rig is a two-site fixture: main and backup arrays joined by a link pair,
// with sales+stock volumes on both sides.
type rig struct {
	env    *sim.Env
	main   *storage.Array
	backup *storage.Array
	links  *netlink.Pair
	sales  *storage.Volume
	stock  *storage.Volume
}

func newRig(t *testing.T, linkCfg netlink.Config) *rig {
	t.Helper()
	env := sim.NewEnv(1)
	main := storage.NewArray(env, "main", storage.Config{})
	backup := storage.NewArray(env, "backup", storage.Config{})
	for _, a := range []*storage.Array{main, backup} {
		if _, err := a.CreateVolume("sales", 256); err != nil {
			t.Fatal(err)
		}
		if _, err := a.CreateVolume("stock", 256); err != nil {
			t.Fatal(err)
		}
	}
	sales, _ := main.Volume("sales")
	stock, _ := main.Volume("stock")
	return &rig{
		env:    env,
		main:   main,
		backup: backup,
		links:  netlink.NewPair(env, linkCfg),
		sales:  sales,
		stock:  stock,
	}
}

func (r *rig) newCG(t *testing.T, cfg Config) *Group {
	t.Helper()
	j, err := r.main.CreateConsistencyGroup("cg", []storage.VolumeID{"sales", "stock"})
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGroup(r.env, "cg", j, r.backup,
		map[storage.VolumeID]storage.VolumeID{"sales": "sales", "stock": "stock"},
		r.links.Forward, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func fill(a *storage.Array, b byte) []byte {
	buf := make([]byte, a.Config().BlockSize)
	for i := range buf {
		buf[i] = b
	}
	return buf
}

func TestNewGroupValidatesMapping(t *testing.T) {
	r := newRig(t, netlink.Config{})
	j, _ := r.main.CreateConsistencyGroup("cg", []storage.VolumeID{"sales", "stock"})
	if _, err := NewGroup(r.env, "g", j, r.backup,
		map[storage.VolumeID]storage.VolumeID{"sales": "sales"}, r.links.Forward, Config{}); err == nil {
		t.Fatal("missing mapping accepted")
	}
	if _, err := NewGroup(r.env, "g", j, r.backup,
		map[storage.VolumeID]storage.VolumeID{"sales": "sales", "stock": "nope"}, r.links.Forward, Config{}); err == nil {
		t.Fatal("unknown target accepted")
	}
}

func TestADCDrainsInOrder(t *testing.T) {
	r := newRig(t, netlink.Config{Propagation: time.Millisecond})
	g := r.newCG(t, Config{})
	g.Start()
	r.env.Process("io", func(p *sim.Proc) {
		r.sales.Write(p, 1, fill(r.main, 0xA1))
		r.stock.Write(p, 2, fill(r.main, 0xB2))
		r.sales.Write(p, 3, fill(r.main, 0xC3))
		g.CatchUp(p)
	})
	r.env.Run(0)
	bs, _ := r.backup.Volume("sales")
	bk, _ := r.backup.Volume("stock")
	if bs.Peek(1)[0] != 0xA1 || bk.Peek(2)[0] != 0xB2 || bs.Peek(3)[0] != 0xC3 {
		t.Fatal("backup content wrong")
	}
	log := g.ApplyLog()
	if len(log) != 3 {
		t.Fatalf("apply log has %d records", len(log))
	}
	for i, rec := range log {
		if rec.Seq != int64(i+1) {
			t.Fatalf("apply order broken: %v", log)
		}
	}
	if g.AppliedSeq() != 3 || g.Backlog() != 0 {
		t.Fatalf("appliedSeq=%d backlog=%d", g.AppliedSeq(), g.Backlog())
	}
	g.Stop()
}

func TestADCWriteAckDoesNotWaitForLink(t *testing.T) {
	// The paper's core slowdown claim: with ADC the host ack is local.
	r := newRig(t, netlink.Config{Propagation: 500 * time.Millisecond})
	g := r.newCG(t, Config{})
	g.Start()
	var ackAt time.Duration
	r.env.Process("io", func(p *sim.Proc) {
		r.sales.Write(p, 0, fill(r.main, 1))
		ackAt = p.Now()
	})
	r.env.Run(0)
	if ackAt > 10*time.Millisecond {
		t.Fatalf("ADC write acked at %v, should not include the 500ms link", ackAt)
	}
	g.Stop()
}

func TestSDCWritePaysRoundTrip(t *testing.T) {
	r := newRig(t, netlink.Config{Propagation: 50 * time.Millisecond})
	tv, _ := r.backup.Volume("sales")
	sv := NewSyncVolume(r.sales, tv, r.links)
	var ackAt time.Duration
	r.env.Process("io", func(p *sim.Proc) {
		if _, err := sv.Write(p, 0, fill(r.main, 7)); err != nil {
			t.Error(err)
		}
		ackAt = p.Now()
	})
	r.env.Run(0)
	if ackAt < 100*time.Millisecond {
		t.Fatalf("SDC write acked at %v, must include full RTT (100ms)", ackAt)
	}
	if tv.Peek(0)[0] != 7 {
		t.Fatal("remote twin missing data")
	}
	if sv.Writes() != 1 || sv.MeanRemoteOverhead() < 100*time.Millisecond {
		t.Fatalf("stats: writes=%d overhead=%v", sv.Writes(), sv.MeanRemoteOverhead())
	}
}

func TestSyncVolumeReadIsLocal(t *testing.T) {
	r := newRig(t, netlink.Config{Propagation: time.Hour}) // reads must not touch this
	tv, _ := r.backup.Volume("sales")
	sv := NewSyncVolume(r.sales, tv, r.links)
	var got []byte
	r.env.Process("io", func(p *sim.Proc) {
		r.sales.Write(p, 0, fill(r.main, 3))
		got, _ = sv.Read(p, 0)
	})
	end := r.env.Run(0)
	if got[0] != 3 {
		t.Fatal("read wrong data")
	}
	if end > time.Second {
		t.Fatalf("local read crossed the link (took %v)", end)
	}
}

func TestInitialCopyTransfersExistingData(t *testing.T) {
	r := newRig(t, netlink.Config{Propagation: time.Millisecond})
	r.env.Process("preload", func(p *sim.Proc) {
		r.sales.Write(p, 5, fill(r.main, 0x55))
		r.stock.Write(p, 6, fill(r.main, 0x66))
	})
	r.env.Run(0)
	g := r.newCG(t, Config{})
	r.env.Process("init", func(p *sim.Proc) {
		if err := g.InitialCopy(p, r.main); err != nil {
			t.Error(err)
		}
	})
	r.env.Run(0)
	bs, _ := r.backup.Volume("sales")
	bk, _ := r.backup.Volume("stock")
	if bs.Peek(5)[0] != 0x55 || bk.Peek(6)[0] != 0x66 {
		t.Fatal("initial copy incomplete")
	}
	// Note: the preload happened before the CG existed, so those writes are
	// not in the journal; only the bulk copy moved them.
	if g.Journal().Pending() != 0 {
		t.Fatal("unexpected journal records")
	}
}

func TestRPOGrowsWhilePartitionedAndRecovers(t *testing.T) {
	r := newRig(t, netlink.Config{Propagation: time.Millisecond})
	g := r.newCG(t, Config{})
	g.Start()
	var rpoDuring, rpoAfter time.Duration
	r.env.Process("io", func(p *sim.Proc) {
		r.links.Partition()
		r.sales.Write(p, 0, fill(r.main, 1))
		p.Sleep(200 * time.Millisecond)
		rpoDuring = g.RPO(p.Now())
		r.links.Heal()
		g.CatchUp(p)
		rpoAfter = g.RPO(p.Now())
	})
	r.env.Run(0)
	if rpoDuring < 190*time.Millisecond {
		t.Fatalf("RPO during partition = %v, want >= ~200ms", rpoDuring)
	}
	if rpoAfter != 0 {
		t.Fatalf("RPO after catch-up = %v, want 0", rpoAfter)
	}
	g.Stop()
}

func TestBacklogCountsPendingAndInflight(t *testing.T) {
	r := newRig(t, netlink.Config{Propagation: 100 * time.Millisecond})
	g := r.newCG(t, Config{BatchMax: 1})
	g.Start()
	r.env.Process("io", func(p *sim.Proc) {
		for i := int64(0); i < 5; i++ {
			r.sales.Write(p, i, fill(r.main, byte(i)))
		}
		p.Sleep(time.Millisecond)
		if got := g.Backlog(); got != 5 {
			t.Errorf("backlog right after writes = %d, want 5", got)
		}
		g.CatchUp(p)
		if got := g.Backlog(); got != 0 {
			t.Errorf("backlog after catch-up = %d", got)
		}
	})
	r.env.Run(0)
	g.Stop()
}

func TestStopHaltsDrain(t *testing.T) {
	r := newRig(t, netlink.Config{Propagation: time.Millisecond})
	g := r.newCG(t, Config{})
	g.Start()
	r.env.Process("io", func(p *sim.Proc) {
		r.sales.Write(p, 0, fill(r.main, 1))
		g.CatchUp(p)
		g.Stop()
		// Writes after stop stay in the journal.
		r.sales.Write(p, 1, fill(r.main, 2))
		p.Sleep(time.Second)
	})
	r.env.Run(0)
	bs, _ := r.backup.Volume("sales")
	if bs.Peek(0)[0] != 1 {
		t.Fatal("pre-stop write not applied")
	}
	if bs.Peek(1)[0] != 0 {
		t.Fatal("post-stop write leaked to backup")
	}
	if g.Journal().Pending() != 1 {
		t.Fatalf("pending = %d, want 1", g.Journal().Pending())
	}
}

func TestFailoverMakesTargetsWritable(t *testing.T) {
	r := newRig(t, netlink.Config{Propagation: time.Millisecond})
	g := r.newCG(t, Config{})
	for _, id := range []storage.VolumeID{"sales", "stock"} {
		tv, _ := r.backup.Volume(id)
		tv.SetReadOnly(true)
	}
	g.Start()
	r.env.Process("io", func(p *sim.Proc) {
		r.sales.Write(p, 0, fill(r.main, 1))
		g.CatchUp(p)
	})
	r.env.Run(0)
	vols, err := g.Failover()
	if err != nil {
		t.Fatal(err)
	}
	if len(vols) != 2 {
		t.Fatalf("failover returned %d volumes", len(vols))
	}
	if !g.Stopped() || !g.FailedOver() {
		t.Fatal("failover state wrong")
	}
	r.env.Process("write-at-backup", func(p *sim.Proc) {
		if _, err := vols[0].Write(p, 10, fill(r.backup, 9)); err != nil {
			t.Errorf("backup volume still read-only: %v", err)
		}
	})
	r.env.Run(0)
}

func TestPerVolumeGroupsDivergeWithoutCG(t *testing.T) {
	// Two single-volume journals share one link; after a mid-stream stop the
	// two targets can be at different global points. This is the mechanism
	// behind E6, tested here at the replication layer.
	env := sim.NewEnv(3)
	main := storage.NewArray(env, "main", storage.Config{})
	backup := storage.NewArray(env, "backup", storage.Config{})
	for _, a := range []*storage.Array{main, backup} {
		a.CreateVolume("sales", 4096)
		a.CreateVolume("stock", 4096)
	}
	links := netlink.NewPair(env, netlink.Config{Propagation: 5 * time.Millisecond, BandwidthBps: 2e6})
	js, _ := main.CreateConsistencyGroup("j-sales", []storage.VolumeID{"sales"})
	jk, _ := main.CreateConsistencyGroup("j-stock", []storage.VolumeID{"stock"})
	gs, _ := NewGroup(env, "g-sales", js, backup, map[storage.VolumeID]storage.VolumeID{"sales": "sales"}, links.Forward, Config{BatchMax: 8})
	gk, _ := NewGroup(env, "g-stock", jk, backup, map[storage.VolumeID]storage.VolumeID{"stock": "stock"}, links.Forward, Config{BatchMax: 8})
	gs.Start()
	gk.Start()
	sales, _ := main.Volume("sales")
	stock, _ := main.Volume("stock")
	env.Process("io", func(p *sim.Proc) {
		for i := int64(0); i < 400; i++ {
			b := make([]byte, main.Config().BlockSize)
			b[0] = byte(i)
			sales.Write(p, i%512, b)
			stock.Write(p, i%512, b)
		}
	})
	env.Run(40 * time.Millisecond) // stop mid-replication: the disaster
	gs.Stop()
	gk.Stop()
	a, b := gs.AppliedRecords(), gk.AppliedRecords()
	if a == 0 && b == 0 {
		t.Skip("nothing applied before cut; scenario too short")
	}
	// With independent drains over a shared link the applied counts are
	// whatever the interleaving produced; the replication layer promises
	// only per-journal order, NOT cross-journal alignment. We assert the
	// per-journal order here.
	for i, rec := range gs.ApplyLog() {
		if rec.Seq != int64(i+1) {
			t.Fatalf("sales apply order broken at %d", i)
		}
	}
	for i, rec := range gk.ApplyLog() {
		if rec.Seq != int64(i+1) {
			t.Fatalf("stock apply order broken at %d", i)
		}
	}
}

func TestBatchSizeAffectsTransferCount(t *testing.T) {
	run := func(batch int) int64 {
		env := sim.NewEnv(1)
		main := storage.NewArray(env, "m", storage.Config{})
		backup := storage.NewArray(env, "b", storage.Config{})
		main.CreateVolume("v", 1024)
		backup.CreateVolume("v", 1024)
		link := netlink.New(env, netlink.Config{Propagation: 10 * time.Millisecond})
		j, _ := main.CreateConsistencyGroup("j", []storage.VolumeID{"v"})
		g, _ := NewGroup(env, "g", j, backup, map[storage.VolumeID]storage.VolumeID{"v": "v"}, link, Config{BatchMax: batch})
		v, _ := main.Volume("v")
		env.Process("io", func(p *sim.Proc) {
			for i := int64(0); i < 100; i++ {
				v.Write(p, i, make([]byte, main.Config().BlockSize))
			}
			g.Start()
			g.CatchUp(p)
			g.Stop()
		})
		env.Run(0)
		return link.Transfers()
	}
	small, large := run(1), run(100)
	if small != 100 {
		t.Fatalf("batch=1 transfers = %d, want 100", small)
	}
	if large != 1 {
		t.Fatalf("batch=100 transfers = %d, want 1", large)
	}
}

func TestApplyLogDataIntegrity(t *testing.T) {
	r := newRig(t, netlink.Config{})
	g := r.newCG(t, Config{})
	g.Start()
	want := fill(r.main, 0xEE)
	r.env.Process("io", func(p *sim.Proc) {
		r.sales.Write(p, 9, want)
		g.CatchUp(p)
	})
	r.env.Run(0)
	bs, _ := r.backup.Volume("sales")
	if !bytes.Equal(bs.Peek(9), want) {
		t.Fatal("payload corrupted in flight")
	}
	g.Stop()
}
