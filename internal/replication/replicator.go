package replication

import (
	"errors"
	"time"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/telemetry"
)

// ErrReshardUnsupported reports a live Reshard request on an engine that
// cannot reconfigure its lane set in place. The plain single-lane Group is
// the only such engine: a 1→N transition instead goes through a planned
// handoff (Group.Detach, storage.Array.ConvertToSharded, a fresh
// ShardedGroup over the adopted journal) — the replication plugin drives
// that sequence.
var ErrReshardUnsupported = errors.New("replication: engine does not support live reshard")

// Replicator is the control-plane-facing surface of an ADC engine. Two
// implementations exist: Group drains one shared journal on one lane (the
// paper's configuration), ShardedGroup drains a sharded journal on one lane
// per shard with epoch barriers for cross-shard ordering. The replication
// plugin, core, and fleet operate on this interface so a consistency group
// can switch engines via the JournalShards knob without touching callers.
type Replicator interface {
	Name() string
	Start()
	Stop()
	Stopped() bool

	// InitialCopy bulk-copies every written source block to the target.
	InitialCopy(p *sim.Proc, source *storage.Array) error
	// CatchUp blocks until every journaled record is applied (or the
	// engine stops), reporting whether it fully caught up.
	CatchUp(p *sim.Proc) bool

	RPO(now time.Duration) time.Duration
	Backlog() int
	AppliedRecords() int64
	AppliedBytes() int64
	ApplyLog() []storage.Record
	UnappliedRecords() []storage.Record

	// Members returns the consistency group's volumes in attach order.
	Members() []storage.VolumeID
	Mapping() map[storage.VolumeID]storage.VolumeID
	// JournalID names the source journal (the group journal for sharded
	// engines; its shards carry derived IDs).
	JournalID() string

	// Lanes returns the engine's active drain-lane count (1 for the plain
	// engine). The reconcile loop diffs it against the declared shard count
	// to detect reshard work.
	Lanes() int
	// Reshard transitions the engine to len(paths) drain lanes via an
	// epoch-bounded live migration (lane k drains shard k over paths[k]).
	// Engines that cannot reconfigure in place return ErrReshardUnsupported.
	Reshard(p *sim.Proc, paths []fabric.Path) (storage.ReshardStats, error)

	Failover() ([]*storage.Volume, error)
	FailedOver() bool

	// Instrument registers the engine's telemetry probes (RPO, backlog,
	// lane state) under the tenant label. No-op when reg is nil.
	Instrument(reg *telemetry.Registry, tenant string)
}

var (
	_ Replicator = (*Group)(nil)
	_ Replicator = (*ShardedGroup)(nil)
)

// Members returns the journal's member volumes (the consistency-group
// membership), in attach order.
func (g *Group) Members() []storage.VolumeID { return g.journal.Members() }

// JournalID returns the source journal's identifier.
func (g *Group) JournalID() string { return g.journal.ID() }

// Lanes returns 1: the plain engine drains on a single lane.
func (g *Group) Lanes() int { return 1 }

// Reshard on the plain engine is unsupported — the control plane upgrades
// to a sharded engine instead (Detach + ConvertToSharded + NewShardedGroup).
func (g *Group) Reshard(p *sim.Proc, paths []fabric.Path) (storage.ReshardStats, error) {
	return storage.ReshardStats{}, ErrReshardUnsupported
}
