package replication

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/telemetry"
)

// ShardedGroup replicates one sharded consistency-group journal to target
// volumes over multiple drain lanes — one per journal shard, each lane on
// its own fabric path, so a single tenant's drain throughput scales with
// shard count instead of being capped by one lane.
//
// Correctness protocol (the cross-shard ordering barrier):
//
//  1. every record carries the group epoch open at ack time; sealing an
//     epoch is atomic, so "all records with epoch <= E" is an exact prefix
//     of the group's cross-volume ack order;
//  2. lanes transfer records lane-locally and STAGE them at the target —
//     staged records are not yet part of the backup image;
//  3. a coordinator seals epochs whenever there is backlog and, once every
//     lane has staged its share of the sealed epoch (the barrier), commits
//     the whole epoch: the target applies the delta set and exposes it
//     atomically. The backup image therefore always sits exactly on an
//     epoch boundary = a consistent cross-volume cut, no matter when a
//     disaster splits the pair.
//
// Within an epoch, cross-shard apply order is relaxed (that is the point —
// lanes run concurrently); per volume, order is exact because placement
// pins each volume to one shard.
type ShardedGroup struct {
	env     *sim.Env
	name    string
	journal *storage.ShardedJournal
	target  *storage.Array
	mapping map[storage.VolumeID]storage.VolumeID
	cfg     Config

	lanes    []*drainLane // active lanes, index-aligned with journal shards
	retiring []*drainLane // lanes of retired shards, draining their last staged records

	stopEv       *sim.Event
	stopped      bool
	failedOver   bool
	started      bool
	progress     *sim.Event // pulsed by lanes as they stage; the barrier wait
	committed    *sim.Event // pulsed per epoch commit; CatchUp waits on it
	reconfigured *sim.Event // pulsed by Reshard; wakes the coordinator onto the new lane set

	// Reshard state. While resharding is set, one volume's staged records
	// can be split across two lanes (its old shard's lane staged pre-barrier
	// records, its new shard's lane stages post-barrier ones), so epoch
	// commits apply in global ack (GlobalSeq) order instead of lane order.
	// The window closes — and retiring lanes are reaped — once every record
	// of epochs <= the migration barrier is committed at the target.
	resharding       bool
	migrationBarrier int64
	reshardSettled   *sim.Event // re-armed per reshard; AwaitReshard waits on it
	reshards         int64

	committedEpoch   int64
	epochCommits     int64
	appliedRecords   int64
	appliedBytes     int64
	lastCommittedAck time.Duration
	applyLog         []storage.Record // committed at target, for verification
	lost             []storage.Record // abandoned mid-transfer by Stop

	// Telemetry (set by Instrument; nil handles no-op when disabled).
	tel          *telemetry.Registry
	tenant       string
	epochLatency *telemetry.Histogram
	reshardSpan  telemetry.Span
	laneGen      map[int]int // lane index -> registrations (probe-key generations)
}

// drainLane is one shard's drain state. Each lane owns its batch scratch
// and staging buffer — nothing is shared across lanes, so concurrent lanes
// never alias each other's records.
type drainLane struct {
	idx     int
	journal *storage.Journal
	path    fabric.Path

	batch  []storage.Record // drain scratch, reused across batches
	staged []storage.Record // transferred, awaiting an epoch commit

	inflight      int           // records mid-transfer on the lane path
	inflightEpoch int64         // epoch of the first in-flight record
	inflightAck   time.Duration // ack time of the first in-flight record

	// retire is triggered by the coordinator once a retiring lane has
	// nothing left to drain, stage, or commit; the lane process exits on it.
	retire *sim.Event
}

// NewShardedGroup wires a sharded source journal to target volumes. paths
// carries one fabric path per shard (lane k drains shard k over paths[k]);
// mapping follows the same contract as NewGroup.
func NewShardedGroup(env *sim.Env, name string, journal *storage.ShardedJournal, target *storage.Array,
	mapping map[storage.VolumeID]storage.VolumeID, paths []fabric.Path, cfg Config) (*ShardedGroup, error) {
	if len(paths) != journal.ShardCount() {
		return nil, fmt.Errorf("replication: %s: %d paths for %d shards", name, len(paths), journal.ShardCount())
	}
	for _, src := range journal.Members() {
		dst, ok := mapping[src]
		if !ok {
			return nil, fmt.Errorf("replication: journal member %s has no target mapping", src)
		}
		if _, err := target.Volume(dst); err != nil {
			return nil, fmt.Errorf("replication: target for %s: %w", src, err)
		}
	}
	m := make(map[storage.VolumeID]storage.VolumeID, len(mapping))
	for k, v := range mapping {
		m[k] = v
	}
	g := &ShardedGroup{
		env:            env,
		name:           name,
		journal:        journal,
		target:         target,
		mapping:        m,
		cfg:            cfg.withDefaults(),
		stopEv:         env.NewEvent(),
		progress:       env.NewEvent(),
		committed:      env.NewEvent(),
		reconfigured:   env.NewEvent(),
		reshardSettled: env.NewEvent(),
	}
	for i, shard := range journal.Shards() {
		g.lanes = append(g.lanes, g.newLane(i, shard, paths[i]))
	}
	return g, nil
}

func (g *ShardedGroup) newLane(idx int, shard *storage.Journal, path fabric.Path) *drainLane {
	l := &drainLane{idx: idx, journal: shard, path: path, retire: g.env.NewEvent()}
	// Lanes added by a live reshard register their probes here, so their
	// timelines start at the migration instant.
	g.instrumentLane(l)
	return l
}

// Name returns the group name.
func (g *ShardedGroup) Name() string { return g.name }

// Journal returns the source sharded journal being drained.
func (g *ShardedGroup) Journal() *storage.ShardedJournal { return g.journal }

// JournalID returns the group journal's identifier.
func (g *ShardedGroup) JournalID() string { return g.journal.ID() }

// Members returns the consistency group's volumes in attach order.
func (g *ShardedGroup) Members() []storage.VolumeID { return g.journal.Members() }

// Lanes returns the number of active drain lanes (= journal shards);
// retiring lanes mid-reshard are excluded.
func (g *ShardedGroup) Lanes() int { return len(g.lanes) }

// InitialCopy performs the ADC initialization bulk copy: every written
// block of every source volume is transferred — over the volume's own lane
// path — and applied to its target.
func (g *ShardedGroup) InitialCopy(p *sim.Proc, source *storage.Array) error {
	for _, src := range g.journal.Members() {
		sv, err := source.Volume(src)
		if err != nil {
			return err
		}
		tv, err := g.target.Volume(g.mapping[src])
		if err != nil {
			return err
		}
		path := g.lanes[g.journal.ShardIndexOf(src)].path
		for _, b := range sv.WrittenBlocks() {
			data := sv.Peek(b)
			path.Transfer(p, len(data)+64)
			if err := tv.Apply(p, b, data); err != nil {
				return err
			}
		}
	}
	return nil
}

// Start launches one drain process per lane plus the epoch coordinator.
func (g *ShardedGroup) Start() {
	if g.started {
		return
	}
	g.started = true
	for _, l := range g.lanes {
		l := l
		g.env.Process(fmt.Sprintf("adc-lane:%s:s%d", g.name, l.idx), func(p *sim.Proc) { g.drainLane(p, l) })
	}
	g.env.Process("adc-epoch:"+g.name, g.coordinate)
}

// Stop halts the lanes and the coordinator. Staged records that never made
// it into a committed epoch are lost at the split, exactly like a plain
// group's in-flight batch.
func (g *ShardedGroup) Stop() {
	if g.stopped {
		return
	}
	g.stopped = true
	g.stopEv.Trigger()
}

// Stopped reports whether Stop was called.
func (g *ShardedGroup) Stopped() bool { return g.stopped }

// drainLane moves one shard's records across the lane's path and stages
// them for the next epoch commit.
func (g *ShardedGroup) drainLane(p *sim.Proc, l *drainLane) {
	for {
		recs := l.journal.TryTakeInto(l.batch, g.cfg.BatchMax)
		if recs != nil {
			l.batch = recs
		}
		if recs == nil {
			g.pulseProgress()
			switch p.WaitAny(l.journal.NotEmpty(), g.stopEv, l.retire) {
			case 1:
				return
			case 2:
				return // retired: staged records were committed, shard is empty
			}
			if g.stopped {
				return
			}
			continue
		}
		var batchBytes int
		for _, r := range recs {
			batchBytes += r.SizeBytes()
		}
		l.inflight = len(recs)
		l.inflightEpoch = recs[0].Epoch
		l.inflightAck = recs[0].AckedAt
		l.path.Transfer(p, batchBytes)
		if g.stopped {
			// Split mid-transfer: the batch never reaches a committed
			// epoch — lost, exactly as a disaster leaves it.
			g.lost = append(g.lost, recs...)
			l.inflight = 0
			return
		}
		l.staged = append(l.staged, recs...)
		l.inflight = 0
		g.pulseProgress()
	}
}

// stagedThrough returns the highest epoch the lane has fully staged: no
// pending or in-flight record of that epoch (or older) remains. An idle
// empty lane has staged everything appended so far.
func (g *ShardedGroup) stagedThrough(l *drainLane) int64 {
	through := g.journal.Epoch()
	if e, ok := l.journal.OldestPendingEpoch(); ok && e-1 < through {
		through = e - 1
	}
	if l.inflight > 0 && l.inflightEpoch-1 < through {
		through = l.inflightEpoch - 1
	}
	return through
}

// commitLanes returns every lane that can hold uncommitted records: the
// active set plus lanes retiring after a shrink reshard.
func (g *ShardedGroup) commitLanes() []*drainLane {
	if len(g.retiring) == 0 {
		return g.lanes
	}
	out := make([]*drainLane, 0, len(g.lanes)+len(g.retiring))
	out = append(out, g.lanes...)
	return append(out, g.retiring...)
}

func (g *ShardedGroup) allStagedThrough(epoch int64) bool {
	for _, l := range g.commitLanes() {
		if g.stagedThrough(l) < epoch {
			return false
		}
	}
	return true
}

// coordinate runs the epoch cycle: seal whenever there is backlog, wait for
// every lane to stage its share of the sealed epoch (the barrier), commit
// the epoch atomically at the target, repeat. After a reshard it also
// settles the migration window and reaps retiring lanes once their last
// staged records are committed.
func (g *ShardedGroup) coordinate(p *sim.Proc) {
	for {
		if g.stopped {
			return
		}
		g.settleReshard()
		if g.backlogRecords() == 0 {
			evs := make([]*sim.Event, 0, len(g.lanes)+2)
			for _, l := range g.lanes {
				evs = append(evs, l.journal.NotEmpty())
			}
			evs = append(evs, g.reconfiguredEv(), g.stopEv)
			if p.WaitAny(evs...) == len(evs)-1 {
				return
			}
			if g.stopped {
				return
			}
			continue
		}
		sealed := g.journal.SealEpoch()
		sealedAt := p.Now()
		var sp telemetry.Span
		if g.tel != nil {
			sp = g.tel.StartSpan("epoch", "epoch-drain", g.tenant)
		}
		for !g.allStagedThrough(sealed) {
			if p.WaitAny(g.progressEv(), g.stopEv) == 1 {
				return
			}
			if g.stopped {
				return
			}
		}
		g.commitEpoch(p, sealed)
		sp.End()
		g.epochLatency.Record(p.Now() - sealedAt)
	}
}

// commitEpoch applies every staged record of epochs <= sealed to the target
// and exposes them atomically. The backup array works through the delta set
// with its controller parallelism, then installs the cut in one instant —
// which is why a failover can never observe a half-applied epoch.
//
// In steady state the apply iterates lane by lane: placement pins a volume
// to one shard, so per-volume order is each lane's staged order, and each
// staged list is epoch-monotone (it mirrors the shard backlog's order) —
// the "epoch > sealed" prefix scan is exact. During a reshard window
// NEITHER holds: a migrated volume's records can sit on two lanes, and
// migration can stage sealed-epoch records BEHIND open-epoch ones on a
// surviving lane. So the window's commits scan every staged record (no
// prefix break — a short scan would commit an epoch with holes and break
// the failover prefix) and apply in global ack (GlobalSeq) order.
func (g *ShardedGroup) commitEpoch(p *sim.Proc, sealed int64) {
	lanes := g.commitLanes()
	var count int
	var bytes int64
	for _, l := range lanes {
		for _, r := range l.staged {
			if r.Epoch > sealed {
				if !g.resharding {
					break
				}
				continue
			}
			count++
			bytes += int64(len(r.Data))
		}
	}
	if count == 0 {
		return
	}
	g.target.ApplyDeltaSet(p, count)
	if g.stopped {
		// Split mid-commit: the epoch never becomes visible; its staged
		// records are part of UnappliedRecords.
		return
	}
	if g.resharding {
		merged := make([]storage.Record, 0, count)
		for _, l := range lanes {
			for _, r := range l.staged {
				if r.Epoch <= sealed {
					merged = append(merged, r)
				}
			}
		}
		sort.Slice(merged, func(i, j int) bool { return merged[i].GlobalSeq < merged[j].GlobalSeq })
		p.Do(func() {
			for _, r := range merged {
				g.install(r)
			}
		})
		for _, l := range lanes {
			kept := l.staged[:0]
			for _, r := range l.staged {
				if r.Epoch > sealed {
					kept = append(kept, r)
				}
			}
			for i := len(kept); i < len(l.staged); i++ {
				l.staged[i] = storage.Record{}
			}
			l.staged = kept
		}
	} else {
		for _, l := range lanes {
			n := 0
			p.Do(func() {
				for _, r := range l.staged {
					if r.Epoch > sealed {
						break
					}
					g.install(r)
					n++
				}
			})
			rest := copy(l.staged, l.staged[n:])
			for i := rest; i < len(l.staged); i++ {
				l.staged[i] = storage.Record{}
			}
			l.staged = l.staged[:rest]
		}
	}
	g.appliedRecords += int64(count)
	g.appliedBytes += bytes
	g.committedEpoch = sealed
	g.epochCommits++
	if !g.committed.Triggered() {
		g.committed.Trigger()
	}
}

// install writes one committed record into its target volume.
func (g *ShardedGroup) install(r storage.Record) {
	tv, err := g.target.Volume(g.mapping[r.Volume])
	if err != nil {
		panic(fmt.Sprintf("replication %s: target vanished: %v", g.name, err))
	}
	if err := tv.InstallDelta(r.Block, r.Data); err != nil {
		panic(fmt.Sprintf("replication %s: commit: %v", g.name, err))
	}
	if r.AckedAt > g.lastCommittedAck {
		g.lastCommittedAck = r.AckedAt
	}
	g.applyLog = append(g.applyLog, r)
}

func (g *ShardedGroup) pulseProgress() {
	if !g.progress.Triggered() {
		g.progress.Trigger()
	}
}

func (g *ShardedGroup) progressEv() *sim.Event {
	if g.progress.Triggered() {
		g.progress = g.env.NewEvent()
	}
	return g.progress
}

func (g *ShardedGroup) committedEv() *sim.Event {
	if g.committed.Triggered() {
		g.committed = g.env.NewEvent()
	}
	return g.committed
}

func (g *ShardedGroup) pulseReconfigured() {
	if !g.reconfigured.Triggered() {
		g.reconfigured.Trigger()
	}
}

func (g *ShardedGroup) reconfiguredEv() *sim.Event {
	if g.reconfigured.Triggered() {
		g.reconfigured = g.env.NewEvent()
	}
	return g.reconfigured
}

// backlogRecords counts every record not yet committed at the target:
// journal pending, in flight on a lane path, or staged awaiting a commit —
// on active and retiring lanes alike.
func (g *ShardedGroup) backlogRecords() int {
	var n int
	for _, l := range g.commitLanes() {
		n += l.journal.Pending() + l.inflight + len(l.staged)
	}
	return n
}

// CatchUp blocks until every journaled record is committed at the target,
// or the group stops. It reports whether the group fully caught up.
func (g *ShardedGroup) CatchUp(p *sim.Proc) bool {
	for g.backlogRecords() > 0 {
		if g.stopped {
			return false
		}
		if p.WaitAny(g.committedEv(), g.stopEv) == 1 {
			return false
		}
	}
	return true
}

// RPO returns how far the committed backup image lags the newest main-site
// ack at virtual time now. Zero when fully caught up.
func (g *ShardedGroup) RPO(now time.Duration) time.Duration {
	var oldest time.Duration
	found := false
	note := func(t time.Duration) {
		if !found || t < oldest {
			oldest, found = t, true
		}
	}
	for _, l := range g.commitLanes() {
		if t, ok := l.journal.OldestPendingAck(); ok {
			note(t)
		}
		if len(l.staged) > 0 {
			note(l.staged[0].AckedAt)
		}
		if l.inflight > 0 {
			note(l.inflightAck)
		}
	}
	if !found {
		return 0
	}
	return now - oldest
}

// Backlog returns the number of records not yet committed at the target.
func (g *ShardedGroup) Backlog() int { return g.backlogRecords() }

// CommittedEpoch returns the highest epoch exposed at the target.
func (g *ShardedGroup) CommittedEpoch() int64 { return g.committedEpoch }

// EpochCommits returns how many consistency cuts the coordinator declared.
func (g *ShardedGroup) EpochCommits() int64 { return g.epochCommits }

// AppliedRecords returns the lifetime count of committed records.
func (g *ShardedGroup) AppliedRecords() int64 { return g.appliedRecords }

// AppliedBytes returns the lifetime payload bytes committed.
func (g *ShardedGroup) AppliedBytes() int64 { return g.appliedBytes }

// ApplyLog returns the records committed at the target in commit order:
// epoch by epoch, lane by lane within an epoch, shard-sequence order within
// a lane. The consistency verifier reads it; callers must not mutate it.
func (g *ShardedGroup) ApplyLog() []storage.Record { return g.applyLog }

// UnappliedRecords returns every record acknowledged at the source but not
// part of a committed epoch: journal backlogs, staged-but-uncommitted
// records, and batches abandoned mid-transfer at a split.
func (g *ShardedGroup) UnappliedRecords() []storage.Record {
	out := append([]storage.Record(nil), g.lost...)
	for _, l := range g.commitLanes() {
		out = append(out, l.staged...)
		out = append(out, l.journal.PendingRecords()...)
	}
	return out
}

// Mapping returns a copy of the source→target volume mapping.
func (g *ShardedGroup) Mapping() map[storage.VolumeID]storage.VolumeID {
	m := make(map[storage.VolumeID]storage.VolumeID, len(g.mapping))
	for k, v := range g.mapping {
		m[k] = v
	}
	return m
}

// Reshard transitions the running engine to len(paths) drain lanes with an
// epoch-bounded live migration — the replication half of a dynamic reshard:
//
//  1. the journal seals the open epoch as the migration barrier and
//     re-places volumes (migrating only those whose stable-hash assignment
//     changes, their pending records moving with them);
//  2. lanes whose shard survives keep draining untouched; lanes for added
//     shards start immediately on their own paths; lanes of retired shards
//     stop taking (their journals are empty after migration) and only live
//     on to commit what they had staged or in flight;
//  3. until every pre-barrier record is committed, epoch commits apply in
//     global ack order (see commitEpoch) — so the backup image remains an
//     exact ack-order prefix throughout, and a failover raced into the
//     migration window recovers either entirely pre- or entirely
//     post-barrier state;
//  4. once the barrier commits, retiring lanes are reaped and their shard
//     journals decommissioned back to the array.
//
// Resharding to the current lane count is a no-op (zero migration, no
// barrier). A second reshard is refused while one is still settling.
func (g *ShardedGroup) Reshard(p *sim.Proc, paths []fabric.Path) (storage.ReshardStats, error) {
	var zero storage.ReshardStats
	if g.stopped {
		return zero, fmt.Errorf("replication: %s: %w", g.name, ErrStopped)
	}
	if g.failedOver {
		return zero, fmt.Errorf("replication: %s: cannot reshard a failed-over group", g.name)
	}
	if len(paths) < 1 {
		return zero, fmt.Errorf("replication: %s: reshard to %d lanes", g.name, len(paths))
	}
	if len(paths) == len(g.lanes) {
		return storage.ReshardStats{From: len(g.lanes), To: len(g.lanes)}, nil
	}
	if g.resharding || len(g.retiring) > 0 {
		return zero, fmt.Errorf("replication: %s: reshard already in progress", g.name)
	}
	stats, err := g.journal.Reshard(len(paths))
	if err != nil {
		return stats, err
	}
	g.resharding = true
	g.migrationBarrier = stats.BarrierEpoch
	g.reshardSettled = g.env.NewEvent()
	g.reshards++
	if g.tel != nil {
		g.reshardSpan = g.tel.StartSpan("reshard",
			fmt.Sprintf("reshard:%d->%d", stats.From, stats.To), g.tenant)
	}

	shards := g.journal.Shards()
	if len(shards) < len(g.lanes) {
		// Shrink: lanes beyond the new shard set retire. Their journals are
		// already empty (migration moved the backlog), so they exit as soon
		// as anything they had staged or in flight reaches a commit.
		g.retiring = append(g.retiring, g.lanes[len(shards):]...)
		g.lanes = g.lanes[:len(shards):len(shards)]
	}
	for k := len(g.lanes); k < len(shards); k++ {
		l := g.newLane(k, shards[k], paths[k])
		g.lanes = append(g.lanes, l)
		if g.started {
			g.env.Process(fmt.Sprintf("adc-lane:%s:s%d", g.name, l.idx), func(p *sim.Proc) { g.drainLane(p, l) })
		}
	}
	// Wake the coordinator onto the new lane set; migration may also have
	// unblocked a sealed-epoch barrier wait by moving records around.
	g.pulseReconfigured()
	g.pulseProgress()
	// A reshard with nothing pre-barrier outstanding settles immediately.
	g.settleReshard()
	return stats, nil
}

// settleReshard closes the migration window once every record of epochs <=
// the barrier is committed at the target, then reaps retiring lanes and
// decommissions their shard journals.
func (g *ShardedGroup) settleReshard() {
	if !g.resharding && len(g.retiring) == 0 {
		return
	}
	if g.resharding {
		if !g.allStagedThrough(g.migrationBarrier) {
			return
		}
		for _, l := range g.commitLanes() {
			if len(l.staged) > 0 && l.staged[0].Epoch <= g.migrationBarrier {
				return
			}
		}
		g.resharding = false
	}
	kept := g.retiring[:0]
	for _, l := range g.retiring {
		if l.journal.Pending() == 0 && l.inflight == 0 && len(l.staged) == 0 {
			l.retire.Trigger()
		} else {
			kept = append(kept, l)
		}
	}
	for i := len(kept); i < len(g.retiring); i++ {
		g.retiring[i] = nil
	}
	g.retiring = kept
	if len(g.retiring) == 0 {
		g.journal.DecommissionRetired()
		if !g.reshardSettled.Triggered() {
			g.reshardSettled.Trigger()
		}
		// Close the migration-window span exactly once per reshard; the
		// zero-value reset makes later settle passes no-ops.
		g.reshardSpan.End()
		g.reshardSpan = telemetry.Span{}
	}
}

// Resharding reports whether a migration window is still open (pre-barrier
// records not yet committed, or retiring lanes not yet reaped).
func (g *ShardedGroup) Resharding() bool { return g.resharding || len(g.retiring) > 0 }

// Reshards returns the lifetime count of lane-set transitions.
func (g *ShardedGroup) Reshards() int64 { return g.reshards }

// MigrationBarrier returns the epoch sealed by the most recent reshard.
func (g *ShardedGroup) MigrationBarrier() int64 { return g.migrationBarrier }

// AwaitReshard blocks until the most recent reshard has fully settled (the
// barrier epoch committed, retiring lanes reaped, retired shard journals
// decommissioned), reporting false if the group stops first.
func (g *ShardedGroup) AwaitReshard(p *sim.Proc) bool {
	for g.Resharding() {
		if g.stopped {
			return false
		}
		if p.WaitAny(g.reshardSettled, g.stopEv) == 1 {
			return false
		}
	}
	return true
}

// Failover stops replication and makes every target volume writable,
// returning the volumes in journal-member order. The recovered image is the
// last committed epoch — always a consistent cross-volume cut.
func (g *ShardedGroup) Failover() ([]*storage.Volume, error) {
	g.Stop()
	g.failedOver = true
	var vols []*storage.Volume
	for _, src := range g.journal.Members() {
		tv, err := g.target.Volume(g.mapping[src])
		if err != nil {
			return nil, err
		}
		tv.SetReadOnly(false)
		tv.StartChangeTracking()
		vols = append(vols, tv)
	}
	return vols, nil
}

// FailedOver reports whether Failover ran.
func (g *ShardedGroup) FailedOver() bool { return g.failedOver }

func (g *ShardedGroup) String() string {
	return fmt.Sprintf("ShardedADCGroup(%s){lanes=%d epoch=%d committed=%d backlog=%d}",
		g.name, len(g.lanes), g.journal.Epoch(), g.committedEpoch, g.backlogRecords())
}
