package replication

import (
	"errors"
	"testing"
	"time"

	"repro/internal/netlink"
	"repro/internal/sim"
	"repro/internal/storage"
)

// failoverRig drives a rig to the failed-over state with some divergence:
// writes that never reached the backup, then new production at the backup.
func failoverRig(t *testing.T) (*rig, *Group) {
	t.Helper()
	r := newRig(t, netlink.Config{Propagation: 2 * time.Millisecond})
	g := r.newCG(t, Config{})
	g.Start()
	r.env.Process("io", func(p *sim.Proc) {
		r.sales.Write(p, 0, fill(r.main, 0x01))
		r.stock.Write(p, 0, fill(r.main, 0x02))
		g.CatchUp(p)
		// Partition, then write more: these strand in the journal.
		r.links.Partition()
		r.sales.Write(p, 1, fill(r.main, 0x03))
		p.Sleep(10 * time.Millisecond)
	})
	r.env.Run(0)
	if _, err := g.Failover(); err != nil {
		t.Fatal(err)
	}
	// The main site "returns": the inter-site links heal. (The stranded
	// journal writes stay lost — that is the point.)
	r.links.Heal()
	return r, g
}

func TestFailbackRequiresFailover(t *testing.T) {
	r := newRig(t, netlink.Config{})
	g := r.newCG(t, Config{})
	r.env.Process("t", func(p *sim.Proc) {
		if _, _, err := Failback(p, g, r.main, r.links.Reverse, Config{}); !errors.Is(err, ErrNotFailedOver) {
			t.Errorf("err = %v", err)
		}
	})
	r.env.Run(0)
}

func TestFailbackResyncsDelta(t *testing.T) {
	r, g := failoverRig(t)
	// New production at the backup site after failover.
	bs, _ := r.backup.Volume("sales")
	bk, _ := r.backup.Volume("stock")
	r.env.Process("prod", func(p *sim.Proc) {
		bs.Write(p, 2, fill(r.backup, 0x10))
		bk.Write(p, 3, fill(r.backup, 0x11))
	})
	r.env.Run(0)

	var stats FailbackStats
	var reverse *Group
	r.env.Process("failback", func(p *sim.Proc) {
		var err error
		reverse, stats, err = Failback(p, g, r.main, r.links.Reverse, Config{})
		if err != nil {
			t.Error(err)
			return
		}
		reverse.CatchUp(p)
	})
	r.env.Run(0)
	if reverse == nil {
		t.Fatal("no reverse group")
	}
	// The delta: backup writes on blocks 2 (sales) and 3 (stock), plus the
	// stranded sales block 1.
	if stats.DeltaBlocks != 3 {
		t.Fatalf("delta = %d blocks, want 3", stats.DeltaBlocks)
	}
	if stats.TotalBlocks < stats.DeltaBlocks {
		t.Fatalf("total %d < delta %d", stats.TotalBlocks, stats.DeltaBlocks)
	}
	// Main now mirrors the backup's truth.
	if r.sales.Peek(2)[0] != 0x10 || r.stock.Peek(3)[0] != 0x11 {
		t.Fatal("backup production not resynced to main")
	}
	// The stranded write (sales block 1) was rolled back to the backup's
	// view: the backup never had it, so main's copy is overwritten with
	// the backup content (zeroes were never written there — the block was
	// only in the stranded journal and on main; the resync copies the
	// backup's version).
	if r.sales.Peek(1)[0] == 0x03 {
		t.Fatal("stranded divergent write survived failback")
	}
	reverse.Stop()
}

func TestFailbackReverseReplicationFlows(t *testing.T) {
	r, g := failoverRig(t)
	bs, _ := r.backup.Volume("sales")
	var reverse *Group
	r.env.Process("failback", func(p *sim.Proc) {
		var err error
		reverse, _, err = Failback(p, g, r.main, r.links.Reverse, Config{})
		if err != nil {
			t.Error(err)
			return
		}
		// Production continues at the backup; reverse ADC carries it over.
		bs.Write(p, 7, fill(r.backup, 0x77))
		reverse.CatchUp(p)
	})
	r.env.Run(0)
	if r.sales.Peek(7)[0] != 0x77 {
		t.Fatal("post-failback write did not replicate in reverse")
	}
	// Old source is now a protected target.
	r.env.Process("guard", func(p *sim.Proc) {
		if _, err := r.sales.Write(p, 8, fill(r.main, 1)); !errors.Is(err, storage.ErrReadOnly) {
			t.Errorf("old source writable during reverse replication: %v", err)
		}
	})
	r.env.Run(0)
	reverse.Stop()
}

func TestFailbackCrossVolumeOrderPreserved(t *testing.T) {
	// The reverse direction is also a consistency group: interleaved
	// writes at the backup must apply at main in ack order.
	r, g := failoverRig(t)
	bs, _ := r.backup.Volume("sales")
	bk, _ := r.backup.Volume("stock")
	var reverse *Group
	r.env.Process("failback", func(p *sim.Proc) {
		var err error
		reverse, _, err = Failback(p, g, r.main, r.links.Reverse, Config{})
		if err != nil {
			t.Error(err)
			return
		}
		bs.Write(p, 10, fill(r.backup, 1))
		bk.Write(p, 10, fill(r.backup, 2))
		bs.Write(p, 11, fill(r.backup, 3))
		reverse.CatchUp(p)
	})
	r.env.Run(0)
	log := reverse.ApplyLog()
	if len(log) < 3 {
		t.Fatalf("apply log = %d records", len(log))
	}
	for i := 1; i < len(log); i++ {
		if log[i].Seq != log[i-1].Seq+1 {
			t.Fatal("reverse apply order broken")
		}
	}
	reverse.Stop()
}

func TestFailbackDeltaSmallerThanFull(t *testing.T) {
	// Write a lot before failover (fully replicated), little after: the
	// delta resync must move far less than a full copy would.
	r := newRig(t, netlink.Config{Propagation: time.Millisecond})
	g := r.newCG(t, Config{})
	g.Start()
	r.env.Process("io", func(p *sim.Proc) {
		for i := int64(0); i < 100; i++ {
			r.sales.Write(p, i, fill(r.main, byte(i)))
		}
		g.CatchUp(p)
	})
	r.env.Run(0)
	g.Failover()
	bs, _ := r.backup.Volume("sales")
	r.env.Process("prod", func(p *sim.Proc) {
		bs.Write(p, 5, fill(r.backup, 0xAA)) // one changed block
	})
	r.env.Run(0)
	var stats FailbackStats
	r.env.Process("failback", func(p *sim.Proc) {
		var err error
		var rev *Group
		rev, stats, err = Failback(p, g, r.main, r.links.Reverse, Config{})
		if err != nil {
			t.Error(err)
			return
		}
		rev.Stop()
	})
	r.env.Run(0)
	if stats.DeltaBlocks != 1 {
		t.Fatalf("delta = %d, want 1", stats.DeltaBlocks)
	}
	if stats.TotalBlocks < 100 {
		t.Fatalf("total = %d, want >= 100", stats.TotalBlocks)
	}
}
