package fabric

import (
	"fmt"
	"time"

	"repro/internal/telemetry"
)

// Instrument registers this direction's fabric probes: ingress queue depth,
// per-class cumulative bytes and admission drops, and per-member-link bytes
// on the wire. dir labels the direction ("fwd"/"rev"). All probes read
// plain counters the dispatchers maintain anyway, sampled between instants,
// so instrumentation changes no behavior. No-op when reg is nil.
func (f *Fabric) Instrument(reg *telemetry.Registry, dir string) {
	if reg == nil {
		return
	}
	reg.Probe("fabric.ingress.depth", func(time.Duration) (float64, bool) {
		return float64(f.queued), true
	}, telemetry.L("dir", dir))
	for _, c := range f.classes {
		c := c
		labels := []telemetry.Label{telemetry.L("dir", dir), telemetry.L("class", c.cfg.Name)}
		reg.Probe("fabric.class.bytes", func(time.Duration) (float64, bool) {
			return float64(c.bytes), true
		}, labels...)
		reg.Probe("fabric.class.drops", func(time.Duration) (float64, bool) {
			return float64(c.drops), true
		}, labels...)
	}
	for i, l := range f.links {
		i, l := i, l
		labels := []telemetry.Label{telemetry.L("dir", dir), telemetry.L("link", fmt.Sprintf("%d", i))}
		reg.Probe("fabric.link.bytes", func(time.Duration) (float64, bool) {
			return float64(l.SentBytes()), true
		}, labels...)
		// Pipe-fill gauges for windowed dispatch (WindowPerLink > 1): frames
		// serialized but still propagating right now, and the cumulative
		// counts of overlapped sends and full-window stalls. All flat zero
		// at the default window of 1.
		reg.Probe("fabric.link.inflight", func(time.Duration) (float64, bool) {
			return float64(l.InFlight()), true
		}, labels...)
		reg.Probe("fabric.link.pipelined", func(time.Duration) (float64, bool) {
			return float64(f.linkStats[i].pipelined), true
		}, labels...)
		reg.Probe("fabric.link.windowstalls", func(time.Duration) (float64, bool) {
			return float64(f.linkStats[i].stalls), true
		}, labels...)
	}
}
