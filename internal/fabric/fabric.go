// Package fabric models the inter-site network as a fabric of multiple
// member links with a per-tenant admission layer in front of them. Where
// internal/netlink is one pipe, a Fabric is the whole interconnect: tenants
// obtain a Path bound to a QoS class, transfers fan in at the fabric
// ingress, a deficit-weighted round-robin scheduler (plus optional
// token-bucket rate caps) arbitrates between classes, and per-link
// dispatchers spread admitted transfers over the member links. When a
// member link partitions, its dispatcher parks and the shared ingress
// queues drain through the surviving members — link failover without any
// consumer involvement.
//
// Consumers (the ADC drain, SDC mirror, failback resync) depend only on
// the small Path interface, which *netlink.Link also satisfies, so a raw
// link, a fabric path, and a test double are interchangeable.
package fabric

import (
	"fmt"
	"time"

	"repro/internal/netlink"
	"repro/internal/sim"
)

// Path is the consumer-facing transfer interface: move size bytes to the
// other site, blocking the calling process for however long that takes.
// *netlink.Link and *TenantPath both satisfy it.
type Path interface {
	Transfer(p *sim.Proc, size int) time.Duration
}

var (
	_ Path = (*netlink.Link)(nil)
	_ Path = (*TenantPath)(nil)
)

// ClassConfig describes one QoS class at the fabric ingress.
type ClassConfig struct {
	// Name identifies the class to Fabric.Path lookups.
	Name string
	// Weight is the class's deficit-round-robin share (default 1). A class
	// with weight 4 gets 4x the bytes of a weight-1 class under contention.
	Weight int
	// RateBps is an optional token-bucket rate cap in bytes per second;
	// 0 means uncapped (pure weighted sharing).
	RateBps float64
	// BurstBytes is the token-bucket depth (default 256 KiB when RateBps
	// is set). Transfers larger than the burst are admitted once the
	// bucket is full and drive the balance negative, enforcing the
	// long-run rate.
	BurstBytes int
	// MaxQueued caps the class's ingress queue depth; 0 means unbounded.
	// A full queue drops the admission attempt — the caller backs off
	// RetryBackoff and retries, and the drop is counted on its path.
	MaxQueued int
	// Links restricts the class to the given member-link indexes (nil =
	// any member). A single-element slice pins the class to a dedicated
	// link.
	Links []int
}

// Config assembles a Fabric.
type Config struct {
	// Links configures the member links (at least one; exactly one with no
	// Classes keeps the fabric in passthrough mode, byte-for-byte identical
	// to a raw netlink.Link).
	Links []netlink.Config
	// Classes defines the QoS classes. Empty means one best-effort class
	// and no ingress scheduling.
	Classes []ClassConfig
	// QuantumBytes is the DRR quantum credited per weight unit per round
	// (default 64 KiB).
	QuantumBytes int
	// RetryBackoff is the caller's initial pause after an ingress drop
	// (default 1ms). Repeated drops back off exponentially from here.
	RetryBackoff time.Duration
	// RetryBackoffCap bounds the exponential drop-retry backoff (default
	// 32x RetryBackoff).
	RetryBackoffCap time.Duration
	// WindowPerLink caps how many transfers one member link may have in
	// flight — serialized onto the wire but still propagating — at once.
	// The default 1 is the classic stop-and-wait dispatcher (the wire idles
	// for the full propagation delay between frames), byte-for-byte
	// identical to the pre-window fabric. Raising it pipelines dispatch: a
	// member picks and serializes the next admitted request while up to
	// WindowPerLink-1 earlier frames are still in flight, filling high
	// bandwidth-delay-product links (E18). Admission semantics (DRR, token
	// buckets, pins, partition parking) are unchanged; deliveries stay in
	// order per link.
	WindowPerLink int
}

func (c Config) withDefaults() Config {
	if len(c.Links) == 0 {
		c.Links = []netlink.Config{{}}
	}
	if c.QuantumBytes <= 0 {
		c.QuantumBytes = 64 << 10
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = time.Millisecond
	}
	if c.RetryBackoffCap <= 0 {
		c.RetryBackoffCap = 32 * c.RetryBackoff
	}
	if c.WindowPerLink <= 0 {
		c.WindowPerLink = 1
	}
	return c
}

// request is one transfer waiting at the fabric ingress.
type request struct {
	size       int
	enq        time.Duration
	queueDelay time.Duration // set at dispatch
	done       *sim.Event
	path       *TenantPath
	pin        int // member-link index this transfer must ride (-1 = any)
}

// class is the runtime state of one QoS class.
type class struct {
	cfg     ClassConfig
	queue   []*request
	head    int // pop index; queue is compacted when it empties
	deficit int // DRR byte credit

	tokens     float64 // token-bucket balance (bytes); may go negative
	lastRefill time.Duration

	bytes     int64
	transfers int64
	drops     int64
	maxDepth  int
}

func (c *class) depth() int { return len(c.queue) - c.head }

func (c *class) peek() *request { return c.queue[c.head] }

func (c *class) push(r *request) {
	c.queue = append(c.queue, r)
	if d := c.depth(); d > c.maxDepth {
		c.maxDepth = d
	}
}

// popAt removes and returns the request at backing-array index idx,
// preserving FIFO order of the remainder. idx == head reduces to pop.
func (c *class) popAt(idx int) *request {
	if idx == c.head {
		return c.pop()
	}
	r := c.queue[idx]
	copy(c.queue[idx:], c.queue[idx+1:])
	c.queue[len(c.queue)-1] = nil
	c.queue = c.queue[:len(c.queue)-1]
	return r
}

func (c *class) pop() *request {
	r := c.queue[c.head]
	c.queue[c.head] = nil
	c.head++
	if c.head == len(c.queue) {
		c.queue = c.queue[:0]
		c.head = 0
	} else if c.head > 32 && c.head > len(c.queue)/2 {
		// Compact: a continuously backlogged queue never fully empties, so
		// without this the backing array grows with total (not peak) load.
		n := copy(c.queue, c.queue[c.head:])
		for i := n; i < len(c.queue); i++ {
			c.queue[i] = nil
		}
		c.queue = c.queue[:n]
		c.head = 0
	}
	return r
}

func (c *class) allows(link int) bool {
	if len(c.cfg.Links) == 0 {
		return true
	}
	for _, li := range c.cfg.Links {
		if li == link {
			return true
		}
	}
	return false
}

// refill tops the token bucket up to the burst depth.
func (c *class) refill(now time.Duration) {
	if c.cfg.RateBps <= 0 {
		return
	}
	elapsed := now - c.lastRefill
	if elapsed <= 0 {
		return
	}
	c.lastRefill = now
	c.tokens += elapsed.Seconds() * c.cfg.RateBps
	if burst := float64(c.cfg.BurstBytes); c.tokens > burst {
		c.tokens = burst
	}
}

// gate reports whether the head transfer may pass the token bucket now,
// and if not, how long until it can.
func (c *class) gate(size int) (ok bool, wait time.Duration) {
	if c.cfg.RateBps <= 0 {
		return true, 0
	}
	need := float64(size)
	if burst := float64(c.cfg.BurstBytes); need > burst {
		need = burst // oversized transfers go when the bucket is full
	}
	if c.tokens >= need {
		return true, 0
	}
	return false, time.Duration((need - c.tokens) / c.cfg.RateBps * float64(time.Second))
}

// ClassStats is a snapshot of one class's counters.
type ClassStats struct {
	Bytes     int64
	Transfers int64
	Drops     int64
	MaxQueued int
}

// Fabric is a one-direction inter-site interconnect: member links behind a
// QoS-classed ingress. Build the reverse direction as a second Fabric (see
// Interconnect).
type Fabric struct {
	env     *sim.Env
	cfg     Config
	links   []*netlink.Link
	classes []*class
	byName  map[string]*class

	// scheduled is false for the trivial single-link, classless fabric:
	// paths then call the link directly (identical timing to a raw link,
	// no dispatcher processes, no per-transfer allocation).
	scheduled bool

	cursor   int  // DRR round-robin position (class in the service slot)
	credited bool // whether the cursor class received its quantum this visit
	queued   int  // requests waiting across all classes
	work     *sim.Event
	stopEv   *sim.Event
	stopped  bool

	// linkStats holds per-member pipelining counters (windowed dispatch).
	linkStats []linkStat
}

// linkStat counts one member dispatcher's pipelining behavior.
type linkStat struct {
	pipelined int64 // sends serialized while earlier frames were still in flight
	stalls    int64 // dispatcher waits forced by a full in-flight window
}

// LinkWindowStats is a snapshot of one member's pipelining counters: how
// often the window actually overlapped transfers (pipe fill) and how often
// it was the binding constraint.
type LinkWindowStats struct {
	Pipelined    int64
	WindowStalls int64
}

// LinkWindowStats returns member li's pipelining counters (zero for
// out-of-range members and at the default window of 1).
func (f *Fabric) LinkWindowStats(li int) LinkWindowStats {
	if li < 0 || li >= len(f.linkStats) {
		return LinkWindowStats{}
	}
	return LinkWindowStats{Pipelined: f.linkStats[li].pipelined, WindowStalls: f.linkStats[li].stalls}
}

// New builds a fabric, creating its member links from cfg.Links.
func New(env *sim.Env, cfg Config) *Fabric {
	cfg = cfg.withDefaults()
	links := make([]*netlink.Link, len(cfg.Links))
	for i, lc := range cfg.Links {
		links[i] = netlink.New(env, lc)
	}
	return NewWithLinks(env, cfg, links)
}

// NewWithLinks builds a fabric over already-constructed member links
// (cfg.Links is ignored). The system assembly uses this to keep the member
// links shared with the operator-facing netlink.Pair.
func NewWithLinks(env *sim.Env, cfg Config, links []*netlink.Link) *Fabric {
	cfg = cfg.withDefaults()
	if len(links) == 0 {
		panic("fabric: no member links")
	}
	f := &Fabric{
		env:       env,
		cfg:       cfg,
		links:     links,
		byName:    make(map[string]*class),
		work:      env.NewEvent(),
		stopEv:    env.NewEvent(),
		linkStats: make([]linkStat, len(links)),
	}
	ccfgs := cfg.Classes
	if len(ccfgs) == 0 {
		ccfgs = []ClassConfig{{Name: "best-effort"}}
	}
	for _, cc := range ccfgs {
		if cc.Weight <= 0 {
			cc.Weight = 1
		}
		if cc.RateBps > 0 && cc.BurstBytes <= 0 {
			cc.BurstBytes = 256 << 10
		}
		c := &class{cfg: cc, tokens: float64(cc.BurstBytes)}
		f.classes = append(f.classes, c)
		f.byName[cc.Name] = c
	}
	f.scheduled = len(links) > 1 || len(cfg.Classes) > 0
	if f.scheduled {
		for i := range f.links {
			li := i
			env.Process(fmt.Sprintf("fabric-dispatch:%d", li), func(p *sim.Proc) {
				f.dispatch(p, li)
			})
		}
	}
	return f
}

// Interconnect is the full-duplex fabric between two sites, the multi-link
// generalization of netlink.Pair.
type Interconnect struct {
	Forward *Fabric
	Reverse *Fabric
}

// Stop quiesces both directions' dispatchers.
func (ic *Interconnect) Stop() {
	ic.Forward.Stop()
	ic.Reverse.Stop()
}

// NewInterconnect builds both directions over pre-built member links (one
// forward and one reverse link per member). Both directions share the same
// class/scheduling configuration.
func NewInterconnect(env *sim.Env, cfg Config, fwd, rev []*netlink.Link) *Interconnect {
	return &Interconnect{
		Forward: NewWithLinks(env, cfg, fwd),
		Reverse: NewWithLinks(env, cfg, rev),
	}
}

// Path returns a new tenant path through the fabric bound to the named QoS
// class. An empty or unknown name binds to the first (default) class. Each
// call returns a distinct path with its own counters, so per-tenant bytes,
// queueing delay, and drops are measurable independently.
func (f *Fabric) Path(classname, owner string) *TenantPath {
	c, ok := f.byName[classname]
	if !ok {
		c = f.classes[0]
	}
	return &TenantPath{fabric: f, class: c, owner: owner, pin: -1,
		spread: pathSpread(owner, f.cfg.RetryBackoff)}
}

// pathSpread derives a deterministic per-path retry offset in [0, base)
// from the owner name (FNV-1a), so N paths backing off from the same drop
// instant retry at N distinct instants instead of in lockstep — without
// drawing from the simulation Rand at retry time, which would perturb
// replay determinism for every other random consumer.
func pathSpread(owner string, base time.Duration) time.Duration {
	if base <= 0 {
		return 0
	}
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < len(owner); i++ {
		h ^= uint64(owner[i])
		h *= prime64
	}
	return time.Duration(h % uint64(base))
}

// PathOn returns a tenant path pinned to member link `link`: its transfers
// are admitted under the class like any other, but only that member's
// dispatcher carries them — the placement-policy hook. The pin is advisory
// under faults: while the pinned member is partitioned, any member may
// carry the path's transfers, preserving link failover. An out-of-range
// link falls back to an unpinned path.
func (f *Fabric) PathOn(classname, owner string, link int) *TenantPath {
	tp := f.Path(classname, owner)
	if link >= 0 && link < len(f.links) {
		tp.pin = link
	}
	return tp
}

// SetClassRate re-declares the named class's token-bucket rate cap in bytes
// per second at runtime — the autopilot's admission effector. 0 removes the
// cap (pure weighted sharing). Enabling a cap on a previously uncapped
// class grants one full burst; tightening clamps the balance to the new
// burst so the new rate binds from now. Returns false for an unknown class.
func (f *Fabric) SetClassRate(name string, bps float64) bool {
	c, ok := f.byName[name]
	if !ok {
		return false
	}
	c.refill(f.env.Now())
	c.cfg.RateBps = bps
	if bps > 0 {
		if c.cfg.BurstBytes <= 0 {
			c.cfg.BurstBytes = 256 << 10
		}
		if burst := float64(c.cfg.BurstBytes); c.tokens > burst {
			c.tokens = burst
		}
		c.lastRefill = f.env.Now()
	}
	// A raised (or removed) cap may unblock token-gated dispatchers parked
	// on a stale wait: wake them to re-pick.
	if f.scheduled && f.queued > 0 && !f.work.Triggered() {
		f.work.Trigger()
	}
	return true
}

// ClassRate returns the named class's current rate cap (0 = uncapped).
func (f *Fabric) ClassRate(name string) float64 {
	if c, ok := f.byName[name]; ok {
		return c.cfg.RateBps
	}
	return 0
}

// Links exposes the member links (for partition/heal chaos and per-link
// accounting; member order matches Config.Links).
func (f *Fabric) Links() []*netlink.Link { return f.links }

// Now is the fabric's virtual clock — placement policies use it to age
// their own recent-placement memory.
func (f *Fabric) Now() time.Duration { return f.env.Now() }

// Classes lists the class names in scheduling order.
func (f *Fabric) Classes() []string {
	out := make([]string, len(f.classes))
	for i, c := range f.classes {
		out[i] = c.cfg.Name
	}
	return out
}

// ClassStats returns a snapshot of the named class's counters.
func (f *Fabric) ClassStats(name string) ClassStats {
	c, ok := f.byName[name]
	if !ok {
		return ClassStats{}
	}
	return ClassStats{Bytes: c.bytes, Transfers: c.transfers, Drops: c.drops, MaxQueued: c.maxDepth}
}

// Queued returns the number of transfers waiting at the ingress.
func (f *Fabric) Queued() int { return f.queued }

// Stop parks the dispatchers after their in-flight transfers. Queued
// requests are abandoned (their callers stay blocked), mirroring a site
// split; tests and harnesses use it to quiesce a fabric.
func (f *Fabric) Stop() {
	if f.stopped {
		return
	}
	f.stopped = true
	f.stopEv.Trigger()
}

func (f *Fabric) String() string {
	return fmt.Sprintf("fabric{links=%d classes=%d queued=%d}", len(f.links), len(f.classes), f.queued)
}

// dispatch is the per-link scheduler loop: pick the next admitted request
// under DRR + token buckets and carry it over this member link. A
// partitioned member parks here until healed, which is exactly the
// failover: the shared ingress queues keep draining through the other
// members' dispatchers. At the default window of 1 the loop is synchronous
// stop-and-wait (pick, Transfer, trigger done); a larger WindowPerLink
// routes to the pipelined loop instead.
func (f *Fabric) dispatch(p *sim.Proc, li int) {
	if f.cfg.WindowPerLink > 1 {
		f.dispatchPipelined(p, li)
		return
	}
	link := f.links[li]
	for {
		if f.stopped {
			return
		}
		if link.Partitioned() {
			if p.WaitAny(link.HealedEvent(), f.stopEv) == 1 {
				return
			}
			continue
		}
		req, wait := f.pick(li, p.Now())
		if req == nil {
			if wait > 0 {
				// Every eligible class is token-blocked: wait until the
				// earliest bucket refills enough — but wake early if new
				// work arrives, which may belong to an uncapped class.
				if f.work.Triggered() {
					f.work = f.env.NewEvent()
				}
				p.WaitTimeout(f.work, wait)
				continue
			}
			// Nothing queued for this member: park until new work arrives.
			if f.work.Triggered() {
				f.work = f.env.NewEvent()
			}
			if p.WaitAny(f.work, f.stopEv) == 1 {
				return
			}
			continue
		}
		req.queueDelay = p.Now() - req.enq
		link.Transfer(p, req.size)
		c := req.path.class
		c.bytes += int64(req.size)
		c.transfers++
		req.done.Trigger()
	}
}

// dispatchPipelined is the windowed per-link scheduler loop: after a
// request finishes serializing, the dispatcher immediately picks the next
// admitted request while up to WindowPerLink earlier frames are still
// propagating. The request's done event fires at delivery (in ack order —
// the link chains deliveries), so consumers observe identical completion
// semantics to the synchronous loop; class byte/transfer counters advance
// at serialization, when the bytes are committed to the pipe. A partition
// parks admission here exactly like the synchronous loop, while frames
// already serialized stay in flight and deliver.
func (f *Fabric) dispatchPipelined(p *sim.Proc, li int) {
	link := f.links[li]
	win := f.cfg.WindowPerLink
	var inflight []*sim.Event // delivery events, oldest first
	for {
		if f.stopped {
			return
		}
		// Deliveries are in order per link, so triggered events form a
		// prefix of the window.
		for len(inflight) > 0 && inflight[0].Triggered() {
			inflight = inflight[1:]
		}
		if link.Partitioned() {
			if p.WaitAny(link.HealedEvent(), f.stopEv) == 1 {
				return
			}
			continue
		}
		if len(inflight) >= win {
			// Pipe full: block until the oldest frame lands.
			f.linkStats[li].stalls++
			if p.WaitAny(inflight[0], f.stopEv) == 1 {
				return
			}
			continue
		}
		req, wait := f.pick(li, p.Now())
		if req == nil {
			if wait > 0 {
				if f.work.Triggered() {
					f.work = f.env.NewEvent()
				}
				p.WaitTimeout(f.work, wait)
				continue
			}
			if len(inflight) > 0 {
				// Nothing admitted but frames still propagating: wake on new
				// work or on a delivery freeing window state, whichever first.
				if f.work.Triggered() {
					f.work = f.env.NewEvent()
				}
				if p.WaitAny(f.work, inflight[0], f.stopEv) == 2 {
					return
				}
				continue
			}
			if f.work.Triggered() {
				f.work = f.env.NewEvent()
			}
			if p.WaitAny(f.work, f.stopEv) == 1 {
				return
			}
			continue
		}
		req.queueDelay = p.Now() - req.enq
		if len(inflight) > 0 {
			f.linkStats[li].pipelined++
		}
		link.SendTo(p, req.size, req.done)
		c := req.path.class
		c.bytes += int64(req.size)
		c.transfers++
		inflight = append(inflight, req.done)
	}
}

// advance moves the DRR service slot to the next class.
func (f *Fabric) advance() {
	f.cursor = (f.cursor + 1) % len(f.classes)
	f.credited = false
}

// eligibleIndex returns the backing-array index of the first queued
// transfer that member li may carry: unpinned, pinned to li, or pinned to
// a partitioned member (whose traffic any healthy member covers). It
// scans past the head so one transfer pinned to a busy member cannot
// head-of-line block the rest of the class — including other tenants —
// on every other member. Returns -1 when nothing qualifies.
func (f *Fabric) eligibleIndex(c *class, li int) int {
	for i := c.head; i < len(c.queue); i++ {
		pin := c.queue[i].pin
		if pin < 0 || pin == li || f.links[pin].Partitioned() {
			return i
		}
	}
	return -1
}

// pick runs one deficit-weighted round-robin selection over the classes
// eligible for member link li. The cursor class is credited one quantum x
// weight on arrival and keeps the service slot until its deficit or queue
// runs out, so a backlogged class is served in weight-proportional byte
// bursts. Within a class, the oldest transfer this member may carry is
// chosen (pins are honored without blocking unpinned traffic behind
// them). pick returns the chosen request, or (nil, wait>0) when every
// queued class is token-blocked for at least wait, or (nil, 0) when
// nothing is queued that this member may carry.
func (f *Fabric) pick(li int, now time.Duration) (*request, time.Duration) {
	if f.queued == 0 {
		return nil, 0
	}
	n := len(f.classes)
	minWait := time.Duration(-1)
	barren := 0 // consecutive visits that could not make progress
	for barren < n {
		c := f.classes[f.cursor]
		if c.depth() == 0 || !c.allows(li) {
			f.advance()
			barren++
			continue
		}
		idx := f.eligibleIndex(c, li)
		if idx < 0 {
			// Every queued transfer in this class is placement-pinned to
			// some other healthy member: leave them for those dispatchers.
			f.advance()
			barren++
			continue
		}
		next := c.queue[idx]
		c.refill(now)
		if ok, wait := c.gate(next.size); !ok {
			if minWait < 0 || wait < minWait {
				minWait = wait
			}
			f.advance()
			barren++
			continue
		}
		if !f.credited {
			c.deficit += f.cfg.QuantumBytes * c.cfg.Weight
			f.credited = true
		}
		if c.deficit < next.size {
			// Not enough credit yet: the deficit carries over and grows on
			// the next visit, so oversized transfers still go through.
			// Accumulating credit is progress — reset the barren count.
			barren = 0
			f.advance()
			continue
		}
		req := c.popAt(idx)
		c.deficit -= req.size
		if c.cfg.RateBps > 0 {
			c.tokens -= float64(req.size)
		}
		if c.depth() == 0 {
			c.deficit = 0 // an emptied class forfeits leftover credit
			f.advance()
		} else if c.deficit <= 0 {
			f.advance() // burst exhausted; next class's turn
		}
		f.queued--
		return req, 0
	}
	if minWait < 0 {
		return nil, 0 // nothing queued that this member may carry: park
	}
	if minWait == 0 {
		minWait = time.Microsecond // defensive: never spin at one instant
	}
	return nil, minWait
}

// TenantPath is one tenant's handle into the fabric: transfers are admitted
// under the bound QoS class, and the path keeps that tenant's counters.
type TenantPath struct {
	fabric *Fabric
	class  *class
	owner  string
	pin    int           // member link this path's transfers ride (-1 = any)
	spread time.Duration // deterministic per-owner retry offset in [0, RetryBackoff)

	bytes         int64
	transfers     int64
	drops         int64
	queueDelay    time.Duration
	maxQueueDelay time.Duration
	totalTime     time.Duration
}

// Transfer moves size bytes through the fabric, blocking the caller for
// admission (queueing, scheduling, rate caps) plus the member-link transfer.
func (tp *TenantPath) Transfer(p *sim.Proc, size int) time.Duration {
	f := tp.fabric
	start := p.Now()
	if !f.scheduled {
		took := f.links[0].Transfer(p, size)
		tp.class.bytes += int64(size)
		tp.class.transfers++
		tp.record(size, took, 0)
		return took
	}
	backoff := time.Duration(0)
	for {
		if mq := tp.class.cfg.MaxQueued; mq > 0 && tp.class.depth() >= mq {
			// Ingress full: drop this attempt, back off, retry. The backoff
			// doubles per consecutive drop up to RetryBackoffCap, and the
			// first retry adds the path's deterministic spread so paths that
			// collided at one drop instant fan out instead of re-colliding
			// at every subsequent retry (lockstep convoys).
			tp.drops++
			tp.class.drops++
			if backoff == 0 {
				backoff = f.cfg.RetryBackoff + tp.spread
			} else if backoff < f.cfg.RetryBackoffCap {
				backoff *= 2
				if backoff > f.cfg.RetryBackoffCap {
					backoff = f.cfg.RetryBackoffCap
				}
			}
			p.Sleep(backoff)
			continue
		}
		req := &request{size: size, enq: p.Now(), done: f.env.NewEvent(), path: tp, pin: tp.pin}
		tp.class.push(req)
		f.queued++
		if !f.work.Triggered() {
			f.work.Trigger()
		}
		p.Wait(req.done)
		took := p.Now() - start
		tp.record(size, took, req.queueDelay)
		return took
	}
}

func (tp *TenantPath) record(size int, took, queueDelay time.Duration) {
	tp.bytes += int64(size)
	tp.transfers++
	tp.totalTime += took
	tp.queueDelay += queueDelay
	if queueDelay > tp.maxQueueDelay {
		tp.maxQueueDelay = queueDelay
	}
}

// Owner returns the label the path was created with.
func (tp *TenantPath) Owner() string { return tp.owner }

// PinnedLink returns the member-link index the path is placement-pinned to
// (-1 when any member may carry it).
func (tp *TenantPath) PinnedLink() int { return tp.pin }

// Class returns the QoS class the path is bound to.
func (tp *TenantPath) Class() string { return tp.class.cfg.Name }

// Bytes returns the payload bytes this path has moved.
func (tp *TenantPath) Bytes() int64 { return tp.bytes }

// Transfers returns the number of completed transfers.
func (tp *TenantPath) Transfers() int64 { return tp.transfers }

// DropRetries returns how many admission attempts were dropped at a full
// ingress queue (each was retried after the backoff).
func (tp *TenantPath) DropRetries() int64 { return tp.drops }

// MeanQueueDelay returns the mean ingress queueing delay per transfer
// (zero on a passthrough fabric, where the link's own FIFO is the queue).
func (tp *TenantPath) MeanQueueDelay() time.Duration {
	if tp.transfers == 0 {
		return 0
	}
	return tp.queueDelay / time.Duration(tp.transfers)
}

// MaxQueueDelay returns the worst ingress queueing delay seen.
func (tp *TenantPath) MaxQueueDelay() time.Duration { return tp.maxQueueDelay }

// MeanTransferTime returns the mean end-to-end time per transfer —
// admission plus link crossing — the drain-latency figure E12 compares
// across QoS policies.
func (tp *TenantPath) MeanTransferTime() time.Duration {
	if tp.transfers == 0 {
		return 0
	}
	return tp.totalTime / time.Duration(tp.transfers)
}

func (tp *TenantPath) String() string {
	return fmt.Sprintf("fabricPath{%s class=%s sent=%dB}", tp.owner, tp.class.cfg.Name, tp.bytes)
}
