package fabric

import (
	"testing"
	"time"

	"repro/internal/netlink"
	"repro/internal/sim"
)

// flood spawns procs back-to-back transferring size bytes on path until the
// stop time, and returns a counter of completed transfers.
func flood(env *sim.Env, path Path, procs, size int, until time.Duration, done *int) {
	for i := 0; i < procs; i++ {
		env.Process("flood", func(p *sim.Proc) {
			for p.Now() < until {
				path.Transfer(p, size)
				*done++
			}
		})
	}
}

func TestPassthroughMatchesRawLink(t *testing.T) {
	// A single-member, classless fabric must be byte-for-byte the raw link:
	// same completion times, including pipelined propagation.
	lcfg := netlink.Config{Propagation: 100 * time.Millisecond, BandwidthBps: 1e6}
	run := func(mk func(env *sim.Env) Path) []time.Duration {
		env := sim.NewEnv(1)
		path := mk(env)
		var done []time.Duration
		for i := 0; i < 2; i++ {
			env.Process("tx", func(p *sim.Proc) {
				path.Transfer(p, 1000)
				done = append(done, p.Now())
			})
		}
		env.Run(0)
		return done
	}
	raw := run(func(env *sim.Env) Path { return netlink.New(env, lcfg) })
	fab := run(func(env *sim.Env) Path {
		f := New(env, Config{Links: []netlink.Config{lcfg}})
		if f.scheduled {
			t.Fatal("single-link classless fabric should be passthrough")
		}
		return f.Path("", "t0")
	})
	for i := range raw {
		if raw[i] != fab[i] {
			t.Fatalf("completion %d: raw %v vs fabric %v", i, raw[i], fab[i])
		}
	}
}

func TestPassthroughCountsOnPath(t *testing.T) {
	env := sim.NewEnv(1)
	f := New(env, Config{Links: []netlink.Config{{BandwidthBps: 1e6}}})
	tp := f.Path("", "t0")
	env.Process("tx", func(p *sim.Proc) {
		tp.Transfer(p, 500)
		tp.Transfer(p, 500)
	})
	env.Run(0)
	if tp.Bytes() != 1000 || tp.Transfers() != 2 {
		t.Fatalf("path counters: bytes=%d transfers=%d", tp.Bytes(), tp.Transfers())
	}
	if st := f.ClassStats("best-effort"); st.Bytes != 1000 || st.Transfers != 2 {
		t.Fatalf("class counters: %+v", st)
	}
}

func TestWeightedClassesShareByWeight(t *testing.T) {
	// One 1MB/s link, two continuously-backlogged classes with weights 3:1.
	// Completed bytes must split roughly by weight.
	env := sim.NewEnv(1)
	f := New(env, Config{
		Links: []netlink.Config{{BandwidthBps: 1e6}},
		Classes: []ClassConfig{
			{Name: "gold", Weight: 3},
			{Name: "bulk", Weight: 1},
		},
	})
	gold := f.Path("gold", "gold-tenant")
	bulk := f.Path("bulk", "bulk-tenant")
	horizon := 2 * time.Second
	var gDone, bDone int
	flood(env, gold, 4, 10_000, horizon, &gDone)
	flood(env, bulk, 4, 10_000, horizon, &bDone)
	env.Run(horizon)
	f.Stop()
	ratio := float64(gold.Bytes()) / float64(bulk.Bytes())
	if ratio < 2.0 || ratio > 4.5 {
		t.Fatalf("gold:bulk byte ratio = %.2f (gold=%d bulk=%d), want ~3",
			ratio, gold.Bytes(), bulk.Bytes())
	}
	// The link itself should be near saturation: ~1MB moved per second.
	total := gold.Bytes() + bulk.Bytes()
	if total < 1_500_000 {
		t.Fatalf("link underdriven: %d bytes in %v", total, horizon)
	}
}

func TestTokenBucketCapsClassRate(t *testing.T) {
	// A fat link but a 100KB/s cap on the class: long-run throughput must
	// track the cap, not the link.
	env := sim.NewEnv(1)
	f := New(env, Config{
		Links: []netlink.Config{{BandwidthBps: 1e9}},
		Classes: []ClassConfig{
			{Name: "capped", Weight: 1, RateBps: 1e5, BurstBytes: 20_000},
		},
	})
	tp := f.Path("capped", "t0")
	horizon := 4 * time.Second
	var done int
	flood(env, tp, 2, 10_000, horizon, &done)
	env.Run(horizon)
	f.Stop()
	bps := float64(tp.Bytes()) / horizon.Seconds()
	if bps > 1.3e5 || bps < 0.5e5 {
		t.Fatalf("capped class moved %.0f B/s, want ~1e5", bps)
	}
}

func TestQueueCapDropsAndRetries(t *testing.T) {
	// A slow link and a 2-deep ingress queue: a burst of senders must see
	// drops, retry, and still all complete.
	env := sim.NewEnv(1)
	f := New(env, Config{
		Links: []netlink.Config{{BandwidthBps: 1e5}},
		Classes: []ClassConfig{
			{Name: "be", Weight: 1, MaxQueued: 2},
		},
		RetryBackoff: 5 * time.Millisecond,
	})
	tp := f.Path("be", "t0")
	const senders = 8
	completed := 0
	for i := 0; i < senders; i++ {
		env.Process("tx", func(p *sim.Proc) {
			tp.Transfer(p, 10_000) // 100ms serialization each
			completed++
		})
	}
	env.Run(0)
	if completed != senders {
		t.Fatalf("completed %d/%d transfers", completed, senders)
	}
	if tp.DropRetries() == 0 {
		t.Fatal("expected ingress drops with 8 senders on a 2-deep queue")
	}
	if st := f.ClassStats("be"); st.Drops != tp.DropRetries() || st.MaxQueued > 2 {
		t.Fatalf("class stats inconsistent: %+v vs path drops %d", st, tp.DropRetries())
	}
}

func TestTokenBlockedDispatcherWakesForUncappedWork(t *testing.T) {
	// Regression: while the only dispatcher waits out a capped class's
	// bucket refill, an uncapped class's transfer must be served promptly,
	// not after the refill expires.
	env := sim.NewEnv(1)
	f := New(env, Config{
		Links: []netlink.Config{{BandwidthBps: 1e6}},
		Classes: []ClassConfig{
			{Name: "gold", Weight: 1},
			{Name: "capped", Weight: 1, RateBps: 1e4, BurstBytes: 10_000},
		},
	})
	capped := f.Path("capped", "capped")
	gold := f.Path("gold", "gold")
	var cappedSecond, goldDone time.Duration
	env.Process("capped", func(p *sim.Proc) {
		capped.Transfer(p, 10_000) // drains the bucket
		capped.Transfer(p, 10_000) // token-blocked ~1s
		cappedSecond = p.Now()
	})
	env.Process("gold", func(p *sim.Proc) {
		p.Sleep(50 * time.Millisecond) // arrive mid-refill-wait
		gold.Transfer(p, 5_000)
		goldDone = p.Now()
	})
	env.Run(0)
	f.Stop()
	if goldDone > 100*time.Millisecond {
		t.Fatalf("uncapped transfer waited out the refill: done at %v", goldDone)
	}
	if cappedSecond < 900*time.Millisecond {
		t.Fatalf("capped transfer beat its bucket: done at %v", cappedSecond)
	}
}

func TestMultiLinkSpreadsLoad(t *testing.T) {
	// Two equal members and several concurrent senders: both links carry
	// traffic.
	env := sim.NewEnv(1)
	f := New(env, Config{
		Links:   []netlink.Config{{BandwidthBps: 1e6}, {BandwidthBps: 1e6}},
		Classes: []ClassConfig{{Name: "be", Weight: 1}},
	})
	tp := f.Path("be", "t0")
	horizon := time.Second
	var done int
	flood(env, tp, 4, 20_000, horizon, &done)
	env.Run(horizon)
	f.Stop()
	l0, l1 := f.Links()[0].SentBytes(), f.Links()[1].SentBytes()
	if l0 == 0 || l1 == 0 {
		t.Fatalf("load not spread: link0=%d link1=%d", l0, l1)
	}
}

func TestMemberPartitionFailsOverAndHealsBack(t *testing.T) {
	// Partition member 0 mid-run: traffic continues over member 1 only;
	// after heal, member 0 carries traffic again.
	env := sim.NewEnv(1)
	f := New(env, Config{
		Links:   []netlink.Config{{BandwidthBps: 1e6}, {BandwidthBps: 1e6}},
		Classes: []ClassConfig{{Name: "be", Weight: 1}},
	})
	tp := f.Path("be", "t0")
	horizon := 3 * time.Second
	var done int
	flood(env, tp, 4, 20_000, horizon, &done)
	var at0Partition, at0Heal, at1Partition, at1Heal int64
	env.Process("chaos", func(p *sim.Proc) {
		p.Sleep(time.Second)
		at0Partition = f.Links()[0].SentBytes()
		at1Partition = f.Links()[1].SentBytes()
		f.Links()[0].Partition()
		p.Sleep(time.Second)
		at0Heal = f.Links()[0].SentBytes()
		at1Heal = f.Links()[1].SentBytes()
		f.Links()[0].Heal()
	})
	env.Run(horizon)
	f.Stop()
	// During the outage only the surviving member moved bytes (member 0 may
	// finish at most one in-flight transfer).
	if grew := at0Heal - at0Partition; grew > 20_000 {
		t.Fatalf("partitioned member kept carrying traffic: +%d bytes", grew)
	}
	if at1Heal <= at1Partition {
		t.Fatal("surviving member carried nothing during the outage")
	}
	if f.Links()[0].SentBytes() <= at0Heal {
		t.Fatal("healed member never resumed")
	}
	if done == 0 {
		t.Fatal("no transfers completed")
	}
}

func TestDedicatedLinkIsolatesClass(t *testing.T) {
	// Class affinity: bulk floods member 0; gold is pinned to member 1 and
	// must see unloaded latency.
	env := sim.NewEnv(1)
	f := New(env, Config{
		Links: []netlink.Config{
			{Propagation: time.Millisecond, BandwidthBps: 1e6},
			{Propagation: time.Millisecond, BandwidthBps: 1e6},
		},
		Classes: []ClassConfig{
			{Name: "bulk", Weight: 1, Links: []int{0}},
			{Name: "gold", Weight: 1, Links: []int{1}},
		},
	})
	bulk := f.Path("bulk", "noisy")
	gold := f.Path("gold", "victim")
	horizon := time.Second
	var bDone int
	flood(env, bulk, 6, 50_000, horizon, &bDone)
	var worst time.Duration
	env.Process("victim", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			took := gold.Transfer(p, 1000) // 1ms serialization + 1ms prop
			if took > worst {
				worst = took
			}
			p.Sleep(20 * time.Millisecond)
		}
	})
	env.Run(horizon)
	f.Stop()
	if worst > 5*time.Millisecond {
		t.Fatalf("victim latency %v on a dedicated link, want ~2ms", worst)
	}
	if l1 := f.Links()[1].SentBytes(); l1 != gold.Bytes() {
		t.Fatalf("dedicated member carried foreign bytes: link=%d gold=%d", l1, gold.Bytes())
	}
}

func TestOversizedTransferPassesQuantum(t *testing.T) {
	// A transfer far larger than quantum x weight must still be served
	// (deficit accumulates across rounds).
	env := sim.NewEnv(1)
	f := New(env, Config{
		Links:        []netlink.Config{{BandwidthBps: 1e9}},
		Classes:      []ClassConfig{{Name: "be", Weight: 1}},
		QuantumBytes: 1024,
	})
	tp := f.Path("be", "t0")
	okDone := false
	env.Process("tx", func(p *sim.Proc) {
		tp.Transfer(p, 10<<20) // 10MB vs 1KB quantum
		okDone = true
	})
	env.Run(0)
	if !okDone {
		t.Fatal("oversized transfer never served")
	}
}

func TestInterconnectDirectionsIndependent(t *testing.T) {
	env := sim.NewEnv(1)
	fwd := []*netlink.Link{netlink.New(env, netlink.Config{BandwidthBps: 1e6})}
	rev := []*netlink.Link{netlink.New(env, netlink.Config{BandwidthBps: 1e6})}
	ic := NewInterconnect(env, Config{}, fwd, rev)
	fp := ic.Forward.Path("", "fwd")
	rp := ic.Reverse.Path("", "rev")
	env.Process("tx", func(p *sim.Proc) {
		fp.Transfer(p, 1000)
		rp.Transfer(p, 2000)
	})
	env.Run(0)
	if fwd[0].SentBytes() != 1000 || rev[0].SentBytes() != 2000 {
		t.Fatalf("direction bytes: fwd=%d rev=%d", fwd[0].SentBytes(), rev[0].SentBytes())
	}
}

func TestDeterministicScheduling(t *testing.T) {
	run := func() (int64, int64) {
		env := sim.NewEnv(42)
		f := New(env, Config{
			Links: []netlink.Config{
				{BandwidthBps: 1e6, Jitter: time.Millisecond, Propagation: time.Millisecond},
				{BandwidthBps: 2e6, Propagation: 2 * time.Millisecond},
			},
			Classes: []ClassConfig{{Name: "a", Weight: 2}, {Name: "b", Weight: 1}},
		})
		a := f.Path("a", "a")
		b := f.Path("b", "b")
		horizon := 500 * time.Millisecond
		var n int
		flood(env, a, 3, 7_000, horizon, &n)
		flood(env, b, 3, 9_000, horizon, &n)
		env.Run(horizon)
		f.Stop()
		return a.Bytes(), b.Bytes()
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatalf("scheduling diverged across identical runs: (%d,%d) vs (%d,%d)", a1, b1, a2, b2)
	}
}

// --- Windowed (pipelined) dispatch ---

// windowedDrainTime runs `senders` back-to-back single-frame lanes over one
// high-BDP member link at the given window and returns when the last of
// `perSender` frames per lane delivered.
func windowedDrainTime(t *testing.T, window, senders, perSender int) time.Duration {
	t.Helper()
	env := sim.NewEnv(1)
	f := New(env, Config{
		// ser = 1000B / 1e6B/s = 1ms, prop = 50ms: BDP of ~50 frames.
		Links:         []netlink.Config{{Propagation: 50 * time.Millisecond, BandwidthBps: 1e6}},
		Classes:       []ClassConfig{{Name: "bulk"}},
		WindowPerLink: window,
	})
	var last time.Duration
	for i := 0; i < senders; i++ {
		tp := f.Path("bulk", "t"+string(rune('0'+i)))
		env.Process("lane", func(p *sim.Proc) {
			for j := 0; j < perSender; j++ {
				tp.Transfer(p, 1000)
			}
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	env.Run(0)
	f.Stop()
	return last
}

func TestWindowedDispatchFillsHighBDPLink(t *testing.T) {
	// 8 lanes, 10 frames each: at window=1 the wire idles 50ms per frame
	// (~80 x 51ms serialized end-to-end); at window=8 eight frames overlap
	// their propagation and throughput approaches one frame per ser.
	w1 := windowedDrainTime(t, 1, 8, 10)
	w8 := windowedDrainTime(t, 8, 8, 10)
	if w8 >= w1/4 {
		t.Fatalf("window=8 drain %v, want < 1/4 of window=1 drain %v", w8, w1)
	}
}

func TestWindowedDispatchCountsPipelining(t *testing.T) {
	env := sim.NewEnv(1)
	f := New(env, Config{
		Links:         []netlink.Config{{Propagation: 50 * time.Millisecond, BandwidthBps: 1e6}},
		Classes:       []ClassConfig{{Name: "bulk"}},
		WindowPerLink: 4,
	})
	var wg int
	flood(env, f.Path("bulk", "t0"), 8, 1000, 300*time.Millisecond, &wg)
	env.Run(time.Second)
	f.Stop()
	st := f.LinkWindowStats(0)
	if st.Pipelined == 0 {
		t.Fatalf("no pipelined sends recorded: %+v", st)
	}
	if st.WindowStalls == 0 {
		t.Fatalf("8 backlogged lanes never filled a window of 4: %+v", st)
	}
	if f.links[0].MaxInFlight() != 4 {
		t.Fatalf("peak in-flight %d, want the window 4", f.links[0].MaxInFlight())
	}
	if f.links[0].OrderViolations() != 0 {
		t.Fatalf("delivery order violations: %d", f.links[0].OrderViolations())
	}
}

func TestWindowedPartitionCutsAdmissionNotFlight(t *testing.T) {
	// Frames serialized before the cut deliver during the partition; frames
	// queued behind it wait for heal. Single member, so there is no other
	// dispatcher to fail over to.
	env := sim.NewEnv(1)
	f := New(env, Config{
		Links:         []netlink.Config{{Propagation: 100 * time.Millisecond, BandwidthBps: 1e6}},
		Classes:       []ClassConfig{{Name: "bulk"}},
		WindowPerLink: 8,
	})
	tp := f.Path("bulk", "t0")
	var done []time.Duration
	for i := 0; i < 4; i++ {
		env.Process("tx", func(p *sim.Proc) {
			tp.Transfer(p, 1000)
			done = append(done, p.Now())
		})
	}
	env.Process("late", func(p *sim.Proc) {
		p.Sleep(20 * time.Millisecond) // enqueued while partitioned
		tp.Transfer(p, 1000)
		done = append(done, p.Now())
	})
	env.Process("cut", func(p *sim.Proc) {
		p.Sleep(10 * time.Millisecond) // after the 4 frames serialized (4ms)
		f.links[0].Partition()
		p.Sleep(490 * time.Millisecond)
		f.links[0].Heal()
	})
	env.Run(0)
	f.Stop()
	if len(done) != 5 {
		t.Fatalf("completed %d transfers, want 5", len(done))
	}
	for i, at := range done[:4] {
		if at > 200*time.Millisecond {
			t.Fatalf("pre-cut frame %d delivered at %v: waited for heal", i, at)
		}
	}
	if done[4] < 500*time.Millisecond {
		t.Fatalf("queued-behind-cut frame delivered at %v, before heal at 500ms", done[4])
	}
}

func TestWindowedDeterministicScheduling(t *testing.T) {
	run := func() []time.Duration {
		env := sim.NewEnv(42)
		f := New(env, Config{
			Links: []netlink.Config{
				{Propagation: 20 * time.Millisecond, BandwidthBps: 1e6, Jitter: 3 * time.Millisecond},
				{Propagation: 50 * time.Millisecond, BandwidthBps: 2e6, Jitter: time.Millisecond},
			},
			Classes:       []ClassConfig{{Name: "gold", Weight: 3}, {Name: "bulk"}},
			WindowPerLink: 4,
		})
		var done []time.Duration
		for i, cl := range []string{"gold", "bulk", "gold", "bulk"} {
			tp := f.Path(cl, "t"+string(rune('0'+i)))
			env.Process("tx", func(p *sim.Proc) {
				for j := 0; j < 10; j++ {
					tp.Transfer(p, 1500)
					done = append(done, p.Now())
				}
			})
		}
		env.Run(0)
		f.Stop()
		return done
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 40 {
		t.Fatalf("runs completed %d vs %d transfers", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("completion %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// --- Drop-retry backoff ---

func TestDropRetrySpreadsAndBacksOff(t *testing.T) {
	// A slow link and a 1-deep ingress force sustained drops across many
	// same-instant senders. With the fixed-interval retry every path woke at
	// the same instants forever (a lockstep convoy); capped exponential
	// backoff with per-owner spread must both complete the work and cost
	// far fewer drop-retries.
	const senders = 8
	env := sim.NewEnv(1)
	f := New(env, Config{
		Links:   []netlink.Config{{BandwidthBps: 1e5}}, // 10ms per 1000B frame
		Classes: []ClassConfig{{Name: "bulk", MaxQueued: 1}},
	})
	paths := make([]*TenantPath, senders)
	completed := 0
	for i := 0; i < senders; i++ {
		tp := f.Path("bulk", "tenant-"+string(rune('a'+i)))
		paths[i] = tp
		env.Process("tx", func(p *sim.Proc) {
			for j := 0; j < 5; j++ {
				tp.Transfer(p, 1000)
			}
			completed++
		})
	}
	env.Run(0)
	f.Stop()
	if completed != senders {
		t.Fatalf("only %d/%d senders finished", completed, senders)
	}
	spreads := map[time.Duration]bool{}
	var totalDrops int64
	for _, tp := range paths {
		spreads[tp.spread] = true
		totalDrops += tp.DropRetries()
	}
	if len(spreads) < senders-1 {
		t.Fatalf("owner spreads collide: %d distinct across %d paths", len(spreads), senders)
	}
	// 40 transfers x 10ms = 400ms of service behind a 1-deep queue. The old
	// constant 1ms retry cost ~50+ drops per path; exponential backoff must
	// land well under that.
	if totalDrops > 25*senders {
		t.Fatalf("drop-retries %d: backoff is not suppressing the convoy", totalDrops)
	}
}

func TestDropRetryBackoffIsCapped(t *testing.T) {
	cfg := Config{RetryBackoff: time.Millisecond}.withDefaults()
	if cfg.RetryBackoffCap != 32*time.Millisecond {
		t.Fatalf("default cap %v, want 32ms", cfg.RetryBackoffCap)
	}
	if cfg.WindowPerLink != 1 {
		t.Fatalf("default window %d, want 1", cfg.WindowPerLink)
	}
	if pathSpread("a", time.Millisecond) == pathSpread("b", time.Millisecond) {
		t.Fatalf("distinct owners hash to the same spread")
	}
	if pathSpread("a", time.Millisecond) != pathSpread("a", time.Millisecond) {
		t.Fatalf("spread is not deterministic")
	}
}
