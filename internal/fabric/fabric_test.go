package fabric

import (
	"testing"
	"time"

	"repro/internal/netlink"
	"repro/internal/sim"
)

// flood spawns procs back-to-back transferring size bytes on path until the
// stop time, and returns a counter of completed transfers.
func flood(env *sim.Env, path Path, procs, size int, until time.Duration, done *int) {
	for i := 0; i < procs; i++ {
		env.Process("flood", func(p *sim.Proc) {
			for p.Now() < until {
				path.Transfer(p, size)
				*done++
			}
		})
	}
}

func TestPassthroughMatchesRawLink(t *testing.T) {
	// A single-member, classless fabric must be byte-for-byte the raw link:
	// same completion times, including pipelined propagation.
	lcfg := netlink.Config{Propagation: 100 * time.Millisecond, BandwidthBps: 1e6}
	run := func(mk func(env *sim.Env) Path) []time.Duration {
		env := sim.NewEnv(1)
		path := mk(env)
		var done []time.Duration
		for i := 0; i < 2; i++ {
			env.Process("tx", func(p *sim.Proc) {
				path.Transfer(p, 1000)
				done = append(done, p.Now())
			})
		}
		env.Run(0)
		return done
	}
	raw := run(func(env *sim.Env) Path { return netlink.New(env, lcfg) })
	fab := run(func(env *sim.Env) Path {
		f := New(env, Config{Links: []netlink.Config{lcfg}})
		if f.scheduled {
			t.Fatal("single-link classless fabric should be passthrough")
		}
		return f.Path("", "t0")
	})
	for i := range raw {
		if raw[i] != fab[i] {
			t.Fatalf("completion %d: raw %v vs fabric %v", i, raw[i], fab[i])
		}
	}
}

func TestPassthroughCountsOnPath(t *testing.T) {
	env := sim.NewEnv(1)
	f := New(env, Config{Links: []netlink.Config{{BandwidthBps: 1e6}}})
	tp := f.Path("", "t0")
	env.Process("tx", func(p *sim.Proc) {
		tp.Transfer(p, 500)
		tp.Transfer(p, 500)
	})
	env.Run(0)
	if tp.Bytes() != 1000 || tp.Transfers() != 2 {
		t.Fatalf("path counters: bytes=%d transfers=%d", tp.Bytes(), tp.Transfers())
	}
	if st := f.ClassStats("best-effort"); st.Bytes != 1000 || st.Transfers != 2 {
		t.Fatalf("class counters: %+v", st)
	}
}

func TestWeightedClassesShareByWeight(t *testing.T) {
	// One 1MB/s link, two continuously-backlogged classes with weights 3:1.
	// Completed bytes must split roughly by weight.
	env := sim.NewEnv(1)
	f := New(env, Config{
		Links: []netlink.Config{{BandwidthBps: 1e6}},
		Classes: []ClassConfig{
			{Name: "gold", Weight: 3},
			{Name: "bulk", Weight: 1},
		},
	})
	gold := f.Path("gold", "gold-tenant")
	bulk := f.Path("bulk", "bulk-tenant")
	horizon := 2 * time.Second
	var gDone, bDone int
	flood(env, gold, 4, 10_000, horizon, &gDone)
	flood(env, bulk, 4, 10_000, horizon, &bDone)
	env.Run(horizon)
	f.Stop()
	ratio := float64(gold.Bytes()) / float64(bulk.Bytes())
	if ratio < 2.0 || ratio > 4.5 {
		t.Fatalf("gold:bulk byte ratio = %.2f (gold=%d bulk=%d), want ~3",
			ratio, gold.Bytes(), bulk.Bytes())
	}
	// The link itself should be near saturation: ~1MB moved per second.
	total := gold.Bytes() + bulk.Bytes()
	if total < 1_500_000 {
		t.Fatalf("link underdriven: %d bytes in %v", total, horizon)
	}
}

func TestTokenBucketCapsClassRate(t *testing.T) {
	// A fat link but a 100KB/s cap on the class: long-run throughput must
	// track the cap, not the link.
	env := sim.NewEnv(1)
	f := New(env, Config{
		Links: []netlink.Config{{BandwidthBps: 1e9}},
		Classes: []ClassConfig{
			{Name: "capped", Weight: 1, RateBps: 1e5, BurstBytes: 20_000},
		},
	})
	tp := f.Path("capped", "t0")
	horizon := 4 * time.Second
	var done int
	flood(env, tp, 2, 10_000, horizon, &done)
	env.Run(horizon)
	f.Stop()
	bps := float64(tp.Bytes()) / horizon.Seconds()
	if bps > 1.3e5 || bps < 0.5e5 {
		t.Fatalf("capped class moved %.0f B/s, want ~1e5", bps)
	}
}

func TestQueueCapDropsAndRetries(t *testing.T) {
	// A slow link and a 2-deep ingress queue: a burst of senders must see
	// drops, retry, and still all complete.
	env := sim.NewEnv(1)
	f := New(env, Config{
		Links: []netlink.Config{{BandwidthBps: 1e5}},
		Classes: []ClassConfig{
			{Name: "be", Weight: 1, MaxQueued: 2},
		},
		RetryBackoff: 5 * time.Millisecond,
	})
	tp := f.Path("be", "t0")
	const senders = 8
	completed := 0
	for i := 0; i < senders; i++ {
		env.Process("tx", func(p *sim.Proc) {
			tp.Transfer(p, 10_000) // 100ms serialization each
			completed++
		})
	}
	env.Run(0)
	if completed != senders {
		t.Fatalf("completed %d/%d transfers", completed, senders)
	}
	if tp.DropRetries() == 0 {
		t.Fatal("expected ingress drops with 8 senders on a 2-deep queue")
	}
	if st := f.ClassStats("be"); st.Drops != tp.DropRetries() || st.MaxQueued > 2 {
		t.Fatalf("class stats inconsistent: %+v vs path drops %d", st, tp.DropRetries())
	}
}

func TestTokenBlockedDispatcherWakesForUncappedWork(t *testing.T) {
	// Regression: while the only dispatcher waits out a capped class's
	// bucket refill, an uncapped class's transfer must be served promptly,
	// not after the refill expires.
	env := sim.NewEnv(1)
	f := New(env, Config{
		Links: []netlink.Config{{BandwidthBps: 1e6}},
		Classes: []ClassConfig{
			{Name: "gold", Weight: 1},
			{Name: "capped", Weight: 1, RateBps: 1e4, BurstBytes: 10_000},
		},
	})
	capped := f.Path("capped", "capped")
	gold := f.Path("gold", "gold")
	var cappedSecond, goldDone time.Duration
	env.Process("capped", func(p *sim.Proc) {
		capped.Transfer(p, 10_000) // drains the bucket
		capped.Transfer(p, 10_000) // token-blocked ~1s
		cappedSecond = p.Now()
	})
	env.Process("gold", func(p *sim.Proc) {
		p.Sleep(50 * time.Millisecond) // arrive mid-refill-wait
		gold.Transfer(p, 5_000)
		goldDone = p.Now()
	})
	env.Run(0)
	f.Stop()
	if goldDone > 100*time.Millisecond {
		t.Fatalf("uncapped transfer waited out the refill: done at %v", goldDone)
	}
	if cappedSecond < 900*time.Millisecond {
		t.Fatalf("capped transfer beat its bucket: done at %v", cappedSecond)
	}
}

func TestMultiLinkSpreadsLoad(t *testing.T) {
	// Two equal members and several concurrent senders: both links carry
	// traffic.
	env := sim.NewEnv(1)
	f := New(env, Config{
		Links:   []netlink.Config{{BandwidthBps: 1e6}, {BandwidthBps: 1e6}},
		Classes: []ClassConfig{{Name: "be", Weight: 1}},
	})
	tp := f.Path("be", "t0")
	horizon := time.Second
	var done int
	flood(env, tp, 4, 20_000, horizon, &done)
	env.Run(horizon)
	f.Stop()
	l0, l1 := f.Links()[0].SentBytes(), f.Links()[1].SentBytes()
	if l0 == 0 || l1 == 0 {
		t.Fatalf("load not spread: link0=%d link1=%d", l0, l1)
	}
}

func TestMemberPartitionFailsOverAndHealsBack(t *testing.T) {
	// Partition member 0 mid-run: traffic continues over member 1 only;
	// after heal, member 0 carries traffic again.
	env := sim.NewEnv(1)
	f := New(env, Config{
		Links:   []netlink.Config{{BandwidthBps: 1e6}, {BandwidthBps: 1e6}},
		Classes: []ClassConfig{{Name: "be", Weight: 1}},
	})
	tp := f.Path("be", "t0")
	horizon := 3 * time.Second
	var done int
	flood(env, tp, 4, 20_000, horizon, &done)
	var at0Partition, at0Heal, at1Partition, at1Heal int64
	env.Process("chaos", func(p *sim.Proc) {
		p.Sleep(time.Second)
		at0Partition = f.Links()[0].SentBytes()
		at1Partition = f.Links()[1].SentBytes()
		f.Links()[0].Partition()
		p.Sleep(time.Second)
		at0Heal = f.Links()[0].SentBytes()
		at1Heal = f.Links()[1].SentBytes()
		f.Links()[0].Heal()
	})
	env.Run(horizon)
	f.Stop()
	// During the outage only the surviving member moved bytes (member 0 may
	// finish at most one in-flight transfer).
	if grew := at0Heal - at0Partition; grew > 20_000 {
		t.Fatalf("partitioned member kept carrying traffic: +%d bytes", grew)
	}
	if at1Heal <= at1Partition {
		t.Fatal("surviving member carried nothing during the outage")
	}
	if f.Links()[0].SentBytes() <= at0Heal {
		t.Fatal("healed member never resumed")
	}
	if done == 0 {
		t.Fatal("no transfers completed")
	}
}

func TestDedicatedLinkIsolatesClass(t *testing.T) {
	// Class affinity: bulk floods member 0; gold is pinned to member 1 and
	// must see unloaded latency.
	env := sim.NewEnv(1)
	f := New(env, Config{
		Links: []netlink.Config{
			{Propagation: time.Millisecond, BandwidthBps: 1e6},
			{Propagation: time.Millisecond, BandwidthBps: 1e6},
		},
		Classes: []ClassConfig{
			{Name: "bulk", Weight: 1, Links: []int{0}},
			{Name: "gold", Weight: 1, Links: []int{1}},
		},
	})
	bulk := f.Path("bulk", "noisy")
	gold := f.Path("gold", "victim")
	horizon := time.Second
	var bDone int
	flood(env, bulk, 6, 50_000, horizon, &bDone)
	var worst time.Duration
	env.Process("victim", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			took := gold.Transfer(p, 1000) // 1ms serialization + 1ms prop
			if took > worst {
				worst = took
			}
			p.Sleep(20 * time.Millisecond)
		}
	})
	env.Run(horizon)
	f.Stop()
	if worst > 5*time.Millisecond {
		t.Fatalf("victim latency %v on a dedicated link, want ~2ms", worst)
	}
	if l1 := f.Links()[1].SentBytes(); l1 != gold.Bytes() {
		t.Fatalf("dedicated member carried foreign bytes: link=%d gold=%d", l1, gold.Bytes())
	}
}

func TestOversizedTransferPassesQuantum(t *testing.T) {
	// A transfer far larger than quantum x weight must still be served
	// (deficit accumulates across rounds).
	env := sim.NewEnv(1)
	f := New(env, Config{
		Links:        []netlink.Config{{BandwidthBps: 1e9}},
		Classes:      []ClassConfig{{Name: "be", Weight: 1}},
		QuantumBytes: 1024,
	})
	tp := f.Path("be", "t0")
	okDone := false
	env.Process("tx", func(p *sim.Proc) {
		tp.Transfer(p, 10<<20) // 10MB vs 1KB quantum
		okDone = true
	})
	env.Run(0)
	if !okDone {
		t.Fatal("oversized transfer never served")
	}
}

func TestInterconnectDirectionsIndependent(t *testing.T) {
	env := sim.NewEnv(1)
	fwd := []*netlink.Link{netlink.New(env, netlink.Config{BandwidthBps: 1e6})}
	rev := []*netlink.Link{netlink.New(env, netlink.Config{BandwidthBps: 1e6})}
	ic := NewInterconnect(env, Config{}, fwd, rev)
	fp := ic.Forward.Path("", "fwd")
	rp := ic.Reverse.Path("", "rev")
	env.Process("tx", func(p *sim.Proc) {
		fp.Transfer(p, 1000)
		rp.Transfer(p, 2000)
	})
	env.Run(0)
	if fwd[0].SentBytes() != 1000 || rev[0].SentBytes() != 2000 {
		t.Fatalf("direction bytes: fwd=%d rev=%d", fwd[0].SentBytes(), rev[0].SentBytes())
	}
}

func TestDeterministicScheduling(t *testing.T) {
	run := func() (int64, int64) {
		env := sim.NewEnv(42)
		f := New(env, Config{
			Links: []netlink.Config{
				{BandwidthBps: 1e6, Jitter: time.Millisecond, Propagation: time.Millisecond},
				{BandwidthBps: 2e6, Propagation: 2 * time.Millisecond},
			},
			Classes: []ClassConfig{{Name: "a", Weight: 2}, {Name: "b", Weight: 1}},
		})
		a := f.Path("a", "a")
		b := f.Path("b", "b")
		horizon := 500 * time.Millisecond
		var n int
		flood(env, a, 3, 7_000, horizon, &n)
		flood(env, b, 3, 9_000, horizon, &n)
		env.Run(horizon)
		f.Stop()
		return a.Bytes(), b.Bytes()
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatalf("scheduling diverged across identical runs: (%d,%d) vs (%d,%d)", a1, b1, a2, b2)
	}
}
