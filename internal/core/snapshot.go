package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/csiplugin"
	"repro/internal/db"
	"repro/internal/platform"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/storage"
)

// SnapshotBackup performs demo step 2 (Fig. 5): create a group-atomic
// snapshot of the namespace's volumes at the backup site.
//
// When the VolumeGroupSnapshot feature gate is on, the operation goes
// through the backup platform's API (a VolumeGroupSnapshot custom
// resource). When it is off — the paper's situation — the storage array is
// operated directly, reproducing the §II caveat that "users need to operate
// the external storage system directly".
func (sys *System) SnapshotBackup(p *sim.Proc, namespace, snapName string) (*storage.SnapshotGroup, error) {
	vols := sys.backupVolumeIDs(namespace)
	if len(vols) == 0 {
		return nil, fmt.Errorf("core: no backup volumes for namespace %s (backup enabled?)", namespace)
	}
	if !sys.Cfg.FeatureGates.VolumeGroupSnapshot {
		// Direct storage operation.
		return sys.Backup.Array.CreateSnapshotGroup(snapName, vols)
	}
	// Through the container platform API.
	pvcNames := make([]string, 0, len(vols))
	for _, obj := range sys.Backup.API.List(p, platform.KindPVC, namespace) {
		pvcNames = append(pvcNames, obj.GetMeta().Name)
	}
	if err := sys.Backup.API.Create(p, &platform.VolumeGroupSnapshot{
		Meta: platform.Meta{Kind: platform.KindVolumeGroupSnapshot, Namespace: namespace, Name: snapName},
		Spec: platform.VolumeGroupSnapshotSpec{PVCNames: pvcNames},
	}); err != nil {
		return nil, err
	}
	deadline := p.Now() + 10*time.Second
	key := platform.ObjectKey{Kind: platform.KindVolumeGroupSnapshot, Namespace: namespace, Name: snapName}
	wait := pollInterval
	for {
		obj, err := sys.Backup.API.Get(p, key)
		if err != nil {
			return nil, err
		}
		st := obj.(*platform.VolumeGroupSnapshot).Status
		if st.Ready {
			return sys.Backup.Array.SnapshotGroupByName(st.GroupName)
		}
		if p.Now() >= deadline {
			return nil, fmt.Errorf("%w: group snapshot %s", ErrTimeout, snapName)
		}
		pollBackoff(p, &wait)
	}
}

// backupVolumeIDs lists the namespace's replicated volume IDs in
// journal-member order (sales, stock, ... as discovered by the operator).
func (sys *System) backupVolumeIDs(namespace string) []storage.VolumeID {
	var out []storage.VolumeID
	for _, g := range sys.Groups(namespace) {
		out = append(out, g.Members()...)
	}
	return out
}

// AnalyticsDBs performs demo step 3 (Fig. 6): open read-only databases on
// the snapshot volumes for the data-analytics application. The returned
// views run WAL replay in memory; the snapshots are untouched.
func (sys *System) AnalyticsDBs(p *sim.Proc, namespace string, group *storage.SnapshotGroup) (sales, stock *db.View, err error) {
	salesSnap := group.Snapshot(csiplugin.VolumeIDForClaim(namespace, "sales"))
	stockSnap := group.Snapshot(csiplugin.VolumeIDForClaim(namespace, "stock"))
	if salesSnap == nil || stockSnap == nil {
		return nil, nil, fmt.Errorf("core: snapshot group %s missing sales/stock members", group.Name())
	}
	if sales, err = db.OpenView(p, namespace+"/sales@snap", salesSnap, sys.Cfg.DB); err != nil {
		return nil, nil, err
	}
	if stock, err = db.OpenView(p, namespace+"/stock@snap", stockSnap, sys.Cfg.DB); err != nil {
		return nil, nil, err
	}
	return sales, stock, nil
}

// FailoverResult is what recovery at the backup site yields.
type FailoverResult struct {
	// Sales and Stock are the recovered databases at the backup site.
	Sales, Stock *db.DB
	// RecoveryTime is the simulated downtime: journal-image recovery (WAL
	// replay) for both databases.
	RecoveryTime time.Duration
}

// ErrShardedFailback reports a Failback attempt that found a failed-over
// sharded group. Sharded failback is an open design problem (the delta
// resync needs a per-shard REVERSE group layout — see DESIGN.md "Dynamic
// resharding"); until it exists, Failback refuses before touching anything,
// so every group — failed-over or still draining — is left exactly as it
// was.
var ErrShardedFailback = errors.New("core: failback of a sharded group is not supported")

// FailbackResult reports a completed failback resynchronization.
type FailbackResult struct {
	// Reverse holds the running backup→main replication groups.
	Reverse []*replication.Group
	// DeltaBlocks and FullBlocks aggregate the resync saving across groups.
	DeltaBlocks, FullBlocks int
	// ResyncTime is the simulated time the delta copy took.
	ResyncTime time.Duration
}

// Failback resynchronizes the main site from the failed-over backup and
// starts reverse replication, using each group's delta bitmap. Call after
// Failover once the main site is reachable again.
func (sys *System) Failback(p *sim.Proc) (*FailbackResult, error) {
	var res FailbackResult
	start := p.Now()
	// Refuse before touching anything: sharded failback is an open
	// follow-up (see ROADMAP), and discovering that mid-loop would leave
	// earlier groups resynced with reverse replication already running.
	var failedOver []*replication.Group
	for _, g := range sys.Replication.AllGroups() {
		if !g.FailedOver() {
			continue
		}
		ag, ok := g.(*replication.Group)
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrShardedFailback, g.Name())
		}
		failedOver = append(failedOver, ag)
	}
	for _, ag := range failedOver {
		reverse, stats, err := replication.Failback(p, ag, sys.Main.Array,
			sys.ReversePathFor(sys.Replication.NamespaceOf(ag)), sys.Cfg.Replication)
		if err != nil {
			return nil, err
		}
		res.Reverse = append(res.Reverse, reverse)
		sys.reverse = append(sys.reverse, reverse)
		res.DeltaBlocks += stats.DeltaBlocks
		res.FullBlocks += stats.TotalBlocks
	}
	if len(res.Reverse) == 0 {
		return nil, fmt.Errorf("core: no failed-over groups to fail back")
	}
	res.ResyncTime = p.Now() - start
	return &res, nil
}

// Failover performs backup-site recovery: stop replication, make the
// backup volumes writable, and run database crash recovery on them. The
// paper's claim is that this succeeds because consistency groups kept the
// backup data consistent; E6 shows it failing (collapsed data) without
// them.
func (sys *System) Failover(p *sim.Proc, namespace string) (*FailoverResult, error) {
	groups := sys.Groups(namespace)
	if len(groups) == 0 {
		return nil, fmt.Errorf("core: nothing to fail over for namespace %s", namespace)
	}
	for _, g := range groups {
		if _, err := g.Failover(); err != nil {
			return nil, err
		}
	}
	sys.Telemetry.Instant("failover", "site-cut", namespace)
	start := p.Now()
	salesVol, err := sys.Backup.Array.Volume(csiplugin.VolumeIDForClaim(namespace, "sales"))
	if err != nil {
		return nil, err
	}
	stockVol, err := sys.Backup.Array.Volume(csiplugin.VolumeIDForClaim(namespace, "stock"))
	if err != nil {
		return nil, err
	}
	sales, err := db.Open(p, namespace+"/sales@backup", salesVol, sys.Cfg.DB)
	if err != nil {
		return nil, err
	}
	stock, err := db.Open(p, namespace+"/stock@backup", stockVol, sys.Cfg.DB)
	if err != nil {
		return nil, err
	}
	return &FailoverResult{Sales: sales, Stock: stock, RecoveryTime: p.Now() - start}, nil
}
