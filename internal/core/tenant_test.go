package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/platform"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/storage"
)

// runSystem builds a system and drives fn in a simulation process.
func runSystem(t *testing.T, cfg Config, fn func(p *sim.Proc, sys *System)) *System {
	t.Helper()
	sys := NewSystem(cfg)
	failed := false
	sys.Env.Process("test", func(p *sim.Proc) {
		defer func() {
			if r := recover(); r != nil {
				failed = true
				t.Errorf("panic: %v", r)
			}
		}()
		fn(p, sys)
	})
	sys.Env.Run(2 * time.Hour)
	if failed {
		t.FailNow()
	}
	return sys
}

// spec returns a standard business-process tenant spec.
func tenantSpec(ns string) platform.TenantSpec {
	return platform.TenantSpec{
		Namespace: ns,
		PVCNames:  []string{"sales", "stock"},
		Backup:    true,
	}
}

func TestProvisionTenantDeclaresEverything(t *testing.T) {
	runSystem(t, Config{}, func(p *sim.Proc, sys *System) {
		bp, err := sys.ProvisionTenant(p, tenantSpec("shop"))
		if err != nil {
			t.Errorf("provision: %v", err)
			return
		}
		if bp.Sales == nil || bp.Stock == nil || bp.Shop == nil {
			t.Error("business process incomplete")
			return
		}
		if groups := sys.Groups("shop"); len(groups) != 1 || len(groups[0].Members()) != 2 {
			t.Errorf("replication groups = %v", groups)
		}
		if got := len(sys.Backup.API.List(p, platform.KindPVC, "shop")); got != 2 {
			t.Errorf("backup PVCs = %d", got)
		}
		// The spec'd world serves load.
		if _, err := bp.Shop.PlaceOrder(p); err != nil {
			t.Errorf("order: %v", err)
		}
	})
}

// TestDecommissionReclaimsEverything is the array-level free-list
// invariant: provisioning then decommissioning a tenant returns both
// arrays' usage to exactly the pre-provision snapshot — no leaked volumes,
// journals, snapshots, or blocks — while a second tenant keeps serving.
func TestDecommissionReclaimsEverything(t *testing.T) {
	runSystem(t, Config{}, func(p *sim.Proc, sys *System) {
		survivor, err := sys.ProvisionTenant(p, tenantSpec("keeper"))
		if err != nil {
			t.Errorf("provision keeper: %v", err)
			return
		}
		// Quiesce the survivor's drain so the usage snapshot is stable.
		sys.CatchUp(p, "keeper")
		mainBefore, backupBefore := sys.Main.Array.Usage(), sys.Backup.Array.Usage()

		bp, err := sys.ProvisionTenant(p, tenantSpec("doomed"))
		if err != nil {
			t.Errorf("provision doomed: %v", err)
			return
		}
		if err := bp.Shop.Run(p, 10); err != nil {
			t.Errorf("orders: %v", err)
			return
		}
		// Leave a snapshot group on the backup twins: decommission must
		// reclaim COW state too.
		sys.CatchUp(p, "doomed")
		if _, err := sys.SnapshotBackup(p, "doomed", "doomed-final"); err != nil {
			t.Errorf("snapshot: %v", err)
			return
		}
		if u := sys.Main.Array.Usage(); u == mainBefore {
			t.Error("provisioning changed nothing on the main array?")
			return
		}

		if err := sys.DecommissionTenant(p, "doomed"); err != nil {
			t.Errorf("decommission: %v", err)
			return
		}
		sys.CatchUp(p, "keeper") // re-quiesce before comparing usage
		if res := sys.TenantResidue("doomed"); len(res) != 0 {
			t.Errorf("residue: %v", res)
		}
		if got := sys.Main.Array.Usage(); got != mainBefore {
			t.Errorf("main array usage %+v, want pre-provision %+v", got, mainBefore)
		}
		if got := sys.Backup.Array.Usage(); got != backupBefore {
			t.Errorf("backup array usage %+v, want pre-provision %+v", got, backupBefore)
		}
		if sys.Decommissioned() != 1 {
			t.Errorf("decommissioned = %d", sys.Decommissioned())
		}
		// The survivor is untouched and still replicating.
		if _, err := survivor.Shop.PlaceOrder(p); err != nil {
			t.Errorf("survivor order: %v", err)
		}
		if !sys.CatchUp(p, "keeper") {
			t.Error("survivor drain broken")
		}
	})
}

// TestDecommissionShardedTenantReclaimsShards runs the invariant against a
// sharded journal: every shard journal and lane path must be reclaimed.
func TestDecommissionShardedTenantReclaimsShards(t *testing.T) {
	member := netlinkConfig{Propagation: time.Millisecond, BandwidthBps: 1e8}
	runSystem(t, Config{
		Fabric: fabric.Config{Links: []netlinkConfig{member, member}},
	}, func(p *sim.Proc, sys *System) {
		before := sys.Main.Array.Usage()
		spec := tenantSpec("sharded")
		spec.JournalShards = 2
		bp, err := sys.ProvisionTenant(p, spec)
		if err != nil {
			t.Errorf("provision: %v", err)
			return
		}
		groups := sys.Groups("sharded")
		if len(groups) != 1 {
			t.Errorf("groups = %d", len(groups))
			return
		}
		if _, ok := groups[0].(*replication.ShardedGroup); !ok {
			t.Errorf("engine = %T, want sharded (spec shards ignored)", groups[0])
			return
		}
		if err := bp.Shop.Run(p, 6); err != nil {
			t.Errorf("orders: %v", err)
			return
		}
		if err := sys.DecommissionTenant(p, "sharded"); err != nil {
			t.Errorf("decommission: %v", err)
			return
		}
		if got := sys.Main.Array.Usage(); got != before {
			t.Errorf("main usage %+v, want %+v", got, before)
		}
		if ps := sys.TenantLanePaths("sharded"); ps != nil {
			t.Errorf("lane paths survived decommission: %v", ps)
		}
	})
}

// TestPerLaneQoSClasses pins the per-shard QoS satellite: LaneClasses bind
// each drain lane's path to its own fabric class, lanes beyond the list
// fall back to the tenant class, and tenants without LaneClasses keep the
// old one-class-per-tenant behavior.
func TestPerLaneQoSClasses(t *testing.T) {
	member := netlinkConfig{Propagation: time.Millisecond, BandwidthBps: 1e8}
	runSystem(t, Config{
		Fabric: fabric.Config{
			Links: []netlinkConfig{member, member},
			Classes: []fabric.ClassConfig{
				{Name: "gold", Weight: 4},
				{Name: "bulk", Weight: 1},
			},
		},
	}, func(p *sim.Proc, sys *System) {
		spec := tenantSpec("laned")
		spec.QoSClass = "bulk"
		spec.JournalShards = 2
		spec.LaneClasses = []string{"gold"} // lane 0 gold, lane 1 falls back to bulk
		bp, err := sys.ProvisionTenant(p, spec)
		if err != nil {
			t.Errorf("provision: %v", err)
			return
		}
		if err := bp.Shop.Run(p, 4); err != nil {
			t.Errorf("orders: %v", err)
			return
		}
		sys.CatchUp(p, "laned")
		lanes := sys.TenantLanePaths("laned")
		if len(lanes) != 2 || lanes[0] == nil || lanes[1] == nil {
			t.Errorf("lane paths = %v", lanes)
			return
		}
		if got := lanes[0].Class(); got != "gold" {
			t.Errorf("lane 0 class = %q, want gold", got)
		}
		if got := lanes[1].Class(); got != "bulk" {
			t.Errorf("lane 1 class = %q, want tenant fallback bulk", got)
		}

		// Default unchanged: no LaneClasses -> every lane on the tenant class.
		plain := tenantSpec("plain")
		plain.QoSClass = "gold"
		plain.JournalShards = 2
		if _, err := sys.ProvisionTenant(p, plain); err != nil {
			t.Errorf("provision plain: %v", err)
			return
		}
		sys.CatchUp(p, "plain")
		for i, lp := range sys.TenantLanePaths("plain") {
			if lp != nil && lp.Class() != "gold" {
				t.Errorf("plain lane %d class = %q, want gold", i, lp.Class())
			}
		}
	})
}

// TestDeleteRacesReconcile is the controller-churn satellite: a Tenant spec
// deleted while provisioning is still reconciling must converge to a full
// teardown — no orphan replication groups, no array residue.
func TestDeleteRacesReconcile(t *testing.T) {
	for _, delay := range []time.Duration{
		0, 2 * time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond,
		20 * time.Millisecond, 40 * time.Millisecond,
	} {
		sys := NewSystem(Config{})
		failed := false
		sys.Env.Process("race", func(p *sim.Proc) {
			if err := sys.Main.API.Create(p, &platform.Tenant{
				Meta: platform.Meta{Kind: platform.KindTenant, Name: "flash"},
				Spec: tenantSpec("flash"),
			}); err != nil {
				failed = true
				t.Errorf("delay %v: create: %v", delay, err)
				return
			}
			p.Sleep(delay) // let provisioning get partway
			if err := sys.DecommissionTenant(p, "flash"); err != nil {
				failed = true
				t.Errorf("delay %v: decommission: %v", delay, err)
			}
		})
		sys.Env.Run(time.Hour)
		if failed {
			t.FailNow()
		}
		if res := sys.TenantResidue("flash"); len(res) != 0 {
			t.Fatalf("delay %v: residue: %v", delay, res)
		}
		if groups := sys.Groups("flash"); len(groups) != 0 {
			t.Fatalf("delay %v: orphan groups: %v", delay, groups)
		}
		if u := sys.Main.Array.Usage(); u != (storage.Usage{}) {
			t.Fatalf("delay %v: main array not clean: %+v", delay, u)
		}
		sys.Stop()
		sys.Env.Run(time.Hour)
	}
}

// TestTenantSpecDriftRepaired pins the declarative contract: the controller
// owns the backup tag of a managed namespace, so imperative label edits are
// reverted to the spec on the next reconcile.
func TestTenantSpecDriftRepaired(t *testing.T) {
	runSystem(t, Config{}, func(p *sim.Proc, sys *System) {
		if _, err := sys.ProvisionTenant(p, tenantSpec("managed")); err != nil {
			t.Errorf("provision: %v", err)
			return
		}
		nsKey := platform.ObjectKey{Kind: platform.KindNamespace, Name: "managed"}
		obj, err := sys.Main.API.Get(p, nsKey)
		if err != nil {
			t.Error(err)
			return
		}
		ns := obj.(*platform.Namespace)
		delete(ns.Labels, "backup")
		if err := sys.Main.API.Update(p, ns); err != nil {
			t.Error(err)
			return
		}
		// The controller must re-tag and replication must reconverge (the
		// operator may have torn the group down before the repair landed).
		deadline := p.Now() + 5*time.Second
		for {
			obj, err := sys.Main.API.Get(p, nsKey)
			if err == nil && obj.(*platform.Namespace).Labels["backup"] == "ConsistentCopyToCloud" {
				break
			}
			if p.Now() >= deadline {
				t.Error("tag drift never repaired")
				return
			}
			p.Sleep(10 * time.Millisecond)
		}
		if err := sys.WaitBackupReady(p, "managed", 10*time.Second); err != nil {
			t.Errorf("replication did not reconverge after drift: %v", err)
			return
		}
		if groups := sys.Groups("managed"); len(groups) != 1 {
			t.Errorf("groups after drift = %d", len(groups))
		}
	})
}

// TestWaitTenantReadySurfacesFailure pins the Failed phase: a tenant whose
// spec can never converge (backup requested, no claims to replicate)
// reports Failed with the operator's message rather than hanging.
func TestWaitTenantReadySurfacesFailure(t *testing.T) {
	runSystem(t, Config{}, func(p *sim.Proc, sys *System) {
		spec := platform.TenantSpec{Namespace: "empty", Backup: true}
		if _, err := sys.ProvisionTenant(p, spec); err == nil {
			t.Error("backup of an empty namespace reported Ready")
		} else if !strings.Contains(err.Error(), "not ready") && !strings.Contains(err.Error(), "failed") {
			t.Errorf("unexpected error: %v", err)
		}
	})
}

// TestDataOnlyProfileSkipsDatabases pins the workload-profile knob: a
// "data-only" tenant gets provisioned, replicated claims but no databases
// or shop attached, even when the claims are named sales/stock.
func TestDataOnlyProfileSkipsDatabases(t *testing.T) {
	runSystem(t, Config{}, func(p *sim.Proc, sys *System) {
		spec := tenantSpec("raw")
		spec.Profile = "data-only"
		bp, err := sys.ProvisionTenant(p, spec)
		if err != nil {
			t.Errorf("provision: %v", err)
			return
		}
		if bp.Sales != nil || bp.Stock != nil || bp.Shop != nil {
			t.Error("data-only profile opened databases")
		}
		if groups := sys.Groups("raw"); len(groups) != 1 {
			t.Errorf("replication groups = %d", len(groups))
		}
	})
}

// TestDecommissionWithPrefixSiblingNamespace pins residue attribution: a
// managed namespace that extends the decommissioned one ("shop-2" vs
// "shop") must not be counted as the shorter tenant's residue, or the
// decommission would wait on the sibling's healthy volumes forever.
func TestDecommissionWithPrefixSiblingNamespace(t *testing.T) {
	runSystem(t, Config{}, func(p *sim.Proc, sys *System) {
		if _, err := sys.ProvisionTenant(p, tenantSpec("shop")); err != nil {
			t.Errorf("provision shop: %v", err)
			return
		}
		sibling, err := sys.ProvisionTenant(p, tenantSpec("shop-2"))
		if err != nil {
			t.Errorf("provision shop-2: %v", err)
			return
		}
		if err := sys.DecommissionTenant(p, "shop"); err != nil {
			t.Errorf("decommission shop blocked by sibling: %v", err)
			return
		}
		if res := sys.TenantResidue("shop"); len(res) != 0 {
			t.Errorf("shop residue: %v", res)
		}
		// The sibling is intact and still replicating.
		if _, err := sibling.Shop.PlaceOrder(p); err != nil {
			t.Errorf("sibling order: %v", err)
		}
		if !sys.CatchUp(p, "shop-2") {
			t.Error("sibling drain broken")
		}
		if res := sys.TenantResidue("shop-2"); len(res) == 0 {
			t.Error("sibling residue empty — its volumes vanished?")
		}
	})
}

// TestEnableBackupUnknownNamespaceFailsFast pins the adoption guard: a
// typo'd namespace returns not-found immediately instead of creating an
// empty managed tenant and timing out.
func TestEnableBackupUnknownNamespaceFailsFast(t *testing.T) {
	runSystem(t, Config{}, func(p *sim.Proc, sys *System) {
		start := p.Now()
		err := sys.EnableBackup(p, "no-such-namespace")
		if err == nil {
			t.Error("enable backup of unknown namespace succeeded")
			return
		}
		if p.Now()-start > time.Second {
			t.Errorf("failure took %v — burned the provision timeout", p.Now()-start)
		}
		if _, err := sys.Main.API.Get(p, tenantKey("no-such-namespace")); err == nil {
			t.Error("a Tenant object was left behind")
		}
	})
}

// TestDecommissionWithImperativePrefixSibling extends the sibling test to
// an UNMANAGED namespace: "shop-2" provisioned via the raw platform API
// (no Tenant spec) must not block decommissioning the managed "shop".
func TestDecommissionWithImperativePrefixSibling(t *testing.T) {
	runSystem(t, Config{}, func(p *sim.Proc, sys *System) {
		if _, err := sys.ProvisionTenant(p, tenantSpec("shop")); err != nil {
			t.Errorf("provision shop: %v", err)
			return
		}
		// Imperative sibling: namespace + bound claim, no Tenant object.
		if err := sys.Main.API.Create(p, &platform.Namespace{
			Meta: platform.Meta{Kind: platform.KindNamespace, Name: "shop-2"},
		}); err != nil {
			t.Error(err)
			return
		}
		if err := sys.Main.API.Create(p, &platform.PersistentVolumeClaim{
			Meta: platform.Meta{Kind: platform.KindPVC, Namespace: "shop-2", Name: "data"},
			Spec: platform.PVCSpec{StorageClassName: StorageClassName, SizeBlocks: 64},
		}); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(50 * time.Millisecond) // let the provisioner bind it
		if err := sys.DecommissionTenant(p, "shop"); err != nil {
			t.Errorf("decommission blocked by imperative sibling: %v", err)
			return
		}
		if _, err := sys.Main.Array.Volume("pvc-shop-2-data"); err != nil {
			t.Errorf("sibling volume vanished: %v", err)
		}
	})
}
