package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestApplyTenantDeclarativeLifecycle drives a tenant through the
// declarative surface alone: one ApplyTenant declares the whole desired
// state, CondReady observes convergence, a re-apply of the identical spec
// writes nothing, and a spec change (more journal lanes) converges through
// the same two calls via CondResharded.
func TestApplyTenantDeclarativeLifecycle(t *testing.T) {
	runSystem(t, Config{}, func(p *sim.Proc, sys *System) {
		spec := tenantSpec("shop")
		spec.JournalShards = 2
		if err := sys.ApplyTenant(p, spec); err != nil {
			t.Errorf("apply: %v", err)
			return
		}
		if err := sys.WaitTenantCondition(p, "shop", CondReady(), time.Minute); err != nil {
			t.Errorf("ready: %v", err)
			return
		}
		obj, err := sys.Main.API.Get(p, tenantKey("shop"))
		if err != nil {
			t.Error(err)
			return
		}
		before := obj.GetMeta().ResourceVersion
		if err := sys.ApplyTenant(p, spec); err != nil {
			t.Errorf("re-apply: %v", err)
			return
		}
		obj, err = sys.Main.API.Get(p, tenantKey("shop"))
		if err != nil {
			t.Error(err)
			return
		}
		if got := obj.GetMeta().ResourceVersion; got != before {
			t.Errorf("identical re-apply bumped version %d -> %d", before, got)
		}

		spec.JournalShards = 4
		if err := sys.ApplyTenant(p, spec); err != nil {
			t.Errorf("apply reshard: %v", err)
			return
		}
		if err := sys.WaitTenantCondition(p, "shop", CondResharded(4), time.Minute); err != nil {
			t.Errorf("resharded: %v", err)
			return
		}
		if got := sys.Groups("shop")[0].Lanes(); got != 4 {
			t.Errorf("lanes after declarative reshard = %d, want 4", got)
		}
	})
}

// TestWaitReshardedRacingDecommissionFailsFast is the satellite regression:
// a CondResharded wait whose tenant is decommissioned underneath it must
// return the typed ErrNotReshardable promptly — the condition has become
// permanently unreachable, and dressing that up as ErrTimeout would stall
// the caller (the autopilot among them) for the full deadline.
func TestWaitReshardedRacingDecommissionFailsFast(t *testing.T) {
	runSystem(t, Config{JournalShards: 2}, func(p *sim.Proc, sys *System) {
		if _, err := sys.ProvisionTenant(p, tenantSpec("shop")); err != nil {
			t.Errorf("provision: %v", err)
			return
		}
		sys.Env.Process("decommission", func(p2 *sim.Proc) {
			p2.Sleep(300 * time.Millisecond)
			if err := sys.DecommissionTenant(p2, "shop"); err != nil {
				t.Errorf("decommission: %v", err)
			}
		})
		// Wait for a lane count nothing is converging toward, so the wait is
		// still in flight when the decommission lands.
		start := p.Now()
		err := sys.WaitTenantCondition(p, "shop", CondResharded(4), time.Hour)
		if !errors.Is(err, ErrNotReshardable) {
			t.Errorf("wait error = %v, want ErrNotReshardable", err)
		}
		if errors.Is(err, ErrTimeout) {
			t.Errorf("deletion surfaced as a timeout: %v", err)
		}
		if elapsed := p.Now() - start; elapsed > 10*time.Second {
			t.Errorf("refusal took %v — burned toward the deadline instead of failing fast", elapsed)
		}
	})
}

// TestWaitTenantConditionUnknownClassFails: a spec naming an unregistered
// SLO class must be refused at apply time, not discovered downstream.
func TestApplyTenantUnknownSLOClassFails(t *testing.T) {
	runSystem(t, Config{}, func(p *sim.Proc, sys *System) {
		spec := tenantSpec("shop")
		spec.SLOClass = "platinum"
		err := sys.ApplyTenant(p, spec)
		if err == nil {
			t.Error("apply with unregistered SLO class succeeded")
		}
	})
}

// TestCondGoneObservesDecommission: the Gone condition is satisfied exactly
// when teardown has converged with zero residue.
func TestCondGoneObservesDecommission(t *testing.T) {
	runSystem(t, Config{}, func(p *sim.Proc, sys *System) {
		if _, err := sys.ProvisionTenant(p, tenantSpec("shop")); err != nil {
			t.Errorf("provision: %v", err)
			return
		}
		if err := sys.DecommissionTenant(p, "shop"); err != nil {
			t.Errorf("decommission: %v", err)
			return
		}
		if err := sys.WaitTenantCondition(p, "shop", CondGone(), time.Minute); err != nil {
			t.Errorf("gone: %v", err)
		}
	})
}
