// Package core assembles the complete demonstration system of §IV: a main
// site and a backup site, each with a container platform and an external
// storage array, joined by an inter-site link. The main site runs the
// namespace operator and the storage/replication plugins; the backup site
// runs the snapshot controller. On top of the sites, core implements the
// demo's three steps as library calls:
//
//  1. backup configuration — tag the namespace, let the operator and the
//     replication plugin configure ADC with a consistency group;
//  2. snapshot development — group-snapshot the backup volumes;
//  3. data analytics — open read-only databases on the snapshot volumes.
//
// Plus the step the demo motivates but cannot show on stage: failover, the
// backup-site recovery that works because the data is consistent.
package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/csiplugin"
	"repro/internal/db"
	"repro/internal/fabric"
	"repro/internal/netlink"
	"repro/internal/operator"
	"repro/internal/platform"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// ErrTimeout reports that a wait helper gave up.
var ErrTimeout = errors.New("core: timed out")

// StorageClassName is the class the demo's claims use.
const StorageClassName = "vsp-replicated"

// Config assembles a System. Zero values take sensible demo defaults.
type Config struct {
	// Seed drives the deterministic simulation.
	Seed int64
	// Link is the inter-site network (default 5ms propagation, 1GB/s). It
	// is the fabric's only member link unless Fabric.Links overrides it.
	Link netlink.Config
	// Fabric configures the inter-site fabric: Fabric.Links, when set,
	// REPLACES Link as the member-link roster (heterogeneous members
	// allowed); Fabric.Classes adds QoS scheduling at the ingress;
	// Fabric.WindowPerLink > 1 pipelines scheduled dispatch so each member
	// keeps that many transfers propagating concurrently (high-BDP links,
	// E18). The zero value keeps a single-member passthrough fabric that
	// behaves byte-for-byte like the plain Link pipe.
	Fabric fabric.Config
	// PathClass maps a namespace to a fabric QoS class name; nil or an
	// unknown name binds to the default class. The fleet layer uses this
	// to give each tenant its own class.
	PathClass func(namespace string) string
	// Storage configures both arrays.
	Storage storage.Config
	// Replication tunes the ADC drain.
	Replication replication.Config
	// API configures both platforms' API servers.
	API platform.APIConfig
	// FeatureGates selects CSI alpha features on the backup site.
	FeatureGates csiplugin.FeatureGates
	// ConsistencyGroup is the operator's mode. Default true (the paper's
	// configuration); experiment E6 sets it false.
	ConsistencyGroup *bool
	// JournalShards, when > 1, shards each consistency group's journal so
	// the replication plugin drains it on that many lanes, each on its own
	// fabric path (experiment E13). 0 or 1 keeps the paper's single shared
	// journal — a strict passthrough.
	JournalShards int
	// Telemetry, when set, enables the sim-time observability plane: a
	// registry of instruments (per-tenant RPO probes, lane staging, fabric
	// queue depths, controller latency) plus span tracing, exportable as
	// Chrome trace-event JSON. Nil keeps telemetry disabled at zero cost.
	Telemetry *telemetry.Config
	// SLOClasses registers the deployment's service-level policy classes.
	// A TenantSpec references one by name (Spec.SLOClass); the autopilot
	// reads the class for the tenant's RPO target, shard bounds, and
	// admission priority, and a tenant without an explicit QoSClass
	// inherits the class's FabricClass at the fabric ingress.
	SLOClasses []platform.SLOClass
	// Placement, when set, decides which fabric member link each tenant
	// drain lane lands on (lazily, at first path creation). Nil keeps the
	// implicit default: any member, the dispatchers' choice.
	Placement PlacementPolicy
	// DB tunes the databases opened by DeployBusinessProcess.
	DB db.Config
	// VolumeBlocks is the size of each provisioned volume (default 2048).
	VolumeBlocks int64
	// ProvisionTimeout bounds ProvisionTenant / DecommissionTenant waits
	// (default 30s; fleets provisioning many tenants at once raise it).
	ProvisionTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Link.Propagation == 0 {
		c.Link.Propagation = 5 * time.Millisecond
	}
	if c.Link.BandwidthBps == 0 {
		c.Link.BandwidthBps = 1e9
	}
	if c.ConsistencyGroup == nil {
		t := true
		c.ConsistencyGroup = &t
	}
	if c.VolumeBlocks <= 0 {
		c.VolumeBlocks = 2048
	}
	return c
}

// Bool is a helper for Config.ConsistencyGroup.
func Bool(v bool) *bool { return &v }

// Site is one of the two sites: a container platform plus a storage array.
type Site struct {
	Name      string
	API       *platform.APIServer
	Array     *storage.Array
	Snapshots *csiplugin.SnapshotController
}

// System is the full two-site demonstration system.
type System struct {
	Env    *sim.Env
	Cfg    Config
	Main   *Site
	Backup *Site
	// Links is member 0 of the fabric — kept as the operator-facing pair
	// so single-link chaos (Partition/Heal/RTT) reads as before.
	Links  *netlink.Pair
	Fabric *fabric.Interconnect

	// Telemetry is the system's instrument registry; nil when Config left
	// telemetry disabled.
	Telemetry *telemetry.Registry

	Operator    *operator.Operator
	Provisioner *csiplugin.Provisioner
	Replication *csiplugin.ReplicationPlugin

	// Per-namespace fabric paths (lazily created; one forward for the ADC
	// drain, one reverse for failback, and — for sharded journals — one
	// forward path per drain lane).
	paths     map[string]*fabric.TenantPath
	revPaths  map[string]*fabric.TenantPath
	lanePaths map[string][]*fabric.TenantPath

	// Tenant lifecycle (tenant.go): the controllers reconciling Tenant
	// specs, the set of namespaces they manage, and the per-tenant QoS
	// bindings TenantSpec declares.
	tenantCtrls       []*platform.Controller
	managedTenants    map[string]bool
	tenantClass       map[string]string
	tenantLaneClasses map[string][]string
	decommissioned    int64

	// SLO policy registry (Config.SLOClasses, defaults applied) and the
	// active lane-placement policy (Config.Placement or SetPlacement).
	sloClasses map[string]platform.SLOClass
	placement  PlacementPolicy

	// reverse holds the backup→main groups Failback started; they live
	// outside the replication plugin's registry, so Stop tracks them here.
	reverse []*replication.Group
}

// NewSystem builds and starts the demonstration system. The returned
// system's controllers run as simulation processes; drive the system from
// processes on sys.Env and advance time with sys.Env.Run.
func NewSystem(cfg Config) *System {
	cfg = cfg.withDefaults()
	env := sim.NewEnv(cfg.Seed)
	sys := &System{
		Env: env,
		Cfg: cfg,
		Main: &Site{
			Name:  "main",
			API:   platform.NewAPIServer(env, cfg.API),
			Array: storage.NewArray(env, "vsp-main", cfg.Storage),
		},
		Backup: &Site{
			Name:  "backup",
			API:   platform.NewAPIServer(env, cfg.API),
			Array: storage.NewArray(env, "vsp-backup", cfg.Storage),
		},
		paths:             make(map[string]*fabric.TenantPath),
		revPaths:          make(map[string]*fabric.TenantPath),
		lanePaths:         make(map[string][]*fabric.TenantPath),
		managedTenants:    make(map[string]bool),
		tenantClass:       make(map[string]string),
		tenantLaneClasses: make(map[string][]string),
		sloClasses:        make(map[string]platform.SLOClass, len(cfg.SLOClasses)),
		placement:         cfg.Placement,
	}
	for _, sc := range cfg.SLOClasses {
		sys.sloClasses[sc.Name] = sc.WithDefaults()
	}
	if cfg.Telemetry != nil {
		sys.Telemetry = telemetry.New(env, *cfg.Telemetry)
	}
	// Inter-site fabric: member links default to the single cfg.Link; a
	// Fabric.Links roster swaps in a multi-link interconnect. Member 0's
	// pair stays exposed as sys.Links.
	memberCfgs := cfg.Fabric.Links
	if len(memberCfgs) == 0 {
		memberCfgs = []netlink.Config{cfg.Link}
	}
	fwd := make([]*netlink.Link, len(memberCfgs))
	rev := make([]*netlink.Link, len(memberCfgs))
	for i, lc := range memberCfgs {
		pr := netlink.NewPair(env, lc)
		fwd[i], rev[i] = pr.Forward, pr.Reverse
	}
	sys.Links = &netlink.Pair{Forward: fwd[0], Reverse: rev[0]}
	sys.Fabric = fabric.NewInterconnect(env, cfg.Fabric, fwd, rev)
	sys.Fabric.Forward.Instrument(sys.Telemetry, "fwd")
	sys.Fabric.Reverse.Instrument(sys.Telemetry, "rev")
	sys.Provisioner = csiplugin.NewProvisioner(env, sys.Main.API,
		map[string]*storage.Array{sys.Main.Array.Name(): sys.Main.Array})
	sys.Replication = csiplugin.NewReplicationPlugin(env, csiplugin.SitePair{
		MainAPI:     sys.Main.API,
		BackupAPI:   sys.Backup.API,
		MainArray:   sys.Main.Array,
		BackupArray: sys.Backup.Array,
		PathFor:     func(namespace string) fabric.Path { return sys.PathFor(namespace) },
		LanePathFor: func(namespace string, lane int) fabric.Path { return sys.LanePathFor(namespace, lane) },
		Telemetry:   sys.Telemetry,
	}, cfg.Replication)
	sys.Operator = operator.New(env, sys.Main.API, operator.Config{
		ConsistencyGroup: *cfg.ConsistencyGroup,
		JournalShards:    cfg.JournalShards,
		Telemetry:        sys.Telemetry,
	})
	sys.Main.Snapshots = csiplugin.NewSnapshotController(env, sys.Main.API, sys.Main.Array, cfg.FeatureGates)
	sys.Backup.Snapshots = csiplugin.NewSnapshotController(env, sys.Backup.API, sys.Backup.Array, cfg.FeatureGates)
	sys.tenantCtrls = sys.newTenantControllers()

	sys.Provisioner.Start()
	sys.Replication.Start()
	sys.Operator.Start()
	sys.Main.Snapshots.Start()
	sys.Backup.Snapshots.Start()
	for _, c := range sys.tenantCtrls {
		c.Start()
	}

	env.Process("bootstrap", func(p *sim.Proc) {
		if err := sys.Main.API.Create(p, &platform.StorageClass{
			Meta:        platform.Meta{Kind: platform.KindStorageClass, Name: StorageClassName},
			Provisioner: "csi.vsp.sim",
			ArrayName:   sys.Main.Array.Name(),
		}); err != nil {
			panic(fmt.Sprintf("core: bootstrap: %v", err))
		}
	})
	return sys
}

// Stop quiesces the system's background processes: every controller, every
// running replication engine, and the fabric dispatchers. Call it (then
// drain with Env.Run) when a run is complete and the system will be
// discarded. Simulated processes are goroutines parked on events, so a
// system that is dropped without Stop leaks its whole process set — and a
// benchmark iterating over fresh systems accumulates those leaks into
// GC/scheduler cost that corrupts later measurements.
func (sys *System) Stop() {
	for _, c := range sys.tenantCtrls {
		c.Stop()
	}
	sys.Operator.Stop()
	sys.Provisioner.Stop()
	sys.Replication.Stop()
	sys.Main.Snapshots.Stop()
	sys.Backup.Snapshots.Stop()
	for _, g := range sys.Replication.AllGroups() {
		g.Stop()
	}
	for _, g := range sys.reverse {
		g.Stop()
	}
	sys.Fabric.Stop()
}

// BusinessProcess is the deployed e-commerce application of §II: a
// transactional app over a sales database and a stock database, each on its
// own claim in one namespace.
type BusinessProcess struct {
	Namespace string
	PVCNames  []string
	Sales     *db.DB
	Stock     *db.DB
	Shop      *workload.Shop
}

// DeployBusinessProcess declares the namespace with its two claims as a
// Tenant spec and waits for the tenant controller to provision and bind
// them, then opens the databases — a thin wrapper over ProvisionTenant
// (backup off; EnableBackup flips it on declaratively).
func (sys *System) DeployBusinessProcess(p *sim.Proc, namespace string) (*BusinessProcess, error) {
	return sys.ProvisionTenant(p, platform.TenantSpec{
		Namespace: namespace,
		PVCNames:  []string{"sales", "stock"},
	})
}

// provisionTimeout is the default wait bound for tenant lifecycle calls.
func (sys *System) provisionTimeout() time.Duration {
	if sys.Cfg.ProvisionTimeout > 0 {
		return sys.Cfg.ProvisionTimeout
	}
	return 30 * time.Second
}

func (sys *System) openDB(p *sim.Proc, namespace, claim string) (*db.DB, error) {
	vol, err := sys.Main.Array.Volume(csiplugin.VolumeIDForClaim(namespace, claim))
	if err != nil {
		return nil, err
	}
	return db.Open(p, fmt.Sprintf("%s/%s", namespace, claim), vol, sys.Cfg.DB)
}

// EnableBackup performs demo step 1 (Fig. 3) declaratively: set Backup on
// the namespace's Tenant spec (creating an adopting spec when the namespace
// was provisioned imperatively) and wait until the operator and the
// replication plugin report the replication group Ready.
//
// Deprecated: EnableBackup is a thin wrapper kept for the imperative demo
// surface. Declare Spec.Backup with ApplyTenant (or UpdateTenantSpec) and
// wait with WaitTenantCondition(..., CondBackupReady(), ...).
func (sys *System) EnableBackup(p *sim.Proc, namespace string) error {
	err := sys.UpdateTenantSpec(p, namespace, func(s *platform.TenantSpec) { s.Backup = true })
	if errors.Is(err, platform.ErrNotFound) {
		// Adopt an imperatively-provisioned namespace: the namespace must
		// already exist (a typo'd name fails here, not after a timeout), and
		// the empty claim list leaves its claims alone — the spec only
		// manages the backup side.
		if _, err := sys.Main.API.Get(p, platform.ObjectKey{Kind: platform.KindNamespace, Name: namespace}); err != nil {
			return err
		}
		err = sys.ApplyTenant(p, platform.TenantSpec{Namespace: namespace, Backup: true})
	}
	if err != nil {
		return err
	}
	// Wait on the replication group itself rather than the tenant phase: a
	// tenant that was already Ready without backup holds that phase until
	// the controller reconciles the spec change.
	return sys.WaitTenantCondition(p, namespace, CondBackupReady(), sys.provisionTimeout())
}

// pollInterval is the initial status-poll period of the Wait* helpers and
// pollCap the exponential-backoff ceiling. Backing off keeps the reaction
// latency of a short wait at one pollInterval while cutting the scheduler
// steps a long wait burns — at fleet scale, ready-polling is otherwise the
// dominant event source.
const (
	pollInterval = 10 * time.Millisecond
	pollCap      = 160 * time.Millisecond
)

// pollBackoff sleeps the current poll interval and doubles it up to pollCap.
func pollBackoff(p *sim.Proc, d *time.Duration) {
	p.Sleep(*d)
	if *d < pollCap {
		*d *= 2
	}
}

// WaitBackupReady blocks until the namespace's ReplicationGroup is Ready —
// shorthand for WaitTenantCondition with CondBackupReady.
func (sys *System) WaitBackupReady(p *sim.Proc, namespace string, timeout time.Duration) error {
	return sys.WaitTenantCondition(p, namespace, CondBackupReady(), timeout)
}

// waitObject blocks until check reports done on the keyed object's state (a
// missing object just keeps waiting), or the timeout expires (ErrTimeout).
// The watch is registered before the initial read so no transition can slip
// between them; duplicate deliveries only re-run check.
func (sys *System) waitObject(p *sim.Proc, key platform.ObjectKey, timeout time.Duration,
	check func(platform.Object) (bool, error)) error {
	deadline := p.Now() + timeout
	w := sys.Main.API.WatchKey(key)
	defer w.Stop()
	obj, err := sys.Main.API.Get(p, key)
	if err == nil {
		if done, cerr := check(obj); done {
			return cerr
		}
	} else if !errors.Is(err, platform.ErrNotFound) {
		return err
	}
	for {
		remain := deadline - p.Now()
		if remain <= 0 {
			return ErrTimeout
		}
		ev, ok := w.NextTimeout(p, remain)
		if !ok {
			return ErrTimeout
		}
		if ev.Type == platform.Deleted {
			continue
		}
		if done, cerr := check(ev.Object); done {
			return cerr
		}
	}
}

// DisableBackup clears Backup on the tenant spec (the controller removes
// the tag and the operator tears the replication down). Namespaces tagged
// imperatively — no Tenant spec — are untagged directly.
//
// Deprecated: thin wrapper; declare Spec.Backup=false with ApplyTenant or
// UpdateTenantSpec.
func (sys *System) DisableBackup(p *sim.Proc, namespace string) error {
	err := sys.UpdateTenantSpec(p, namespace, func(s *platform.TenantSpec) { s.Backup = false })
	if !errors.Is(err, platform.ErrNotFound) {
		return err
	}
	nsObj, err := sys.Main.API.Get(p, platform.ObjectKey{Kind: platform.KindNamespace, Name: namespace})
	if err != nil {
		return err
	}
	ns := nsObj.(*platform.Namespace)
	delete(ns.Labels, operator.Tag)
	return sys.Main.API.Update(p, ns)
}

// classFor resolves a namespace's QoS class name: a TenantSpec's QoSClass
// wins, then the deployment-wide Config.PathClass hook.
func (sys *System) classFor(namespace string) string {
	if c, ok := sys.tenantClass[namespace]; ok {
		return c
	}
	if sys.Cfg.PathClass == nil {
		return ""
	}
	return sys.Cfg.PathClass(namespace)
}

// laneClassFor resolves the QoS class for one drain lane of a sharded
// journal: a TenantSpec's per-lane LaneClasses entry wins, falling back to
// the tenant's class — so by default every lane rides the tenant's class,
// exactly as before per-shard QoS existed.
func (sys *System) laneClassFor(namespace string, lane int) string {
	if cs := sys.tenantLaneClasses[namespace]; lane < len(cs) && cs[lane] != "" {
		return cs[lane]
	}
	return sys.classFor(namespace)
}

// PlacementPolicy decides which fabric member link a tenant's forward
// drain lane lands on. It is consulted lazily, when the lane's path is
// first created (a joiner's first drain, a reshard's added lanes): return
// a member-link index to pin the lane there, or a negative value to keep
// the implicit default (any member, the dispatchers' choice). The arrays
// are degenerate in the two-site system — one main array holds every
// tenant — so placement today chooses fabric links; N-site array placement
// extends this interface.
//
// Implementations must be deterministic functions of simulation state:
// placement runs inside reconcile steps and is part of the reproducible
// schedule.
type PlacementPolicy interface {
	PlaceLane(namespace string, lane int, f *fabric.Fabric) int
}

// SetPlacement installs (or, with nil, removes) the lane-placement policy.
// Only paths created after the call are affected; existing lanes keep
// their binding. The autopilot wires its policy through this hook.
func (sys *System) SetPlacement(pol PlacementPolicy) { sys.placement = pol }

// SLOClassFor returns the registered SLO class by name.
func (sys *System) SLOClassFor(name string) (platform.SLOClass, bool) {
	sc, ok := sys.sloClasses[name]
	return sc, ok
}

// SLOClasses returns every registered SLO class, sorted by name so callers
// (the autopilot's admission sweep above all) iterate deterministically.
func (sys *System) SLOClasses() []platform.SLOClass {
	out := make([]platform.SLOClass, 0, len(sys.sloClasses))
	for _, sc := range sys.sloClasses {
		out = append(out, sc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// newForwardPath creates one forward fabric path, consulting the placement
// policy for a member-link pin.
func (sys *System) newForwardPath(class, owner, namespace string, lane int) *fabric.TenantPath {
	if sys.placement != nil {
		if li := sys.placement.PlaceLane(namespace, lane, sys.Fabric.Forward); li >= 0 {
			return sys.Fabric.Forward.PathOn(class, owner, li)
		}
	}
	return sys.Fabric.Forward.Path(class, owner)
}

// PathFor returns the namespace's forward (main→backup) fabric path,
// creating it on first use. The replication plugin drains each namespace's
// journal through this path, so per-tenant bytes, queueing delay, and
// drops are observable on it.
func (sys *System) PathFor(namespace string) *fabric.TenantPath {
	if tp, ok := sys.paths[namespace]; ok {
		return tp
	}
	tp := sys.newForwardPath(sys.classFor(namespace), "adc:"+namespace, namespace, 0)
	sys.paths[namespace] = tp
	return tp
}

// ReversePathFor returns the namespace's reverse (backup→main) fabric
// path, used by failback resync and reverse replication.
func (sys *System) ReversePathFor(namespace string) *fabric.TenantPath {
	if tp, ok := sys.revPaths[namespace]; ok {
		return tp
	}
	tp := sys.Fabric.Reverse.Path(sys.classFor(namespace), "failback:"+namespace)
	sys.revPaths[namespace] = tp
	return tp
}

// LanePathFor returns the namespace's forward fabric path for drain lane
// `lane` of a sharded journal, creating it on first use. Each lane gets its
// own counted path so per-lane bytes and queueing stay observable.
func (sys *System) LanePathFor(namespace string, lane int) *fabric.TenantPath {
	ps := sys.lanePaths[namespace]
	for len(ps) <= lane {
		ps = append(ps, nil)
	}
	if ps[lane] == nil {
		ps[lane] = sys.newForwardPath(sys.laneClassFor(namespace, lane),
			fmt.Sprintf("adc:%s:s%d", namespace, lane), namespace, lane)
	}
	sys.lanePaths[namespace] = ps
	return ps[lane]
}

// TenantPath returns the namespace's forward fabric path if one was
// created (nil otherwise) — the per-tenant interference counters.
func (sys *System) TenantPath(namespace string) *fabric.TenantPath { return sys.paths[namespace] }

// TenantLanePaths returns the namespace's per-lane forward paths (nil when
// the namespace never drained through sharded lanes).
func (sys *System) TenantLanePaths(namespace string) []*fabric.TenantPath {
	return sys.lanePaths[namespace]
}

// Groups returns the running replication engines for a namespace.
func (sys *System) Groups(namespace string) []replication.Replicator {
	return sys.Replication.Groups(operator.GroupNameFor(namespace))
}

// CatchUp waits for every group of the namespace to drain fully.
func (sys *System) CatchUp(p *sim.Proc, namespace string) bool {
	ok := true
	for _, g := range sys.Groups(namespace) {
		if !g.CatchUp(p) {
			ok = false
		}
	}
	return ok
}

// RPO returns the worst (largest) RPO across the namespace's groups.
func (sys *System) RPO(namespace string) time.Duration {
	var worst time.Duration
	for _, g := range sys.Groups(namespace) {
		if r := g.RPO(sys.Env.Now()); r > worst {
			worst = r
		}
	}
	return worst
}

// Backlog returns the total un-applied journal records for the namespace.
func (sys *System) Backlog(namespace string) int {
	var n int
	for _, g := range sys.Groups(namespace) {
		n += g.Backlog()
	}
	return n
}
