// The declarative tenant surface: ApplyTenant declares a tenant's entire
// desired state in one call (create the spec or replace it wholesale), and
// WaitTenantCondition blocks until the world reaches a named observable
// condition. Together they subsume the imperative mutators that grew one
// per PR (EnableBackup, DisableBackup, ReshardTenant, WaitReshard,
// UpdateTenantSpec) — those remain as thin wrappers for existing callers,
// but new code, and the autopilot above all, speaks spec in / condition
// out. See DESIGN.md "SLO autopilot (E17)" for the migration note.
package core

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"time"

	"repro/internal/operator"
	"repro/internal/platform"
	"repro/internal/replication"
	"repro/internal/sim"
)

// ApplyTenant declares the tenant's desired state: the spec is created if
// absent, otherwise replaced wholesale (version conflicts with the
// controller's status writes retry; an identical spec writes nothing). The
// controller chain then converges the world — pair with WaitTenantCondition
// to block on the outcome. Partial mutations of an existing spec are what
// UpdateTenantSpec is for.
func (sys *System) ApplyTenant(p *sim.Proc, spec platform.TenantSpec) error {
	ns := spec.Namespace
	if ns == "" {
		return fmt.Errorf("core: tenant spec needs a namespace")
	}
	// A policy reference must resolve against the registered classes at
	// declaration time: a typo'd SLO class would otherwise silently fall
	// back to unmanaged best-effort, which no operator means to declare.
	if spec.SLOClass != "" {
		if _, ok := sys.sloClasses[spec.SLOClass]; !ok {
			return fmt.Errorf("core: tenant %s references unregistered SLO class %q", ns, spec.SLOClass)
		}
	}
	for {
		obj, err := sys.Main.API.Get(p, tenantKey(ns))
		if errors.Is(err, platform.ErrNotFound) {
			err = sys.Main.API.Create(p, &platform.Tenant{
				Meta:   platform.Meta{Kind: platform.KindTenant, Name: ns},
				Spec:   spec,
				Status: platform.TenantStatus{Phase: platform.TenantPending, Message: "spec accepted"},
			})
			if errors.Is(err, platform.ErrExists) {
				continue // lost a create race: retry as an update
			}
			return err
		}
		if err != nil {
			return err
		}
		tn := obj.(*platform.Tenant)
		if reflect.DeepEqual(tn.Spec, spec) {
			return nil
		}
		tn.Spec = spec
		err = sys.Main.API.Update(p, tn)
		if errors.Is(err, platform.ErrConflict) {
			continue
		}
		return err
	}
}

// condKind enumerates the observable tenant conditions.
type condKind int

const (
	condReady condKind = iota
	condBackupReady
	condResharded
	condGone
)

// TenantCondition names an observable condition of a tenant for
// WaitTenantCondition. Construct one with CondReady, CondBackupReady,
// CondResharded, or CondGone.
type TenantCondition struct {
	kind   condKind
	shards int
}

// CondReady is satisfied when the tenant's status reaches Ready (namespace,
// bound claims, and — with Spec.Backup — running replication including the
// initial copy). A Failed status ends the wait with its message.
func CondReady() TenantCondition { return TenantCondition{kind: condReady} }

// CondBackupReady is satisfied when the tenant's ReplicationGroup reports
// Ready. Prefer it over CondReady after flipping Spec.Backup on an
// already-Ready tenant: the tenant phase may hold Ready across the
// reconcile, but the group's phase tracks the new replication.
func CondBackupReady() TenantCondition { return TenantCondition{kind: condBackupReady} }

// CondResharded is satisfied when the tenant's replication engine drains
// exactly `shards` lanes with no open migration window. Structurally
// impossible states — backup disabled, per-volume journals, a failed-over
// or stopped engine, or the tenant deleted mid-wait — end the wait
// immediately with ErrNotReshardable.
func CondResharded(shards int) TenantCondition {
	return TenantCondition{kind: condResharded, shards: shards}
}

// CondGone is satisfied when the tenant is fully decommissioned: spec
// deleted, teardown converged, and zero residue on either array.
func CondGone() TenantCondition { return TenantCondition{kind: condGone} }

func (c TenantCondition) String() string {
	switch c.kind {
	case condReady:
		return "Ready"
	case condBackupReady:
		return "BackupReady"
	case condResharded:
		return fmt.Sprintf("Resharded(%d)", c.shards)
	case condGone:
		return "Gone"
	}
	return "?"
}

// WaitTenantCondition blocks until the namespace reaches the condition, the
// condition becomes permanently unreachable (a typed error, immediately),
// or the timeout expires (ErrTimeout). Status-shaped conditions are
// watch-driven — one wakeup per transition; engine-shaped conditions
// (CondResharded, CondGone) poll with backoff because the states they
// observe live outside the API server.
func (sys *System) WaitTenantCondition(p *sim.Proc, namespace string, cond TenantCondition, timeout time.Duration) error {
	switch cond.kind {
	case condReady:
		return sys.waitTenantReady(p, namespace, timeout)
	case condBackupReady:
		return sys.waitBackupGroupReady(p, namespace, timeout)
	case condResharded:
		return sys.waitResharded(p, namespace, cond.shards, timeout)
	case condGone:
		return sys.waitTenantGone(p, namespace, timeout)
	}
	return fmt.Errorf("core: unknown tenant condition %v", cond)
}

func (sys *System) waitTenantReady(p *sim.Proc, namespace string, timeout time.Duration) error {
	err := sys.waitObject(p, tenantKey(namespace), timeout, func(obj platform.Object) (bool, error) {
		switch tn := obj.(*platform.Tenant); tn.Status.Phase {
		case platform.TenantReady:
			return true, nil
		case platform.TenantFailed:
			return true, fmt.Errorf("core: tenant %s failed: %s", namespace, tn.Status.Message)
		}
		return false, nil
	})
	if errors.Is(err, ErrTimeout) {
		return fmt.Errorf("%w: tenant %s not ready", ErrTimeout, namespace)
	}
	return err
}

func (sys *System) waitBackupGroupReady(p *sim.Proc, namespace string, timeout time.Duration) error {
	key := platform.ObjectKey{Kind: platform.KindReplicationGroup, Name: operator.GroupNameFor(namespace)}
	err := sys.waitObject(p, key, timeout, func(obj platform.Object) (bool, error) {
		rg := obj.(*platform.ReplicationGroup)
		switch rg.Status.Phase {
		case platform.GroupReady:
			return true, nil
		case platform.GroupFailed:
			return true, fmt.Errorf("core: replication group failed: %s", rg.Status.Message)
		}
		return false, nil
	})
	if errors.Is(err, ErrTimeout) {
		return fmt.Errorf("%w: replication group for %s not ready", ErrTimeout, namespace)
	}
	return err
}

// waitResharded polls until the tenant's engine runs exactly `shards` lanes
// with the migration window closed. Every iteration re-screens for the
// permanent can't-reshard states so a wait racing a disaster (or a
// decommission — the tenant spec deleted under the wait) fails fast with
// ErrNotReshardable instead of dressing a permanent condition up as a
// timeout.
func (sys *System) waitResharded(p *sim.Proc, namespace string, shards int, timeout time.Duration) error {
	deadline := p.Now() + timeout
	wait := pollInterval
	for {
		if err := sys.reshardable(p, namespace); err != nil {
			if errors.Is(err, platform.ErrNotFound) {
				return fmt.Errorf("%w: tenant %s deleted mid-reshard", ErrNotReshardable, namespace)
			}
			return err
		}
		if gs := sys.Groups(namespace); len(gs) == 1 {
			g := gs[0]
			if g.Lanes() == shards {
				sg, sharded := g.(*replication.ShardedGroup)
				if !sharded || !sg.Resharding() {
					return nil
				}
			}
		}
		if p.Now() >= deadline {
			return fmt.Errorf("%w: tenant %s not resharded to %d lanes", ErrTimeout, namespace, shards)
		}
		pollBackoff(p, &wait)
	}
}

// waitTenantGone polls until teardown converged to zero residue.
func (sys *System) waitTenantGone(p *sim.Proc, namespace string, timeout time.Duration) error {
	deadline := p.Now() + timeout
	wait := pollInterval
	for {
		_, err := sys.Main.API.Get(p, tenantKey(namespace))
		gone := errors.Is(err, platform.ErrNotFound)
		if err != nil && !gone {
			return err
		}
		if gone && !sys.managedTenants[namespace] && len(sys.TenantResidue(namespace)) == 0 {
			return nil
		}
		if p.Now() >= deadline {
			return fmt.Errorf("%w: tenant %s not reclaimed: %s", ErrTimeout, namespace,
				strings.Join(sys.TenantResidue(namespace), "; "))
		}
		pollBackoff(p, &wait)
	}
}
