package core

import (
	"testing"
	"time"

	"repro/internal/consistency"
	"repro/internal/db"
	"repro/internal/replication"
	"repro/internal/sim"
)

// openDBForTest opens a database on a raw volume with default config.
func openDBForTest(p *sim.Proc, vol replication.BlockWriter) (*db.DB, error) {
	return db.Open(p, "test", vol, db.Config{})
}

// Failure-injection tests: the system must converge despite partitions,
// lossy links, and operations racing with outages.

func TestEnableBackupSurvivesPartitionDuringInitialCopy(t *testing.T) {
	sys := NewSystem(Config{Link: netlinkConfig{Propagation: 5 * time.Millisecond, BandwidthBps: 1e6}})
	failed := false
	sys.Env.Process("test", func(p *sim.Proc) {
		bp, err := sys.DeployBusinessProcess(p, "shop")
		if err != nil {
			failed = true
			t.Errorf("deploy: %v", err)
			return
		}
		// Preload data so the initial copy has real work, then cut the
		// link in the middle of it.
		if err := bp.Shop.Run(p, 30); err != nil {
			failed = true
			t.Error(err)
			return
		}
		outage := sys.Env.NewEvent()
		sys.Env.Process("chaos", func(cp *sim.Proc) {
			cp.Sleep(5 * time.Millisecond)
			sys.Links.Partition()
			cp.Sleep(300 * time.Millisecond)
			sys.Links.Heal()
			outage.Trigger()
		})
		// EnableBackup blocks through the outage and completes after heal.
		if err := sys.EnableBackup(p, "shop"); err != nil {
			failed = true
			t.Errorf("enable backup through partition: %v", err)
			return
		}
		p.Wait(outage)
		bp.Shop.Run(p, 10)
		sys.CatchUp(p, "shop")
		res, err := sys.Failover(p, "shop")
		if err != nil {
			failed = true
			t.Error(err)
			return
		}
		rep := consistency.Verify(res.Sales, res.Stock, bp.Shop.SalesCommitOrder(), bp.Shop.StockCommitOrder())
		if rep.Collapsed() || !rep.OrderingOK() {
			failed = true
			t.Errorf("inconsistent after mid-copy partition: %v", rep)
		}
	})
	sys.Env.Run(2 * time.Hour)
	if failed {
		t.FailNow()
	}
}

func TestReplicationConvergesOnLossyLink(t *testing.T) {
	sys := NewSystem(Config{Link: netlinkConfig{
		Propagation:       2 * time.Millisecond,
		BandwidthBps:      1e7,
		LossProb:          0.3,
		RetransmitTimeout: 5 * time.Millisecond,
	}})
	sys.Env.Process("test", func(p *sim.Proc) {
		bp, err := sys.DeployBusinessProcess(p, "shop")
		if err != nil {
			t.Errorf("deploy: %v", err)
			return
		}
		if err := sys.EnableBackup(p, "shop"); err != nil {
			t.Errorf("backup: %v", err)
			return
		}
		if err := bp.Shop.Run(p, 40); err != nil {
			t.Error(err)
			return
		}
		if !sys.CatchUp(p, "shop") {
			t.Error("never caught up on lossy link")
			return
		}
		if sys.RPO("shop") != 0 {
			t.Errorf("rpo = %v after catch-up", sys.RPO("shop"))
		}
		if sys.Links.Forward.Retransmits() == 0 {
			t.Error("loss injection never fired — test not exercising retries")
		}
	})
	sys.Env.Run(2 * time.Hour)
}

func TestRepeatedPartitionsDoNotReorder(t *testing.T) {
	sys := NewSystem(Config{Link: netlinkConfig{Propagation: 2 * time.Millisecond, BandwidthBps: 1e7}})
	sys.Env.Process("test", func(p *sim.Proc) {
		bp, err := sys.DeployBusinessProcess(p, "shop")
		if err != nil {
			t.Errorf("deploy: %v", err)
			return
		}
		if err := sys.EnableBackup(p, "shop"); err != nil {
			t.Errorf("backup: %v", err)
			return
		}
		flapping := sys.Env.NewEvent()
		sys.Env.Process("flapper", func(cp *sim.Proc) {
			for i := 0; i < 8; i++ {
				cp.Sleep(15 * time.Millisecond)
				sys.Links.Partition()
				cp.Sleep(10 * time.Millisecond)
				sys.Links.Heal()
			}
			flapping.Trigger()
		})
		if err := bp.Shop.Run(p, 80); err != nil {
			t.Error(err)
			return
		}
		p.Wait(flapping)
		sys.CatchUp(p, "shop")
		for _, g := range sys.Groups("shop") {
			log := g.ApplyLog()
			for i := 1; i < len(log); i++ {
				if log[i].Seq != log[i-1].Seq+1 {
					t.Errorf("apply order broken across partitions at %d", i)
					return
				}
			}
		}
	})
	sys.Env.Run(2 * time.Hour)
}

func TestFullDisasterRecoveryCycle(t *testing.T) {
	// The complete DR lifecycle at the system level: run → disaster →
	// failover → production at backup → failback (delta resync) → reverse
	// replication carries new business to the restored main site.
	sys := NewSystem(Config{})
	sys.Env.Process("test", func(p *sim.Proc) {
		bp, err := sys.DeployBusinessProcess(p, "shop")
		if err != nil {
			t.Errorf("deploy: %v", err)
			return
		}
		if err := sys.EnableBackup(p, "shop"); err != nil {
			t.Errorf("backup: %v", err)
			return
		}
		bp.Shop.Run(p, 30)
		sys.CatchUp(p, "shop")

		// Disaster + failover.
		sys.Links.Partition()
		fo, err := sys.Failover(p, "shop")
		if err != nil {
			t.Errorf("failover: %v", err)
			return
		}
		// Production at the backup site.
		tx := fo.Sales.BeginWithID(5000)
		tx.Put(5000, []byte("backup-era order"))
		if err := tx.Commit(p); err != nil {
			t.Errorf("backup-era commit: %v", err)
			return
		}

		// Main site returns; failback.
		sys.Links.Heal()
		fb, err := sys.Failback(p)
		if err != nil {
			t.Errorf("failback: %v", err)
			return
		}
		if fb.DeltaBlocks == 0 || fb.DeltaBlocks >= fb.FullBlocks {
			t.Errorf("delta resync implausible: %d of %d", fb.DeltaBlocks, fb.FullBlocks)
		}
		// New backup-site writes flow to main in reverse.
		tx2 := fo.Sales.BeginWithID(5001)
		tx2.Put(5001, []byte("post-failback order"))
		if err := tx2.Commit(p); err != nil {
			t.Errorf("post-failback commit: %v", err)
			return
		}
		for _, g := range fb.Reverse {
			g.CatchUp(p)
		}
		// The main site's volume now carries the backup-era history: a
		// fresh recovery there sees both orders.
		for _, g := range fb.Reverse {
			g.Stop()
		}
		mainSales, err := sys.Main.Array.Volume("pvc-shop-sales")
		if err != nil {
			t.Error(err)
			return
		}
		mainSales.SetReadOnly(false)
		recovered, err := openDBForTest(p, mainSales)
		if err != nil {
			t.Errorf("recover main: %v", err)
			return
		}
		if !recovered.HasCommitted(5000) || !recovered.HasCommitted(5001) {
			t.Error("backup-era history missing at restored main site")
		}
	})
	sys.Env.Run(2 * time.Hour)
}
