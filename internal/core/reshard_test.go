package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/replication"
	"repro/internal/sim"
)

// TestReshardTenantEndToEnd drives the full reshard chain from the Tenant
// spec: 1 -> 4 upgrades the paper's plain engine to a four-lane sharded one
// while OLTP commits keep flowing, 4 -> 2 shrinks it live, and the tenant's
// backup image stays a consistent cut throughout (verified by snapshot
// analytics after each transition).
func TestReshardTenantEndToEnd(t *testing.T) {
	runSystem(t, Config{}, func(p *sim.Proc, sys *System) {
		spec := tenantSpec("shop")
		spec.JournalShards = 1
		bp, err := sys.ProvisionTenant(p, spec)
		if err != nil {
			t.Errorf("provision: %v", err)
			return
		}
		if _, ok := sys.Groups("shop")[0].(*replication.Group); !ok {
			t.Errorf("shards=1 engine is %T, want the plain engine", sys.Groups("shop")[0])
			return
		}
		if err := bp.Shop.Run(p, 6); err != nil {
			t.Error(err)
			return
		}

		if err := sys.ReshardTenant(p, "shop", 4); err != nil {
			t.Errorf("reshard 1->4: %v", err)
			return
		}
		sg, ok := sys.Groups("shop")[0].(*replication.ShardedGroup)
		if !ok || sg.Lanes() != 4 || sg.Resharding() {
			t.Errorf("after 1->4: %T lanes=%d resharding=%v", sys.Groups("shop")[0], sg.Lanes(), sg.Resharding())
			return
		}
		if err := bp.Shop.Run(p, 6); err != nil {
			t.Error(err)
			return
		}
		sys.CatchUp(p, "shop")
		if group, err := sys.SnapshotBackup(p, "shop", "after-grow"); err != nil {
			t.Errorf("snapshot after grow: %v", err)
		} else if _, _, err := sys.AnalyticsDBs(p, "shop", group); err != nil {
			t.Errorf("analytics after grow: %v", err)
		}

		if err := sys.ReshardTenant(p, "shop", 2); err != nil {
			t.Errorf("reshard 4->2: %v", err)
			return
		}
		if got := sys.Groups("shop")[0].Lanes(); got != 2 {
			t.Errorf("after 4->2: lanes=%d", got)
			return
		}
		if err := bp.Shop.Run(p, 6); err != nil {
			t.Error(err)
			return
		}
		sys.CatchUp(p, "shop")
		if group, err := sys.SnapshotBackup(p, "shop", "after-shrink"); err != nil {
			t.Errorf("snapshot after shrink: %v", err)
		} else if _, _, err := sys.AnalyticsDBs(p, "shop", group); err != nil {
			t.Errorf("analytics after shrink: %v", err)
		}

		// The reshard history must not obstruct a clean decommission.
		if err := sys.DecommissionTenant(p, "shop"); err != nil {
			t.Errorf("decommission after reshards: %v", err)
		}
	})
}

// TestReshardTenantUnchangedSpecIsZeroMigration pins the acceptance
// criterion: re-declaring the same shard count performs zero migration,
// verified by the journal's lifetime counters.
func TestReshardTenantUnchangedSpecIsZeroMigration(t *testing.T) {
	runSystem(t, Config{}, func(p *sim.Proc, sys *System) {
		spec := tenantSpec("shop")
		spec.JournalShards = 4
		if _, err := sys.ProvisionTenant(p, spec); err != nil {
			t.Errorf("provision: %v", err)
			return
		}
		sj, err := sys.Main.Array.ShardedJournal("jnl-backup-shop-0")
		if err != nil {
			t.Error(err)
			return
		}
		if err := sys.ReshardTenant(p, "shop", 4); err != nil {
			t.Errorf("same-count reshard: %v", err)
			return
		}
		p.Sleep(200 * time.Millisecond) // let any misguided reconcile run
		if sj.Reshards() != 0 || sj.MovedRecords() != 0 || sj.MovedVolumes() != 0 {
			t.Errorf("unchanged spec migrated: reshards=%d recs=%d vols=%d",
				sj.Reshards(), sj.MovedRecords(), sj.MovedVolumes())
		}
	})
}

// TestFailbackShardedSentinel is the satellite regression: Failback on a
// system whose failed-over group is sharded must refuse with the typed
// sentinel BEFORE touching anything — the failed-over plain group is not
// resynced, and an unrelated sharded tenant keeps draining healthily.
func TestFailbackShardedSentinel(t *testing.T) {
	runSystem(t, Config{JournalShards: 2}, func(p *sim.Proc, sys *System) {
		// Tenant A: sharded, failed over. Tenant B: sharded, still draining.
		bpA, err := sys.ProvisionTenant(p, tenantSpec("alpha"))
		if err != nil {
			t.Errorf("provision alpha: %v", err)
			return
		}
		bpB, err := sys.ProvisionTenant(p, tenantSpec("beta"))
		if err != nil {
			t.Errorf("provision beta: %v", err)
			return
		}
		if err := bpA.Shop.Run(p, 4); err != nil {
			t.Error(err)
			return
		}
		if _, err := sys.Failover(p, "alpha"); err != nil {
			t.Errorf("failover: %v", err)
			return
		}

		_, err = sys.Failback(p)
		if !errors.Is(err, ErrShardedFailback) {
			t.Errorf("Failback error = %v, want ErrShardedFailback", err)
			return
		}
		// The refusal left the world untouched: no reverse groups started,
		// alpha's journal attachments intact (failback would have dropped
		// them), and beta still drains new commits to a consistent backup.
		if len(sys.reverse) != 0 {
			t.Errorf("%d reverse groups started despite refusal", len(sys.reverse))
		}
		if sj, err := sys.Main.Array.ShardedJournal("jnl-backup-alpha-0"); err != nil {
			t.Errorf("alpha journal gone after refused failback: %v", err)
		} else if len(sj.Members()) != 2 {
			t.Errorf("alpha journal members = %d, want 2", len(sj.Members()))
		}
		if err := bpB.Shop.Run(p, 4); err != nil {
			t.Error(err)
			return
		}
		if !sys.CatchUp(p, "beta") {
			t.Error("beta no longer drains after refused failback")
		}
		if g := sys.Groups("beta")[0]; g.Stopped() || g.Backlog() != 0 {
			t.Errorf("beta group unhealthy: stopped=%v backlog=%d", g.Stopped(), g.Backlog())
		}
		if _, err := sys.SnapshotBackup(p, "beta", "post-refusal"); err != nil {
			t.Errorf("beta snapshot after refusal: %v", err)
		}
	})
}

// TestUpdateTenantSpecUnchangedWritesNothing pins UpdateTenantSpec's quiet
// path: a mutation that changes nothing must not bump the object version.
func TestUpdateTenantSpecUnchangedWritesNothing(t *testing.T) {
	runSystem(t, Config{}, func(p *sim.Proc, sys *System) {
		if _, err := sys.ProvisionTenant(p, tenantSpec("shop")); err != nil {
			t.Errorf("provision: %v", err)
			return
		}
		obj, err := sys.Main.API.Get(p, tenantKey("shop"))
		if err != nil {
			t.Error(err)
			return
		}
		before := obj.GetMeta().ResourceVersion
		if err := sys.UpdateTenantSpec(p, "shop", func(s *platform.TenantSpec) {}); err != nil {
			t.Error(err)
			return
		}
		obj, err = sys.Main.API.Get(p, tenantKey("shop"))
		if err != nil {
			t.Error(err)
			return
		}
		if got := obj.GetMeta().ResourceVersion; got != before {
			t.Errorf("no-op spec update bumped version %d -> %d", before, got)
		}
	})
}

// TestReshardTenantRefusesImpossibleStates pins the fast-fail contract:
// per-volume replication and failed-over groups can never reshard, so the
// request returns the typed ErrNotReshardable immediately instead of
// dressing a permanent condition up as a timeout.
func TestReshardTenantRefusesImpossibleStates(t *testing.T) {
	// Per-volume mode (the E6 no-CG ablation): no shard structure at all.
	runSystem(t, Config{ConsistencyGroup: Bool(false)}, func(p *sim.Proc, sys *System) {
		if _, err := sys.ProvisionTenant(p, tenantSpec("shop")); err != nil {
			t.Errorf("provision: %v", err)
			return
		}
		start := p.Now()
		err := sys.ReshardTenant(p, "shop", 4)
		if !errors.Is(err, ErrNotReshardable) {
			t.Errorf("per-volume reshard error = %v, want ErrNotReshardable", err)
		}
		if p.Now()-start >= sys.provisionTimeout() {
			t.Error("per-volume refusal burned the timeout instead of failing fast")
		}
	})
	// Failed-over group: the drain is gone; nothing to migrate under.
	runSystem(t, Config{JournalShards: 2}, func(p *sim.Proc, sys *System) {
		if _, err := sys.ProvisionTenant(p, tenantSpec("shop")); err != nil {
			t.Errorf("provision: %v", err)
			return
		}
		if _, err := sys.Failover(p, "shop"); err != nil {
			t.Errorf("failover: %v", err)
			return
		}
		start := p.Now()
		err := sys.ReshardTenant(p, "shop", 4)
		if !errors.Is(err, ErrNotReshardable) {
			t.Errorf("failed-over reshard error = %v, want ErrNotReshardable", err)
		}
		if p.Now()-start >= sys.provisionTimeout() {
			t.Error("failed-over refusal burned the timeout instead of failing fast")
		}
	})
}

// TestReshardTenantRefusesNoBackupAndSingleVolumeMode covers the remaining
// permanent states: a tenant without backup has no replication to reshape,
// and a single-claim tenant in per-volume mode has one engine but still no
// shard structure (the RG spec, not the engine count, carries that fact).
func TestReshardTenantRefusesNoBackupAndSingleVolumeMode(t *testing.T) {
	runSystem(t, Config{}, func(p *sim.Proc, sys *System) {
		spec := tenantSpec("shop")
		spec.Backup = false
		if _, err := sys.ProvisionTenant(p, spec); err != nil {
			t.Errorf("provision: %v", err)
			return
		}
		start := p.Now()
		if err := sys.ReshardTenant(p, "shop", 4); !errors.Is(err, ErrNotReshardable) {
			t.Errorf("no-backup reshard error = %v, want ErrNotReshardable", err)
		}
		if p.Now()-start >= sys.provisionTimeout() {
			t.Error("no-backup refusal burned the timeout")
		}
	})
	runSystem(t, Config{ConsistencyGroup: Bool(false)}, func(p *sim.Proc, sys *System) {
		spec := platform.TenantSpec{Namespace: "solo", PVCNames: []string{"data"}, Backup: true, Profile: "data-only"}
		if _, err := sys.ProvisionTenant(p, spec); err != nil {
			t.Errorf("provision: %v", err)
			return
		}
		if gs := sys.Groups("solo"); len(gs) != 1 {
			t.Errorf("fixture degenerate: %d engines, want exactly 1", len(gs))
			return
		}
		start := p.Now()
		if err := sys.ReshardTenant(p, "solo", 4); !errors.Is(err, ErrNotReshardable) {
			t.Errorf("single-volume per-volume-mode reshard error = %v, want ErrNotReshardable", err)
		}
		if p.Now()-start >= sys.provisionTimeout() {
			t.Error("per-volume single-engine refusal burned the timeout")
		}
	})
}
