package core

import (
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/consistency"
	"repro/internal/csiplugin"
	"repro/internal/netlink"
	"repro/internal/platform"
	"repro/internal/sim"
)

// netlinkConfig shortens fixture helpers below.
type netlinkConfig = netlink.Config

// deploySystem builds a system, deploys the shop namespace, and runs fn in
// a simulation process with everything ready.
func deploySystem(t *testing.T, cfg Config, fn func(p *sim.Proc, sys *System, bp *BusinessProcess)) *System {
	t.Helper()
	sys := NewSystem(cfg)
	failed := false
	sys.Env.Process("test", func(p *sim.Proc) {
		defer func() {
			if r := recover(); r != nil {
				failed = true
				t.Errorf("panic: %v", r)
			}
		}()
		bp, err := sys.DeployBusinessProcess(p, "shop")
		if err != nil {
			failed = true
			t.Errorf("deploy: %v", err)
			return
		}
		fn(p, sys, bp)
	})
	sys.Env.Run(2 * time.Hour)
	if failed {
		t.FailNow()
	}
	return sys
}

func TestDeployBusinessProcess(t *testing.T) {
	deploySystem(t, Config{}, func(p *sim.Proc, sys *System, bp *BusinessProcess) {
		if bp.Sales == nil || bp.Stock == nil || bp.Shop == nil {
			t.Error("incomplete business process")
		}
		if _, err := sys.Main.Array.Volume(csiplugin.VolumeIDForClaim("shop", "sales")); err != nil {
			t.Errorf("sales volume: %v", err)
		}
		if _, err := bp.Shop.PlaceOrder(p); err != nil {
			t.Errorf("order: %v", err)
		}
	})
}

func TestEnableBackupConfiguresReplication(t *testing.T) {
	deploySystem(t, Config{}, func(p *sim.Proc, sys *System, bp *BusinessProcess) {
		if err := sys.EnableBackup(p, "shop"); err != nil {
			t.Errorf("enable backup: %v", err)
			return
		}
		groups := sys.Groups("shop")
		if len(groups) != 1 {
			t.Errorf("groups = %d, want 1 (consistency group)", len(groups))
			return
		}
		if got := len(groups[0].Members()); got != 2 {
			t.Errorf("journal members = %d", got)
		}
		// Backup PVCs appeared (Fig. 4).
		if got := len(sys.Backup.API.List(p, platform.KindPVC, "shop")); got != 2 {
			t.Errorf("backup PVCs = %d", got)
		}
	})
}

func TestEndToEndPipeline(t *testing.T) {
	// The full Fig. 1 pipeline: orders flow, replication drains, a snapshot
	// group is cut at the backup site, analytics read it, and the numbers
	// agree with the main site.
	deploySystem(t, Config{}, func(p *sim.Proc, sys *System, bp *BusinessProcess) {
		if err := sys.EnableBackup(p, "shop"); err != nil {
			t.Error(err)
			return
		}
		if err := bp.Shop.Run(p, 40); err != nil {
			t.Error(err)
			return
		}
		if !sys.CatchUp(p, "shop") {
			t.Error("catch-up failed")
			return
		}
		group, err := sys.SnapshotBackup(p, "shop", "analytics-1")
		if err != nil {
			t.Error(err)
			return
		}
		salesView, stockView, err := sys.AnalyticsDBs(p, "shop", group)
		if err != nil {
			t.Error(err)
			return
		}
		sales, err := analytics.Sales(p, salesView)
		if err != nil {
			t.Error(err)
			return
		}
		if sales.Orders != 40 {
			t.Errorf("analytics sees %d orders, want 40", sales.Orders)
		}
		join, err := analytics.Join(p, salesView, stockView)
		if err != nil {
			t.Error(err)
			return
		}
		if join.Unmatched != 0 {
			t.Errorf("analytics join: %d unmatched stock rows on consistent snapshot", join.Unmatched)
		}
		// Consistency verification against ground truth.
		rep := consistency.Verify(salesView, stockView, bp.Shop.SalesCommitOrder(), bp.Shop.StockCommitOrder())
		if rep.Collapsed() || !rep.OrderingOK() {
			t.Errorf("snapshot inconsistent: %v", rep)
		}
	})
}

func TestAnalyticsWhileReplicationContinues(t *testing.T) {
	// Step 3's point: analytics on the snapshot does not disturb ongoing
	// replication, and the snapshot stays frozen while new orders flow.
	deploySystem(t, Config{}, func(p *sim.Proc, sys *System, bp *BusinessProcess) {
		if err := sys.EnableBackup(p, "shop"); err != nil {
			t.Error(err)
			return
		}
		bp.Shop.Run(p, 20)
		sys.CatchUp(p, "shop")
		group, err := sys.SnapshotBackup(p, "shop", "snap")
		if err != nil {
			t.Error(err)
			return
		}
		// More orders after the snapshot.
		bp.Shop.Run(p, 15)
		sys.CatchUp(p, "shop")
		salesView, _, err := sys.AnalyticsDBs(p, "shop", group)
		if err != nil {
			t.Error(err)
			return
		}
		rep, _ := analytics.Sales(p, salesView)
		if rep.Orders != 20 {
			t.Errorf("snapshot sees %d orders, want frozen 20", rep.Orders)
		}
		if sys.RPO("shop") != 0 {
			t.Errorf("RPO after catch-up = %v", sys.RPO("shop"))
		}
	})
}

func TestFailoverRecoversConsistently(t *testing.T) {
	deploySystem(t, Config{}, func(p *sim.Proc, sys *System, bp *BusinessProcess) {
		if err := sys.EnableBackup(p, "shop"); err != nil {
			t.Error(err)
			return
		}
		bp.Shop.Run(p, 30)
		sys.CatchUp(p, "shop")
		res, err := sys.Failover(p, "shop")
		if err != nil {
			t.Errorf("failover: %v", err)
			return
		}
		if res.RecoveryTime <= 0 {
			t.Error("recovery consumed no time")
		}
		rep := consistency.Verify(res.Sales, res.Stock, bp.Shop.SalesCommitOrder(), bp.Shop.StockCommitOrder())
		if rep.Collapsed() {
			t.Errorf("caught-up failover collapsed: %v", rep)
		}
		if rep.SalesTxns != 30 || rep.StockTxns != 30 {
			t.Errorf("recovered %d/%d txns, want 30/30", rep.SalesTxns, rep.StockTxns)
		}
		// The recovered site accepts new business.
		shop2 := bp.Shop
		_ = shop2
		tx := res.Sales.Begin()
		tx.Put(9999, []byte("post-failover"))
		if err := tx.Commit(p); err != nil {
			t.Errorf("post-failover commit: %v", err)
		}
	})
}

func TestFailoverMidStreamStaysConsistentWithCG(t *testing.T) {
	// Disaster strikes while the journal still has a backlog. With a
	// consistency group the recovered pair must never be collapsed — only
	// behind.
	deploySystem(t, Config{Link: linkSlow()}, func(p *sim.Proc, sys *System, bp *BusinessProcess) {
		if err := sys.EnableBackup(p, "shop"); err != nil {
			t.Error(err)
			return
		}
		bp.Shop.Run(p, 50)
		// No catch-up: fail over with backlog in flight.
		res, err := sys.Failover(p, "shop")
		if err != nil {
			t.Error(err)
			return
		}
		rep := consistency.Verify(res.Sales, res.Stock, bp.Shop.SalesCommitOrder(), bp.Shop.StockCommitOrder())
		if rep.Collapsed() {
			t.Errorf("CG failover collapsed: %v", rep)
		}
		if !rep.OrderingOK() {
			t.Errorf("per-volume ordering broken: %v", rep)
		}
		if rep.SalesTxns == 50 && rep.StockTxns == 50 {
			t.Log("note: backlog empty at cut; loss scenario not exercised this seed")
		}
	})
}

func linkSlow() (c netlinkConfig) {
	c.Propagation = 20 * time.Millisecond
	c.BandwidthBps = 2e5
	return
}

func TestDisableBackupTearsDown(t *testing.T) {
	deploySystem(t, Config{}, func(p *sim.Proc, sys *System, bp *BusinessProcess) {
		if err := sys.EnableBackup(p, "shop"); err != nil {
			t.Error(err)
			return
		}
		if err := sys.DisableBackup(p, "shop"); err != nil {
			t.Error(err)
			return
		}
		// Give the operator + plugin time to reconcile the removal.
		deadline := p.Now() + 5*time.Second
		for len(sys.Groups("shop")) > 0 && p.Now() < deadline {
			p.Sleep(50 * time.Millisecond)
		}
		if got := len(sys.Groups("shop")); got != 0 {
			t.Errorf("groups after disable = %d", got)
		}
	})
}

func TestPerVolumeModeCreatesTwoGroups(t *testing.T) {
	deploySystem(t, Config{ConsistencyGroup: Bool(false)}, func(p *sim.Proc, sys *System, bp *BusinessProcess) {
		if err := sys.EnableBackup(p, "shop"); err != nil {
			t.Error(err)
			return
		}
		if got := len(sys.Groups("shop")); got != 2 {
			t.Errorf("groups = %d, want 2 in per-volume mode", got)
		}
	})
}

func TestSnapshotViaFeatureGate(t *testing.T) {
	deploySystem(t, Config{FeatureGates: featureGatesOn()}, func(p *sim.Proc, sys *System, bp *BusinessProcess) {
		if err := sys.EnableBackup(p, "shop"); err != nil {
			t.Error(err)
			return
		}
		bp.Shop.Run(p, 5)
		sys.CatchUp(p, "shop")
		group, err := sys.SnapshotBackup(p, "shop", "via-csi")
		if err != nil {
			t.Errorf("gated snapshot: %v", err)
			return
		}
		if len(group.Snapshots()) != 2 {
			t.Errorf("group members = %d", len(group.Snapshots()))
		}
		// The CR exists on the backup platform.
		if _, err := sys.Backup.API.Get(p, platform.ObjectKey{
			Kind: platform.KindVolumeGroupSnapshot, Namespace: "shop", Name: "via-csi",
		}); err != nil {
			t.Errorf("CR missing: %v", err)
		}
	})
}

func featureGatesOn() (g csiplugin.FeatureGates) { g.VolumeGroupSnapshot = true; return }

func TestSlowdownADCWriteLatencyIndependentOfLink(t *testing.T) {
	// Core-level E5 sanity: per-order latency with backup enabled over a
	// 100ms-RTT link stays near the no-backup latency.
	orderLatency := func(enable bool) time.Duration {
		var mean time.Duration
		deploySystem(t, Config{Link: linkFat()}, func(p *sim.Proc, sys *System, bp *BusinessProcess) {
			if enable {
				if err := sys.EnableBackup(p, "shop"); err != nil {
					t.Error(err)
					return
				}
			}
			bp.Shop.Run(p, 30)
			mean = bp.Shop.Latency.Mean()
		})
		return mean
	}
	without, with := orderLatency(false), orderLatency(true)
	// Journaling adds small fixed cost; the 50ms propagation must not show.
	if with > without+5*time.Millisecond {
		t.Fatalf("ADC slowed orders: %v -> %v", without, with)
	}
}

func linkFat() (c netlinkConfig) {
	c.Propagation = 50 * time.Millisecond
	c.BandwidthBps = 1e9
	return
}
