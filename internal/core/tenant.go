// Tenant lifecycle: the declarative provisioning surface of the system.
//
// A tenant is declared as a platform.Tenant object (namespace, claims, QoS
// class, journal shards, backup on/off). The tenant controller — built on
// the same controller runtime as the operator and the CSI plugins —
// reconciles spec to world: it creates the namespace and claims, registers
// the tenant's fabric QoS classes, and threads the backup tag (plus the
// per-tenant shard-count label) to the namespace so the operator and the
// replication plugin do the rest. Deleting the Tenant object reconciles the
// other way: the namespace goes, the operator removes the ReplicationGroup,
// the replication plugin detaches and deletes the journal (or its shards),
// the provisioner unwinds claim volumes, and this controller reclaims the
// backup-site twins — until both arrays report zero residue for the tenant.
//
// ProvisionTenant and DecommissionTenant are the client calls: submit the
// spec (or its deletion) and wait for the controller to converge. The
// one-shot constructors in core.go (DeployBusinessProcess, EnableBackup,
// DisableBackup) are thin wrappers over the same path.
package core

import (
	"errors"
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"time"

	"repro/internal/csiplugin"
	"repro/internal/operator"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/workload"
)

// tenantKey names the cluster-scoped Tenant object for a namespace.
func tenantKey(namespace string) platform.ObjectKey {
	return platform.ObjectKey{Kind: platform.KindTenant, Name: namespace}
}

// newTenantControllers builds the tenant controller set: the Tenant watch
// plus ReplicationGroup/PVC/Namespace watches mapped back to tenant keys so
// status converges on events instead of polling. The map functions filter
// on the managed-tenant set, so namespaces provisioned imperatively (the
// pre-declarative experiment paths) never cost a reconcile.
func (sys *System) newTenantControllers() []*platform.Controller {
	rec := platform.ReconcilerFunc(sys.reconcileTenant)
	managedKey := func(ns string) []platform.ObjectKey {
		if !sys.managedTenants[ns] {
			return nil
		}
		return []platform.ObjectKey{tenantKey(ns)}
	}
	cc := platform.ControllerConfig{Telemetry: sys.Telemetry}
	return []*platform.Controller{
		platform.NewController(sys.Env, sys.Main.API, "tenant-controller",
			platform.KindTenant, nil, rec, cc),
		platform.NewController(sys.Env, sys.Main.API, "tenant-controller-rg",
			platform.KindReplicationGroup, func(ev platform.Event) []platform.ObjectKey {
				ns, ok := operator.NamespaceOfGroup(ev.Object.GetMeta().Name)
				if !ok {
					return nil
				}
				return managedKey(ns)
			}, rec, cc),
		platform.NewController(sys.Env, sys.Main.API, "tenant-controller-pvc",
			platform.KindPVC, func(ev platform.Event) []platform.ObjectKey {
				return managedKey(ev.Object.GetMeta().Namespace)
			}, rec, cc),
		platform.NewController(sys.Env, sys.Main.API, "tenant-controller-ns",
			platform.KindNamespace, func(ev platform.Event) []platform.ObjectKey {
				return managedKey(ev.Object.GetMeta().Name)
			}, rec, cc),
	}
}

// reconcileTenant is the level-triggered spec→world hook. It is idempotent:
// every step checks before it creates, and a deleted spec converges to a
// full teardown no matter how far provisioning had progressed.
func (sys *System) reconcileTenant(p *sim.Proc, key platform.ObjectKey) error {
	obj, err := sys.Main.API.Get(p, key)
	if errors.Is(err, platform.ErrNotFound) {
		if !sys.managedTenants[key.Name] {
			return nil // never ours: an event for an imperative namespace
		}
		return sys.teardownTenant(p, key.Name)
	}
	if err != nil {
		return err
	}
	tn := obj.(*platform.Tenant)
	ns := tn.Spec.Namespace
	if ns == "" {
		ns = tn.Name
	}
	if ns != tn.Name {
		return sys.setTenantStatus(p, tn, platform.TenantFailed,
			fmt.Sprintf("spec namespace %q does not match object name %q", ns, tn.Name))
	}
	// Mark managed before touching the world so a spec deleted mid-reconcile
	// still converges to teardown of whatever was already created.
	sys.managedTenants[ns] = true
	// Register the tenant's fabric QoS before any drain path exists for the
	// namespace, so the replication plugin's first PathFor lands in class.
	// An SLO class supplies the fabric class when the spec pins none.
	qos := tn.Spec.QoSClass
	if qos == "" && tn.Spec.SLOClass != "" {
		if sc, ok := sys.sloClasses[tn.Spec.SLOClass]; ok {
			qos = sc.FabricClass
		}
	}
	sys.setTenantClasses(ns, qos, tn.Spec.LaneClasses)

	// Namespace.
	nsKey := platform.ObjectKey{Kind: platform.KindNamespace, Name: ns}
	nsObj, err := sys.Main.API.Get(p, nsKey)
	if errors.Is(err, platform.ErrNotFound) {
		if err := sys.Main.API.Create(p, &platform.Namespace{
			Meta: platform.Meta{Kind: platform.KindNamespace, Name: ns},
		}); err != nil && !errors.Is(err, platform.ErrExists) {
			return err
		}
		nsObj, err = sys.Main.API.Get(p, nsKey)
	}
	if err != nil {
		return err
	}
	nsCur := nsObj.(*platform.Namespace)

	// Claims (created before the backup tag so the operator never sees a
	// tagged-but-empty namespace).
	blocks := tn.Spec.VolumeBlocks
	if blocks <= 0 {
		blocks = sys.Cfg.VolumeBlocks
	}
	for _, claim := range tn.Spec.PVCNames {
		ck := platform.ObjectKey{Kind: platform.KindPVC, Namespace: ns, Name: claim}
		if _, err := sys.Main.API.Get(p, ck); errors.Is(err, platform.ErrNotFound) {
			if err := sys.Main.API.Create(p, &platform.PersistentVolumeClaim{
				Meta: platform.Meta{Kind: platform.KindPVC, Namespace: ns, Name: claim},
				Spec: platform.PVCSpec{StorageClassName: StorageClassName, SizeBlocks: blocks},
			}); err != nil && !errors.Is(err, platform.ErrExists) {
				return err
			}
		} else if err != nil {
			return err
		}
	}

	// Labels: the backup tag and the per-tenant shard-count override.
	if sys.reconcileTenantLabels(nsCur, tn.Spec) {
		if err := sys.Main.API.Update(p, nsCur); err != nil {
			return err // conflict: retry with the fresh version
		}
	}

	// Status.
	phase, msg, err := sys.tenantPhase(p, ns, tn.Spec)
	if err != nil {
		return err
	}
	return sys.setTenantStatus(p, tn, phase, msg)
}

// reconcileTenantLabels brings the namespace's controller-owned labels in
// line with the spec, reporting whether anything changed. User labels are
// left alone.
func (sys *System) reconcileTenantLabels(ns *platform.Namespace, spec platform.TenantSpec) bool {
	if ns.Labels == nil {
		ns.Labels = map[string]string{}
	}
	changed := false
	if spec.Backup && ns.Labels[operator.Tag] != operator.TagValue {
		ns.Labels[operator.Tag] = operator.TagValue
		changed = true
	}
	if !spec.Backup {
		if _, ok := ns.Labels[operator.Tag]; ok {
			delete(ns.Labels, operator.Tag)
			changed = true
		}
	}
	wantShards := ""
	if spec.JournalShards > 0 {
		wantShards = strconv.Itoa(spec.JournalShards)
	}
	if got := ns.Labels[operator.ShardsLabel]; got != wantShards {
		if wantShards == "" {
			delete(ns.Labels, operator.ShardsLabel)
		} else {
			ns.Labels[operator.ShardsLabel] = wantShards
		}
		changed = true
	}
	return changed
}

// tenantPhase computes the tenant's current phase: with Backup, the
// replication group's phase decides; without, every spec'd claim must be
// bound.
func (sys *System) tenantPhase(p *sim.Proc, ns string, spec platform.TenantSpec) (platform.TenantPhase, string, error) {
	if spec.Backup {
		rgKey := platform.ObjectKey{Kind: platform.KindReplicationGroup, Name: operator.GroupNameFor(ns)}
		obj, err := sys.Main.API.Get(p, rgKey)
		if errors.Is(err, platform.ErrNotFound) {
			return platform.TenantProvisioning, "waiting for the operator to create the replication group", nil
		}
		if err != nil {
			return "", "", err
		}
		switch rg := obj.(*platform.ReplicationGroup); rg.Status.Phase {
		case platform.GroupReady:
			return platform.TenantReady, "replication running", nil
		case platform.GroupFailed:
			return platform.TenantFailed, "replication group failed: " + rg.Status.Message, nil
		default:
			return platform.TenantProvisioning, "replication " + string(rg.Status.Phase), nil
		}
	}
	for _, claim := range spec.PVCNames {
		ck := platform.ObjectKey{Kind: platform.KindPVC, Namespace: ns, Name: claim}
		obj, err := sys.Main.API.Get(p, ck)
		if errors.Is(err, platform.ErrNotFound) {
			return platform.TenantProvisioning, "claim " + claim + " not created", nil
		}
		if err != nil {
			return "", "", err
		}
		if obj.(*platform.PersistentVolumeClaim).Status.Phase != platform.ClaimBound {
			return platform.TenantProvisioning, "claim " + claim + " not bound", nil
		}
	}
	return platform.TenantReady, "provisioned", nil
}

// setTenantStatus patches the Tenant status if it changed, tolerating
// conflicts (re-read and retry) and a concurrent delete (the Deleted event
// requeues into teardown).
func (sys *System) setTenantStatus(p *sim.Proc, tn *platform.Tenant, phase platform.TenantPhase, msg string) error {
	for {
		obj, err := sys.Main.API.Get(p, tn.Key())
		if errors.Is(err, platform.ErrNotFound) {
			return nil
		}
		if err != nil {
			return err
		}
		cur := obj.(*platform.Tenant)
		if cur.Status.Phase == phase && cur.Status.Message == msg {
			return nil
		}
		cur.Status.Phase = phase
		cur.Status.Message = msg
		if phase == platform.TenantReady && cur.Status.ReadyAt == 0 {
			cur.Status.ReadyAt = sys.Env.Now()
		}
		err = sys.Main.API.Update(p, cur)
		if errors.Is(err, platform.ErrConflict) {
			continue
		}
		return err
	}
}

// teardownTenant converges a deleted Tenant spec to zero residue. Each call
// makes progress and returns an error while downstream controllers (the
// operator's group removal, the replication plugin's journal teardown, the
// provisioner's volume unwind) still have work in flight; the controller's
// backoff retries until both arrays are clean.
func (sys *System) teardownTenant(p *sim.Proc, ns string) error {
	if !sys.managedTenants[ns] {
		return nil // another reconcile already finished the teardown
	}
	api := sys.Main.API
	// 1. The namespace: deleting it makes the operator remove the
	// ReplicationGroup, which makes the replication plugin stop the engines
	// and delete + detach the journal (or all of its shards).
	nsKey := platform.ObjectKey{Kind: platform.KindNamespace, Name: ns}
	if _, err := api.Get(p, nsKey); err == nil {
		if err := api.Delete(p, nsKey); err != nil && !errors.Is(err, platform.ErrNotFound) {
			return err
		}
	} else if !errors.Is(err, platform.ErrNotFound) {
		return err
	}
	groupName := operator.GroupNameFor(ns)
	rgKey := platform.ObjectKey{Kind: platform.KindReplicationGroup, Name: groupName}
	if _, err := api.Get(p, rgKey); err == nil {
		return fmt.Errorf("core: decommission %s: replication group still present", ns)
	} else if !errors.Is(err, platform.ErrNotFound) {
		return err
	}
	if n := len(sys.Replication.Groups(groupName)); n > 0 {
		return fmt.Errorf("core: decommission %s: %d replication engines still running", ns, n)
	}
	// 2. Main-site claims: deleting the PVC objects has the provisioner
	// unwind each bound PV and array volume (now detachable — the journal
	// teardown above released them).
	for _, obj := range api.List(p, platform.KindPVC, ns) {
		if err := api.Delete(p, obj.GetMeta().Key()); err != nil && !errors.Is(err, platform.ErrNotFound) {
			return err
		}
	}
	// 3. Backup-site twins: no provisioner owns them, so the objects,
	// snapshots, and volumes are reclaimed here.
	bapi := sys.Backup.API
	for _, kind := range []platform.Kind{platform.KindVolumeSnapshot, platform.KindVolumeGroupSnapshot} {
		for _, obj := range bapi.List(p, kind, ns) {
			if err := bapi.Delete(p, obj.GetMeta().Key()); err != nil && !errors.Is(err, platform.ErrNotFound) {
				return err
			}
		}
	}
	for _, obj := range bapi.List(p, platform.KindPVC, ns) {
		claim := obj.GetMeta().Name
		if err := bapi.Delete(p, obj.GetMeta().Key()); err != nil && !errors.Is(err, platform.ErrNotFound) {
			return err
		}
		pvKey := platform.ObjectKey{Kind: platform.KindPV, Name: csiplugin.PVNameForClaim(ns, claim)}
		if err := bapi.Delete(p, pvKey); err != nil && !errors.Is(err, platform.ErrNotFound) {
			return err
		}
		volID := csiplugin.VolumeIDForClaim(ns, claim)
		if _, err := sys.Backup.Array.Volume(volID); err == nil {
			if err := sys.Backup.Array.DeleteVolumeSnapshots(volID); err != nil {
				return err
			}
			if err := sys.Backup.Array.DeleteVolume(volID); err != nil {
				return err
			}
		}
	}
	// 4. The free-list invariant: nothing of the tenant may remain on either
	// array. The provisioner's unwind is asynchronous, so residue here just
	// means "retry shortly".
	if res := sys.TenantResidue(ns); len(res) > 0 {
		return fmt.Errorf("core: decommission %s: residue remains: %s", ns, strings.Join(res, "; "))
	}
	// 5. Reclaim the per-tenant bookkeeping. Four controllers can funnel the
	// same key here concurrently; every API call above yields, so re-check
	// the managed flag on this (yield-free) tail — exactly one reconcile
	// completes the decommission.
	if !sys.managedTenants[ns] {
		return nil
	}
	delete(sys.paths, ns)
	delete(sys.revPaths, ns)
	delete(sys.lanePaths, ns)
	delete(sys.tenantClass, ns)
	delete(sys.tenantLaneClasses, ns)
	delete(sys.managedTenants, ns)
	sys.decommissioned++
	return nil
}

// setTenantClasses records (or clears) the tenant's fabric QoS bindings.
func (sys *System) setTenantClasses(ns, class string, lanes []string) {
	if class != "" {
		sys.tenantClass[ns] = class
	} else {
		delete(sys.tenantClass, ns)
	}
	if len(lanes) > 0 {
		sys.tenantLaneClasses[ns] = append([]string(nil), lanes...)
	} else {
		delete(sys.tenantLaneClasses, ns)
	}
}

// Decommissioned returns how many tenants reached zero residue after their
// spec was deleted.
func (sys *System) Decommissioned() int64 { return sys.decommissioned }

// TenantResidue lists everything of the tenant still allocated on either
// array (volumes, journals or shards, snapshots, snapshot groups) plus any
// replication engine still registered — empty exactly when the tenant's
// capacity is fully back on the free lists.
//
// Attribution is by ID prefix ("pvc-<ns>-", "jnl-backup-<ns>-"), so a
// namespace that EXTENDS this one ("shop-2" vs "shop") would match too;
// anything attributable to such a longer known namespace — managed or
// imperative — is excluded, otherwise decommissioning "shop" could wait
// forever on "shop-2"'s healthy volumes.
func (sys *System) TenantResidue(namespace string) []string {
	known := make(map[string]bool, len(sys.managedTenants))
	for ns := range sys.managedTenants {
		known[ns] = true
	}
	for _, ns := range sys.Main.API.Names(platform.KindNamespace) {
		known[ns] = true
	}
	var longer []string
	for ns := range known {
		if ns != namespace && strings.HasPrefix(ns, namespace) {
			longer = append(longer,
				string(csiplugin.VolumeIDForClaim(ns, "")),
				"jnl-"+operator.GroupNameFor(ns)+"-")
		}
	}
	othersOwn := func(entry string) bool {
		for _, p := range longer {
			if strings.Contains(entry, p) {
				return true
			}
		}
		return false
	}
	var out []string
	volPrefix := string(csiplugin.VolumeIDForClaim(namespace, ""))
	jnlPrefix := "jnl-" + operator.GroupNameFor(namespace) + "-"
	for _, a := range []*storage.Array{sys.Main.Array, sys.Backup.Array} {
		for _, prefix := range []string{volPrefix, jnlPrefix} {
			for _, r := range a.Residue(prefix) {
				if othersOwn(r) {
					continue
				}
				out = append(out, a.Name()+": "+r)
			}
		}
	}
	for _, g := range sys.Replication.Groups(operator.GroupNameFor(namespace)) {
		out = append(out, "replication engine "+g.Name())
	}
	return out
}

// ProvisionTenant submits a tenant spec and waits for the controller to
// reconcile it to Ready — namespace, bound claims, and (with spec.Backup)
// a running consistency-group replication including the initial copy — all
// while other tenants keep serving load. For an OLTP-profile spec whose
// claims include the business-process pair (sales + stock), the databases
// are opened and a shop workload attached, so the returned BusinessProcess
// is a drop-in for the imperative constructor's; a "data-only" profile
// leaves the claims as raw replicated volumes.
func (sys *System) ProvisionTenant(p *sim.Proc, spec platform.TenantSpec) (*BusinessProcess, error) {
	ns := spec.Namespace
	if ns == "" {
		return nil, fmt.Errorf("core: tenant spec needs a namespace")
	}
	if err := sys.Main.API.Create(p, &platform.Tenant{
		Meta:   platform.Meta{Kind: platform.KindTenant, Name: ns},
		Spec:   spec,
		Status: platform.TenantStatus{Phase: platform.TenantPending, Message: "spec accepted"},
	}); err != nil {
		return nil, err
	}
	if err := sys.WaitTenantReady(p, ns, sys.provisionTimeout()); err != nil {
		return nil, err
	}
	bp := &BusinessProcess{Namespace: ns, PVCNames: append([]string(nil), spec.PVCNames...)}
	hasClaim := func(name string) bool {
		for _, c := range spec.PVCNames {
			if c == name {
				return true
			}
		}
		return false
	}
	if spec.Profile != "data-only" && hasClaim("sales") && hasClaim("stock") {
		var err error
		if bp.Sales, err = sys.openDB(p, ns, "sales"); err != nil {
			return nil, err
		}
		if bp.Stock, err = sys.openDB(p, ns, "stock"); err != nil {
			return nil, err
		}
		// "oltp-external" leaves the workload to the caller — no throwaway
		// default shop (the fleet seeds one per tenant).
		if spec.Profile == "" || spec.Profile == "oltp" {
			bp.Shop = workload.NewShop(sys.Env, bp.Sales, bp.Stock, workload.Config{Seed: sys.Cfg.Seed})
		}
	}
	return bp, nil
}

// UpdateTenantSpec mutates a tenant's declared spec in place, retrying
// version conflicts (the tenant controller updates the same object's status
// concurrently). A mutation that leaves the spec unchanged performs no API
// write at all — spec updates are only as loud as the drift they declare.
// The controller chain then reconciles the world to the new spec; block on
// the outcome with WaitTenantCondition. It is the read-modify-write
// primitive under ApplyTenant — reach for it when the caller must not
// clobber spec fields it does not own.
func (sys *System) UpdateTenantSpec(p *sim.Proc, namespace string, mutate func(*platform.TenantSpec)) error {
	for {
		obj, err := sys.Main.API.Get(p, tenantKey(namespace))
		if err != nil {
			return err
		}
		tn := obj.(*platform.Tenant)
		next := tn.DeepCopy().(*platform.Tenant)
		mutate(&next.Spec)
		if reflect.DeepEqual(tn.Spec, next.Spec) {
			return nil
		}
		err = sys.Main.API.Update(p, next)
		if errors.Is(err, platform.ErrConflict) {
			continue
		}
		return err
	}
}

// ErrNotReshardable reports a reshard request against replication that can
// structurally never reconfigure its lanes: per-volume (non-consistency-
// group) engines have no shard structure, and a failed-over or stopped
// group has no live drain to migrate under. The refusal is immediate —
// these states do not converge, so waiting a timeout out would just dress
// a permanent condition up as a transient one.
var ErrNotReshardable = errors.New("core: tenant replication cannot reshard")

// reshardable screens the namespace for the permanent can't-reshard states
// (nil for "possible or still transient"): no backup declared (nothing will
// ever drain), per-volume replication (no shard structure — detected from
// the engine count or, for a single-claim tenant, the RG spec), or an
// engine that already failed over or stopped.
func (sys *System) reshardable(p *sim.Proc, namespace string) error {
	obj, err := sys.Main.API.Get(p, tenantKey(namespace))
	if err != nil {
		return err
	}
	if !obj.(*platform.Tenant).Spec.Backup {
		return fmt.Errorf("%w: %s has backup disabled (no replication to reshard)", ErrNotReshardable, namespace)
	}
	rgKey := platform.ObjectKey{Kind: platform.KindReplicationGroup, Name: operator.GroupNameFor(namespace)}
	if obj, err := sys.Main.API.Get(p, rgKey); err == nil {
		if !obj.(*platform.ReplicationGroup).Spec.ConsistencyGroup {
			return fmt.Errorf("%w: %s replicates per-volume journals (no shard structure)", ErrNotReshardable, namespace)
		}
	} else if !errors.Is(err, platform.ErrNotFound) {
		return err
	}
	gs := sys.Groups(namespace)
	if len(gs) > 1 {
		return fmt.Errorf("%w: %s replicates per-volume journals (%d engines, no shard structure)",
			ErrNotReshardable, namespace, len(gs))
	}
	if len(gs) == 1 && (gs[0].FailedOver() || gs[0].Stopped()) {
		return fmt.Errorf("%w: %s engine %s is no longer draining", ErrNotReshardable, namespace, gs[0].Name())
	}
	return nil
}

// ReshardTenant declares a new journal shard count on the tenant's spec and
// waits for the resulting live reshard to settle: the spec change threads
// tenant controller → namespace ShardsLabel → operator → ReplicationGroup →
// replication plugin, which seals a migration barrier, re-places volumes,
// and reconfigures the drain lanes while replication keeps running. On
// return the engine drains `shards` lanes and the migration window is
// closed (pre-barrier records committed, retired shards reclaimed).
// Structurally impossible requests (per-volume replication, a failed-over
// group) refuse immediately with ErrNotReshardable instead of timing out.
//
// Deprecated: thin wrapper — declare Spec.JournalShards with ApplyTenant or
// UpdateTenantSpec and wait with CondResharded.
func (sys *System) ReshardTenant(p *sim.Proc, namespace string, shards int) error {
	if shards < 1 {
		return fmt.Errorf("core: reshard %s to %d shards", namespace, shards)
	}
	if err := sys.reshardable(p, namespace); err != nil {
		return err
	}
	if err := sys.UpdateTenantSpec(p, namespace, func(s *platform.TenantSpec) {
		s.JournalShards = shards
	}); err != nil {
		return err
	}
	return sys.WaitTenantCondition(p, namespace, CondResharded(shards), sys.provisionTimeout())
}

// WaitReshard blocks until the namespace's replication engine runs exactly
// `shards` drain lanes with no open migration window.
//
// Deprecated: thin wrapper over WaitTenantCondition with CondResharded.
func (sys *System) WaitReshard(p *sim.Proc, namespace string, shards int, timeout time.Duration) error {
	return sys.WaitTenantCondition(p, namespace, CondResharded(shards), timeout)
}

// WaitTenantReady blocks until the tenant's status reaches Ready (nil), or
// Failed / the timeout (error) — shorthand for WaitTenantCondition with
// CondReady.
func (sys *System) WaitTenantReady(p *sim.Proc, namespace string, timeout time.Duration) error {
	return sys.WaitTenantCondition(p, namespace, CondReady(), timeout)
}

// DecommissionTenant drains the tenant's replication, deletes its spec, and
// waits until the controller has detached the replication group and
// reclaimed every volume and journal shard back to the array free lists.
// Surviving tenants keep serving load throughout. Idempotent: a tenant
// already gone (or mid-teardown) just waits for zero residue.
func (sys *System) DecommissionTenant(p *sim.Proc, namespace string) error {
	if _, err := sys.Main.API.Get(p, tenantKey(namespace)); err == nil {
		// Drain first so the backup image is current when the group detaches
		// (a failed-over or stopped engine has nothing left to drain).
		for _, g := range sys.Groups(namespace) {
			if !g.FailedOver() && !g.Stopped() {
				g.CatchUp(p)
			}
		}
		if err := sys.Main.API.Delete(p, tenantKey(namespace)); err != nil && !errors.Is(err, platform.ErrNotFound) {
			return err
		}
	} else if !errors.Is(err, platform.ErrNotFound) {
		return err
	}
	return sys.WaitTenantCondition(p, namespace, CondGone(), sys.provisionTimeout())
}
