package netlink

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestTransferLatencyIsSerializationPlusPropagation(t *testing.T) {
	env := sim.NewEnv(1)
	l := New(env, Config{Propagation: 10 * time.Millisecond, BandwidthBps: 1000})
	var took time.Duration
	env.Process("tx", func(p *sim.Proc) {
		took = l.Transfer(p, 500) // 500B at 1000B/s = 500ms + 10ms prop
	})
	env.Run(0)
	want := 510 * time.Millisecond
	if took != want {
		t.Fatalf("transfer took %v, want %v", took, want)
	}
	if l.SentBytes() != 500 || l.Transfers() != 1 {
		t.Fatalf("stats: bytes=%d transfers=%d", l.SentBytes(), l.Transfers())
	}
}

func TestInfiniteBandwidth(t *testing.T) {
	env := sim.NewEnv(1)
	l := New(env, Config{Propagation: 3 * time.Millisecond})
	var took time.Duration
	env.Process("tx", func(p *sim.Proc) { took = l.Transfer(p, 1<<30) })
	env.Run(0)
	if took != 3*time.Millisecond {
		t.Fatalf("took %v, want pure propagation 3ms", took)
	}
}

func TestBandwidthContentionSerializes(t *testing.T) {
	env := sim.NewEnv(1)
	l := New(env, Config{Propagation: 0, BandwidthBps: 1000})
	var done []time.Duration
	for i := 0; i < 3; i++ {
		env.Process("tx", func(p *sim.Proc) {
			l.Transfer(p, 1000) // 1s serialization each
			done = append(done, p.Now())
		})
	}
	env.Run(0)
	if len(done) != 3 {
		t.Fatalf("completed %d transfers", len(done))
	}
	want := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completion times %v, want %v", done, want)
		}
	}
}

func TestPropagationPipelines(t *testing.T) {
	// With long propagation and short serialization, back-to-back transfers
	// overlap in flight: second completion is one serialization after the
	// first, not one full latency after.
	env := sim.NewEnv(1)
	l := New(env, Config{Propagation: 100 * time.Millisecond, BandwidthBps: 1e6})
	var done []time.Duration
	for i := 0; i < 2; i++ {
		env.Process("tx", func(p *sim.Proc) {
			l.Transfer(p, 1000) // 1ms serialization
			done = append(done, p.Now())
		})
	}
	env.Run(0)
	if done[0] != 101*time.Millisecond || done[1] != 102*time.Millisecond {
		t.Fatalf("completions %v, want [101ms 102ms]", done)
	}
}

func TestPartitionBlocksUntilHeal(t *testing.T) {
	env := sim.NewEnv(1)
	l := New(env, Config{Propagation: time.Millisecond})
	l.Partition()
	var took time.Duration
	env.Process("tx", func(p *sim.Proc) { took = l.Transfer(p, 10) })
	env.Process("op", func(p *sim.Proc) {
		p.Sleep(500 * time.Millisecond)
		l.Heal()
	})
	env.Run(0)
	if took != 501*time.Millisecond {
		t.Fatalf("took %v, want 501ms (500ms outage + 1ms prop)", took)
	}
}

func TestPartitionIdempotent(t *testing.T) {
	env := sim.NewEnv(1)
	l := New(env, Config{})
	l.Partition()
	l.Partition()
	if !l.Partitioned() {
		t.Fatal("not partitioned")
	}
	l.Heal()
	l.Heal()
	if l.Partitioned() {
		t.Fatal("still partitioned")
	}
}

func TestLossCausesRetransmit(t *testing.T) {
	env := sim.NewEnv(7)
	l := New(env, Config{
		Propagation:       time.Millisecond,
		LossProb:          0.5,
		RetransmitTimeout: 10 * time.Millisecond,
	})
	env.Process("tx", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			l.Transfer(p, 10)
		}
	})
	env.Run(0)
	if l.Retransmits() == 0 {
		t.Fatal("expected some retransmits at 50% loss")
	}
	if l.Transfers() != 200 {
		t.Fatalf("transfers = %d, want 200 (reliable delivery)", l.Transfers())
	}
}

func TestUtilization(t *testing.T) {
	env := sim.NewEnv(1)
	l := New(env, Config{BandwidthBps: 1000})
	env.Process("tx", func(p *sim.Proc) {
		l.Transfer(p, 500) // busy 500ms
		p.Sleep(500 * time.Millisecond)
	})
	end := env.Run(0)
	if u := l.Utilization(end); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
	if l.Utilization(0) != 0 {
		t.Fatal("utilization with zero elapsed should be 0")
	}
}

func TestPairRTTAndPartition(t *testing.T) {
	env := sim.NewEnv(1)
	pr := NewPair(env, Config{Propagation: 5 * time.Millisecond})
	if pr.RTT() != 10*time.Millisecond {
		t.Fatalf("rtt = %v", pr.RTT())
	}
	pr.Partition()
	if !pr.Forward.Partitioned() || !pr.Reverse.Partitioned() {
		t.Fatal("pair partition incomplete")
	}
	pr.Heal()
	if pr.Forward.Partitioned() || pr.Reverse.Partitioned() {
		t.Fatal("pair heal incomplete")
	}
}

func TestDeterministicJitter(t *testing.T) {
	run := func() time.Duration {
		env := sim.NewEnv(42)
		l := New(env, Config{Propagation: time.Millisecond, Jitter: time.Millisecond})
		var total time.Duration
		env.Process("tx", func(p *sim.Proc) {
			for i := 0; i < 50; i++ {
				total += l.Transfer(p, 1)
			}
		})
		env.Run(0)
		return total
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("jittered runs diverged: %v vs %v", a, b)
	}
}
