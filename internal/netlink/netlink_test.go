package netlink

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestTransferLatencyIsSerializationPlusPropagation(t *testing.T) {
	env := sim.NewEnv(1)
	l := New(env, Config{Propagation: 10 * time.Millisecond, BandwidthBps: 1000})
	var took time.Duration
	env.Process("tx", func(p *sim.Proc) {
		took = l.Transfer(p, 500) // 500B at 1000B/s = 500ms + 10ms prop
	})
	env.Run(0)
	want := 510 * time.Millisecond
	if took != want {
		t.Fatalf("transfer took %v, want %v", took, want)
	}
	if l.SentBytes() != 500 || l.Transfers() != 1 {
		t.Fatalf("stats: bytes=%d transfers=%d", l.SentBytes(), l.Transfers())
	}
}

func TestInfiniteBandwidth(t *testing.T) {
	env := sim.NewEnv(1)
	l := New(env, Config{Propagation: 3 * time.Millisecond})
	var took time.Duration
	env.Process("tx", func(p *sim.Proc) { took = l.Transfer(p, 1<<30) })
	env.Run(0)
	if took != 3*time.Millisecond {
		t.Fatalf("took %v, want pure propagation 3ms", took)
	}
}

func TestBandwidthContentionSerializes(t *testing.T) {
	env := sim.NewEnv(1)
	l := New(env, Config{Propagation: 0, BandwidthBps: 1000})
	var done []time.Duration
	for i := 0; i < 3; i++ {
		env.Process("tx", func(p *sim.Proc) {
			l.Transfer(p, 1000) // 1s serialization each
			done = append(done, p.Now())
		})
	}
	env.Run(0)
	if len(done) != 3 {
		t.Fatalf("completed %d transfers", len(done))
	}
	want := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completion times %v, want %v", done, want)
		}
	}
}

func TestPropagationPipelines(t *testing.T) {
	// With long propagation and short serialization, back-to-back transfers
	// overlap in flight: second completion is one serialization after the
	// first, not one full latency after.
	env := sim.NewEnv(1)
	l := New(env, Config{Propagation: 100 * time.Millisecond, BandwidthBps: 1e6})
	var done []time.Duration
	for i := 0; i < 2; i++ {
		env.Process("tx", func(p *sim.Proc) {
			l.Transfer(p, 1000) // 1ms serialization
			done = append(done, p.Now())
		})
	}
	env.Run(0)
	if done[0] != 101*time.Millisecond || done[1] != 102*time.Millisecond {
		t.Fatalf("completions %v, want [101ms 102ms]", done)
	}
}

func TestPartitionBlocksUntilHeal(t *testing.T) {
	env := sim.NewEnv(1)
	l := New(env, Config{Propagation: time.Millisecond})
	l.Partition()
	var took time.Duration
	env.Process("tx", func(p *sim.Proc) { took = l.Transfer(p, 10) })
	env.Process("op", func(p *sim.Proc) {
		p.Sleep(500 * time.Millisecond)
		l.Heal()
	})
	env.Run(0)
	if took != 501*time.Millisecond {
		t.Fatalf("took %v, want 501ms (500ms outage + 1ms prop)", took)
	}
}

func TestPartitionIdempotent(t *testing.T) {
	env := sim.NewEnv(1)
	l := New(env, Config{})
	l.Partition()
	l.Partition()
	if !l.Partitioned() {
		t.Fatal("not partitioned")
	}
	l.Heal()
	l.Heal()
	if l.Partitioned() {
		t.Fatal("still partitioned")
	}
}

func TestLossCausesRetransmit(t *testing.T) {
	env := sim.NewEnv(7)
	l := New(env, Config{
		Propagation:       time.Millisecond,
		LossProb:          0.5,
		RetransmitTimeout: 10 * time.Millisecond,
	})
	env.Process("tx", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			l.Transfer(p, 10)
		}
	})
	env.Run(0)
	if l.Retransmits() == 0 {
		t.Fatal("expected some retransmits at 50% loss")
	}
	if l.Transfers() != 200 {
		t.Fatalf("transfers = %d, want 200 (reliable delivery)", l.Transfers())
	}
}

func TestUtilization(t *testing.T) {
	env := sim.NewEnv(1)
	l := New(env, Config{BandwidthBps: 1000})
	env.Process("tx", func(p *sim.Proc) {
		l.Transfer(p, 500) // busy 500ms
		p.Sleep(500 * time.Millisecond)
	})
	end := env.Run(0)
	if u := l.Utilization(end); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
	if l.Utilization(0) != 0 {
		t.Fatal("utilization with zero elapsed should be 0")
	}
}

func TestRetransmitTimeoutFloorWithZeroPropagation(t *testing.T) {
	// Regression: with Propagation 0 and LossProb > 0 the defaulted RTO
	// (4x propagation) used to be 0, so every lost transfer retried at the
	// same simulated instant. The floor guarantees retries consume time.
	env := sim.NewEnv(3)
	l := New(env, Config{LossProb: 0.5})
	if l.Config().RetransmitTimeout <= 0 {
		t.Fatalf("defaulted RTO = %v, want a positive floor", l.Config().RetransmitTimeout)
	}
	env.Process("tx", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			l.Transfer(p, 10)
		}
	})
	end := env.Run(0)
	if l.Retransmits() == 0 {
		t.Fatal("no retransmits at 50% loss — scenario degenerate")
	}
	if end == 0 {
		t.Fatalf("retransmits consumed no virtual time (%d retries at t=0)", l.Retransmits())
	}
	if want := time.Duration(l.Retransmits()) * minRetransmitTimeout; end != want {
		t.Fatalf("elapsed %v, want retransmits x floor = %v", end, want)
	}
}

func TestExplicitRetransmitTimeoutKeptBelowFloor(t *testing.T) {
	env := sim.NewEnv(1)
	l := New(env, Config{RetransmitTimeout: 100 * time.Microsecond})
	if got := l.Config().RetransmitTimeout; got != 100*time.Microsecond {
		t.Fatalf("explicit RTO overridden: %v", got)
	}
}

func TestNewPairAsymDirectionsDiffer(t *testing.T) {
	env := sim.NewEnv(1)
	pr := NewPairAsym(env,
		Config{Propagation: 10 * time.Millisecond, BandwidthBps: 1000},
		Config{Propagation: 2 * time.Millisecond, BandwidthBps: 1e6})
	if pr.RTT() != 12*time.Millisecond {
		t.Fatalf("asym RTT = %v, want 12ms", pr.RTT())
	}
	var fwdTook, revTook time.Duration
	env.Process("tx", func(p *sim.Proc) {
		fwdTook = pr.Forward.Transfer(p, 1000) // 1s ser + 10ms prop
		revTook = pr.Reverse.Transfer(p, 1000) // 1ms ser + 2ms prop
	})
	env.Run(0)
	if fwdTook != 1010*time.Millisecond {
		t.Fatalf("forward took %v, want 1.01s", fwdTook)
	}
	if revTook != 3*time.Millisecond {
		t.Fatalf("reverse took %v, want 3ms", revTook)
	}
	pr.Partition()
	if !pr.Forward.Partitioned() || !pr.Reverse.Partitioned() {
		t.Fatal("asym pair partition incomplete")
	}
	pr.Heal()
	if pr.Forward.Partitioned() || pr.Reverse.Partitioned() {
		t.Fatal("asym pair heal incomplete")
	}
}

func TestPartitionWhileRetransmitting(t *testing.T) {
	// A transfer loses its first attempt, and the link partitions during
	// the RTO wait. The retry must block until heal, then deliver — the
	// transfer survives the outage instead of slipping through it.
	//
	// Seed note: this test needs the first loss draw to come up lost; it
	// scans a few seeds for that and would fail loudly if none qualifies.
	var l *Link
	var env *sim.Env
	found := false
	for seed := int64(1); seed < 20 && !found; seed++ {
		env = sim.NewEnv(seed)
		probe := sim.NewEnv(seed)
		if probe.Rand().Float64() < 0.5 {
			l = New(env, Config{
				Propagation:       time.Millisecond,
				LossProb:          0.5,
				RetransmitTimeout: 20 * time.Millisecond,
			})
			found = true
		}
	}
	if !found {
		t.Fatal("no seed under 20 loses the first attempt")
	}
	var took time.Duration
	env.Process("tx", func(p *sim.Proc) { took = l.Transfer(p, 10) })
	env.Process("op", func(p *sim.Proc) {
		p.Sleep(5 * time.Millisecond) // during the 20ms RTO wait
		l.Partition()
		p.Sleep(495 * time.Millisecond)
		l.Heal()
	})
	env.Run(0)
	if l.Retransmits() == 0 {
		t.Fatal("first attempt was not lost — scenario degenerate")
	}
	if l.Transfers() != 1 {
		t.Fatalf("transfers = %d, want reliable delivery of 1", l.Transfers())
	}
	// Timeline: attempt at 0 (1ms prop, lost), RTO until 21ms but the link
	// partitioned at 5ms, so the retry waits for heal at 500ms; any later
	// losses only add whole RTOs. The completion must be after the heal.
	if took <= 500*time.Millisecond {
		t.Fatalf("transfer completed at %v, before the 500ms heal", took)
	}
}

func TestUtilizationAcrossPartitionHealCycles(t *testing.T) {
	// Wire-busy accounting must count serialization only: an outage in the
	// middle of the run adds elapsed time but no busy time.
	env := sim.NewEnv(1)
	l := New(env, Config{BandwidthBps: 1000})
	env.Process("a", func(p *sim.Proc) { l.Transfer(p, 500) }) // busy 0..500ms
	env.Process("op", func(p *sim.Proc) {
		p.Sleep(500 * time.Millisecond)
		l.Partition()
		p.Sleep(500 * time.Millisecond) // outage 500ms..1s
		l.Heal()
	})
	env.Process("b", func(p *sim.Proc) {
		p.Sleep(500 * time.Millisecond)
		l.Transfer(p, 500) // blocked through the outage, busy 1s..1.5s
	})
	end := env.Run(0)
	if end != 1500*time.Millisecond {
		t.Fatalf("run ended at %v, want 1.5s", end)
	}
	if u := l.Utilization(end); u < 0.66 || u > 0.67 {
		t.Fatalf("utilization = %v, want 2/3 (1s busy over 1.5s; outage not busy)", u)
	}
	if l.SentBytes() != 1000 || l.Transfers() != 2 {
		t.Fatalf("stats: bytes=%d transfers=%d", l.SentBytes(), l.Transfers())
	}
}

func TestPairRTTAndPartition(t *testing.T) {
	env := sim.NewEnv(1)
	pr := NewPair(env, Config{Propagation: 5 * time.Millisecond})
	if pr.RTT() != 10*time.Millisecond {
		t.Fatalf("rtt = %v", pr.RTT())
	}
	pr.Partition()
	if !pr.Forward.Partitioned() || !pr.Reverse.Partitioned() {
		t.Fatal("pair partition incomplete")
	}
	pr.Heal()
	if pr.Forward.Partitioned() || pr.Reverse.Partitioned() {
		t.Fatal("pair heal incomplete")
	}
}

func TestDeterministicJitter(t *testing.T) {
	run := func() time.Duration {
		env := sim.NewEnv(42)
		l := New(env, Config{Propagation: time.Millisecond, Jitter: time.Millisecond})
		var total time.Duration
		env.Process("tx", func(p *sim.Proc) {
			for i := 0; i < 50; i++ {
				total += l.Transfer(p, 1)
			}
		})
		env.Run(0)
		return total
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("jittered runs diverged: %v vs %v", a, b)
	}
}
