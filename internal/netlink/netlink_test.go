package netlink

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestTransferLatencyIsSerializationPlusPropagation(t *testing.T) {
	env := sim.NewEnv(1)
	l := New(env, Config{Propagation: 10 * time.Millisecond, BandwidthBps: 1000})
	var took time.Duration
	env.Process("tx", func(p *sim.Proc) {
		took = l.Transfer(p, 500) // 500B at 1000B/s = 500ms + 10ms prop
	})
	env.Run(0)
	want := 510 * time.Millisecond
	if took != want {
		t.Fatalf("transfer took %v, want %v", took, want)
	}
	if l.SentBytes() != 500 || l.Transfers() != 1 {
		t.Fatalf("stats: bytes=%d transfers=%d", l.SentBytes(), l.Transfers())
	}
}

func TestInfiniteBandwidth(t *testing.T) {
	env := sim.NewEnv(1)
	l := New(env, Config{Propagation: 3 * time.Millisecond})
	var took time.Duration
	env.Process("tx", func(p *sim.Proc) { took = l.Transfer(p, 1<<30) })
	env.Run(0)
	if took != 3*time.Millisecond {
		t.Fatalf("took %v, want pure propagation 3ms", took)
	}
}

func TestBandwidthContentionSerializes(t *testing.T) {
	env := sim.NewEnv(1)
	l := New(env, Config{Propagation: 0, BandwidthBps: 1000})
	var done []time.Duration
	for i := 0; i < 3; i++ {
		env.Process("tx", func(p *sim.Proc) {
			l.Transfer(p, 1000) // 1s serialization each
			done = append(done, p.Now())
		})
	}
	env.Run(0)
	if len(done) != 3 {
		t.Fatalf("completed %d transfers", len(done))
	}
	want := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completion times %v, want %v", done, want)
		}
	}
}

func TestPropagationPipelines(t *testing.T) {
	// With long propagation and short serialization, back-to-back transfers
	// overlap in flight: second completion is one serialization after the
	// first, not one full latency after.
	env := sim.NewEnv(1)
	l := New(env, Config{Propagation: 100 * time.Millisecond, BandwidthBps: 1e6})
	var done []time.Duration
	for i := 0; i < 2; i++ {
		env.Process("tx", func(p *sim.Proc) {
			l.Transfer(p, 1000) // 1ms serialization
			done = append(done, p.Now())
		})
	}
	env.Run(0)
	if done[0] != 101*time.Millisecond || done[1] != 102*time.Millisecond {
		t.Fatalf("completions %v, want [101ms 102ms]", done)
	}
}

func TestPartitionBlocksUntilHeal(t *testing.T) {
	env := sim.NewEnv(1)
	l := New(env, Config{Propagation: time.Millisecond})
	l.Partition()
	var took time.Duration
	env.Process("tx", func(p *sim.Proc) { took = l.Transfer(p, 10) })
	env.Process("op", func(p *sim.Proc) {
		p.Sleep(500 * time.Millisecond)
		l.Heal()
	})
	env.Run(0)
	if took != 501*time.Millisecond {
		t.Fatalf("took %v, want 501ms (500ms outage + 1ms prop)", took)
	}
}

func TestPartitionIdempotent(t *testing.T) {
	env := sim.NewEnv(1)
	l := New(env, Config{})
	l.Partition()
	l.Partition()
	if !l.Partitioned() {
		t.Fatal("not partitioned")
	}
	l.Heal()
	l.Heal()
	if l.Partitioned() {
		t.Fatal("still partitioned")
	}
}

func TestLossCausesRetransmit(t *testing.T) {
	env := sim.NewEnv(7)
	l := New(env, Config{
		Propagation:       time.Millisecond,
		LossProb:          0.5,
		RetransmitTimeout: 10 * time.Millisecond,
	})
	env.Process("tx", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			l.Transfer(p, 10)
		}
	})
	env.Run(0)
	if l.Retransmits() == 0 {
		t.Fatal("expected some retransmits at 50% loss")
	}
	if l.Transfers() != 200 {
		t.Fatalf("transfers = %d, want 200 (reliable delivery)", l.Transfers())
	}
}

func TestUtilization(t *testing.T) {
	env := sim.NewEnv(1)
	l := New(env, Config{BandwidthBps: 1000})
	env.Process("tx", func(p *sim.Proc) {
		l.Transfer(p, 500) // busy 500ms
		p.Sleep(500 * time.Millisecond)
	})
	end := env.Run(0)
	if u := l.Utilization(end); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
	if l.Utilization(0) != 0 {
		t.Fatal("utilization with zero elapsed should be 0")
	}
}

func TestRetransmitTimeoutFloorWithZeroPropagation(t *testing.T) {
	// Regression: with Propagation 0 and LossProb > 0 the defaulted RTO
	// (4x propagation) used to be 0, so every lost transfer retried at the
	// same simulated instant. The floor guarantees retries consume time.
	env := sim.NewEnv(3)
	l := New(env, Config{LossProb: 0.5})
	if l.Config().RetransmitTimeout <= 0 {
		t.Fatalf("defaulted RTO = %v, want a positive floor", l.Config().RetransmitTimeout)
	}
	env.Process("tx", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			l.Transfer(p, 10)
		}
	})
	end := env.Run(0)
	if l.Retransmits() == 0 {
		t.Fatal("no retransmits at 50% loss — scenario degenerate")
	}
	if end == 0 {
		t.Fatalf("retransmits consumed no virtual time (%d retries at t=0)", l.Retransmits())
	}
	if want := time.Duration(l.Retransmits()) * minRetransmitTimeout; end != want {
		t.Fatalf("elapsed %v, want retransmits x floor = %v", end, want)
	}
}

func TestExplicitRetransmitTimeoutKeptBelowFloor(t *testing.T) {
	env := sim.NewEnv(1)
	l := New(env, Config{RetransmitTimeout: 100 * time.Microsecond})
	if got := l.Config().RetransmitTimeout; got != 100*time.Microsecond {
		t.Fatalf("explicit RTO overridden: %v", got)
	}
}

func TestNewPairAsymDirectionsDiffer(t *testing.T) {
	env := sim.NewEnv(1)
	pr := NewPairAsym(env,
		Config{Propagation: 10 * time.Millisecond, BandwidthBps: 1000},
		Config{Propagation: 2 * time.Millisecond, BandwidthBps: 1e6})
	if pr.RTT() != 12*time.Millisecond {
		t.Fatalf("asym RTT = %v, want 12ms", pr.RTT())
	}
	var fwdTook, revTook time.Duration
	env.Process("tx", func(p *sim.Proc) {
		fwdTook = pr.Forward.Transfer(p, 1000) // 1s ser + 10ms prop
		revTook = pr.Reverse.Transfer(p, 1000) // 1ms ser + 2ms prop
	})
	env.Run(0)
	if fwdTook != 1010*time.Millisecond {
		t.Fatalf("forward took %v, want 1.01s", fwdTook)
	}
	if revTook != 3*time.Millisecond {
		t.Fatalf("reverse took %v, want 3ms", revTook)
	}
	pr.Partition()
	if !pr.Forward.Partitioned() || !pr.Reverse.Partitioned() {
		t.Fatal("asym pair partition incomplete")
	}
	pr.Heal()
	if pr.Forward.Partitioned() || pr.Reverse.Partitioned() {
		t.Fatal("asym pair heal incomplete")
	}
}

func TestPartitionWhileRetransmitting(t *testing.T) {
	// A transfer loses its first attempt, and the link partitions during
	// the RTO wait. The retry must block until heal, then deliver — the
	// transfer survives the outage instead of slipping through it.
	//
	// Seed note: this test needs the first loss draw to come up lost; it
	// scans a few seeds for that and would fail loudly if none qualifies.
	var l *Link
	var env *sim.Env
	found := false
	for seed := int64(1); seed < 20 && !found; seed++ {
		env = sim.NewEnv(seed)
		probe := sim.NewEnv(seed)
		if probe.Rand().Float64() < 0.5 {
			l = New(env, Config{
				Propagation:       time.Millisecond,
				LossProb:          0.5,
				RetransmitTimeout: 20 * time.Millisecond,
			})
			found = true
		}
	}
	if !found {
		t.Fatal("no seed under 20 loses the first attempt")
	}
	var took time.Duration
	env.Process("tx", func(p *sim.Proc) { took = l.Transfer(p, 10) })
	env.Process("op", func(p *sim.Proc) {
		p.Sleep(5 * time.Millisecond) // during the 20ms RTO wait
		l.Partition()
		p.Sleep(495 * time.Millisecond)
		l.Heal()
	})
	env.Run(0)
	if l.Retransmits() == 0 {
		t.Fatal("first attempt was not lost — scenario degenerate")
	}
	if l.Transfers() != 1 {
		t.Fatalf("transfers = %d, want reliable delivery of 1", l.Transfers())
	}
	// Timeline: attempt at 0 (1ms prop, lost), RTO until 21ms but the link
	// partitioned at 5ms, so the retry waits for heal at 500ms; any later
	// losses only add whole RTOs. The completion must be after the heal.
	if took <= 500*time.Millisecond {
		t.Fatalf("transfer completed at %v, before the 500ms heal", took)
	}
}

func TestUtilizationAcrossPartitionHealCycles(t *testing.T) {
	// Wire-busy accounting must count serialization only: an outage in the
	// middle of the run adds elapsed time but no busy time.
	env := sim.NewEnv(1)
	l := New(env, Config{BandwidthBps: 1000})
	env.Process("a", func(p *sim.Proc) { l.Transfer(p, 500) }) // busy 0..500ms
	env.Process("op", func(p *sim.Proc) {
		p.Sleep(500 * time.Millisecond)
		l.Partition()
		p.Sleep(500 * time.Millisecond) // outage 500ms..1s
		l.Heal()
	})
	env.Process("b", func(p *sim.Proc) {
		p.Sleep(500 * time.Millisecond)
		l.Transfer(p, 500) // blocked through the outage, busy 1s..1.5s
	})
	end := env.Run(0)
	if end != 1500*time.Millisecond {
		t.Fatalf("run ended at %v, want 1.5s", end)
	}
	if u := l.Utilization(end); u < 0.66 || u > 0.67 {
		t.Fatalf("utilization = %v, want 2/3 (1s busy over 1.5s; outage not busy)", u)
	}
	if l.SentBytes() != 1000 || l.Transfers() != 2 {
		t.Fatalf("stats: bytes=%d transfers=%d", l.SentBytes(), l.Transfers())
	}
}

func TestPairRTTAndPartition(t *testing.T) {
	env := sim.NewEnv(1)
	pr := NewPair(env, Config{Propagation: 5 * time.Millisecond})
	if pr.RTT() != 10*time.Millisecond {
		t.Fatalf("rtt = %v", pr.RTT())
	}
	pr.Partition()
	if !pr.Forward.Partitioned() || !pr.Reverse.Partitioned() {
		t.Fatal("pair partition incomplete")
	}
	pr.Heal()
	if pr.Forward.Partitioned() || pr.Reverse.Partitioned() {
		t.Fatal("pair heal incomplete")
	}
}

func TestDeterministicJitter(t *testing.T) {
	run := func() time.Duration {
		env := sim.NewEnv(42)
		l := New(env, Config{Propagation: time.Millisecond, Jitter: time.Millisecond})
		var total time.Duration
		env.Process("tx", func(p *sim.Proc) {
			for i := 0; i < 50; i++ {
				total += l.Transfer(p, 1)
			}
		})
		env.Run(0)
		return total
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("jittered runs diverged: %v vs %v", a, b)
	}
}

// --- Asynchronous (pipelined) send ---

func TestSendBlocksOnlyForSerialization(t *testing.T) {
	env := sim.NewEnv(1)
	// 1s serialization, 10s propagation: a huge bandwidth-delay product.
	l := New(env, Config{Propagation: 10 * time.Second, BandwidthBps: 1000})
	var sendReturned, delivered time.Duration
	env.Process("tx", func(p *sim.Proc) {
		done := l.Send(p, 1000)
		sendReturned = p.Now()
		p.Wait(done)
		delivered = p.Now()
	})
	env.Run(0)
	if sendReturned != time.Second {
		t.Fatalf("Send returned at %v, want 1s (serialization only)", sendReturned)
	}
	if delivered != 11*time.Second {
		t.Fatalf("delivered at %v, want 11s", delivered)
	}
	if l.Transfers() != 1 || l.SentBytes() != 1000 {
		t.Fatalf("stats: transfers=%d bytes=%d", l.Transfers(), l.SentBytes())
	}
	if l.InFlight() != 0 || l.MaxInFlight() != 1 {
		t.Fatalf("inflight=%d max=%d, want 0/1", l.InFlight(), l.MaxInFlight())
	}
}

func TestSendFillsThePipe(t *testing.T) {
	env := sim.NewEnv(1)
	// ser=1s, prop=10s: window w should deliver frame i at i*ser + prop.
	l := New(env, Config{Propagation: 10 * time.Second, BandwidthBps: 1000})
	const frames = 4
	var deliveredAt []time.Duration
	env.Process("tx", func(p *sim.Proc) {
		var evs []*sim.Event
		for i := 0; i < frames; i++ {
			evs = append(evs, l.Send(p, 1000))
		}
		for _, ev := range evs {
			p.Wait(ev)
			deliveredAt = append(deliveredAt, p.Now())
		}
	})
	env.Run(0)
	if len(deliveredAt) != frames {
		t.Fatalf("delivered %d frames, want %d", len(deliveredAt), frames)
	}
	for i, at := range deliveredAt {
		want := time.Duration(i+1)*time.Second + 10*time.Second
		if at != want {
			t.Fatalf("frame %d delivered at %v, want %v (pipelined)", i, at, want)
		}
	}
	if l.MaxInFlight() != frames {
		t.Fatalf("max in flight %d, want %d", l.MaxInFlight(), frames)
	}
	if l.OrderViolations() != 0 {
		t.Fatalf("order violations: %d", l.OrderViolations())
	}
}

func TestSendDeliversInOrderUnderJitter(t *testing.T) {
	// With jitter comparable to propagation, a later frame's raw arrival
	// can easily precede an earlier frame's — the delivery chain must hold
	// completions back so the receive stream stays in serialization order.
	env := sim.NewEnv(7)
	l := New(env, Config{Propagation: 5 * time.Millisecond, Jitter: 20 * time.Millisecond, BandwidthBps: 1e6})
	const frames = 200
	order := make([]int, 0, frames)
	env.Process("tx", func(p *sim.Proc) {
		for i := 0; i < frames; i++ {
			i := i
			ev := l.Send(p, 1000)
			env.Process("watch", func(wp *sim.Proc) {
				wp.Wait(ev)
				order = append(order, i)
			})
		}
	})
	env.Run(0)
	if len(order) != frames {
		t.Fatalf("delivered %d frames, want %d", len(order), frames)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("delivery order[%d] = frame %d: reordered", i, got)
		}
	}
	if l.OrderViolations() != 0 {
		t.Fatalf("watermark violations: %d", l.OrderViolations())
	}
	if l.LastDeliveryAt() == 0 {
		t.Fatalf("watermark never advanced")
	}
}

func TestSendRetransmitsLossInsideFlight(t *testing.T) {
	env := sim.NewEnv(3)
	l := New(env, Config{Propagation: time.Millisecond, BandwidthBps: 1e6, LossProb: 0.5})
	const frames = 50
	delivered := 0
	env.Process("tx", func(p *sim.Proc) {
		var evs []*sim.Event
		for i := 0; i < frames; i++ {
			evs = append(evs, l.Send(p, 1000))
		}
		for _, ev := range evs {
			p.Wait(ev)
			delivered++
		}
	})
	env.Run(0)
	if delivered != frames {
		t.Fatalf("delivered %d/%d frames under loss", delivered, frames)
	}
	if l.Retransmits() == 0 {
		t.Fatalf("no retransmits at LossProb=0.5 over %d frames", frames)
	}
	if l.OrderViolations() != 0 {
		t.Fatalf("order violations under loss: %d", l.OrderViolations())
	}
}

func TestSendPartitionCutsAdmissionNotFlight(t *testing.T) {
	env := sim.NewEnv(1)
	l := New(env, Config{Propagation: 100 * time.Millisecond, BandwidthBps: 1e6})
	var firstAt, secondAt time.Duration
	env.Process("tx", func(p *sim.Proc) {
		first := l.Send(p, 1000) // serialized at ~1ms, in flight until ~101ms
		second := l.Send(p, 1000)
		p.Wait(first)
		firstAt = p.Now()
		p.Wait(second)
		secondAt = p.Now()
	})
	env.Process("cut", func(p *sim.Proc) {
		p.Sleep(10 * time.Millisecond) // both frames serialized, both in flight
		l.Partition()
		p.Sleep(500 * time.Millisecond)
		l.Heal()
	})
	env.Run(0)
	if firstAt == 0 || secondAt == 0 {
		t.Fatalf("in-flight frames did not deliver across the partition (first=%v second=%v)", firstAt, secondAt)
	}
	if firstAt > 200*time.Millisecond || secondAt > 200*time.Millisecond {
		t.Fatalf("in-flight delivery waited for heal: first=%v second=%v", firstAt, secondAt)
	}

	// A frame sent while partitioned parks at admission until heal.
	env2 := sim.NewEnv(1)
	l2 := New(env2, Config{Propagation: time.Millisecond, BandwidthBps: 1e6})
	l2.Partition()
	var parkedAt time.Duration
	env2.Process("tx", func(p *sim.Proc) {
		ev := l2.Send(p, 1000)
		p.Wait(ev)
		parkedAt = p.Now()
	})
	env2.Process("heal", func(p *sim.Proc) {
		p.Sleep(300 * time.Millisecond)
		l2.Heal()
	})
	env2.Run(0)
	if parkedAt < 300*time.Millisecond {
		t.Fatalf("partitioned Send delivered at %v, before heal", parkedAt)
	}
}

func TestSetFaultAppliesAndClears(t *testing.T) {
	env := sim.NewEnv(5)
	l := New(env, Config{Propagation: time.Millisecond, BandwidthBps: 1e6})
	env.Process("tx", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			l.Transfer(p, 1000)
		}
		if l.Retransmits() != 0 {
			t.Errorf("retransmits on a clean link: %d", l.Retransmits())
		}
		l.SetFault(0.8, 2*time.Millisecond)
		for i := 0; i < 50; i++ {
			l.Transfer(p, 1000)
		}
		if l.Retransmits() == 0 {
			t.Errorf("no retransmits under SetFault(0.8, ...)")
		}
		mid := l.Retransmits()
		l.SetFault(0, 0)
		for i := 0; i < 50; i++ {
			l.Transfer(p, 1000)
		}
		if l.Retransmits() != mid {
			t.Errorf("retransmits after clearing fault: %d -> %d", mid, l.Retransmits())
		}
	})
	env.Run(0)
}
