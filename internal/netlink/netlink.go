// Package netlink models the inter-site network connecting the main and
// backup storage arrays: a full-duplex pipe with finite bandwidth,
// propagation delay, optional jitter and loss (handled by retransmission),
// and operator-induced partitions. The slowdown and RPO experiments (E5, E7)
// are functions of this model only.
package netlink

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Config describes one direction of a link.
type Config struct {
	// Propagation is the one-way signal delay (half the RTT).
	Propagation time.Duration
	// BandwidthBps is the serialization rate in bytes per second. Zero or
	// negative means infinite bandwidth.
	BandwidthBps float64
	// Jitter adds a uniform random delay in [0, Jitter) to each transfer's
	// propagation.
	Jitter time.Duration
	// LossProb is the probability a transfer attempt is lost; lost
	// transfers are retransmitted after RetransmitTimeout.
	LossProb float64
	// RetransmitTimeout is the delay before a lost transfer is retried.
	// Zero defaults to 4x the propagation delay (a TCP-ish RTO), floored
	// at minRetransmitTimeout so a zero-propagation lossy link cannot
	// retry in a zero-duration loop at one simulated instant.
	RetransmitTimeout time.Duration
}

// minRetransmitTimeout floors the defaulted RTO. Without it a config with
// Propagation 0 and LossProb > 0 would retry lost transfers with zero
// delay, burning scheduler steps at a single simulated timestamp.
const minRetransmitTimeout = time.Millisecond

// Link is one direction of the inter-site connection. The two directions of
// a site pair are independent Links so request and ack traffic do not
// contend.
type Link struct {
	env        *sim.Env
	cfg        Config
	wire       *sim.Resource // serialization: one frame on the wire at a time
	partition  bool
	healed     *sim.Event
	sentBytes  int64
	transfers  int64
	retransmit int64
	busy       time.Duration // cumulative serialization time, for utilization
}

// New returns a link in the connected state.
func New(env *sim.Env, cfg Config) *Link {
	if cfg.RetransmitTimeout <= 0 {
		cfg.RetransmitTimeout = 4 * cfg.Propagation
		if cfg.RetransmitTimeout < minRetransmitTimeout {
			cfg.RetransmitTimeout = minRetransmitTimeout
		}
	}
	return &Link{
		env:    env,
		cfg:    cfg,
		wire:   env.NewResource(1),
		healed: env.NewEvent(),
	}
}

// Config returns the link configuration.
func (l *Link) Config() Config { return l.cfg }

// serialization returns the time size bytes occupy the wire.
func (l *Link) serialization(size int) time.Duration {
	if l.cfg.BandwidthBps <= 0 || size <= 0 {
		return 0
	}
	return time.Duration(float64(size) / l.cfg.BandwidthBps * float64(time.Second))
}

// Transfer moves size bytes across the link, blocking the calling process
// for queueing + serialization + propagation (+ jitter, loss retries, and
// partition outages). It returns the total time the transfer took.
func (l *Link) Transfer(p *sim.Proc, size int) time.Duration {
	start := p.Now()
	for {
		for l.partition {
			p.Wait(l.healed)
		}
		l.wire.Acquire(p)
		ser := l.serialization(size)
		p.Sleep(ser)
		l.busy += ser
		l.wire.Release()
		prop := l.cfg.Propagation
		if l.cfg.Jitter > 0 {
			prop += time.Duration(l.env.Rand().Int63n(int64(l.cfg.Jitter)))
		}
		p.Sleep(prop)
		if l.cfg.LossProb > 0 && l.env.Rand().Float64() < l.cfg.LossProb {
			l.retransmit++
			p.Sleep(l.cfg.RetransmitTimeout)
			continue
		}
		l.sentBytes += int64(size)
		l.transfers++
		return p.Now() - start
	}
}

// Partition severs the link: subsequent Transfer calls block until Heal.
// In-flight transfers complete (the model cuts admission, not the wire).
func (l *Link) Partition() {
	if l.partition {
		return
	}
	l.partition = true
	l.healed = l.env.NewEvent()
}

// Heal reconnects a partitioned link and wakes blocked senders.
func (l *Link) Heal() {
	if !l.partition {
		return
	}
	l.partition = false
	l.healed.Trigger()
}

// Partitioned reports whether the link is currently severed.
func (l *Link) Partitioned() bool { return l.partition }

// HealedEvent returns the event the next Heal triggers. It is meaningful
// while the link is partitioned: schedulers that route around a severed
// member (the inter-site fabric) park on it instead of polling.
func (l *Link) HealedEvent() *sim.Event { return l.healed }

// SentBytes returns the total payload bytes delivered.
func (l *Link) SentBytes() int64 { return l.sentBytes }

// Transfers returns the number of completed transfers.
func (l *Link) Transfers() int64 { return l.transfers }

// Retransmits returns the number of loss-induced retries.
func (l *Link) Retransmits() int64 { return l.retransmit }

// Utilization returns the fraction of elapsed time the wire was busy
// serializing, in [0,1]. elapsed must be the simulation span of interest.
func (l *Link) Utilization(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(l.busy) / float64(elapsed)
}

func (l *Link) String() string {
	return fmt.Sprintf("netlink{prop=%v bw=%.0fB/s sent=%dB}", l.cfg.Propagation, l.cfg.BandwidthBps, l.sentBytes)
}

// Pair is a full-duplex site interconnect: Forward carries main→backup
// journal traffic, Reverse carries acks and management traffic.
type Pair struct {
	Forward *Link
	Reverse *Link
}

// NewPair builds both directions from one symmetric config.
func NewPair(env *sim.Env, cfg Config) *Pair {
	return &Pair{Forward: New(env, cfg), Reverse: New(env, cfg)}
}

// NewPairAsym builds a pair whose directions differ — e.g. a fat forward
// journal pipe with a thin ack return path, or heterogeneous fabric member
// links whose two directions are provisioned independently.
func NewPairAsym(env *sim.Env, fwd, rev Config) *Pair {
	return &Pair{Forward: New(env, fwd), Reverse: New(env, rev)}
}

// RTT returns the configured round-trip time (both propagation delays,
// excluding serialization and jitter).
func (pr *Pair) RTT() time.Duration {
	return pr.Forward.cfg.Propagation + pr.Reverse.cfg.Propagation
}

// Partition severs both directions.
func (pr *Pair) Partition() {
	pr.Forward.Partition()
	pr.Reverse.Partition()
}

// Heal reconnects both directions.
func (pr *Pair) Heal() {
	pr.Forward.Heal()
	pr.Reverse.Heal()
}
