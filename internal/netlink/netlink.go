// Package netlink models the inter-site network connecting the main and
// backup storage arrays: a full-duplex pipe with finite bandwidth,
// propagation delay, optional jitter and loss (handled by retransmission),
// and operator-induced partitions. The slowdown and RPO experiments (E5, E7)
// are functions of this model only.
//
// A transfer has two physical phases: serialization, which occupies the
// wire (the link's one-slot sim.Resource), and propagation, during which
// the frame is in flight and occupies nothing. Transfer couples the caller
// to both phases; Send decouples them — the caller blocks only for
// admission + serialization and receives an event that fires at delivery —
// which is what lets a dispatcher keep a high bandwidth-delay-product pipe
// full with windowed in-flight frames (E18). Deliveries are in order per
// link regardless of jitter or loss retries: each frame's delivery is
// chained behind the previously serialized frame's and recorded against a
// per-link last-delivery watermark.
package netlink

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Config describes one direction of a link.
type Config struct {
	// Propagation is the one-way signal delay (half the RTT).
	Propagation time.Duration
	// BandwidthBps is the serialization rate in bytes per second. Zero or
	// negative means infinite bandwidth.
	BandwidthBps float64
	// Jitter adds a uniform random delay in [0, Jitter) to each transfer's
	// propagation.
	Jitter time.Duration
	// LossProb is the probability a transfer attempt is lost; lost
	// transfers are retransmitted after RetransmitTimeout.
	LossProb float64
	// RetransmitTimeout is the delay before a lost transfer is retried.
	// Zero defaults to 4x the propagation delay (a TCP-ish RTO), floored
	// at minRetransmitTimeout so a zero-propagation lossy link cannot
	// retry in a zero-duration loop at one simulated instant.
	RetransmitTimeout time.Duration
}

// minRetransmitTimeout floors the defaulted RTO. Without it a config with
// Propagation 0 and LossProb > 0 would retry lost transfers with zero
// delay, burning scheduler steps at a single simulated timestamp.
const minRetransmitTimeout = time.Millisecond

// Link is one direction of the inter-site connection. The two directions of
// a site pair are independent Links so request and ack traffic do not
// contend.
type Link struct {
	env        *sim.Env
	cfg        Config
	wire       *sim.Resource // serialization: one frame on the wire at a time
	partition  bool
	healed     *sim.Event
	sentBytes  int64
	transfers  int64
	retransmit int64
	busy       time.Duration // cumulative serialization time, for utilization

	// Async-send (pipelined) state. tail is the delivery event of the most
	// recently serialized frame: each new frame chains its own delivery
	// behind it, which is what makes per-link delivery order independent of
	// jitter and retransmission. lastDelivery is the watermark every arrival
	// is recorded against; violations counts arrivals that would have gone
	// backwards (zero by construction — exported so experiments can prove
	// order rather than assume it).
	tail         *sim.Event
	inFlight     int
	maxInFlight  int
	lastDelivery time.Duration
	violations   int64
}

// New returns a link in the connected state.
func New(env *sim.Env, cfg Config) *Link {
	if cfg.RetransmitTimeout <= 0 {
		cfg.RetransmitTimeout = 4 * cfg.Propagation
		if cfg.RetransmitTimeout < minRetransmitTimeout {
			cfg.RetransmitTimeout = minRetransmitTimeout
		}
	}
	return &Link{
		env:    env,
		cfg:    cfg,
		wire:   env.NewResource(1),
		healed: env.NewEvent(),
	}
}

// Config returns the link configuration.
func (l *Link) Config() Config { return l.cfg }

// serialization returns the time size bytes occupy the wire.
func (l *Link) serialization(size int) time.Duration {
	if l.cfg.BandwidthBps <= 0 || size <= 0 {
		return 0
	}
	return time.Duration(float64(size) / l.cfg.BandwidthBps * float64(time.Second))
}

// serialize runs the first physical phase: wait out any partition (the
// model cuts admission, not the wire), queue for the wire, and occupy it
// for the serialization time.
func (l *Link) serialize(p *sim.Proc, size int) {
	for l.partition {
		p.Wait(l.healed)
	}
	l.wire.Acquire(p)
	ser := l.serialization(size)
	p.Sleep(ser)
	l.busy += ser
	l.wire.Release()
}

// propagate runs the second physical phase: the in-flight time to the far
// end (propagation plus any jitter draw). It occupies no resource.
func (l *Link) propagate(p *sim.Proc) {
	prop := l.cfg.Propagation
	if l.cfg.Jitter > 0 {
		prop += time.Duration(l.env.Rand().Int63n(int64(l.cfg.Jitter)))
	}
	p.Sleep(prop)
}

// lost draws whether this transmission attempt was dropped in flight.
func (l *Link) lost() bool {
	return l.cfg.LossProb > 0 && l.env.Rand().Float64() < l.cfg.LossProb
}

// Transfer moves size bytes across the link, blocking the calling process
// for queueing + serialization + propagation (+ jitter, loss retries, and
// partition outages). It returns the total time the transfer took.
func (l *Link) Transfer(p *sim.Proc, size int) time.Duration {
	start := p.Now()
	for {
		l.serialize(p, size)
		l.propagate(p)
		if l.lost() {
			l.retransmit++
			p.Sleep(l.cfg.RetransmitTimeout)
			continue
		}
		l.sentBytes += int64(size)
		l.transfers++
		return p.Now() - start
	}
}

// Send begins an asynchronous transfer and returns the event that fires at
// delivery. See SendTo.
func (l *Link) Send(p *sim.Proc, size int) *sim.Event {
	done := l.env.NewEvent()
	l.SendTo(p, size, done)
	return done
}

// SendTo begins an asynchronous transfer whose completion triggers the
// caller-provided done event at delivery time. The calling process blocks
// only for the wire phase — partition outage, wire queueing, and
// serialization; propagation (and any loss retransmits, which re-serialize
// on the wire from inside the flight) happens in a detached flight process.
// When SendTo returns, the frame is committed to the pipe: a partition cut
// after that point no longer stops it (admission is cut, not the wire).
// Delivery is in order per link — done never fires before the done of any
// frame serialized earlier, however jitter or retransmission land.
func (l *Link) SendTo(p *sim.Proc, size int, done *sim.Event) {
	l.serialize(p, size)
	prev := l.tail
	l.tail = done
	l.inFlight++
	if l.inFlight > l.maxInFlight {
		l.maxInFlight = l.inFlight
	}
	l.env.Process("netlink-flight", func(fp *sim.Proc) {
		l.fly(fp, size, prev, done)
	})
}

// fly is the flight phase of one asynchronous frame: propagation, loss
// retries (each a fresh admission + serialization on the wire, so a
// retransmit during a partition waits for heal like any new frame), then
// in-order delivery chained behind the previously serialized frame.
func (l *Link) fly(p *sim.Proc, size int, prev, done *sim.Event) {
	l.propagate(p)
	for l.lost() {
		l.retransmit++
		p.Sleep(l.cfg.RetransmitTimeout)
		l.serialize(p, size)
		l.propagate(p)
	}
	if prev != nil && !prev.Triggered() {
		p.Wait(prev)
	}
	if p.Now() < l.lastDelivery {
		l.violations++
	}
	l.lastDelivery = p.Now()
	l.inFlight--
	l.sentBytes += int64(size)
	l.transfers++
	p.Trigger(done)
}

// Partition severs the link: subsequent Transfer calls block until Heal.
// In-flight transfers complete (the model cuts admission, not the wire).
func (l *Link) Partition() {
	if l.partition {
		return
	}
	l.partition = true
	l.healed = l.env.NewEvent()
}

// Heal reconnects a partitioned link and wakes blocked senders.
func (l *Link) Heal() {
	if !l.partition {
		return
	}
	l.partition = false
	l.healed.Trigger()
}

// Partitioned reports whether the link is currently severed.
func (l *Link) Partitioned() bool { return l.partition }

// HealedEvent returns the event the next Heal triggers. It is meaningful
// while the link is partitioned: schedulers that route around a severed
// member (the inter-site fabric) park on it instead of polling.
func (l *Link) HealedEvent() *sim.Event { return l.healed }

// SentBytes returns the total payload bytes delivered.
func (l *Link) SentBytes() int64 { return l.sentBytes }

// Transfers returns the number of completed transfers.
func (l *Link) Transfers() int64 { return l.transfers }

// Retransmits returns the number of loss-induced retries.
func (l *Link) Retransmits() int64 { return l.retransmit }

// InFlight returns the number of asynchronous frames currently serialized
// but not yet delivered (the pipe fill).
func (l *Link) InFlight() int { return l.inFlight }

// MaxInFlight returns the peak pipe fill observed over the link's lifetime.
func (l *Link) MaxInFlight() int { return l.maxInFlight }

// LastDeliveryAt returns the per-link delivery watermark: the simulation
// time of the most recent asynchronous delivery.
func (l *Link) LastDeliveryAt() time.Duration { return l.lastDelivery }

// OrderViolations returns how many asynchronous deliveries landed before
// the link's watermark. The delivery chain makes this zero by construction;
// it is exported so experiments prove in-order delivery instead of assuming
// it.
func (l *Link) OrderViolations() int64 { return l.violations }

// SetFault installs a transient loss/jitter burst on the link — the chaos
// sweep's linkloss fault. Zero values clear it. The change applies to draws
// made after the call: frames already past their loss draw are unaffected,
// frames still in flight retry under the new parameters.
func (l *Link) SetFault(lossProb float64, jitter time.Duration) {
	l.cfg.LossProb = lossProb
	l.cfg.Jitter = jitter
}

// Utilization returns the fraction of elapsed time the wire was busy
// serializing, in [0,1]. elapsed must be the simulation span of interest.
func (l *Link) Utilization(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(l.busy) / float64(elapsed)
}

func (l *Link) String() string {
	return fmt.Sprintf("netlink{prop=%v bw=%.0fB/s sent=%dB}", l.cfg.Propagation, l.cfg.BandwidthBps, l.sentBytes)
}

// Pair is a full-duplex site interconnect: Forward carries main→backup
// journal traffic, Reverse carries acks and management traffic.
type Pair struct {
	Forward *Link
	Reverse *Link
}

// NewPair builds both directions from one symmetric config.
func NewPair(env *sim.Env, cfg Config) *Pair {
	return &Pair{Forward: New(env, cfg), Reverse: New(env, cfg)}
}

// NewPairAsym builds a pair whose directions differ — e.g. a fat forward
// journal pipe with a thin ack return path, or heterogeneous fabric member
// links whose two directions are provisioned independently.
func NewPairAsym(env *sim.Env, fwd, rev Config) *Pair {
	return &Pair{Forward: New(env, fwd), Reverse: New(env, rev)}
}

// RTT returns the configured round-trip time (both propagation delays,
// excluding serialization and jitter).
func (pr *Pair) RTT() time.Duration {
	return pr.Forward.cfg.Propagation + pr.Reverse.cfg.Propagation
}

// Partition severs both directions.
func (pr *Pair) Partition() {
	pr.Forward.Partition()
	pr.Reverse.Partition()
}

// Heal reconnects both directions.
func (pr *Pair) Heal() {
	pr.Forward.Heal()
	pr.Reverse.Heal()
}
