// Package csiplugin implements the vendor storage plugins of §III-B2 as
// platform controllers:
//
//   - Provisioner ("Storage Plug-in for Containers"): dynamic provisioning —
//     Pending PVCs get an array volume and a bound PV.
//   - ReplicationPlugin ("Replication Plug-in for Containers"): reconciles
//     ReplicationGroup custom resources into configured ADC with (or
//     without) a consistency group, including the backup-site PV/PVC
//     objects that "appear" in the demo's Fig. 4.
//   - SnapshotController: VolumeSnapshot CRs, plus VolumeGroupSnapshot CRs
//     behind the CSI alpha feature gate (§II) — gate off reproduces the
//     paper's "operate the storage system directly" limitation.
package csiplugin

import (
	"errors"
	"fmt"

	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Plugin-level errors.
var (
	// ErrClaimNotBound reports a PVC that has no volume yet; reconciles
	// retry until the provisioner binds it.
	ErrClaimNotBound = errors.New("csiplugin: claim not bound")
	// ErrUnknownArray reports a storage class naming an array the plugin
	// does not manage.
	ErrUnknownArray = errors.New("csiplugin: unknown array")
	// ErrFeatureGateDisabled reports use of the VolumeGroupSnapshot alpha
	// API with the gate off.
	ErrFeatureGateDisabled = errors.New("csiplugin: VolumeGroupSnapshot feature gate disabled")
)

// Provisioner binds Pending PVCs to freshly provisioned array volumes.
type Provisioner struct {
	env    *sim.Env
	api    *platform.APIServer
	arrays map[string]*storage.Array
	ctrl   *platform.Controller

	provisioned int64
}

// NewProvisioner manages the given arrays (keyed by array name, referenced
// from StorageClass.ArrayName).
func NewProvisioner(env *sim.Env, api *platform.APIServer, arrays map[string]*storage.Array) *Provisioner {
	pr := &Provisioner{env: env, api: api, arrays: arrays}
	pr.ctrl = platform.NewController(env, api, "provisioner", platform.KindPVC, nil,
		platform.ReconcilerFunc(pr.reconcile), platform.ControllerConfig{})
	return pr
}

// Start launches the controller.
func (pr *Provisioner) Start() { pr.ctrl.Start() }

// Stop halts the controller.
func (pr *Provisioner) Stop() { pr.ctrl.Stop() }

// Provisioned returns how many volumes this plugin created.
func (pr *Provisioner) Provisioned() int64 { return pr.provisioned }

// VolumeIDForClaim is the deterministic array volume name for a claim.
func VolumeIDForClaim(namespace, name string) storage.VolumeID {
	return storage.VolumeID(fmt.Sprintf("pvc-%s-%s", namespace, name))
}

// PVNameForClaim is the deterministic PV object name for a claim.
func PVNameForClaim(namespace, name string) string {
	return fmt.Sprintf("pv-%s-%s", namespace, name)
}

func (pr *Provisioner) reconcile(p *sim.Proc, key platform.ObjectKey) error {
	obj, err := pr.api.Get(p, key)
	if errors.Is(err, platform.ErrNotFound) {
		// Claim deleted: unwind its PV and array volume so decommissioned
		// tenants return their capacity to the array free lists.
		return pr.unprovision(p, key)
	}
	if err != nil {
		return err
	}
	claim := obj.(*platform.PersistentVolumeClaim)
	if claim.Status.Phase == platform.ClaimBound {
		return nil
	}
	scObj, err := pr.api.Get(p, platform.ObjectKey{Kind: platform.KindStorageClass, Name: claim.Spec.StorageClassName})
	if err != nil {
		return fmt.Errorf("csiplugin: claim %s: storage class: %w", key, err)
	}
	sc := scObj.(*platform.StorageClass)
	array, ok := pr.arrays[sc.ArrayName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownArray, sc.ArrayName)
	}
	volID := VolumeIDForClaim(claim.Namespace, claim.Name)
	if _, err := array.CreateVolume(volID, claim.Spec.SizeBlocks); err != nil && !errors.Is(err, storage.ErrVolumeExists) {
		return err
	}
	pvName := PVNameForClaim(claim.Namespace, claim.Name)
	pv := &platform.PersistentVolume{
		Meta: platform.Meta{Kind: platform.KindPV, Name: pvName},
		Spec: platform.PVSpec{ArrayName: sc.ArrayName, VolumeID: volID, SizeBlocks: claim.Spec.SizeBlocks},
		Status: platform.PVStatus{
			Phase:     platform.VolumeBound,
			ClaimRef:  claim.Key(),
			ClaimName: claim.Name,
		},
	}
	if err := pr.api.Create(p, pv); err != nil && !errors.Is(err, platform.ErrExists) {
		return err
	}
	claim.Status.Phase = platform.ClaimBound
	claim.Status.VolumeName = pvName
	if err := pr.api.Update(p, claim); err != nil {
		return err
	}
	pr.provisioned++
	return nil
}

// unprovision reverses provisioning for a deleted claim: delete the array
// volume (and its snapshots) and the bound PV object. A volume still
// attached to a journal makes the reconcile retry — the replication
// teardown must detach it first, and the controller's backoff converges
// once it has.
func (pr *Provisioner) unprovision(p *sim.Proc, key platform.ObjectKey) error {
	pvKey := platform.ObjectKey{Kind: platform.KindPV, Name: PVNameForClaim(key.Namespace, key.Name)}
	pvObj, err := pr.api.Get(p, pvKey)
	if errors.Is(err, platform.ErrNotFound) {
		return nil // never provisioned, or already unwound
	}
	if err != nil {
		return err
	}
	pv := pvObj.(*platform.PersistentVolume)
	if array, ok := pr.arrays[pv.Spec.ArrayName]; ok {
		if _, err := array.Volume(pv.Spec.VolumeID); err == nil {
			if err := array.DeleteVolumeSnapshots(pv.Spec.VolumeID); err != nil {
				return err
			}
			if err := array.DeleteVolume(pv.Spec.VolumeID); err != nil {
				return err // attached to a journal: retry until detached
			}
		}
	}
	if err := pr.api.Delete(p, pvKey); err != nil && !errors.Is(err, platform.ErrNotFound) {
		return err
	}
	return nil
}

// resolveClaimVolume maps a bound PVC to its array volume via the PV.
func resolveClaimVolume(p *sim.Proc, api *platform.APIServer, namespace, name string) (*platform.PersistentVolume, error) {
	obj, err := api.Get(p, platform.ObjectKey{Kind: platform.KindPVC, Namespace: namespace, Name: name})
	if err != nil {
		return nil, err
	}
	claim := obj.(*platform.PersistentVolumeClaim)
	if claim.Status.Phase != platform.ClaimBound || claim.Status.VolumeName == "" {
		return nil, fmt.Errorf("%w: %s/%s", ErrClaimNotBound, namespace, name)
	}
	pvObj, err := api.Get(p, platform.ObjectKey{Kind: platform.KindPV, Name: claim.Status.VolumeName})
	if err != nil {
		return nil, err
	}
	return pvObj.(*platform.PersistentVolume), nil
}
