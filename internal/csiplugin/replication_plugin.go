package csiplugin

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/fabric"
	"repro/internal/platform"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/telemetry"
)

// SitePair wires the replication plugin to both sites' resources.
type SitePair struct {
	MainAPI     *platform.APIServer
	BackupAPI   *platform.APIServer
	MainArray   *storage.Array
	BackupArray *storage.Array
	// Path is the inter-site transfer path every group shares (a raw
	// *netlink.Link works). PathFor, when set, takes precedence and hands
	// each namespace its own path — how per-tenant QoS classes attach.
	Path    fabric.Path
	PathFor func(namespace string) fabric.Path
	// LanePathFor, when set, hands each drain lane of a namespace's
	// sharded group its own path (lane k drains journal shard k). Without
	// it every lane shares the namespace path, which serializes transfers
	// and forfeits most of the sharding win.
	LanePathFor func(namespace string, lane int) fabric.Path
	// Telemetry, when set, has every created engine register its RPO and
	// lane probes under the source namespace, and instruments the plugin's
	// own controller.
	Telemetry *telemetry.Registry
}

// pathFor resolves the transfer path for a namespace's groups.
func (s SitePair) pathFor(namespace string) fabric.Path {
	if s.PathFor != nil {
		return s.PathFor(namespace)
	}
	return s.Path
}

// pathForLane resolves the transfer path for one drain lane of a
// namespace's sharded group.
func (s SitePair) pathForLane(namespace string, lane int) fabric.Path {
	if s.LanePathFor != nil {
		return s.LanePathFor(namespace, lane)
	}
	return s.pathFor(namespace)
}

// ReplicationPlugin reconciles ReplicationGroup custom resources on the
// main site into running ADC: journal volumes, consistency-group
// membership, backup-site volumes with PV/PVC objects, initial copy, and
// the drain. Deleting the CR tears the configuration down.
type ReplicationPlugin struct {
	env   *sim.Env
	sites SitePair
	cfg   replication.Config
	ctrl  *platform.Controller

	// groups tracks the running replication engines per CR name. With
	// ConsistencyGroup=true there is exactly one (a Group, or a
	// ShardedGroup when the spec shards the journal); otherwise one Group
	// per volume.
	groups map[string][]replication.Replicator
	// nsByGroup remembers which namespace each group replicates, so
	// site-wide operations (failback) can pick that tenant's fabric path.
	nsByGroup map[replication.Replicator]string
}

// NewReplicationPlugin builds the plugin; Start launches its controller.
func NewReplicationPlugin(env *sim.Env, sites SitePair, cfg replication.Config) *ReplicationPlugin {
	rp := &ReplicationPlugin{
		env: env, sites: sites, cfg: cfg,
		groups:    make(map[string][]replication.Replicator),
		nsByGroup: make(map[replication.Replicator]string),
	}
	rp.ctrl = platform.NewController(env, sites.MainAPI, "replication-plugin",
		platform.KindReplicationGroup, nil, platform.ReconcilerFunc(rp.reconcile),
		platform.ControllerConfig{Telemetry: sites.Telemetry})
	return rp
}

// Start launches the controller.
func (rp *ReplicationPlugin) Start() { rp.ctrl.Start() }

// Stop halts the controller (running replication groups keep draining; use
// Groups to stop them explicitly).
func (rp *ReplicationPlugin) Stop() { rp.ctrl.Stop() }

// Groups returns the running replication engines for a CR name.
func (rp *ReplicationPlugin) Groups(name string) []replication.Replicator {
	out := make([]replication.Replicator, len(rp.groups[name]))
	copy(out, rp.groups[name])
	return out
}

// NamespaceOf returns the namespace a group replicates (empty for groups
// this plugin did not create).
func (rp *ReplicationPlugin) NamespaceOf(g replication.Replicator) string { return rp.nsByGroup[g] }

// AllGroups returns every running engine (for site-wide operations), in
// CR-name order. The deterministic order matters: site-wide operations
// like Failback visit the groups sequentially, so a map-order walk would
// make their simulated timing — and which group a typed refusal names —
// vary between runs of the same seed.
func (rp *ReplicationPlugin) AllGroups() []replication.Replicator {
	names := make([]string, 0, len(rp.groups))
	for name := range rp.groups {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []replication.Replicator
	for _, name := range names {
		out = append(out, rp.groups[name]...)
	}
	return out
}

func (rp *ReplicationPlugin) reconcile(p *sim.Proc, key platform.ObjectKey) error {
	obj, err := rp.sites.MainAPI.Get(p, key)
	if errors.Is(err, platform.ErrNotFound) {
		return rp.teardown(p, key.Name)
	}
	if err != nil {
		return err
	}
	rg := obj.(*platform.ReplicationGroup)
	if len(rp.groups[rg.Name]) > 0 {
		if rg.Status.Phase != platform.GroupReady {
			// Partially configured from an earlier attempt; report Ready.
			return rp.setPhase(p, rg, platform.GroupReady, "replication running")
		}
		// Configured and Ready: the only reconcilable drift left is the
		// declared shard count (a ShardsLabel change threaded through the
		// operator). Unchanged counts return without a single API write.
		return rp.maybeReshard(p, rg)
	}

	// Resolve every claim to its source volume.
	type member struct {
		pvcName string
		volID   storage.VolumeID
		size    int64
	}
	var members []member
	for _, pvcName := range rg.Spec.PVCNames {
		pv, err := resolveClaimVolume(p, rp.sites.MainAPI, rg.Spec.SourceNamespace, pvcName)
		if err != nil {
			_ = rp.setPhase(p, rg, platform.GroupPending, err.Error())
			return err // retry until the provisioner binds the claim
		}
		members = append(members, member{pvcName: pvcName, volID: pv.Spec.VolumeID, size: pv.Spec.SizeBlocks})
	}
	if len(members) == 0 {
		return rp.setPhase(p, rg, platform.GroupFailed, "no PVCs to replicate")
	}

	// Provision backup-site twins: volume + PV + PVC so the backup console
	// lists them (Fig. 4). Twins are read-only while replication runs.
	for _, m := range members {
		if _, err := rp.sites.BackupArray.CreateVolume(m.volID, m.size); err != nil && !errors.Is(err, storage.ErrVolumeExists) {
			return err
		}
		tv, err := rp.sites.BackupArray.Volume(m.volID)
		if err != nil {
			return err
		}
		tv.SetReadOnly(true)
		pv := &platform.PersistentVolume{
			Meta:   platform.Meta{Kind: platform.KindPV, Name: PVNameForClaim(rg.Spec.SourceNamespace, m.pvcName)},
			Spec:   platform.PVSpec{ArrayName: rp.sites.BackupArray.Name(), VolumeID: m.volID, SizeBlocks: m.size},
			Status: platform.PVStatus{Phase: platform.VolumeBound, ClaimName: m.pvcName},
		}
		if err := rp.sites.BackupAPI.Create(p, pv); err != nil && !errors.Is(err, platform.ErrExists) {
			return err
		}
		pvc := &platform.PersistentVolumeClaim{
			Meta: platform.Meta{Kind: platform.KindPVC, Namespace: rg.Spec.SourceNamespace, Name: m.pvcName},
			Spec: platform.PVCSpec{SizeBlocks: m.size},
			Status: platform.PVCStatus{
				Phase:      platform.ClaimBound,
				VolumeName: pv.Name,
			},
		}
		if err := rp.sites.BackupAPI.Create(p, pvc); err != nil && !errors.Is(err, platform.ErrExists) {
			return err
		}
	}

	if err := rp.setPhase(p, rg, platform.GroupSyncing, "initial copy"); err != nil {
		return err
	}

	var created []replication.Replicator
	var journalIDs []string

	// Sharded layout: one consistency group whose journal is split across
	// JournalShards shards, drained by a multi-lane engine with one fabric
	// path per lane. Single-shard groups keep the plain path below so the
	// paper's configuration stays byte-for-byte unchanged.
	if rg.Spec.ConsistencyGroup && rg.Spec.JournalShards > 1 {
		journalID := fmt.Sprintf("jnl-%s-0", rg.Name)
		vols := make([]storage.VolumeID, len(members))
		mapping := make(map[storage.VolumeID]storage.VolumeID, len(members))
		for i, m := range members {
			vols[i] = m.volID
			mapping[m.volID] = m.volID
		}
		sj, err := rp.sites.MainArray.CreateShardedConsistencyGroup(journalID, vols, rg.Spec.JournalShards)
		if errors.Is(err, storage.ErrJournalExists) {
			sj, err = rp.sites.MainArray.ShardedJournal(journalID)
		}
		if err != nil {
			return err
		}
		paths := make([]fabric.Path, sj.ShardCount())
		for k := range paths {
			paths[k] = rp.sites.pathForLane(rg.Spec.SourceNamespace, k)
		}
		g, err := replication.NewShardedGroup(rp.env, fmt.Sprintf("%s-0", rg.Name), sj,
			rp.sites.BackupArray, mapping, paths, rp.cfg)
		if err != nil {
			return err
		}
		if err := g.InitialCopy(p, rp.sites.MainArray); err != nil {
			return err
		}
		g.Instrument(rp.sites.Telemetry, rg.Spec.SourceNamespace)
		g.Start()
		created = append(created, g)
		rp.nsByGroup[g] = rg.Spec.SourceNamespace
		journalIDs = append(journalIDs, journalID)
		return rp.finishReady(p, key, rg, created, journalIDs)
	}

	// Journal layout: one shared journal (consistency group) or one per
	// volume (the collapse-prone configuration E6 measures).
	var journalSets [][]member
	if rg.Spec.ConsistencyGroup {
		journalSets = [][]member{members}
	} else {
		for _, m := range members {
			journalSets = append(journalSets, []member{m})
		}
	}
	for i, set := range journalSets {
		journalID := fmt.Sprintf("jnl-%s-%d", rg.Name, i)
		vols := make([]storage.VolumeID, len(set))
		mapping := make(map[storage.VolumeID]storage.VolumeID, len(set))
		for j, m := range set {
			vols[j] = m.volID
			mapping[m.volID] = m.volID
		}
		journal, err := rp.sites.MainArray.CreateConsistencyGroup(journalID, vols)
		if err != nil && !errors.Is(err, storage.ErrJournalExists) {
			return err
		}
		if journal == nil {
			journal, err = rp.sites.MainArray.Journal(journalID)
			if err != nil {
				return err
			}
		}
		g, err := replication.NewGroup(rp.env, fmt.Sprintf("%s-%d", rg.Name, i), journal,
			rp.sites.BackupArray, mapping, rp.sites.pathFor(rg.Spec.SourceNamespace), rp.cfg)
		if err != nil {
			return err
		}
		if err := g.InitialCopy(p, rp.sites.MainArray); err != nil {
			return err
		}
		// Per-volume journal layouts (the collapse-prone E6 configuration)
		// would fold several engines into one tenant key, so only the
		// consistency-group layout registers the namespace's probes.
		if rg.Spec.ConsistencyGroup {
			g.Instrument(rp.sites.Telemetry, rg.Spec.SourceNamespace)
		}
		g.Start()
		created = append(created, g)
		rp.nsByGroup[g] = rg.Spec.SourceNamespace
		journalIDs = append(journalIDs, journalID)
	}
	return rp.finishReady(p, key, rg, created, journalIDs)
}

// maybeReshard diffs the CR's declared shard count against the running
// engine's lane count and, when they differ, drives the live reshard: a
// sharded engine reconfigures its lane set in place (epoch-barrier
// migration, untouched lanes keep draining); the paper's plain single-lane
// engine is upgraded through a planned handoff — Detach at a batch boundary
// (no records lost), the journal converted in place to a one-shard group,
// and a sharded engine adopting the backlog before widening. The reconcile
// does not wait for the migration window to settle — the engine drains it
// in the background and callers observe Resharding()/Lanes().
func (rp *ReplicationPlugin) maybeReshard(p *sim.Proc, rg *platform.ReplicationGroup) error {
	if !rg.Spec.ConsistencyGroup {
		return nil // per-volume journals have no shard structure to reshape
	}
	groups := rp.groups[rg.Name]
	if len(groups) != 1 {
		return nil
	}
	cur := groups[0]
	want := rg.Spec.JournalShards
	if want < 1 {
		want = 1
	}
	if cur.Lanes() == want || cur.Stopped() || cur.FailedOver() {
		return nil
	}
	ns := rg.Spec.SourceNamespace
	from := cur.Lanes()
	paths := make([]fabric.Path, want)
	for k := range paths {
		paths[k] = rp.sites.pathForLane(ns, k)
	}
	if _, err := cur.Reshard(p, paths); err != nil {
		if !errors.Is(err, replication.ErrReshardUnsupported) {
			return err
		}
		old := cur.(*replication.Group)
		if err := old.Detach(p); err != nil {
			return err
		}
		sj, err := rp.sites.MainArray.ConvertToSharded(old.JournalID())
		if errors.Is(err, storage.ErrJournalExists) {
			// A previous attempt converted but failed later; adopt it.
			sj, err = rp.sites.MainArray.ShardedJournal(old.JournalID())
		}
		if err != nil {
			return err
		}
		sg, err := replication.NewShardedGroup(rp.env, old.Name(), sj, rp.sites.BackupArray,
			old.Mapping(), paths[:sj.ShardCount()], rp.cfg)
		if err != nil {
			return err
		}
		// The upgrade rebinds the tenant's probes from the detached plain
		// engine to its successor: one continuous timeline across the swap.
		sg.Instrument(rp.sites.Telemetry, ns)
		sg.Start()
		rp.groups[rg.Name] = []replication.Replicator{sg}
		delete(rp.nsByGroup, old)
		rp.nsByGroup[sg] = ns
		if sg.Lanes() != want {
			if _, err := sg.Reshard(p, paths); err != nil {
				return err
			}
		}
	}
	return rp.setPhase(p, rg, platform.GroupReady,
		fmt.Sprintf("replication running (resharded %d -> %d lanes)", from, want))
}

// finishReady records the configured engines and marks the CR Ready.
func (rp *ReplicationPlugin) finishReady(p *sim.Proc, key platform.ObjectKey, rg *platform.ReplicationGroup,
	created []replication.Replicator, journalIDs []string) error {
	rp.groups[rg.Name] = created

	// Refresh the CR (phase Syncing bumped its version) and mark Ready.
	cur, err := rp.sites.MainAPI.Get(p, key)
	if err != nil {
		return err
	}
	rg = cur.(*platform.ReplicationGroup)
	rg.Status.Phase = platform.GroupReady
	rg.Status.Message = "replication running"
	if rg.Spec.ConsistencyGroup {
		rg.Status.JournalID = journalIDs[0]
	}
	rg.Status.JournalIDs = journalIDs
	return rp.sites.MainAPI.Update(p, rg)
}

// teardown stops and forgets the groups configured for a deleted CR.
func (rp *ReplicationPlugin) teardown(p *sim.Proc, name string) error {
	groups := rp.groups[name]
	if groups == nil {
		return nil
	}
	for _, g := range groups {
		g.Stop()
		delete(rp.nsByGroup, g)
		for src := range g.Mapping() {
			if err := rp.sites.MainArray.DetachJournal(src); err != nil {
				return err
			}
		}
		id := g.JournalID()
		if _, err := rp.sites.MainArray.ShardedJournal(id); err == nil {
			if err := rp.sites.MainArray.DeleteShardedJournal(id); err != nil {
				return err
			}
		} else if err := rp.sites.MainArray.DeleteJournal(id); err != nil && !errors.Is(err, storage.ErrNoSuchJournal) {
			return err
		}
	}
	delete(rp.groups, name)
	return nil
}

// setPhase patches the CR status, tolerating concurrent updates by
// re-reading on conflict.
func (rp *ReplicationPlugin) setPhase(p *sim.Proc, rg *platform.ReplicationGroup, phase platform.GroupPhase, msg string) error {
	for {
		cur, err := rp.sites.MainAPI.Get(p, rg.Key())
		if err != nil {
			return err
		}
		c := cur.(*platform.ReplicationGroup)
		c.Status.Phase = phase
		c.Status.Message = msg
		err = rp.sites.MainAPI.Update(p, c)
		if errors.Is(err, platform.ErrConflict) {
			continue
		}
		if err == nil {
			*rg = *c
		}
		return err
	}
}
