package csiplugin

import (
	"errors"
	"fmt"

	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/storage"
)

// FeatureGates mirrors the CSI feature state the paper describes: volume
// group snapshots were an alpha feature the storage plugin did not yet
// support, so group snapshots required direct array operations. Flip
// VolumeGroupSnapshot to model "the technical advancements in the CSI and
// the storage plugin in the future" (§II).
type FeatureGates struct {
	VolumeGroupSnapshot bool
}

// SnapshotController reconciles VolumeSnapshot (and, gate permitting,
// VolumeGroupSnapshot) custom resources against one site's array.
type SnapshotController struct {
	env    *sim.Env
	api    *platform.APIServer
	array  *storage.Array
	gates  FeatureGates
	single *platform.Controller
	group  *platform.Controller

	snapshots int64
	refused   int64
}

// NewSnapshotController builds the controller for one site.
func NewSnapshotController(env *sim.Env, api *platform.APIServer, array *storage.Array, gates FeatureGates) *SnapshotController {
	sc := &SnapshotController{env: env, api: api, array: array, gates: gates}
	sc.single = platform.NewController(env, api, "snapshot-ctrl", platform.KindVolumeSnapshot,
		nil, platform.ReconcilerFunc(sc.reconcileSingle), platform.ControllerConfig{})
	sc.group = platform.NewController(env, api, "snapshot-group-ctrl", platform.KindVolumeGroupSnapshot,
		nil, platform.ReconcilerFunc(sc.reconcileGroup), platform.ControllerConfig{})
	return sc
}

// Start launches both controllers.
func (sc *SnapshotController) Start() {
	sc.single.Start()
	sc.group.Start()
}

// Stop halts both controllers.
func (sc *SnapshotController) Stop() {
	sc.single.Stop()
	sc.group.Stop()
}

// Snapshots returns how many snapshots the controller created.
func (sc *SnapshotController) Snapshots() int64 { return sc.snapshots }

// Refused returns how many group requests the feature gate rejected.
func (sc *SnapshotController) Refused() int64 { return sc.refused }

func (sc *SnapshotController) reconcileSingle(p *sim.Proc, key platform.ObjectKey) error {
	obj, err := sc.api.Get(p, key)
	if errors.Is(err, platform.ErrNotFound) {
		return nil
	}
	if err != nil {
		return err
	}
	snap := obj.(*platform.VolumeSnapshot)
	if snap.Status.Ready {
		return nil
	}
	pv, err := resolveClaimVolume(p, sc.api, snap.Namespace, snap.Spec.PVCName)
	if err != nil {
		return err
	}
	snapID := fmt.Sprintf("snap-%s-%s", snap.Namespace, snap.Name)
	if _, err := sc.array.CreateSnapshot(snapID, pv.Spec.VolumeID); err != nil && !errors.Is(err, storage.ErrSnapshotExists) {
		return err
	}
	snap.Status.Ready = true
	snap.Status.SnapshotID = snapID
	snap.Status.Message = "snapshot ready"
	if err := sc.api.Update(p, snap); err != nil {
		return err
	}
	sc.snapshots++
	return nil
}

func (sc *SnapshotController) reconcileGroup(p *sim.Proc, key platform.ObjectKey) error {
	obj, err := sc.api.Get(p, key)
	if errors.Is(err, platform.ErrNotFound) {
		return nil
	}
	if err != nil {
		return err
	}
	snap := obj.(*platform.VolumeGroupSnapshot)
	if snap.Status.Ready {
		return nil
	}
	if !sc.gates.VolumeGroupSnapshot {
		// The paper's reality: alpha feature unsupported; the user must
		// operate the array directly. Record the refusal in status and do
		// not retry (the condition is permanent until the gate flips).
		if snap.Status.Message == ErrFeatureGateDisabled.Error() {
			return nil
		}
		snap.Status.Message = ErrFeatureGateDisabled.Error()
		sc.refused++
		return sc.api.Update(p, snap)
	}
	var vols []storage.VolumeID
	for _, pvcName := range snap.Spec.PVCNames {
		pv, err := resolveClaimVolume(p, sc.api, snap.Namespace, pvcName)
		if err != nil {
			return err
		}
		vols = append(vols, pv.Spec.VolumeID)
	}
	groupName := fmt.Sprintf("snapgrp-%s-%s", snap.Namespace, snap.Name)
	g, err := sc.array.CreateSnapshotGroup(groupName, vols)
	if err != nil && !errors.Is(err, storage.ErrSnapshotExists) {
		return err
	}
	if g == nil {
		if g, err = sc.array.SnapshotGroupByName(groupName); err != nil {
			return err
		}
	}
	snap.Status.Ready = true
	snap.Status.GroupName = groupName
	for _, s := range g.Snapshots() {
		snap.Status.SnapshotIDs = append(snap.Status.SnapshotIDs, s.ID())
	}
	snap.Status.Message = "snapshot group ready"
	if err := sc.api.Update(p, snap); err != nil {
		return err
	}
	sc.snapshots += int64(len(vols))
	return nil
}
