package csiplugin

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/netlink"
	"repro/internal/platform"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/storage"
)

// twoSites is the plugin test fixture: main and backup arrays + API
// servers, a link, and a running provisioner on the main site.
type twoSites struct {
	env         *sim.Env
	sites       SitePair
	provisioner *Provisioner
}

func newTwoSites(t *testing.T) *twoSites {
	t.Helper()
	env := sim.NewEnv(1)
	f := &twoSites{
		env: env,
		sites: SitePair{
			MainAPI:     platform.NewAPIServer(env, platform.APIConfig{}),
			BackupAPI:   platform.NewAPIServer(env, platform.APIConfig{}),
			MainArray:   storage.NewArray(env, "main-array", storage.Config{}),
			BackupArray: storage.NewArray(env, "backup-array", storage.Config{}),
			Path:        netlink.New(env, netlink.Config{Propagation: time.Millisecond}),
		},
	}
	f.provisioner = NewProvisioner(env, f.sites.MainAPI,
		map[string]*storage.Array{"main-array": f.sites.MainArray})
	f.provisioner.Start()
	env.Process("setup", func(p *sim.Proc) {
		if err := f.sites.MainAPI.Create(p, &platform.StorageClass{
			Meta:        platform.Meta{Kind: platform.KindStorageClass, Name: "fast"},
			Provisioner: "csi.sim", ArrayName: "main-array",
		}); err != nil {
			t.Error(err)
		}
	})
	env.Run(0)
	return f
}

// createClaims makes PVCs and lets the provisioner bind them.
func (f *twoSites) createClaims(t *testing.T, ns string, names ...string) {
	t.Helper()
	f.env.Process("claims", func(p *sim.Proc) {
		for _, name := range names {
			err := f.sites.MainAPI.Create(p, &platform.PersistentVolumeClaim{
				Meta: platform.Meta{Kind: platform.KindPVC, Namespace: ns, Name: name},
				Spec: platform.PVCSpec{StorageClassName: "fast", SizeBlocks: 256},
			})
			if err != nil {
				t.Error(err)
			}
		}
	})
	f.env.Run(time.Second)
}

func TestProvisionerBindsClaims(t *testing.T) {
	f := newTwoSites(t)
	f.createClaims(t, "shop", "sales", "stock")
	f.env.Process("check", func(p *sim.Proc) {
		for _, name := range []string{"sales", "stock"} {
			obj, err := f.sites.MainAPI.Get(p, platform.ObjectKey{Kind: platform.KindPVC, Namespace: "shop", Name: name})
			if err != nil {
				t.Error(err)
				return
			}
			c := obj.(*platform.PersistentVolumeClaim)
			if c.Status.Phase != platform.ClaimBound {
				t.Errorf("claim %s phase = %s", name, c.Status.Phase)
			}
			if _, err := f.sites.MainArray.Volume(VolumeIDForClaim("shop", name)); err != nil {
				t.Errorf("array volume missing: %v", err)
			}
			if _, err := f.sites.MainAPI.Get(p, platform.ObjectKey{Kind: platform.KindPV, Name: c.Status.VolumeName}); err != nil {
				t.Errorf("PV missing: %v", err)
			}
		}
	})
	f.env.Run(0)
	if f.provisioner.Provisioned() != 2 {
		t.Fatalf("provisioned = %d", f.provisioner.Provisioned())
	}
}

func TestProvisionerUnknownClassRetries(t *testing.T) {
	f := newTwoSites(t)
	f.env.Process("claim", func(p *sim.Proc) {
		f.sites.MainAPI.Create(p, &platform.PersistentVolumeClaim{
			Meta: platform.Meta{Kind: platform.KindPVC, Namespace: "shop", Name: "bad"},
			Spec: platform.PVCSpec{StorageClassName: "missing", SizeBlocks: 10},
		})
	})
	f.env.Run(100 * time.Millisecond)
	f.env.Process("check", func(p *sim.Proc) {
		obj, _ := f.sites.MainAPI.Get(p, platform.ObjectKey{Kind: platform.KindPVC, Namespace: "shop", Name: "bad"})
		if obj.(*platform.PersistentVolumeClaim).Status.Phase == platform.ClaimBound {
			t.Error("claim with missing class bound")
		}
	})
	f.env.Run(100 * time.Millisecond)
}

// createRG posts a ReplicationGroup CR and runs the plugin until Ready.
func (f *twoSites) createRG(t *testing.T, name string, cg bool, pvcs ...string) *ReplicationPlugin {
	t.Helper()
	rp := NewReplicationPlugin(f.env, f.sites, replication.Config{})
	rp.Start()
	f.env.Process("rg", func(p *sim.Proc) {
		err := f.sites.MainAPI.Create(p, &platform.ReplicationGroup{
			Meta: platform.Meta{Kind: platform.KindReplicationGroup, Name: name},
			Spec: platform.ReplicationGroupSpec{
				SourceNamespace:  "shop",
				PVCNames:         pvcs,
				ConsistencyGroup: cg,
			},
		})
		if err != nil {
			t.Error(err)
		}
	})
	f.env.Run(5 * time.Second)
	return rp
}

func TestReplicationPluginConfiguresCG(t *testing.T) {
	f := newTwoSites(t)
	f.createClaims(t, "shop", "sales", "stock")
	rp := f.createRG(t, "backup-shop", true, "sales", "stock")

	f.env.Process("check", func(p *sim.Proc) {
		obj, err := f.sites.MainAPI.Get(p, platform.ObjectKey{Kind: platform.KindReplicationGroup, Name: "backup-shop"})
		if err != nil {
			t.Error(err)
			return
		}
		rg := obj.(*platform.ReplicationGroup)
		if rg.Status.Phase != platform.GroupReady {
			t.Errorf("phase = %s (%s)", rg.Status.Phase, rg.Status.Message)
		}
		if rg.Status.JournalID == "" || len(rg.Status.JournalIDs) != 1 {
			t.Errorf("journals = %q %v", rg.Status.JournalID, rg.Status.JournalIDs)
		}
		// One shared journal with both volumes: the consistency group.
		j, err := f.sites.MainArray.Journal(rg.Status.JournalID)
		if err != nil {
			t.Error(err)
			return
		}
		if len(j.Members()) != 2 {
			t.Errorf("journal members = %v", j.Members())
		}
		// Backup twins exist and are read-only; PVCs appear at backup
		// (Fig. 4).
		for _, name := range []string{"sales", "stock"} {
			tv, err := f.sites.BackupArray.Volume(VolumeIDForClaim("shop", name))
			if err != nil {
				t.Errorf("backup volume: %v", err)
				continue
			}
			if !tv.ReadOnly() {
				t.Error("backup twin writable while replicating")
			}
			if _, err := f.sites.BackupAPI.Get(p, platform.ObjectKey{Kind: platform.KindPVC, Namespace: "shop", Name: name}); err != nil {
				t.Errorf("backup PVC missing: %v", err)
			}
		}
	})
	f.env.Run(0)
	if got := len(rp.Groups("backup-shop")); got != 1 {
		t.Fatalf("running groups = %d, want 1", got)
	}
}

func TestReplicationPluginPerVolumeMode(t *testing.T) {
	f := newTwoSites(t)
	f.createClaims(t, "shop", "sales", "stock")
	rp := f.createRG(t, "backup-shop", false, "sales", "stock")
	if got := len(rp.Groups("backup-shop")); got != 2 {
		t.Fatalf("running groups = %d, want 2 (one per volume)", got)
	}
	f.env.Process("check", func(p *sim.Proc) {
		obj, _ := f.sites.MainAPI.Get(p, platform.ObjectKey{Kind: platform.KindReplicationGroup, Name: "backup-shop"})
		rg := obj.(*platform.ReplicationGroup)
		if len(rg.Status.JournalIDs) != 2 {
			t.Errorf("journal IDs = %v", rg.Status.JournalIDs)
		}
		if rg.Status.JournalID != "" {
			t.Errorf("shared journal set in per-volume mode: %q", rg.Status.JournalID)
		}
	})
	f.env.Run(0)
}

func TestReplicationPluginReplicatesData(t *testing.T) {
	f := newTwoSites(t)
	f.createClaims(t, "shop", "sales")
	// Preload data before replication so initial copy matters.
	f.env.Process("preload", func(p *sim.Proc) {
		v, _ := f.sites.MainArray.Volume(VolumeIDForClaim("shop", "sales"))
		buf := make([]byte, f.sites.MainArray.Config().BlockSize)
		buf[0] = 0x42
		v.Write(p, 7, buf)
	})
	f.env.Run(0)
	rp := f.createRG(t, "backup-shop", true, "sales")
	// Write more after replication is up; drain should carry it.
	f.env.Process("write", func(p *sim.Proc) {
		v, _ := f.sites.MainArray.Volume(VolumeIDForClaim("shop", "sales"))
		buf := make([]byte, f.sites.MainArray.Config().BlockSize)
		buf[0] = 0x43
		v.Write(p, 8, buf)
		for _, g := range rp.Groups("backup-shop") {
			g.CatchUp(p)
		}
	})
	f.env.Run(10 * time.Second)
	tv, _ := f.sites.BackupArray.Volume(VolumeIDForClaim("shop", "sales"))
	if tv.Peek(7)[0] != 0x42 {
		t.Fatal("initial copy missed preloaded block")
	}
	if tv.Peek(8)[0] != 0x43 {
		t.Fatal("drain missed post-start write")
	}
}

func TestReplicationPluginTeardownOnDelete(t *testing.T) {
	f := newTwoSites(t)
	f.createClaims(t, "shop", "sales")
	rp := f.createRG(t, "backup-shop", true, "sales")
	if len(rp.Groups("backup-shop")) != 1 {
		t.Fatal("group not configured")
	}
	journalID := rp.Groups("backup-shop")[0].JournalID()
	f.env.Process("delete", func(p *sim.Proc) {
		f.sites.MainAPI.Delete(p, platform.ObjectKey{Kind: platform.KindReplicationGroup, Name: "backup-shop"})
	})
	f.env.Run(5 * time.Second)
	if len(rp.Groups("backup-shop")) != 0 {
		t.Fatal("groups survive CR deletion")
	}
	if _, err := f.sites.MainArray.Journal(journalID); err == nil {
		t.Fatal("journal survives CR deletion")
	}
	// Source volume is usable again (journal detached).
	v, _ := f.sites.MainArray.Volume(VolumeIDForClaim("shop", "sales"))
	if v.Journal() != nil {
		t.Fatal("source volume still journal-attached")
	}
}

func TestSnapshotControllerSingle(t *testing.T) {
	f := newTwoSites(t)
	f.createClaims(t, "shop", "sales")
	sc := NewSnapshotController(f.env, f.sites.MainAPI, f.sites.MainArray, FeatureGates{})
	sc.Start()
	f.env.Process("snap", func(p *sim.Proc) {
		f.sites.MainAPI.Create(p, &platform.VolumeSnapshot{
			Meta: platform.Meta{Kind: platform.KindVolumeSnapshot, Namespace: "shop", Name: "s1"},
			Spec: platform.VolumeSnapshotSpec{PVCName: "sales"},
		})
	})
	f.env.Run(time.Second)
	f.env.Process("check", func(p *sim.Proc) {
		obj, _ := f.sites.MainAPI.Get(p, platform.ObjectKey{Kind: platform.KindVolumeSnapshot, Namespace: "shop", Name: "s1"})
		st := obj.(*platform.VolumeSnapshot).Status
		if !st.Ready || st.SnapshotID == "" {
			t.Errorf("status = %+v", st)
		}
		if _, err := f.sites.MainArray.Snapshot(st.SnapshotID); err != nil {
			t.Errorf("array snapshot: %v", err)
		}
	})
	f.env.Run(0)
	if sc.Snapshots() != 1 {
		t.Fatalf("snapshots = %d", sc.Snapshots())
	}
}

func TestSnapshotGroupGateOffRefuses(t *testing.T) {
	f := newTwoSites(t)
	f.createClaims(t, "shop", "sales", "stock")
	sc := NewSnapshotController(f.env, f.sites.MainAPI, f.sites.MainArray, FeatureGates{VolumeGroupSnapshot: false})
	sc.Start()
	f.env.Process("snap", func(p *sim.Proc) {
		f.sites.MainAPI.Create(p, &platform.VolumeGroupSnapshot{
			Meta: platform.Meta{Kind: platform.KindVolumeGroupSnapshot, Namespace: "shop", Name: "g1"},
			Spec: platform.VolumeGroupSnapshotSpec{PVCNames: []string{"sales", "stock"}},
		})
	})
	f.env.Run(time.Second)
	f.env.Process("check", func(p *sim.Proc) {
		obj, _ := f.sites.MainAPI.Get(p, platform.ObjectKey{Kind: platform.KindVolumeGroupSnapshot, Namespace: "shop", Name: "g1"})
		st := obj.(*platform.VolumeGroupSnapshot).Status
		if st.Ready {
			t.Error("group snapshot ready despite disabled gate")
		}
		if !strings.Contains(st.Message, "feature gate") {
			t.Errorf("message = %q", st.Message)
		}
	})
	f.env.Run(0)
	if sc.Refused() != 1 || sc.Snapshots() != 0 {
		t.Fatalf("refused=%d snapshots=%d", sc.Refused(), sc.Snapshots())
	}
	if len(f.sites.MainArray.ListSnapshots()) != 0 {
		t.Fatal("array snapshots created despite gate")
	}
}

func TestSnapshotGroupGateOnCreatesAtomically(t *testing.T) {
	f := newTwoSites(t)
	f.createClaims(t, "shop", "sales", "stock")
	sc := NewSnapshotController(f.env, f.sites.MainAPI, f.sites.MainArray, FeatureGates{VolumeGroupSnapshot: true})
	sc.Start()
	f.env.Process("snap", func(p *sim.Proc) {
		f.sites.MainAPI.Create(p, &platform.VolumeGroupSnapshot{
			Meta: platform.Meta{Kind: platform.KindVolumeGroupSnapshot, Namespace: "shop", Name: "g1"},
			Spec: platform.VolumeGroupSnapshotSpec{PVCNames: []string{"sales", "stock"}},
		})
	})
	f.env.Run(time.Second)
	f.env.Process("check", func(p *sim.Proc) {
		obj, _ := f.sites.MainAPI.Get(p, platform.ObjectKey{Kind: platform.KindVolumeGroupSnapshot, Namespace: "shop", Name: "g1"})
		st := obj.(*platform.VolumeGroupSnapshot).Status
		if !st.Ready || len(st.SnapshotIDs) != 2 {
			t.Errorf("status = %+v", st)
		}
		g, err := f.sites.MainArray.SnapshotGroupByName(st.GroupName)
		if err != nil {
			t.Error(err)
			return
		}
		snaps := g.Snapshots()
		if len(snaps) != 2 || snaps[0].TakenAt() != snaps[1].TakenAt() {
			t.Error("group snapshots not atomic")
		}
	})
	f.env.Run(0)
}

// createShardedRG posts a ReplicationGroup CR requesting a sharded journal
// and runs the plugin until Ready.
func (f *twoSites) createShardedRG(t *testing.T, name string, shards int, pvcs ...string) *ReplicationPlugin {
	t.Helper()
	rp := NewReplicationPlugin(f.env, f.sites, replication.Config{})
	rp.Start()
	f.env.Process("rg", func(p *sim.Proc) {
		err := f.sites.MainAPI.Create(p, &platform.ReplicationGroup{
			Meta: platform.Meta{Kind: platform.KindReplicationGroup, Name: name},
			Spec: platform.ReplicationGroupSpec{
				SourceNamespace:  "shop",
				PVCNames:         pvcs,
				ConsistencyGroup: true,
				JournalShards:    shards,
			},
		})
		if err != nil {
			t.Error(err)
		}
	})
	f.env.Run(5 * time.Second)
	return rp
}

// TestReplicationPluginShardedJournal reconciles a CR with JournalShards=4
// into one sharded consistency group drained by a multi-lane engine, checks
// records replicate, and verifies teardown removes the shard journals.
func TestReplicationPluginShardedJournal(t *testing.T) {
	f := newTwoSites(t)
	pvcs := []string{"d0", "d1", "d2", "d3", "d4", "d5"}
	f.createClaims(t, "shop", pvcs...)
	rp := f.createShardedRG(t, "backup-shop", 4, pvcs...)

	groups := rp.Groups("backup-shop")
	if len(groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(groups))
	}
	sg, ok := groups[0].(*replication.ShardedGroup)
	if !ok {
		t.Fatalf("engine is %T, want *replication.ShardedGroup", groups[0])
	}
	if sg.Lanes() != 4 {
		t.Fatalf("lanes = %d, want 4", sg.Lanes())
	}
	sj, err := f.sites.MainArray.ShardedJournal("jnl-backup-shop-0")
	if err != nil {
		t.Fatalf("sharded journal not registered: %v", err)
	}
	if len(sj.Members()) != len(pvcs) || sj.ShardCount() != 4 {
		t.Fatalf("journal members=%d shards=%d", len(sj.Members()), sj.ShardCount())
	}
	f.env.Process("check", func(p *sim.Proc) {
		obj, err := f.sites.MainAPI.Get(p, platform.ObjectKey{Kind: platform.KindReplicationGroup, Name: "backup-shop"})
		if err != nil {
			t.Error(err)
			return
		}
		rg := obj.(*platform.ReplicationGroup)
		if rg.Status.Phase != platform.GroupReady || rg.Status.JournalID != "jnl-backup-shop-0" {
			t.Errorf("status = %+v", rg.Status)
		}
		// Writes replicate through the lanes to the read-only twins.
		v, _ := f.sites.MainArray.Volume(VolumeIDForClaim("shop", "d0"))
		buf := make([]byte, f.sites.MainArray.Config().BlockSize)
		buf[0] = 0x5A
		if _, err := v.Write(p, 7, buf); err != nil {
			t.Error(err)
			return
		}
		if !sg.CatchUp(p) {
			t.Error("catch-up interrupted")
			return
		}
		tv, _ := f.sites.BackupArray.Volume(VolumeIDForClaim("shop", "d0"))
		if got := tv.Peek(7); got[0] != 0x5A {
			t.Errorf("record not applied at backup: %x", got[0])
		}
	})
	f.env.Run(0)

	f.env.Process("delete", func(p *sim.Proc) {
		f.sites.MainAPI.Delete(p, platform.ObjectKey{Kind: platform.KindReplicationGroup, Name: "backup-shop"})
	})
	f.env.Run(5 * time.Second)
	if len(rp.Groups("backup-shop")) != 0 {
		t.Fatal("groups survive CR deletion")
	}
	if _, err := f.sites.MainArray.ShardedJournal("jnl-backup-shop-0"); err == nil {
		t.Fatal("sharded journal survives CR deletion")
	}
	for _, name := range pvcs {
		v, _ := f.sites.MainArray.Volume(VolumeIDForClaim("shop", name))
		if v.Journal() != nil {
			t.Fatalf("%s still journal-attached after teardown", name)
		}
	}
}

// TestProvisionerUnwindsDeletedClaim pins the reclaim side of dynamic
// provisioning: deleting a bound PVC must delete the PV object and return
// the array volume (and its snapshots) to the free lists; a volume still
// attached to a journal is retried until replication teardown detaches it.
func TestProvisionerUnwindsDeletedClaim(t *testing.T) {
	f := newTwoSites(t)
	f.createClaims(t, "shop", "sales", "stock")
	before := f.sites.MainArray.Usage()
	if before.Volumes != 2 {
		t.Fatalf("volumes before = %d", before.Volumes)
	}
	// A snapshot on the volume must not block the unwind.
	if _, err := f.sites.MainArray.CreateSnapshot("snap-sales", VolumeIDForClaim("shop", "sales")); err != nil {
		t.Fatal(err)
	}
	// Attach the stock volume to a journal: its unwind must stall (retry)
	// until the journal releases it.
	if _, err := f.sites.MainArray.CreateConsistencyGroup("jnl-hold",
		[]storage.VolumeID{VolumeIDForClaim("shop", "stock")}); err != nil {
		t.Fatal(err)
	}
	f.env.Process("delete", func(p *sim.Proc) {
		for _, name := range []string{"sales", "stock"} {
			if err := f.sites.MainAPI.Delete(p, platform.ObjectKey{Kind: platform.KindPVC, Namespace: "shop", Name: name}); err != nil {
				t.Error(err)
			}
		}
	})
	f.env.Run(f.env.Now() + time.Second)
	if _, err := f.sites.MainArray.Volume(VolumeIDForClaim("shop", "sales")); err == nil {
		t.Fatal("sales volume not reclaimed after claim deletion")
	}
	if _, err := f.sites.MainArray.Volume(VolumeIDForClaim("shop", "stock")); err != nil {
		t.Fatal("attached stock volume deleted while journaled")
	}
	// Release the journal: the provisioner's backoff retry finishes the job.
	if err := f.sites.MainArray.DetachJournal(VolumeIDForClaim("shop", "stock")); err != nil {
		t.Fatal(err)
	}
	if err := f.sites.MainArray.DeleteJournal("jnl-hold"); err != nil {
		t.Fatal(err)
	}
	f.env.Run(f.env.Now() + 5*time.Second)
	if res := f.sites.MainArray.Residue("pvc-shop-"); len(res) != 0 {
		t.Fatalf("residue after unwind: %v", res)
	}
	f.env.Process("check-pv", func(p *sim.Proc) {
		for _, name := range []string{"sales", "stock"} {
			if _, err := f.sites.MainAPI.Get(p, platform.ObjectKey{Kind: platform.KindPV, Name: PVNameForClaim("shop", name)}); err == nil {
				t.Errorf("PV for %s survived the unwind", name)
			}
		}
	})
	f.env.Run(0)
	u := f.sites.MainArray.Usage()
	if u.Volumes != 0 || u.Snapshots != 0 || u.Journals != 0 || u.StoredBlocks != 0 {
		t.Fatalf("array not clean after unwind: %+v", u)
	}
}

// setRGShards patches the CR's JournalShards (what the operator does when
// the ShardsLabel changes) and lets the plugin reconcile.
func (f *twoSites) setRGShards(t *testing.T, name string, shards int) {
	t.Helper()
	f.env.Process("respec", func(p *sim.Proc) {
		obj, err := f.sites.MainAPI.Get(p, platform.ObjectKey{Kind: platform.KindReplicationGroup, Name: name})
		if err != nil {
			t.Error(err)
			return
		}
		rg := obj.(*platform.ReplicationGroup)
		rg.Spec.JournalShards = shards
		if err := f.sites.MainAPI.Update(p, rg); err != nil {
			t.Error(err)
		}
	})
	f.env.Run(f.env.Now() + 5*time.Second)
}

// TestReplicationPluginReshardsOnSpecChange drives a live 2->4->2 reshard
// through the CR: the SAME engine reconfigures in place, replication keeps
// working across both transitions, and the shrink decommissions the retired
// shard journals.
func TestReplicationPluginReshardsOnSpecChange(t *testing.T) {
	f := newTwoSites(t)
	pvcs := []string{"d0", "d1", "d2", "d3", "d4", "d5", "d6", "d7"}
	f.createClaims(t, "shop", pvcs...)
	rp := f.createShardedRG(t, "backup-shop", 2, pvcs...)
	before := rp.Groups("backup-shop")[0].(*replication.ShardedGroup)
	if before.Lanes() != 2 {
		t.Fatalf("lanes = %d, want 2", before.Lanes())
	}

	f.setRGShards(t, "backup-shop", 4)
	after := rp.Groups("backup-shop")[0]
	if after != replication.Replicator(before) {
		t.Fatal("grow replaced the engine; a sharded engine must reshard in place")
	}
	if before.Lanes() != 4 {
		t.Fatalf("lanes after grow = %d, want 4", before.Lanes())
	}
	sj, err := f.sites.MainArray.ShardedJournal("jnl-backup-shop-0")
	if err != nil {
		t.Fatal(err)
	}
	if sj.ShardCount() != 4 || sj.Reshards() != 1 {
		t.Fatalf("journal shards=%d reshards=%d", sj.ShardCount(), sj.Reshards())
	}

	// Replication still works on the widened lane set.
	f.env.Process("write", func(p *sim.Proc) {
		v, _ := f.sites.MainArray.Volume(VolumeIDForClaim("shop", "d3"))
		buf := make([]byte, f.sites.MainArray.Config().BlockSize)
		buf[0] = 0x77
		if _, err := v.Write(p, 9, buf); err != nil {
			t.Error(err)
			return
		}
		if !before.AwaitReshard(p) || !before.CatchUp(p) {
			t.Error("engine never settled after grow")
		}
	})
	f.env.Run(0)
	tv, _ := f.sites.BackupArray.Volume(VolumeIDForClaim("shop", "d3"))
	if got := tv.Peek(9); got[0] != 0x77 {
		t.Fatalf("write after grow not replicated: %x", got[0])
	}

	f.setRGShards(t, "backup-shop", 2)
	f.env.Process("settle", func(p *sim.Proc) { before.AwaitReshard(p) })
	f.env.Run(0)
	if before.Lanes() != 2 {
		t.Fatalf("lanes after shrink = %d, want 2", before.Lanes())
	}
	for _, k := range []int{2, 3} {
		if _, err := f.sites.MainArray.Journal(fmt.Sprintf("jnl-backup-shop-0#s%d", k)); err == nil {
			t.Fatalf("retired shard journal #s%d survives the shrink", k)
		}
	}
}

// TestReplicationPluginUpgradesPlainEngine reshards a group that started on
// the paper's plain single-journal path (shards=1): the plugin must hand
// the journal off losslessly to a sharded engine and widen it, with writes
// from before and after the upgrade all reaching the backup.
func TestReplicationPluginUpgradesPlainEngine(t *testing.T) {
	f := newTwoSites(t)
	pvcs := []string{"d0", "d1", "d2", "d3"}
	f.createClaims(t, "shop", pvcs...)
	rp := f.createShardedRG(t, "backup-shop", 1, pvcs...)
	old, ok := rp.Groups("backup-shop")[0].(*replication.Group)
	if !ok {
		t.Fatalf("shards=1 engine is %T, want the plain *replication.Group", rp.Groups("backup-shop")[0])
	}

	// Backlog some writes so the handoff happens with records pending.
	f.env.Process("pre-writes", func(p *sim.Proc) {
		buf := make([]byte, f.sites.MainArray.Config().BlockSize)
		for i, name := range pvcs {
			buf[0] = byte(0x10 + i)
			v, _ := f.sites.MainArray.Volume(VolumeIDForClaim("shop", name))
			if _, err := v.Write(p, int64(i), buf); err != nil {
				t.Error(err)
			}
		}
	})
	f.env.Run(0)

	f.setRGShards(t, "backup-shop", 4)
	sg, ok := rp.Groups("backup-shop")[0].(*replication.ShardedGroup)
	if !ok {
		t.Fatalf("engine after upgrade is %T, want *replication.ShardedGroup", rp.Groups("backup-shop")[0])
	}
	if sg.Lanes() != 4 {
		t.Fatalf("lanes = %d, want 4", sg.Lanes())
	}
	if !old.Detached() {
		t.Fatal("plain engine was not detached (records may have been dropped as lost)")
	}
	if rp.NamespaceOf(sg) != "shop" {
		t.Fatal("namespace mapping lost across the engine swap")
	}
	f.env.Process("post-writes", func(p *sim.Proc) {
		buf := make([]byte, f.sites.MainArray.Config().BlockSize)
		buf[0] = 0x99
		v, _ := f.sites.MainArray.Volume(VolumeIDForClaim("shop", "d0"))
		if _, err := v.Write(p, 17, buf); err != nil {
			t.Error(err)
			return
		}
		if !sg.AwaitReshard(p) || !sg.CatchUp(p) {
			t.Error("upgraded engine never caught up")
		}
	})
	f.env.Run(0)
	for i, name := range pvcs {
		tv, _ := f.sites.BackupArray.Volume(VolumeIDForClaim("shop", name))
		if got := tv.Peek(int64(i)); got[0] != byte(0x10+i) {
			t.Fatalf("pre-upgrade write to %s lost: %x", name, got[0])
		}
	}
	tv, _ := f.sites.BackupArray.Volume(VolumeIDForClaim("shop", "d0"))
	if got := tv.Peek(17); got[0] != 0x99 {
		t.Fatalf("post-upgrade write lost: %x", got[0])
	}

	// Teardown after the upgrade reclaims the converted journal too.
	f.env.Process("delete", func(p *sim.Proc) {
		f.sites.MainAPI.Delete(p, platform.ObjectKey{Kind: platform.KindReplicationGroup, Name: "backup-shop"})
	})
	f.env.Run(f.env.Now() + 5*time.Second)
	if res := f.sites.MainArray.Residue("jnl-backup-shop-"); len(res) != 0 {
		t.Fatalf("journal residue after teardown: %v", res)
	}
}

// TestReplicationPluginUnchangedReconcileIsNoop pins the guarantee E11-E14
// rest on: a reconcile with the shard count unchanged performs zero
// migration and zero API writes.
func TestReplicationPluginUnchangedReconcileIsNoop(t *testing.T) {
	f := newTwoSites(t)
	pvcs := []string{"d0", "d1", "d2", "d3"}
	f.createClaims(t, "shop", pvcs...)
	rp := f.createShardedRG(t, "backup-shop", 2, pvcs...)
	engine := rp.Groups("backup-shop")[0]
	sj, err := f.sites.MainArray.ShardedJournal("jnl-backup-shop-0")
	if err != nil {
		t.Fatal(err)
	}
	var versionAfterTouch int64
	// Touch the CR without changing the spec: the plugin reconcile runs and
	// must not reshard, migrate, or write status.
	f.env.Process("touch", func(p *sim.Proc) {
		obj, err := f.sites.MainAPI.Get(p, platform.ObjectKey{Kind: platform.KindReplicationGroup, Name: "backup-shop"})
		if err != nil {
			t.Error(err)
			return
		}
		if err := f.sites.MainAPI.Update(p, obj); err != nil {
			t.Error(err)
			return
		}
		versionAfterTouch = obj.GetMeta().ResourceVersion
	})
	f.env.Run(f.env.Now() + 2*time.Second)
	if got := rp.Groups("backup-shop")[0]; got != engine {
		t.Fatal("unchanged reconcile replaced the engine")
	}
	if sj.Reshards() != 0 || sj.MovedRecords() != 0 || sj.MovedVolumes() != 0 {
		t.Fatalf("unchanged reconcile migrated: reshards=%d movedRecs=%d movedVols=%d",
			sj.Reshards(), sj.MovedRecords(), sj.MovedVolumes())
	}
	f.env.Process("verify-version", func(p *sim.Proc) {
		obj, err := f.sites.MainAPI.Get(p, platform.ObjectKey{Kind: platform.KindReplicationGroup, Name: "backup-shop"})
		if err != nil {
			t.Error(err)
			return
		}
		if v := obj.GetMeta().ResourceVersion; v != versionAfterTouch {
			t.Errorf("CR version moved %d -> %d: the no-op reconcile wrote status", versionAfterTouch, v)
		}
	})
	f.env.Run(0)
}

// TestReplicationPluginTeardownMidReshard deletes the CR while a reshard's
// migration window is still open: every shard journal — active, added, and
// retired — must come back off the array.
func TestReplicationPluginTeardownMidReshard(t *testing.T) {
	f := newTwoSites(t)
	pvcs := []string{"d0", "d1", "d2", "d3", "d4", "d5"}
	f.createClaims(t, "shop", pvcs...)
	rp := f.createShardedRG(t, "backup-shop", 4, pvcs...)
	sg := rp.Groups("backup-shop")[0].(*replication.ShardedGroup)
	// Backlog writes, then shrink and delete immediately — the retired
	// shards are still waiting on their staged records when the CR goes.
	f.env.Process("churn", func(p *sim.Proc) {
		buf := make([]byte, f.sites.MainArray.Config().BlockSize)
		for i := 0; i < 48; i++ {
			v, _ := f.sites.MainArray.Volume(VolumeIDForClaim("shop", pvcs[i%len(pvcs)]))
			if _, err := v.Write(p, int64(i/len(pvcs)), buf); err != nil {
				t.Error(err)
				return
			}
		}
	})
	f.env.Run(0)
	f.setRGShards(t, "backup-shop", 2)
	f.env.Process("delete", func(p *sim.Proc) {
		f.sites.MainAPI.Delete(p, platform.ObjectKey{Kind: platform.KindReplicationGroup, Name: "backup-shop"})
	})
	f.env.Run(f.env.Now() + 5*time.Second)
	if !sg.Stopped() {
		t.Fatal("engine still running after CR deletion")
	}
	if res := f.sites.MainArray.Residue("jnl-backup-shop-"); len(res) != 0 {
		t.Fatalf("journal residue after mid-reshard teardown: %v", res)
	}
}
