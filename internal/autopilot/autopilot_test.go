package autopilot

import (
	"testing"
	"time"

	"repro/internal/platform"
)

var gold = platform.SLOClass{
	Name: "gold", RPOTarget: time.Second, MinShards: 1, MaxShards: 4,
}

// TestShardTargetHysteresisBand pins the kernel's three regions: above
// up×target grows one lane, below down×target shrinks one, and the whole
// band between holds — in both directions, which is what prevents flapping.
func TestShardTargetHysteresisBand(t *testing.T) {
	const up, down = 0.7, 0.25
	cases := []struct {
		name string
		cur  int
		rpo  time.Duration
		want int
	}{
		{"breach grows", 1, 900 * time.Millisecond, 2},
		{"way above target still one step", 2, 5 * time.Second, 3},
		{"just above up threshold grows", 1, 701 * time.Millisecond, 2},
		{"at up threshold holds", 2, 700 * time.Millisecond, 2},
		{"mid-band holds", 2, 500 * time.Millisecond, 2},
		{"just above down threshold holds", 2, 251 * time.Millisecond, 2},
		{"at down threshold holds", 2, 250 * time.Millisecond, 2},
		{"below down threshold shrinks", 2, 100 * time.Millisecond, 1},
		{"grow bounded by MaxShards", 4, 5 * time.Second, 4},
		{"shrink bounded by MinShards", 1, 0, 1},
	}
	for _, tc := range cases {
		if got := shardTarget(gold, up, down, tc.cur, tc.rpo); got != tc.want {
			t.Errorf("%s: shardTarget(cur=%d, rpo=%v) = %d, want %d", tc.name, tc.cur, tc.rpo, got, tc.want)
		}
	}
}

// TestShardTargetNoFlapping drives the kernel through the scenario a naive
// single-threshold controller flaps on: a reshard brings the RPO from just
// above the grow trigger to just below it. With the wide hysteresis band
// the new lane count must HOLD there — only a deep quiet (below the shrink
// threshold) may take the lane back, and once it does, the RPO rebounding
// into the band must not immediately re-add it.
func TestShardTargetNoFlapping(t *testing.T) {
	const up, down = 0.7, 0.25
	cur := shardTarget(gold, up, down, 1, 750*time.Millisecond) // breach: 1 -> 2
	if cur != 2 {
		t.Fatalf("grow step = %d, want 2", cur)
	}
	// The extra lane roughly halves the windowed RPO: 375ms is below the
	// grow trigger but far above the shrink trigger. Must hold for good.
	for i := 0; i < 10; i++ {
		if got := shardTarget(gold, up, down, cur, 375*time.Millisecond); got != cur {
			t.Fatalf("tick %d: mid-band RPO moved lanes %d -> %d (flap)", i, cur, got)
		}
	}
	// Deep quiet reclaims the lane...
	cur = shardTarget(gold, up, down, cur, 50*time.Millisecond)
	if cur != 1 {
		t.Fatalf("shrink step = %d, want 1", cur)
	}
	// ...and the resulting rebound (~100ms at one lane) stays in the band:
	// no immediate re-grow, or the pair would oscillate forever.
	if got := shardTarget(gold, up, down, cur, 100*time.Millisecond); got != cur {
		t.Fatalf("post-shrink rebound re-grew %d -> %d (flap)", cur, got)
	}
}

// TestShardTargetIgnoresUntargetedClasses: a class with no RPO SLO is not
// the reshard loop's to manage, whatever its probes read.
func TestShardTargetIgnoresUntargetedClasses(t *testing.T) {
	bulk := platform.SLOClass{Name: "bulk", MinShards: 1, MaxShards: 4}
	for _, rpo := range []time.Duration{0, time.Second, time.Hour} {
		if got := shardTarget(bulk, 0.7, 0.25, 2, rpo); got != 2 {
			t.Errorf("untargeted class moved: rpo=%v -> lanes %d", rpo, got)
		}
	}
}

// TestConfigDefaults pins the documented zero-value behaviour.
func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Period != 500*time.Millisecond || c.Window != time.Second {
		t.Errorf("period/window defaults: %v/%v", c.Period, c.Window)
	}
	if c.ScaleUpFraction != 0.7 || c.ScaleDownFraction != 0.25 {
		t.Errorf("reshard band defaults: %v/%v", c.ScaleUpFraction, c.ScaleDownFraction)
	}
	if c.DerateFraction != 0.9 || c.RestoreFraction != 0.5 {
		t.Errorf("admission band defaults: %v/%v", c.DerateFraction, c.RestoreFraction)
	}
	if c.Cooldown != 2*time.Second || c.MinRateBps != 64<<10 || c.RestorePatience != 4 {
		t.Errorf("cooldown/floor/patience defaults: %v/%v/%v", c.Cooldown, c.MinRateBps, c.RestorePatience)
	}
}
