package autopilot

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
)

// LeastLoaded is the default placement policy: a new drain lane lands on
// the non-partitioned member link carrying the least load. Load is judged
// in three tiers:
//
//  1. placements this policy itself made within the Memory window — a
//     reshard creates its lanes back-to-back at one instant, before any
//     bytes flow, so byte counters alone would pile every new lane onto
//     the same member;
//  2. recent utilization: an EWMA of each member's byte rate per unit of
//     bandwidth, maintained from the periodic Observe feed (the autopilot
//     calls Observe once per control tick). This is what steers a lane
//     toward a member whose traffic has been derated away and off one that
//     merely accumulated bytes in the past;
//  3. cumulative sent bytes per unit of bandwidth, the cold-start
//     tiebreak before any observation exists.
//
// Ties break on the lowest member index; a single-member fabric keeps the
// implicit any-link default.
type LeastLoaded struct {
	// Memory is how long a placement keeps counting as load (default 5s):
	// long enough to cover a burst of reshards, short enough that retired
	// lanes stop weighing on the score.
	Memory time.Duration

	placed []placement

	// Utilization EWMA per member link, fed by Observe.
	lastAt    time.Duration
	lastBytes []int64
	ewmaBps   []float64
	observed  bool
}

type placement struct {
	at   time.Duration
	link int
}

// Observe folds the members' current byte counters into the utilization
// EWMA. The autopilot calls it once per control tick; anyone driving the
// policy standalone can call it on any fixed cadence.
func (ll *LeastLoaded) Observe(f *fabric.Fabric) {
	links := f.Links()
	now := f.Now()
	if len(ll.lastBytes) != len(links) {
		ll.lastBytes = make([]int64, len(links))
		ll.ewmaBps = make([]float64, len(links))
		for i, l := range links {
			ll.lastBytes[i] = l.SentBytes()
		}
		ll.lastAt = now
		return
	}
	dt := (now - ll.lastAt).Seconds()
	if dt <= 0 {
		return
	}
	for i, l := range links {
		sent := l.SentBytes()
		inst := float64(sent-ll.lastBytes[i]) / dt
		ll.ewmaBps[i] = 0.5*ll.ewmaBps[i] + 0.5*inst
		ll.lastBytes[i] = sent
	}
	ll.lastAt = now
	ll.observed = true
}

// PlaceLane implements core.PlacementPolicy.
func (ll *LeastLoaded) PlaceLane(namespace string, lane int, f *fabric.Fabric) int {
	links := f.Links()
	if len(links) < 2 {
		return -1
	}
	memory := ll.Memory
	if memory <= 0 {
		memory = 5 * time.Second
	}
	now := f.Now()
	recent := make([]int, len(links))
	kept := ll.placed[:0]
	for _, pl := range ll.placed {
		if now-pl.at <= memory {
			kept = append(kept, pl)
			if pl.link < len(links) {
				recent[pl.link]++
			}
		}
	}
	ll.placed = kept

	best := -1
	var bestCount int
	var bestScore float64
	for i, l := range links {
		if l.Partitioned() {
			continue
		}
		bw := l.Config().BandwidthBps
		if bw <= 0 {
			bw = 1 // unlimited links score by raw rate
		}
		var score float64
		if ll.observed && i < len(ll.ewmaBps) {
			score = ll.ewmaBps[i] / bw
		} else {
			score = float64(l.SentBytes()) / bw
		}
		if best < 0 || recent[i] < bestCount || (recent[i] == bestCount && score < bestScore) {
			best, bestCount, bestScore = i, recent[i], score
		}
	}
	if best >= 0 {
		ll.placed = append(ll.placed, placement{at: now, link: best})
	}
	return best
}

// loggingPlacement wraps the configured policy so every placement answer
// lands in the decision log. Placement runs inside reconcile steps (domain
// 0, serialized by the kernel), so appending here is deterministic and
// race-free even under parallel execution.
type loggingPlacement struct {
	a     *Autopilot
	inner core.PlacementPolicy
}

func (lp *loggingPlacement) PlaceLane(namespace string, lane int, f *fabric.Fabric) int {
	li := lp.inner.PlaceLane(namespace, lane, f)
	if li >= 0 {
		lp.a.record(lp.a.sys.Env.Now(), namespace, "place-lane",
			fmt.Sprintf("lane %d -> link %d", lane, li))
	}
	return li
}
