// Package autopilot closes the loop from observed RPO to action. A single
// control process wakes on a fixed sim-time period, reads the telemetry
// plane's probed series (never the engines' internal state directly — the
// controller sees exactly what an operator's dashboard sees), and drives
// three effectors toward the declared platform.SLOClass targets:
//
//   - reshard-on-SLO: a tenant whose windowed worst RPO sits above its
//     class target gets another drain lane (Spec.JournalShards bumped; the
//     tenant reconcile loop performs the epoch-bounded live reshard); a
//     tenant comfortably below target gives a lane back. A hysteresis band
//     plus a per-tenant cooldown keeps the loop from thrashing.
//   - admission: when a protected class (RPOTarget > 0) breaches, the
//     shedable classes below it in AdmissionPriority are derated — their
//     fabric token-bucket rate halved per period down to a floor — and
//     restored by doubling once every protected class is comfortably
//     healthy again.
//   - placement: new drain lanes land on fabric member links chosen by a
//     PlacementPolicy (least-loaded-by-bytes default) instead of the
//     dispatchers' any-link default.
//
// Every action is appended to a decision log in simulation order; with the
// kernel's deterministic parallel runtime the log is byte-identical across
// worker counts, which is how the autopilot's own behaviour is regression-
// tested (see TestAutopilotDeterminism).
package autopilot

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/platform"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Config tunes the control loop. The zero value is usable: every field
// defaults to the values documented on it.
type Config struct {
	// Period is the evaluation interval in sim time (default 500ms). Each
	// tick reads the telemetry registry and actuates at most one reshard
	// step per tenant and one admission step per shedable class.
	Period time.Duration
	// Window is the lookback over the probed RPO series for the windowed
	// worst value (default 2×Period). Longer windows smooth transients;
	// shorter ones react faster.
	Window time.Duration
	// ScaleUpFraction and ScaleDownFraction bound the hysteresis band as
	// fractions of the class RPOTarget: windowed RPO above up×target adds
	// a lane, below down×target removes one, anywhere between holds
	// (defaults 0.7 and 0.25). The wide gap is what prevents flapping.
	ScaleUpFraction   float64
	ScaleDownFraction float64
	// Cooldown is the minimum sim time between reshard actuations on one
	// tenant (default 2s) so a migration's own disruption is not read as
	// a fresh signal.
	Cooldown time.Duration
	// DerateFraction and RestoreFraction bound the admission hysteresis:
	// a protected class above derate×target sheds the bulk classes; all
	// protected classes must fall below restore×target before bulk rate
	// is given back (defaults 0.9 and 0.5).
	DerateFraction  float64
	RestoreFraction float64
	// MinRateBps floors the derated bulk rate (default 64 KiB/s) so shed
	// classes starve but never deadlock.
	MinRateBps float64
	// RestorePatience is how many consecutive all-healthy ticks a shedable
	// class must see before each restore step (default 4). Restoring is a
	// probe — giving rate back can re-breach the protected classes — so it
	// is paced far slower than derating, which acts on the next tick.
	RestorePatience int
	// Placement chooses the fabric member link for each new drain lane.
	// Nil installs LeastLoaded. Every PlaceLane answer is recorded in the
	// decision log.
	Placement core.PlacementPolicy
}

func (c Config) withDefaults() Config {
	if c.Period <= 0 {
		c.Period = 500 * time.Millisecond
	}
	if c.Window <= 0 {
		c.Window = 2 * c.Period
	}
	if c.ScaleUpFraction <= 0 {
		c.ScaleUpFraction = 0.7
	}
	if c.ScaleDownFraction <= 0 {
		c.ScaleDownFraction = 0.25
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.DerateFraction <= 0 {
		c.DerateFraction = 0.9
	}
	if c.RestoreFraction <= 0 {
		c.RestoreFraction = 0.5
	}
	if c.MinRateBps <= 0 {
		c.MinRateBps = 64 << 10
	}
	if c.RestorePatience <= 0 {
		c.RestorePatience = 4
	}
	return c
}

// demandDecay is the per-tick factor on the remembered peak throughput of a
// shedable class (half-life ~23 ticks).
const demandDecay = 0.97

// Decision is one autopilot action, recorded in simulation order.
type Decision struct {
	At     time.Duration
	Tenant string // namespace, or the fabric class for admission actions
	Action string // reshard-up | reshard-down | derate | restore | place-lane
	Detail string
}

// Autopilot owns the control process. Construct with New, arm with Start,
// disarm with Stop; read the audit trail with Decisions or FormatLog.
type Autopilot struct {
	sys *core.System
	cfg Config

	stop *sim.Event

	// inner is the configured placement policy (unwrapped); if it wants a
	// periodic utilization feed, each tick provides one.
	inner core.PlacementPolicy

	decisions []Decision

	lastReshard map[string]time.Duration // namespace → last actuation

	// Admission state, keyed by fabric class name.
	capBps    map[string]float64 // current cap; absent = not derated
	origBps   map[string]float64 // configured rate before the first derate
	demandBps map[string]float64 // peak measured throughput of the class
	lastBytes map[string]int64   // ClassStats.Bytes at the previous tick
	healthy   map[string]int     // consecutive all-healthy ticks while capped
}

// New wires an autopilot to the system. The system must have the telemetry
// plane enabled (Config.Telemetry) — the autopilot senses only through it.
// The placement policy is installed immediately so lanes provisioned before
// Start still land where the policy says; the control process itself does
// not run until Start.
func New(sys *core.System, cfg Config) (*Autopilot, error) {
	if sys.Telemetry == nil {
		return nil, fmt.Errorf("autopilot: system has no telemetry plane (set core.Config.Telemetry)")
	}
	a := &Autopilot{
		sys:         sys,
		cfg:         cfg.withDefaults(),
		stop:        sys.Env.NewEvent(),
		lastReshard: make(map[string]time.Duration),
		capBps:      make(map[string]float64),
		origBps:     make(map[string]float64),
		demandBps:   make(map[string]float64),
		lastBytes:   make(map[string]int64),
		healthy:     make(map[string]int),
	}
	a.inner = a.cfg.Placement
	if a.inner == nil {
		a.inner = &LeastLoaded{}
	}
	sys.SetPlacement(&loggingPlacement{a: a, inner: a.inner})
	return a, nil
}

// Start launches the control process: one tick every Period until Stop.
func (a *Autopilot) Start() {
	a.sys.Env.Process("autopilot", func(p *sim.Proc) {
		for {
			if p.WaitTimeout(a.stop, a.cfg.Period) {
				return
			}
			a.tick(p)
		}
	})
}

// Stop disarms the control loop. Call it before draining the event queue to
// quiescence (sim.Env.Run(0)) — an armed autopilot re-schedules itself
// forever. Safe to call more than once, and safe outside any process (the
// control proc runs in domain 0, never inside a parallel round).
func (a *Autopilot) Stop() { a.stop.Trigger() }

// Decisions returns the audit trail in simulation order.
func (a *Autopilot) Decisions() []Decision { return a.decisions }

// FormatLog renders the decision log one line per action — the byte-exact
// artifact compared across worker counts by the determinism test.
func (a *Autopilot) FormatLog() string {
	var b strings.Builder
	for _, d := range a.decisions {
		fmt.Fprintf(&b, "%-12s %-14s %-12s %s\n", d.At, d.Tenant, d.Action, d.Detail)
	}
	return b.String()
}

func (a *Autopilot) record(at time.Duration, tenant, action, detail string) {
	a.decisions = append(a.decisions, Decision{At: at, Tenant: tenant, Action: action, Detail: detail})
}

// shardTarget is the pure hysteresis kernel: the desired lane count for a
// class given the current count and the windowed worst RPO. Above up×target
// grow by one (bounded by MaxShards); below down×target shrink by one
// (bounded by MinShards); inside the band hold. A class without an RPO SLO
// never moves.
func shardTarget(cls platform.SLOClass, up, down float64, cur int, winRPO time.Duration) int {
	if cls.RPOTarget <= 0 {
		return cur
	}
	t := float64(cls.RPOTarget)
	r := float64(winRPO)
	switch {
	case r > up*t && cur < cls.MaxShards:
		return cur + 1
	case r < down*t && cur > cls.MinShards:
		return cur - 1
	}
	return cur
}

// windowRPO returns the worst probed RPO for the namespace over the
// lookback window, and whether any sample exists. The probe records RPO as
// float64 nanoseconds.
func (a *Autopilot) windowRPO(ns string, now time.Duration) (time.Duration, bool) {
	s := a.sys.Telemetry.Series("rpo", telemetry.L("tenant", ns))
	if s == nil {
		return 0, false
	}
	from := now - a.cfg.Window
	if from < 0 {
		from = 0
	}
	worst, seen := 0.0, false
	for _, pt := range s.Window(from, now) {
		if !seen || pt.Value > worst {
			worst, seen = pt.Value, true
		}
	}
	return time.Duration(worst), seen
}

// tick is one evaluation: sense every SLO-classed tenant, actuate reshard
// steps, then run the admission sweep. All iteration is in sorted order
// (the API server's List is namespace-sorted, SLOClasses is name-sorted) so
// the decision log is a pure function of the simulation schedule.
func (a *Autopilot) tick(p *sim.Proc) {
	now := p.Now()
	// Feed the placement policy its periodic utilization observation first,
	// so a reshard actuated this very tick places lanes on fresh data.
	if o, ok := a.inner.(interface{ Observe(*fabric.Fabric) }); ok {
		o.Observe(a.sys.Fabric.Forward)
	}
	// worstFrac[class] = max over the class's tenants of winRPO/target.
	worstFrac := make(map[string]float64)
	for _, obj := range a.sys.Main.API.List(p, platform.KindTenant, "") {
		tn := obj.(*platform.Tenant)
		ns := tn.Spec.Namespace
		cls, ok := a.sys.SLOClassFor(tn.Spec.SLOClass)
		if !ok {
			continue // no SLO declared: not the autopilot's to manage
		}
		winRPO, sampled := a.windowRPO(ns, now)
		if !sampled {
			continue // no evidence yet (still provisioning, or detached)
		}
		if cls.RPOTarget > 0 {
			if frac := float64(winRPO) / float64(cls.RPOTarget); frac > worstFrac[cls.Name] {
				worstFrac[cls.Name] = frac
			}
		}
		a.reshardStep(p, now, ns, cls, winRPO)
	}
	a.admissionStep(now, worstFrac)
}

// reshardStep actuates at most one lane step for one tenant: it screens for
// cooldown and for states where a reshard cannot (or must not) run, asks
// the hysteresis kernel for the target, and declares it on the spec. The
// declaration is non-blocking — the tenant reconcile loop performs the live
// migration while the autopilot moves on.
func (a *Autopilot) reshardStep(p *sim.Proc, now time.Duration, ns string, cls platform.SLOClass, winRPO time.Duration) {
	if last, ok := a.lastReshard[ns]; ok && now-last < a.cfg.Cooldown {
		return
	}
	gs := a.sys.Groups(ns)
	if len(gs) != 1 {
		return // per-volume journals: no shard structure to scale
	}
	g := gs[0]
	if g.FailedOver() || g.Stopped() {
		return
	}
	// A plain 1-lane engine is upgraded live by the reconcile loop, so only
	// an open migration window on a sharded engine defers the step.
	if sg, ok := g.(*replication.ShardedGroup); ok && sg.Resharding() {
		return
	}
	cur := g.Lanes()
	target := shardTarget(cls, a.cfg.ScaleUpFraction, a.cfg.ScaleDownFraction, cur, winRPO)
	if target == cur {
		return
	}
	// A low RPO while admission is actively shedding is borrowed headroom,
	// not surplus capacity: reclaiming lanes now would re-breach the moment
	// the shed class is restored, and the two effectors would chase each
	// other. Lanes are only given back once every cap has been lifted.
	if target < cur && len(a.capBps) > 0 {
		return
	}
	err := a.sys.UpdateTenantSpec(p, ns, func(s *platform.TenantSpec) {
		s.JournalShards = target
	})
	if err != nil {
		// Lost a race (tenant decommissioned, spec conflict storm): log
		// and let the next tick re-evaluate from fresh observations.
		a.record(now, ns, "reshard-skip", err.Error())
		return
	}
	action := "reshard-up"
	if target < cur {
		action = "reshard-down"
	}
	a.record(now, ns, action, fmt.Sprintf("lanes %d->%d (win rpo %s, target %s)", cur, target, winRPO, cls.RPOTarget))
	a.lastReshard[ns] = now
}

// admissionStep derates or restores every shedable class (RPOTarget == 0)
// against the health of the protected classes above it in priority.
// Throughput is measured from the fabric's own class byte counters — the
// cap halves from observed demand, not from a guess.
func (a *Autopilot) admissionStep(now time.Duration, worstFrac map[string]float64) {
	fwd := a.sys.Fabric.Forward
	classes := a.sys.SLOClasses()
	for _, sc := range classes {
		if sc.RPOTarget > 0 {
			continue // protected, never shed
		}
		fc := sc.FabricClass
		// Measured throughput this period for the shedable class; the peak
		// is tracked continuously so the first derate halves from observed
		// demand and a restore knows when the class is fully back.
		bytes := fwd.ClassStats(fc).Bytes
		deltaBps := float64(bytes-a.lastBytes[fc]) / a.cfg.Period.Seconds()
		a.lastBytes[fc] = bytes
		// Demand is a decaying peak of observed throughput: it must survive
		// the lumpiness of batched transfers (an instantaneous delta can be
		// zero mid-batch), but a stale burst must not pin the class capped
		// forever — full restore requires cap×2 to reach demand.
		if d := a.demandBps[fc] * demandDecay; deltaBps > d {
			a.demandBps[fc] = deltaBps
		} else {
			a.demandBps[fc] = d
		}

		breach, allHealthy := false, true
		for _, pc := range classes {
			if pc.RPOTarget <= 0 || pc.AdmissionPriority <= sc.AdmissionPriority {
				continue
			}
			if worstFrac[pc.Name] > a.cfg.DerateFraction {
				breach = true
			}
			if worstFrac[pc.Name] >= a.cfg.RestoreFraction {
				allHealthy = false
			}
		}

		cap, capped := a.capBps[fc]
		if allHealthy {
			a.healthy[fc]++
		} else {
			a.healthy[fc] = 0
		}
		switch {
		case breach:
			a.healthy[fc] = 0
			next := cap / 2
			if !capped {
				a.origBps[fc] = fwd.ClassRate(fc)
				next = a.demandBps[fc] / 2
			}
			if next < a.cfg.MinRateBps {
				next = a.cfg.MinRateBps
			}
			if capped && next == cap {
				break // already at the floor: nothing new to declare
			}
			if fwd.SetClassRate(fc, next) {
				a.capBps[fc] = next
				a.record(now, fc, "derate", fmt.Sprintf("rate -> %.0f B/s (demand %.0f B/s)", next, deltaBps))
			}
		case capped && allHealthy:
			// Each restore step is a probe; demand patience between steps so
			// the protected classes' probed series can absorb the last one.
			if a.healthy[fc] < a.cfg.RestorePatience {
				break
			}
			a.healthy[fc] = 0
			next := cap * 2
			if next >= a.demandBps[fc] {
				// Fully restored: hand back the configured (possibly
				// uncapped) rate and forget the episode.
				if fwd.SetClassRate(fc, a.origBps[fc]) {
					a.record(now, fc, "restore", fmt.Sprintf("rate -> %s (was capped at %.0f B/s)",
						rateString(a.origBps[fc]), cap))
				}
				delete(a.capBps, fc)
				delete(a.origBps, fc)
			} else if fwd.SetClassRate(fc, next) {
				a.capBps[fc] = next
				a.record(now, fc, "restore", fmt.Sprintf("rate -> %.0f B/s", next))
			}
		}
	}
}

func rateString(bps float64) string {
	if bps <= 0 {
		return "uncapped"
	}
	return fmt.Sprintf("%.0f B/s", bps)
}
