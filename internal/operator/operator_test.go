package operator

import (
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/sim"
)

type fixture struct {
	env *sim.Env
	api *platform.APIServer
	op  *Operator
}

func newFixture(t *testing.T, cfg Config) *fixture {
	t.Helper()
	env := sim.NewEnv(1)
	api := platform.NewAPIServer(env, platform.APIConfig{})
	op := New(env, api, cfg)
	op.Start()
	return &fixture{env: env, api: api, op: op}
}

// runFor advances the simulation by d regardless of pending retry loops.
func (f *fixture) runFor(d time.Duration) { f.env.Run(f.env.Now() + d) }

func (f *fixture) createNamespaceWithPVCs(t *testing.T, ns string, labels map[string]string, pvcs ...string) {
	t.Helper()
	f.env.Process("setup", func(p *sim.Proc) {
		if err := f.api.Create(p, &platform.Namespace{
			Meta: platform.Meta{Kind: platform.KindNamespace, Name: ns, Labels: labels},
		}); err != nil {
			t.Error(err)
		}
		for _, name := range pvcs {
			if err := f.api.Create(p, &platform.PersistentVolumeClaim{
				Meta: platform.Meta{Kind: platform.KindPVC, Namespace: ns, Name: name},
				Spec: platform.PVCSpec{StorageClassName: "fast", SizeBlocks: 128},
			}); err != nil {
				t.Error(err)
			}
		}
	})
	f.runFor(time.Second)
}

func (f *fixture) group(t *testing.T, ns string) (*platform.ReplicationGroup, bool) {
	t.Helper()
	var rg *platform.ReplicationGroup
	f.env.Process("get", func(p *sim.Proc) {
		obj, err := f.api.Get(p, platform.ObjectKey{Kind: platform.KindReplicationGroup, Name: GroupNameFor(ns)})
		if err == nil {
			rg = obj.(*platform.ReplicationGroup)
		}
	})
	f.runFor(100 * time.Millisecond)
	return rg, rg != nil
}

func (f *fixture) setLabel(t *testing.T, ns string, labels map[string]string) {
	t.Helper()
	f.env.Process("label", func(p *sim.Proc) {
		obj, err := f.api.Get(p, platform.ObjectKey{Kind: platform.KindNamespace, Name: ns})
		if err != nil {
			t.Error(err)
			return
		}
		n := obj.(*platform.Namespace)
		n.Labels = labels
		if err := f.api.Update(p, n); err != nil {
			t.Error(err)
		}
	})
	f.runFor(time.Second)
}

func TestTagCreatesReplicationGroup(t *testing.T) {
	f := newFixture(t, Config{ConsistencyGroup: true})
	f.createNamespaceWithPVCs(t, "shop", map[string]string{Tag: TagValue}, "sales", "stock")
	rg, ok := f.group(t, "shop")
	if !ok {
		t.Fatal("no ReplicationGroup created")
	}
	if rg.Spec.SourceNamespace != "shop" {
		t.Fatalf("source ns = %s", rg.Spec.SourceNamespace)
	}
	if len(rg.Spec.PVCNames) != 2 || rg.Spec.PVCNames[0] != "sales" || rg.Spec.PVCNames[1] != "stock" {
		t.Fatalf("pvc names = %v", rg.Spec.PVCNames)
	}
	if !rg.Spec.ConsistencyGroup {
		t.Fatal("consistency group not requested")
	}
	if f.op.Configured() != 1 {
		t.Fatalf("configured = %d", f.op.Configured())
	}
}

func TestUntaggedNamespaceIgnored(t *testing.T) {
	f := newFixture(t, Config{ConsistencyGroup: true})
	f.createNamespaceWithPVCs(t, "shop", nil, "sales")
	if _, ok := f.group(t, "shop"); ok {
		t.Fatal("ReplicationGroup created without tag")
	}
}

func TestWrongTagValueIgnored(t *testing.T) {
	f := newFixture(t, Config{ConsistencyGroup: true})
	f.createNamespaceWithPVCs(t, "shop", map[string]string{Tag: "SomethingElse"}, "sales")
	if _, ok := f.group(t, "shop"); ok {
		t.Fatal("ReplicationGroup created for wrong tag value")
	}
}

func TestTagAfterCreation(t *testing.T) {
	f := newFixture(t, Config{ConsistencyGroup: true})
	f.createNamespaceWithPVCs(t, "shop", nil, "sales", "stock")
	if _, ok := f.group(t, "shop"); ok {
		t.Fatal("premature group")
	}
	// The demo's actual gesture: tag an existing namespace (Fig. 3).
	f.setLabel(t, "shop", map[string]string{Tag: TagValue})
	rg, ok := f.group(t, "shop")
	if !ok {
		t.Fatal("tagging did not create the group")
	}
	if len(rg.Spec.PVCNames) != 2 {
		t.Fatalf("pvc names = %v", rg.Spec.PVCNames)
	}
}

func TestUntagRemovesGroup(t *testing.T) {
	f := newFixture(t, Config{ConsistencyGroup: true})
	f.createNamespaceWithPVCs(t, "shop", map[string]string{Tag: TagValue}, "sales")
	if _, ok := f.group(t, "shop"); !ok {
		t.Fatal("group missing")
	}
	f.setLabel(t, "shop", nil)
	if _, ok := f.group(t, "shop"); ok {
		t.Fatal("group survives untagging")
	}
	if f.op.Removed() != 1 {
		t.Fatalf("removed = %d", f.op.Removed())
	}
}

func TestNewPVCExtendsGroup(t *testing.T) {
	f := newFixture(t, Config{ConsistencyGroup: true})
	f.createNamespaceWithPVCs(t, "shop", map[string]string{Tag: TagValue}, "sales")
	rg, _ := f.group(t, "shop")
	if len(rg.Spec.PVCNames) != 1 {
		t.Fatalf("initial pvc names = %v", rg.Spec.PVCNames)
	}
	// A new claim appears (say, a third database); the operator's PVC
	// watch must extend the group.
	f.env.Process("pvc", func(p *sim.Proc) {
		f.api.Create(p, &platform.PersistentVolumeClaim{
			Meta: platform.Meta{Kind: platform.KindPVC, Namespace: "shop", Name: "audit"},
			Spec: platform.PVCSpec{SizeBlocks: 64},
		})
	})
	f.runFor(time.Second)
	rg, _ = f.group(t, "shop")
	if len(rg.Spec.PVCNames) != 2 {
		t.Fatalf("pvc names after new claim = %v", rg.Spec.PVCNames)
	}
}

func TestTaggedEmptyNamespaceRetries(t *testing.T) {
	f := newFixture(t, Config{ConsistencyGroup: true})
	f.createNamespaceWithPVCs(t, "shop", map[string]string{Tag: TagValue}) // no PVCs
	if _, ok := f.group(t, "shop"); ok {
		t.Fatal("group created for empty namespace")
	}
	// Once a PVC shows up, the retry (or PVC watch) succeeds.
	f.env.Process("pvc", func(p *sim.Proc) {
		f.api.Create(p, &platform.PersistentVolumeClaim{
			Meta: platform.Meta{Kind: platform.KindPVC, Namespace: "shop", Name: "sales"},
			Spec: platform.PVCSpec{SizeBlocks: 64},
		})
	})
	f.runFor(2 * time.Second)
	if _, ok := f.group(t, "shop"); !ok {
		t.Fatal("group not created after PVC appeared")
	}
}

func TestNamespaceDeletionRemovesGroup(t *testing.T) {
	f := newFixture(t, Config{ConsistencyGroup: true})
	f.createNamespaceWithPVCs(t, "shop", map[string]string{Tag: TagValue}, "sales")
	f.env.Process("del", func(p *sim.Proc) {
		f.api.Delete(p, platform.ObjectKey{Kind: platform.KindNamespace, Name: "shop"})
	})
	f.runFor(time.Second)
	if _, ok := f.group(t, "shop"); ok {
		t.Fatal("group survives namespace deletion")
	}
}

func TestPerVolumeModeConfig(t *testing.T) {
	f := newFixture(t, Config{ConsistencyGroup: false})
	f.createNamespaceWithPVCs(t, "shop", map[string]string{Tag: TagValue}, "sales")
	rg, ok := f.group(t, "shop")
	if !ok {
		t.Fatal("group missing")
	}
	if rg.Spec.ConsistencyGroup {
		t.Fatal("consistency group requested despite config off")
	}
}

func TestOperatorIdempotentOnRepeatedEvents(t *testing.T) {
	f := newFixture(t, Config{ConsistencyGroup: true})
	f.createNamespaceWithPVCs(t, "shop", map[string]string{Tag: TagValue}, "sales")
	// Touch the namespace repeatedly; exactly one group, one create.
	for i := 0; i < 3; i++ {
		f.setLabel(t, "shop", map[string]string{Tag: TagValue, "touch": string(rune('a' + i))})
	}
	if f.op.Configured() != 1 {
		t.Fatalf("configured = %d, want 1", f.op.Configured())
	}
}

// TestShardsLabelOverridesJournalShards pins the per-tenant shard override:
// the ShardsLabel on a namespace beats the operator's deployment-wide
// JournalShards; an unparsable value keeps the default.
func TestShardsLabelOverridesJournalShards(t *testing.T) {
	f := newFixture(t, Config{ConsistencyGroup: true, JournalShards: 2})
	f.createNamespaceWithPVCs(t, "sharded",
		map[string]string{Tag: TagValue, ShardsLabel: "8"}, "sales", "stock")
	rg, ok := f.group(t, "sharded")
	if !ok {
		t.Fatal("no ReplicationGroup created")
	}
	if rg.Spec.JournalShards != 8 {
		t.Fatalf("journal shards = %d, want 8 (label override)", rg.Spec.JournalShards)
	}

	f.createNamespaceWithPVCs(t, "plain", map[string]string{Tag: TagValue}, "sales")
	rg, ok = f.group(t, "plain")
	if !ok {
		t.Fatal("no ReplicationGroup for plain namespace")
	}
	if rg.Spec.JournalShards != 2 {
		t.Fatalf("journal shards = %d, want the configured default 2", rg.Spec.JournalShards)
	}

	f.createNamespaceWithPVCs(t, "bogus",
		map[string]string{Tag: TagValue, ShardsLabel: "not-a-number"}, "sales")
	rg, ok = f.group(t, "bogus")
	if !ok {
		t.Fatal("no ReplicationGroup for bogus-label namespace")
	}
	if rg.Spec.JournalShards != 2 {
		t.Fatalf("journal shards = %d, want default 2 on unparsable label", rg.Spec.JournalShards)
	}
}

// TestShardsLabelUpdatePropagates pins the reshard entry point: changing
// (or clearing) the backup-shards label on an already-configured namespace
// must update the existing ReplicationGroup's JournalShards instead of
// being silently ignored.
func TestShardsLabelUpdatePropagates(t *testing.T) {
	f := newFixture(t, Config{ConsistencyGroup: true, JournalShards: 1})
	f.createNamespaceWithPVCs(t, "shop", map[string]string{Tag: TagValue, ShardsLabel: "2"}, "sales", "stock")
	rg, ok := f.group(t, "shop")
	if !ok || rg.Spec.JournalShards != 2 {
		t.Fatalf("initial group shards = %+v", rg)
	}
	setLabel := func(val string) {
		f.env.Process("relabel", func(p *sim.Proc) {
			obj, err := f.api.Get(p, platform.ObjectKey{Kind: platform.KindNamespace, Name: "shop"})
			if err != nil {
				t.Error(err)
				return
			}
			ns := obj.(*platform.Namespace)
			if val == "" {
				delete(ns.Labels, ShardsLabel)
			} else {
				ns.Labels[ShardsLabel] = val
			}
			if err := f.api.Update(p, ns); err != nil {
				t.Error(err)
			}
		})
		f.runFor(time.Second)
	}
	setLabel("4")
	if rg, ok = f.group(t, "shop"); !ok || rg.Spec.JournalShards != 4 {
		t.Fatalf("after label 4: %+v", rg.Spec)
	}
	// Clearing the label falls back to the operator's deployment default.
	setLabel("")
	if rg, ok = f.group(t, "shop"); !ok || rg.Spec.JournalShards != 1 {
		t.Fatalf("after label cleared: %+v", rg.Spec)
	}
	// An unparsable label keeps the default rather than zeroing the spec.
	setLabel("nonsense")
	if rg, ok = f.group(t, "shop"); !ok || rg.Spec.JournalShards != 1 {
		t.Fatalf("after bad label: %+v", rg.Spec)
	}
}
