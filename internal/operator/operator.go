// Package operator implements the namespace operator (NSO), the paper's new
// contribution (§III-B1). The NSO watches namespaces for the backup tag:
// when a user labels a namespace with
//
//	backup=ConsistentCopyToCloud
//
// the operator extracts every PVC in that namespace and creates a
// ReplicationGroup custom resource with consistency grouping enabled, which
// the replication plugin then turns into configured ADC. Removing the tag
// deletes the CR and tears the replication down. This automation is what
// removes the "laborious tasks to identify the related data volumes and to
// configure the ADC" (§II): the user performs one operation regardless of
// how many volumes the business process spans.
package operator

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Tag is the namespace label key the operator watches.
const Tag = "backup"

// TagValue is the label value that requests consistent replication — the
// exact string from the demonstration (Fig. 3).
const TagValue = "ConsistentCopyToCloud"

// ShardsLabel is the namespace label that overrides the operator's
// deployment-wide JournalShards for one namespace — how the tenant
// controller threads a per-tenant shard count into the ReplicationGroup it
// has the operator create. Unparsable or absent values keep the default.
const ShardsLabel = "backup-shards"

// Config tunes operator behaviour.
type Config struct {
	// ConsistencyGroup selects whether created ReplicationGroups request a
	// shared journal. The production operator always does; experiment E6
	// turns it off to demonstrate collapse.
	ConsistencyGroup bool
	// JournalShards is threaded into created ReplicationGroups: > 1 shards
	// each group's journal across that many drain lanes (E13); 0 or 1
	// keeps the single shared journal.
	JournalShards int
	// Telemetry, when set, instruments the operator's controllers
	// (reconcile latency, requeues, reconcile spans).
	Telemetry *telemetry.Registry
}

// Operator is the namespace operator.
type Operator struct {
	env     *sim.Env
	api     *platform.APIServer
	cfg     Config
	ctrl    *platform.Controller
	pvcCtrl *platform.Controller

	configured int64
	removed    int64
}

// New builds the operator on the main site's API server. It watches both
// namespaces (for the tag) and PVCs (so claims added after tagging extend
// the replication group).
func New(env *sim.Env, api *platform.APIServer, cfg Config) *Operator {
	o := &Operator{env: env, api: api, cfg: cfg}
	o.ctrl = platform.NewController(env, api, "namespace-operator", platform.KindNamespace,
		nil, platform.ReconcilerFunc(o.reconcile), platform.ControllerConfig{Telemetry: cfg.Telemetry})
	o.pvcCtrl = platform.NewController(env, api, "namespace-operator-pvc", platform.KindPVC,
		func(ev platform.Event) []platform.ObjectKey {
			return []platform.ObjectKey{{Kind: platform.KindNamespace, Name: ev.Object.GetMeta().Namespace}}
		}, platform.ReconcilerFunc(o.reconcile), platform.ControllerConfig{Telemetry: cfg.Telemetry})
	return o
}

// Start launches the operator.
func (o *Operator) Start() {
	o.ctrl.Start()
	o.pvcCtrl.Start()
}

// Stop halts the operator.
func (o *Operator) Stop() {
	o.ctrl.Stop()
	o.pvcCtrl.Stop()
}

// Configured returns how many ReplicationGroups the operator created.
func (o *Operator) Configured() int64 { return o.configured }

// Removed returns how many ReplicationGroups the operator deleted.
func (o *Operator) Removed() int64 { return o.removed }

// GroupNameFor returns the ReplicationGroup name the operator uses for a
// namespace.
func GroupNameFor(namespace string) string { return fmt.Sprintf("backup-%s", namespace) }

// NamespaceOfGroup inverts GroupNameFor: the namespace a ReplicationGroup
// name was derived from, with ok=false for names this operator did not
// mint. Keep in lockstep with GroupNameFor (the tenant controller maps RG
// events back to tenant keys through this).
func NamespaceOfGroup(name string) (string, bool) {
	ns := strings.TrimPrefix(name, "backup-")
	if ns == name || ns == "" {
		return "", false
	}
	return ns, true
}

func (o *Operator) reconcile(p *sim.Proc, key platform.ObjectKey) error {
	groupKey := platform.ObjectKey{Kind: platform.KindReplicationGroup, Name: GroupNameFor(key.Name)}
	obj, err := o.api.Get(p, key)
	if errors.Is(err, platform.ErrNotFound) {
		// Namespace deleted: remove its replication configuration.
		return o.ensureAbsent(p, groupKey)
	}
	if err != nil {
		return err
	}
	ns := obj.(*platform.Namespace)
	if ns.Labels[Tag] != TagValue {
		return o.ensureAbsent(p, groupKey)
	}

	// Tag present: discover the namespace's PVCs — the correspondence
	// between applications and storage volumes the operator unravels.
	var pvcNames []string
	for _, c := range o.api.List(p, platform.KindPVC, ns.Name) {
		pvcNames = append(pvcNames, c.GetMeta().Name)
	}
	if len(pvcNames) == 0 {
		return fmt.Errorf("operator: namespace %s tagged but has no PVCs", ns.Name)
	}

	shards := o.cfg.JournalShards
	if v, err := strconv.Atoi(ns.Labels[ShardsLabel]); err == nil && v > 0 {
		shards = v
	}
	existing, err := o.api.Get(p, groupKey)
	if err == nil {
		// Keep the CR's spec current: a new claim may have appeared, and a
		// ShardsLabel change must propagate so the replication plugin drives
		// a live reshard instead of the label being silently ignored.
		rg := existing.(*platform.ReplicationGroup)
		if equalStrings(rg.Spec.PVCNames, pvcNames) && rg.Spec.JournalShards == shards {
			return nil
		}
		rg.Spec.PVCNames = pvcNames
		rg.Spec.JournalShards = shards
		return o.api.Update(p, rg)
	}
	if !errors.Is(err, platform.ErrNotFound) {
		return err
	}
	rg := &platform.ReplicationGroup{
		Meta: platform.Meta{Kind: platform.KindReplicationGroup, Name: groupKey.Name},
		Spec: platform.ReplicationGroupSpec{
			SourceNamespace:  ns.Name,
			PVCNames:         pvcNames,
			ConsistencyGroup: o.cfg.ConsistencyGroup,
			JournalShards:    shards,
		},
		Status: platform.ReplicationGroupStatus{Phase: platform.GroupPending},
	}
	if err := o.api.Create(p, rg); err != nil && !errors.Is(err, platform.ErrExists) {
		return err
	}
	o.configured++
	return nil
}

func (o *Operator) ensureAbsent(p *sim.Proc, groupKey platform.ObjectKey) error {
	err := o.api.Delete(p, groupKey)
	if errors.Is(err, platform.ErrNotFound) {
		return nil
	}
	if err == nil {
		o.removed++
	}
	return err
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
