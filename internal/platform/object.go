// Package platform is the miniature container platform (OpenShift
// stand-in) the demonstration runs on: a typed object store with
// resource-version concurrency and watches, the persistent-volume object
// model (StorageClass / PVC / PV), the custom resources the storage and
// replication plugins reconcile, and a small controller runtime with a
// deduplicating work queue.
package platform

import (
	"fmt"
	"time"

	"repro/internal/storage"
)

// Kind identifies an object type.
type Kind string

// Built-in and custom resource kinds.
const (
	KindNamespace           Kind = "Namespace"
	KindStorageClass        Kind = "StorageClass"
	KindPVC                 Kind = "PersistentVolumeClaim"
	KindPV                  Kind = "PersistentVolume"
	KindReplicationGroup    Kind = "ReplicationGroup"
	KindVolumeSnapshot      Kind = "VolumeSnapshot"
	KindVolumeGroupSnapshot Kind = "VolumeGroupSnapshot"
	KindTenant              Kind = "Tenant"
)

// Meta is the common object metadata.
type Meta struct {
	Kind            Kind
	Namespace       string // "" for cluster-scoped kinds
	Name            string
	Labels          map[string]string
	ResourceVersion int64
	CreatedAt       time.Duration
}

// Key returns the store key ("namespace/name" or "name").
func (m Meta) Key() ObjectKey { return ObjectKey{Kind: m.Kind, Namespace: m.Namespace, Name: m.Name} }

func copyLabels(in map[string]string) map[string]string {
	if in == nil {
		return nil
	}
	out := make(map[string]string, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// ObjectKey names one object.
type ObjectKey struct {
	Kind      Kind
	Namespace string
	Name      string
}

func (k ObjectKey) String() string {
	if k.Namespace == "" {
		return fmt.Sprintf("%s/%s", k.Kind, k.Name)
	}
	return fmt.Sprintf("%s/%s/%s", k.Kind, k.Namespace, k.Name)
}

// Object is any API object.
type Object interface {
	GetMeta() *Meta
	DeepCopy() Object
}

// Namespace partitions the application environment (§II).
type Namespace struct {
	Meta
}

// GetMeta returns the object metadata.
func (n *Namespace) GetMeta() *Meta { return &n.Meta }

// DeepCopy returns an independent copy.
func (n *Namespace) DeepCopy() Object {
	c := *n
	c.Labels = copyLabels(n.Labels)
	return &c
}

// StorageClass names a provisioner for dynamic volume provisioning.
type StorageClass struct {
	Meta
	Provisioner string
	// ArrayName routes provisioning to a specific storage array.
	ArrayName string
}

// GetMeta returns the object metadata.
func (s *StorageClass) GetMeta() *Meta { return &s.Meta }

// DeepCopy returns an independent copy.
func (s *StorageClass) DeepCopy() Object {
	c := *s
	c.Labels = copyLabels(s.Labels)
	return &c
}

// ClaimPhase is a PVC lifecycle phase.
type ClaimPhase string

// PVC phases.
const (
	ClaimPending ClaimPhase = "Pending"
	ClaimBound   ClaimPhase = "Bound"
)

// PersistentVolumeClaim requests storage for an application.
type PersistentVolumeClaim struct {
	Meta
	Spec   PVCSpec
	Status PVCStatus
}

// PVCSpec is the user-facing request.
type PVCSpec struct {
	StorageClassName string
	SizeBlocks       int64
}

// PVCStatus is filled by the storage plugin.
type PVCStatus struct {
	Phase      ClaimPhase
	VolumeName string // bound PV name
}

// GetMeta returns the object metadata.
func (c *PersistentVolumeClaim) GetMeta() *Meta { return &c.Meta }

// DeepCopy returns an independent copy.
func (c *PersistentVolumeClaim) DeepCopy() Object {
	cp := *c
	cp.Labels = copyLabels(c.Labels)
	return &cp
}

// VolumePhase is a PV lifecycle phase.
type VolumePhase string

// PV phases.
const (
	VolumeAvailable VolumePhase = "Available"
	VolumeBound     VolumePhase = "Bound"
)

// PersistentVolume records one provisioned array volume.
type PersistentVolume struct {
	Meta
	Spec   PVSpec
	Status PVStatus
}

// PVSpec ties the PV to the array volume backing it.
type PVSpec struct {
	ArrayName  string
	VolumeID   storage.VolumeID
	SizeBlocks int64
}

// PVStatus tracks binding.
type PVStatus struct {
	Phase     VolumePhase
	ClaimRef  ObjectKey // bound PVC
	ClaimName string
}

// GetMeta returns the object metadata.
func (v *PersistentVolume) GetMeta() *Meta { return &v.Meta }

// DeepCopy returns an independent copy.
func (v *PersistentVolume) DeepCopy() Object {
	cp := *v
	cp.Labels = copyLabels(v.Labels)
	return &cp
}

// GroupPhase is a ReplicationGroup lifecycle phase.
type GroupPhase string

// ReplicationGroup phases.
const (
	GroupPending GroupPhase = "Pending"
	GroupSyncing GroupPhase = "Syncing"
	GroupReady   GroupPhase = "Ready"
	GroupFailed  GroupPhase = "Failed"
)

// ReplicationGroup is the custom resource the namespace operator creates
// and the replication plugin reconciles: "replicate these PVCs to the
// backup site as one consistency group".
type ReplicationGroup struct {
	Meta
	Spec   ReplicationGroupSpec
	Status ReplicationGroupStatus
}

// ReplicationGroupSpec lists the volumes of one business process.
type ReplicationGroupSpec struct {
	// SourceNamespace is the namespace whose PVCs replicate.
	SourceNamespace string
	// PVCNames are the claims to replicate, in discovery order.
	PVCNames []string
	// ConsistencyGroup selects the shared-journal mode; false degrades to
	// one journal per volume (the E6 ablation).
	ConsistencyGroup bool
	// JournalShards, when > 1, shards the consistency group's journal so
	// the replication plugin drains it on that many lanes (one per shard,
	// with epoch barriers preserving cross-volume cuts). 0 or 1 keeps the
	// single shared journal. Ignored unless ConsistencyGroup is true.
	JournalShards int
}

// ReplicationGroupStatus is filled by the replication plugin.
type ReplicationGroupStatus struct {
	Phase     GroupPhase
	JournalID string
	// JournalIDs lists per-volume journals when ConsistencyGroup is false.
	JournalIDs []string
	Message    string
}

// GetMeta returns the object metadata.
func (g *ReplicationGroup) GetMeta() *Meta { return &g.Meta }

// DeepCopy returns an independent copy.
func (g *ReplicationGroup) DeepCopy() Object {
	cp := *g
	cp.Labels = copyLabels(g.Labels)
	cp.Spec.PVCNames = append([]string(nil), g.Spec.PVCNames...)
	cp.Status.JournalIDs = append([]string(nil), g.Status.JournalIDs...)
	return &cp
}

// SLOClass is a named service-level policy a TenantSpec references: the
// windowed-RPO target the autopilot holds the tenant inside, the shard
// bounds it may move the tenant between, and the class's admission
// priority at the inter-site fabric. SLO classes are deployment policy,
// not per-tenant state — they are registered once in core.Config and the
// autopilot reads tenants' classes by name.
type SLOClass struct {
	// Name identifies the class ("gold", "bulk", ...).
	Name string
	// RPOTarget is the windowed-RPO ceiling the autopilot defends for
	// tenants of this class. 0 means no RPO SLO: the autopilot never
	// reshards the tenant and never derates others on its behalf.
	RPOTarget time.Duration
	// MinShards/MaxShards bound the journal shard counts the autopilot may
	// declare for tenants of this class (0 defaults: min 1, max 4).
	MinShards int
	MaxShards int
	// AdmissionPriority orders classes at the fabric ingress under SLO
	// pressure: when a higher-priority class's RPO approaches its target,
	// the autopilot derates the ingress rate of lower-priority classes
	// first (and restores them when the protected class recovers).
	AdmissionPriority int
	// FabricClass names the fabric QoS class this SLO class's drain traffic
	// rides ("" = Name). Tenants referencing the SLO class inherit it as
	// their QoSClass unless the spec pins one explicitly.
	FabricClass string
}

// WithDefaults fills the zero-value shard bounds.
func (c SLOClass) WithDefaults() SLOClass {
	if c.MinShards <= 0 {
		c.MinShards = 1
	}
	if c.MaxShards <= 0 {
		c.MaxShards = 4
	}
	if c.MaxShards < c.MinShards {
		c.MaxShards = c.MinShards
	}
	if c.FabricClass == "" {
		c.FabricClass = c.Name
	}
	return c
}

// TenantPhase is a Tenant lifecycle phase.
type TenantPhase string

// Tenant phases. Ready means the whole spec is realized: namespace and
// claims exist, every claim is bound, and — when Backup is requested — the
// replication group reports Ready.
const (
	TenantPending      TenantPhase = "Pending"
	TenantProvisioning TenantPhase = "Provisioning"
	TenantReady        TenantPhase = "Ready"
	TenantFailed       TenantPhase = "Failed"
)

// Tenant is the declarative tenant-lifecycle object (cluster-scoped; its
// name is the tenant namespace). Creating one asks the tenant controller to
// provision the namespace, its claims, and — when Backup is set — the
// consistency-group replication for them; deleting it asks for a full
// decommission: drain, detach the replication group, and reclaim volumes
// and journal shards back to the array free lists.
type Tenant struct {
	Meta
	Spec   TenantSpec
	Status TenantStatus
}

// TenantSpec is the tenant's desired state.
type TenantSpec struct {
	// Namespace the tenant occupies. Defaults to the object name; when both
	// are set they must agree.
	Namespace string
	// PVCNames are the claims to provision. Empty adopts whatever claims
	// already exist in the namespace (the one-shot wrapper path).
	PVCNames []string
	// VolumeBlocks sizes provisioned claims (0 = the system default).
	VolumeBlocks int64
	// Backup requests consistent replication to the backup site (the
	// namespace tag the operator watches).
	Backup bool
	// QoSClass names the fabric class the tenant's drain traffic rides
	// ("" = the deployment-wide default resolution).
	QoSClass string
	// LaneClasses optionally names a class per journal-shard drain lane
	// (lane k rides LaneClasses[k]); lanes beyond the list, or empty
	// entries, fall back to QoSClass. Ignored unless JournalShards > 1.
	LaneClasses []string
	// JournalShards, when > 1, shards the tenant's consistency-group
	// journal across that many drain lanes (0 = the system default). The
	// field is MUTABLE: changing it on a provisioned tenant drives a live
	// reshard — the controller chain seals an epoch barrier, re-places
	// volumes on the new shard set, and reconfigures drain lanes while
	// replication keeps running (core.System.ReshardTenant wraps this).
	JournalShards int
	// SLOClass names the tenant's service-level policy (an SLOClass
	// registered in the deployment's config). The autopilot reads it to
	// decide the tenant's RPO target, shard bounds, and admission priority;
	// when QoSClass is empty the SLO class's FabricClass also becomes the
	// tenant's fabric class. "" opts the tenant out of SLO management.
	SLOClass string
	// Profile names the tenant's workload shape. "" or "oltp" is the
	// business process: ProvisionTenant opens the sales/stock databases and
	// attaches a default shop workload. "oltp-external" opens the databases
	// but leaves the workload to the caller (the fleet attaches its own
	// per-tenant-seeded shop). "data-only" provisions and replicates the
	// claims as raw volumes (no databases opened) — the E13-style tenants.
	Profile string
}

// TenantStatus is filled by the tenant controller.
type TenantStatus struct {
	Phase   TenantPhase
	Message string
	// ReadyAt is the virtual time the tenant first reached Ready.
	ReadyAt time.Duration
}

// GetMeta returns the object metadata.
func (t *Tenant) GetMeta() *Meta { return &t.Meta }

// DeepCopy returns an independent copy.
func (t *Tenant) DeepCopy() Object {
	cp := *t
	cp.Labels = copyLabels(t.Labels)
	cp.Spec.PVCNames = append([]string(nil), t.Spec.PVCNames...)
	cp.Spec.LaneClasses = append([]string(nil), t.Spec.LaneClasses...)
	return &cp
}

// VolumeSnapshot requests a point-in-time copy of one PVC's volume.
type VolumeSnapshot struct {
	Meta
	Spec   VolumeSnapshotSpec
	Status VolumeSnapshotStatus
}

// VolumeSnapshotSpec names the source claim.
type VolumeSnapshotSpec struct {
	PVCName string
}

// VolumeSnapshotStatus is filled by the snapshot controller.
type VolumeSnapshotStatus struct {
	Ready      bool
	SnapshotID string
	Message    string
}

// GetMeta returns the object metadata.
func (s *VolumeSnapshot) GetMeta() *Meta { return &s.Meta }

// DeepCopy returns an independent copy.
func (s *VolumeSnapshot) DeepCopy() Object {
	cp := *s
	cp.Labels = copyLabels(s.Labels)
	return &cp
}

// VolumeGroupSnapshot requests an atomic snapshot of several PVCs — the CSI
// alpha feature (§II). When the feature gate is off, the controller refuses
// it and users must operate the storage array directly, exactly as the
// paper describes.
type VolumeGroupSnapshot struct {
	Meta
	Spec   VolumeGroupSnapshotSpec
	Status VolumeGroupSnapshotStatus
}

// VolumeGroupSnapshotSpec names the source claims.
type VolumeGroupSnapshotSpec struct {
	PVCNames []string
}

// VolumeGroupSnapshotStatus is filled by the snapshot controller.
type VolumeGroupSnapshotStatus struct {
	Ready       bool
	GroupName   string
	SnapshotIDs []string
	Message     string
}

// GetMeta returns the object metadata.
func (s *VolumeGroupSnapshot) GetMeta() *Meta { return &s.Meta }

// DeepCopy returns an independent copy.
func (s *VolumeGroupSnapshot) DeepCopy() Object {
	cp := *s
	cp.Labels = copyLabels(s.Labels)
	cp.Spec.PVCNames = append([]string(nil), s.Spec.PVCNames...)
	cp.Status.SnapshotIDs = append([]string(nil), s.Status.SnapshotIDs...)
	return &cp
}
