package platform

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/sim"
)

// API errors.
var (
	ErrNotFound = errors.New("platform: object not found")
	ErrExists   = errors.New("platform: object already exists")
	ErrConflict = errors.New("platform: resource version conflict")
)

// EventType classifies watch events.
type EventType string

// Watch event types.
const (
	Added    EventType = "ADDED"
	Modified EventType = "MODIFIED"
	Deleted  EventType = "DELETED"
)

// Event is one watch notification carrying a deep copy of the object.
type Event struct {
	Type   EventType
	Object Object
}

// APIConfig tunes the API server's simulated behaviour.
type APIConfig struct {
	// CallLatency is the simulated cost of every API call (default 500µs —
	// a fast intra-cluster HTTP round trip).
	CallLatency time.Duration
}

func (c APIConfig) withDefaults() APIConfig {
	if c.CallLatency <= 0 {
		c.CallLatency = 500 * time.Microsecond
	}
	return c
}

// APIServer is the platform's object store: create/update/get/list/delete
// with optimistic concurrency plus watches.
type APIServer struct {
	env     *sim.Env
	cfg     APIConfig
	objects map[ObjectKey]Object
	// byKind indexes the store per kind so List and Names scan only the
	// kind's objects — at fleet scale a whole-store scan per List call is
	// quadratic in tenants.
	byKind  map[Kind]map[ObjectKey]Object
	rv      int64
	watches []*Watch
	// keyed holds single-object watches bucketed by key, so a notify
	// touches only the waiters of the object that changed instead of
	// scanning every registered watch (quadratic at fleet scale).
	keyed map[ObjectKey][]*Watch
	calls int64
}

// NewAPIServer returns an empty store.
func NewAPIServer(env *sim.Env, cfg APIConfig) *APIServer {
	return &APIServer{
		env:     env,
		cfg:     cfg.withDefaults(),
		objects: make(map[ObjectKey]Object),
		byKind:  make(map[Kind]map[ObjectKey]Object),
		keyed:   make(map[ObjectKey][]*Watch),
	}
}

func (s *APIServer) indexPut(key ObjectKey, obj Object) {
	s.objects[key] = obj
	kindMap, ok := s.byKind[key.Kind]
	if !ok {
		kindMap = make(map[ObjectKey]Object)
		s.byKind[key.Kind] = kindMap
	}
	kindMap[key] = obj
}

func (s *APIServer) indexDelete(key ObjectKey) {
	delete(s.objects, key)
	delete(s.byKind[key.Kind], key)
}

// Calls returns the number of API calls served (the operator-automation
// experiment counts operations through this).
func (s *APIServer) Calls() int64 { return s.calls }

func (s *APIServer) charge(p *sim.Proc) {
	s.calls++
	p.Sleep(s.cfg.CallLatency)
}

// Create stores a new object, assigning its first resource version.
func (s *APIServer) Create(p *sim.Proc, obj Object) error {
	s.charge(p)
	m := obj.GetMeta()
	key := m.Key()
	if key.Name == "" || key.Kind == "" {
		return fmt.Errorf("platform: object needs kind and name")
	}
	if _, ok := s.objects[key]; ok {
		return fmt.Errorf("%w: %s", ErrExists, key)
	}
	s.rv++
	m.ResourceVersion = s.rv
	m.CreatedAt = s.env.Now()
	stored := obj.DeepCopy()
	s.indexPut(key, stored)
	s.notify(Event{Type: Added, Object: stored.DeepCopy()})
	return nil
}

// Update replaces an object; the caller's copy must carry the current
// resource version or the update fails with ErrConflict.
func (s *APIServer) Update(p *sim.Proc, obj Object) error {
	s.charge(p)
	key := obj.GetMeta().Key()
	cur, ok := s.objects[key]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if cur.GetMeta().ResourceVersion != obj.GetMeta().ResourceVersion {
		return fmt.Errorf("%w: %s (have %d, store %d)", ErrConflict, key,
			obj.GetMeta().ResourceVersion, cur.GetMeta().ResourceVersion)
	}
	s.rv++
	obj.GetMeta().ResourceVersion = s.rv
	obj.GetMeta().CreatedAt = cur.GetMeta().CreatedAt
	stored := obj.DeepCopy()
	s.indexPut(key, stored)
	s.notify(Event{Type: Modified, Object: stored.DeepCopy()})
	return nil
}

// Get returns a deep copy of the object.
func (s *APIServer) Get(p *sim.Proc, key ObjectKey) (Object, error) {
	s.charge(p)
	cur, ok := s.objects[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return cur.DeepCopy(), nil
}

// List returns deep copies of all objects of a kind, optionally restricted
// to a namespace (empty string = all), sorted by key for determinism.
func (s *APIServer) List(p *sim.Proc, kind Kind, namespace string) []Object {
	s.charge(p)
	var keys []ObjectKey
	for k := range s.byKind[kind] {
		if namespace != "" && k.Namespace != namespace {
			continue
		}
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Namespace != keys[j].Namespace {
			return keys[i].Namespace < keys[j].Namespace
		}
		return keys[i].Name < keys[j].Name
	})
	out := make([]Object, len(keys))
	for i, k := range keys {
		out[i] = s.objects[k].DeepCopy()
	}
	return out
}

// Delete removes the object.
func (s *APIServer) Delete(p *sim.Proc, key ObjectKey) error {
	s.charge(p)
	cur, ok := s.objects[key]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	s.indexDelete(key)
	s.notify(Event{Type: Deleted, Object: cur.DeepCopy()})
	return nil
}

// notify fans an event out to matching watches, compacting stopped watches
// out of the registry as it goes. Without the compaction a long-lived churny
// run (controllers starting and stopping per tenant) appends stopped
// watches that every notify must skip forever — the watch leak.
func (s *APIServer) notify(ev Event) {
	m := ev.Object.GetMeta()
	kept := s.watches[:0]
	for _, w := range s.watches {
		if w.stopped {
			continue
		}
		kept = append(kept, w)
		if w.kind != m.Kind {
			continue
		}
		w.ch.Put(ev)
	}
	for i := len(kept); i < len(s.watches); i++ {
		s.watches[i] = nil // release the stopped watch for GC
	}
	s.watches = kept
	key := m.Key()
	if bucket, ok := s.keyed[key]; ok {
		keptK := bucket[:0]
		for _, w := range bucket {
			if w.stopped {
				continue
			}
			keptK = append(keptK, w)
			w.ch.Put(ev)
		}
		if len(keptK) == 0 {
			delete(s.keyed, key)
		} else {
			for i := len(keptK); i < len(bucket); i++ {
				bucket[i] = nil
			}
			s.keyed[key] = keptK
		}
	}
}

// Watch streams events for one kind — optionally for one object key only.
// Events carry deep copies; the watch starts empty (list first for existing
// state, the standard contract).
type Watch struct {
	kind    Kind
	keyed   bool
	key     ObjectKey
	ch      *sim.Chan
	stopped bool
}

// Watch registers a new watch for the kind.
func (s *APIServer) Watch(kind Kind) *Watch {
	w := &Watch{kind: kind, ch: s.env.NewChan()}
	s.watches = append(s.watches, w)
	return w
}

// WatchKey registers a watch delivering only events for one object key —
// the field-selector form clients use to wait on a single object's status
// instead of polling Get in a loop.
func (s *APIServer) WatchKey(key ObjectKey) *Watch {
	w := &Watch{kind: key.Kind, keyed: true, key: key, ch: s.env.NewChan()}
	s.keyed[key] = append(s.keyed[key], w)
	return w
}

// Names returns the names of all objects of a kind, sorted — an uncharged
// introspection helper (like Calls/WatchCount) for invariant checks, not a
// modeled API call.
func (s *APIServer) Names(kind Kind) []string {
	var out []string
	for k := range s.byKind[kind] {
		out = append(out, k.Name)
	}
	sort.Strings(out)
	return out
}

// WatchCount returns the number of registered watches still delivering
// (stopped watches linger only until the next notify compacts them).
func (s *APIServer) WatchCount() int {
	n := 0
	for _, w := range s.watches {
		if !w.stopped {
			n++
		}
	}
	for _, bucket := range s.keyed {
		for _, w := range bucket {
			if !w.stopped {
				n++
			}
		}
	}
	return n
}

// Next blocks until an event arrives.
func (w *Watch) Next(p *sim.Proc) Event { return w.ch.Get(p).(Event) }

// NextTimeout is Next with a deadline; ok is false on timeout.
func (w *Watch) NextTimeout(p *sim.Proc, d time.Duration) (Event, bool) {
	v, ok := w.ch.GetTimeout(p, d)
	if !ok {
		return Event{}, false
	}
	return v.(Event), true
}

// Pending returns the number of undelivered events.
func (w *Watch) Pending() int { return w.ch.Len() }

// Stop detaches the watch; buffered events remain readable.
func (w *Watch) Stop() { w.stopped = true }
