package platform

import (
	"time"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Reconciler is the level-triggered reconcile hook: bring the world to the
// state the object (named by key) declares. It must be idempotent; the
// controller retries on error with backoff.
type Reconciler interface {
	Reconcile(p *sim.Proc, key ObjectKey) error
}

// ReconcilerFunc adapts a function to the Reconciler interface.
type ReconcilerFunc func(p *sim.Proc, key ObjectKey) error

// Reconcile calls f.
func (f ReconcilerFunc) Reconcile(p *sim.Proc, key ObjectKey) error { return f(p, key) }

// ControllerConfig tunes retry behaviour.
type ControllerConfig struct {
	// RetryDelay is the requeue delay after a reconcile error
	// (default 10ms, doubling per consecutive failure up to MaxRetryDelay).
	RetryDelay time.Duration
	// MaxRetryDelay caps the backoff (default 1s).
	MaxRetryDelay time.Duration
	// Telemetry, when set, records per-controller reconcile latency,
	// requeues, and reconcile-pass spans into the registry.
	Telemetry *telemetry.Registry
}

func (c ControllerConfig) withDefaults() ControllerConfig {
	if c.RetryDelay <= 0 {
		c.RetryDelay = 10 * time.Millisecond
	}
	if c.MaxRetryDelay <= 0 {
		c.MaxRetryDelay = time.Second
	}
	return c
}

// Controller watches one kind and funnels object keys through a
// deduplicating work queue into a reconciler — the operator-SDK pattern the
// namespace operator is built with (§III-B1).
type Controller struct {
	name    string
	env     *sim.Env
	api     *APIServer
	kind    Kind
	mapFn   func(Event) []ObjectKey
	rec     Reconciler
	cfg     ControllerConfig
	queue   []ObjectKey
	queued  map[ObjectKey]bool
	wake    *sim.Event
	stop    *sim.Event
	stopped bool
	fails   map[ObjectKey]int

	reconciles int64
	errors     int64

	// Telemetry instruments (nil handles no-op when the plane is disabled).
	tel      *telemetry.Registry
	latency  *telemetry.Histogram
	requeues *telemetry.Counter
}

// NewController builds a controller for kind on the API server. mapFn
// converts each watch event into reconcile keys; nil maps events to their
// own object key.
func NewController(env *sim.Env, api *APIServer, name string, kind Kind,
	mapFn func(Event) []ObjectKey, rec Reconciler, cfg ControllerConfig) *Controller {
	if mapFn == nil {
		mapFn = func(ev Event) []ObjectKey { return []ObjectKey{ev.Object.GetMeta().Key()} }
	}
	c := &Controller{
		name:   name,
		env:    env,
		api:    api,
		kind:   kind,
		mapFn:  mapFn,
		rec:    rec,
		cfg:    cfg.withDefaults(),
		queued: make(map[ObjectKey]bool),
		wake:   env.NewEvent(),
		stop:   env.NewEvent(),
		fails:  make(map[ObjectKey]int),
	}
	if reg := c.cfg.Telemetry; reg != nil {
		c.tel = reg
		c.latency = reg.Histogram("controller.reconcile.latency", telemetry.L("controller", name))
		c.requeues = reg.Counter("controller.requeues", telemetry.L("controller", name))
	}
	return c
}

// Enqueue adds a key to the work queue (deduplicated while pending).
func (c *Controller) Enqueue(key ObjectKey) {
	if c.queued[key] {
		return
	}
	c.queued[key] = true
	c.queue = append(c.queue, key)
	if !c.wake.Triggered() {
		c.wake.Trigger()
	}
}

// Start launches the watch pump and the worker.
func (c *Controller) Start() {
	w := c.api.Watch(c.kind)
	c.env.Process(c.name+":watch", func(p *sim.Proc) {
		defer w.Stop() // detach so the API server can compact the watch away
		for {
			for w.Pending() == 0 {
				if p.WaitAny(watchAvail(w), c.stop) == 1 {
					return
				}
			}
			ev := w.Next(p)
			for _, key := range c.mapFn(ev) {
				c.Enqueue(key)
			}
		}
	})
	c.env.Process(c.name+":worker", func(p *sim.Proc) {
		for {
			for len(c.queue) == 0 {
				if c.wake.Triggered() {
					c.wake = c.env.NewEvent()
				}
				if p.WaitAny(c.wake, c.stop) == 1 {
					return
				}
			}
			key := c.queue[0]
			c.queue = c.queue[1:]
			delete(c.queued, key)
			c.reconciles++
			var sp telemetry.Span
			start := p.Now()
			if c.tel != nil {
				sp = c.tel.StartSpan("reconcile", key.String(), c.name)
			}
			err := c.rec.Reconcile(p, key)
			sp.End()
			c.latency.Record(p.Now() - start)
			if err != nil {
				c.errors++
				c.requeues.Inc()
				c.fails[key]++
				delay := c.cfg.RetryDelay << uint(c.fails[key]-1)
				if delay > c.cfg.MaxRetryDelay || delay <= 0 {
					delay = c.cfg.MaxRetryDelay
				}
				// Requeue after backoff without blocking the worker. An
				// inline timer step is enough — Enqueue consumes no time —
				// so no retry goroutine (and its two handoffs) is spawned.
				k := key
				c.env.After(delay, func() {
					if !c.stopped {
						c.Enqueue(k)
					}
				})
				continue
			}
			delete(c.fails, key)
		}
	})
}

// Stop halts the controller's processes.
func (c *Controller) Stop() {
	c.stopped = true
	c.stop.Trigger()
}

// Reconciles returns the number of reconcile invocations.
func (c *Controller) Reconciles() int64 { return c.reconciles }

// Errors returns the number of reconcile errors.
func (c *Controller) Errors() int64 { return c.errors }

// QueueLen returns the number of keys waiting.
func (c *Controller) QueueLen() int { return len(c.queue) }

// watchAvail adapts a Watch's availability to an event WaitAny can select
// on: it returns an event that triggers when the watch has pending items.
func watchAvail(w *Watch) *sim.Event { return w.ch.Avail() }
