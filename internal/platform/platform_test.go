package platform

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
)

func run(t *testing.T, fn func(p *sim.Proc, env *sim.Env, api *APIServer)) *sim.Env {
	t.Helper()
	env := sim.NewEnv(1)
	api := NewAPIServer(env, APIConfig{})
	env.Process("test", func(p *sim.Proc) { fn(p, env, api) })
	env.Run(0)
	return env
}

func pvc(ns, name, class string, size int64) *PersistentVolumeClaim {
	return &PersistentVolumeClaim{
		Meta: Meta{Kind: KindPVC, Namespace: ns, Name: name},
		Spec: PVCSpec{StorageClassName: class, SizeBlocks: size},
	}
}

func TestCreateGetRoundTrip(t *testing.T) {
	run(t, func(p *sim.Proc, env *sim.Env, api *APIServer) {
		if err := api.Create(p, pvc("shop", "sales", "fast", 100)); err != nil {
			t.Fatal(err)
		}
		obj, err := api.Get(p, ObjectKey{Kind: KindPVC, Namespace: "shop", Name: "sales"})
		if err != nil {
			t.Fatal(err)
		}
		got := obj.(*PersistentVolumeClaim)
		if got.Spec.StorageClassName != "fast" || got.Spec.SizeBlocks != 100 {
			t.Fatalf("spec = %+v", got.Spec)
		}
		if got.ResourceVersion == 0 {
			t.Fatal("no resource version assigned")
		}
	})
}

func TestCreateDuplicateFails(t *testing.T) {
	run(t, func(p *sim.Proc, env *sim.Env, api *APIServer) {
		api.Create(p, pvc("shop", "sales", "fast", 100))
		if err := api.Create(p, pvc("shop", "sales", "fast", 100)); !errors.Is(err, ErrExists) {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestCreateValidation(t *testing.T) {
	run(t, func(p *sim.Proc, env *sim.Env, api *APIServer) {
		if err := api.Create(p, &Namespace{}); err == nil {
			t.Fatal("nameless object accepted")
		}
	})
}

func TestGetReturnsDeepCopy(t *testing.T) {
	run(t, func(p *sim.Proc, env *sim.Env, api *APIServer) {
		api.Create(p, pvc("shop", "sales", "fast", 100))
		key := ObjectKey{Kind: KindPVC, Namespace: "shop", Name: "sales"}
		a, _ := api.Get(p, key)
		a.(*PersistentVolumeClaim).Spec.SizeBlocks = 999 // mutate the copy
		b, _ := api.Get(p, key)
		if b.(*PersistentVolumeClaim).Spec.SizeBlocks != 100 {
			t.Fatal("store aliased the returned object")
		}
	})
}

func TestUpdateConflictOnStaleRV(t *testing.T) {
	run(t, func(p *sim.Proc, env *sim.Env, api *APIServer) {
		api.Create(p, pvc("shop", "sales", "fast", 100))
		key := ObjectKey{Kind: KindPVC, Namespace: "shop", Name: "sales"}
		a, _ := api.Get(p, key)
		b, _ := api.Get(p, key)
		a.(*PersistentVolumeClaim).Status.Phase = ClaimBound
		if err := api.Update(p, a); err != nil {
			t.Fatal(err)
		}
		b.(*PersistentVolumeClaim).Status.Phase = ClaimPending
		if err := api.Update(p, b); !errors.Is(err, ErrConflict) {
			t.Fatalf("stale update: %v", err)
		}
	})
}

func TestUpdateMissingObject(t *testing.T) {
	run(t, func(p *sim.Proc, env *sim.Env, api *APIServer) {
		if err := api.Update(p, pvc("shop", "ghost", "fast", 1)); !errors.Is(err, ErrNotFound) {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestListFiltersByKindAndNamespace(t *testing.T) {
	run(t, func(p *sim.Proc, env *sim.Env, api *APIServer) {
		api.Create(p, pvc("shop", "sales", "fast", 1))
		api.Create(p, pvc("shop", "stock", "fast", 1))
		api.Create(p, pvc("other", "x", "fast", 1))
		api.Create(p, &Namespace{Meta: Meta{Kind: KindNamespace, Name: "shop"}})
		got := api.List(p, KindPVC, "shop")
		if len(got) != 2 {
			t.Fatalf("list = %d objects", len(got))
		}
		// Sorted by name.
		if got[0].GetMeta().Name != "sales" || got[1].GetMeta().Name != "stock" {
			t.Fatalf("order: %s, %s", got[0].GetMeta().Name, got[1].GetMeta().Name)
		}
		if all := api.List(p, KindPVC, ""); len(all) != 3 {
			t.Fatalf("all PVCs = %d", len(all))
		}
	})
}

func TestDeleteAndNotFound(t *testing.T) {
	run(t, func(p *sim.Proc, env *sim.Env, api *APIServer) {
		api.Create(p, pvc("shop", "sales", "fast", 1))
		key := ObjectKey{Kind: KindPVC, Namespace: "shop", Name: "sales"}
		if err := api.Delete(p, key); err != nil {
			t.Fatal(err)
		}
		if _, err := api.Get(p, key); !errors.Is(err, ErrNotFound) {
			t.Fatalf("get after delete: %v", err)
		}
		if err := api.Delete(p, key); !errors.Is(err, ErrNotFound) {
			t.Fatalf("double delete: %v", err)
		}
	})
}

func TestWatchDeliversLifecycle(t *testing.T) {
	env := sim.NewEnv(1)
	api := NewAPIServer(env, APIConfig{})
	w := api.Watch(KindPVC)
	var events []EventType
	env.Process("watcher", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			events = append(events, w.Next(p).Type)
		}
	})
	env.Process("driver", func(p *sim.Proc) {
		api.Create(p, pvc("shop", "sales", "fast", 1))
		key := ObjectKey{Kind: KindPVC, Namespace: "shop", Name: "sales"}
		obj, _ := api.Get(p, key)
		obj.(*PersistentVolumeClaim).Status.Phase = ClaimBound
		api.Update(p, obj)
		api.Delete(p, key)
	})
	env.Run(0)
	want := []EventType{Added, Modified, Deleted}
	if len(events) != 3 {
		t.Fatalf("events = %v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
}

func TestWatchFiltersKind(t *testing.T) {
	env := sim.NewEnv(1)
	api := NewAPIServer(env, APIConfig{})
	w := api.Watch(KindNamespace)
	env.Process("driver", func(p *sim.Proc) {
		api.Create(p, pvc("shop", "sales", "fast", 1))
		api.Create(p, &Namespace{Meta: Meta{Kind: KindNamespace, Name: "shop"}})
	})
	env.Run(0)
	if w.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 (namespace only)", w.Pending())
	}
}

func TestWatchEventCarriesCopy(t *testing.T) {
	env := sim.NewEnv(1)
	api := NewAPIServer(env, APIConfig{})
	w := api.Watch(KindPVC)
	env.Process("driver", func(p *sim.Proc) {
		api.Create(p, pvc("shop", "sales", "fast", 100))
	})
	env.Run(0)
	var got *PersistentVolumeClaim
	env.Process("watcher", func(p *sim.Proc) {
		got = w.Next(p).Object.(*PersistentVolumeClaim)
	})
	env.Run(0)
	got.Spec.SizeBlocks = 1
	env.Process("check", func(p *sim.Proc) {
		cur, _ := api.Get(p, ObjectKey{Kind: KindPVC, Namespace: "shop", Name: "sales"})
		if cur.(*PersistentVolumeClaim).Spec.SizeBlocks != 100 {
			t.Error("watch event aliased store object")
		}
	})
	env.Run(0)
}

func TestAPICallsConsumeTimeAndCount(t *testing.T) {
	env := sim.NewEnv(1)
	api := NewAPIServer(env, APIConfig{CallLatency: time.Millisecond})
	env.Process("driver", func(p *sim.Proc) {
		api.Create(p, pvc("shop", "sales", "fast", 1))
		api.List(p, KindPVC, "")
	})
	end := env.Run(0)
	if end != 2*time.Millisecond {
		t.Fatalf("2 calls took %v, want 2ms", end)
	}
	if api.Calls() != 2 {
		t.Fatalf("calls = %d", api.Calls())
	}
}

// countingReconciler tracks reconciled keys and can fail N times per key.
type countingReconciler struct {
	seen      map[ObjectKey]int
	failTimes int
}

func (r *countingReconciler) Reconcile(p *sim.Proc, key ObjectKey) error {
	if r.seen == nil {
		r.seen = make(map[ObjectKey]int)
	}
	r.seen[key]++
	if r.seen[key] <= r.failTimes {
		return errors.New("transient")
	}
	return nil
}

func TestControllerReconcilesOnEvents(t *testing.T) {
	env := sim.NewEnv(1)
	api := NewAPIServer(env, APIConfig{})
	rec := &countingReconciler{}
	c := NewController(env, api, "test", KindPVC, nil, rec, ControllerConfig{})
	c.Start()
	env.Process("driver", func(p *sim.Proc) {
		api.Create(p, pvc("shop", "sales", "fast", 1))
		api.Create(p, pvc("shop", "stock", "fast", 1))
	})
	env.Run(time.Second)
	c.Stop()
	env.Run(0)
	if len(rec.seen) != 2 {
		t.Fatalf("reconciled %d keys, want 2", len(rec.seen))
	}
	if c.Reconciles() != 2 || c.Errors() != 0 {
		t.Fatalf("reconciles=%d errors=%d", c.Reconciles(), c.Errors())
	}
}

func TestControllerRetriesWithBackoff(t *testing.T) {
	env := sim.NewEnv(1)
	api := NewAPIServer(env, APIConfig{})
	rec := &countingReconciler{failTimes: 3}
	c := NewController(env, api, "test", KindPVC, nil, rec,
		ControllerConfig{RetryDelay: 5 * time.Millisecond})
	c.Start()
	env.Process("driver", func(p *sim.Proc) {
		api.Create(p, pvc("shop", "sales", "fast", 1))
	})
	env.Run(time.Second)
	c.Stop()
	env.Run(0)
	key := ObjectKey{Kind: KindPVC, Namespace: "shop", Name: "sales"}
	if rec.seen[key] != 4 { // 3 failures + 1 success
		t.Fatalf("attempts = %d, want 4", rec.seen[key])
	}
	if c.Errors() != 3 {
		t.Fatalf("errors = %d", c.Errors())
	}
}

func TestControllerDeduplicatesQueue(t *testing.T) {
	env := sim.NewEnv(1)
	api := NewAPIServer(env, APIConfig{})
	rec := &countingReconciler{}
	c := NewController(env, api, "test", KindPVC, nil, rec, ControllerConfig{})
	key := ObjectKey{Kind: KindPVC, Namespace: "shop", Name: "sales"}
	for i := 0; i < 10; i++ {
		c.Enqueue(key)
	}
	if c.QueueLen() != 1 {
		t.Fatalf("queue = %d, want deduped 1", c.QueueLen())
	}
	c.Start()
	env.Run(time.Second)
	c.Stop()
	env.Run(0)
	if rec.seen[key] != 1 {
		t.Fatalf("reconciled %d times, want 1", rec.seen[key])
	}
}

func TestControllerCustomMapFn(t *testing.T) {
	env := sim.NewEnv(1)
	api := NewAPIServer(env, APIConfig{})
	rec := &countingReconciler{}
	// Map namespace events to a ReplicationGroup key — the NSO pattern.
	mapFn := func(ev Event) []ObjectKey {
		return []ObjectKey{{Kind: KindReplicationGroup, Name: ev.Object.GetMeta().Name}}
	}
	c := NewController(env, api, "nso", KindNamespace, mapFn, rec, ControllerConfig{})
	c.Start()
	env.Process("driver", func(p *sim.Proc) {
		api.Create(p, &Namespace{Meta: Meta{Kind: KindNamespace, Name: "shop"}})
	})
	env.Run(time.Second)
	c.Stop()
	env.Run(0)
	want := ObjectKey{Kind: KindReplicationGroup, Name: "shop"}
	if rec.seen[want] != 1 {
		t.Fatalf("seen = %v", rec.seen)
	}
}

func TestDeepCopyIndependence(t *testing.T) {
	g := &ReplicationGroup{
		Meta: Meta{Kind: KindReplicationGroup, Name: "g", Labels: map[string]string{"a": "1"}},
		Spec: ReplicationGroupSpec{PVCNames: []string{"sales", "stock"}},
	}
	c := g.DeepCopy().(*ReplicationGroup)
	c.Labels["a"] = "2"
	c.Spec.PVCNames[0] = "mutated"
	if g.Labels["a"] != "1" || g.Spec.PVCNames[0] != "sales" {
		t.Fatal("DeepCopy shares storage")
	}
}

// TestStoppedWatchesCompactOnNotify pins the watch-leak fix: a stopped
// watch must be swept out of the server's registry by the next notify, not
// skipped forever — long churny runs register and stop watches per tenant.
func TestStoppedWatchesCompactOnNotify(t *testing.T) {
	env := sim.NewEnv(1)
	api := NewAPIServer(env, APIConfig{})
	const n = 50
	watches := make([]*Watch, n)
	for i := range watches {
		watches[i] = api.Watch(KindPVC)
	}
	keep := api.Watch(KindPVC)
	for _, w := range watches {
		w.Stop()
	}
	if got := api.WatchCount(); got != 1 {
		t.Fatalf("WatchCount = %d, want 1 live", got)
	}
	if got := len(api.watches); got != n+1 {
		t.Fatalf("registry = %d before notify, want %d", got, n+1)
	}
	env.Process("driver", func(p *sim.Proc) {
		if err := api.Create(p, pvc("shop", "sales", "fast", 1)); err != nil {
			t.Error(err)
		}
	})
	env.Run(0)
	if got := len(api.watches); got != 1 {
		t.Fatalf("registry = %d after notify, want 1 (stopped watches compacted)", got)
	}
	if keep.Pending() != 1 {
		t.Fatalf("surviving watch pending = %d, want 1", keep.Pending())
	}
	for _, w := range watches {
		if w.Pending() != 0 {
			t.Fatal("stopped watch received an event")
		}
	}
}

// TestControllerStopReleasesWatch pins the other half of the leak: a
// stopped controller's watch must detach so the server can compact it.
func TestControllerStopReleasesWatch(t *testing.T) {
	env := sim.NewEnv(1)
	api := NewAPIServer(env, APIConfig{})
	ctrl := NewController(env, api, "test", KindPVC, nil,
		ReconcilerFunc(func(p *sim.Proc, key ObjectKey) error { return nil }), ControllerConfig{})
	ctrl.Start()
	env.Run(0)
	if got := api.WatchCount(); got != 1 {
		t.Fatalf("WatchCount after Start = %d, want 1", got)
	}
	ctrl.Stop()
	env.Run(0)
	if got := api.WatchCount(); got != 0 {
		t.Fatalf("WatchCount after Stop = %d, want 0 (controller watch leaked)", got)
	}
}
