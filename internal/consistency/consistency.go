// Package consistency verifies backup images for the paper's central
// correctness property: that the backup site can recover the business
// process. A backup of the two-resource e-commerce workload is "collapsed"
// (§I) when the recovered stock database contains a business transaction
// the recovered sales database is missing — the application committed sales
// first, so no consistent cut of the ack order can ever contain stock
// without sales. Consistency groups make collapse impossible; independent
// per-volume replication does not.
package consistency

import (
	"fmt"
	"time"
)

// CommitSet is the recovered-commit view of one database image. db.DB and
// db.View both satisfy it.
type CommitSet interface {
	CommittedTxns() []uint64
	HasCommitted(txid uint64) bool
}

// Report is the verdict on one backup image pair.
type Report struct {
	// SalesTxns and StockTxns count committed business transactions in the
	// recovered images.
	SalesTxns, StockTxns int
	// OrphanStock lists transactions committed in stock but not sales —
	// each one is a collapse witness.
	OrphanStock []uint64
	// DanglingSales lists transactions committed in sales but not stock.
	// These are NOT collapses: they are in-flight orders the disaster cut
	// mid-way, and the application's recovery can resolve them precisely
	// because the order is preserved.
	DanglingSales []uint64
	// SalesPrefixOK and StockPrefixOK report whether each recovered commit
	// set is a prefix of that database's commit order (per-volume ordering;
	// must hold in every replication mode).
	SalesPrefixOK, StockPrefixOK bool
	// RPO is the data-loss window: the span of committed-at-main
	// transactions missing from the backup, expressed as a count.
	LostSalesTxns, LostStockTxns int
}

// Collapsed reports whether the image pair is unusable for recovery.
func (r Report) Collapsed() bool { return len(r.OrphanStock) > 0 }

// OrderingOK reports whether per-volume ordering held in both images.
func (r Report) OrderingOK() bool { return r.SalesPrefixOK && r.StockPrefixOK }

func (r Report) String() string {
	return fmt.Sprintf("consistency{sales=%d stock=%d orphans=%d dangling=%d collapsed=%v}",
		r.SalesTxns, r.StockTxns, len(r.OrphanStock), len(r.DanglingSales), r.Collapsed())
}

// Verify checks a recovered backup image pair against the main site's
// ground-truth commit orders (workload.Shop provides them).
func Verify(sales, stock CommitSet, salesOrder, stockOrder []uint64) Report {
	rep := Report{
		SalesTxns: len(sales.CommittedTxns()),
		StockTxns: len(stock.CommittedTxns()),
	}
	for _, tx := range stock.CommittedTxns() {
		if !sales.HasCommitted(tx) {
			rep.OrphanStock = append(rep.OrphanStock, tx)
		}
	}
	for _, tx := range sales.CommittedTxns() {
		if !stock.HasCommitted(tx) {
			rep.DanglingSales = append(rep.DanglingSales, tx)
		}
	}
	rep.SalesPrefixOK, rep.LostSalesTxns = prefixCheck(sales, salesOrder)
	rep.StockPrefixOK, rep.LostStockTxns = prefixCheck(stock, stockOrder)
	return rep
}

// prefixCheck reports whether the recovered set is a prefix of order, and
// how many trailing transactions are missing.
func prefixCheck(set CommitSet, order []uint64) (ok bool, lost int) {
	n := 0
	for n < len(order) && set.HasCommitted(order[n]) {
		n++
	}
	// Everything past the recovered prefix must be absent.
	for i := n; i < len(order); i++ {
		if set.HasCommitted(order[i]) {
			return false, len(order) - n
		}
	}
	return true, len(order) - n
}

// RPOFromOrders converts lost-transaction counts into a time window given
// the commit timestamps recorded by the workload. commitTimes[i] is the ack
// time of order[i]; the window is cutTime minus the ack time of the last
// recovered transaction (0 when nothing was lost).
func RPOFromOrders(order []uint64, commitTimes []time.Duration, set CommitSet, cutTime time.Duration) time.Duration {
	if len(order) != len(commitTimes) {
		panic("consistency: order/commitTimes length mismatch")
	}
	lastRecovered := time.Duration(-1)
	for i, tx := range order {
		if set.HasCommitted(tx) {
			lastRecovered = commitTimes[i]
		}
	}
	if lastRecovered < 0 {
		if len(commitTimes) == 0 {
			return 0
		}
		return cutTime
	}
	// Lost window: from the last recovered commit to the cut.
	lost := false
	for i, tx := range order {
		if commitTimes[i] > lastRecovered && !set.HasCommitted(tx) {
			lost = true
			break
		}
	}
	if !lost {
		return 0
	}
	return cutTime - lastRecovered
}
