package consistency

import (
	"testing"
	"time"
)

// fakeSet is a CommitSet backed by a plain set.
type fakeSet map[uint64]bool

func (f fakeSet) HasCommitted(tx uint64) bool { return f[tx] }
func (f fakeSet) CommittedTxns() []uint64 {
	var out []uint64
	// Deterministic order for assertions.
	for tx := uint64(0); tx <= 1000; tx++ {
		if f[tx] {
			out = append(out, tx)
		}
	}
	return out
}

func set(txs ...uint64) fakeSet {
	f := fakeSet{}
	for _, tx := range txs {
		f[tx] = true
	}
	return f
}

func seq(txs ...uint64) []uint64 { return txs }

func TestVerifyConsistentPair(t *testing.T) {
	// Backup cut after order 3's sales commit but before its stock commit:
	// dangling sales is fine; nothing collapsed.
	rep := Verify(
		set(1, 2, 3), set(1, 2),
		seq(1, 2, 3), seq(1, 2),
	)
	if rep.Collapsed() {
		t.Fatalf("consistent pair reported collapsed: %v", rep)
	}
	if len(rep.DanglingSales) != 1 || rep.DanglingSales[0] != 3 {
		t.Fatalf("dangling = %v", rep.DanglingSales)
	}
	if !rep.OrderingOK() {
		t.Fatalf("ordering flagged: %v", rep)
	}
	if rep.SalesTxns != 3 || rep.StockTxns != 2 {
		t.Fatalf("counts: %v", rep)
	}
}

func TestVerifyDetectsCollapse(t *testing.T) {
	// Stock has order 3 but sales lost it: the paper's collapse scenario.
	rep := Verify(
		set(1, 2), set(1, 2, 3),
		seq(1, 2, 3), seq(1, 2, 3),
	)
	if !rep.Collapsed() {
		t.Fatal("collapse not detected")
	}
	if len(rep.OrphanStock) != 1 || rep.OrphanStock[0] != 3 {
		t.Fatalf("orphans = %v", rep.OrphanStock)
	}
}

func TestVerifyDetectsPrefixViolation(t *testing.T) {
	// Sales recovered {1,3} out of commit order 1,2,3: a hole — per-volume
	// ordering was violated (cannot happen with journal replication, but
	// the verifier must catch it if it ever does).
	rep := Verify(
		set(1, 3), set(1),
		seq(1, 2, 3), seq(1),
	)
	if rep.SalesPrefixOK {
		t.Fatal("hole in sales prefix not detected")
	}
	if !rep.StockPrefixOK {
		t.Fatal("intact stock prefix flagged")
	}
}

func TestVerifyLossCounts(t *testing.T) {
	rep := Verify(
		set(1, 2), set(1),
		seq(1, 2, 3, 4), seq(1, 2, 3),
	)
	if rep.LostSalesTxns != 2 || rep.LostStockTxns != 2 {
		t.Fatalf("lost = %d/%d, want 2/2", rep.LostSalesTxns, rep.LostStockTxns)
	}
}

func TestVerifyEmptyBackup(t *testing.T) {
	rep := Verify(set(), set(), seq(1, 2), seq(1, 2))
	if rep.Collapsed() || !rep.OrderingOK() {
		t.Fatalf("empty backup should be consistent: %v", rep)
	}
	if rep.LostSalesTxns != 2 {
		t.Fatalf("lost = %d", rep.LostSalesTxns)
	}
}

func TestVerifyPerfectBackup(t *testing.T) {
	rep := Verify(set(1, 2, 3), set(1, 2, 3), seq(1, 2, 3), seq(1, 2, 3))
	if rep.Collapsed() || !rep.OrderingOK() || rep.LostSalesTxns != 0 || rep.LostStockTxns != 0 {
		t.Fatalf("perfect backup misjudged: %v", rep)
	}
}

func TestRPOFromOrders(t *testing.T) {
	order := seq(1, 2, 3)
	times := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	// All recovered: RPO 0.
	if got := RPOFromOrders(order, times, set(1, 2, 3), 40*time.Millisecond); got != 0 {
		t.Fatalf("full recovery RPO = %v", got)
	}
	// Lost tx 3 (committed at 30ms, cut at 40ms): window from last
	// recovered (20ms) to cut = 20ms.
	if got := RPOFromOrders(order, times, set(1, 2), 40*time.Millisecond); got != 20*time.Millisecond {
		t.Fatalf("partial recovery RPO = %v", got)
	}
	// Nothing recovered: whole window.
	if got := RPOFromOrders(order, times, set(), 40*time.Millisecond); got != 40*time.Millisecond {
		t.Fatalf("empty recovery RPO = %v", got)
	}
	// No commits at all: RPO 0.
	if got := RPOFromOrders(nil, nil, set(), 40*time.Millisecond); got != 0 {
		t.Fatalf("no-commit RPO = %v", got)
	}
}

func TestRPOFromOrdersEdges(t *testing.T) {
	order := seq(1, 2, 3)
	times := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	// Cut taken before the first commit landed, nothing recovered: the lost
	// window is the whole (short) cut, not the span of the commit times.
	if got := RPOFromOrders(order, times, set(), 5*time.Millisecond); got != 5*time.Millisecond {
		t.Fatalf("pre-commit cut RPO = %v, want 5ms", got)
	}
	// All-lost tail: only the first commit survived, so the window runs from
	// its commit time to the cut.
	if got := RPOFromOrders(order, times, set(1), 40*time.Millisecond); got != 30*time.Millisecond {
		t.Fatalf("all-lost tail RPO = %v, want 30ms", got)
	}
	// Empty order with a nonzero cut: no commits means nothing was lost.
	if got := RPOFromOrders(seq(), []time.Duration{}, set(), 40*time.Millisecond); got != 0 {
		t.Fatalf("empty order RPO = %v, want 0", got)
	}
	// A recovered transaction the order never saw must not shrink the
	// window: only ordered commits count.
	if got := RPOFromOrders(order, times, set(7), 40*time.Millisecond); got != 40*time.Millisecond {
		t.Fatalf("unordered recovery RPO = %v, want 40ms", got)
	}
}

func TestRPOMismatchedInputsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RPOFromOrders(seq(1), nil, set(), 0)
}
