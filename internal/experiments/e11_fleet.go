package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/telemetry"
)

// FleetResult summarizes one E11 multi-tenant fleet run.
type FleetResult struct {
	Tenants         int
	FailedOver      int
	Analytics       int
	OrdersPlaced    int64
	Verified        int // tenants whose consistency verification passed
	Collapsed       int // tenants with a collapse witness (must be 0)
	LostTxns        int // commits cut off in flight by the failovers
	MeanTimeToReady time.Duration
	MaxTimeToReady  time.Duration
	MeanRecovery    time.Duration
	SimTime         time.Duration // virtual time the whole fleet took
	BackupApplied   int64         // journal records applied across all groups
	Workers         int           // scheduler worker pool (0/1 = sequential)
	Kernel          sim.Stats     // scheduler counters for the whole run
}

// E11FleetScale provisions a fleet of tenant namespaces on one shared
// two-site system and runs the mixed workload: OLTP commits everywhere,
// snapshot analytics on one subset, a mid-run site failover (no catch-up —
// in-flight records are lost) on another. Every tenant's recovered or
// snapshotted image must be a consistent cut of its own cross-volume commit
// order — the paper's §I claim at production-fleet scale.
func E11FleetScale(seed int64, tenants, ordersPerTenant int) (FleetResult, error) {
	// Independent tenant subgraphs run on one worker per spare core; on a
	// single-core host this degrades to the sequential scheduler, and either
	// way the simulated outcome is identical (golden-trace verified).
	return E11FleetScaleWorkers(seed, tenants, ordersPerTenant, runtime.GOMAXPROCS(0))
}

// E11FleetScaleWorkers is E11FleetScale with an explicit scheduler worker
// count (0 or 1 forces the sequential scheduler).
func E11FleetScaleWorkers(seed int64, tenants, ordersPerTenant, workers int) (FleetResult, error) {
	return e11Run(seed, tenants, ordersPerTenant, workers, nil)
}

// E11FleetScaleTelemetry is E11FleetScale with the telemetry plane enabled
// at the given probe sample period — the subject of the telemetry-overhead
// benchmark, which requires it to stay within a few percent of the
// telemetry-off run at 1,024 tenants. workers <= 0 takes E11FleetScale's
// default (one per core), keeping the two benches apples-to-apples.
func E11FleetScaleTelemetry(seed int64, tenants, ordersPerTenant, workers int, period time.Duration) (FleetResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return e11Run(seed, tenants, ordersPerTenant, workers, &telemetry.Config{SamplePeriod: period})
}

func e11Run(seed int64, tenants, ordersPerTenant, workers int, tel *telemetry.Config) (FleetResult, error) {
	f := fleet.New(fleet.Config{
		Tenants:         tenants,
		OrdersPerTenant: ordersPerTenant,
		Workers:         workers,
		// Load-then-measure: provisioning skew stays out of the mixed
		// workload, and the shared start instant lets the parallel scheduler
		// batch independent tenant steps into same-instant rounds.
		StartBarrier: true,
		// Small volumes and blocks keep a 1,024-tenant fleet (thousands of
		// volumes across both sites) affordable without changing the
		// measured behavior: what E11 asserts — per-tenant consistent cuts
		// under mixed load — is block-size independent, and 512-byte blocks
		// cut the host memory traffic of block copies 8x.
		System: core.Config{Seed: seed, VolumeBlocks: 256,
			Storage:   storage.Config{BlockSize: 512},
			Telemetry: tel},
	})
	if err := f.Run(); err != nil {
		return FleetResult{}, fmt.Errorf("E11: %w", err)
	}
	tot := f.Totals()
	res := FleetResult{
		Tenants:         tot.Tenants,
		FailedOver:      tot.FailedOver,
		Analytics:       tot.Analytics,
		OrdersPlaced:    tot.OrdersPlaced,
		Verified:        tot.Verified,
		Collapsed:       tot.Collapsed,
		LostTxns:        tot.LostTxns,
		MeanTimeToReady: tot.MeanTimeToReady,
		MaxTimeToReady:  tot.MaxTimeToReady,
		MeanRecovery:    tot.MeanRecovery,
		SimTime:         f.Sys.Env.Now(),
		Workers:         workers,
		Kernel:          f.Sys.Env.Stats(),
	}
	recordKernel(fmt.Sprintf("e11/tenants=%d,workers=%d", tenants, workers), f.Sys.Env)
	for _, g := range f.Sys.Replication.AllGroups() {
		res.BackupApplied += g.AppliedRecords()
	}
	if res.Verified != res.Tenants {
		return res, fmt.Errorf("E11: only %d/%d tenants verified consistent", res.Verified, res.Tenants)
	}
	if res.Collapsed != 0 {
		return res, fmt.Errorf("E11: %d tenants collapsed", res.Collapsed)
	}
	return res, nil
}

// E11Table renders the E11 result.
func E11Table(r FleetResult) *metrics.Table {
	t := metrics.NewTable("E11: multi-tenant fleet scale-out — mixed workload with mid-run failovers",
		"metric", "value")
	t.AddRow("tenant namespaces", r.Tenants)
	t.AddRow("orders placed (fleet)", r.OrdersPlaced)
	t.AddRow("tenants failed over mid-run", r.FailedOver)
	t.AddRow("tenants running snapshot analytics", r.Analytics)
	t.AddRow("tenants verified consistent", r.Verified)
	t.AddRow("tenants collapsed", r.Collapsed)
	t.AddRow("commits lost in flight (failovers)", r.LostTxns)
	t.AddRow("journal records applied at backup", r.BackupApplied)
	t.AddRow("mean tag -> replication ready", r.MeanTimeToReady)
	t.AddRow("max tag -> replication ready", r.MaxTimeToReady)
	t.AddRow("mean failover recovery time", r.MeanRecovery)
	t.AddRow("fleet virtual time", r.SimTime)
	t.AddRow("scheduler workers", r.Workers)
	t.AddRow("kernel handoffs (process resumes)", r.Kernel.Handoffs)
	t.AddRow("kernel inline steps (no handoff)", r.Kernel.InlineSteps)
	t.AddRow("kernel heap pushes", r.Kernel.HeapPushes)
	t.AddRow("kernel same-instant FIFO bypasses", r.Kernel.FifoBypasses)
	t.AddRow("kernel timer entries canceled eagerly", r.Kernel.TimerCancels)
	t.AddRow("kernel parallel rounds merged", r.Kernel.ParallelMerges)
	t.AddRow("kernel steps run in parallel rounds", r.Kernel.ParallelSteps)
	t.AddNote("shape: every tenant's image is a consistent cut; lost in-flight commits are RPO, not collapse")
	return t
}
