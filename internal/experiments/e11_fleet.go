package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/metrics"
)

// FleetResult summarizes one E11 multi-tenant fleet run.
type FleetResult struct {
	Tenants         int
	FailedOver      int
	Analytics       int
	OrdersPlaced    int64
	Verified        int // tenants whose consistency verification passed
	Collapsed       int // tenants with a collapse witness (must be 0)
	LostTxns        int // commits cut off in flight by the failovers
	MeanTimeToReady time.Duration
	MaxTimeToReady  time.Duration
	MeanRecovery    time.Duration
	SimTime         time.Duration // virtual time the whole fleet took
	BackupApplied   int64         // journal records applied across all groups
}

// E11FleetScale provisions a fleet of tenant namespaces on one shared
// two-site system and runs the mixed workload: OLTP commits everywhere,
// snapshot analytics on one subset, a mid-run site failover (no catch-up —
// in-flight records are lost) on another. Every tenant's recovered or
// snapshotted image must be a consistent cut of its own cross-volume commit
// order — the paper's §I claim at production-fleet scale.
func E11FleetScale(seed int64, tenants, ordersPerTenant int) (FleetResult, error) {
	f := fleet.New(fleet.Config{
		Tenants:         tenants,
		OrdersPerTenant: ordersPerTenant,
		// Small volumes keep a 100-tenant fleet (hundreds of volumes across
		// both sites) affordable without changing the measured behavior.
		System: core.Config{Seed: seed, VolumeBlocks: 256},
	})
	if err := f.Run(); err != nil {
		return FleetResult{}, fmt.Errorf("E11: %w", err)
	}
	tot := f.Totals()
	res := FleetResult{
		Tenants:         tot.Tenants,
		FailedOver:      tot.FailedOver,
		Analytics:       tot.Analytics,
		OrdersPlaced:    tot.OrdersPlaced,
		Verified:        tot.Verified,
		Collapsed:       tot.Collapsed,
		LostTxns:        tot.LostTxns,
		MeanTimeToReady: tot.MeanTimeToReady,
		MaxTimeToReady:  tot.MaxTimeToReady,
		MeanRecovery:    tot.MeanRecovery,
		SimTime:         f.Sys.Env.Now(),
	}
	for _, g := range f.Sys.Replication.AllGroups() {
		res.BackupApplied += g.AppliedRecords()
	}
	if res.Verified != res.Tenants {
		return res, fmt.Errorf("E11: only %d/%d tenants verified consistent", res.Verified, res.Tenants)
	}
	if res.Collapsed != 0 {
		return res, fmt.Errorf("E11: %d tenants collapsed", res.Collapsed)
	}
	return res, nil
}

// E11Table renders the E11 result.
func E11Table(r FleetResult) *metrics.Table {
	t := metrics.NewTable("E11: multi-tenant fleet scale-out — mixed workload with mid-run failovers",
		"metric", "value")
	t.AddRow("tenant namespaces", r.Tenants)
	t.AddRow("orders placed (fleet)", r.OrdersPlaced)
	t.AddRow("tenants failed over mid-run", r.FailedOver)
	t.AddRow("tenants running snapshot analytics", r.Analytics)
	t.AddRow("tenants verified consistent", r.Verified)
	t.AddRow("tenants collapsed", r.Collapsed)
	t.AddRow("commits lost in flight (failovers)", r.LostTxns)
	t.AddRow("journal records applied at backup", r.BackupApplied)
	t.AddRow("mean tag -> replication ready", r.MeanTimeToReady)
	t.AddRow("max tag -> replication ready", r.MaxTimeToReady)
	t.AddRow("mean failover recovery time", r.MeanRecovery)
	t.AddRow("fleet virtual time", r.SimTime)
	t.AddNote("shape: every tenant's image is a consistent cut; lost in-flight commits are RPO, not collapse")
	return t
}
