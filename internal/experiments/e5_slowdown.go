package experiments

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/netlink"
)

// SlowdownResult is one (RTT, mode) cell of experiment E5.
type SlowdownResult struct {
	RTT        time.Duration
	Mode       Mode
	MeanOrder  time.Duration
	P99Order   time.Duration
	Throughput float64 // orders per second
}

// E5Slowdown measures the paper's headline claim (§I): ADC eliminates
// system slowdown while SDC's commit path pays the inter-site RTT. For each
// RTT it runs the e-commerce workload under no replication, ADC with a
// consistency group, and SDC, and reports order latency and throughput.
//
// Expected shape: ADC ≈ none at every RTT; SDC degrades linearly with RTT.
func E5Slowdown(seed int64, rtts []time.Duration, orders int) ([]SlowdownResult, error) {
	var out []SlowdownResult
	for _, rtt := range rtts {
		for _, mode := range []Mode{ModeNone, ModeADC, ModeSDC} {
			r, err := newRig(rigParams{
				seed: seed,
				mode: mode,
				link: netlink.Config{Propagation: rtt / 2, BandwidthBps: 1e9},
			})
			if err != nil {
				return nil, fmt.Errorf("E5 %s rtt=%v: %w", mode, rtt, err)
			}
			span, err := r.runOrders(orders)
			if err != nil {
				return nil, fmt.Errorf("E5 %s rtt=%v: %w", mode, rtt, err)
			}
			out = append(out, SlowdownResult{
				RTT:        rtt,
				Mode:       mode,
				MeanOrder:  r.shop.Latency.Mean(),
				P99Order:   r.shop.Latency.P99(),
				Throughput: float64(orders) / span.Seconds(),
			})
			r.stop()
			recordKernel(fmt.Sprintf("e5/%s,rtt=%v", mode, rtt), r.env)
		}
	}
	return out, nil
}

// E5Table renders E5 results.
func E5Table(results []SlowdownResult) *metrics.Table {
	t := metrics.NewTable("E5: system slowdown — order latency by replication mode (paper §I claim)",
		"rtt", "mode", "mean", "p99", "orders/s")
	for _, r := range results {
		t.AddRow(r.RTT, string(r.Mode), r.MeanOrder, r.P99Order, r.Throughput)
	}
	t.AddNote("shape: ADC+CG tracks the no-replication baseline; SDC grows with RTT")
	return t
}
