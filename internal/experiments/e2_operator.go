package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/operator"
	"repro/internal/platform"
	"repro/internal/sim"
)

// OperatorResult is one row of experiment E2.
type OperatorResult struct {
	Volumes     int
	UserOpsNSO  int           // operations the user performs with the operator
	UserOpsHand int           // operations a hand configuration would take
	TimeToReady time.Duration // tag -> ReplicationGroup Ready
	APICalls    int64         // total platform API calls during configuration
}

// E2Operator measures the namespace operator's automation (Figs. 3-4): the
// user performs exactly one operation (tagging the namespace) regardless of
// how many volumes the business process spans, where a hand configuration
// grows linearly (per volume: identify the PV↔volume correspondence, create
// the backup twin, its PV and PVC, and attach it to the journal — plus
// creating the journal and starting the pair).
//
// Expected shape: NSO user operations stay at 1; hand operations grow ~5x
// volumes; time-to-ready grows mildly with volume count.
func E2Operator(seed int64, volumeCounts []int) ([]OperatorResult, error) {
	var out []OperatorResult
	for _, n := range volumeCounts {
		sys := core.NewSystem(core.Config{Seed: seed, VolumeBlocks: 128})
		var res OperatorResult
		res.Volumes = n
		res.UserOpsNSO = 1 // the tag
		// Hand configuration: per volume 4 ops (backup volume, backup PV,
		// backup PVC, journal attach) + journal create + replication start.
		res.UserOpsHand = 4*n + 2
		var runErr error
		sys.Env.Process("e2", func(p *sim.Proc) {
			if err := sys.Main.API.Create(p, &platform.Namespace{
				Meta: platform.Meta{Kind: platform.KindNamespace, Name: "biz"},
			}); err != nil {
				runErr = err
				return
			}
			for i := 0; i < n; i++ {
				if err := sys.Main.API.Create(p, &platform.PersistentVolumeClaim{
					Meta: platform.Meta{Kind: platform.KindPVC, Namespace: "biz", Name: fmt.Sprintf("vol-%03d", i)},
					Spec: platform.PVCSpec{StorageClassName: core.StorageClassName, SizeBlocks: 128},
				}); err != nil {
					runErr = err
					return
				}
			}
			// Wait for binding, then measure tag -> Ready.
			p.Sleep(50 * time.Millisecond)
			callsBefore := sys.Main.API.Calls() + sys.Backup.API.Calls()
			start := p.Now()
			if err := sys.EnableBackup(p, "biz"); err != nil {
				runErr = err
				return
			}
			res.TimeToReady = p.Now() - start
			res.APICalls = sys.Main.API.Calls() + sys.Backup.API.Calls() - callsBefore
		})
		sys.Env.Run(time.Hour)
		if runErr != nil {
			return nil, fmt.Errorf("E2 n=%d: %w", n, runErr)
		}
		// Sanity: the operator really did configure one CG with n members.
		groups := sys.Replication.Groups(operator.GroupNameFor("biz"))
		if len(groups) != 1 || len(groups[0].Members()) != n {
			return nil, fmt.Errorf("E2 n=%d: configured %d groups", n, len(groups))
		}
		sys.Stop() // quiesce so bench iterations do not accumulate parked procs
		sys.Env.Run(time.Hour)
		recordKernel(fmt.Sprintf("e2/volumes=%d", n), sys.Env)
		out = append(out, res)
	}
	return out, nil
}

// E2Table renders E2 results.
func E2Table(results []OperatorResult) *metrics.Table {
	t := metrics.NewTable("E2: operator automation — user operations and time to configure backup (Figs. 3-4)",
		"volumes", "user ops (NSO)", "user ops (hand)", "time to ready", "API calls")
	for _, r := range results {
		t.AddRow(r.Volumes, r.UserOpsNSO, r.UserOpsHand, r.TimeToReady, r.APICalls)
	}
	t.AddNote("shape: NSO stays at one user operation; hand configuration grows linearly with volumes")
	return t
}
