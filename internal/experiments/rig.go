// Package experiments contains one harness per paper artifact (Figures 1-6
// and the §I claims) plus the scale-out experiments that grow past the
// paper, each regenerating its result as a plain-text table. DESIGN.md
// carries the experiment index (E1-E18). cmd/experiments runs them all; the
// root bench_test.go wraps each in a testing.B benchmark.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/netlink"
	"repro/internal/platform"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Mode selects the replication configuration under test.
type Mode string

// Replication modes compared across experiments.
const (
	// ModeNone is the no-replication baseline.
	ModeNone Mode = "none"
	// ModeADC is asynchronous data copy with a consistency group — the
	// paper's configuration.
	ModeADC Mode = "ADC+CG"
	// ModeADCNoCG is asynchronous data copy with one journal per volume —
	// the collapse-prone configuration.
	ModeADCNoCG Mode = "ADC-noCG"
	// ModeSDC is synchronous data copy — the related-work baseline (§V).
	ModeSDC Mode = "SDC"
)

// rig is the hand-wired two-site testbed the quantitative experiments use:
// it bypasses the container platform (E2 measures that separately) and
// configures storage replication directly, so latency measurements isolate
// the storage path.
type rig struct {
	env    *sim.Env
	main   *storage.Array
	backup *storage.Array
	links  *netlink.Pair
	mode   Mode

	groups []*replication.Group
	sales  *db.DB
	stock  *db.DB
	shop   *workload.Shop
}

// rigParams configures a rig build.
type rigParams struct {
	seed     int64
	mode     Mode
	link     netlink.Config
	storage  storage.Config
	repl     replication.Config
	volBlk   int64
	workload workload.Config
}

func (rp rigParams) withDefaults() rigParams {
	if rp.volBlk == 0 {
		rp.volBlk = 2048
	}
	if rp.link.BandwidthBps == 0 {
		rp.link.BandwidthBps = 1e9
	}
	return rp
}

// newRig builds the two-site testbed and opens the databases inside a
// bootstrap process. It returns with the simulation idle and the shop ready.
func newRig(params rigParams) (*rig, error) {
	params = params.withDefaults()
	env := sim.NewEnv(params.seed)
	r := &rig{
		env:    env,
		main:   storage.NewArray(env, "main", params.storage),
		backup: storage.NewArray(env, "backup", params.storage),
		links:  netlink.NewPair(env, params.link),
		mode:   params.mode,
	}
	for _, a := range []*storage.Array{r.main, r.backup} {
		if _, err := a.CreateVolume("sales", params.volBlk); err != nil {
			return nil, err
		}
		if _, err := a.CreateVolume("stock", params.volBlk); err != nil {
			return nil, err
		}
	}
	var bootErr error
	env.Process("bootstrap", func(p *sim.Proc) {
		bootErr = r.bootstrap(p, params)
	})
	env.Run(0)
	if bootErr != nil {
		return nil, bootErr
	}
	return r, nil
}

func (r *rig) bootstrap(p *sim.Proc, params rigParams) error {
	salesVol, _ := r.main.Volume("sales")
	stockVol, _ := r.main.Volume("stock")

	// Wire replication BEFORE opening the databases so every write —
	// including formatting — replicates; no initial copy needed.
	var salesW, stockW replication.BlockWriter = salesVol, stockVol
	switch r.mode {
	case ModeNone:
	case ModeADC:
		j, err := r.main.CreateConsistencyGroup("cg", []storage.VolumeID{"sales", "stock"})
		if err != nil {
			return err
		}
		g, err := replication.NewGroup(r.env, "cg", j, r.backup,
			ident("sales", "stock"), r.links.Forward, params.repl)
		if err != nil {
			return err
		}
		g.Start()
		r.groups = []*replication.Group{g}
	case ModeADCNoCG:
		// Without a consistency group each volume pair is an independent
		// copy session: its own journal AND its own link-level session
		// (real arrays multiplex per-pair sessions whose delays vary
		// independently). The divergence between sessions is exactly what
		// lets the backup collapse.
		for _, vol := range []storage.VolumeID{"sales", "stock"} {
			j, err := r.main.CreateConsistencyGroup("j-"+string(vol), []storage.VolumeID{vol})
			if err != nil {
				return err
			}
			session := netlink.New(r.env, params.link)
			g, err := replication.NewGroup(r.env, "g-"+string(vol), j, r.backup,
				ident(vol), session, params.repl)
			if err != nil {
				return err
			}
			g.Start()
			r.groups = append(r.groups, g)
		}
	case ModeSDC:
		bs, _ := r.backup.Volume("sales")
		bk, _ := r.backup.Volume("stock")
		salesW = replication.NewSyncVolume(salesVol, bs, r.links)
		stockW = replication.NewSyncVolume(stockVol, bk, r.links)
	default:
		return fmt.Errorf("experiments: unknown mode %q", r.mode)
	}

	var err error
	if r.sales, err = db.Open(p, "sales", salesW, db.Config{}); err != nil {
		return err
	}
	if r.stock, err = db.Open(p, "stock", stockW, db.Config{}); err != nil {
		return err
	}
	wcfg := params.workload
	wcfg.Seed = params.seed
	r.shop = workload.NewShop(r.env, r.sales, r.stock, wcfg)
	return nil
}

// provisionClaims creates a tenant namespace and its PVCs through the
// platform control plane and waits for the provisioner to bind every claim
// — the shared setup for the full-control-plane drain experiments (E13,
// E18).
func provisionClaims(p *sim.Proc, sys *core.System, namespace string, pvcs []string) error {
	if err := sys.Main.API.Create(p, &platform.Namespace{
		Meta: platform.Meta{Kind: platform.KindNamespace, Name: namespace},
	}); err != nil {
		return err
	}
	for _, name := range pvcs {
		if err := sys.Main.API.Create(p, &platform.PersistentVolumeClaim{
			Meta: platform.Meta{Kind: platform.KindPVC, Namespace: namespace, Name: name},
			Spec: platform.PVCSpec{StorageClassName: core.StorageClassName, SizeBlocks: sys.Cfg.VolumeBlocks},
		}); err != nil {
			return err
		}
	}
	deadline := p.Now() + 30*time.Second
	for _, name := range pvcs {
		for {
			obj, err := sys.Main.API.Get(p, platform.ObjectKey{Kind: platform.KindPVC, Namespace: namespace, Name: name})
			if err == nil && obj.(*platform.PersistentVolumeClaim).Status.Phase == platform.ClaimBound {
				break
			}
			if p.Now() >= deadline {
				return fmt.Errorf("claim %s never bound", name)
			}
			p.Sleep(5 * time.Millisecond)
		}
	}
	return nil
}

// ident builds an identity volume mapping.
func ident(vols ...storage.VolumeID) map[storage.VolumeID]storage.VolumeID {
	m := make(map[storage.VolumeID]storage.VolumeID, len(vols))
	for _, v := range vols {
		m[v] = v
	}
	return m
}

// runOrders drives n orders to completion and returns the simulated span.
func (r *rig) runOrders(n int) (time.Duration, error) {
	start := r.env.Now()
	var err error
	r.env.Process("orders", func(p *sim.Proc) { err = r.shop.Run(p, n) })
	r.env.Run(0)
	return r.env.Now() - start, err
}

// catchUp drains all groups.
func (r *rig) catchUp() {
	r.env.Process("catchup", func(p *sim.Proc) {
		for _, g := range r.groups {
			g.CatchUp(p)
		}
	})
	r.env.Run(0)
}

// stop halts replication drains so the environment can go idle.
func (r *rig) stop() {
	for _, g := range r.groups {
		g.Stop()
	}
	r.env.Run(0)
}
