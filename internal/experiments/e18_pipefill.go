package experiments

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/csiplugin"
	"repro/internal/fabric"
	"repro/internal/invariants"
	"repro/internal/metrics"
	"repro/internal/netlink"
	"repro/internal/sim"
	"repro/internal/storage"
)

// E18 scenario scale. One write-heavy tenant sharded across 8 drain lanes,
// all funneling into a SINGLE geo member link with a 50ms propagation delay
// and a fat serialization rate: one 64-record batch occupies the wire for
// ~4ms and then flies for 50ms, a bandwidth-delay product of ~12 frames.
// Under the stop-and-wait dispatcher (window=1) the wire idles >92% of the
// time; the windowed dispatcher fills the pipe with the lanes' concurrent
// batches. Array latencies are dialed down and the writes are cheap so the
// geo link — not the primary array — is always the bottleneck being
// measured.
const (
	e18Namespace = "pipe-bench"
	e18Volumes   = 16
	e18Shards    = 8 // drain lanes; each keeps at most one batch in flight
)

// e18GeoLink is the lone member link: a high-BDP geo hop.
var e18GeoLink = netlink.Config{Propagation: 50 * time.Millisecond, BandwidthBps: 6.4e7}

// PipeFillResult is one window size's outcome over the same schedule.
type PipeFillResult struct {
	Window int
	Writes int

	// Throughput run: all writes issued, then drained to empty.
	Bytes          int64
	DrainTime      time.Duration
	ThroughputMBps float64
	Speedup        float64 // vs the window=1 row
	MaxInFlight    int     // peak frames propagating concurrently on the geo link
	Pipelined      int64   // sends serialized while earlier frames were in flight
	WindowStalls   int64   // dispatcher waits with the window full
	OrderOK        bool    // per-link delivery order monotone (zero watermark violations)

	// Partition run: the geo link is cut mid-window, healed, then the pair
	// is split for real.
	InFlightAtCut      int   // frames propagating the instant the partition hit
	DeliveredDuringCut int64 // deliveries while partitioned: InFlightAtCut, +1 if a frame was mid-serialization
	CutWrites          int   // K: writes present in the recovered image
	LostWrites         int   // acked writes missing from the image
	FailoverConsistent bool  // image is the exact ack-order prefix {1..K}
}

// E18PipeFill measures propagation-pipelined fabric dispatch: the same
// sharded drain schedule over one 50ms geo link at increasing per-link
// in-flight windows. Each window runs twice — once clean to measure drain
// throughput, once cutting the geo link mid-window (frames already
// serialized must deliver during the partition, frames queued behind it
// must not), healing it, and then splitting the pair to verify the
// recovered image is still an exact ack-order prefix. The shape the ROADMAP
// pipelining item needs: near-linear throughput gain with the window until
// the lanes' outstanding batches (or serialization) saturate, with in-order
// delivery proven, not assumed.
func E18PipeFill(seed int64, windows []int, writes int) ([]PipeFillResult, error) {
	if len(windows) == 0 {
		windows = []int{1, 4, 16}
	}
	if writes <= 0 {
		writes = 6144
	}
	var out []PipeFillResult
	for _, w := range windows {
		res := PipeFillResult{Window: w, Writes: writes}
		if err := e18Run(seed, w, writes, false, &res); err != nil {
			return out, fmt.Errorf("E18 window=%d throughput: %w", w, err)
		}
		if err := e18Run(seed, w, writes, true, &res); err != nil {
			return out, fmt.Errorf("E18 window=%d partition: %w", w, err)
		}
		res.ThroughputMBps = float64(res.Bytes) / 1e6 / res.DrainTime.Seconds()
		out = append(out, res)
	}
	base := out[0].ThroughputMBps
	for _, r := range out {
		if r.Window == 1 {
			base = r.ThroughputMBps
			break
		}
	}
	for i := range out {
		if base > 0 {
			out[i].Speedup = out[i].ThroughputMBps / base
		}
	}
	return out, nil
}

// e18Run drives one run at one window size. partition=false measures clean
// drain throughput; partition=true cuts the geo link mid-window, heals it,
// then fails the tenant over and checks the consistency cut.
func e18Run(seed int64, window, writes int, partition bool, res *PipeFillResult) error {
	sys := core.NewSystem(core.Config{
		Seed: seed,
		Fabric: fabric.Config{
			Links: []netlink.Config{e18GeoLink},
			// A class forces scheduled (dispatcher-driven) mode even with a
			// single member — a classless single link would be passthrough
			// and bypass the window entirely.
			Classes:       []fabric.ClassConfig{{Name: "bulk"}},
			WindowPerLink: window,
		},
		JournalShards: e18Shards,
		// Cheap primary writes: the experiment measures the link pipeline,
		// so the array must never be the bottleneck.
		Storage:      storage.Config{WriteLatency: 5 * time.Microsecond, JournalLatency: time.Microsecond, Parallelism: 16},
		VolumeBlocks: int64(writes/e18Volumes + 2),
	})
	link := sys.Fabric.Forward.Links()[0]

	pvcs := make([]string, e18Volumes)
	for i := range pvcs {
		pvcs[i] = fmt.Sprintf("g%02d", i)
	}

	var runErr error
	halfway := sys.Env.NewEvent()
	writerDone := sys.Env.NewEvent()
	sys.Env.Process("driver", func(p *sim.Proc) {
		defer writerDone.Trigger()
		if err := provisionClaims(p, sys, e18Namespace, pvcs); err != nil {
			runErr = err
			return
		}
		if err := sys.EnableBackup(p, e18Namespace); err != nil {
			runErr = err
			return
		}
		groups := sys.Groups(e18Namespace)
		if len(groups) != 1 {
			runErr = fmt.Errorf("groups = %d, want 1", len(groups))
			return
		}
		g := groups[0]
		vols := make([]*storage.Volume, e18Volumes)
		for i, name := range pvcs {
			v, err := sys.Main.Array.Volume(csiplugin.VolumeIDForClaim(e18Namespace, name))
			if err != nil {
				runErr = err
				return
			}
			vols[i] = v
		}
		buf := make([]byte, sys.Main.Array.Config().BlockSize)
		start := p.Now()
		for i := 0; i < writes; i++ {
			binary.BigEndian.PutUint64(buf, uint64(i+1))
			if _, err := vols[i%e18Volumes].Write(p, int64(i/e18Volumes), buf); err != nil {
				runErr = err
				return
			}
			if partition {
				// Pace the write phase across the drain so epochs seal and
				// commit progressively — a burst-everything writer collapses
				// the run into one tiny epoch plus one giant one, leaving no
				// meaningful prefix to cut. The throughput run stays
				// unpaced: there the drain alone is the measurement.
				p.Sleep(100 * time.Microsecond)
			}
			if i == writes/2 {
				halfway.Trigger()
			}
		}
		if partition {
			return // the disaster process owns the rest of this run
		}
		g.CatchUp(p)
		res.DrainTime = p.Now() - start
		res.Bytes = g.AppliedBytes()
		res.MaxInFlight = link.MaxInFlight()
		st := sys.Fabric.Forward.LinkWindowStats(0)
		res.Pipelined = st.Pipelined
		res.WindowStalls = st.WindowStalls
		res.OrderOK = link.OrderViolations() == 0
	})
	if partition {
		sys.Env.Process("disaster", func(p *sim.Proc) {
			p.Wait(halfway)
			// Writes are cheap and finish early; the drain is the long phase.
			// Cut well into it so a meaningful prefix has committed, but
			// before even the fastest window finishes.
			p.Sleep(300 * time.Millisecond)
			res.InFlightAtCut = link.InFlight()
			before := link.Transfers()
			link.Partition()
			// Long enough for every in-flight frame (≤ 50ms of residual
			// propagation, no loss on this link) to land.
			p.Sleep(60 * time.Millisecond)
			res.DeliveredDuringCut = link.Transfers() - before
			link.Heal()
			p.Sleep(30 * time.Millisecond) // drain resumes over the healed link
			groups := sys.Groups(e18Namespace)
			if len(groups) != 1 {
				runErr = fmt.Errorf("disaster: groups = %d", len(groups))
				return
			}
			vols, err := groups[0].Failover()
			if err != nil {
				runErr = err
				return
			}
			p.Wait(writerDone) // writer finishes acking into the stranded journal
			res.CutWrites, res.FailoverConsistent = invariants.StampedPrefix(vols)
			res.LostWrites = res.Writes - res.CutWrites
		})
	}
	sys.Env.Run(0)
	sys.Stop()
	sys.Env.Run(0)
	recordKernel(fmt.Sprintf("e18/window=%d,partition=%v", window, partition), sys.Env)
	return runErr
}

// E18Table renders the E18 results.
func E18Table(results []PipeFillResult) *metrics.Table {
	t := metrics.NewTable("E18: propagation-pipelined dispatch — drain throughput vs per-link in-flight window over a 50ms geo link",
		"window", "drain time", "MB/s", "speedup", "max in-flight", "pipelined", "stalls", "order ok",
		"in-flight@cut", "delivered@cut", "failover cut", "lost", "consistent")
	for _, r := range results {
		t.AddRow(r.Window, r.DrainTime, fmt.Sprintf("%.2f", r.ThroughputMBps), fmt.Sprintf("%.2fx", r.Speedup),
			r.MaxInFlight, r.Pipelined, r.WindowStalls, r.OrderOK,
			r.InFlightAtCut, r.DeliveredDuringCut, r.CutWrites, r.LostWrites, r.FailoverConsistent)
	}
	t.AddNote("shape: throughput grows near-linearly with the window until the %d lanes' outstanding batches saturate; "+
		"every frame committed to the wire before the cut delivers during the partition (delivered@cut = in-flight@cut, +1 when a frame was mid-serialization), "+
		"frames queued behind the cut wait for heal, and every failover image is an exact ack-order prefix", e18Shards)
	return t
}
