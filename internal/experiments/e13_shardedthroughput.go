package experiments

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/csiplugin"
	"repro/internal/fabric"
	"repro/internal/invariants"
	"repro/internal/metrics"
	"repro/internal/netlink"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/storage"
)

// E13 scenario scale. One write-heavy tenant with many volumes in a single
// consistency group, on a deliberately thin multi-link fabric, so the drain
// — not the array — is the throughput cap. 16 volumes hash evenly onto
// 2/4/8 shards, so the scaling measured is the lanes', not an artifact of
// placement skew.
const (
	e13Namespace = "shard-bench"
	e13Volumes   = 16
	e13Links     = 4 // fabric member links; lanes beyond this share links
)

// ShardedThroughputResult is one shard count's outcome: how fast the
// tenant's writes reached the backup site, and whether a mid-run failover
// still yielded a consistent cross-volume cut.
type ShardedThroughputResult struct {
	Shards int
	Writes int

	// Throughput run: all writes issued, then drained to empty.
	Bytes          int64         // payload bytes committed at the backup
	DrainTime      time.Duration // first write -> backup fully caught up
	ThroughputMBps float64
	Speedup        float64 // vs the 1-shard row (first row if 1 was not swept)
	EpochCommits   int64   // consistency cuts declared (sharded engine only)

	// Failover run: the pair is split mid-drain, no catch-up.
	CutWrites          int  // K: writes present in the recovered image
	LostWrites         int  // acked writes missing from the image (RPO)
	FailoverConsistent bool // image is the exact ack-order prefix {1..K}
}

// E13ShardedThroughput measures per-tenant drain scale-out: one write-heavy
// tenant whose consistency-group journal is sharded across increasing lane
// counts over a multi-link inter-site fabric. Each shard count runs twice —
// once to measure drain throughput, once splitting the pair mid-drain to
// verify the recovered image is still an exact prefix of the tenant's
// cross-volume ack order (the epoch-barrier consistency cut). The shape the
// ROADMAP's sharded-journal item needs: throughput scales with shards until
// the fabric's member links saturate, and no shard count ever trades away
// the consistency cut.
func E13ShardedThroughput(seed int64, shardCounts []int, writes int) ([]ShardedThroughputResult, error) {
	if writes <= 0 {
		writes = 4000
	}
	var out []ShardedThroughputResult
	for _, shards := range shardCounts {
		res := ShardedThroughputResult{Shards: shards, Writes: writes}
		if err := e13Run(seed, shards, writes, false, &res); err != nil {
			return out, fmt.Errorf("E13 shards=%d throughput: %w", shards, err)
		}
		if err := e13Run(seed, shards, writes, true, &res); err != nil {
			return out, fmt.Errorf("E13 shards=%d failover: %w", shards, err)
		}
		res.ThroughputMBps = float64(res.Bytes) / 1e6 / res.DrainTime.Seconds()
		out = append(out, res)
	}
	// Normalize against the 1-shard row (the first row when no 1-shard
	// count was swept), guarding the degenerate zero-throughput case.
	base := out[0].ThroughputMBps
	for _, r := range out {
		if r.Shards == 1 {
			base = r.ThroughputMBps
			break
		}
	}
	for i := range out {
		if base > 0 {
			out[i].Speedup = out[i].ThroughputMBps / base
		}
	}
	return out, nil
}

// e13Run drives one full-control-plane run: namespace + PVCs provisioned,
// backup enabled through the operator (which threads JournalShards down to
// the replication plugin), then the write-heavy load.
func e13Run(seed int64, shards, writes int, failover bool, res *ShardedThroughputResult) error {
	// A thin pipe per member: one 64-record batch serializes in ~67ms, so a
	// single lane is visibly the bottleneck and extra lanes visibly help.
	member := netlink.Config{Propagation: 2 * time.Millisecond, BandwidthBps: 4e6}
	links := make([]netlink.Config, e13Links)
	for i := range links {
		links[i] = member
	}
	sys := core.NewSystem(core.Config{
		Seed:          seed,
		Fabric:        fabric.Config{Links: links},
		JournalShards: shards,
		VolumeBlocks:  int64(writes/e13Volumes + 2),
	})

	pvcs := make([]string, e13Volumes)
	for i := range pvcs {
		pvcs[i] = fmt.Sprintf("d%02d", i)
	}

	var runErr error
	halfway := sys.Env.NewEvent()
	writerDone := sys.Env.NewEvent()
	sys.Env.Process("driver", func(p *sim.Proc) {
		defer writerDone.Trigger()
		if err := provisionClaims(p, sys, e13Namespace, pvcs); err != nil {
			runErr = err
			return
		}
		if err := sys.EnableBackup(p, e13Namespace); err != nil {
			runErr = err
			return
		}
		groups := sys.Groups(e13Namespace)
		if len(groups) != 1 {
			runErr = fmt.Errorf("groups = %d, want 1", len(groups))
			return
		}
		g := groups[0]
		if shards > 1 {
			sg, ok := g.(*replication.ShardedGroup)
			if !ok || sg.Lanes() != shards {
				runErr = fmt.Errorf("engine %T with %d lanes, want sharded with %d", g, shards, shards)
				return
			}
		}

		vols := make([]*storage.Volume, e13Volumes)
		for i, name := range pvcs {
			v, err := sys.Main.Array.Volume(csiplugin.VolumeIDForClaim(e13Namespace, name))
			if err != nil {
				runErr = err
				return
			}
			vols[i] = v
		}
		buf := make([]byte, sys.Main.Array.Config().BlockSize)
		start := p.Now()
		for i := 0; i < writes; i++ {
			binary.BigEndian.PutUint64(buf, uint64(i+1))
			if _, err := vols[i%e13Volumes].Write(p, int64(i/e13Volumes), buf); err != nil {
				runErr = err
				return
			}
			if i == writes/2 {
				halfway.Trigger()
			}
		}
		if failover {
			return // the disaster process owns the rest of this run
		}
		g.CatchUp(p)
		res.DrainTime = p.Now() - start
		res.Bytes = g.AppliedBytes()
		if sg, ok := g.(*replication.ShardedGroup); ok {
			res.EpochCommits = sg.EpochCommits()
		}
	})
	if failover {
		sys.Env.Process("disaster", func(p *sim.Proc) {
			p.Wait(halfway)
			p.Sleep(30 * time.Millisecond) // let the drain run mid-backlog
			groups := sys.Groups(e13Namespace)
			if len(groups) != 1 {
				runErr = fmt.Errorf("disaster: groups = %d", len(groups))
				return
			}
			vols, err := groups[0].Failover()
			if err != nil {
				runErr = err
				return
			}
			p.Wait(writerDone) // let the writer finish acking into the stranded journal
			res.CutWrites, res.FailoverConsistent = invariants.StampedPrefix(vols)
			res.LostWrites = writes - res.CutWrites
		})
	}
	sys.Env.Run(0)
	// Quiesce before discarding the system so repeated runs (the bench
	// loop) do not accumulate parked simulation processes.
	sys.Stop()
	sys.Env.Run(0)
	recordKernel(fmt.Sprintf("e13/shards=%d,failover=%v", shards, failover), sys.Env)
	return runErr
}

// E13Table renders the E13 results.
func E13Table(results []ShardedThroughputResult) *metrics.Table {
	t := metrics.NewTable("E13: sharded consistency-group journals — per-tenant drain throughput vs shard count",
		"shards", "writes", "drain time", "MB/s", "speedup", "epoch cuts", "failover cut", "lost", "consistent")
	for _, r := range results {
		t.AddRow(r.Shards, r.Writes, r.DrainTime, fmt.Sprintf("%.2f", r.ThroughputMBps),
			fmt.Sprintf("%.2fx", r.Speedup), r.EpochCommits, r.CutWrites, r.LostWrites, r.FailoverConsistent)
	}
	t.AddNote("shape: throughput scales with shards until the fabric's %d member links saturate; every failover image is an exact ack-order prefix", e13Links)
	return t
}
