package experiments

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/netlink"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/workload"
)

// BatchResult is one row of the E9 journal-batch ablation.
type BatchResult struct {
	BatchMax   int
	Transfers  int64
	MeanRPO    time.Duration
	DrainSpan  time.Duration // time for the backup to fully catch up
	LinkBytes  int64
	OrderCount int
}

// E9BatchSweep ablates the ADC drain's batch size: small batches waste link
// round trips (each transfer pays propagation), large batches raise RPO
// spikes. This is the main tunable DESIGN.md calls out.
//
// Expected shape: transfers fall ~1/batch; drain span shrinks then
// flattens; per-record overhead amortizes.
func E9BatchSweep(seed int64, batches []int, orders int) ([]BatchResult, error) {
	var out []BatchResult
	for _, b := range batches {
		r, err := newRig(rigParams{
			seed: seed,
			mode: ModeADC,
			link: netlink.Config{Propagation: 5 * time.Millisecond, BandwidthBps: 1e8},
			repl: replication.Config{BatchMax: b},
		})
		if err != nil {
			return nil, fmt.Errorf("E9 batch=%d: %w", b, err)
		}
		series := metrics.NewSeries("rpo")
		done := false
		var drainSpan time.Duration
		var runErr error
		r.env.Process("orders", func(p *sim.Proc) {
			if err := r.shop.Run(p, orders); err != nil {
				runErr = err
				done = true
				return
			}
			drainStart := p.Now()
			r.groups[0].CatchUp(p)
			drainSpan = p.Now() - drainStart
			done = true
		})
		r.env.Process("monitor", func(p *sim.Proc) {
			for !done {
				p.Sleep(5 * time.Millisecond)
				series.Append(p.Now(), float64(r.groups[0].RPO(p.Now())))
			}
		})
		r.env.Run(0)
		if runErr != nil {
			return nil, runErr
		}
		r.stop()
		recordKernel(fmt.Sprintf("e9a/batch=%d", b), r.env)
		out = append(out, BatchResult{
			BatchMax:   b,
			Transfers:  r.links.Forward.Transfers(),
			MeanRPO:    time.Duration(series.Mean()),
			DrainSpan:  drainSpan,
			LinkBytes:  r.links.Forward.SentBytes(),
			OrderCount: orders,
		})
	}
	return out, nil
}

// E9BatchTable renders the batch ablation.
func E9BatchTable(results []BatchResult) *metrics.Table {
	t := metrics.NewTable("E9a: ADC journal batch size ablation",
		"batch", "link transfers", "mean RPO", "drain tail", "link bytes")
	for _, r := range results {
		t.AddRow(r.BatchMax, r.Transfers, r.MeanRPO, r.DrainSpan, r.LinkBytes)
	}
	t.AddNote("shape: transfers fall ~1/batch; RPO bottoms out at moderate batch sizes")
	return t
}

// CGScaleResult is one row of the E9 consistency-group scaling ablation.
type CGScaleResult struct {
	Volumes    int
	Mode       Mode
	MeanCommit time.Duration // mean per-transaction commit latency
	Throughput float64
}

// E9CGScale ablates the cost of sharing one journal across many volumes:
// the paper's design assumes consistency groups do not slow the main site
// down even as the group grows. Each round-robin transaction commits one
// write to one of n journaled volumes.
//
// Expected shape: commit latency flat in n for both shared-journal (CG) and
// per-volume journals — the group costs nothing on the host path.
func E9CGScale(seed int64, volumeCounts []int, writesPerVol int) ([]CGScaleResult, error) {
	var out []CGScaleResult
	for _, n := range volumeCounts {
		for _, shared := range []bool{true, false} {
			env := sim.NewEnv(seed)
			main := storage.NewArray(env, "main", storage.Config{})
			backup := storage.NewArray(env, "backup", storage.Config{})
			link := netlink.New(env, netlink.Config{Propagation: 5 * time.Millisecond, BandwidthBps: 1e9})
			var vols []storage.VolumeID
			for i := 0; i < n; i++ {
				id := storage.VolumeID(fmt.Sprintf("vol-%03d", i))
				main.CreateVolume(id, 256)
				backup.CreateVolume(id, 256)
				vols = append(vols, id)
			}
			var groups []*replication.Group
			if shared {
				j, err := main.CreateConsistencyGroup("cg", vols)
				if err != nil {
					return nil, err
				}
				g, err := replication.NewGroup(env, "cg", j, backup, ident(vols...), link, replication.Config{})
				if err != nil {
					return nil, err
				}
				g.Start()
				groups = append(groups, g)
			} else {
				for _, v := range vols {
					j, err := main.CreateConsistencyGroup("j-"+string(v), []storage.VolumeID{v})
					if err != nil {
						return nil, err
					}
					g, err := replication.NewGroup(env, "g-"+string(v), j, backup, ident(v), link, replication.Config{})
					if err != nil {
						return nil, err
					}
					g.Start()
					groups = append(groups, g)
				}
			}
			hist := metrics.NewHistogram()
			env.Process("writer", func(p *sim.Proc) {
				buf := make([]byte, main.Config().BlockSize)
				for w := 0; w < writesPerVol; w++ {
					for _, id := range vols {
						v, _ := main.Volume(id)
						start := p.Now()
						if _, err := v.Write(p, int64(w%256), buf); err != nil {
							panic(err)
						}
						hist.Record(p.Now() - start)
					}
				}
			})
			span := env.Run(0)
			for _, g := range groups {
				g.Stop()
			}
			env.Run(0)
			mode := ModeADC
			if !shared {
				mode = ModeADCNoCG
			}
			recordKernel(fmt.Sprintf("e9b/%s,volumes=%d", mode, n), env)
			out = append(out, CGScaleResult{
				Volumes:    n,
				Mode:       mode,
				MeanCommit: hist.Mean(),
				Throughput: float64(hist.Count()) / span.Seconds(),
			})
		}
	}
	return out, nil
}

// E9CGScaleTable renders the CG scaling ablation.
func E9CGScaleTable(results []CGScaleResult) *metrics.Table {
	t := metrics.NewTable("E9b: consistency-group size ablation — host write latency",
		"volumes", "mode", "mean write", "writes/s")
	for _, r := range results {
		t.AddRow(r.Volumes, string(r.Mode), r.MeanCommit, r.Throughput)
	}
	t.AddNote("shape: host write latency flat in group size; CG adds no main-path cost over per-volume journals")
	return t
}

// WorkloadSkewResult is one row of the E9 skew ablation.
type WorkloadSkewResult struct {
	ZipfS      float64
	Mode       Mode
	MeanOrder  time.Duration
	Throughput float64
}

// E9SkewSweep ablates item-popularity skew: heavily skewed stock updates
// concentrate on few pages, stressing the WAL and journal ordering paths
// differently than uniform traffic. The paper's claims must hold regardless.
func E9SkewSweep(seed int64, skews []float64, orders int) ([]WorkloadSkewResult, error) {
	var out []WorkloadSkewResult
	for _, s := range skews {
		r, err := newRig(rigParams{
			seed:     seed,
			mode:     ModeADC,
			link:     netlink.Config{Propagation: 5 * time.Millisecond, BandwidthBps: 1e9},
			workload: workload.Config{ZipfS: s},
		})
		if err != nil {
			return nil, err
		}
		span, err := r.runOrders(orders)
		if err != nil {
			return nil, fmt.Errorf("E9 skew=%v: %w", s, err)
		}
		r.stop()
		recordKernel(fmt.Sprintf("e9c/skew=%v", s), r.env)
		out = append(out, WorkloadSkewResult{
			ZipfS:      s,
			Mode:       ModeADC,
			MeanOrder:  r.shop.Latency.Mean(),
			Throughput: float64(orders) / span.Seconds(),
		})
	}
	return out, nil
}

// E9SkewTable renders the skew ablation.
func E9SkewTable(results []WorkloadSkewResult) *metrics.Table {
	t := metrics.NewTable("E9c: workload skew ablation under ADC+CG",
		"zipf s", "mean order", "orders/s")
	for _, r := range results {
		t.AddRow(r.ZipfS, r.MeanOrder, r.Throughput)
	}
	t.AddNote("shape: latency insensitive to skew (journal order, not page locality, governs the path)")
	return t
}
