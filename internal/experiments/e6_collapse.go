package experiments

import (
	"fmt"
	"time"

	"repro/internal/consistency"
	"repro/internal/db"
	"repro/internal/metrics"
	"repro/internal/netlink"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/storage"
)

// CollapseResult aggregates E6 trials for one configuration.
type CollapseResult struct {
	Mode            Mode
	Trials          int
	Collapsed       int     // trials whose backup image was collapsed
	MeanOrphans     float64 // mean collapse witnesses per trial
	OrderingBroken  int     // per-volume prefix violations (must stay 0)
	MeanRecoverable float64 // mean fraction of committed orders recovered
}

// E6Collapse reproduces the paper's central consistency claim (§I): under
// ADC, a disaster that cuts replication mid-stream leaves the backup
// collapsed unless the volumes share a consistency group. Each trial runs
// the two-resource workload over a constrained link, cuts the simulation at
// a disaster instant, freezes the backup image with an (instantaneous)
// array snapshot group, recovers the databases from the frozen image, and
// checks cross-database atomicity.
//
// Expected shape: ADC-noCG collapses in a large fraction of trials;
// ADC+CG never collapses; per-volume ordering holds in both.
func E6Collapse(seedBase int64, trials, orders int, mode Mode) (CollapseResult, error) {
	res := CollapseResult{Mode: mode, Trials: trials}
	var recoverableSum float64
	var orphanSum int
	for trial := 0; trial < trials; trial++ {
		rep, err := collapseTrial(seedBase+int64(trial)*7919, orders, mode, trial)
		if err != nil {
			return res, fmt.Errorf("E6 trial %d: %w", trial, err)
		}
		if rep.Collapsed() {
			res.Collapsed++
			orphanSum += len(rep.OrphanStock)
		}
		if !rep.OrderingOK() {
			res.OrderingBroken++
		}
		if rep.SalesTxns > 0 {
			total := rep.SalesTxns + rep.LostSalesTxns
			recoverableSum += float64(rep.SalesTxns) / float64(total)
		}
	}
	if trials > 0 {
		res.MeanOrphans = float64(orphanSum) / float64(trials)
		res.MeanRecoverable = recoverableSum / float64(trials)
	}
	return res, nil
}

func collapseTrial(seed int64, orders int, mode Mode, trial int) (consistency.Report, error) {
	// A link slow enough that a backlog exists at the cut, plus jitter so
	// the two per-volume drains interleave differently across trials.
	r, err := newRig(rigParams{
		seed: seed,
		mode: mode,
		link: netlink.Config{
			Propagation:  4 * time.Millisecond,
			BandwidthBps: 3e6,
			Jitter:       8 * time.Millisecond,
		},
		repl: replication.Config{BatchMax: 4},
	})
	if err != nil {
		return consistency.Report{}, err
	}
	// Drive orders; the disaster cuts the run mid-stream at a
	// seed-dependent random instant.
	start := r.env.Now()
	r.env.Process("orders", func(p *sim.Proc) { r.shop.Run(p, orders) })
	cut := start + 100*time.Millisecond + time.Duration(r.env.Rand().Int63n(int64(150*time.Millisecond)))
	r.env.Run(cut)

	// Disaster: freeze the backup image at this instant. Array snapshot
	// groups are instantaneous, so the image is exactly the applied state
	// at the cut even though drains would otherwise keep running.
	group, err := r.backup.CreateSnapshotGroup("disaster", []storage.VolumeID{"sales", "stock"})
	if err != nil {
		return consistency.Report{}, err
	}
	for _, g := range r.groups {
		g.Stop()
	}

	// Recover databases from the frozen image and verify.
	var rep consistency.Report
	var verr error
	r.env.Process("verify", func(p *sim.Proc) {
		salesView, err := db.OpenView(p, "sales@disaster", group.Snapshot("sales"), db.Config{})
		if err != nil {
			verr = err
			return
		}
		stockView, err := db.OpenView(p, "stock@disaster", group.Snapshot("stock"), db.Config{})
		if err != nil {
			verr = err
			return
		}
		rep = consistency.Verify(salesView, stockView,
			r.shop.SalesCommitOrder(), r.shop.StockCommitOrder())
	})
	r.env.Run(0)
	recordKernel(fmt.Sprintf("e6/%s,trial=%d", mode, trial), r.env)
	return rep, verr
}

// E6Table renders E6 results.
func E6Table(results []CollapseResult) *metrics.Table {
	t := metrics.NewTable("E6: backup collapse under disaster cut (paper §I claim)",
		"mode", "trials", "collapsed", "collapse%", "mean orphans", "ordering broken")
	for _, r := range results {
		pct := 0.0
		if r.Trials > 0 {
			pct = 100 * float64(r.Collapsed) / float64(r.Trials)
		}
		t.AddRow(string(r.Mode), r.Trials, r.Collapsed, pct, r.MeanOrphans, r.OrderingBroken)
	}
	t.AddNote("shape: ADC-noCG collapses often; ADC+CG never; per-volume ordering never breaks")
	return t
}
