package experiments

import (
	"repro/internal/metrics"
	"repro/internal/sim"
)

// KernelStat is one simulated run's scheduler counters, labeled by the
// experiment (and sweep point) that owned the environment.
type KernelStat struct {
	Label string
	Stats sim.Stats
}

// kernelStats accumulates the counters of every environment an experiment
// run retired while collection is on (cmd/experiments -kernelstats).
var (
	kernelStats   []KernelStat
	collectKernel bool
)

// CollectKernelStats toggles kernel-counter collection and clears any
// previously collected rows.
func CollectKernelStats(on bool) {
	collectKernel = on
	kernelStats = nil
}

// KernelStats returns the rows collected since CollectKernelStats(true).
func KernelStats() []KernelStat { return kernelStats }

// recordKernel snapshots one environment's scheduler counters under a label.
// No-op unless collection is on, so steady-state runs pay nothing.
func recordKernel(label string, env *sim.Env) {
	if collectKernel {
		kernelStats = append(kernelStats, KernelStat{Label: label, Stats: env.Stats()})
	}
}

// KernelStatsTable renders every collected row — one line per simulated
// environment an experiment retired.
func KernelStatsTable() *metrics.Table {
	t := metrics.NewTable("Kernel scheduler counters per experiment environment",
		"experiment", "handoffs", "inline", "heap pushes", "fifo bypass", "timer cancels", "par rounds", "par steps")
	for _, k := range kernelStats {
		t.AddRow(k.Label, k.Stats.Handoffs, k.Stats.InlineSteps, k.Stats.HeapPushes,
			k.Stats.FifoBypasses, k.Stats.TimerCancels, k.Stats.ParallelMerges, k.Stats.ParallelSteps)
	}
	t.AddNote("collected with -kernelstats; one row per simulated environment")
	return t
}
