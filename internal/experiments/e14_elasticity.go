package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/invariants"
	"repro/internal/metrics"
)

// ElasticityResult summarizes one E14 run pair (steady baseline + churn).
type ElasticityResult struct {
	Tenants int // initial roster size
	Joined  int // tenants provisioned mid-run
	Left    int // tenants decommissioned mid-run

	OrdersPlaced int64
	Verified     int // every tenant (initial + joined), must equal the roster
	Collapsed    int // must be 0
	FailedOver   int

	// Joins: declarative spec -> Ready, with the initial copy racing the
	// whole fleet's OLTP load.
	JoinReadyMean, JoinReadyMax time.Duration
	SteadyReadyMean             time.Duration // the t=0 provisioning burst, for contrast
	JoinDuringFailover          bool          // a join was in flight while a site failover ran

	// Victim disturbance: worst sampled RPO across the steady plain tenants
	// (no failover, no analytics, no churn role), baseline vs churn run.
	VictimMaxRPOBase  time.Duration
	VictimMaxRPOChurn time.Duration

	// Leaves: the reclamation invariant.
	ReclaimOK    bool // every leaver left zero residue on both arrays
	ResidueLeaks int  // residue entries found after the run (must be 0)

	SimTime time.Duration // churn run, virtual time
}

// e14Config is the shared fleet shape of both E14 runs.
func e14Config(seed int64, tenants, orders int) fleet.Config {
	return fleet.Config{
		Tenants:         tenants,
		OrdersPerTenant: orders,
		RPOSample:       5 * time.Millisecond,
		System:          core.Config{Seed: seed, VolumeBlocks: 256},
	}
}

// e14Victims reports the worst sampled RPO across the steady plain tenants
// of the initial roster — the bystanders whose service the churn is not
// allowed to disturb beyond the fabric's fair share. The caller passes the
// index that leaves in the churn run so BOTH runs exclude it and the
// baseline/churn comparison covers the same tenant set.
func e14Victims(f *fleet.Fleet, roster, leaverIdx int) time.Duration {
	var worst time.Duration
	for _, t := range f.Tenants {
		if t.Index >= roster || t.Index == leaverIdx || t.Failover || t.Analytics || t.Join || t.Leave {
			continue
		}
		if t.MaxRPO > worst {
			worst = t.MaxRPO
		}
	}
	return worst
}

// E14Elasticity runs the declarative tenant-lifecycle experiment: a steady
// fleet (the baseline) and then the same fleet with mid-run churn — joins
// provisioned by ProvisionTenant while every other tenant serves OLTP load
// (one join scheduled to race the mid-run site failovers), and a leave that
// drains, decommissions, and must return its volumes and journal shards to
// the array free lists with the survivors' consistency cuts untouched.
func E14Elasticity(seed int64, tenants, orders int) (ElasticityResult, error) {
	if tenants < 6 {
		tenants = 6 // need failover + analytics + leaver + plain victims
	}
	var res ElasticityResult
	res.Tenants = tenants
	// The first plain tenant leaves in the churn run; exclude it from the
	// victim set of both runs so the RPO comparison covers one set.
	nFail := tenants / 4
	if nFail < 1 {
		nFail = 1
	}
	leaverIdx := nFail

	// Baseline: no churn. Measures the victims' undisturbed RPO and the
	// failover window the racing join is scheduled into.
	base := fleet.New(e14Config(seed, tenants, orders))
	if err := base.Run(); err != nil {
		return res, fmt.Errorf("E14 baseline: %w", err)
	}
	recordKernel("e14/baseline", base.Sys.Env)
	res.VictimMaxRPOBase = e14Victims(base, tenants, leaverIdx)
	firstFailover := time.Duration(0)
	for _, t := range base.Tenants {
		if t.Failover && (firstFailover == 0 || t.FailoverAt < firstFailover) {
			firstFailover = t.FailoverAt
		}
	}
	baseSpan := base.Sys.Env.Now()

	// Churn run: one join submitted shortly before the failover window (its
	// provisioning races the disasters), one join mid-run, and the first
	// plain tenant leaving mid-run.
	cfg := e14Config(seed, tenants, orders)
	raceAt := firstFailover - 15*time.Millisecond
	if raceAt < 0 {
		raceAt = 0
	}
	cfg.Joins = []fleet.JoinSpec{
		{After: raceAt},
		{After: baseSpan / 2},
	}
	cfg.Leaves = []fleet.LeaveSpec{{Tenant: leaverIdx, After: baseSpan / 2}}
	churn := fleet.New(cfg)
	if err := churn.Run(); err != nil {
		return res, fmt.Errorf("E14 churn: %w", err)
	}
	recordKernel("e14/churn", churn.Sys.Env)

	tot := churn.Totals()
	res.Joined = tot.Joined
	res.Left = tot.Left
	res.OrdersPlaced = tot.OrdersPlaced
	res.Verified = tot.Verified
	res.Collapsed = tot.Collapsed
	res.FailedOver = tot.FailedOver
	res.JoinReadyMean = tot.MeanJoinReady
	res.JoinReadyMax = tot.MaxJoinReady
	res.VictimMaxRPOChurn = e14Victims(churn, tenants, leaverIdx)
	res.ReclaimOK = tot.Left > 0 && tot.ReclaimFailures == 0
	res.SimTime = churn.Sys.Env.Now()

	var steadySum time.Duration
	steady := 0
	for _, t := range churn.Tenants {
		if !t.Join {
			steadySum += t.TimeToReady
			steady++
		}
		if t.Left {
			// The shared zero-residue checker: one violation per leaked
			// object, so the count matches the old direct-residue tally.
			res.ResidueLeaks += len(invariants.CheckZeroResidue(t.Namespace, churn.Sys.TenantResidue(t.Namespace)))
		}
	}
	if steady > 0 {
		res.SteadyReadyMean = steadySum / time.Duration(steady)
	}

	// Did a join actually race a failover? A join is "in flight" from spec
	// submission to Ready; the failovers are instants.
	for _, j := range churn.Tenants {
		if !j.Join {
			continue
		}
		for _, v := range churn.Tenants {
			if v.Failover && j.JoinAfter <= v.FailoverAt && v.FailoverAt <= j.JoinedAt {
				res.JoinDuringFailover = true
			}
		}
	}

	want := tenants + len(cfg.Joins)
	if res.Verified != want {
		return res, fmt.Errorf("E14: only %d/%d tenants verified consistent", res.Verified, want)
	}
	if res.Collapsed != 0 {
		return res, fmt.Errorf("E14: %d tenants collapsed", res.Collapsed)
	}
	if !res.ReclaimOK || res.ResidueLeaks != 0 {
		return res, fmt.Errorf("E14: decommission leaked: reclaimOK=%v leaks=%d", res.ReclaimOK, res.ResidueLeaks)
	}
	if res.Joined != len(cfg.Joins) {
		return res, fmt.Errorf("E14: %d/%d joins completed", res.Joined, len(cfg.Joins))
	}
	return res, nil
}

// E14Table renders the E14 result.
func E14Table(r ElasticityResult) *metrics.Table {
	t := metrics.NewTable("E14: fleet elasticity — declarative joins and leaves under OLTP load",
		"metric", "value")
	t.AddRow("initial tenants", r.Tenants)
	t.AddRow("joined mid-run", r.Joined)
	t.AddRow("left mid-run (decommissioned)", r.Left)
	t.AddRow("orders placed (fleet)", r.OrdersPlaced)
	t.AddRow("tenants verified consistent", r.Verified)
	t.AddRow("tenants collapsed", r.Collapsed)
	t.AddRow("tenants failed over mid-run", r.FailedOver)
	t.AddRow("join spec -> ready (mean)", r.JoinReadyMean)
	t.AddRow("join spec -> ready (max)", r.JoinReadyMax)
	t.AddRow("steady spec -> ready (mean, t=0 burst)", r.SteadyReadyMean)
	t.AddRow("join raced a mid-run failover", r.JoinDuringFailover)
	t.AddRow("victim max RPO, steady baseline", r.VictimMaxRPOBase)
	t.AddRow("victim max RPO, under churn", r.VictimMaxRPOChurn)
	t.AddRow("leaver reclaim clean (free-list invariant)", r.ReclaimOK)
	t.AddRow("residue entries after leaves", r.ResidueLeaks)
	t.AddRow("fleet virtual time (churn run)", r.SimTime)
	t.AddNote("shape: joins reach Ready under load, the leave reclaims every volume/journal shard, and no surviving tenant's consistency cut breaks")
	return t
}
