package experiments

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/csiplugin"
	"repro/internal/fabric"
	"repro/internal/invariants"
	"repro/internal/metrics"
	"repro/internal/netlink"
	"repro/internal/platform"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/storage"
)

// E15 scenario scale. One write-heavy tenant (the same 16-volume shape E13
// sweeps) starts on the paper's single shared journal and is resharded live
// to four drain lanes over a four-link fabric, while two bystander OLTP
// tenants keep committing through the same control plane and fabric — the
// fleet-load context the reshard must not need downtime under.
const (
	e15Namespace  = "reshard-bench"
	e15Volumes    = 16
	e15Links      = 4
	e15FromShards = 1
	e15ToShards   = 4
	e15Background = 2  // bystander OLTP tenants
	e15BgOrders   = 12 // orders each bystander places during the run
)

// ReshardResult is the E15 outcome: drain throughput before, during, and
// after a live 1→4 reshard; the migration window's cost and movement; the
// zero-migration proof for an unchanged reconcile; and a failover raced
// into the open migration window.
type ReshardResult struct {
	Writes               int
	FromShards, ToShards int

	// Throughput run: continuous write-heavy load, reshard declared at the
	// halfway write.
	PreMBps          float64       // drain throughput on the single lane
	DuringMBps       float64       // throughput inside the migration window
	PostMBps         float64       // throughput on the settled 4-lane drain
	SpeedupPostVsPre float64       // the >= 2x acceptance number
	StallTime        time.Duration // spec declared -> migration settled
	BarrierEpoch     int64         // epoch sealed as the migration barrier
	MovedVolumes     int64         // members re-placed by the stable hash
	MovedRecords     int64         // pending records migrated with them
	BackgroundOrders int64         // bystander OLTP commits during the run

	// Unchanged-reconcile proof (same run, after the reshard settles):
	// re-declaring the same shard count and touching the CR must migrate
	// nothing — verified by the journal's lifetime counters.
	NoopZeroMigration bool

	// Failover run: the pair is split while the migration window is open.
	RacedWindow        bool // the cut landed inside the window
	CutWrites          int  // K: writes present in the recovered image
	LostWrites         int  // acked writes missing from the image (RPO)
	CutPreBarrier      bool // recovered state is entirely pre-barrier
	FailoverConsistent bool // image is the exact ack-order prefix {1..K}
}

// E15Reshard runs the dynamic-resharding experiment: a throughput run
// measuring the live 1→4 transition (plus the unchanged-reconcile no-op
// check), then a failover run racing a disaster into the migration window.
func E15Reshard(seed int64, writes int) (ReshardResult, error) {
	if writes <= 0 {
		writes = 4000
	}
	res := ReshardResult{Writes: writes, FromShards: e15FromShards, ToShards: e15ToShards}
	if err := e15Run(seed, writes, false, &res); err != nil {
		return res, fmt.Errorf("E15 throughput: %w", err)
	}
	if err := e15Run(seed, writes, true, &res); err != nil {
		return res, fmt.Errorf("E15 failover: %w", err)
	}
	if res.PreMBps > 0 {
		res.SpeedupPostVsPre = res.PostMBps / res.PreMBps
	}
	return res, nil
}

// e15System assembles the four-link system both runs share.
func e15System(seed int64, writes int) *core.System {
	member := netlink.Config{Propagation: 2 * time.Millisecond, BandwidthBps: 4e6}
	links := make([]netlink.Config, e15Links)
	for i := range links {
		links[i] = member
	}
	return core.NewSystem(core.Config{
		Seed:         seed,
		Fabric:       fabric.Config{Links: links},
		VolumeBlocks: int64(writes/e15Volumes + 2),
	})
}

// e15Provision declares the write-heavy tenant (data-only, 1 journal shard)
// and the bystander OLTP tenants, returning the bench tenant's volumes and
// the bystanders' business processes.
func e15Provision(p *sim.Proc, sys *core.System) ([]*storage.Volume, []*core.BusinessProcess, error) {
	pvcs := make([]string, e15Volumes)
	for i := range pvcs {
		pvcs[i] = fmt.Sprintf("d%02d", i)
	}
	if _, err := sys.ProvisionTenant(p, platform.TenantSpec{
		Namespace:     e15Namespace,
		PVCNames:      pvcs,
		Backup:        true,
		JournalShards: e15FromShards,
		Profile:       "data-only",
	}); err != nil {
		return nil, nil, err
	}
	vols := make([]*storage.Volume, e15Volumes)
	for i, name := range pvcs {
		v, err := sys.Main.Array.Volume(csiplugin.VolumeIDForClaim(e15Namespace, name))
		if err != nil {
			return nil, nil, err
		}
		vols[i] = v
	}
	var bg []*core.BusinessProcess
	for i := 0; i < e15Background; i++ {
		bp, err := sys.ProvisionTenant(p, platform.TenantSpec{
			Namespace: fmt.Sprintf("bystander-%d", i),
			PVCNames:  []string{"sales", "stock"},
			Backup:    true,
		})
		if err != nil {
			return nil, nil, err
		}
		bg = append(bg, bp)
	}
	return vols, bg, nil
}

// e15AppliedBytes sums committed backup bytes across engine generations:
// the 1→4 upgrade swaps the plain engine for a sharded one, and the plain
// engine's counters freeze at the (lossless) handoff.
func e15AppliedBytes(sys *core.System, old replication.Replicator) int64 {
	var n int64
	seen := false
	for _, g := range sys.Groups(e15Namespace) {
		n += g.AppliedBytes()
		if g == old {
			seen = true
		}
	}
	if !seen && old != nil {
		n += old.AppliedBytes()
	}
	return n
}

func e15Run(seed int64, writes int, failover bool, res *ReshardResult) error {
	sys := e15System(seed, writes)
	var runErr error
	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
	}

	halfway := sys.Env.NewEvent()
	writerDone := sys.Env.NewEvent()
	ready := sys.Env.NewEvent()
	var vols []*storage.Volume
	var bg []*core.BusinessProcess
	var firstEngine replication.Replicator
	var startWrites time.Duration

	sys.Env.Process("driver", func(p *sim.Proc) {
		defer writerDone.Trigger()
		var err error
		if vols, bg, err = e15Provision(p, sys); err != nil {
			fail(err)
			return
		}
		groups := sys.Groups(e15Namespace)
		if len(groups) != 1 {
			fail(fmt.Errorf("groups = %d, want 1", len(groups)))
			return
		}
		firstEngine = groups[0]
		if _, ok := firstEngine.(*replication.Group); !ok {
			fail(fmt.Errorf("shards=1 engine is %T, want the plain engine", firstEngine))
			return
		}
		startWrites = p.Now()
		ready.Trigger()
		buf := make([]byte, sys.Main.Array.Config().BlockSize)
		for i := 0; i < writes; i++ {
			binary.BigEndian.PutUint64(buf, uint64(i+1))
			if _, err := vols[i%e15Volumes].Write(p, int64(i/e15Volumes), buf); err != nil {
				fail(err)
				return
			}
			if i == writes/2 {
				halfway.Trigger()
			}
		}
	})
	// Bystander load: OLTP commits through the same control plane and
	// fabric for the whole measurement.
	for i := 0; i < e15Background; i++ {
		i := i
		sys.Env.Process(fmt.Sprintf("bystander-%d", i), func(p *sim.Proc) {
			p.Wait(ready)
			if err := bg[i].Shop.Run(p, e15BgOrders); err != nil {
				fail(fmt.Errorf("bystander %d: %w", i, err))
			}
		})
	}

	if !failover {
		sys.Env.Process("reshard", func(p *sim.Proc) {
			p.Wait(halfway)
			preBytes := e15AppliedBytes(sys, firstEngine)
			declaredAt := p.Now()
			res.PreMBps = mbps(preBytes, declaredAt-startWrites)
			if err := sys.UpdateTenantSpec(p, e15Namespace, func(s *platform.TenantSpec) {
				s.JournalShards = e15ToShards
			}); err != nil {
				fail(fmt.Errorf("reshard: %w", err))
				return
			}
			if err := sys.WaitTenantCondition(p, e15Namespace, core.CondResharded(e15ToShards), time.Minute); err != nil {
				fail(fmt.Errorf("reshard: %w", err))
				return
			}
			settledAt := p.Now()
			res.StallTime = settledAt - declaredAt
			res.DuringMBps = mbps(e15AppliedBytes(sys, firstEngine)-preBytes, settledAt-declaredAt)
			groups := sys.Groups(e15Namespace)
			sg, ok := groups[0].(*replication.ShardedGroup)
			if !ok || sg.Lanes() != e15ToShards {
				fail(fmt.Errorf("post-reshard engine %T", groups[0]))
				return
			}
			sj, err := sys.Main.Array.ShardedJournal(sg.JournalID())
			if err != nil {
				fail(err)
				return
			}
			res.BarrierEpoch = sg.MigrationBarrier()
			res.MovedVolumes = sj.MovedVolumes()
			res.MovedRecords = sj.MovedRecords()

			// Post window: drain the remaining backlog on four lanes.
			p.Wait(writerDone)
			postStart := p.Now()
			postBase := e15AppliedBytes(sys, firstEngine)
			sg.CatchUp(p)
			res.PostMBps = mbps(e15AppliedBytes(sys, firstEngine)-postBase, p.Now()-postStart)

			// Unchanged reconcile: re-declare the same count and touch the
			// CR so every controller runs once more — zero migration.
			reshards, moved := sj.Reshards(), sj.MovedRecords()
			if err := sys.UpdateTenantSpec(p, e15Namespace, func(s *platform.TenantSpec) {
				s.JournalShards = e15ToShards
			}); err != nil {
				fail(fmt.Errorf("no-op reshard: %w", err))
				return
			}
			if err := sys.WaitTenantCondition(p, e15Namespace, core.CondResharded(e15ToShards), time.Minute); err != nil {
				fail(fmt.Errorf("no-op reshard: %w", err))
				return
			}
			rgKey := platform.ObjectKey{Kind: platform.KindReplicationGroup, Name: "backup-" + e15Namespace}
			if obj, err := sys.Main.API.Get(p, rgKey); err == nil {
				if err := sys.Main.API.Update(p, obj); err != nil {
					fail(err)
					return
				}
			}
			p.Sleep(100 * time.Millisecond)
			res.NoopZeroMigration = sj.Reshards() == reshards && sj.MovedRecords() == moved &&
				sys.Groups(e15Namespace)[0] == replication.Replicator(sg)

			for i := range bg {
				sys.CatchUp(p, fmt.Sprintf("bystander-%d", i))
				res.BackgroundOrders += bg[i].Shop.Completed.Value()
			}
		})
	} else {
		sys.Env.Process("reshard", func(p *sim.Proc) {
			p.Wait(halfway)
			if err := sys.UpdateTenantSpec(p, e15Namespace, func(s *platform.TenantSpec) {
				s.JournalShards = e15ToShards
			}); err != nil {
				fail(err)
			}
		})
		sys.Env.Process("disaster", func(p *sim.Proc) {
			p.Wait(halfway)
			// Strike while the migration window is open: wait for the
			// sharded engine to appear with its window unsettled.
			deadline := p.Now() + 30*time.Second
			for {
				if gs := sys.Groups(e15Namespace); len(gs) == 1 {
					if sg, ok := gs[0].(*replication.ShardedGroup); ok && sg.Resharding() {
						res.RacedWindow = true
						res.CutPreBarrier = sg.CommittedEpoch() < sg.MigrationBarrier()
						if _, err := sg.Failover(); err != nil {
							fail(err)
						}
						break
					}
				}
				if p.Now() >= deadline {
					fail(fmt.Errorf("migration window never observed open"))
					return
				}
				p.Sleep(time.Millisecond)
			}
			p.Wait(writerDone) // let the writer ack into the stranded journal
			targets := make([]*storage.Volume, e15Volumes)
			for i := range targets {
				tv, err := sys.Backup.Array.Volume(csiplugin.VolumeIDForClaim(e15Namespace, fmt.Sprintf("d%02d", i)))
				if err != nil {
					fail(err)
					return
				}
				targets[i] = tv
			}
			res.CutWrites, res.FailoverConsistent = invariants.StampedPrefix(targets)
			res.LostWrites = writes - res.CutWrites
		})
	}
	sys.Env.Run(0)
	sys.Stop()
	sys.Env.Run(0)
	recordKernel(fmt.Sprintf("e15/failover=%v", failover), sys.Env)
	return runErr
}

// mbps converts a byte count over a span to MB/s (0 for an empty span).
func mbps(bytes int64, span time.Duration) float64 {
	if span <= 0 {
		return 0
	}
	return float64(bytes) / 1e6 / span.Seconds()
}

// E15Table renders the E15 result.
func E15Table(r ReshardResult) *metrics.Table {
	t := metrics.NewTable("E15: dynamic journal resharding — live 1->4 under fleet load",
		"metric", "value")
	t.AddRow("writes (bench tenant)", r.Writes)
	t.AddRow("reshard", fmt.Sprintf("%d -> %d lanes", r.FromShards, r.ToShards))
	t.AddRow("drain MB/s before reshard", fmt.Sprintf("%.2f", r.PreMBps))
	t.AddRow("drain MB/s during migration window", fmt.Sprintf("%.2f", r.DuringMBps))
	t.AddRow("drain MB/s after reshard", fmt.Sprintf("%.2f", r.PostMBps))
	t.AddRow("post/pre speedup", fmt.Sprintf("%.2fx", r.SpeedupPostVsPre))
	t.AddRow("migration stall (declare -> settled)", r.StallTime)
	t.AddRow("migration barrier epoch", r.BarrierEpoch)
	t.AddRow("volumes re-placed", r.MovedVolumes)
	t.AddRow("pending records migrated", r.MovedRecords)
	t.AddRow("bystander OLTP orders", r.BackgroundOrders)
	t.AddRow("unchanged reconcile migrated zero", r.NoopZeroMigration)
	t.AddRow("failover raced into open window", r.RacedWindow)
	t.AddRow("failover cut entirely pre-barrier", r.CutPreBarrier)
	t.AddRow("failover cut writes / lost", fmt.Sprintf("%d / %d", r.CutWrites, r.LostWrites))
	t.AddRow("failover image exact ack-order prefix", r.FailoverConsistent)
	t.AddNote("shape: the 1->4 reshard needs no downtime, post-reshard drain >= 2x the single lane, a mid-window failover recovers an exact epoch-boundary prefix, and an unchanged reconcile migrates nothing")
	return t
}
