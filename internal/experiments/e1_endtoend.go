package experiments

import (
	"fmt"
	"time"

	"repro/internal/analytics"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// EndToEndResult summarizes one full run of the Fig. 1 pipeline.
type EndToEndResult struct {
	Orders          int
	OrderMean       time.Duration
	TimeToReady     time.Duration // tag -> replication Ready
	ReplicatedRecs  int64
	SnapshotMembers int
	AnalyticsOrders int
	Consistent      bool
	FailoverTime    time.Duration
	FailoverIntact  bool
}

// E1EndToEnd runs the entire demonstration once: deploy the business
// process, enable backup through the operator, run orders, snapshot the
// backup, run analytics, and finally fail over. It is the integration
// experiment behind Fig. 1 and the demo walkthrough of §IV.
func E1EndToEnd(seed int64, orders int) (EndToEndResult, error) {
	var res EndToEndResult
	res.Orders = orders
	sys := core.NewSystem(core.Config{Seed: seed})
	var runErr error
	sys.Env.Process("e1", func(p *sim.Proc) {
		bp, err := sys.DeployBusinessProcess(p, "shop")
		if err != nil {
			runErr = err
			return
		}
		start := p.Now()
		if err := sys.EnableBackup(p, "shop"); err != nil {
			runErr = err
			return
		}
		res.TimeToReady = p.Now() - start
		if err := bp.Shop.Run(p, orders); err != nil {
			runErr = err
			return
		}
		res.OrderMean = bp.Shop.Latency.Mean()
		sys.CatchUp(p, "shop")
		for _, g := range sys.Groups("shop") {
			res.ReplicatedRecs += g.AppliedRecords()
		}
		group, err := sys.SnapshotBackup(p, "shop", "e1")
		if err != nil {
			runErr = err
			return
		}
		res.SnapshotMembers = len(group.Snapshots())
		salesView, stockView, err := sys.AnalyticsDBs(p, "shop", group)
		if err != nil {
			runErr = err
			return
		}
		sales, err := analytics.Sales(p, salesView)
		if err != nil {
			runErr = err
			return
		}
		res.AnalyticsOrders = sales.Orders
		rep := consistency.Verify(salesView, stockView, bp.Shop.SalesCommitOrder(), bp.Shop.StockCommitOrder())
		res.Consistent = !rep.Collapsed() && rep.OrderingOK()

		fo, err := sys.Failover(p, "shop")
		if err != nil {
			runErr = err
			return
		}
		res.FailoverTime = fo.RecoveryTime
		foRep := consistency.Verify(fo.Sales, fo.Stock, bp.Shop.SalesCommitOrder(), bp.Shop.StockCommitOrder())
		res.FailoverIntact = !foRep.Collapsed() && foRep.OrderingOK()
	})
	sys.Env.Run(time.Hour)
	sys.Stop() // quiesce so bench iterations do not accumulate parked procs
	sys.Env.Run(time.Hour)
	recordKernel("e1", sys.Env)
	if runErr != nil {
		return res, fmt.Errorf("E1: %w", runErr)
	}
	return res, nil
}

// E1Table renders the E1 result.
func E1Table(r EndToEndResult) *metrics.Table {
	t := metrics.NewTable("E1: end-to-end demonstration pipeline (Fig. 1, §IV)",
		"metric", "value")
	t.AddRow("orders placed", r.Orders)
	t.AddRow("mean order latency", r.OrderMean)
	t.AddRow("tag -> replication ready", r.TimeToReady)
	t.AddRow("journal records applied at backup", r.ReplicatedRecs)
	t.AddRow("snapshot group members", r.SnapshotMembers)
	t.AddRow("orders visible to analytics", r.AnalyticsOrders)
	t.AddRow("snapshot consistent", r.Consistent)
	t.AddRow("failover recovery time", r.FailoverTime)
	t.AddRow("failover business intact", r.FailoverIntact)
	t.AddNote("shape: analytics see every caught-up order; snapshot and failover images are consistent")
	return t
}
