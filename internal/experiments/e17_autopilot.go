package experiments

import (
	"fmt"
	"time"

	"repro/internal/autopilot"
	"repro/internal/core"
	"repro/internal/csiplugin"
	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/netlink"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/telemetry"
)

// E17 scenario scale. Two gold tenants carry a diurnal ingest curve — a
// quiet night rate, a peak that a single drain lane cannot absorb, then
// night again — while two bulk tenants push constant best-effort streams
// through the same four-link fabric. The gold SLO class declares an RPO
// target; the bulk class declares none and sits below gold in admission
// priority. Static provisioning (1 lane, no admission control) must breach
// the gold target at peak; the autopilot — repairing purely from the probed
// RPO series — must hold it by resharding gold up, derating bulk ingress,
// placing the added lanes, and giving everything back at night.
//
// The geometry makes all three effectors necessary: four tenants on four
// member links means every link is claimed, so each gold tenant's second
// lane can only land on a bulk-occupied member — placement must find the
// one whose traffic admission has just derated away, and without the
// derate the shared member cannot carry the lane's share of the peak.
const (
	e17Golds      = 2
	e17Bulks      = 2
	e17GoldVols   = 4
	e17BulkVols   = 4
	e17Links      = 4
	e17BlockSize  = 16 << 10
	e17GoldTarget = 1 * time.Second

	// Diurnal curve (offsets from the shared workload start). The peak rate
	// is chosen above what one drain lane sustains (~3.9 MB/s on this fabric
	// at this block size) so the static run must breach, while two lanes
	// hold it with margin once bulk is shed off the shared member.
	e17NightRate = 0.40e6 // B/s per gold tenant off-peak
	e17PeakRate  = 4.5e6  // B/s per gold tenant at peak
	e17BulkRate  = 1.2e6  // B/s per bulk tenant, constant day and night
	e17PeakFrom  = 5 * time.Second
	e17PeakTo    = 25 * time.Second
	e17WorkEnd   = 55 * time.Second

	// Steady-state measurement windows: the autopilot gets an adaptation
	// grace after each phase edge before compliance is judged.
	e17PeakGrace  = 8 * time.Second
	e17NightGrace = 6 * time.Second
)

// e17AutopilotConfig is the control-loop tuning both the experiment and the
// determinism golden test share.
func e17AutopilotConfig() autopilot.Config {
	return autopilot.Config{
		Period:   250 * time.Millisecond,
		Window:   500 * time.Millisecond,
		Cooldown: 1500 * time.Millisecond,
		// The diurnal edges are steep, so the loop reacts early (up at 35%
		// of target, derate at 50%) and reclaims only from deep quiet (down
		// below 10%, restore probes below 25%).
		ScaleUpFraction:   0.35,
		ScaleDownFraction: 0.10,
		DerateFraction:    0.50,
		RestoreFraction:   0.25,
		// A higher shed floor bounds how much bulk backlog accumulates while
		// derated — giant deferred epochs would stall the shared backup
		// controller when restored.
		MinRateBps: 256 << 10,
	}
}

// AutopilotRun is one E17 run's outcome (static or autopiloted).
type AutopilotRun struct {
	WorstPeakRPO  time.Duration // worst gold RPO probe in the steady-peak window
	WorstNightRPO time.Duration // worst gold RPO probe in the steady-night window
	GoldBytes     int64         // gold-class bytes through the forward fabric
	BulkBytes     int64         // bulk-class bytes through the forward fabric
	FinalLanes    []int         // per gold tenant, drain lanes at the end
}

// AutopilotResult is the E17 outcome: the same diurnal world run twice —
// statically provisioned, then under the SLO autopilot — plus the
// autopilot's full decision log.
type AutopilotResult struct {
	GoldTarget   time.Duration
	Static, Auto AutopilotRun

	// The experiment's two acceptance verdicts.
	StaticViolates bool // static run breached the gold target in steady state
	AutoHolds      bool // autopilot held every declared target in steady state

	ReshardUps, ReshardDowns    int
	Derates, Restores, Placings int
	Decisions                   []autopilot.Decision
	DecisionLog                 string
}

// E17Autopilot runs the closed-loop experiment: the static world first (the
// violation baseline), then the identical world with the autopilot armed.
func E17Autopilot(seed int64, workers int) (AutopilotResult, error) {
	res := AutopilotResult{GoldTarget: e17GoldTarget}
	var err error
	if res.Static, _, _, err = e17Run(seed, workers, false, false); err != nil {
		return res, fmt.Errorf("E17 static: %w", err)
	}
	var ap *autopilot.Autopilot
	if res.Auto, ap, _, err = e17Run(seed, workers, true, false); err != nil {
		return res, fmt.Errorf("E17 autopilot: %w", err)
	}
	res.Decisions = ap.Decisions()
	res.DecisionLog = ap.FormatLog()
	for _, d := range res.Decisions {
		switch d.Action {
		case "reshard-up":
			res.ReshardUps++
		case "reshard-down":
			res.ReshardDowns++
		case "derate":
			res.Derates++
		case "restore":
			res.Restores++
		case "place-lane":
			res.Placings++
		}
	}
	res.StaticViolates = res.Static.WorstPeakRPO > e17GoldTarget
	res.AutoHolds = res.Auto.WorstPeakRPO <= e17GoldTarget && res.Auto.WorstNightRPO <= e17GoldTarget
	return res, nil
}

// e17System assembles the shared world: four fabric member links, gold and
// bulk QoS classes at equal DRR weight (so only admission control can tilt
// them), and the two SLO policy classes the autopilot enforces.
func e17System(seed int64) *core.System {
	member := netlink.Config{Propagation: 2 * time.Millisecond, BandwidthBps: 4e6}
	links := make([]netlink.Config, e17Links)
	for i := range links {
		links[i] = member
	}
	return core.NewSystem(core.Config{
		Seed: seed,
		Fabric: fabric.Config{
			Links: links,
			Classes: []fabric.ClassConfig{
				{Name: "gold", Weight: 1},
				{Name: "bulk", Weight: 1},
			},
		},
		SLOClasses: []platform.SLOClass{
			{Name: "gold", RPOTarget: e17GoldTarget, MinShards: 1, MaxShards: 2, AdmissionPriority: 10},
			{Name: "bulk", MinShards: 1, MaxShards: 1, AdmissionPriority: 0},
		},
		Telemetry: &telemetry.Config{SamplePeriod: 50 * time.Millisecond},
		// Tenant domains run in parallel subgraphs under workers > 1, so
		// every volume needs its own service queue (the fleet's model).
		Storage:      storage.Config{BlockSize: e17BlockSize, IsolatedVolumes: true},
		VolumeBlocks: 8192,
	})
}

// e17Rate is the diurnal ingest curve in bytes per second.
func e17Rate(gold bool, sinceStart time.Duration) float64 {
	if !gold {
		return e17BulkRate
	}
	if sinceStart >= e17PeakFrom && sinceStart < e17PeakTo {
		return e17PeakRate
	}
	return e17NightRate
}

type e17Tenant struct {
	ns    string
	gold  bool
	index int // tenant domain = index+1
	vols  []*storage.Volume
	done  *sim.Event
}

// e17Run executes one world (static or autopiloted). With trace set, the
// kernel records its (at, seq) step order for the determinism golden; the
// system is returned so the caller can read it.
func e17Run(seed int64, workers int, auto, trace bool) (AutopilotRun, *autopilot.Autopilot, *core.System, error) {
	sys := e17System(seed)
	if trace {
		sys.Env.StartTrace()
	}
	var run AutopilotRun
	var runErr error
	fail := func(err error) {
		if runErr == nil && err != nil {
			runErr = err
		}
	}

	var ap *autopilot.Autopilot
	if auto {
		var err error
		if ap, err = autopilot.New(sys, e17AutopilotConfig()); err != nil {
			return run, nil, sys, err
		}
		ap.Start()
	}

	var tenants []*e17Tenant
	for i := 0; i < e17Golds; i++ {
		tenants = append(tenants, &e17Tenant{
			ns: fmt.Sprintf("gold-%d", i), gold: true, index: i, done: sys.Env.NewEvent(),
		})
	}
	for i := 0; i < e17Bulks; i++ {
		tenants = append(tenants, &e17Tenant{
			ns: fmt.Sprintf("bulk-%d", i), index: e17Golds + i, done: sys.Env.NewEvent(),
		})
	}

	ready := sys.Env.NewEvent()
	var wlStart time.Duration

	// Driver: declare every tenant through the declarative surface, wait
	// for readiness, resolve the write targets, release the writers.
	sys.Env.Process("driver", func(p *sim.Proc) {
		for _, t := range tenants {
			nvols, slo := e17GoldVols, "gold"
			if !t.gold {
				nvols, slo = e17BulkVols, "bulk"
			}
			pvcs := make([]string, nvols)
			for i := range pvcs {
				pvcs[i] = fmt.Sprintf("d%02d", i)
			}
			if err := sys.ApplyTenant(p, platform.TenantSpec{
				Namespace:     t.ns,
				PVCNames:      pvcs,
				Backup:        true,
				JournalShards: 1,
				SLOClass:      slo,
				Profile:       "data-only",
			}); err != nil {
				fail(fmt.Errorf("apply %s: %w", t.ns, err))
				return
			}
			if err := sys.WaitTenantCondition(p, t.ns, core.CondReady(), time.Minute); err != nil {
				fail(fmt.Errorf("ready %s: %w", t.ns, err))
				return
			}
			for _, name := range pvcs {
				v, err := sys.Main.Array.Volume(csiplugin.VolumeIDForClaim(t.ns, name))
				if err != nil {
					fail(err)
					return
				}
				t.vols = append(t.vols, v)
			}
		}
		wlStart = p.Now()
		p.Trigger(ready)
	})

	// Writers: one per tenant, deadline-paced against the diurnal curve,
	// each in its own domain so parallel runs form tenant subgraphs.
	for _, t := range tenants {
		t := t
		sys.Env.Process("writer:"+t.ns, func(p *sim.Proc) {
			p.Wait(ready)
			if runErr != nil {
				p.Trigger(t.done)
				return
			}
			start := p.Now()
			p.SetDomain(t.index + 1)
			buf := make([]byte, e17BlockSize)
			next := start
			for i := 0; ; i++ {
				if d := next - p.Now(); d > 0 {
					p.Sleep(d)
				}
				since := p.Now() - start
				if since >= e17WorkEnd {
					break
				}
				v := t.vols[i%len(t.vols)]
				if _, err := v.Write(p, int64(i/len(t.vols)), buf); err != nil {
					fail(fmt.Errorf("%s write %d: %w", t.ns, i, err))
					break
				}
				next += time.Duration(float64(e17BlockSize) / e17Rate(t.gold, since) * float64(time.Second))
			}
			p.SetDomain(0)
			p.Sleep(0)
			p.Trigger(t.done)
		})
	}

	// Monitor: once every writer retires, disarm the autopilot so the
	// final drain can run the queue empty.
	sys.Env.Process("monitor", func(p *sim.Proc) {
		for _, t := range tenants {
			p.Wait(t.done)
		}
		if ap != nil {
			ap.Stop()
		}
	})

	if workers > 1 {
		sys.Env.RunParallel(0, workers)
	} else {
		sys.Env.Run(0)
	}
	sys.Stop()
	sys.Env.Run(0)
	recordKernel(fmt.Sprintf("e17/auto=%v", auto), sys.Env)
	if runErr != nil {
		return run, ap, sys, runErr
	}

	// Compliance readings come from the same probed series the autopilot
	// steers by.
	peakFrom, peakTo := wlStart+e17PeakFrom+e17PeakGrace, wlStart+e17PeakTo
	nightFrom, nightTo := wlStart+e17PeakTo+e17NightGrace, wlStart+e17WorkEnd
	for _, t := range tenants {
		if !t.gold {
			continue
		}
		if r := e17WorstRPO(sys, t.ns, peakFrom, peakTo); r > run.WorstPeakRPO {
			run.WorstPeakRPO = r
		}
		if r := e17WorstRPO(sys, t.ns, nightFrom, nightTo); r > run.WorstNightRPO {
			run.WorstNightRPO = r
		}
		if gs := sys.Groups(t.ns); len(gs) == 1 {
			run.FinalLanes = append(run.FinalLanes, gs[0].Lanes())
		} else {
			run.FinalLanes = append(run.FinalLanes, 0)
		}
	}
	run.GoldBytes = sys.Fabric.Forward.ClassStats("gold").Bytes
	run.BulkBytes = sys.Fabric.Forward.ClassStats("bulk").Bytes
	return run, ap, sys, nil
}

// e17WorstRPO is the worst probed RPO sample for the namespace in [from, to]
// (the probe records float64 nanoseconds).
func e17WorstRPO(sys *core.System, ns string, from, to time.Duration) time.Duration {
	s := sys.Telemetry.Series("rpo", telemetry.L("tenant", ns))
	if s == nil {
		return 0
	}
	worst := 0.0
	for _, pt := range s.Window(from, to) {
		if pt.Value > worst {
			worst = pt.Value
		}
	}
	return time.Duration(worst)
}

// E17Table renders the E17 result.
func E17Table(r AutopilotResult) *metrics.Table {
	t := metrics.NewTable("E17: SLO autopilot — closed loop from probed RPO to reshard, admission, placement",
		"metric", "static", "autopilot")
	t.AddRow("gold RPO target", r.GoldTarget, r.GoldTarget)
	t.AddRow("worst gold RPO, steady peak", r.Static.WorstPeakRPO, r.Auto.WorstPeakRPO)
	t.AddRow("worst gold RPO, steady night", r.Static.WorstNightRPO, r.Auto.WorstNightRPO)
	t.AddRow("gold lanes at end", fmt.Sprint(r.Static.FinalLanes), fmt.Sprint(r.Auto.FinalLanes))
	t.AddRow("gold bytes drained", r.Static.GoldBytes, r.Auto.GoldBytes)
	t.AddRow("bulk bytes drained", r.Static.BulkBytes, r.Auto.BulkBytes)
	t.AddRow("static violates target", r.StaticViolates, "")
	t.AddRow("autopilot holds every target", "", r.AutoHolds)
	t.AddRow("decisions: reshard up/down", "", fmt.Sprintf("%d / %d", r.ReshardUps, r.ReshardDowns))
	t.AddRow("decisions: derate/restore", "", fmt.Sprintf("%d / %d", r.Derates, r.Restores))
	t.AddRow("decisions: lane placements", "", r.Placings)
	t.AddNote("shape: the diurnal peak breaches the gold target under static provisioning; the autopilot, sensing only the probed RPO series, holds every declared target by resharding gold, derating bulk admission, and placing lanes — then hands resources back at night")
	return t
}
